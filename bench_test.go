package triosim

// The benchmark harness regenerates every table/figure of the paper's
// evaluation (BenchmarkFig6..BenchmarkFig16 — quick workload lists so a
// full -bench=. run stays tractable; `go run ./cmd/experiments` produces
// the complete versions) and adds the ablation benches DESIGN.md calls out:
// graph-build vs execution cost, max-min fair sharing vs an uncontended
// network, DDP bucket-size sensitivity, and trace-time passthrough vs Li's
// Model. Micro-benches cover the substrates (event engine, flow network,
// collectives, trace collection, model fitting).

import (
	"context"
	"fmt"
	"testing"

	"triosim/internal/collective"
	"triosim/internal/experiments"
	"triosim/internal/extrapolator"
	"triosim/internal/faults"
	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/network"
	"triosim/internal/perfmodel"
	"triosim/internal/sim"
	"triosim/internal/sweep"
	"triosim/internal/task"
	"triosim/internal/timeline"
)

// ---- Figure regeneration benches (one per paper table/figure) ----

func benchFigure(b *testing.B, run func() (*experiments.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable1BaselineComparison(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Table1(true)
	})
}

func BenchmarkFig6SingleGPU(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig6(true)
	})
}

func BenchmarkFig7StandardDP(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig7(true)
	})
}

func BenchmarkFig8DDP(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig8(true)
	})
}

func BenchmarkFig9TP(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig9(true)
	})
}

func BenchmarkFig10PP(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig10(true)
	})
}

func BenchmarkFig11NewGPU(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig11(true)
	})
}

func BenchmarkFig12ParallelismComparison(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig12(true)
	})
}

func BenchmarkFig13CommRatio(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig13(true)
	})
}

func BenchmarkFig14SimulatorSpeed(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig14(true)
	})
}

func BenchmarkFig15WaferPhotonic(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig15(true)
	})
}

func BenchmarkFig16Hop(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig16(true)
	})
}

// ---- Simulator-speed benches (the Fig 14 metric, per parallelism) ----

func benchSimulate(b *testing.B, cfg Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalTime <= 0 {
			b.Fatal("no time")
		}
	}
}

func BenchmarkSimulateDDPResNet50(b *testing.B) {
	benchSimulate(b, Config{Model: "resnet50", Platform: P2(),
		Parallelism: DDP, TraceBatch: 128})
}

func BenchmarkSimulateTPGPT2(b *testing.B) {
	benchSimulate(b, Config{Model: "gpt2", Platform: P2(),
		Parallelism: TP, TraceBatch: 128})
}

func BenchmarkSimulatePPDenseNet(b *testing.B) {
	benchSimulate(b, Config{Model: "densenet121", Platform: P2(),
		Parallelism: PP, TraceBatch: 128, MicroBatches: 4})
}

func BenchmarkSimulateLlama8xH100(b *testing.B) {
	benchSimulate(b, Config{Model: "llama32-1b", Platform: P3(),
		Parallelism: DDP, TraceBatch: 16})
}

// ---- Cluster-scale benches (the 10k-GPU acceptance measurement) ----

// BenchmarkClusterStep times one llama32-1b training step on rail fat-tree
// clusters under DP×TP×PP with fused compute, hierarchical collectives, and
// the approximate flow solver — the internal/experiments scale figure's
// configuration, tracked in BENCH_*.json so cluster-scale regressions are
// visible in benchdiff. The 10000-GPU case is the repo's acceptance bar:
// simulating one step must stay in single-digit seconds.
func BenchmarkClusterStep(b *testing.B) {
	cases := []struct{ gpus, dp, tp, pp int }{
		{64, 8, 8, 1},
		{1024, 16, 8, 8},
		{10000, 125, 8, 10},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%dgpus", c.gpus), func(b *testing.B) {
			machines := c.gpus / 8
			const traceBatch = 16
			for i := 0; i < b.N; i++ {
				topo := network.RailFatTree(network.ClusterConfig{
					Machines: machines, GPUsPerMachine: 8,
					NVLinkBandwidth: 300e9, NVLinkLatency: sim.USec,
					NICBandwidth: 50e9, NICLatency: 2 * sim.USec,
					FabricBandwidth: 100e9, FabricLatency: 2 * sim.USec,
					HostBandwidth: 20e9, HostLatency: 5 * sim.USec,
				}, 8, 2)
				res, err := Simulate(Config{
					Model: "llama32-1b", Platform: P3(), Topology: topo,
					Parallelism: DPTPPP, NumGPUs: c.gpus,
					TPRanks: c.tp, PPStages: c.pp,
					TraceBatch: traceBatch, GlobalBatch: c.dp * 4 * traceBatch,
					MicroBatches: 4, FuseCompute: true, NetApproxTol: 0.01,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalTime <= 0 {
					b.Fatal("no time")
				}
				b.ReportMetric(res.PerIteration.Seconds()*1e3, "simulated-ms/step")
			}
		})
	}
}

// ---- Ablation benches (DESIGN.md) ----

// Graph-build vs execution cost: the task-graph form's overhead relative to
// on-the-fly extrapolation is the build step; measure both halves.
func BenchmarkAblationGraphBuild(b *testing.B) {
	tr, err := hwsim.CollectTrace("resnet50", 128, &gpu.A100)
	if err != nil {
		b.Fatal(err)
	}
	pm, err := perfmodel.Fit(tr)
	if err != nil {
		b.Fatal(err)
	}
	topo := network.Switch(network.Config{
		NumGPUs: 4, LinkBandwidth: 235e9, HostBandwidth: 20e9,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := extrapolator.DataParallel(extrapolator.Config{
			Trace: tr, Topo: topo, NumGPUs: 4, Timer: pm,
		}, true)
		if err != nil {
			b.Fatal(err)
		}
		if res.Graph.Len() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkAblationGraphExecute(b *testing.B) {
	tr, err := hwsim.CollectTrace("resnet50", 128, &gpu.A100)
	if err != nil {
		b.Fatal(err)
	}
	pm, err := perfmodel.Fit(tr)
	if err != nil {
		b.Fatal(err)
	}
	topo := network.Switch(network.Config{
		NumGPUs: 4, LinkBandwidth: 235e9, HostBandwidth: 20e9,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		res, err := extrapolator.DataParallel(extrapolator.Config{
			Trace: tr, Topo: topo, NumGPUs: 4, Timer: pm,
		}, true)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.NewSerialEngine()
		net := network.NewFlowNetwork(eng, topo)
		x := task.NewExecutor(eng, net, res.Graph, timeline.New())
		b.StartTimer()
		if _, err := x.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Max-min fair sharing vs uncontended ideal network: the cost and the
// simulated-time effect of bandwidth-sharing fidelity.
func BenchmarkAblationFairShare(b *testing.B) {
	for _, mode := range []string{"maxmin", "ideal"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewSerialEngine()
				topo := network.Ring(network.Config{
					NumGPUs: 8, LinkBandwidth: 100e9, HostBandwidth: 20e9,
				})
				var net network.Network
				if mode == "maxmin" {
					net = network.NewFlowNetwork(eng, topo)
				} else {
					net = network.NewIdealNetwork(eng, 100e9, 0)
				}
				g := task.NewGraph()
				collective.RingAllReduce(g, topo.GPUs(), 1e9, nil,
					collective.Options{})
				x := task.NewExecutor(eng, net, g, timeline.New())
				if _, err := x.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// DDP bucket-size sensitivity: predicted iteration time across bucket sizes.
func BenchmarkAblationBucketSize(b *testing.B) {
	for _, mb := range []int{1, 5, 25, 100} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			cfg := Config{Model: "vgg16", Platform: P2(), Parallelism: DDP,
				TraceBatch: 128, BucketBytes: float64(mb << 20)}
			var last VTime
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.PerIteration
			}
			b.ReportMetric(last.Seconds()*1e3, "simulated-ms/iter")
		})
	}
}

// Trace-time passthrough vs Li's Model regression for unmodified replays.
func BenchmarkAblationOpTimeSource(b *testing.B) {
	tr, err := hwsim.CollectTrace("resnet50", 128, &gpu.A100)
	if err != nil {
		b.Fatal(err)
	}
	pm, err := perfmodel.Fit(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("passthrough", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var total sim.VTime
			for j := range tr.Ops {
				op := &tr.Ops[j]
				total += pm.OpTime(op.Name, op.FLOPs, 0, op.Time, false)
			}
			if total <= 0 {
				b.Fatal("no time")
			}
		}
	})
	b.Run("regression", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var total sim.VTime
			for j := range tr.Ops {
				op := &tr.Ops[j]
				bytes := float64(op.BytesIn(tr.Tensors) +
					op.BytesOut(tr.Tensors))
				total += pm.OpTime(op.Name, op.FLOPs, bytes, op.Time, true)
			}
			if total <= 0 {
				b.Fatal("no time")
			}
		}
	})
}

// Compute-model ablation: Li's regression vs NeuSight-style roofline vs the
// hybrid, scored against the hardware emulator on transformer tensor
// parallelism (the underutilized regime §8.2 flags).
func BenchmarkAblationComputeModel(b *testing.B) {
	for _, cm := range []string{"li", "roofline", "hybrid"} {
		b.Run(cm, func(b *testing.B) {
			var lastErr float64
			for i := 0; i < b.N; i++ {
				cmp, err := Validate(Config{Model: "gpt2", Platform: P2(),
					Parallelism: TP, TraceBatch: 128, ComputeModel: cm})
				if err != nil {
					b.Fatal(err)
				}
				lastErr = cmp.Error
			}
			b.ReportMetric(lastErr*100, "err-pct")
		})
	}
}

// Ring vs tree AllReduce across message sizes: the NCCL algorithm-selection
// crossover (latency-bound small messages favor tree, bandwidth-bound large
// ones favor ring).
func BenchmarkAblationRingVsTree(b *testing.B) {
	for _, algo := range []string{"ring", "tree"} {
		for _, bytes := range []float64{64e3, 16e6, 1e9} {
			b.Run(fmt.Sprintf("%s/%.0fKB", algo, bytes/1e3),
				func(b *testing.B) {
					var last sim.VTime
					for i := 0; i < b.N; i++ {
						eng := sim.NewSerialEngine()
						topo := network.Switch(network.Config{
							NumGPUs: 16, LinkBandwidth: 100e9,
							HostBandwidth: 20e9,
						})
						net := network.NewFlowNetwork(eng, topo)
						g := task.NewGraph()
						opt := collective.Options{StepDelay: 20 * sim.USec}
						if algo == "tree" {
							collective.TreeAllReduce(g, topo.GPUs(), bytes,
								nil, opt)
						} else {
							collective.RingAllReduce(g, topo.GPUs(), bytes,
								nil, opt)
						}
						x := task.NewExecutor(eng, net, g, timeline.New())
						ms, err := x.Run()
						if err != nil {
							b.Fatal(err)
						}
						last = ms
					}
					b.ReportMetric(last.Microseconds(), "simulated-us")
				})
		}
	}
}

// Fault-triggered re-solve churn: a contended ring where an injector
// toggles link bandwidth 100 times mid-flight. Each window edge calls
// RefreshRates, forcing the incremental max-min allocator to re-solve under
// live flows — the overhead fault injection adds to the network model. The
// flow count scales 8 → 4096 so benchdiff sees how solver churn grows with
// load (the ring widens with the flow count to keep per-link contention,
// not route length, the scaled variable).
func BenchmarkFaultReallocChurn(b *testing.B) {
	for _, flows := range []int{8, 256, 4096} {
		b.Run(fmt.Sprintf("%dflows", flows), func(b *testing.B) {
			b.ReportAllocs()
			nGPUs := 8
			if flows > 256 {
				nGPUs = 64
			}
			for i := 0; i < b.N; i++ {
				eng := sim.NewSerialEngine()
				topo := network.Ring(network.Config{
					NumGPUs: nGPUs, LinkBandwidth: 100e9, HostBandwidth: 20e9,
				})
				net := network.NewFlowNetwork(eng, topo)
				var sched faults.Schedule
				for l := 0; l < 4; l++ {
					for w := 0; w < 25; w++ {
						sched.Events = append(sched.Events, faults.Event{
							Kind: faults.LinkDegrade, Link: l,
							Factor:   2 + float64(w%3),
							Start:    sim.VTime(w) * sim.MSec,
							Duration: sim.MSec / 2,
						})
					}
				}
				inj, err := faults.NewInjector(eng, net, &sched)
				if err != nil {
					b.Fatal(err)
				}
				inj.Arm()
				gpus := topo.GPUs()
				done := 0
				for j := 0; j < flows; j++ {
					src := gpus[j%len(gpus)]
					dst := gpus[(j*3+1)%len(gpus)]
					if src == dst {
						dst = gpus[(j*3+2)%len(gpus)]
					}
					net.Send(src, dst, 1e9, func(sim.VTime) { done++ })
				}
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				if done != flows {
					b.Fatal("lost flows")
				}
			}
		})
	}
}

// ---- Sweep harness benches ----

// Pure pool overhead: dispatch + ordered collection of trivial jobs, no
// simulation. This is the fixed cost internal/sweep adds per scenario.
func BenchmarkSweepPoolOverhead(b *testing.B) {
	b.ReportAllocs()
	jobs := make([]sweep.Job[int], 256)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i, nil }
	}
	for n := 0; n < b.N; n++ {
		res := sweep.Run(sweep.Options{}, jobs)
		if len(res) != 256 || res[255].Value != 255 {
			b.Fatal("bad results")
		}
	}
}

// The same figure grid serially and fanned across the pool: the pair
// BENCH_*.json tracks over time to keep the parallel path's advantage
// honest (on a single-core machine the two should be within noise).
func BenchmarkSweepFig7Serial(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig7Opts(true, experiments.Serial)
	})
}

func BenchmarkSweepFig7Parallel(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) {
		return experiments.Fig7Opts(true, experiments.Options{})
	})
}

// cachedGrid is a shared-workload sweep in the shape of the paper's
// batch-size sensitivity studies: one (model, trace batch, GPU) trace
// extrapolated to a grid of global batch sizes, so the trace cache can serve
// every scenario after the first. InferenceOnly keeps the per-scenario
// simulation small relative to trace collection + model fitting — the halves
// the cache removes.
func cachedGrid() []sweep.Scenario {
	var scs []sweep.Scenario
	for i := 0; i < 12; i++ {
		batch := 16 * (i + 1)
		scs = append(scs, sweep.Scenario{
			Name: fmt.Sprintf("b%d", batch),
			Build: func() Config {
				return Config{Model: "resnet152", Platform: P2(),
					Parallelism: SingleGPU, TraceBatch: 128,
					GlobalBatch: batch, InferenceOnly: true}
			},
		})
	}
	return scs
}

// Cold (cache off) vs warm (cache on, the sweep default) over the shared-
// workload grid: the warm path must hold at least a 3x allocs/op advantage —
// the headline win of the trace cache, gated via BENCH_*.json.
func BenchmarkSweepCached(b *testing.B) {
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := sweep.Simulate(sweep.Options{
					Workers: 1, NoTraceCache: mode == "cold",
				}, cachedGrid())
				if err := sweep.FirstErr(res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// servingGrid is the scheduler-comparison serving sweep in quick shape: one
// seeded Poisson workload on P1 served under each admission policy.
func servingGrid() []sweep.ServeScenario {
	var scs []sweep.ServeScenario
	for _, sched := range ServingSchedulers() {
		sched := sched
		scs = append(scs, sweep.ServeScenario{
			Name: sched,
			Build: func() ServeConfig {
				return ServeConfig{
					Platform: P1(),
					Serving: ServingConfig{
						Model:     "gpt2",
						Scheduler: sched,
						MaxBatch:  4,
						Arrivals: ServingArrivalConfig{
							Seed: 7, Rate: 300, Requests: 32,
						},
					},
				}
			},
		})
	}
	return scs
}

// The request-level serving layer's cost per swept scenario (arrival
// generation, continuous batching, KV accounting, percentile aggregation),
// allocs gated via BENCH_*.json.
func BenchmarkServingSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := sweep.Serve(sweep.Options{Workers: 1}, servingGrid())
		if err := sweep.FirstErr(res); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Substrate micro-benches ----

func BenchmarkEventEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewSerialEngine()
		for j := 0; j < 10000; j++ {
			eng.Schedule(sim.NewFuncEvent(sim.VTime(j), func(sim.VTime) error {
				return nil
			}))
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchNop is a package-level handler so scheduling it never allocates a
// closure.
func benchNop(sim.VTime) error { return nil }

// BenchmarkEngineQueue isolates the specialized event queue on the pooled
// schedule/dispatch path: after one warm-up pass fills the funcEvent free
// list and sizes the heap, a full schedule+drain cycle must run at
// 0 allocs/op (gated via BENCH_*.json).
func BenchmarkEngineQueue(b *testing.B) {
	const events = 10000
	eng := sim.NewSerialEngine()
	cycle := func() {
		base := eng.CurrentTime()
		for j := 0; j < events; j++ {
			// A spread of timestamps with heavy same-time collision exercises
			// both the 4-ary sift and the same-timestamp batch pop.
			sim.ScheduleFunc(eng, base+sim.VTime(j%7)*sim.USec, benchNop)
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
	cycle() // warm the free list, heap, and cohort buffer
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

func BenchmarkFlowNetworkContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewSerialEngine()
		topo := network.Mesh(4, 4, network.Config{
			LinkBandwidth: 100e9, HostBandwidth: 20e9,
		})
		net := network.NewFlowNetwork(eng, topo)
		gpus := topo.GPUs()
		done := 0
		for j := 0; j < 64; j++ {
			src := gpus[j%len(gpus)]
			dst := gpus[(j*7+3)%len(gpus)]
			if src == dst {
				dst = gpus[(j*7+4)%len(gpus)]
			}
			net.Send(src, dst, 1e8, func(sim.VTime) { done++ })
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if done != 64 {
			b.Fatal("lost flows")
		}
	}
}

func BenchmarkRingAllReduce64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewSerialEngine()
		topo := network.Ring(network.Config{
			NumGPUs: 64, LinkBandwidth: 100e9, HostBandwidth: 20e9,
		})
		net := network.NewFlowNetwork(eng, topo)
		g := task.NewGraph()
		collective.RingAllReduce(g, topo.GPUs(), 1e9, nil,
			collective.Options{})
		x := task.NewExecutor(eng, net, g, timeline.New())
		if _, err := x.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceCollect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := hwsim.CollectTrace("resnet50", 128, &gpu.A100)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Ops) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkModelFit(b *testing.B) {
	tr, err := hwsim.CollectTrace("resnet152", 128, &gpu.A100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := perfmodel.Fit(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhotonicNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewSerialEngine()
		net := network.NewPhotonicNetwork(eng, 60.5e9, 20*sim.MSec, 8)
		done := 0
		for j := 0; j < 100; j++ {
			src := network.NodeID(j % 16)
			dst := network.NodeID((j + 1) % 16)
			net.Send(src, dst, 1e8, func(sim.VTime) { done++ })
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if done != 100 {
			b.Fatal("lost transfers")
		}
	}
}
