#!/usr/bin/env bash
# Tier-2 gate: everything CI runs. Tier-1 (go build && go test) is a subset;
# this adds the race detector, go vet, TrioSim's own determinism analyzers
# (triosimvet), and the double-run replay-digest check.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> triosimvet (static determinism analyzers)"
go run ./cmd/triosimvet ./...

echo "==> triosimvet -replay (double-run event-digest check)"
go run ./cmd/triosimvet -replay

echo "==> all checks passed"
