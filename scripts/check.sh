#!/usr/bin/env bash
# Tier-2 gate: everything CI runs. Tier-1 (go build && go test) is a subset;
# this adds the race detector, go vet, TrioSim's own determinism analyzers
# (triosimvet), and the double-run replay-digest check.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> triosimvet (static determinism analyzers)"
go run ./cmd/triosimvet ./...

echo "==> triosimvet -replay (double-run event-digest check)"
go run ./cmd/triosimvet -replay

echo "==> telemetry smoke (-metrics-out + RunReport schema validation)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/triosim -model resnet50 -platform P2 -parallelism ddp \
  -trace-batch 32 -metrics-out "$tmpdir/report.json" >/dev/null
go run ./cmd/triosimvet -report "$tmpdir/report.json"

echo "==> bench smoke (compile + one iteration of every benchmark)"
go test -run '^$' -bench . -benchtime 1x . >/dev/null

echo "==> all checks passed"
