#!/usr/bin/env bash
# Tier-2 gate: everything CI runs. Tier-1 (go build && go test) is a subset;
# this adds the race detector, go vet, TrioSim's own determinism analyzers
# (triosimvet), and the double-run replay-digest check.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> race hammer (sweep pool + monitor + faults + trace cache + serving, repeated runs)"
go test -race -count=2 ./internal/sweep/... ./internal/monitor/... \
  ./internal/faults/... ./internal/tracecache/... ./internal/serving/...

echo "==> triosimvet (static determinism + concurrency-safety analyzers, baseline-gated)"
# Gate on findings NOT in the committed baseline (new violations only); the
# committed lint.baseline.json is empty, so today this is "tree must be
# clean". TRIOSIMVET_JSON_OUT, when set (CI), captures the machine-readable
# new-findings list as a build artifact.
if [[ -n "${TRIOSIMVET_JSON_OUT:-}" ]]; then
  go run ./cmd/triosimvet -baseline lint.baseline.json -json ./... \
    >"$TRIOSIMVET_JSON_OUT" || { cat "$TRIOSIMVET_JSON_OUT"; exit 1; }
else
  go run ./cmd/triosimvet -baseline lint.baseline.json ./...
fi

echo "==> triosimvet -replay (double-run event-digest check + fault injection + serving)"
go run ./cmd/triosimvet -replay -replay-faults -replay-serving

echo "==> triosimvet -cache-smoke (trace-cache hit counters + digest identity)"
go run ./cmd/triosimvet -cache-smoke

echo "==> telemetry smoke (-metrics-out + RunReport schema validation)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/triosim -model resnet50 -platform P2 -parallelism ddp \
  -trace-batch 32 -metrics-out "$tmpdir/report.json" >/dev/null
go run ./cmd/triosimvet -report "$tmpdir/report.json"

echo "==> serving smoke (-serve-sim + RunReport schema validation)"
go run ./cmd/triosim -serve-sim -model gpt2 -platform P1 -serve-requests 24 \
  -serve-rate 200 -serve-seed 7 -metrics-out "$tmpdir/serving.json" >/dev/null
go run ./cmd/triosimvet -report "$tmpdir/serving.json"

echo "==> span-trace smoke (-trace-out Chrome JSON + trace-event schema validation)"
# TRIOSIM_TRACE_OUT, when set (CI), keeps the exported trace as a build
# artifact next to the triosimvet findings.
trace_out="${TRIOSIM_TRACE_OUT:-$tmpdir/trace.json}"
go run ./cmd/triosim -model resnet18 -platform P1 -parallelism ddp \
  -trace-batch 32 -trace-out "$trace_out" >/dev/null
go run ./cmd/triosimvet -trace-check "$trace_out"

echo "==> bench smoke + benchdiff gate (allocs/op vs committed BENCH_*.json)"
go test -run '^$' -bench . -benchmem -benchtime 1x . >"$tmpdir/bench.txt"
go run ./cmd/benchdiff -out "$tmpdir/bench.json" "$tmpdir/bench.txt"
baseline="$(ls BENCH_*.json | sort | tail -1)"
go run ./cmd/benchdiff -old "$baseline" -new "$tmpdir/bench.json"

echo "==> all checks passed"
