#!/usr/bin/env bash
# Tier-2 gate: everything CI runs. Tier-1 (go build && go test) is a subset;
# this adds the race detector, go vet, TrioSim's own determinism analyzers
# (triosimvet), and the double-run replay-digest check.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> race hammer (sweep pool + monitor + faults + trace cache + serving + server, repeated runs)"
go test -race -count=2 ./internal/sweep/... ./internal/monitor/... \
  ./internal/faults/... ./internal/tracecache/... ./internal/serving/... \
  ./internal/server/...

echo "==> triosimvet (static determinism + concurrency-safety analyzers, baseline-gated)"
# Gate on findings NOT in the committed baseline (new violations only); the
# committed lint.baseline.json is empty, so today this is "tree must be
# clean". TRIOSIMVET_JSON_OUT, when set (CI), captures the machine-readable
# new-findings list as a build artifact.
if [[ -n "${TRIOSIMVET_JSON_OUT:-}" ]]; then
  go run ./cmd/triosimvet -baseline lint.baseline.json -json ./... \
    >"$TRIOSIMVET_JSON_OUT" || { cat "$TRIOSIMVET_JSON_OUT"; exit 1; }
else
  go run ./cmd/triosimvet -baseline lint.baseline.json ./...
fi

echo "==> triosimvet -replay (double-run event-digest check + fault injection + serving)"
go run ./cmd/triosimvet -replay -replay-faults -replay-serving

echo "==> triosimvet -cache-smoke (trace-cache hit counters + digest identity)"
go run ./cmd/triosimvet -cache-smoke

echo "==> telemetry smoke (-metrics-out + RunReport schema validation)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/triosim -model resnet50 -platform P2 -parallelism ddp \
  -trace-batch 32 -metrics-out "$tmpdir/report.json" >/dev/null
go run ./cmd/triosimvet -report "$tmpdir/report.json"

echo "==> serving smoke (-serve-sim + RunReport schema validation)"
go run ./cmd/triosim -serve-sim -model gpt2 -platform P1 -serve-requests 24 \
  -serve-rate 200 -serve-seed 7 -metrics-out "$tmpdir/serving.json" >/dev/null
go run ./cmd/triosimvet -report "$tmpdir/serving.json"

echo "==> span-trace smoke (-trace-out Chrome JSON + trace-event schema validation)"
# TRIOSIM_TRACE_OUT, when set (CI), keeps the exported trace as a build
# artifact next to the triosimvet findings.
trace_out="${TRIOSIM_TRACE_OUT:-$tmpdir/trace.json}"
go run ./cmd/triosim -model resnet18 -platform P1 -parallelism ddp \
  -trace-batch 32 -trace-out "$trace_out" >/dev/null
go run ./cmd/triosimvet -trace-check "$trace_out"

echo "==> triosimd smoke (daemon + load harness + coalescing + CLI byte-identity gate)"
go build -o "$tmpdir/triosimd" ./cmd/triosimd
go build -o "$tmpdir/triosimload" ./cmd/triosimload
# Reference report from the one-shot CLI: -deterministic skips wall-clock
# stamps, so the daemon-served report of the same spec must match it
# byte-for-byte (the coalescing substitution guarantee, docs/SERVER.md).
go run ./cmd/triosim -model resnet18 -platform P1 -parallelism ddp \
  -trace-batch 32 -global-batch 64 -deterministic \
  -metrics-out "$tmpdir/ref-report.json" >/dev/null
cat >"$tmpdir/gate-request.json" <<'JSON'
{"run":{"model":"resnet18","platform":"P1","parallelism":"ddp","trace_batch":32,"global_batch":64}}
JSON
run_daemon_load() { # $1 daemon binary, $2 requests, $3 concurrency
  local addr_file daemon_pid addr
  addr_file="$(mktemp "$tmpdir/addr.XXXXXX")"
  : >"$addr_file"
  "$1" -addr 127.0.0.1:0 -addr-file "$addr_file" &
  daemon_pid=$!
  for _ in $(seq 100); do [[ -s "$addr_file" ]] && break; sleep 0.1; done
  addr="$(cat "$addr_file")"
  [[ -n "$addr" ]] || { echo "daemon never wrote its address"; exit 1; }
  "$tmpdir/triosimload" -addr "$addr" \
    -requests "$2" -concurrency "$3" -distinct 3 -wait-ready 10s \
    -require-coalesce -gate-request "$tmpdir/gate-request.json" \
    -gate-report "$tmpdir/ref-report.json"
  kill -TERM "$daemon_pid"
  wait "$daemon_pid"
}
run_daemon_load "$tmpdir/triosimd" 1000 1000

echo "==> triosimd race smoke (race-built daemon under concurrent load)"
go build -race -o "$tmpdir/triosimd-race" ./cmd/triosimd
run_daemon_load "$tmpdir/triosimd-race" 200 200

echo "==> scale smoke (1,024-GPU DP×TP×PP step: replay identity, approx error bound, wall-clock budget)"
# A 128-machine rail fat-tree running llama32-1b under DP=16 × TP=8 × PP=8.
# Exact solver twice: the event digests must be byte-identical (the replay
# guarantee at cluster scale). Approximate solver (1% tolerance) once: the
# simulated step time must stay within 1% of exact. The whole leg must fit a
# wall-clock budget — the 10k-GPU "single-digit seconds" claim, scaled to CI.
scale_start=$SECONDS
scale_spec() { # $1 net_approx_tol
  cat <<JSON
{
  "model": "llama32-1b", "platform": "P3", "parallelism": "dp+tp+pp",
  "trace_batch": 16, "global_batch": 1024, "num_gpus": 1024,
  "tp_ranks": 8, "pp_stages": 8, "chunks": 4, "fuse_compute": true,
  "net_approx_tol": $1,
  "topology": {"kind": "rail-fat-tree", "machines": 128,
    "gpus_per_machine": 8, "nvlink_gbps": 300, "link_bandwidth_gbps": 50,
    "fabric_gbps": 100, "link_latency_us": 2, "host_bandwidth_gbps": 20,
    "host_latency_us": 5}
}
JSON
}
scale_spec 0    >"$tmpdir/scale-exact.json"
scale_spec 0.01 >"$tmpdir/scale-approx.json"
run_scale() { # $1 spec, $2 report out; prints the event digest
  go run ./cmd/triosim -config "$1" -deterministic -metrics-out "$2" |
    awk '/event digest/ {print $3}'
}
d1="$(run_scale "$tmpdir/scale-exact.json" "$tmpdir/scale-exact-report.json")"
d2="$(run_scale "$tmpdir/scale-exact.json" "$tmpdir/scale-exact2-report.json")"
[[ -n "$d1" && "$d1" == "$d2" ]] ||
  { echo "scale smoke: exact replay digests differ: $d1 vs $d2"; exit 1; }
run_scale "$tmpdir/scale-approx.json" "$tmpdir/scale-approx-report.json" \
  >/dev/null
step_of() { # $1 report json -> per_iteration_sec
  grep -o '"per_iteration_sec": *[0-9.eE+-]*' "$1" | head -1 | awk '{print $2}'
}
exact_step="$(step_of "$tmpdir/scale-exact-report.json")"
approx_step="$(step_of "$tmpdir/scale-approx-report.json")"
awk -v a="$exact_step" -v b="$approx_step" \
  'BEGIN { d = (a - b) / a; if (d < 0) d = -d; exit !(d <= 0.01) }' ||
  { echo "scale smoke: approx step $approx_step vs exact $exact_step exceeds 1%"; exit 1; }
(( SECONDS - scale_start <= 120 )) ||
  { echo "scale smoke: $((SECONDS - scale_start))s exceeds the 120s budget"; exit 1; }
echo "    exact digest $d1, step ${exact_step}s, approx step ${approx_step}s, $((SECONDS - scale_start))s wall"

echo "==> bench smoke + benchdiff gate (allocs/op vs committed BENCH_*.json)"
go test -run '^$' -bench . -benchmem -benchtime 1x . >"$tmpdir/bench.txt"
go run ./cmd/benchdiff -out "$tmpdir/bench.json" "$tmpdir/bench.txt"
baseline="$(ls BENCH_*.json | sort | tail -1)"
go run ./cmd/benchdiff -old "$baseline" -new "$tmpdir/bench.json"

echo "==> all checks passed"
