#!/usr/bin/env bash
# Perf snapshot: run the root bench_test.go suite at a fixed -benchtime,
# record name -> ns/op, allocs/op into BENCH_<date>.json via cmd/benchdiff,
# and gate against the most recent committed snapshot (allocs/op strictly;
# ns/op only when BENCH_NS_RATIO is set, since short benchtimes are noisy).
#
# Usage: scripts/bench.sh [-benchtime 100x]
#   BENCHTIME=10x scripts/bench.sh     # or via env
#   BENCH_NS_RATIO=1.5 scripts/bench.sh  # also gate ns/op at 1.5x
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
if [ "${1:-}" = "-benchtime" ] && [ -n "${2:-}" ]; then
  BENCHTIME="$2"
fi

out="BENCH_$(date +%F).json"
prev="$(ls BENCH_*.json 2>/dev/null | grep -vx "$out" | sort | tail -1 || true)"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench . -benchmem -benchtime $BENCHTIME"
go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" . | tee "$tmp"

echo "==> benchdiff -out $out"
go run ./cmd/benchdiff -out "$out" "$tmp"

if [ -n "$prev" ]; then
  echo "==> benchdiff $prev vs $out"
  go run ./cmd/benchdiff -old "$prev" -new "$out" \
    ${BENCH_NS_RATIO:+-max-ns-ratio "$BENCH_NS_RATIO"}
else
  echo "==> no previous BENCH_*.json; $out is the new baseline"
fi
