// Command tracegen is the tracer-substitute CLI: it builds the operator and
// tensor tables for a model-zoo workload, stamps measured times with the
// reference hardware emulator for the chosen GPU, and writes the single-GPU
// trace TrioSim consumes.
//
// Example:
//
//	tracegen -model resnet50 -batch 128 -gpu A100 -o resnet50_a100_b128.json
package main

import (
	"flag"
	"fmt"
	"log"

	"triosim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		model = flag.String("model", "resnet50", "model zoo workload name")
		batch = flag.Int("batch", 128, "mini-batch size")
		gpu   = flag.String("gpu", "A100", "GPU to trace on: A40, A100, H100")
		out   = flag.String("o", "trace.json", "output path")
	)
	flag.Parse()

	tr, err := triosim.CollectTrace(*model, *batch, *gpu)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d ops, %d tensors, iteration time %v\n",
		*out, len(tr.Ops), tr.Tensors.Len(), tr.TotalTime())
	fmt.Printf("weights %.1f MB, gradients %.1f MB, input %.1f MB/iter\n",
		float64(tr.WeightBytes())/1e6, float64(tr.GradientBytes())/1e6,
		float64(tr.InputBytes())/1e6)
}
