// Command triosimd is the simulation-as-a-service daemon: a long-running
// HTTP/JSON server that queues, coalesces, and executes TrioSim training and
// serving simulations (see docs/SERVER.md for the API).
//
//	triosimd -addr :8321
//	curl -s localhost:8321/v1/jobs -d '{"run":{"model":"resnet18","platform":"P1","parallelism":"ddp","trace_batch":32}}'
//	curl -s localhost:8321/v1/jobs/<id>/report
//
// SIGINT/SIGTERM drains gracefully: admissions stop (503), queued and
// in-flight runs finish, and after -drain-timeout anything still running is
// hard-canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"triosim/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("triosimd: ")

	var (
		addr         = flag.String("addr", ":8321", "listen address (use :0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		queue        = flag.Int("queue", 256, "max queued requests before 429")
		inflight     = flag.Int("inflight", 0, "max concurrent simulations (default GOMAXPROCS)")
		deadline     = flag.Duration("deadline", 2*time.Minute, "default per-request deadline (queue wait + run)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for runs to finish before hard-canceling")
	)
	flag.Parse()

	srv := server.New(server.Options{
		MaxQueue:        *queue,
		Workers:         *inflight,
		DefaultDeadline: *deadline,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("listening on %s", bound)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("%v: draining (up to %v)", got, *drainTimeout)
	}

	// Drain the simulation queue first so /readyz flips and queued work
	// finishes, then close the HTTP listener (which also ends any open
	// NDJSON streams).
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v (hard-canceled remaining runs)", err)
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(),
		5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		_ = httpSrv.Close()
	}
	st := srv.Stats()
	fmt.Printf("served %d requests (%d coalesced, %d completed, %d failed, %d canceled, %d rejected)\n",
		st.Submitted, st.Coalesced, st.Completed, st.Failed, st.Canceled,
		st.Rejected)
}
