package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: triosim
BenchmarkEventEngine-8             	     100	    120000 ns/op	    4096 B/op	      12 allocs/op
BenchmarkAblationFairShare/maxmin-8	      50	    240000 ns/op	    8192 B/op	      24 allocs/op
BenchmarkAblationBucketSize/25MB-8 	      10	   1000000 ns/op	         12.5 simulated-ms/iter	   16384 B/op	     100 allocs/op
BenchmarkEventEngine-8             	     100	    140000 ns/op	    4096 B/op	      14 allocs/op
PASS
ok  	triosim	1.234s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %v", len(benches), benches)
	}
	// The GOMAXPROCS suffix is stripped; duplicate runs are averaged.
	e, ok := benches["BenchmarkEventEngine"]
	if !ok {
		t.Fatalf("missing BenchmarkEventEngine (suffix not stripped?): %v",
			benches)
	}
	if e.NsPerOp != 130000 || e.AllocsPerOp != 13 {
		t.Fatalf("duplicate runs not averaged: %+v", e)
	}
	// Sub-benchmark names keep their path; custom metrics are ignored.
	e, ok = benches["BenchmarkAblationBucketSize/25MB"]
	if !ok || e.AllocsPerOp != 100 || e.BytesPerOp != 16384 {
		t.Fatalf("sub-benchmark with custom metric misparsed: %+v (ok=%v)",
			e, ok)
	}
}

func TestCompareGates(t *testing.T) {
	old := &snapshot{Benchmarks: map[string]entry{
		"BenchmarkA":    {NsPerOp: 1000, AllocsPerOp: 1000, BytesPerOp: 1 << 20},
		"BenchmarkB":    {NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 1024},
		"BenchmarkGone": {NsPerOp: 1, AllocsPerOp: 1},
	}}
	cand := &snapshot{Benchmarks: map[string]entry{
		// 2000 > 1000*1.25+128: alloc regression. Bytes tripled too.
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 2000, BytesPerOp: 3 << 20},
		// 20 <= 10*1.25+128: inside the absolute slack, fine. The 10x ns/op
		// jump must NOT fail while the ns gate is disabled.
		"BenchmarkB": {NsPerOp: 10000, AllocsPerOp: 20, BytesPerOp: 1024},
		// New benchmarks are allowed.
		"BenchmarkNew": {NsPerOp: 5, AllocsPerOp: 5},
	}}
	def := gates{allocRatio: 1.25, allocSlack: 128}
	var buf strings.Builder
	got := compare(&buf, old, cand, def)
	// BenchmarkA alloc regression + BenchmarkGone missing = 2 failures; the
	// 3x bytes growth stays informational while the bytes gate is disabled.
	if got != 2 {
		t.Fatalf("got %d failures, want 2:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "BenchmarkA: allocs/op") {
		t.Errorf("missing alloc failure:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "BenchmarkGone: missing") {
		t.Errorf("missing removed-benchmark failure:\n%s", buf.String())
	}

	// Enabling the ns gate catches BenchmarkB's 10x jump.
	buf.Reset()
	g := def
	g.nsRatio = 2
	if got := compare(&buf, old, cand, g); got != 3 {
		t.Fatalf("with ns gate: got %d failures, want 3:\n%s",
			got, buf.String())
	}

	// Enabling the bytes gate catches BenchmarkA's 3x growth.
	buf.Reset()
	g = def
	g.bytesRatio = 1.5
	g.bytesSlack = 16384
	if got := compare(&buf, old, cand, g); got != 3 {
		t.Fatalf("with bytes gate: got %d failures, want 3:\n%s",
			got, buf.String())
	}
	if !strings.Contains(buf.String(), "BenchmarkA: bytes/op") {
		t.Errorf("missing bytes failure:\n%s", buf.String())
	}
}

// The regression table lists the largest relative deltas first — B's 10x
// ns/op jump outranks A's 3x bytes and 2x allocs growth — and truncates to
// the requested count.
func TestCompareTopRegressions(t *testing.T) {
	old := &snapshot{Benchmarks: map[string]entry{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 1000, BytesPerOp: 1 << 20},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 1024},
	}}
	cand := &snapshot{Benchmarks: map[string]entry{
		"BenchmarkA": {NsPerOp: 900, AllocsPerOp: 2000, BytesPerOp: 3 << 20},
		"BenchmarkB": {NsPerOp: 10000, AllocsPerOp: 10, BytesPerOp: 1024},
	}}
	var buf strings.Builder
	compare(&buf, old, cand, gates{allocRatio: 100, top: 2})
	out := buf.String()
	if !strings.Contains(out, "top regressions") {
		t.Fatalf("no regression table:\n%s", out)
	}
	first := strings.Index(out, "ns/op     BenchmarkB")
	second := strings.Index(out, "bytes/op  BenchmarkA")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("regressions not sorted by relative delta:\n%s", out)
	}
	// top=2 drops A's allocs/op growth (the smallest delta); A's ns/op
	// *improved*, so it never appears.
	if strings.Contains(out, "allocs/op BenchmarkA") {
		t.Fatalf("table not truncated to top 2:\n%s", out)
	}
	if strings.Contains(out, "ns/op     BenchmarkA") {
		t.Fatalf("improvement listed as regression:\n%s", out)
	}

	// top=0 disables the table entirely.
	buf.Reset()
	compare(&buf, old, cand, gates{allocRatio: 100})
	if strings.Contains(buf.String(), "top regressions") {
		t.Fatalf("table printed with top=0:\n%s", buf.String())
	}
}
