package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: triosim
BenchmarkEventEngine-8             	     100	    120000 ns/op	    4096 B/op	      12 allocs/op
BenchmarkAblationFairShare/maxmin-8	      50	    240000 ns/op	    8192 B/op	      24 allocs/op
BenchmarkAblationBucketSize/25MB-8 	      10	   1000000 ns/op	         12.5 simulated-ms/iter	   16384 B/op	     100 allocs/op
BenchmarkEventEngine-8             	     100	    140000 ns/op	    4096 B/op	      14 allocs/op
PASS
ok  	triosim	1.234s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %v", len(benches), benches)
	}
	// The GOMAXPROCS suffix is stripped; duplicate runs are averaged.
	e, ok := benches["BenchmarkEventEngine"]
	if !ok {
		t.Fatalf("missing BenchmarkEventEngine (suffix not stripped?): %v",
			benches)
	}
	if e.NsPerOp != 130000 || e.AllocsPerOp != 13 {
		t.Fatalf("duplicate runs not averaged: %+v", e)
	}
	// Sub-benchmark names keep their path; custom metrics are ignored.
	e, ok = benches["BenchmarkAblationBucketSize/25MB"]
	if !ok || e.AllocsPerOp != 100 || e.BytesPerOp != 16384 {
		t.Fatalf("sub-benchmark with custom metric misparsed: %+v (ok=%v)",
			e, ok)
	}
}

func TestCompareGates(t *testing.T) {
	old := &snapshot{Benchmarks: map[string]entry{
		"BenchmarkA":    {NsPerOp: 1000, AllocsPerOp: 1000},
		"BenchmarkB":    {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkGone": {NsPerOp: 1, AllocsPerOp: 1},
	}}
	cand := &snapshot{Benchmarks: map[string]entry{
		// 2000 > 1000*1.25+128: alloc regression.
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 2000},
		// 20 <= 10*1.25+128: inside the absolute slack, fine. The 10x ns/op
		// jump must NOT fail while the ns gate is disabled.
		"BenchmarkB": {NsPerOp: 10000, AllocsPerOp: 20},
		// New benchmarks are allowed.
		"BenchmarkNew": {NsPerOp: 5, AllocsPerOp: 5},
	}}
	var buf strings.Builder
	got := compare(&buf, old, cand, 1.25, 128, 0)
	// BenchmarkA alloc regression + BenchmarkGone missing = 2 failures.
	if got != 2 {
		t.Fatalf("got %d failures, want 2:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "BenchmarkA: allocs/op") {
		t.Errorf("missing alloc failure:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "BenchmarkGone: missing") {
		t.Errorf("missing removed-benchmark failure:\n%s", buf.String())
	}

	// Enabling the ns gate catches BenchmarkB's 10x jump.
	buf.Reset()
	if got := compare(&buf, old, cand, 1.25, 128, 2); got != 3 {
		t.Fatalf("with ns gate: got %d failures, want 3:\n%s",
			got, buf.String())
	}
}
