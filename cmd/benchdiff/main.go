// Command benchdiff records and gates benchmark results, seeding the
// repo's performance trajectory: scripts/bench.sh pipes `go test -bench`
// output through `-out` to snapshot name → ns/op, allocs/op into a
// BENCH_<date>.json, and `-old`/`-new` compares two snapshots with a
// tolerance gate.
//
// The allocation gate is strict (allocs/op is deterministic at any
// -benchtime, so a pooling or hot-path regression shows up exactly); the
// ns/op and bytes/op gates are off by default because the fixed
// `-benchtime 1x` runs in CI are too noisy for wall-clock comparisons and
// pooled-buffer sizing wobbles B/op — enable them with -max-ns-ratio /
// -max-bytes-ratio for dedicated perf runs at longer benchtimes. Compare
// mode always ends with the largest per-metric regressions sorted by
// relative delta (-top), so the worst movers are visible even when every
// gate passes.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x . > bench.txt
//	benchdiff -out BENCH_2026-08-05.json bench.txt
//	benchdiff -old BENCH_2026-07-01.json -new BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// entry is one benchmark's recorded result.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// snapshot is the BENCH_<date>.json schema.
type snapshot struct {
	Benchmarks map[string]entry `json:"benchmarks"`
}

// benchLine matches `go test -bench` result lines:
//
//	BenchmarkName-8   12  3456 ns/op  789 B/op  10 allocs/op
//
// The trailing -N is the GOMAXPROCS suffix the testing package appends; it
// is stripped so snapshots compare across machines with different core
// counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseBench(r io.Reader) (map[string]entry, error) {
	type sum struct {
		e entry
		n int
	}
	acc := map[string]*sum{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], m[3]
		fields := splitFields(rest)
		var e entry
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		s := acc[name]
		if s == nil {
			s = &sum{}
			acc[name] = s
		}
		s.e.NsPerOp += e.NsPerOp
		s.e.BytesPerOp += e.BytesPerOp
		s.e.AllocsPerOp += e.AllocsPerOp
		s.n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]entry{}
	for name, s := range acc {
		out[name] = entry{
			NsPerOp:     s.e.NsPerOp / float64(s.n),
			BytesPerOp:  s.e.BytesPerOp / float64(s.n),
			AllocsPerOp: s.e.AllocsPerOp / float64(s.n),
		}
	}
	return out, nil
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' && s[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}

func readSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func emit(path string, benches map[string]entry) error {
	out, err := json.MarshalIndent(&snapshot{Benchmarks: benches}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// gates bundles the compare-mode thresholds and report options.
type gates struct {
	allocRatio, allocSlack float64 // allocs/op: baseline*ratio + slack
	bytesRatio, bytesSlack float64 // B/op gate; ratio 0 disables
	nsRatio                float64 // ns/op gate; ratio 0 disables
	top                    int     // regressions to list; 0 disables
}

// regression is one metric's relative growth between snapshots.
type regression struct {
	name, metric string
	old, new     float64
	delta        float64 // new/old - 1
}

// compare gates new against old. Returns the number of failures.
func compare(w io.Writer, old, cand *snapshot, g gates) int {
	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	added := 0
	for name := range cand.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			added++
		}
	}
	var regs []regression
	for _, name := range names {
		o := old.Benchmarks[name]
		n, ok := cand.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "FAIL %s: missing from new run (regenerate the "+
				"baseline if the benchmark was intentionally removed)\n", name)
			failures++
			continue
		}
		if limit := o.AllocsPerOp*g.allocRatio + g.allocSlack; n.AllocsPerOp > limit {
			fmt.Fprintf(w, "FAIL %s: allocs/op %.0f exceeds %.0f "+
				"(baseline %.0f, ratio %.2f + slack %.0f)\n",
				name, n.AllocsPerOp, limit, o.AllocsPerOp, g.allocRatio,
				g.allocSlack)
			failures++
		}
		if g.bytesRatio > 0 {
			if limit := o.BytesPerOp*g.bytesRatio + g.bytesSlack; n.BytesPerOp > limit {
				fmt.Fprintf(w, "FAIL %s: bytes/op %.0f exceeds %.0f "+
					"(baseline %.0f, ratio %.2f + slack %.0f)\n",
					name, n.BytesPerOp, limit, o.BytesPerOp, g.bytesRatio,
					g.bytesSlack)
				failures++
			}
		}
		if g.nsRatio > 0 && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*g.nsRatio {
			fmt.Fprintf(w, "FAIL %s: ns/op %.0f exceeds %.0f "+
				"(baseline %.0f, ratio %.2f)\n",
				name, n.NsPerOp, o.NsPerOp*g.nsRatio, o.NsPerOp, g.nsRatio)
			failures++
		}
		for _, m := range []struct {
			metric   string
			old, new float64
		}{
			{"ns/op", o.NsPerOp, n.NsPerOp},
			{"bytes/op", o.BytesPerOp, n.BytesPerOp},
			{"allocs/op", o.AllocsPerOp, n.AllocsPerOp},
		} {
			if m.old > 0 && m.new > m.old {
				regs = append(regs, regression{name: name, metric: m.metric,
					old: m.old, new: m.new, delta: m.new/m.old - 1})
			}
		}
	}
	printTopRegressions(w, regs, g.top)
	fmt.Fprintf(w, "benchdiff: %d compared, %d new, %d failed\n",
		len(names), added, failures)
	return failures
}

// printTopRegressions lists the n largest metric regressions by relative
// delta, so a cache or queue change's worst movers are visible in one table
// even when every gate passes.
func printTopRegressions(w io.Writer, regs []regression, n int) {
	if n <= 0 || len(regs) == 0 {
		return
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].delta != regs[j].delta {
			return regs[i].delta > regs[j].delta
		}
		if regs[i].name != regs[j].name {
			return regs[i].name < regs[j].name
		}
		return regs[i].metric < regs[j].metric
	})
	if len(regs) > n {
		regs = regs[:n]
	}
	fmt.Fprintf(w, "top regressions by relative delta:\n")
	for _, r := range regs {
		fmt.Fprintf(w, "  +%5.1f%%  %-9s %s: %.6g -> %.6g\n",
			100*r.delta, r.metric, r.name, r.old, r.new)
	}
}

func main() {
	out := flag.String("out", "",
		"parse `go test -bench` output (args or stdin) into this JSON snapshot")
	oldPath := flag.String("old", "", "baseline snapshot for compare mode")
	newPath := flag.String("new", "", "candidate snapshot for compare mode")
	allocRatio := flag.Float64("max-alloc-ratio", 1.25,
		"fail when allocs/op exceeds baseline*ratio+slack")
	allocSlack := flag.Float64("alloc-slack", 128,
		"absolute allocs/op headroom added to the ratio gate")
	bytesRatio := flag.Float64("max-bytes-ratio", 0,
		"fail when bytes/op exceeds baseline*ratio+slack (0 disables; pooled "+
			"buffers make B/op less stable than allocs/op)")
	bytesSlack := flag.Float64("bytes-slack", 16384,
		"absolute bytes/op headroom added to the bytes gate")
	nsRatio := flag.Float64("max-ns-ratio", 0,
		"fail when ns/op exceeds baseline*ratio (0 disables; -benchtime 1x "+
			"runs are too noisy for this gate)")
	top := flag.Int("top", 5,
		"list the N largest metric regressions by relative delta (0 disables)")
	flag.Parse()

	switch {
	case *out != "":
		var in io.Reader = os.Stdin
		if flag.NArg() > 0 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			in = f
		}
		benches, err := parseBench(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(benches) == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines in input")
			os.Exit(2)
		}
		if err := emit(*out, benches); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(benches), *out)
	case *oldPath != "" && *newPath != "":
		old, err := readSnapshot(*oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cand, err := readSnapshot(*newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if compare(os.Stdout, old, cand, gates{
			allocRatio: *allocRatio, allocSlack: *allocSlack,
			bytesRatio: *bytesRatio, bytesSlack: *bytesSlack,
			nsRatio: *nsRatio, top: *top,
		}) > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr,
			"usage: benchdiff -out SNAP.json [bench.txt] |"+
				" benchdiff -old OLD.json -new NEW.json")
		os.Exit(2)
	}
}
