// Command experiments regenerates the paper's tables and figures. Each
// figure prints the rows the paper reports (predicted vs hardware times and
// errors, ratios, speedups), produced entirely inside the simulator stack.
//
// Figures fan their scenario grids across a worker pool (internal/sweep);
// the output is byte-identical at any worker count, so -workers only
// changes wall-clock time.
//
// Usage:
//
//	experiments [-quick] [-only fig8,fig10] [-markdown] [-workers N]
//	            [-scenario-timeout 2m]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"triosim/internal/experiments"
	"triosim/internal/faults"
)

func main() {
	quick := flag.Bool("quick", false, "trim workload lists for a fast run")
	only := flag.String("only", "", "comma-separated figure ids (e.g. fig8)")
	markdown := flag.Bool("markdown", false, "emit Markdown tables")
	workers := flag.Int("workers", 0,
		"scenario sweep workers (0 = all cores, 1 = serial)")
	timeout := flag.Duration("scenario-timeout", 0,
		"per-scenario simulation timeout (0 = unbounded)")
	faultsPath := flag.String("faults", "",
		"fault schedule JSON added to the resilience figure as a custom scenario")
	noTraceCache := flag.Bool("no-trace-cache", false,
		"disable the per-figure shared trace cache (A/B measurement; output is identical either way)")
	faultSeed := flag.Int64("fault-seed", 0,
		"add a seeded generated fault scenario to the resilience figure")
	traceOut := flag.String("trace-out", "",
		"directory for per-cell span-level Chrome trace-event JSON files (created if missing)")
	flag.Parse()

	if *traceOut != "" {
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var custom *faults.Schedule
	if *faultsPath != "" {
		s, err := faults.Load(*faultsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		custom = s
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	opts := experiments.Options{Workers: *workers, Timeout: *timeout,
		NoTraceCache: *noTraceCache, TraceDir: *traceOut}
	failed := false
	for _, r := range experiments.AllFaults(*quick, opts, custom, *faultSeed) {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fig, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed = true
			continue
		}
		if *markdown {
			fig.Markdown(os.Stdout)
		} else {
			fig.Print(os.Stdout)
		}
	}
	if failed {
		os.Exit(1)
	}
}
