// Command triosimload is a closed-loop load harness for triosimd: N worker
// goroutines each keep one request in flight — submit, poll to completion,
// repeat — against a configurable pool of distinct configurations, so the
// duplication ratio (and therefore the daemon's coalescing opportunity) is
// under test control. It reports throughput, latency quantiles, and the
// coalesce hit-rate, and can gate a daemon-served RunReport byte-for-byte
// against a reference produced by `triosim -deterministic -metrics-out`.
//
//	triosimload -addr localhost:8321 -requests 1000 -concurrency 1000 -distinct 3
//	triosimload -addr localhost:8321 -gate-request req.json -gate-report base.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("triosimload: ")

	var (
		addr        = flag.String("addr", "localhost:8321", "triosimd address (host:port)")
		requests    = flag.Int("requests", 1000, "total requests to complete")
		concurrency = flag.Int("concurrency", 64, "workers, each with one request in flight")
		distinct    = flag.Int("distinct", 3, "distinct configurations in the pool (duplication ratio = requests/distinct)")
		seed        = flag.Int64("seed", 1, "seed for the per-worker configuration choice")
		model       = flag.String("model", "resnet18", "model for the generated pool")
		platform    = flag.String("platform", "P1", "platform for the generated pool")
		deadlineMS  = flag.Int64("deadline-ms", 120_000, "per-request deadline sent to the server")
		waitReady   = flag.Duration("wait-ready", 0, "poll /readyz this long before starting (0 = don't wait)")
		timeout     = flag.Duration("timeout", 3*time.Minute, "client-side wait bound per request")
		requireCoal = flag.Bool("require-coalesce", false, "exit nonzero unless at least one submission coalesced")
		gateRequest = flag.String("gate-request", "", "JSON request file for the digest-identity gate")
		gateReport  = flag.String("gate-report", "", "reference RunReport the gated request's report must match byte-for-byte")
	)
	flag.Parse()

	// One shared transport with a bounded connection pool: workers far
	// outnumber sockets by design (polling requests are short), so high
	// logical concurrency does not translate into high FD pressure.
	conns := *concurrency
	if conns > 256 {
		conns = 256
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
			MaxConnsPerHost:     conns,
		},
	}
	base := "http://" + *addr
	h := &harness{client: client, base: base}

	if *waitReady > 0 {
		if err := h.awaitReady(*waitReady); err != nil {
			log.Fatal(err)
		}
	}

	if *requests > 0 {
		pool := buildPool(*model, *platform, *distinct, *deadlineMS)
		ok := h.runLoad(pool, *requests, *concurrency, *seed, *timeout)
		if !ok {
			os.Exit(1)
		}
		if *requireCoal && h.coalesced.Load() == 0 {
			log.Fatal("require-coalesce: no submission coalesced")
		}
	}

	if *gateRequest != "" || *gateReport != "" {
		if *gateRequest == "" || *gateReport == "" {
			log.Fatal("gate needs both -gate-request and -gate-report")
		}
		if err := h.gate(*gateRequest, *gateReport, *timeout); err != nil {
			log.Fatal(err)
		}
		fmt.Println("gate:        daemon report is byte-identical to the reference")
	}
}

// request mirrors the server's submission schema loosely: the harness only
// fills the generated-pool fields and passes gate files through verbatim.
type request struct {
	Run        map[string]any `json:"run"`
	DeadlineMS int64          `json:"deadline_ms,omitempty"`
}

// buildPool generates n distinct simulate requests that share one trace key
// (same model, trace batch, GPU) and differ in global batch, so a multi-run
// load warms the daemon's trace cache while still exercising distinct
// coalescing digests.
func buildPool(model, platform string, n int, deadlineMS int64) [][]byte {
	pool := make([][]byte, n)
	for i := range pool {
		body, err := json.Marshal(request{
			Run: map[string]any{
				"model":        model,
				"platform":     platform,
				"parallelism":  "ddp",
				"trace_batch":  32,
				"global_batch": 32 * (i + 1),
			},
			DeadlineMS: deadlineMS,
		})
		if err != nil {
			log.Fatal(err)
		}
		pool[i] = body
	}
	return pool
}

type ack struct {
	ID        string `json:"id"`
	Digest    string `json:"digest"`
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced"`
}

type result struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Error       string `json:"error,omitempty"`
	EventDigest string `json:"event_digest,omitempty"`
}

type harness struct {
	client *http.Client
	base   string

	coalesced atomic.Uint64
	retried   atomic.Uint64
	failed    atomic.Uint64

	mu        sync.Mutex
	latencies []float64
}

func (h *harness) awaitReady(limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		resp, err := h.client.Get(h.base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready within %v", limit)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runLoad drives the closed loop and prints the summary. Returns false when
// any request failed.
func (h *harness) runLoad(pool [][]byte, total, workers int, seed int64,
	timeout time.Duration) bool {

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				if next.Add(1) > int64(total) {
					return
				}
				h.one(pool[rng.Intn(len(pool))], timeout)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	h.mu.Lock()
	lats := h.latencies
	h.mu.Unlock()
	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Printf("requests:    %d in %v (%.1f req/s, %d workers, %d distinct configs)\n",
		total, wall.Round(time.Millisecond),
		float64(total)/wall.Seconds(), workers, len(pool))
	fmt.Printf("coalesced:   %d (%.1f%% hit-rate), %d admission retries\n",
		h.coalesced.Load(),
		100*float64(h.coalesced.Load())/float64(total), h.retried.Load())
	fmt.Printf("latency:     p50 %.3fs  p90 %.3fs  p99 %.3fs  max %.3fs\n",
		q(0.50), q(0.90), q(0.99), q(1.0))
	fmt.Printf("failed:      %d\n", h.failed.Load())
	if stats := h.fetch("/v1/stats"); stats != nil {
		fmt.Printf("server:      %s\n", strings.TrimSpace(string(stats)))
	}
	return h.failed.Load() == 0
}

// one completes a single closed-loop request: submit (retrying admission
// rejections) then poll the result with backoff.
func (h *harness) one(body []byte, timeout time.Duration) {
	start := time.Now()
	deadline := start.Add(timeout)
	a, err := h.submit(body, deadline)
	if err != nil {
		log.Printf("submit: %v", err)
		h.failed.Add(1)
		return
	}
	if a.Coalesced {
		h.coalesced.Add(1)
	}
	res, err := h.await(a.ID, deadline)
	if err != nil {
		log.Printf("await %s: %v", a.ID, err)
		h.failed.Add(1)
		return
	}
	if res.State != "done" {
		log.Printf("job %s: %s: %s", a.ID, res.State, res.Error)
		h.failed.Add(1)
		return
	}
	h.mu.Lock()
	h.latencies = append(h.latencies, time.Since(start).Seconds())
	h.mu.Unlock()
}

func (h *harness) submit(body []byte, deadline time.Time) (*ack, error) {
	for {
		resp, err := h.client.Post(h.base+"/v1/jobs", "application/json",
			bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var a ack
			if err := json.Unmarshal(data, &a); err != nil {
				return nil, err
			}
			return &a, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Overload is a signal, not an error: honor Retry-After.
			h.retried.Add(1)
			wait := 100 * time.Millisecond
			if ra, err := strconv.Atoi(
				resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			if time.Now().Add(wait).After(deadline) {
				return nil, fmt.Errorf("gave up after %d: %s",
					resp.StatusCode, data)
			}
			time.Sleep(wait)
		default:
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
		}
	}
}

// await polls the result endpoint with exponential backoff until the job is
// terminal.
func (h *harness) await(id string, deadline time.Time) (*result, error) {
	wait := 5 * time.Millisecond
	for {
		resp, err := h.client.Get(h.base + "/v1/jobs/" + id + "/result")
		if err != nil {
			return nil, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var r result
			if err := json.Unmarshal(data, &r); err != nil {
				return nil, err
			}
			return &r, nil
		case http.StatusConflict:
			// Not terminal yet.
		default:
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("timed out waiting for %s", id)
		}
		time.Sleep(wait)
		if wait < 200*time.Millisecond {
			wait = wait * 3 / 2
		}
	}
}

// fetch GETs a path, returning nil on any error (best-effort reporting).
func (h *harness) fetch(path string) []byte {
	resp, err := h.client.Get(h.base + path)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	return data
}

// gate submits the request in reqPath and compares the daemon-served
// RunReport byte-for-byte against the reference in refPath (produced by
// `triosim -deterministic -metrics-out`).
func (h *harness) gate(reqPath, refPath string, timeout time.Duration) error {
	body, err := os.ReadFile(reqPath)
	if err != nil {
		return err
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	a, err := h.submit(body, deadline)
	if err != nil {
		return fmt.Errorf("gate submit: %w", err)
	}
	res, err := h.await(a.ID, deadline)
	if err != nil {
		return fmt.Errorf("gate await: %w", err)
	}
	if res.State != "done" {
		return fmt.Errorf("gate job %s: %s: %s", a.ID, res.State, res.Error)
	}
	got := h.fetch("/v1/jobs/" + a.ID + "/report")
	if got == nil {
		return fmt.Errorf("gate: no report for %s", a.ID)
	}
	if !bytes.Equal(got, ref) {
		return fmt.Errorf("gate: daemon report (%d bytes, job %s, digest %s) "+
			"differs from reference %s (%d bytes)",
			len(got), a.ID, res.EventDigest, refPath, len(ref))
	}
	return nil
}
