// Command traceinfo profiles a trace: per-operator-type time/FLOPs/bytes
// breakdown, phase split, operator-category summary, and parameter volumes —
// what to look at before (or instead of) simulating.
//
// Usage:
//
//	traceinfo trace.json
//	traceinfo -model resnet50 -batch 128 -gpu A100   # profile a zoo trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"triosim"
	"triosim/internal/telemetry"
	"triosim/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")

	var (
		model = flag.String("model", "", "profile a model-zoo trace instead of a file")
		batch = flag.Int("batch", 128, "batch size for -model")
		gpu   = flag.String("gpu", "A100", "GPU for -model")
	)
	flag.Parse()

	var tr *triosim.Trace
	var err error
	switch {
	case *model != "":
		tr, err = triosim.CollectTrace(*model, *batch, *gpu)
	case flag.NArg() == 1:
		tr, err = triosim.ReadTrace(flag.Arg(0))
	default:
		log.Fatal("need a trace file argument or -model")
	}
	if err != nil {
		log.Fatal(err)
	}
	stats := tr.ComputeStats()
	stats.Print(os.Stdout)
	printCategories(os.Stdout, tr)
}

// catAgg accumulates one operator category's per-phase time.
type catAgg struct {
	count int
	total triosim.VTime
	phase map[trace.Phase]triosim.VTime
}

// printCategories renders the per-category breakdown (conv, gemm, norm, …)
// with the forward/backward/optimizer split, using the same categorization
// the telemetry RunReport histograms use.
func printCategories(w *os.File, tr *triosim.Trace) {
	cats := map[string]*catAgg{}
	var total triosim.VTime
	for i := range tr.Ops {
		op := &tr.Ops[i]
		c := telemetry.OpCategory(op.Name)
		agg := cats[c]
		if agg == nil {
			agg = &catAgg{phase: map[trace.Phase]triosim.VTime{}}
			cats[c] = agg
		}
		agg.count++
		agg.total += op.Time
		agg.phase[op.Phase] += op.Time
		total += op.Time
	}
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, c)
	}
	sort.Slice(names, func(i, j int) bool {
		if cats[names[i]].total != cats[names[j]].total {
			return cats[names[i]].total.After(cats[names[j]].total)
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(w, "  %-16s %6s %14s %8s %14s %14s %14s\n",
		"category", "count", "time", "share", "forward", "backward",
		"optimizer")
	for _, c := range names {
		agg := cats[c]
		fmt.Fprintf(w, "  %-16s %6d %14v %7.1f%% %14v %14v %14v\n",
			c, agg.count, agg.total,
			100*float64(agg.total)/float64(total),
			agg.phase[trace.Forward], agg.phase[trace.Backward],
			agg.phase[trace.Optimizer])
	}
}
