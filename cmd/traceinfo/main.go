// Command traceinfo profiles a trace: per-operator-type time/FLOPs/bytes
// breakdown, phase split, and parameter volumes — what to look at before
// (or instead of) simulating.
//
// Usage:
//
//	traceinfo trace.json
//	traceinfo -model resnet50 -batch 128 -gpu A100   # profile a zoo trace
package main

import (
	"flag"
	"log"
	"os"

	"triosim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")

	var (
		model = flag.String("model", "", "profile a model-zoo trace instead of a file")
		batch = flag.Int("batch", 128, "batch size for -model")
		gpu   = flag.String("gpu", "A100", "GPU for -model")
	)
	flag.Parse()

	var tr *triosim.Trace
	var err error
	switch {
	case *model != "":
		tr, err = triosim.CollectTrace(*model, *batch, *gpu)
	case flag.NArg() == 1:
		tr, err = triosim.ReadTrace(flag.Arg(0))
	default:
		log.Fatal("need a trace file argument or -model")
	}
	if err != nil {
		log.Fatal(err)
	}
	stats := tr.ComputeStats()
	stats.Print(os.Stdout)
}
