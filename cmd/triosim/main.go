// Command triosim runs one simulation from the command line: pick a
// workload (or a trace file), a platform, and a parallelism strategy; get
// the predicted execution time and the communication/computation breakdown.
//
// Examples:
//
//	triosim -model resnet50 -platform P2 -parallelism ddp
//	triosim -model gpt2 -platform P1 -parallelism tp -validate
//	triosim -trace mytrace.json -platform P3 -parallelism pp -chunks 4
//	triosim -model vgg16 -platform P2 -parallelism ddp -timeline out.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"triosim"
	"triosim/internal/config"
	"triosim/internal/monitor"
	"triosim/internal/timeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("triosim: ")

	var (
		configPath   = flag.String("config", "", "JSON run spec (see internal/config)")
		model        = flag.String("model", "", "model zoo workload name")
		listModels   = flag.Bool("list-models", false, "print workloads and exit")
		tracePath    = flag.String("trace", "", "single-GPU trace JSON (instead of -model)")
		platform     = flag.String("platform", "P2", "platform: P1, P2, or P3")
		parallelism  = flag.String("parallelism", "ddp", "single, dp, ddp, tp, pp, or dp+tp+pp")
		traceBatch   = flag.Int("trace-batch", 128, "batch size to collect the trace at")
		traceGPU     = flag.String("trace-gpu", "", "GPU to trace on (A40/A100/H100; default platform GPU)")
		globalBatch  = flag.Int("global-batch", 0, "simulated total batch (default: trace batch)")
		numGPUs      = flag.Int("gpus", 0, "GPUs to use (default: platform size)")
		chunks       = flag.Int("chunks", 1, "GPipe micro-batches for pp")
		collectiveAl = flag.String("collective", "", "allreduce algorithm: auto, ring, tree, or hier")
		tpRanks      = flag.Int("tp", 0, "tensor-parallel group size for dp+tp+pp")
		ppStages     = flag.Int("pp", 0, "pipeline stages for dp+tp+pp")
		fuseCompute  = flag.Bool("fuse-compute", false, "collapse per-op chains into fused tasks (large-scale runs)")
		netApproxTol = flag.Float64("net-approx-tol", 0, "flow-solver approximate-equilibrium tolerance (0 = exact)")
		iterations   = flag.Int("iterations", 1, "training iterations to simulate")
		validate     = flag.Bool("validate", false, "also run the hardware emulator and report error")
		memCheck     = flag.Bool("memory", false, "estimate per-GPU peak memory and capacity fit")
		timelineOut  = flag.String("timeline", "", "write a Chrome-trace timeline JSON here")
		timelineHTML = flag.String("timeline-html", "", "write a self-contained HTML timeline viewer here")
		traceOut     = flag.String("trace-out", "", "write the span-level Chrome trace-event JSON here (open in Perfetto or chrome://tracing)")
		metricsOut   = flag.String("metrics-out", "", "write the telemetry RunReport JSON here")
		determ       = flag.Bool("deterministic", false, "omit wall-clock fields so the RunReport is byte-identical across runs (and to a triosimd-served report)")
		monitorAddr  = flag.String("monitor", "", "serve live /status, /metrics, /healthz on this address (e.g. :8080)")
		faultsPath   = flag.String("faults", "", "inject a fault schedule JSON (triosim.faults/v1; see docs/RESILIENCE.md)")
		faultSeed    = flag.Int64("fault-seed", 0, "generate a seeded fault schedule sized to the fault-free baseline")

		serveSim      = flag.Bool("serve-sim", false, "run a request-level inference-serving simulation instead of training (see docs/SERVING.md)")
		serveSched    = flag.String("serve-sched", "fifo", "serving scheduler: fifo, priority, or sjf")
		serveRequests = flag.Int("serve-requests", 0, "serving workload length (default 64)")
		serveRate     = flag.Float64("serve-rate", 0, "Poisson arrival rate in req/s (default 100)")
		serveSeed     = flag.Int64("serve-seed", 0, "serving workload seed (default 1)")
		serveBatch    = flag.Int("serve-batch", 0, "continuous-batch cap per replica (default 8)")
		serveReplicas = flag.Int("serve-replicas", 0, "model replicas (default: all platform GPUs)")
		serveWorkload = flag.String("serve-workload", "", "request trace JSON instead of the Poisson generator")
	)
	flag.Parse()

	if *serveSim {
		runServing(serveFlags{
			model:    *model,
			platform: *platform,
			sched:    *serveSched,
			requests: *serveRequests,
			rate:     *serveRate,
			seed:     *serveSeed,
			batch:    *serveBatch,
			replicas: *serveReplicas,
			workload: *serveWorkload,
		}, *metricsOut, *traceOut, *faultsPath)
		return
	}

	if *listModels {
		for _, m := range triosim.Models() {
			fmt.Println(m)
		}
		return
	}

	if *configPath != "" {
		spec, err := config.Load(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := spec.ToCore()
		if err != nil {
			log.Fatal(err)
		}
		runAndReport(cfg, *validate, *memCheck, *determ, *timelineOut,
			*timelineHTML, *traceOut, *metricsOut, *monitorAddr, *faultsPath,
			*faultSeed)
		return
	}

	plat, err := triosim.PlatformByName(*platform)
	if err != nil {
		log.Fatal(err)
	}
	cfg := triosim.Config{
		Model:        *model,
		Platform:     plat,
		Parallelism:  triosim.Parallelism(*parallelism),
		TraceBatch:   *traceBatch,
		TraceGPU:     *traceGPU,
		GlobalBatch:  *globalBatch,
		NumGPUs:      *numGPUs,
		MicroBatches: *chunks,
		Iterations:   *iterations,
		Collective:   *collectiveAl,
		TPRanks:      *tpRanks,
		PPStages:     *ppStages,
		FuseCompute:  *fuseCompute,
		NetApproxTol: *netApproxTol,
	}
	if *tracePath != "" {
		tr, err := triosim.ReadTrace(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Trace = tr
		if cfg.Model == "" {
			cfg.Model = tr.Model
		}
	}
	if cfg.Model == "" && cfg.Trace == nil {
		log.Fatal("need -model or -trace (see -list-models)")
	}

	runAndReport(cfg, *validate, *memCheck, *determ, *timelineOut,
		*timelineHTML, *traceOut, *metricsOut, *monitorAddr, *faultsPath,
		*faultSeed)
}

// runAndReport executes one simulation and prints the result block.
func runAndReport(cfg triosim.Config, validate, memCheck, deterministic bool,
	timelineOut, timelineHTML, traceOut, metricsOut, monitorAddr,
	faultsPath string, faultSeed int64) {
	plat := cfg.Platform
	// The sim core never reads the host clock (triosimvet: no-wallclock);
	// the WallClock metric is opt-in from the boundary. -deterministic keeps
	// the clock out so the RunReport carries no wall-clock-derived fields and
	// is byte-identical across runs of the same configuration — the property
	// the triosimd digest gate in scripts/check.sh compares against.
	if !deterministic {
		cfg.Clock = time.Now
	}
	if metricsOut != "" {
		cfg.Telemetry = true
	}
	if traceOut != "" || timelineHTML != "" {
		// The HTML view highlights the critical path, so it needs spans too.
		cfg.SpanTrace = true
	}
	// Fault injection runs a fault-free baseline first: it sizes seeded
	// schedules (the generator needs a horizon) and anchors the slowdown
	// comparison printed below.
	var faultBase *triosim.Result
	if faultsPath != "" || faultSeed != 0 {
		bcfg := cfg
		bcfg.Faults = nil
		base, err := triosim.Simulate(bcfg)
		if err != nil {
			log.Fatal(err)
		}
		faultBase = base
		if faultsPath != "" {
			sched, err := triosim.LoadFaultSchedule(faultsPath)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Faults = sched
		} else {
			topo := triosim.BuildTopology(cfg.Platform)
			sched, err := triosim.GenerateFaults(faultSeed,
				triosim.FaultGenConfig{
					NumGPUs:      len(topo.GPUs()),
					NumLinks:     len(topo.Links),
					Horizon:      base.TotalTime,
					LinkDegrades: 1,
					GPUSlowdowns: 1,
				})
			if err != nil {
				log.Fatal(err)
			}
			cfg.Faults = sched
		}
	}
	var mon *monitor.RTM
	if monitorAddr != "" {
		cfg.Metrics = triosim.NewMetricsRegistry()
		mon = monitor.New()
		mon.Registry = cfg.Metrics
		mon.Clock = time.Now
		cfg.Hooks = append(cfg.Hooks, mon.Hook())
		go func() {
			if err := mon.Serve(monitorAddr); err != nil {
				log.Printf("monitor: %v", err)
			}
		}()
		fmt.Printf("monitor:         http://%s/status (also /metrics, /healthz)\n",
			monitorAddr)
	}
	res, err := triosim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if mon != nil {
		mon.MarkDone()
	}
	fmt.Printf("workload:        %s on %s (%d×%s, %s)\n",
		cfg.Model, plat.Name, orDefault(cfg.NumGPUs, plat.NumGPUs),
		plat.GPU.Name, cfg.Parallelism)
	fmt.Printf("per-iteration:   %v\n", res.PerIteration)
	fmt.Printf("total (%d iter): %v\n", orDefault(cfg.Iterations, 1),
		res.TotalTime)
	fmt.Printf("compute time:    %v\n", res.ComputeTime)
	fmt.Printf("comm time:       %v (%.1f%% of total)\n", res.CommTime,
		100*float64(res.CommTime)/float64(res.TotalTime))
	fmt.Printf("host staging:    %v\n", res.HostLoadTime)
	fmt.Printf("simulator:       %d tasks, %d events, %v wall clock\n",
		res.Tasks, res.Events, res.WallClock)
	fmt.Printf("event digest:    %#x\n", res.EventDigest)
	if cp := res.CriticalPath; cp != nil && cp.LengthSec > 0 {
		pct := func(v float64) float64 { return 100 * v / cp.LengthSec }
		fmt.Printf("critical path:   %d steps over %.6gs — compute %.1f%%, comm %.1f%%, idle %.1f%%, fault-stretch %.1f%%\n",
			len(cp.Steps), cp.LengthSec,
			pct(cp.Attribution.ComputeSec), pct(cp.Attribution.CommSec),
			pct(cp.Attribution.IdleSec), pct(cp.Attribution.FaultStretchSec))
		if len(cp.Slack) > 0 {
			s := cp.Slack[0]
			fmt.Printf("nearest slack:   %s on %s (%.6gs of slack)\n",
				s.Name, s.Track, s.SlackSec)
		}
	}

	if cfg.Faults != nil {
		fmt.Printf("faults:          %d windows, %d failures\n",
			len(cfg.Faults.Windows()), len(cfg.Faults.Failures()))
		if faultBase != nil {
			fmt.Printf("fault-free:      %v (slowdown ×%.3f)\n",
				faultBase.TotalTime,
				float64(res.TotalTime)/float64(faultBase.TotalTime))
		}
		if rr := res.Resilience; rr != nil {
			fmt.Printf("goodput:         %.3f (extended %v: useful %v, ckpt %v, replay %v, restart %v)\n",
				res.Goodput, rr.TotalTime, rr.UsefulTime,
				rr.CheckpointTime, rr.ReplayTime, rr.RestartTime)
		}
	}

	if metricsOut != "" && res.Report != nil {
		f, err := os.Create(metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Report.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics:         %s (%s)\n", metricsOut,
			res.Report.Schema)
	}

	if validate {
		if cfg.Trace != nil {
			log.Fatal("-validate needs a zoo model (the emulator re-runs it natively)")
		}
		cmp, err := triosim.Validate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hardware (emulated): %v\n", cmp.Actual)
		fmt.Printf("prediction error:    %.2f%%\n", cmp.Error*100)
	}

	if memCheck {
		rep, err := triosim.MemoryFootprint(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for i, f := range rep.PerGPU {
			fmt.Printf("gpu%d memory:     %.1f GB (w %.1f + g %.1f + opt %.1f + act %.1f + in %.1f)\n",
				i, gb(f.Total()), gb(f.Weights), gb(f.Gradients),
				gb(f.OptimizerState), gb(f.Activations), gb(f.Input))
		}
		verdict := "fits"
		if !rep.Fits {
			verdict = "OUT OF MEMORY"
		}
		fmt.Printf("capacity check:  %s (worst GPU at %.0f%% of %.0f GB)\n",
			verdict, rep.WorstUtilization*100, gb(plat.GPU.MemCapacity))
	}

	if timelineOut != "" {
		f, err := os.Create(timelineOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.Timeline.ExportChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline:        %s (chrome://tracing format)\n",
			timelineOut)
	}

	if traceOut != "" {
		if res.Spans == nil {
			log.Fatal("-trace-out: run recorded no spans")
		}
		if err := res.Spans.WriteChromeTraceFile(traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("span trace:      %s (open in Perfetto / chrome://tracing)\n",
			traceOut)
	}

	if timelineHTML != "" {
		f, err := os.Create(timelineHTML)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		title := fmt.Sprintf("%s · %s · %s", cfg.Model, plat.Name,
			cfg.Parallelism)
		critical, summary := criticalOverlay(res)
		if err := res.Timeline.ExportHTMLHighlight(f, title, critical,
			summary); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline html:   %s\n", timelineHTML)
	}
}

// criticalOverlay builds the HTML viewer's critical-path matcher and summary
// lines from the run's critical-path report (nil, nil when none).
func criticalOverlay(res *triosim.Result) (func(*timeline.Interval) bool,
	[]string) {
	cp := res.CriticalPath
	if cp == nil || len(cp.Steps) == 0 {
		return nil, nil
	}
	// Match a timeline interval to a critical step by label and (tolerant)
	// start/end: the two views are recorded independently but from the same
	// virtual times.
	type window struct{ start, end float64 }
	steps := map[string][]window{}
	for _, st := range cp.Steps {
		steps[st.Name] = append(steps[st.Name], window{st.StartSec, st.EndSec})
	}
	eps := 1e-9 * math.Max(1, cp.MakespanSec)
	critical := func(iv *timeline.Interval) bool {
		for _, w := range steps[iv.Label] {
			if math.Abs(iv.Start.Seconds()-w.start) <= eps &&
				math.Abs(iv.End.Seconds()-w.end) <= eps {
				return true
			}
		}
		return false
	}
	pct := func(v float64) float64 {
		if cp.LengthSec <= 0 {
			return 0
		}
		return 100 * v / cp.LengthSec
	}
	summary := []string{
		fmt.Sprintf("critical path: %d steps over %.6gs — compute %.1f%%, comm %.1f%%, idle %.1f%%, fault-stretch %.1f%%, other %.1f%%",
			len(cp.Steps), cp.LengthSec,
			pct(cp.Attribution.ComputeSec), pct(cp.Attribution.CommSec),
			pct(cp.Attribution.IdleSec), pct(cp.Attribution.FaultStretchSec),
			pct(cp.Attribution.HostLoadSec+cp.Attribution.OtherSec)),
	}
	for i, s := range cp.Slack {
		if i >= 3 {
			break
		}
		summary = append(summary, fmt.Sprintf(
			"near-critical: %s on %s — slack %.6gs", s.Name, s.Track,
			s.SlackSec))
	}
	return critical, summary
}

func gb(b int64) float64 { return float64(b) / (1 << 30) }

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
