package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"triosim"
)

// serveFlags carries the -serve-* flag values into runServing.
type serveFlags struct {
	model    string
	platform string
	sched    string
	requests int
	rate     float64
	seed     int64
	batch    int
	replicas int
	workload string
}

// runServing executes one request-level serving simulation and prints the
// summary block (the -serve-sim path of the CLI).
func runServing(sf serveFlags, metricsOut, traceOut, faultsPath string) {
	if sf.model == "" {
		log.Fatal("-serve-sim needs -model (a zoo transformer; see docs/SERVING.md)")
	}
	plat, err := triosim.PlatformByName(sf.platform)
	if err != nil {
		log.Fatal(err)
	}
	cfg := triosim.ServeConfig{
		Platform: plat,
		Clock:    time.Now,
		Serving: triosim.ServingConfig{
			Model:     sf.model,
			Scheduler: sf.sched,
			MaxBatch:  sf.batch,
			Replicas:  sf.replicas,
			Arrivals: triosim.ServingArrivalConfig{
				Seed:     sf.seed,
				Rate:     sf.rate,
				Requests: sf.requests,
			},
		},
	}
	if sf.workload != "" {
		reqs, err := triosim.LoadServingWorkload(sf.workload)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Serving.Workload = reqs
	}
	if metricsOut != "" {
		cfg.Telemetry = true
	}
	if traceOut != "" {
		cfg.SpanTrace = true
	}
	if faultsPath != "" {
		sched, err := triosim.LoadFaultSchedule(faultsPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = sched
	}

	res, err := triosim.Serve(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("serving:         %s on %s (%d replicas, %s scheduler, batch ≤ %d)\n",
		cfg.Serving.Model, plat.Name, m.Replicas, m.Scheduler, m.MaxBatch)
	fmt.Printf("requests:        %d completed of %d (offered %.1f req/s)\n",
		m.Completed, m.Requests, m.OfferedRPS)
	fmt.Printf("throughput:      %.1f req/s, %.0f tokens/s over %.6gs\n",
		m.ThroughputRPS, m.TokensPerSec, m.MakespanSec)
	fmt.Printf("latency:         p50 %.3fms  p99 %.3fms  p999 %.3fms  max %.3fms\n",
		m.Latency.P50Sec*1e3, m.Latency.P99Sec*1e3,
		m.Latency.P999Sec*1e3, m.Latency.MaxSec*1e3)
	fmt.Printf("ttft:            p50 %.3fms  p99 %.3fms\n",
		m.TTFT.P50Sec*1e3, m.TTFT.P99Sec*1e3)
	fmt.Printf("batching:        %.2f mean batch (%.0f%% of cap), %d steps\n",
		m.MeanBatch, m.BatchingEfficiency*100, m.Steps)
	fmt.Printf("kv cache:        %.2f GB peak\n", m.KVPeakBytes/(1<<30))
	fmt.Printf("simulator:       %d events, %v wall clock, digest %#x\n",
		res.Events, res.WallClock, res.EventDigest)

	if metricsOut != "" && res.Report != nil {
		f, err := os.Create(metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Report.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics:         %s (%s)\n", metricsOut,
			res.Report.Schema)
	}
	if traceOut != "" {
		if res.Spans == nil {
			log.Fatal("-trace-out: run recorded no spans")
		}
		if err := res.Spans.WriteChromeTraceFile(traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("span trace:      %s (open in Perfetto / chrome://tracing)\n",
			traceOut)
	}
}
