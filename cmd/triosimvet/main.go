// Command triosimvet is TrioSim's determinism gate. By default it runs the
// internal/lint static analyzers over the whole module and reports every
// violation of the simulator's determinism contract (wall-clock reads,
// unseeded randomness, order-dependent map iteration, goroutines in the
// serial engine's domain, raw VTime comparisons) with file:line positions.
//
//	triosimvet ./...            # analyze the module containing the cwd
//	triosimvet -json ./...      # machine-readable findings
//	triosimvet -baseline lint.baseline.json
//	                            # gate only on findings NOT in the committed
//	                            # baseline (new violations); stale baseline
//	                            # entries are reported, not fatal
//	triosimvet -write-baseline lint.baseline.json
//	                            # accept the current findings as the baseline
//	triosimvet -replay          # runtime gate: run a workload twice and
//	                            # compare event-schedule digests
//	triosimvet -replay -replay-serving
//	                            # also gate the request-level serving layer
//	                            # (same seed replays, different seed moves
//	                            # the digest, observers don't perturb it)
//	triosimvet -report r.json   # validate a telemetry RunReport's schema
//	                            # and accounting invariants
//	triosimvet -trace-check t.json
//	                            # validate a Chrome trace-event JSON export
//	                            # (well-formed phases, per-track monotonic ts)
//
// Exit status: 0 clean, 1 findings or replay divergence, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"triosim/internal/core"
	"triosim/internal/faults"
	"triosim/internal/gpu"
	"triosim/internal/lint"
	"triosim/internal/serving"
	"triosim/internal/sim"
	"triosim/internal/spantrace"
	"triosim/internal/sweep"
	"triosim/internal/telemetry"
	"triosim/internal/tracecache"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		replay  = flag.Bool("replay", false,
			"run the replay-digest determinism check instead of static analysis")
		replayModel = flag.String("replay-model", "resnet18",
			"model zoo workload for -replay")
		replayRuns = flag.Int("replay-runs", 2, "simulation repetitions for -replay")
		replayFaults = flag.Bool("replay-faults", false,
			"with -replay: also check fault-injection determinism (no-op schedule identity + seeded-schedule replay)")
		replayFaultSeed = flag.Int64("replay-fault-seed", 7,
			"fault-generator seed for -replay-faults")
		replayServing = flag.Bool("replay-serving", false,
			"with -replay: also check request-level serving determinism (seeded replay identity, seed sensitivity, observer transparency)")
		baselinePath = flag.String("baseline", "",
			"compare findings against an accepted-findings baseline file; only new findings fail")
		writeBaseline = flag.String("write-baseline", "",
			"write the current findings to a baseline file and exit 0")
		reportPath = flag.String("report", "",
			"validate a telemetry RunReport JSON file instead of static analysis")
		traceCheckPath = flag.String("trace-check", "",
			"validate a Chrome trace-event JSON file instead of static analysis")
		cacheSmoke = flag.Bool("cache-smoke", false,
			"run the trace-cache effectiveness smoke: a small sweep twice over one shared cache (second pass must hit, digests must match a cache-off run)")
	)
	flag.Parse()

	if *reportPath != "" {
		os.Exit(runReportCheck(*reportPath))
	}
	if *traceCheckPath != "" {
		os.Exit(runTraceCheck(*traceCheckPath))
	}
	if *cacheSmoke {
		os.Exit(runCacheSmoke(*replayModel))
	}
	if *replay {
		code := runReplay(*replayModel, *replayRuns, *replayFaults,
			*replayFaultSeed)
		if code == 0 && *replayServing {
			code = runServingReplay(*replayRuns)
		}
		os.Exit(code)
	}
	os.Exit(runLint(*jsonOut, *baselinePath, *writeBaseline))
}

// runReportCheck validates a RunReport file: schema tag, per-GPU time
// accounting (compute + exposed comm + exposed host + idle = total), link
// utilization bounds, and collective bandwidth sanity.
func runReportCheck(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -report:", err)
		return 2
	}
	rep, err := telemetry.ParseReport(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -report:", err)
		return 1
	}
	if err := rep.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -report:", err)
		return 1
	}
	fmt.Printf("report ok: %s %s/%s, %d GPUs, %d links, %d collectives, %v simulated\n",
		rep.Model, rep.Platform, rep.Parallelism, len(rep.GPUs),
		len(rep.Links), len(rep.Collectives), rep.TotalSec)
	fmt.Printf("engine: %d events, queue high-water %d\n",
		rep.Engine.Events, rep.Engine.QueueHighWater)
	if tc := rep.TraceCache; tc != nil {
		fmt.Printf("trace cache: %d/%d trace hits/misses, %d/%d timer hits/misses, %d traces (~%d bytes)\n",
			tc.TraceHits, tc.TraceMisses, tc.TimerHits, tc.TimerMisses,
			tc.Traces, tc.Bytes)
	}
	return 0
}

// runTraceCheck validates a Chrome trace-event JSON export: every event has
// a known phase, duration events carry ts/pid/tid with per-track monotonic
// timestamps, counters carry values, and flow ends match flow starts.
func runTraceCheck(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -trace-check:", err)
		return 2
	}
	if err := spantrace.ValidateChromeTrace(data); err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -trace-check:", err)
		return 1
	}
	fmt.Printf("trace ok: %s (%d bytes)\n", path, len(data))
	return 0
}

func runLint(jsonOut bool, baselinePath, writeBaseline string) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet:", err)
		return 2
	}
	findings := lint.Run(mod)

	if writeBaseline != "" {
		b := lint.NewBaseline(root, findings)
		if err := b.Write(writeBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "triosimvet: -write-baseline:", err)
			return 2
		}
		fmt.Printf("baseline written: %s (%d accepted finding(s))\n",
			writeBaseline, len(findings))
		return 0
	}

	if baselinePath != "" {
		b, err := lint.ReadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "triosimvet: -baseline:", err)
			return 2
		}
		diff := b.Diff(root, findings)
		// Stale entries are informational: the violation was fixed, the
		// baseline should be regenerated to shrink.
		for _, e := range diff.Stale {
			fmt.Fprintf(os.Stderr,
				"triosimvet: stale baseline entry (fixed? regenerate with -write-baseline): [%s] %s: %s\n",
				e.Analyzer, e.File, e.Message)
		}
		// Only new findings are reported and gate the exit status.
		findings = diff.New
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "triosimvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(root, f.File); err == nil {
				rel.File = r
			}
			fmt.Println(rel)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "triosimvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// runReplay is the runtime half of the determinism gate: the same
// configuration simulated repeatedly must dispatch a byte-identical event
// schedule (same FNV-1a digest) and predict the same time.
func runReplay(model string, runs int, withFaults bool,
	faultSeed int64) int {
	if runs < 2 {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay-runs must be >= 2")
		return 2
	}
	p1 := gpu.P1
	cfg := core.Config{
		Model:       model,
		Platform:    &p1,
		Parallelism: core.DDP,
		TraceBatch:  32,
	}
	var first *core.Result
	for i := 0; i < runs; i++ {
		res, err := core.Simulate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "triosimvet: -replay:", err)
			return 2
		}
		if first == nil {
			first = res
			continue
		}
		if res.EventDigest != first.EventDigest ||
			res.Events != first.Events ||
			res.TotalTime != first.TotalTime {
			fmt.Fprintf(os.Stderr,
				"triosimvet: replay divergence on run %d: digest %#x (%d events, %v) vs %#x (%d events, %v)\n",
				i+1, res.EventDigest, res.Events, res.TotalTime,
				first.EventDigest, first.Events, first.TotalTime)
			return 1
		}
	}
	// Telemetry must be observation-only: the same run with the collector
	// attached dispatches a byte-identical event schedule.
	tcfg := cfg
	tcfg.Telemetry = true
	tres, err := core.Simulate(tcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay:", err)
		return 2
	}
	if tres.EventDigest != first.EventDigest || tres.Events != first.Events {
		fmt.Fprintf(os.Stderr,
			"triosimvet: telemetry perturbed the schedule: digest %#x (%d events) vs %#x (%d events)\n",
			tres.EventDigest, tres.Events, first.EventDigest, first.Events)
		return 1
	}
	fmt.Printf("replay ok: %s ×%d runs (+1 with telemetry), digest %#x, %d events, %v simulated\n",
		model, runs, first.EventDigest, first.Events, first.TotalTime)
	if withFaults {
		return runFaultReplay(cfg, first, faultSeed)
	}
	return 0
}

// runFaultReplay extends the replay gate to fault injection: a no-op fault
// schedule must leave the event schedule bit-identical, and an effective
// seeded schedule must itself replay to the same digest twice.
func runFaultReplay(cfg core.Config, base *core.Result, seed int64) int {
	// Leg 1: empty / factor-1 schedules arm nothing.
	noop := cfg
	noop.Faults = &faults.Schedule{Events: []faults.Event{
		{Kind: faults.LinkDegrade, Link: 0, Factor: 1,
			Start: sim.MSec, Duration: sim.MSec},
		{Kind: faults.GPUSlowdown, GPU: 0, Factor: 1,
			Start: sim.MSec, Duration: sim.MSec},
	}}
	nres, err := core.Simulate(noop)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay-faults:", err)
		return 2
	}
	if nres.EventDigest != base.EventDigest || nres.Events != base.Events {
		fmt.Fprintf(os.Stderr,
			"triosimvet: no-op fault schedule perturbed the run: digest %#x (%d events) vs %#x (%d events)\n",
			nres.EventDigest, nres.Events, base.EventDigest, base.Events)
		return 1
	}

	// Leg 2: a seeded effective schedule replays to the same digest.
	topo := core.BuildTopology(cfg.Platform)
	sched, err := faults.Generate(seed, faults.GenConfig{
		NumGPUs:      len(topo.GPUs()),
		NumLinks:     len(topo.Links),
		Horizon:      base.TotalTime,
		LinkDegrades: 1,
		GPUSlowdowns: 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay-faults:", err)
		return 2
	}
	fcfg := cfg
	fcfg.Faults = sched
	first, err := core.Simulate(fcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay-faults:", err)
		return 2
	}
	again, err := core.Simulate(fcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay-faults:", err)
		return 2
	}
	if first.EventDigest != again.EventDigest ||
		first.Events != again.Events ||
		first.TotalTime != again.TotalTime {
		fmt.Fprintf(os.Stderr,
			"triosimvet: fault replay divergence: digest %#x (%d events, %v) vs %#x (%d events, %v)\n",
			again.EventDigest, again.Events, again.TotalTime,
			first.EventDigest, first.Events, first.TotalTime)
		return 1
	}
	if first.EventDigest == base.EventDigest {
		fmt.Fprintf(os.Stderr,
			"triosimvet: seeded fault schedule (seed %d) had no effect on the digest\n",
			seed)
		return 1
	}
	fmt.Printf("fault replay ok: no-op identity + seed %d ×2 runs, digest %#x, %d events, %v simulated\n",
		seed, first.EventDigest, first.Events, first.TotalTime)
	return 0
}

// runServingReplay extends the replay gate to the request-level serving
// layer: the same seeded serving configuration must replay to a
// byte-identical event schedule, a different arrival seed must move the
// digest, and attaching observers (telemetry + span tracing) must leave the
// schedule untouched.
func runServingReplay(runs int) int {
	cfg := func(seed int64, observe bool) core.ServeConfig {
		p := gpu.P1
		return core.ServeConfig{
			Platform:  &p,
			Telemetry: observe,
			SpanTrace: observe,
			Serving: serving.Config{
				Model:    "gpt2",
				MaxBatch: 4,
				Arrivals: serving.ArrivalConfig{
					Seed: 7, Rate: 300, Requests: 32,
				},
			},
		}
	}
	base := cfg(7, false)
	var first *core.ServeResult
	for i := 0; i < runs; i++ {
		res, err := core.Serve(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "triosimvet: -replay-serving:", err)
			return 2
		}
		if first == nil {
			first = res
			continue
		}
		if res.EventDigest != first.EventDigest ||
			res.Events != first.Events ||
			res.TotalTime != first.TotalTime {
			fmt.Fprintf(os.Stderr,
				"triosimvet: serving replay divergence on run %d: digest %#x (%d events, %v) vs %#x (%d events, %v)\n",
				i+1, res.EventDigest, res.Events, res.TotalTime,
				first.EventDigest, first.Events, first.TotalTime)
			return 1
		}
	}

	// A different arrival seed must change the workload, and with it the
	// event schedule — otherwise the seed isn't reaching the generator.
	reseeded := cfg(7, false)
	reseeded.Serving.Arrivals.Seed = 8
	other, err := core.Serve(reseeded)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay-serving:", err)
		return 2
	}
	if other.EventDigest == first.EventDigest {
		fmt.Fprintf(os.Stderr,
			"triosimvet: serving arrival seed had no effect on the digest (%#x)\n",
			first.EventDigest)
		return 1
	}

	// Observers (telemetry collector + span recorder) must be record-only.
	obs, err := core.Serve(cfg(7, true))
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay-serving:", err)
		return 2
	}
	if obs.EventDigest != first.EventDigest || obs.Events != first.Events {
		fmt.Fprintf(os.Stderr,
			"triosimvet: serving observers perturbed the schedule: digest %#x (%d events) vs %#x (%d events)\n",
			obs.EventDigest, obs.Events, first.EventDigest, first.Events)
		return 1
	}
	fmt.Printf("serving replay ok: gpt2 ×%d runs (+1 reseeded, +1 observed), digest %#x, %d events, %v simulated\n",
		runs, first.EventDigest, first.Events, first.TotalTime)
	return 0
}

// runCacheSmoke is the runtime gate for the trace cache: a small parallel
// sweep run twice in-process over one shared store. The second pass must be
// served entirely from cache (hits grow, misses don't), and every scenario's
// event digest must be identical across both passes AND a cache-off run —
// the cache may only save work, never change results.
func runCacheSmoke(model string) int {
	store := tracecache.New()
	grid := func(cached bool) []sweep.Scenario {
		var scs []sweep.Scenario
		for _, par := range []core.Parallelism{core.DP, core.DDP, core.TP} {
			par := par
			scs = append(scs, sweep.Scenario{
				Name: string(par),
				Build: func() core.Config {
					p := gpu.P1
					cfg := core.Config{
						Model: model, Platform: &p, Parallelism: par,
						TraceBatch: 32,
					}
					if cached {
						cfg.Cache = store
					}
					return cfg
				},
			})
		}
		return scs
	}
	run := func(label string, opts sweep.Options,
		scs []sweep.Scenario) ([]sweep.Result[sweep.SimResult], bool) {
		res := sweep.Simulate(opts, scs)
		if err := sweep.FirstErr(res); err != nil {
			fmt.Fprintf(os.Stderr, "triosimvet: -cache-smoke %s: %v\n",
				label, err)
			return nil, false
		}
		return res, true
	}

	first, ok := run("pass 1", sweep.Options{Workers: 4}, grid(true))
	if !ok {
		return 2
	}
	st1 := store.Stats()
	if st1.TraceMisses == 0 {
		fmt.Fprintln(os.Stderr,
			"triosimvet: -cache-smoke: first pass never built a trace")
		return 1
	}
	second, ok := run("pass 2", sweep.Options{Workers: 4}, grid(true))
	if !ok {
		return 2
	}
	st2 := store.Stats()
	if st2.TraceHits <= st1.TraceHits {
		fmt.Fprintf(os.Stderr,
			"triosimvet: -cache-smoke: second pass took no cache hits (%d before, %d after)\n",
			st1.TraceHits, st2.TraceHits)
		return 1
	}
	if st2.TraceMisses != st1.TraceMisses {
		fmt.Fprintf(os.Stderr,
			"triosimvet: -cache-smoke: second pass rebuilt traces (%d misses, was %d)\n",
			st2.TraceMisses, st1.TraceMisses)
		return 1
	}
	uncached, ok := run("cache-off", sweep.Options{Workers: 4, NoTraceCache: true},
		grid(false))
	if !ok {
		return 2
	}
	for i := range first {
		f, s, u := first[i].Value, second[i].Value, uncached[i].Value
		if f.Res.EventDigest != s.Res.EventDigest ||
			f.Res.EventDigest != u.Res.EventDigest {
			fmt.Fprintf(os.Stderr,
				"triosimvet: -cache-smoke: %s digest differs: pass1 %#x, pass2 %#x, cache-off %#x\n",
				f.Name, f.Res.EventDigest, s.Res.EventDigest,
				u.Res.EventDigest)
			return 1
		}
	}
	fmt.Printf("cache smoke ok: %s ×%d scenarios ×2 passes, %d/%d trace hits/misses, %d traces (~%d bytes), digests match cache-off\n",
		model, len(first), st2.TraceHits, st2.TraceMisses, st2.Traces,
		st2.Bytes)
	return 0
}

// findModuleRoot walks up from the working directory to the enclosing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
