// Command triosimvet is TrioSim's determinism gate. By default it runs the
// internal/lint static analyzers over the whole module and reports every
// violation of the simulator's determinism contract (wall-clock reads,
// unseeded randomness, order-dependent map iteration, goroutines in the
// serial engine's domain, raw VTime comparisons) with file:line positions.
//
//	triosimvet ./...            # analyze the module containing the cwd
//	triosimvet -json ./...      # machine-readable findings
//	triosimvet -replay          # runtime gate: run a workload twice and
//	                            # compare event-schedule digests
//
// Exit status: 0 clean, 1 findings or replay divergence, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		replay  = flag.Bool("replay", false,
			"run the replay-digest determinism check instead of static analysis")
		replayModel = flag.String("replay-model", "resnet18",
			"model zoo workload for -replay")
		replayRuns = flag.Int("replay-runs", 2, "simulation repetitions for -replay")
	)
	flag.Parse()

	if *replay {
		os.Exit(runReplay(*replayModel, *replayRuns))
	}
	os.Exit(runLint(*jsonOut))
}

func runLint(jsonOut bool) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triosimvet:", err)
		return 2
	}
	findings := lint.Run(mod)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "triosimvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(root, f.File); err == nil {
				rel.File = r
			}
			fmt.Println(rel)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "triosimvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// runReplay is the runtime half of the determinism gate: the same
// configuration simulated repeatedly must dispatch a byte-identical event
// schedule (same FNV-1a digest) and predict the same time.
func runReplay(model string, runs int) int {
	if runs < 2 {
		fmt.Fprintln(os.Stderr, "triosimvet: -replay-runs must be >= 2")
		return 2
	}
	p1 := gpu.P1
	cfg := core.Config{
		Model:       model,
		Platform:    &p1,
		Parallelism: core.DDP,
		TraceBatch:  32,
	}
	var first *core.Result
	for i := 0; i < runs; i++ {
		res, err := core.Simulate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "triosimvet: -replay:", err)
			return 2
		}
		if first == nil {
			first = res
			continue
		}
		if res.EventDigest != first.EventDigest ||
			res.Events != first.Events ||
			res.TotalTime != first.TotalTime {
			fmt.Fprintf(os.Stderr,
				"triosimvet: replay divergence on run %d: digest %#x (%d events, %v) vs %#x (%d events, %v)\n",
				i+1, res.EventDigest, res.Events, res.TotalTime,
				first.EventDigest, first.Events, first.TotalTime)
			return 1
		}
	}
	fmt.Printf("replay ok: %s ×%d runs, digest %#x, %d events, %v simulated\n",
		model, runs, first.EventDigest, first.Events, first.TotalTime)
	return 0
}

// findModuleRoot walks up from the working directory to the enclosing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
