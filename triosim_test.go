package triosim

import (
	"path/filepath"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	res, err := Simulate(Config{
		Model:       "resnet18",
		Platform:    P2(),
		Parallelism: DDP,
		TraceBatch:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIteration <= 0 || res.ComputeTime <= 0 || res.CommTime <= 0 {
		t.Fatalf("incomplete result: %+v", res)
	}
}

func TestFacadeValidate(t *testing.T) {
	cmp, err := Validate(Config{
		Model:       "resnet18",
		Platform:    P1(),
		Parallelism: DDP,
		TraceBatch:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Error > 0.2 {
		t.Fatalf("error %.1f%% out of band", cmp.Error*100)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr, err := CollectTrace("vgg11", 16, "A100")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the loaded trace straight into a simulation.
	res, err := Simulate(Config{
		Trace:       back,
		Platform:    P1(),
		Parallelism: DP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIteration <= 0 {
		t.Fatal("no time")
	}
}

func TestFacadeLists(t *testing.T) {
	if len(Models()) != 18 {
		t.Fatalf("Models() = %d", len(Models()))
	}
	if len(CNNModels()) != 13 || len(TransformerModels()) != 5 {
		t.Fatal("model lists wrong")
	}
	for _, name := range []string{"P1", "P2", "P3"} {
		p, err := PlatformByName(name)
		if err != nil || p == nil {
			t.Fatalf("PlatformByName(%s): %v", name, err)
		}
	}
}

func TestFacadeCustomTopology(t *testing.T) {
	topo := RingTopology(NetworkConfig{
		NumGPUs:       4,
		LinkBandwidth: 100e9,
		HostBandwidth: 20e9,
	})
	res, err := Simulate(Config{
		Model:       "resnet18",
		Platform:    P2(),
		Topology:    topo,
		Parallelism: DDP,
		TraceBatch:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIteration <= 0 {
		t.Fatal("ring topology run failed")
	}
}
