// Quickstart: predict ResNet-50 DDP training time on a 4×A100 NVLink
// platform from a single-GPU trace, then check the prediction against the
// reference hardware emulator — the paper's core workflow in ~40 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"triosim"
)

func main() {
	cfg := triosim.Config{
		Model:       "resnet50",
		Platform:    triosim.P2(), // 4×A100, NVLink
		Parallelism: triosim.DDP,
		TraceBatch:  128,      // the single-GPU trace TrioSim extrapolates from
		Clock:       time.Now, // opt-in wall-clock metric (res.WallClock)
	}

	res, err := triosim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TrioSim prediction for ResNet-50, DDP on P2 (4×A100):")
	fmt.Printf("  per-iteration time: %v\n", res.PerIteration)
	fmt.Printf("  compute time:       %v\n", res.ComputeTime)
	fmt.Printf("  communication time: %v (%.1f%% of total)\n",
		res.CommTime, 100*float64(res.CommTime)/float64(res.TotalTime))
	fmt.Printf("  simulated in:       %v wall clock (%d events)\n",
		res.WallClock, res.Events)

	cmp, err := triosim.Validate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAgainst the reference hardware emulator:\n")
	fmt.Printf("  hardware:   %v\n", cmp.Actual)
	fmt.Printf("  predicted:  %v\n", cmp.Predicted)
	fmt.Printf("  error:      %.2f%%\n", cmp.Error*100)
}
