// Scaling sweeps DDP training of GPT-2 from 4 to 64 GPUs on a realistic
// two-tier cluster fabric (NVSwitch inside each 4-GPU node, thin NICs into
// a cluster switch) and reports weak-scaling efficiency — the "exploring
// scaling configurations" use the paper positions TrioSim for (§8.3), on a
// topology only a simulator with an explicit network model can express.
package main

import (
	"fmt"
	"log"

	"triosim"
	"triosim/internal/network"
)

func main() {
	const model = "gpt2"
	const gpusPerNode = 4
	const perGPUBatch = 32

	fmt.Printf("Weak scaling: %s, DDP, %d samples/GPU, 4-GPU nodes,\n",
		model, perGPUBatch)
	fmt.Println("NVSwitch 235 GB/s inside nodes, 25 GB/s NICs between them")
	fmt.Println()
	fmt.Printf("%6s %8s %14s %14s %12s\n",
		"GPUs", "nodes", "iter time", "comm share", "efficiency")

	var baseline triosim.VTime
	for _, gpus := range []int{4, 8, 16, 32, 64} {
		nodes := gpus / gpusPerNode
		topo := network.MultiNode(nodes, gpusPerNode, network.Config{
			LinkBandwidth: 235e9,
			LinkLatency:   1.2e-6,
			HostBandwidth: 20e9,
			HostLatency:   5e-6,
		}, 25e9)
		platform := triosim.P2()
		platform.NumGPUs = gpus
		res, err := triosim.Simulate(triosim.Config{
			Model:       model,
			Platform:    platform,
			Topology:    topo,
			Parallelism: triosim.DDP,
			TraceBatch:  128,
			GlobalBatch: perGPUBatch * gpus,
			NumGPUs:     gpus,
		})
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.PerIteration
		}
		eff := float64(baseline) / float64(res.PerIteration)
		fmt.Printf("%6d %8d %14v %13.1f%% %11.0f%%\n",
			gpus, nodes, res.PerIteration,
			100*float64(res.CommTime)/float64(res.TotalTime), eff*100)
	}
	fmt.Println("\nPer-GPU work is constant, so ideal weak scaling keeps the",
		"iteration time flat (100%);")
	fmt.Println("the thin inter-node NICs erode efficiency as the",
		"gradient AllReduce crosses more nodes.")
}
