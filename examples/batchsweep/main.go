// Batchsweep demonstrates TrioSim's single-trace capability: one trace
// collected at batch 128 predicts training times at any other batch size
// (the feature prior simulators like AstraSim and vTrain lack, and the
// setting of the paper's Fig 6). The sweep reports per-iteration time and
// throughput to expose the amortization knee.
package main

import (
	"fmt"
	"log"

	"triosim"
)

func main() {
	const model = "resnet50"
	platform := triosim.P2()
	platform.NumGPUs = 1

	// One trace, collected once.
	tr, err := triosim.CollectTrace(model, 128, "A100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s on A100 at batch 128 (%d ops, iteration %v)\n\n",
		model, len(tr.Ops), tr.TotalTime())

	fmt.Printf("%8s %16s %16s\n", "batch", "iter time", "images/s")
	for _, batch := range []int{16, 32, 64, 128, 256, 512} {
		res, err := triosim.Simulate(triosim.Config{
			Trace:       tr,
			Platform:    platform,
			Parallelism: triosim.SingleGPU,
			GlobalBatch: batch,
		})
		if err != nil {
			log.Fatal(err)
		}
		throughput := float64(batch) / res.PerIteration.Seconds()
		fmt.Printf("%8d %16v %16.0f\n", batch, res.PerIteration, throughput)
	}
	fmt.Println("\nThroughput rises with batch size as fixed overheads",
		"amortize — all from the one batch-128 trace.")
}
