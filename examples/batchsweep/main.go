// Batchsweep demonstrates TrioSim's single-trace capability: one trace
// collected at batch 128 predicts training times at any other batch size
// (the feature prior simulators like AstraSim and vTrain lack, and the
// setting of the paper's Fig 6). The batch points are independent
// simulations, so they fan out across cores on the sweep worker pool —
// results come back in batch order regardless of which finishes first.
package main

import (
	"fmt"
	"log"

	"triosim"
	"triosim/internal/sweep"
)

func main() {
	const model = "resnet50"

	// One trace, collected once. The scenarios only read it.
	tr, err := triosim.CollectTrace(model, 128, "A100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s on A100 at batch 128 (%d ops, iteration %v)\n\n",
		model, len(tr.Ops), tr.TotalTime())

	batches := []int{16, 32, 64, 128, 256, 512}
	scenarios := make([]sweep.Scenario, len(batches))
	for i, batch := range batches {
		batch := batch
		scenarios[i] = sweep.Scenario{
			Name: fmt.Sprintf("batch-%d", batch),
			Build: func() triosim.Config {
				// The platform is built per scenario: nothing mutable is
				// shared between workers.
				platform := triosim.P2()
				platform.NumGPUs = 1
				return triosim.Config{
					Trace:       tr,
					Platform:    platform,
					Parallelism: triosim.SingleGPU,
					GlobalBatch: batch,
				}
			},
		}
	}
	results, err := sweep.Values(sweep.Simulate(sweep.Options{}, scenarios))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %16s %16s\n", "batch", "iter time", "images/s")
	for i, r := range results {
		throughput := float64(batches[i]) / r.Res.PerIteration.Seconds()
		fmt.Printf("%8d %16v %16.0f\n", batches[i], r.Res.PerIteration,
			throughput)
	}
	fmt.Println("\nThroughput rises with batch size as fixed overheads",
		"amortize — all from the one batch-128 trace.")
}
