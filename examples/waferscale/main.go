// Waferscale reproduces the paper's first case study (§7.1): 84 A100-class
// chiplets on a 12×7 wafer training with data parallelism, comparing an
// electrical 2-D mesh against a Passage-style circuit-switching photonic
// interconnect. It demonstrates TrioSim's swappable network model: the same
// extrapolated workload graph executes over either network.
package main

import (
	"fmt"
	"log"

	"triosim/internal/experiments"
)

func main() {
	fmt.Println("Wafer-scale case study: 84 GPUs, DP, electrical vs photonic")
	fmt.Println("(12×7 mesh of A100-class chiplets; Passage: 484 GB/s over",
		"8 links, 20 ms circuit setup)")
	fmt.Println()

	fig, err := experiments.Fig15(true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %-12s %12s %12s %12s\n",
		"model", "network", "total", "comm", "comm share")
	for _, r := range fig.Rows {
		fmt.Printf("%-12s %-12s %11.1fms %11.1fms %11.1f%%\n",
			r.Model, r.Config,
			r.Get("total_s")*1e3, r.Get("comm_s")*1e3,
			r.Get("comm_ratio")*100)
	}
	fmt.Println()
	for _, n := range fig.Notes {
		fmt.Println(n)
	}
	fmt.Println("\nAt this scale communication dominates the electrical",
		"network; the photonic circuits cut")
	fmt.Println("communication time roughly in half — but do not eliminate",
		"the scalability wall (§7.1).")
}
