// Advisor runs the paper's intended workflow (§8.3): given a model, a
// platform, and a total batch, evaluate every parallelism strategy —
// including GPipe chunkings and hybrid DP×PP / DP×TP splits — check which
// fit in GPU memory, and rank them. Milliseconds of simulation replace
// hours of cluster time.
package main

import (
	"fmt"
	"log"
	"os"

	"triosim"
)

func main() {
	model := "llama32-1b"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}
	platform := triosim.P3() // 8×H100

	cands, err := triosim.Advise(triosim.Config{
		Model:       model,
		Platform:    platform,
		TraceBatch:  16,
		GlobalBatch: 128,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Deployment advisor: %s on %s (%d×%s), total batch 128\n\n",
		model, platform.Name, platform.NumGPUs, platform.GPU.Name)
	fmt.Printf("%-8s %-8s %12s %12s %10s %10s\n",
		"strategy", "chunks", "iter time", "comm share", "mem util", "fits")
	for _, c := range cands {
		chunks := "-"
		if c.MicroBatches > 0 {
			chunks = fmt.Sprintf("%d", c.MicroBatches)
		}
		fits := "yes"
		if !c.Feasible {
			fits = "OOM"
		}
		fmt.Printf("%-8s %-8s %12v %11.1f%% %9.0f%% %10s\n",
			c.Parallelism, chunks, c.PerIteration,
			c.CommShare*100, c.WorstMemUtil*100, fits)
	}
	fmt.Println("\nThe winner is the fastest strategy that actually fits;",
		"OOM rows would crash on real hardware.")
}
