// Hop reproduces the paper's second case study (§7.2): the Hop
// heterogeneity-aware decentralized training protocol on 8 A100 GPUs
// training VGG-11, measuring how much one backup worker helps when each
// worker's communication links are randomly slowed by 1–10×.
package main

import (
	"fmt"
	"log"

	"triosim"
	"triosim/internal/hop"
	"triosim/internal/network"
)

func main() {
	// Local step time and update volume come from a real (emulated) VGG-11
	// trace — the public tracer pipeline.
	tr, err := triosim.CollectTrace("vgg11", 128, "A100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hop case study: VGG-11 on 8×A100 (local step %v, update %.0f MB)\n\n",
		tr.TotalTime(), float64(tr.GradientBytes())/1e6)

	netCfg := network.Config{
		NumGPUs:       8,
		LinkBandwidth: 235e9,
		LinkLatency:   1.2e-6,
		HostBandwidth: 20e9,
	}
	graphs := []struct {
		name  string
		build func(network.Config) *network.Topology
	}{
		{"ring+chords", network.RingWithChords},
		{"double-ring", network.DoubleRing},
	}

	fmt.Printf("%-10s %-14s %12s %12s %10s\n",
		"scenario", "graph", "no backup", "1 backup", "speedup")
	for seed := int64(1); seed <= 8; seed++ {
		slow := hop.RandomSlowdowns(8, seed)
		for _, g := range graphs {
			cfg := hop.Config{
				Topo:         g.build(netCfg),
				Workers:      8,
				ComputeTime:  tr.TotalTime(),
				UpdateBytes:  float64(tr.GradientBytes()),
				MaxStaleness: 2,
				Iterations:   10,
				Slowdowns:    slow,
			}
			base := cfg
			base.Backup = 0
			r0, err := hop.Run(base)
			if err != nil {
				log.Fatal(err)
			}
			with := cfg
			with.Backup = 1
			with.Topo = g.build(netCfg)
			r1, err := hop.Run(with)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10d %-14s %11.1fms %11.1fms %9.2fx\n",
				seed, g.name,
				r0.TotalTime.Seconds()*1e3, r1.TotalTime.Seconds()*1e3,
				float64(r0.TotalTime)/float64(r1.TotalTime))
		}
	}
	fmt.Println("\nBackup workers let each node skip its slowest neighbor's",
		"update per iteration, so the")
	fmt.Println("benefit varies with which links the random heterogeneity",
		"happens to cripple (Fig 16).")
}
