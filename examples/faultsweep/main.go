// Faultsweep demonstrates the fault-injection and resilience subsystem
// (docs/RESILIENCE.md): a straggler-factor sweep showing how one slow GPU
// stretches the DDP makespan, and a checkpoint-interval sweep showing the
// goodput trade-off the Young–Daly approximation targets — checkpoint too
// rarely and failures replay lots of lost work, too often and the
// checkpoints themselves eat the run.
package main

import (
	"fmt"
	"log"

	"triosim"
	"triosim/internal/faults"
	"triosim/internal/sweep"
)

func main() {
	const model = "resnet18"

	// Fault-free baseline: anchors the fault windows and the slowdowns.
	base := baseConfig(model)
	ref, err := triosim.Simulate(base)
	if err != nil {
		log.Fatal(err)
	}
	horizon := ref.TotalTime
	fmt.Printf("baseline: %s DDP on %s, makespan %v\n\n", model,
		base.Platform.Name, horizon)

	// Part 1 — straggler sweep. One GPU runs ×factor slower for the whole
	// run; each factor is an independent simulation on the sweep pool.
	factors := []float64{1, 1.25, 1.5, 2, 3, 4}
	scenarios := make([]sweep.Scenario, len(factors))
	for i, f := range factors {
		f := f
		scenarios[i] = sweep.Scenario{
			Name: fmt.Sprintf("straggler-x%g", f),
			Build: func() triosim.Config {
				cfg := baseConfig(model)
				cfg.Faults = &triosim.FaultSchedule{
					Events: []triosim.FaultEvent{{
						Kind: triosim.GPUSlowdown, GPU: 1, Factor: f,
						Start: 0, Duration: 2 * horizon,
					}},
				}
				return cfg
			},
		}
	}
	results, err := sweep.Values(sweep.Simulate(sweep.Options{}, scenarios))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%12s %14s %10s\n", "straggler", "makespan", "slowdown")
	for i, r := range results {
		fmt.Printf("%11s× %14v %9.3f×\n",
			fmt.Sprintf("%g", factors[i]), r.Res.TotalTime,
			float64(r.Res.TotalTime)/float64(horizon))
	}
	fmt.Println("\nA factor-1 window is a no-op (digest-identical to the",
		"baseline); past that the slow GPU gates every iteration.")

	// Part 2 — checkpoint-interval sweep. A long job (1000× the measured
	// makespan) hit by three failures: sweep the interval, compare the
	// best against Young–Daly.
	work := 1000 * horizon
	ckptCost := horizon / 2
	overlay := faults.ResilienceConfig{
		Work:           work,
		CheckpointCost: ckptCost,
		RestartCost:    horizon,
		Failures: []triosim.VTime{
			work * 0.23, work * 0.52, work * 0.81,
		},
	}
	var candidates []triosim.VTime
	for _, div := range []float64{2, 5, 10, 20, 50, 100, 200} {
		candidates = append(candidates, work/triosim.VTime(div))
	}
	points := sweep.Intervals(sweep.Options{}, overlay, candidates)
	best, err := sweep.BestInterval(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%14s %10s %12s %12s\n", "interval", "ckpts", "extended",
		"goodput")
	for _, p := range points {
		if p.Err != nil {
			log.Fatal(p.Err)
		}
		pt := p.Value
		fmt.Printf("%14v %10d %12v %11.3f%%\n", pt.Interval,
			pt.Res.Checkpoints, pt.Res.TotalTime, 100*pt.Res.Goodput)
	}
	mtbf := work / 3
	yd := triosim.OptimalCheckpointInterval(ckptCost, mtbf)
	fmt.Printf("\nbest interval: %v (goodput %.3f); Young–Daly with "+
		"MTBF=%v suggests %v\n", best.Interval, best.Res.Goodput, mtbf, yd)
}

func baseConfig(model string) triosim.Config {
	return triosim.Config{
		Model:       model,
		Platform:    triosim.P1(),
		Parallelism: triosim.DDP,
		TraceBatch:  32,
	}
}
