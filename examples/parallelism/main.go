// Parallelism compares data, tensor, and pipeline parallelism for a
// workload at a fixed total batch on P2 — the paper's Fig 12 exploration:
// which strategy should you deploy on this interconnect?
package main

import (
	"fmt"
	"log"
	"os"

	"triosim"
)

func main() {
	model := "gpt2"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}
	platform := triosim.P2()

	fmt.Printf("Parallelism comparison: %s on P2 (4×A100), total batch 128\n\n",
		model)
	fmt.Printf("%10s %16s %16s %12s\n",
		"strategy", "iter time", "comm share", "vs best")

	type entry struct {
		name string
		par  triosim.Parallelism
		res  *triosim.Result
	}
	entries := []entry{
		{"DP (DDP)", triosim.DDP, nil},
		{"TP", triosim.TP, nil},
		{"PP (2 ch)", triosim.PP, nil},
	}
	best := triosim.VTime(0)
	for i := range entries {
		res, err := triosim.Simulate(triosim.Config{
			Model:        model,
			Platform:     platform,
			Parallelism:  entries[i].par,
			TraceBatch:   128,
			GlobalBatch:  128,
			MicroBatches: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		entries[i].res = res
		if best == 0 || res.PerIteration.Before(best) {
			best = res.PerIteration
		}
	}
	for _, e := range entries {
		commShare := 100 * float64(e.res.CommTime) / float64(e.res.TotalTime)
		fmt.Printf("%10s %16v %15.1f%% %11.2fx\n",
			e.name, e.res.PerIteration, commShare,
			float64(e.res.PerIteration)/float64(best))
	}
	fmt.Println("\nWith the total workload constant, data parallelism",
		"minimizes communication volume per step;")
	fmt.Println("tensor parallelism is competitive mainly on transformers",
		"(big, splittable matmuls).")
}
