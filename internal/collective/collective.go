// Package collective generates NCCL-style ring collective communication as
// task sequences, the way TrioSim's trace extrapolator does: memory-transfer
// tasks are appended to the extrapolated trace and the network model prices
// each transfer (paper §4.3, "Ring-based collective communication").
//
// The ring AllReduce is the reduce-scatter + all-gather formulation: with N
// ranks and B bytes, 2(N−1) steps each move B/N bytes per rank to its right
// neighbor, for the classic 2(N−1)/N·B per-rank traffic.
//
// A configurable per-step delay models the protocol cost real NCCL pays per
// ring step; TrioSim's own graphs pass zero (its lightweight network model
// ignores protocol details — paper §8.2), while the hardware emulator's
// graphs pass the platform's measured step latency.
package collective

import (
	"fmt"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/telemetry"
)

// Options configures collective generation.
type Options struct {
	// StepDelay is added between consecutive ring steps (hardware protocol
	// latency; zero for TrioSim's own prediction graphs).
	StepDelay sim.VTime
	// Label prefixes the generated task labels.
	Label string
	// Log optionally records per-collective metadata (algorithm, ranks,
	// payload, bus factor) for telemetry. Nil disables recording.
	Log *telemetry.CollectiveLog
}

// steps emits nSteps synchronized ring steps, each sending chunkBytes from
// every rank to its right neighbor. after gates the first step (per-rank);
// the returned barrier marks completion of the whole collective.
func steps(g *task.Graph, ring []network.NodeID, nSteps int,
	chunkBytes float64, after []*task.Task, opt Options) *task.Task {

	n := len(ring)
	prevBarrier := (*task.Task)(nil)
	for s := 0; s < nSteps; s++ {
		barrier := g.AddBarrier(fmt.Sprintf("%s-step%d-done", opt.Label, s))
		for i := 0; i < n; i++ {
			send := g.AddComm(ring[i], ring[(i+1)%n], chunkBytes,
				fmt.Sprintf("%s-step%d-rank%d", opt.Label, s, i))
			send.Collective = opt.Label
			if s == 0 {
				// A rank cannot start until its local data is ready.
				if after != nil && after[i] != nil {
					g.AddDep(after[i], send)
				}
			} else {
				g.AddDep(prevBarrier, send)
			}
			g.AddDep(send, barrier)
		}
		if opt.StepDelay.After(0) {
			d := g.AddDelay(opt.StepDelay,
				fmt.Sprintf("%s-step%d-proto", opt.Label, s))
			g.AddDep(barrier, d)
			barrier = d
		}
		prevBarrier = barrier
	}
	return prevBarrier
}

// trivial handles the 0/1-rank case: the collective is a no-op that still
// orders after the gating tasks.
func trivial(g *task.Graph, after []*task.Task, label string) *task.Task {
	b := g.AddBarrier(label + "-noop")
	for _, a := range after {
		g.AddDep(a, b)
	}
	return b
}

// RingAllReduce emits a ring AllReduce of bytes across the ranks in ring
// order. after[i] (optional) gates rank i's participation. The returned task
// completes when every rank holds the fully reduced data.
func RingAllReduce(g *task.Graph, ring []network.NodeID, bytes float64,
	after []*task.Task, opt Options) *task.Task {
	if opt.Label == "" {
		opt.Label = "allreduce"
	}
	n := len(ring)
	if n <= 1 {
		return trivial(g, after, opt.Label)
	}
	opt.Log.Record(opt.Label, "ring-allreduce", n, bytes,
		2*float64(n-1)/float64(n))
	chunk := bytes / float64(n)
	return steps(g, ring, 2*(n-1), chunk, after, opt)
}

// RingReduceScatter emits the reduce-scatter half: each rank ends with the
// reduced 1/N shard.
func RingReduceScatter(g *task.Graph, ring []network.NodeID, bytes float64,
	after []*task.Task, opt Options) *task.Task {
	if opt.Label == "" {
		opt.Label = "reducescatter"
	}
	n := len(ring)
	if n <= 1 {
		return trivial(g, after, opt.Label)
	}
	opt.Log.Record(opt.Label, "ring-reducescatter", n, bytes,
		float64(n-1)/float64(n))
	return steps(g, ring, n-1, bytes/float64(n), after, opt)
}

// RingAllGather emits an all-gather: every rank starts with a 1/N shard of
// bytes and ends with the full buffer.
func RingAllGather(g *task.Graph, ring []network.NodeID, bytes float64,
	after []*task.Task, opt Options) *task.Task {
	if opt.Label == "" {
		opt.Label = "allgather"
	}
	n := len(ring)
	if n <= 1 {
		return trivial(g, after, opt.Label)
	}
	opt.Log.Record(opt.Label, "ring-allgather", n, bytes,
		float64(n-1)/float64(n))
	return steps(g, ring, n-1, bytes/float64(n), after, opt)
}

// Broadcast emits a chunk-pipelined ring broadcast of bytes from ring[0]
// around the ring. Chunks flow link-to-link concurrently, approximating
// NCCL's pipelined broadcast.
func Broadcast(g *task.Graph, ring []network.NodeID, bytes float64,
	after *task.Task, opt Options) *task.Task {
	if opt.Label == "" {
		opt.Label = "broadcast"
	}
	n := len(ring)
	done := g.AddBarrier(opt.Label + "-done")
	if n <= 1 {
		if after != nil {
			g.AddDep(after, done)
		}
		return done
	}
	opt.Log.Record(opt.Label, "ring-broadcast", n, bytes, 1)
	const chunks = 8
	chunkBytes := bytes / chunks
	prevHop := make([]*task.Task, chunks) // chunk arrivals at previous hop
	for hop := 0; hop < n-1; hop++ {
		var prevChunk *task.Task // serializes chunks on this hop's link
		for c := 0; c < chunks; c++ {
			send := g.AddComm(ring[hop], ring[hop+1], chunkBytes,
				fmt.Sprintf("%s-hop%d-chunk%d", opt.Label, hop, c))
			send.Collective = opt.Label
			if hop == 0 {
				if after != nil {
					g.AddDep(after, send)
				}
			} else {
				g.AddDep(prevHop[c], send) // chunk must arrive first
			}
			if prevChunk != nil {
				g.AddDep(prevChunk, send) // one chunk at a time per link
			}
			if opt.StepDelay.After(0) && c == 0 {
				d := g.AddDelay(opt.StepDelay,
					fmt.Sprintf("%s-hop%d-proto", opt.Label, hop))
				g.AddDep(d, send)
				if hop > 0 {
					g.AddDep(prevHop[0], d)
				}
			}
			prevChunk = send
			prevHop[c] = send
			if hop == n-2 {
				g.AddDep(send, done)
			}
		}
	}
	return done
}

// GatherToRoot emits direct sends of shardBytes from every non-root rank to
// ring[0].
func GatherToRoot(g *task.Graph, ring []network.NodeID, shardBytes float64,
	after []*task.Task, opt Options) *task.Task {
	if opt.Label == "" {
		opt.Label = "gather"
	}
	done := g.AddBarrier(opt.Label + "-done")
	if len(ring) > 1 {
		opt.Log.Record(opt.Label, "gather", len(ring),
			shardBytes*float64(len(ring)-1), 1)
	}
	for i := 1; i < len(ring); i++ {
		send := g.AddComm(ring[i], ring[0], shardBytes,
			fmt.Sprintf("%s-rank%d", opt.Label, i))
		send.Collective = opt.Label
		if after != nil && after[i] != nil {
			g.AddDep(after[i], send)
		}
		g.AddDep(send, done)
	}
	if after != nil && after[0] != nil {
		g.AddDep(after[0], done)
	}
	return done
}

// ScatterFromRoot emits direct sends of shardBytes from ring[0] to every
// other rank.
func ScatterFromRoot(g *task.Graph, ring []network.NodeID, shardBytes float64,
	after *task.Task, opt Options) *task.Task {
	if opt.Label == "" {
		opt.Label = "scatter"
	}
	done := g.AddBarrier(opt.Label + "-done")
	if len(ring) > 1 {
		opt.Log.Record(opt.Label, "scatter", len(ring),
			shardBytes*float64(len(ring)-1), 1)
	}
	for i := 1; i < len(ring); i++ {
		send := g.AddComm(ring[0], ring[i], shardBytes,
			fmt.Sprintf("%s-rank%d", opt.Label, i))
		send.Collective = opt.Label
		if after != nil {
			g.AddDep(after, send)
		}
		g.AddDep(send, done)
	}
	if after != nil {
		g.AddDep(after, done)
	}
	return done
}
