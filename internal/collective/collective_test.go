package collective

import (
	"math"
	"testing"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/timeline"
)

// ringSetup builds an N-GPU ring with the given per-link bandwidth (bytes/s)
// and zero latency.
func ringSetup(n int, bw float64) (*sim.SerialEngine, *network.FlowNetwork,
	[]network.NodeID) {
	eng := sim.NewSerialEngine()
	topo := network.Ring(network.Config{
		NumGPUs: n, LinkBandwidth: bw, HostBandwidth: bw,
	})
	return eng, network.NewFlowNetwork(eng, topo), topo.GPUs()
}

func execute(t *testing.T, eng *sim.SerialEngine, net network.Network,
	g *task.Graph) (sim.VTime, *timeline.Timeline) {
	t.Helper()
	tl := timeline.New()
	x := task.NewExecutor(eng, net, g, tl)
	makespan, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	return makespan, tl
}

func TestRingAllReduceTime(t *testing.T) {
	// Classic result: ring AllReduce of B bytes on N ranks with link
	// bandwidth W takes 2(N−1)/N · B/W (disjoint ring links, full duplex).
	const n, B, W = 4, 400e6, 100e9
	eng, net, gpus := ringSetup(n, W)
	g := task.NewGraph()
	RingAllReduce(g, gpus, B, nil, Options{})
	makespan, _ := execute(t, eng, net, g)
	want := sim.VTime(2 * (n - 1) * (B / n) / W)
	if math.Abs(float64(makespan-want))/float64(want) > 1e-6 {
		t.Fatalf("AllReduce makespan %v, want %v", makespan, want)
	}
}

func TestRingAllReduceTrafficVolume(t *testing.T) {
	const n, B = 8, 800e6
	eng, net, gpus := ringSetup(n, 100e9)
	g := task.NewGraph()
	RingAllReduce(g, gpus, B, nil, Options{})
	if _, err := task.NewExecutor(eng, net, g, timeline.New()).Run(); err != nil {
		t.Fatal(err)
	}
	// Total traffic = N ranks × 2(N−1) steps × B/N per step.
	want := float64(2 * (n - 1) * B)
	if math.Abs(net.TotalBytes-want)/want > 1e-9 {
		t.Fatalf("traffic %g, want %g", net.TotalBytes, want)
	}
}

func TestRingAllReduceStepDelay(t *testing.T) {
	const n, B, W = 4, 400e6, 100e9
	eng, net, gpus := ringSetup(n, W)
	g := task.NewGraph()
	delay := 10 * sim.USec
	RingAllReduce(g, gpus, B, nil, Options{StepDelay: delay})
	makespan, _ := execute(t, eng, net, g)
	base := sim.VTime(2 * (n - 1) * (B / n) / W)
	want := base + sim.VTime(2*(n-1))*delay
	if math.Abs(float64(makespan-want))/float64(want) > 1e-6 {
		t.Fatalf("with delays: %v, want %v", makespan, want)
	}
}

func TestAllReduceSingleRankNoop(t *testing.T) {
	eng, net, gpus := ringSetup(2, 100e9)
	g := task.NewGraph()
	gate := g.AddCompute(0, 5, "work")
	done := RingAllReduce(g, gpus[:1], 1e9, []*task.Task{gate}, Options{})
	fin := g.AddCompute(0, 1, "after")
	g.AddDep(done, fin)
	makespan, _ := execute(t, eng, net, g)
	if makespan != 6 {
		t.Fatalf("single-rank allreduce makespan %v, want 6", makespan)
	}
	if net.TotalTransfers != 0 {
		t.Fatal("single-rank allreduce must not send")
	}
}

func TestAllReduceWaitsForAllRanks(t *testing.T) {
	// One straggler rank delays the collective's completion.
	eng, net, gpus := ringSetup(4, 100e9)
	g := task.NewGraph()
	gates := make([]*task.Task, 4)
	for i := range gates {
		dur := sim.VTime(1)
		if i == 2 {
			dur = 10 // straggler
		}
		gates[i] = g.AddCompute(i, dur, "bwd")
	}
	done := RingAllReduce(g, gpus, 400e6, gates, Options{})
	_ = done
	makespan, _ := execute(t, eng, net, g)
	commTime := sim.VTime(2 * 3 * (100e6 / 100e9))
	// Step 0 sends from fast ranks can start early, but step 1 needs the
	// straggler's step-0 send, so completion ≥ 10 + most of the collective.
	if makespan < 10+commTime/2 {
		t.Fatalf("makespan %v ignores straggler", makespan)
	}
}

func TestReduceScatterAndAllGather(t *testing.T) {
	const n, B, W = 4, 400e6, 100e9
	for _, tc := range []struct {
		name string
		run  func(g *task.Graph, gpus []network.NodeID) *task.Task
	}{
		{"reducescatter", func(g *task.Graph, gpus []network.NodeID) *task.Task {
			return RingReduceScatter(g, gpus, B, nil, Options{})
		}},
		{"allgather", func(g *task.Graph, gpus []network.NodeID) *task.Task {
			return RingAllGather(g, gpus, B, nil, Options{})
		}},
	} {
		eng, net, gpus := ringSetup(n, W)
		g := task.NewGraph()
		tc.run(g, gpus)
		makespan, _ := execute(t, eng, net, g)
		want := sim.VTime((n - 1) * (B / n) / W)
		if math.Abs(float64(makespan-want))/float64(want) > 1e-6 {
			t.Fatalf("%s makespan %v, want %v", tc.name, makespan, want)
		}
	}
}

func TestAllReduceEqualsScatterPlusGather(t *testing.T) {
	const n, B, W = 6, 600e6, 50e9
	eng1, net1, gpus1 := ringSetup(n, W)
	g1 := task.NewGraph()
	RingAllReduce(g1, gpus1, B, nil, Options{})
	ar, _ := execute(t, eng1, net1, g1)

	eng2, net2, gpus2 := ringSetup(n, W)
	g2 := task.NewGraph()
	rs := RingReduceScatter(g2, gpus2, B, nil, Options{})
	agGates := make([]*task.Task, n)
	for i := range agGates {
		agGates[i] = rs
	}
	RingAllGather(g2, gpus2, B, agGates, Options{})
	two, _ := execute(t, eng2, net2, g2)

	if math.Abs(float64(ar-two))/float64(ar) > 1e-6 {
		t.Fatalf("allreduce %v != reducescatter+allgather %v", ar, two)
	}
}

func TestBroadcastPipelined(t *testing.T) {
	const n, B, W = 4, 800e6, 100e9
	eng, net, gpus := ringSetup(n, W)
	g := task.NewGraph()
	Broadcast(g, gpus, B, nil, Options{})
	makespan, _ := execute(t, eng, net, g)
	// Pipelined broadcast: ~ (B + (n-2)·chunk)/W, far less than (n-1)·B/W.
	naive := sim.VTime((n - 1) * B / W)
	if makespan >= naive {
		t.Fatalf("broadcast %v not pipelined (naive %v)", makespan, naive)
	}
	lower := sim.VTime(B / W)
	if makespan < lower {
		t.Fatalf("broadcast %v faster than line rate %v", makespan, lower)
	}
}

func TestGatherScatter(t *testing.T) {
	const n, shard, W = 4, 100e6, 100e9
	eng, net, gpus := ringSetup(n, W)
	g := task.NewGraph()
	root := g.AddCompute(0, 1, "prep")
	sc := ScatterFromRoot(g, gpus, shard, root, Options{})
	gates := make([]*task.Task, n)
	for i := range gates {
		gates[i] = sc
	}
	GatherToRoot(g, gpus, shard, gates, Options{})
	makespan, _ := execute(t, eng, net, g)
	if makespan <= 1 {
		t.Fatalf("makespan %v", makespan)
	}
	// 3 scatter sends + 3 gather sends.
	if net.TotalTransfers != 6 {
		t.Fatalf("transfers = %d, want 6", net.TotalTransfers)
	}
}

func TestCollectiveOnSwitchTopology(t *testing.T) {
	// A logical ring mapped onto an NVSwitch: every send traverses two
	// switch hops; per-direction link capacity still yields the ring bound.
	const n, B, W = 4, 400e6, 100e9
	eng := sim.NewSerialEngine()
	topo := network.Switch(network.Config{
		NumGPUs: n, LinkBandwidth: W, HostBandwidth: W,
	})
	net := network.NewFlowNetwork(eng, topo)
	g := task.NewGraph()
	RingAllReduce(g, topo.GPUs(), B, nil, Options{})
	makespan, _ := execute(t, eng, net, g)
	want := sim.VTime(2 * (n - 1) * (B / n) / W)
	if math.Abs(float64(makespan-want))/float64(want) > 1e-6 {
		t.Fatalf("switch allreduce %v, want %v", makespan, want)
	}
}
