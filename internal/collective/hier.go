package collective

import (
	"fmt"

	"triosim/internal/network"
	"triosim/internal/task"
)

// groupByMachine splits the ring into per-machine rank groups, preserving
// ring order, and returns them in first-appearance order. ok is false when
// the grouping cannot support the rail-aligned hierarchical schedule: the
// topology declares no machines, everything is on one machine, or the
// machines hold unequal rank counts (rails would not line up).
func groupByMachine(topo *network.Topology,
	ring []network.NodeID) (groups [][]int, ok bool) {

	idx := map[int]int{} // machine → group index
	for i, nd := range ring {
		m := topo.MachineOf(nd)
		if m < 0 {
			return nil, false
		}
		gi, seen := idx[m]
		if !seen {
			gi = len(groups)
			idx[m] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	if len(groups) < 2 {
		return nil, false
	}
	for _, g := range groups {
		if len(g) != len(groups[0]) {
			return nil, false
		}
	}
	return groups, true
}

// HierAllReduce emits a hierarchy-aware AllReduce for tiered topologies:
// reduce-scatter inside each machine over NVLink, then an inter-machine
// AllReduce per local rank (each rank's shard travels its own rail — ring
// for small clusters, chunked tree beyond treeThreshold machines), then an
// intra-machine all-gather. Per-rank traffic over the inter-machine NICs
// drops from 2(N−1)/N·B to 2(M−1)/M·B/L for M machines of L ranks, which is
// what makes cluster-scale data parallelism affordable.
//
// When the topology is untiered, the ranks sit on fewer than two machines,
// or the machines hold unequal rank counts, it falls back to the flat ring.
func HierAllReduce(g *task.Graph, topo *network.Topology,
	ring []network.NodeID, bytes float64, after []*task.Task,
	opt Options) *task.Task {

	if opt.Label == "" {
		opt.Label = "allreduce"
	}
	n := len(ring)
	if n <= 1 {
		return trivial(g, after, opt.Label)
	}
	groups, ok := groupByMachine(topo, ring)
	if !ok {
		return RingAllReduce(g, ring, bytes, after, opt)
	}
	machines := len(groups)
	local := len(groups[0])
	opt.Log.Record(opt.Label, "hier-allreduce", n, bytes,
		2*float64(machines-1)/float64(machines)/float64(local))

	// Phase 1: intra-machine reduce-scatter. Each local rank ends with the
	// machine-reduced 1/local shard.
	rsDone := make([]*task.Task, machines)
	for m, grp := range groups {
		nodes := make([]network.NodeID, local)
		gates := make([]*task.Task, local)
		for i, ri := range grp {
			nodes[i] = ring[ri]
			if after != nil {
				gates[i] = after[ri]
			}
		}
		rsDone[m] = RingReduceScatter(g, nodes, bytes, gates, Options{
			StepDelay: opt.StepDelay,
			Label:     fmt.Sprintf("%s-intra-rs-m%d", opt.Label, m),
			Log:       opt.Log,
		})
	}

	// Phase 2: per local rank, AllReduce the shard across machines — each
	// rail carries only its own 1/local of the payload. Rings are fine at
	// small machine counts; beyond that the chunked tree's O(log M) depth
	// wins.
	const treeThreshold = 16
	shard := bytes / float64(local)
	railDone := make([]*task.Task, local)
	for r := 0; r < local; r++ {
		nodes := make([]network.NodeID, machines)
		gates := make([]*task.Task, machines)
		for m, grp := range groups {
			nodes[m] = ring[grp[r]]
			gates[m] = rsDone[m]
		}
		railOpt := Options{
			StepDelay: opt.StepDelay,
			Label:     fmt.Sprintf("%s-rail%d", opt.Label, r),
			Log:       opt.Log,
		}
		if machines > treeThreshold {
			railDone[r] = TreeAllReduce(g, nodes, shard, gates, railOpt)
		} else {
			railDone[r] = RingAllReduce(g, nodes, shard, gates, railOpt)
		}
	}

	// Phase 3: intra-machine all-gather of the globally reduced shards.
	done := g.AddBarrier(opt.Label + "-done")
	for m, grp := range groups {
		nodes := make([]network.NodeID, local)
		gates := make([]*task.Task, local)
		for i, ri := range grp {
			nodes[i] = ring[ri]
			gates[i] = railDone[i]
		}
		ag := RingAllGather(g, nodes, bytes, gates, Options{
			StepDelay: opt.StepDelay,
			Label:     fmt.Sprintf("%s-intra-ag-m%d", opt.Label, m),
			Log:       opt.Log,
		})
		g.AddDep(ag, done)
	}
	return done
}

// HierAllGather emits a hierarchy-aware all-gather: each rank starts with a
// 1/N shard; shards first travel the rails (inter-machine all-gather per
// local rank), then each machine's ranks exchange the assembled machine
// blocks over NVLink.
func HierAllGather(g *task.Graph, topo *network.Topology,
	ring []network.NodeID, bytes float64, after []*task.Task,
	opt Options) *task.Task {

	if opt.Label == "" {
		opt.Label = "allgather"
	}
	n := len(ring)
	if n <= 1 {
		return trivial(g, after, opt.Label)
	}
	groups, ok := groupByMachine(topo, ring)
	if !ok {
		return RingAllGather(g, ring, bytes, after, opt)
	}
	machines := len(groups)
	local := len(groups[0])
	opt.Log.Record(opt.Label, "hier-allgather", n, bytes,
		float64(machines-1)/float64(machines)/float64(local))

	// Phase 1: per local rank, gather that rail's shards across machines.
	// Rail r moves the machines' r-th shards: machines·(bytes/n) payload.
	railDone := make([]*task.Task, local)
	railBytes := bytes * float64(machines) / float64(n)
	for r := 0; r < local; r++ {
		nodes := make([]network.NodeID, machines)
		gates := make([]*task.Task, machines)
		for m, grp := range groups {
			nodes[m] = ring[grp[r]]
			if after != nil {
				gates[m] = after[grp[r]]
			}
		}
		railDone[r] = RingAllGather(g, nodes, railBytes, gates, Options{
			StepDelay: opt.StepDelay,
			Label:     fmt.Sprintf("%s-rail%d", opt.Label, r),
			Log:       opt.Log,
		})
	}

	// Phase 2: intra-machine all-gather of the rail blocks over NVLink.
	done := g.AddBarrier(opt.Label + "-done")
	for m, grp := range groups {
		nodes := make([]network.NodeID, local)
		gates := make([]*task.Task, local)
		for i, ri := range grp {
			nodes[i] = ring[ri]
			gates[i] = railDone[i]
		}
		ag := RingAllGather(g, nodes, bytes, gates, Options{
			StepDelay: opt.StepDelay,
			Label:     fmt.Sprintf("%s-intra-ag-m%d", opt.Label, m),
			Log:       opt.Log,
		})
		g.AddDep(ag, done)
	}
	return done
}

// FusedRingStep is the coarse-grained stand-in for a pipelined ring
// collective used by fused cluster-scale graphs: every rank sends its
// cumulative ring traffic (busFactor·bytes) to its right neighbor in one
// step. On symmetric links this takes the same wall-clock as the (N−1)-step
// ring it replaces — each real step's sends run concurrently on disjoint
// links — at 1/(N−1) of the task count.
func FusedRingStep(g *task.Graph, ring []network.NodeID, bytes float64,
	busFactor float64, after []*task.Task, opt Options) *task.Task {

	if opt.Label == "" {
		opt.Label = "fusedring"
	}
	n := len(ring)
	if n <= 1 {
		return trivial(g, after, opt.Label)
	}
	opt.Log.Record(opt.Label, "fused-ring", n, bytes, busFactor)
	perRank := bytes * busFactor
	done := g.AddBarrier(opt.Label + "-done")
	for i := 0; i < n; i++ {
		send := g.AddComm(ring[i], ring[(i+1)%n], perRank,
			fmt.Sprintf("%s-rank%d", opt.Label, i))
		send.Collective = opt.Label
		if after != nil && after[i] != nil {
			g.AddDep(after[i], send)
		}
		g.AddDep(send, done)
	}
	if opt.StepDelay.After(0) {
		d := g.AddDelay(opt.StepDelay, opt.Label+"-proto")
		g.AddDep(done, d)
		return d
	}
	return done
}
