package collective

import (
	"math"
	"testing"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/telemetry"
	"triosim/internal/timeline"
)

// railSetup builds an M-machine × L-GPU rail fat-tree cluster.
func railSetup(machines, local int) (*sim.SerialEngine,
	*network.FlowNetwork, []network.NodeID, *network.Topology) {
	eng := sim.NewSerialEngine()
	topo := network.RailFatTree(network.ClusterConfig{
		Machines: machines, GPUsPerMachine: local,
		NVLinkBandwidth: 300e9, NICBandwidth: 50e9,
		FabricBandwidth: 100e9, HostBandwidth: 10e9,
	}, 4, 2)
	return eng, network.NewFlowNetwork(eng, topo), topo.GPUs(), topo
}

// On an untiered topology the hierarchical schedule must degrade to the
// flat ring bit-for-bit: same tasks, same makespan.
func TestHierAllReduceFallsBackUntiered(t *testing.T) {
	const n, B, W = 4, 400e6, 100e9
	engH, netH, gpusH := ringSetup(n, W)
	gH := task.NewGraph()
	HierAllReduce(gH, netH.Topology(), gpusH, B, nil, Options{})
	spanH, _ := execute(t, engH, netH, gH)

	engR, netR, gpusR := ringSetup(n, W)
	gR := task.NewGraph()
	RingAllReduce(gR, gpusR, B, nil, Options{})
	spanR, _ := execute(t, engR, netR, gR)

	if spanH != spanR {
		t.Fatalf("untiered hier %v != flat ring %v", spanH, spanR)
	}
}

// Hierarchical AllReduce traffic: (L−1)·B intra reduce-scatter per machine,
// 2(M−1)·B/L per rail, (L−1)·B intra all-gather per machine.
func TestHierAllReduceTieredTraffic(t *testing.T) {
	const machines, local, B = 4, 2, 800e6
	eng, net, gpus, topo := railSetup(machines, local)
	g := task.NewGraph()
	log := telemetry.NewCollectiveLog()
	HierAllReduce(g, topo, gpus, B, nil, Options{Label: "ar", Log: log})
	if _, err := task.NewExecutor(eng, net, g, timeline.New()).Run(); err != nil {
		t.Fatal(err)
	}
	intra := float64(machines) * 2 * float64(local-1) * B // RS + AG
	rails := float64(local) * 2 * float64(machines-1) * (B / local)
	want := intra + rails
	if math.Abs(net.TotalBytes-want)/want > 1e-9 {
		t.Fatalf("traffic %g, want %g", net.TotalBytes, want)
	}
	e := log.Get("ar")
	if e == nil || e.Algo != "hier-allreduce" || e.Ranks != machines*local {
		t.Fatalf("log entry %+v", e)
	}
}

// With slow NICs and fast NVLink, the hierarchical schedule must beat the
// flat ring, whose machine-major ring crosses a NIC on almost every hop.
func TestHierAllReduceBeatsFlatRingOnTieredTopo(t *testing.T) {
	const machines, local, B = 8, 4, 1e9
	engH, netH, gpusH, topoH := railSetup(machines, local)
	gH := task.NewGraph()
	HierAllReduce(gH, topoH, gpusH, B, nil, Options{})
	spanH, _ := execute(t, engH, netH, gH)

	engR, netR, gpusR, _ := railSetup(machines, local)
	gR := task.NewGraph()
	RingAllReduce(gR, gpusR, B, nil, Options{})
	spanR, _ := execute(t, engR, netR, gR)

	if spanH >= spanR {
		t.Fatalf("hier %v not faster than flat ring %v", spanH, spanR)
	}
}

// Unequal ranks per machine cannot rail-align; the schedule must fall back
// to the flat ring rather than emit a lopsided hierarchy.
func TestHierAllReduceUnequalGroupsFallsBack(t *testing.T) {
	const B = 400e6
	eng, net, gpus, topo := railSetup(2, 2)
	// Ranks 0,1 on machine 0 plus only rank 2 of machine 1.
	ring := []network.NodeID{gpus[0], gpus[1], gpus[2]}
	g := task.NewGraph()
	log := telemetry.NewCollectiveLog()
	HierAllReduce(g, topo, ring, B, nil, Options{Label: "ar", Log: log})
	if _, err := task.NewExecutor(eng, net, g, timeline.New()).Run(); err != nil {
		t.Fatal(err)
	}
	if e := log.Get("ar"); e == nil || e.Algo != "ring-allreduce" {
		t.Fatalf("expected flat-ring fallback, log %+v", e)
	}
}

func TestHierAllReduceGatesOnAllRanks(t *testing.T) {
	const B = 100e6
	eng, net, gpus, topo := railSetup(2, 2)
	g := task.NewGraph()
	hold := 50 * sim.MSec
	gates := make([]*task.Task, len(gpus))
	for i := range gates {
		gates[i] = g.AddBarrier("ready")
	}
	d := g.AddDelay(hold, "straggler")
	g.AddDep(d, gates[3])
	done := HierAllReduce(g, topo, gpus, B, gates, Options{})
	_ = done
	span, _ := execute(t, eng, net, g)
	if span < hold {
		t.Fatalf("collective finished at %v before straggler gate %v",
			span, hold)
	}
}

func TestHierAllGatherTieredTraffic(t *testing.T) {
	const machines, local, B = 4, 2, 800e6
	eng, net, gpus, topo := railSetup(machines, local)
	g := task.NewGraph()
	HierAllGather(g, topo, gpus, B, nil, Options{})
	if _, err := task.NewExecutor(eng, net, g, timeline.New()).Run(); err != nil {
		t.Fatal(err)
	}
	// Rails: L rings over M machines of M·B/N bytes each → L·(M−1)·M·B/N.
	// Intra: M machines × (L−1)·B.
	n := float64(machines * local)
	rails := float64(local) * float64(machines-1) * float64(machines) * B / n
	intra := float64(machines) * float64(local-1) * B
	want := rails + intra
	if math.Abs(net.TotalBytes-want)/want > 1e-9 {
		t.Fatalf("traffic %g, want %g", net.TotalBytes, want)
	}
}

// FusedRingStep compresses a pipelined ring collective into one step whose
// wall-clock matches the multi-step ring on symmetric disjoint links.
func TestFusedRingStepMatchesRingTime(t *testing.T) {
	const n, B, W = 8, 800e6, 100e9
	engF, netF, gpusF := ringSetup(n, W)
	gF := task.NewGraph()
	bus := 2 * float64(n-1) / float64(n)
	FusedRingStep(gF, gpusF, B, bus, nil, Options{})
	spanF, _ := execute(t, engF, netF, gF)

	engR, netR, gpusR := ringSetup(n, W)
	gR := task.NewGraph()
	RingAllReduce(gR, gpusR, B, nil, Options{})
	spanR, _ := execute(t, engR, netR, gR)

	if math.Abs(float64(spanF-spanR))/float64(spanR) > 1e-6 {
		t.Fatalf("fused %v vs ring %v", spanF, spanR)
	}
	if netF.TotalBytes != netR.TotalBytes {
		t.Fatalf("fused traffic %g vs ring %g",
			netF.TotalBytes, netR.TotalBytes)
	}
}
