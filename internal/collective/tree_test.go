package collective

import (
	"testing"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/timeline"
)

// switchSetup builds an N-GPU NVSwitch fabric.
func switchSetup(n int, bw float64) (*sim.SerialEngine, *network.FlowNetwork,
	[]network.NodeID) {
	eng := sim.NewSerialEngine()
	topo := network.Switch(network.Config{
		NumGPUs: n, LinkBandwidth: bw, HostBandwidth: bw,
	})
	return eng, network.NewFlowNetwork(eng, topo), topo.GPUs()
}

func TestTreeAllReduceCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		eng, net, gpus := switchSetup(n, 100e9)
		g := task.NewGraph()
		TreeAllReduce(g, gpus, 800e6, nil, Options{})
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		tl := timeline.New()
		makespan, err := task.NewExecutor(eng, net, g, tl).Run()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if makespan <= 0 {
			t.Fatalf("n=%d: zero makespan", n)
		}
		// Lower bound: data must cross at least up and down once: 2B/W.
		lower := sim.VTime(2 * 800e6 / 100e9 / 8) // one chunk up+down min
		if makespan < lower {
			t.Fatalf("n=%d: makespan %v below physical bound", n, makespan)
		}
	}
}

func TestTreeAllReduceSingleRankNoop(t *testing.T) {
	eng, net, gpus := switchSetup(2, 100e9)
	g := task.NewGraph()
	TreeAllReduce(g, gpus[:1], 1e9, nil, Options{})
	if _, err := task.NewExecutor(eng, net, g, timeline.New()).Run(); err != nil {
		t.Fatal(err)
	}
	if net.TotalTransfers != 0 {
		t.Fatal("single-rank tree allreduce sent data")
	}
}

func TestTreeAllReduceGatesOnAfter(t *testing.T) {
	eng, net, gpus := switchSetup(4, 100e9)
	g := task.NewGraph()
	gates := make([]*task.Task, 4)
	for i := range gates {
		dur := sim.VTime(1 * sim.MSec)
		if i == 3 {
			dur = 50 * sim.MSec // straggler leaf
		}
		gates[i] = g.AddCompute(i, dur, "bwd")
	}
	TreeAllReduce(g, gpus, 100e6, gates, Options{})
	makespan, err := task.NewExecutor(eng, net, g, timeline.New()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if makespan < 50*sim.MSec {
		t.Fatalf("makespan %v ignores straggler", makespan)
	}
}

// The NCCL crossover: with per-step protocol latency, tree beats ring for
// small messages (fewer latency-bound steps) while ring is at least
// competitive for large ones (bandwidth-bound).
func TestRingVsTreeCrossover(t *testing.T) {
	run := func(bytes float64, tree bool) sim.VTime {
		eng, net, gpus := switchSetup(16, 100e9)
		g := task.NewGraph()
		opt := Options{StepDelay: 20 * sim.USec}
		if tree {
			TreeAllReduce(g, gpus, bytes, nil, opt)
		} else {
			RingAllReduce(g, gpus, bytes, nil, opt)
		}
		makespan, err := task.NewExecutor(eng, net, g, timeline.New()).Run()
		if err != nil {
			t.Fatal(err)
		}
		return makespan
	}
	smallRing := run(64e3, false)
	smallTree := run(64e3, true)
	if smallTree >= smallRing {
		t.Fatalf("tree (%v) should beat ring (%v) for small messages",
			smallTree, smallRing)
	}
	bigRing := run(4e9, false)
	bigTree := run(4e9, true)
	// For large messages ring's 2(N−1)/N·B/W bound is hard to beat; tree
	// should not win by more than its latency advantage.
	if bigRing > bigTree*2 {
		t.Fatalf("ring (%v) unexpectedly far behind tree (%v) at 4 GB",
			bigRing, bigTree)
	}
}

func TestTreeTrafficVolume(t *testing.T) {
	// Every non-root rank sends B up and receives B down: traffic =
	// 2(N−1)·B total, same as the ring.
	const n, B = 8, 800e6
	eng, net, gpus := switchSetup(n, 100e9)
	g := task.NewGraph()
	TreeAllReduce(g, gpus, B, nil, Options{})
	if _, err := task.NewExecutor(eng, net, g, timeline.New()).Run(); err != nil {
		t.Fatal(err)
	}
	want := 2 * float64(n-1) * B
	if diff := net.TotalBytes/want - 1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("tree traffic %g, want %g", net.TotalBytes, want)
	}
}
