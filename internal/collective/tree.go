package collective

import (
	"fmt"

	"triosim/internal/network"
	"triosim/internal/task"
)

// TreeAllReduce emits a binary-tree AllReduce: chunk-pipelined reduction up
// the tree followed by a chunk-pipelined broadcast down it. NCCL selects
// tree over ring for latency-bound (small) messages: a ring pays
// 2(N−1) step latencies while the tree pays ≈2·log₂(N); for bandwidth-bound
// messages both approach 2B/W. Implementing both lets the simulator study
// the crossover (see the ring-vs-tree ablation bench).
//
// Ranks are arranged in binary-heap order: rank 0 is the root and rank i's
// children are 2i+1 and 2i+2.
func TreeAllReduce(g *task.Graph, ranks []network.NodeID, bytes float64,
	after []*task.Task, opt Options) *task.Task {
	if opt.Label == "" {
		opt.Label = "treeallreduce"
	}
	n := len(ranks)
	if n <= 1 {
		return trivial(g, after, opt.Label)
	}
	opt.Log.Record(opt.Label, "tree-allreduce", n, bytes,
		2*float64(n-1)/float64(n))

	const chunks = 8
	chunkBytes := bytes / chunks
	gateOf := func(i int) *task.Task {
		if after != nil && after[i] != nil {
			return after[i]
		}
		return nil
	}

	// Reduce phase: node i sends chunk c to its parent once it holds the
	// reduced chunk c (its own data plus both children's contributions).
	// upRecv[i][c] marks chunk c's reduced value being complete at node i.
	upRecv := make([][]*task.Task, n)
	for i := range upRecv {
		upRecv[i] = make([]*task.Task, chunks)
	}
	// Process nodes bottom-up (higher indices are deeper in the heap).
	for i := n - 1; i >= 1; i-- {
		parent := (i - 1) / 2
		var prevChunk *task.Task
		for c := 0; c < chunks; c++ {
			send := g.AddComm(ranks[i], ranks[parent], chunkBytes,
				fmt.Sprintf("%s-up-n%d-c%d", opt.Label, i, c))
			send.Collective = opt.Label
			if gt := gateOf(i); gt != nil {
				g.AddDep(gt, send)
			}
			for _, ch := range []int{2*i + 1, 2*i + 2} {
				if ch < n && upRecv[ch][c] != nil {
					g.AddDep(upRecv[ch][c], send)
				}
			}
			if prevChunk != nil {
				g.AddDep(prevChunk, send) // link serialization
			}
			if opt.StepDelay.After(0) && c == 0 {
				d := g.AddDelay(opt.StepDelay,
					fmt.Sprintf("%s-up-n%d-proto", opt.Label, i))
				g.AddDep(d, send)
			}
			prevChunk = send
			upRecv[i][c] = send
		}
	}
	// The root's chunk c is fully reduced when both its children delivered.
	rootReady := make([]*task.Task, chunks)
	for c := 0; c < chunks; c++ {
		br := g.AddBarrier(fmt.Sprintf("%s-root-c%d", opt.Label, c))
		if gt := gateOf(0); gt != nil {
			g.AddDep(gt, br)
		}
		for _, ch := range []int{1, 2} {
			if ch < n {
				g.AddDep(upRecv[ch][c], br)
			}
		}
		rootReady[c] = br
	}

	// Broadcast phase: node i forwards chunk c to its children once it has
	// it. haveChunk[i][c] marks possession of the final reduced chunk.
	done := g.AddBarrier(opt.Label + "-done")
	haveChunk := make([][]*task.Task, n)
	for i := range haveChunk {
		haveChunk[i] = make([]*task.Task, chunks)
	}
	copy(haveChunk[0], rootReady)
	prevSendOf := make([]*task.Task, n) // per-parent link serialization
	for i := 0; i < n; i++ {
		for c := 0; c < chunks; c++ {
			for _, ch := range []int{2*i + 1, 2*i + 2} {
				if ch >= n {
					continue
				}
				send := g.AddComm(ranks[i], ranks[ch], chunkBytes,
					fmt.Sprintf("%s-down-n%d-c%d", opt.Label, ch, c))
				send.Collective = opt.Label
				g.AddDep(haveChunk[i][c], send)
				if prevSendOf[i] != nil {
					g.AddDep(prevSendOf[i], send)
				}
				if opt.StepDelay.After(0) && c == 0 {
					d := g.AddDelay(opt.StepDelay,
						fmt.Sprintf("%s-down-n%d-proto", opt.Label, ch))
					g.AddDep(d, send)
				}
				prevSendOf[i] = send
				haveChunk[ch][c] = send
				if c == chunks-1 {
					g.AddDep(send, done)
				}
			}
		}
		// Nodes with no children finish when they hold the last chunk.
		if 2*i+1 >= n {
			g.AddDep(haveChunk[i][chunks-1], done)
		}
	}
	return done
}
