package config

import (
	"os"
	"path/filepath"
	"testing"

	"triosim/internal/core"
)

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAndRun(t *testing.T) {
	path := writeSpec(t, `{
		"model": "resnet18",
		"platform": "P2",
		"parallelism": "ddp",
		"trace_batch": 32
	}`)
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIteration <= 0 {
		t.Fatal("no time")
	}
}

func TestCustomTopologyWithOverride(t *testing.T) {
	path := writeSpec(t, `{
		"model": "resnet18",
		"platform": "P2",
		"parallelism": "ddp",
		"trace_batch": 32,
		"topology": {
			"kind": "switch",
			"num_gpus": 4,
			"link_bandwidth_gbps": 235,
			"link_latency_us": 1.2,
			"host_bandwidth_gbps": 20,
			"host_latency_us": 5,
			"overrides": [{"link": 0, "bandwidth_gbps": 30}]
		}
	}`)
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil {
		t.Fatal("topology not built")
	}
	if cfg.Topology.Links[0].Bandwidth != 30e9 {
		t.Fatalf("override not applied: %g", cfg.Topology.Links[0].Bandwidth)
	}
	slow, err := core.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The same run with the symmetric fabric must be faster.
	cfg.Topology.SetLinkBandwidth(0, 235e9)
	fast, err := core.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.PerIteration <= fast.PerIteration {
		t.Fatalf("degraded link did not slow the run: %v vs %v",
			slow.PerIteration, fast.PerIteration)
	}
}

func TestTopologyKinds(t *testing.T) {
	for _, kind := range []string{"ring", "switch", "pcie-tree",
		"double-ring", "chord-ring"} {
		spec := TopologySpec{
			Kind: kind, NumGPUs: 4,
			LinkBandwidthGBps: 100, HostBandwidthGBps: 20,
		}
		topo, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(topo.GPUs()) != 4 {
			t.Fatalf("%s: %d GPUs", kind, len(topo.GPUs()))
		}
	}
	mesh := TopologySpec{Kind: "mesh", Rows: 2, Cols: 3,
		LinkBandwidthGBps: 100, HostBandwidthGBps: 20}
	topo, err := mesh.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.GPUs()) != 6 {
		t.Fatalf("mesh GPUs = %d", len(topo.GPUs()))
	}
}

func TestExtraLinks(t *testing.T) {
	spec := TopologySpec{
		Kind: "ring", NumGPUs: 6,
		LinkBandwidthGBps: 100, HostBandwidthGBps: 20,
		ExtraLinks: []LinkSpec{{A: 0, B: 3, BandwidthGBps: 50}},
	}
	topo, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	gpus := topo.GPUs()
	route, err := topo.Route(gpus[0], gpus[3])
	if err != nil || len(route) != 1 {
		t.Fatalf("chord not used: %v, %v", route, err)
	}
}

func TestRejections(t *testing.T) {
	if _, err := Load("/nonexistent/run.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := writeSpec(t, `{not json`)
	if _, err := Load(bad); err == nil {
		t.Fatal("garbage accepted")
	}
	spec := &RunSpec{Platform: "P9", Parallelism: "ddp"}
	if _, err := spec.ToCore(); err == nil {
		t.Fatal("unknown platform accepted")
	}
	ts := TopologySpec{Kind: "warp", NumGPUs: 2, LinkBandwidthGBps: 1,
		HostBandwidthGBps: 1}
	if _, err := ts.Build(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	ts = TopologySpec{Kind: "ring", NumGPUs: 2}
	if _, err := ts.Build(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	ts = TopologySpec{Kind: "mesh", LinkBandwidthGBps: 1,
		HostBandwidthGBps: 1}
	if _, err := ts.Build(); err == nil {
		t.Fatal("mesh without dims accepted")
	}
	ts = TopologySpec{Kind: "ring", NumGPUs: 2, LinkBandwidthGBps: 1,
		HostBandwidthGBps: 1,
		ExtraLinks:        []LinkSpec{{A: 0, B: 9, BandwidthGBps: 1}}}
	if _, err := ts.Build(); err == nil {
		t.Fatal("out-of-range extra link accepted")
	}
	ts = TopologySpec{Kind: "ring", NumGPUs: 2, LinkBandwidthGBps: 1,
		HostBandwidthGBps: 1, Overrides: []Override{{Link: 99}}}
	if _, err := ts.Build(); err == nil {
		t.Fatal("out-of-range override accepted")
	}
}
