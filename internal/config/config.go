// Package config loads simulation configurations from JSON, including
// user-defined network topologies — the paper's "users can set up any
// bandwidth value of the links" and asymmetric-network capability, exposed
// declaratively for the CLI.
//
// Example:
//
//	{
//	  "model": "resnet50",
//	  "platform": "P2",
//	  "parallelism": "ddp",
//	  "trace_batch": 128,
//	  "topology": {
//	    "kind": "switch",
//	    "num_gpus": 4,
//	    "link_bandwidth_gbps": 235,
//	    "link_latency_us": 1.2,
//	    "host_bandwidth_gbps": 20,
//	    "overrides": [{"link": 0, "bandwidth_gbps": 60}]
//	  }
//	}
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/network"
	"triosim/internal/sim"
)

// LinkSpec adds one custom link to a topology.
type LinkSpec struct {
	A             int     `json:"a"`
	B             int     `json:"b"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	LatencyUS     float64 `json:"latency_us"`
}

// Override changes one built link's bandwidth (asymmetric what-ifs).
type Override struct {
	Link          int     `json:"link"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
}

// TopologySpec declares an interconnect.
type TopologySpec struct {
	// Kind: ring, switch, pcie-tree, mesh, double-ring, chord-ring, or a
	// hierarchical cluster kind — rail-fat-tree, dragonfly, torus3d — which
	// uses the machines/gpus_per_machine and tiered-bandwidth fields below.
	Kind    string `json:"kind"`
	NumGPUs int    `json:"num_gpus"`
	// Rows/Cols apply to mesh.
	Rows              int        `json:"rows,omitempty"`
	Cols              int        `json:"cols,omitempty"`
	LinkBandwidthGBps float64    `json:"link_bandwidth_gbps"`
	LinkLatencyUS     float64    `json:"link_latency_us"`
	HostBandwidthGBps float64    `json:"host_bandwidth_gbps"`
	HostLatencyUS     float64    `json:"host_latency_us"`
	ExtraLinks        []LinkSpec `json:"extra_links,omitempty"`
	Overrides         []Override `json:"overrides,omitempty"`

	// Hierarchical cluster parameters (rail-fat-tree, dragonfly, torus3d).
	Machines       int `json:"machines,omitempty"`
	GPUsPerMachine int `json:"gpus_per_machine,omitempty"`
	// NVLinkGBps is the intra-machine tier bandwidth; LinkBandwidthGBps
	// doubles as the NIC tier and FabricGBps as the switch fabric (defaults
	// to the NIC rate when zero).
	NVLinkGBps float64 `json:"nvlink_gbps,omitempty"`
	FabricGBps float64 `json:"fabric_gbps,omitempty"`
	// LeafWidth/Spines shape the rail fat-tree; GroupSize shapes the
	// dragonfly; X/Y/Z shape the 3D torus.
	LeafWidth int `json:"leaf_width,omitempty"`
	Spines    int `json:"spines,omitempty"`
	GroupSize int `json:"group_size,omitempty"`
	X         int `json:"x,omitempty"`
	Y         int `json:"y,omitempty"`
	Z         int `json:"z,omitempty"`
}

// buildCluster materializes one of the hierarchical cluster kinds.
func (t *TopologySpec) buildCluster() (*network.Topology, error) {
	cc := network.ClusterConfig{
		Machines:        t.Machines,
		GPUsPerMachine:  t.GPUsPerMachine,
		NVLinkBandwidth: t.NVLinkGBps * 1e9,
		NVLinkLatency:   sim.VTime(t.LinkLatencyUS) * sim.USec,
		NICBandwidth:    t.LinkBandwidthGBps * 1e9,
		NICLatency:      sim.VTime(t.LinkLatencyUS) * sim.USec,
		FabricBandwidth: t.FabricGBps * 1e9,
		FabricLatency:   sim.VTime(t.LinkLatencyUS) * sim.USec,
		HostBandwidth:   t.HostBandwidthGBps * 1e9,
		HostLatency:     sim.VTime(t.HostLatencyUS) * sim.USec,
	}
	if t.GPUsPerMachine < 1 {
		return nil, fmt.Errorf("config: %s needs gpus_per_machine", t.Kind)
	}
	switch t.Kind {
	case "rail-fat-tree":
		if t.Machines < 1 {
			return nil, fmt.Errorf("config: rail-fat-tree needs machines")
		}
		leaf, spines := t.LeafWidth, t.Spines
		if leaf < 1 {
			leaf = 8
		}
		if spines < 1 {
			spines = 2
		}
		return network.RailFatTree(cc, leaf, spines), nil
	case "dragonfly":
		if t.Machines < 1 {
			return nil, fmt.Errorf("config: dragonfly needs machines")
		}
		gs := t.GroupSize
		if gs < 1 {
			gs = 4
		}
		return network.Dragonfly(cc, gs), nil
	case "torus3d":
		if t.X < 1 || t.Y < 1 || t.Z < 1 {
			return nil, fmt.Errorf("config: torus3d needs x, y, z")
		}
		return network.Torus3D(cc, t.X, t.Y, t.Z), nil
	}
	return nil, fmt.Errorf("config: unknown cluster kind %q", t.Kind)
}

// Build materializes the topology.
func (t *TopologySpec) Build() (*network.Topology, error) {
	cfg := network.Config{
		NumGPUs:       t.NumGPUs,
		LinkBandwidth: t.LinkBandwidthGBps * 1e9,
		LinkLatency:   sim.VTime(t.LinkLatencyUS) * sim.USec,
		HostBandwidth: t.HostBandwidthGBps * 1e9,
		HostLatency:   sim.VTime(t.HostLatencyUS) * sim.USec,
	}
	if cfg.LinkBandwidth <= 0 || cfg.HostBandwidth <= 0 {
		return nil, fmt.Errorf("config: topology needs positive bandwidths")
	}
	switch t.Kind {
	case "rail-fat-tree", "dragonfly", "torus3d":
		return t.buildCluster()
	}
	var topo *network.Topology
	switch t.Kind {
	case "ring":
		topo = network.Ring(cfg)
	case "switch":
		topo = network.Switch(cfg)
	case "pcie-tree":
		topo = network.PCIeTree(cfg)
	case "mesh":
		if t.Rows < 1 || t.Cols < 1 {
			return nil, fmt.Errorf("config: mesh needs rows and cols")
		}
		topo = network.Mesh(t.Rows, t.Cols, cfg)
	case "double-ring":
		topo = network.DoubleRing(cfg)
	case "chord-ring":
		topo = network.RingWithChords(cfg)
	default:
		return nil, fmt.Errorf("config: unknown topology kind %q", t.Kind)
	}
	gpus := topo.GPUs()
	for _, l := range t.ExtraLinks {
		if l.A < 0 || l.A >= len(gpus) || l.B < 0 || l.B >= len(gpus) {
			return nil, fmt.Errorf("config: extra link %d-%d out of range",
				l.A, l.B)
		}
		topo.AddLink(gpus[l.A], gpus[l.B], l.BandwidthGBps*1e9,
			sim.VTime(l.LatencyUS)*sim.USec)
	}
	for _, o := range t.Overrides {
		if o.Link < 0 || o.Link >= len(topo.Links) {
			return nil, fmt.Errorf("config: override link %d out of range",
				o.Link)
		}
		topo.SetLinkBandwidth(o.Link, o.BandwidthGBps*1e9)
	}
	return topo, nil
}

// RunSpec declares one simulation run.
type RunSpec struct {
	Model       string        `json:"model,omitempty"`
	TraceFile   string        `json:"trace_file,omitempty"`
	Platform    string        `json:"platform"`
	Parallelism string        `json:"parallelism"`
	TraceBatch  int           `json:"trace_batch,omitempty"`
	TraceGPU    string        `json:"trace_gpu,omitempty"`
	GlobalBatch int           `json:"global_batch,omitempty"`
	NumGPUs     int           `json:"num_gpus,omitempty"`
	Chunks      int           `json:"chunks,omitempty"`
	Iterations  int           `json:"iterations,omitempty"`
	DPGroups    int           `json:"dp_groups,omitempty"`
	BucketMB    float64       `json:"bucket_mb,omitempty"`
	Collective  string        `json:"collective,omitempty"`
	TPRanks     int           `json:"tp_ranks,omitempty"`
	PPStages    int           `json:"pp_stages,omitempty"`
	FuseCompute bool          `json:"fuse_compute,omitempty"`
	// NetApproxTol enables the flow network's approximate-equilibrium mode
	// (0 = exact). See docs/TOPOLOGY.md.
	NetApproxTol float64       `json:"net_approx_tol,omitempty"`
	Topology     *TopologySpec `json:"topology,omitempty"`
}

// Load reads a RunSpec from a JSON file.
func Load(path string) (*RunSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var spec RunSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	return &spec, nil
}

// ToCore converts the spec into a core.Config.
func (s *RunSpec) ToCore() (core.Config, error) {
	var out core.Config
	plat, err := gpu.PlatformByName(s.Platform)
	if err != nil {
		return out, err
	}
	out = core.Config{
		Model:        s.Model,
		Platform:     plat,
		Parallelism:  core.Parallelism(s.Parallelism),
		TraceBatch:   s.TraceBatch,
		TraceGPU:     s.TraceGPU,
		GlobalBatch:  s.GlobalBatch,
		NumGPUs:      s.NumGPUs,
		MicroBatches: s.Chunks,
		Iterations:   s.Iterations,
		DPGroups:     s.DPGroups,
		BucketBytes:  s.BucketMB * (1 << 20),
		Collective:   s.Collective,
		TPRanks:      s.TPRanks,
		PPStages:     s.PPStages,
		FuseCompute:  s.FuseCompute,
		NetApproxTol: s.NetApproxTol,
	}
	if s.Topology != nil {
		topo, err := s.Topology.Build()
		if err != nil {
			return out, err
		}
		out.Topology = topo
	}
	return out, nil
}
