// Package task defines the dependency-graph intermediate representation the
// multi-GPU trace extrapolator produces and the simulator executes.
//
// The paper extrapolates the single-GPU trace "while the simulation
// unfolds": reading each trace element, deciding which GPU(s) perform it,
// and inserting data-movement operators when tensors are not resident. This
// reproduction expresses the same decisions as an explicit task graph per
// training iteration — a task only runs once its dependencies resolve, so
// the execution semantics are identical, and the graph form is directly
// unit-testable.
package task

import (
	"fmt"

	"triosim/internal/network"
	"triosim/internal/sim"
)

// Kind classifies tasks.
type Kind int

// Task kinds.
const (
	// Compute occupies one GPU's compute stream for Duration.
	Compute Kind = iota
	// Comm transfers Bytes from Src to Dst over the network model.
	Comm
	// HostLoad transfers Bytes from the host node to Dst (input staging).
	HostLoad
	// Barrier is an instantaneous synchronization point.
	Barrier
	// Delay occupies no resource but takes Duration (protocol latencies,
	// CPU scheduling overheads).
	Delay
)

var kindNames = [...]string{"compute", "comm", "hostload", "barrier", "delay"}

// String returns the kind name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Task is one node of the execution graph.
type Task struct {
	ID    int
	Kind  Kind
	Label string

	// GPU is the executing GPU index for Compute tasks.
	GPU int
	// Duration is the predicted execution time for Compute tasks.
	Duration sim.VTime

	// Src and Dst are topology node IDs for Comm/HostLoad tasks.
	Src, Dst network.NodeID
	// Bytes is the transfer volume for Comm/HostLoad tasks.
	Bytes float64

	// Layer and MicroBatch tag the task for breakdowns and tests.
	Layer      int
	MicroBatch int
	// Collective tags Comm tasks emitted by a collective generator with the
	// collective instance's label, so telemetry can aggregate per collective.
	Collective string

	deps       []int
	dependents []int
}

// Deps returns the IDs of tasks that must finish before this one starts.
func (t *Task) Deps() []int { return t.deps }

// Dependents returns the IDs of tasks waiting on this one.
func (t *Task) Dependents() []int { return t.dependents }

// Graph is a DAG of tasks.
type Graph struct {
	Tasks []*Task
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// add appends t, assigning its ID.
func (g *Graph) add(t *Task) *Task {
	t.ID = len(g.Tasks)
	g.Tasks = append(g.Tasks, t)
	return t
}

// AddCompute adds a compute task on gpu lasting dur.
func (g *Graph) AddCompute(gpu int, dur sim.VTime, label string) *Task {
	return g.add(&Task{Kind: Compute, GPU: gpu, Duration: dur, Label: label})
}

// AddComm adds a network transfer task.
func (g *Graph) AddComm(src, dst network.NodeID, bytes float64,
	label string) *Task {
	return g.add(&Task{Kind: Comm, Src: src, Dst: dst, Bytes: bytes,
		Label: label})
}

// AddHostLoad adds a host→GPU staging transfer.
func (g *Graph) AddHostLoad(host, dst network.NodeID, bytes float64,
	label string) *Task {
	return g.add(&Task{Kind: HostLoad, Src: host, Dst: dst, Bytes: bytes,
		Label: label})
}

// AddBarrier adds an instantaneous barrier task.
func (g *Graph) AddBarrier(label string) *Task {
	return g.add(&Task{Kind: Barrier, Label: label})
}

// AddDelay adds a resource-free task taking dur (protocol/CPU overheads).
func (g *Graph) AddDelay(dur sim.VTime, label string) *Task {
	return g.add(&Task{Kind: Delay, Duration: dur, Label: label})
}

// AddDep records that before must finish before after starts. Self- and
// duplicate dependencies are ignored.
func (g *Graph) AddDep(before, after *Task) {
	if before == nil || after == nil || before.ID == after.ID {
		return
	}
	for _, d := range after.deps {
		if d == before.ID {
			return
		}
	}
	after.deps = append(after.deps, before.ID)
	before.dependents = append(before.dependents, after.ID)
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.Tasks) }

// Validate checks that the graph is a DAG with resolvable dependencies and
// well-formed task fields.
func (g *Graph) Validate() error {
	for _, t := range g.Tasks {
		switch t.Kind {
		case Compute:
			if t.Duration.Before(0) {
				return fmt.Errorf("task %d (%s): negative duration",
					t.ID, t.Label)
			}
			if t.GPU < 0 {
				return fmt.Errorf("task %d (%s): no GPU", t.ID, t.Label)
			}
		case Delay:
			if t.Duration.Before(0) {
				return fmt.Errorf("task %d (%s): negative delay",
					t.ID, t.Label)
			}
		case Comm, HostLoad:
			if t.Bytes < 0 {
				return fmt.Errorf("task %d (%s): negative bytes",
					t.ID, t.Label)
			}
		}
		for _, d := range t.deps {
			if d < 0 || d >= len(g.Tasks) {
				return fmt.Errorf("task %d (%s): dangling dep %d",
					t.ID, t.Label, d)
			}
		}
	}
	// Kahn's algorithm: all tasks must be reachable at indegree 0.
	indeg := make([]int, len(g.Tasks))
	for _, t := range g.Tasks {
		indeg[t.ID] = len(t.deps)
	}
	var queue []int
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, dep := range g.Tasks[id].dependents {
			indeg[dep]--
			if indeg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if seen != len(g.Tasks) {
		return fmt.Errorf("task: graph has a cycle (%d of %d reachable)",
			seen, len(g.Tasks))
	}
	return nil
}

// CriticalPathLength returns the longest dependency chain's total compute
// duration, ignoring communication (a lower bound on makespan and a useful
// diagnostic for stage balancing).
func (g *Graph) CriticalPathLength() sim.VTime {
	memo := make([]sim.VTime, len(g.Tasks))
	done := make([]bool, len(g.Tasks))
	var longest func(id int) sim.VTime
	longest = func(id int) sim.VTime {
		if done[id] {
			return memo[id]
		}
		done[id] = true
		t := g.Tasks[id]
		var best sim.VTime
		for _, d := range t.deps {
			if v := longest(d); v.After(best) {
				best = v
			}
		}
		memo[id] = best + t.Duration
		return memo[id]
	}
	var best sim.VTime
	for id := range g.Tasks {
		if v := longest(id); v.After(best) {
			best = v
		}
	}
	return best
}

// Stats summarizes a graph for logs and tests.
type Stats struct {
	Compute, Comm, HostLoad, Barrier int
	ComputeTime                      sim.VTime
	CommBytes                        float64
}

// Summarize counts tasks by kind.
func (g *Graph) Summarize() Stats {
	var s Stats
	for _, t := range g.Tasks {
		switch t.Kind {
		case Compute:
			s.Compute++
			s.ComputeTime += t.Duration
		case Comm:
			s.Comm++
			s.CommBytes += t.Bytes
		case HostLoad:
			s.HostLoad++
			s.CommBytes += t.Bytes
		case Barrier:
			s.Barrier++
		}
	}
	return s
}
