package task

import (
	"fmt"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/timeline"
)

// Observer is notified when a resource-occupying task finishes. It must be
// side-effect-free with respect to the event schedule: observers may record
// but never call Schedule, so the dispatched schedule (and the replay
// digest) is identical with or without them.
type Observer interface {
	TaskDone(t *Task, start, end sim.VTime)
}

// Executor runs a task graph on the event engine: compute tasks occupy their
// GPU's compute stream serially (in ready order), communication tasks go to
// the network model (which shares bandwidth among concurrent transfers), and
// barriers resolve instantly. It records every activity on a timeline.
type Executor struct {
	eng   sim.Engine
	net   network.Network
	graph *Graph
	tl    *timeline.Timeline
	obs   []Observer

	// Stretch optionally scales compute-task durations per GPU: a task
	// starting at time at on gpu runs for Duration×Stretch(gpu, at). The
	// factor is sampled once at task start and applies to the whole task
	// (fault injection's straggler model). A return of 1 leaves the task
	// untouched — bit-identical to Stretch being nil. Set before Run.
	Stretch func(gpu int, at sim.VTime) float64

	indeg     []int
	remaining int
	gpuQueue  map[int][]*Task
	gpuBusy   map[int]bool

	startTime sim.VTime
	lastEnd   sim.VTime
}

// NewExecutor prepares an executor; call Run to execute.
func NewExecutor(eng sim.Engine, net network.Network, g *Graph,
	tl *timeline.Timeline) *Executor {
	return &Executor{
		eng:      eng,
		net:      net,
		graph:    g,
		tl:       tl,
		gpuQueue: map[int][]*Task{},
		gpuBusy:  map[int]bool{},
	}
}

// Observe registers an observer; call before Run.
func (x *Executor) Observe(o Observer) {
	x.obs = append(x.obs, o)
}

// notify reports a finished resource-occupying task to every observer.
func (x *Executor) notify(t *Task, start, end sim.VTime) {
	for _, o := range x.obs {
		o.TaskDone(t, start, end)
	}
}

// Run executes the whole graph and returns the makespan (the virtual time
// from start to the last task's completion).
func (x *Executor) Run() (sim.VTime, error) {
	if err := x.graph.Validate(); err != nil {
		return 0, err
	}
	x.indeg = make([]int, x.graph.Len())
	x.remaining = x.graph.Len()
	for _, t := range x.graph.Tasks {
		x.indeg[t.ID] = len(t.deps)
	}
	x.startTime = x.eng.CurrentTime()
	x.lastEnd = x.startTime

	sim.ScheduleFunc(x.eng, x.startTime, func(now sim.VTime) error {
		// Snapshot the initial ready set first: instantaneous tasks (e.g.
		// barriers) completing inside ready() may zero further indegrees,
		// and those tasks are dispatched by complete(), not this loop.
		var initial []*Task
		for _, t := range x.graph.Tasks {
			if x.indeg[t.ID] == 0 {
				initial = append(initial, t)
			}
		}
		for _, t := range initial {
			x.ready(t, now)
		}
		return nil
	})
	if err := x.eng.Run(); err != nil {
		return 0, err
	}
	if x.remaining != 0 {
		return 0, fmt.Errorf("task: executor stalled with %d tasks pending",
			x.remaining)
	}
	return x.lastEnd - x.startTime, nil
}

// ready dispatches a task whose dependencies have all resolved.
func (x *Executor) ready(t *Task, now sim.VTime) {
	switch t.Kind {
	case Compute:
		x.gpuQueue[t.GPU] = append(x.gpuQueue[t.GPU], t)
		if !x.gpuBusy[t.GPU] {
			x.startNextCompute(t.GPU, now)
		}
	case Comm, HostLoad:
		phase := "comm"
		if t.Kind == HostLoad {
			phase = "hostload"
		}
		start := now
		x.net.Send(t.Src, t.Dst, t.Bytes, func(end sim.VTime) {
			x.tl.Add("net", t.Label, phase, start, end)
			x.notify(t, start, end)
			x.complete(t, end)
		})
	case Barrier:
		x.complete(t, now)
	case Delay:
		sim.ScheduleFunc(x.eng, now+t.Duration,
			func(done sim.VTime) error {
				x.complete(t, done)
				return nil
			})
	}
}

// startNextCompute pops the GPU's ready queue and occupies the stream.
func (x *Executor) startNextCompute(gpu int, now sim.VTime) {
	q := x.gpuQueue[gpu]
	if len(q) == 0 {
		return
	}
	t := q[0]
	x.gpuQueue[gpu] = q[1:]
	x.gpuBusy[gpu] = true
	dur := t.Duration
	if x.Stretch != nil {
		if f := x.Stretch(gpu, now); f != 1 {
			dur = sim.VTime(float64(dur) * f)
		}
	}
	end := now + dur
	sim.ScheduleFunc(x.eng, end, func(done sim.VTime) error {
		x.tl.Add(fmt.Sprintf("gpu%d", gpu), t.Label, "compute", now, done)
		x.notify(t, now, done)
		x.gpuBusy[gpu] = false
		x.complete(t, done)
		x.startNextCompute(gpu, done)
		return nil
	})
}

// complete resolves a finished task and releases its dependents.
func (x *Executor) complete(t *Task, now sim.VTime) {
	x.remaining--
	if now.After(x.lastEnd) {
		x.lastEnd = now
	}
	for _, depID := range t.dependents {
		x.indeg[depID]--
		if x.indeg[depID] == 0 {
			x.ready(x.graph.Tasks[depID], now)
		}
	}
}
