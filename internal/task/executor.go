package task

import (
	"fmt"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/timeline"
)

// Observer is notified when a task finishes: resource-occupying tasks
// (compute, comm, hostload) with their occupancy interval, and instantaneous
// or waiting tasks (barriers, delays) with their resolution window. It must
// be side-effect-free with respect to the event schedule: observers may
// record but never call Schedule, so the dispatched schedule (and the replay
// digest) is identical with or without them.
type Observer interface {
	TaskDone(t *Task, start, end sim.VTime)
}

// Observers fans TaskDone out to a list, in registration order. The
// executor notifies through one, and the serving layer uses one to report
// its synthesized per-step tasks to the telemetry collector and the span
// recorder.
type Observers []Observer

// TaskDone notifies every observer.
func (os Observers) TaskDone(t *Task, start, end sim.VTime) {
	for _, o := range os {
		o.TaskDone(t, start, end)
	}
}

// Executor runs a task graph on the event engine: compute tasks occupy their
// GPU's compute stream serially (in ready order), communication tasks go to
// the network model (which shares bandwidth among concurrent transfers), and
// barriers resolve instantly. It records every activity on a timeline.
type Executor struct {
	eng   sim.Engine
	net   network.Network
	graph *Graph
	tl    *timeline.Timeline
	obs   Observers

	// Stretch optionally scales compute-task durations per GPU: a task
	// starting at time at on gpu runs for Duration×Stretch(gpu, at). The
	// factor is sampled once at task start and applies to the whole task
	// (fault injection's straggler model). A return of 1 leaves the task
	// untouched — bit-identical to Stretch being nil. Set before Run.
	Stretch func(gpu int, at sim.VTime) float64

	indeg     []int
	remaining int
	// lanes holds per-GPU compute state, indexed by GPU. A slice instead of a
	// map: GPU indices are small and dense, and the reusable deque keeps the
	// steady-state ready/complete cycle allocation-free.
	lanes []laneState
	// free recycles completion records (see doneRec). Single-goroutine by the
	// engine contract, so a plain slice suffices.
	free []*doneRec

	startTime sim.VTime
	lastEnd   sim.VTime
}

// laneState is one GPU's compute stream: a head-indexed FIFO whose backing
// array is reused once drained, plus the busy flag and the cached timeline
// lane name (formerly a fmt.Sprintf per task completion).
type laneState struct {
	queue []*Task
	head  int
	busy  bool
	name  string
}

// doneRec is a pooled completion record: it replaces the per-task closures
// the executor used to allocate for every compute, delay, and communication
// completion. The method values onTimer/onComm are bound once when the
// record is first allocated and reused across recycles, so steady-state
// dispatch allocates nothing.
//
//triosim:pooled
type doneRec struct {
	x     *Executor
	t     *Task
	gpu   int
	start sim.VTime
	delay bool
	phase string

	onTimer func(now sim.VTime) error
	onComm  func(end sim.VTime)
}

// NewExecutor prepares an executor; call Run to execute.
func NewExecutor(eng sim.Engine, net network.Network, g *Graph,
	tl *timeline.Timeline) *Executor {
	return &Executor{
		eng:   eng,
		net:   net,
		graph: g,
		tl:    tl,
	}
}

// Observe registers an observer; call before Run.
func (x *Executor) Observe(o Observer) {
	x.obs = append(x.obs, o)
}

// notify reports a finished resource-occupying task to every observer.
func (x *Executor) notify(t *Task, start, end sim.VTime) {
	x.obs.TaskDone(t, start, end)
}

// lane returns gpu's lane, growing the lane table on first sight of the GPU.
// The returned pointer is only valid until the next lane call — don't retain.
func (x *Executor) lane(gpu int) *laneState {
	for gpu >= len(x.lanes) {
		x.lanes = append(x.lanes, laneState{})
	}
	l := &x.lanes[gpu]
	if l.name == "" {
		l.name = fmt.Sprintf("gpu%d", gpu)
	}
	return l
}

// getRec pops a recycled completion record (or allocates the pool's next).
func (x *Executor) getRec() *doneRec {
	if n := len(x.free); n > 0 {
		r := x.free[n-1]
		x.free[n-1] = nil
		x.free = x.free[:n-1]
		return r
	}
	r := &doneRec{x: x}
	r.onTimer = r.timerDone
	r.onComm = r.commDone
	return r
}

// putRec returns a record whose completion has fired. Callers copy every
// field they need before releasing: the record may be reacquired by tasks
// started later in the same completion.
func (x *Executor) putRec(r *doneRec) {
	r.t = nil
	r.phase = ""
	x.free = append(x.free, r)
}

// Run executes the whole graph and returns the makespan (the virtual time
// from start to the last task's completion).
func (x *Executor) Run() (sim.VTime, error) {
	if err := x.graph.Validate(); err != nil {
		return 0, err
	}
	x.indeg = make([]int, x.graph.Len())
	x.remaining = x.graph.Len()
	for _, t := range x.graph.Tasks {
		x.indeg[t.ID] = len(t.deps)
	}
	x.startTime = x.eng.CurrentTime()
	x.lastEnd = x.startTime

	sim.ScheduleFunc(x.eng, x.startTime, func(now sim.VTime) error {
		// Snapshot the initial ready set first: instantaneous tasks (e.g.
		// barriers) completing inside ready() may zero further indegrees,
		// and those tasks are dispatched by complete(), not this loop.
		var initial []*Task
		for _, t := range x.graph.Tasks {
			if x.indeg[t.ID] == 0 {
				initial = append(initial, t)
			}
		}
		for _, t := range initial {
			x.ready(t, now)
		}
		return nil
	})
	if err := x.eng.Run(); err != nil {
		return 0, err
	}
	if x.remaining != 0 {
		return 0, fmt.Errorf("task: executor stalled with %d tasks pending",
			x.remaining)
	}
	return x.lastEnd - x.startTime, nil
}

// ready dispatches a task whose dependencies have all resolved.
func (x *Executor) ready(t *Task, now sim.VTime) {
	switch t.Kind {
	case Compute:
		l := x.lane(t.GPU)
		l.queue = append(l.queue, t)
		if !l.busy {
			x.startNextCompute(t.GPU, now)
		}
	case Comm, HostLoad:
		phase := "comm"
		if t.Kind == HostLoad {
			phase = "hostload"
		}
		r := x.getRec()
		r.t, r.start, r.phase = t, now, phase
		x.net.Send(t.Src, t.Dst, t.Bytes, r.onComm)
	case Barrier:
		x.notify(t, now, now)
		x.complete(t, now)
	case Delay:
		r := x.getRec()
		r.t, r.start, r.delay = t, now, true
		sim.ScheduleFunc(x.eng, now+t.Duration, r.onTimer)
	}
}

// startNextCompute pops the GPU's ready queue and occupies the stream.
func (x *Executor) startNextCompute(gpu int, now sim.VTime) {
	l := x.lane(gpu)
	if l.head >= len(l.queue) {
		return
	}
	t := l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	if l.head == len(l.queue) {
		l.queue = l.queue[:0]
		l.head = 0
	}
	l.busy = true
	dur := t.Duration
	if x.Stretch != nil {
		if f := x.Stretch(gpu, now); f != 1 {
			dur = sim.VTime(float64(dur) * f)
		}
	}
	r := x.getRec()
	r.t, r.gpu, r.start, r.delay = t, gpu, now, false
	sim.ScheduleFunc(x.eng, now+dur, r.onTimer)
}

// timerDone completes a compute or delay task when its scheduled end fires.
func (r *doneRec) timerDone(done sim.VTime) error {
	x, t, gpu, start, delay := r.x, r.t, r.gpu, r.start, r.delay
	x.putRec(r)
	if delay {
		x.notify(t, start, done)
		x.complete(t, done)
		return nil
	}
	x.tl.Add(x.lane(gpu).name, t.Label, "compute", start, done)
	x.notify(t, start, done)
	x.lane(gpu).busy = false
	x.complete(t, done)
	x.startNextCompute(gpu, done)
	return nil
}

// commDone completes a communication task when the network model reports the
// transfer finished.
func (r *doneRec) commDone(end sim.VTime) {
	x, t, start, phase := r.x, r.t, r.start, r.phase
	x.putRec(r)
	x.tl.Add("net", t.Label, phase, start, end)
	x.notify(t, start, end)
	x.complete(t, end)
}

// complete resolves a finished task and releases its dependents.
func (x *Executor) complete(t *Task, now sim.VTime) {
	x.remaining--
	if now.After(x.lastEnd) {
		x.lastEnd = now
	}
	for _, depID := range t.dependents {
		x.indeg[depID]--
		if x.indeg[depID] == 0 {
			x.ready(x.graph.Tasks[depID], now)
		}
	}
}
