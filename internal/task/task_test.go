package task

import (
	"math/rand"
	"testing"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/timeline"
)

func TestGraphBuildAndValidate(t *testing.T) {
	g := NewGraph()
	a := g.AddCompute(0, 1, "a")
	b := g.AddCompute(0, 2, "b")
	c := g.AddComm(0, 1, 1e9, "c")
	g.AddDep(a, b)
	g.AddDep(b, c)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if len(b.Deps()) != 1 || b.Deps()[0] != a.ID {
		t.Fatalf("deps of b: %v", b.Deps())
	}
	if len(a.Dependents()) != 1 || a.Dependents()[0] != b.ID {
		t.Fatalf("dependents of a: %v", a.Dependents())
	}
}

func TestDuplicateAndSelfDepsIgnored(t *testing.T) {
	g := NewGraph()
	a := g.AddCompute(0, 1, "a")
	b := g.AddCompute(0, 1, "b")
	g.AddDep(a, b)
	g.AddDep(a, b)
	g.AddDep(a, a)
	g.AddDep(nil, b)
	g.AddDep(a, nil)
	if len(b.Deps()) != 1 {
		t.Fatalf("duplicate dep recorded: %v", b.Deps())
	}
	if len(a.Deps()) != 0 {
		t.Fatalf("self dep recorded: %v", a.Deps())
	}
}

func TestCycleDetected(t *testing.T) {
	g := NewGraph()
	a := g.AddCompute(0, 1, "a")
	b := g.AddCompute(0, 1, "b")
	g.AddDep(a, b)
	g.AddDep(b, a)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	g := NewGraph()
	c := g.AddCompute(0, 1, "x")
	c.Duration = -1
	if g.Validate() == nil {
		t.Fatal("negative duration accepted")
	}
	g = NewGraph()
	c = g.AddCompute(0, 1, "x")
	c.GPU = -1
	if g.Validate() == nil {
		t.Fatal("negative GPU accepted")
	}
	g = NewGraph()
	cm := g.AddComm(0, 1, 1, "x")
	cm.Bytes = -5
	if g.Validate() == nil {
		t.Fatal("negative bytes accepted")
	}
}

func TestCriticalPath(t *testing.T) {
	g := NewGraph()
	a := g.AddCompute(0, 3, "a")
	b := g.AddCompute(1, 5, "b")
	c := g.AddCompute(0, 4, "c")
	g.AddDep(a, c) // chain a→c = 7; b alone = 5
	if got := g.CriticalPathLength(); got != 7 {
		t.Fatalf("critical path = %v, want 7", got)
	}
	g.AddDep(b, c) // chain b→c = 9
	if got := g.CriticalPathLength(); got != 9 {
		t.Fatalf("critical path = %v, want 9", got)
	}
}

func TestSummarize(t *testing.T) {
	g := NewGraph()
	g.AddCompute(0, 2, "a")
	g.AddComm(0, 1, 100, "b")
	g.AddHostLoad(9, 0, 50, "c")
	g.AddBarrier("d")
	s := g.Summarize()
	if s.Compute != 1 || s.Comm != 1 || s.HostLoad != 1 || s.Barrier != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.ComputeTime != 2 || s.CommBytes != 150 {
		t.Fatalf("summary %+v", s)
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Barrier.String() != "barrier" {
		t.Fatal("kind names wrong")
	}
}

// runGraph executes g on a serial engine with an ideal network.
func runGraph(t *testing.T, g *Graph, bw float64,
	lat sim.VTime) (sim.VTime, *timeline.Timeline) {
	t.Helper()
	eng := sim.NewSerialEngine()
	net := network.NewIdealNetwork(eng, bw, lat)
	tl := timeline.New()
	x := NewExecutor(eng, net, g, tl)
	makespan, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	return makespan, tl
}

func TestExecutorSerializesPerGPU(t *testing.T) {
	g := NewGraph()
	g.AddCompute(0, 2, "a")
	g.AddCompute(0, 3, "b")
	g.AddCompute(1, 4, "c")
	makespan, tl := runGraph(t, g, 1e9, 0)
	// GPU0 runs a then b (5); GPU1 runs c (4) concurrently.
	if makespan != 5 {
		t.Fatalf("makespan = %v, want 5", makespan)
	}
	if busy := tl.UnionTime(timeline.ByResource("gpu0")); busy != 5 {
		t.Fatalf("gpu0 busy = %v", busy)
	}
	if busy := tl.UnionTime(timeline.ByResource("gpu1")); busy != 4 {
		t.Fatalf("gpu1 busy = %v", busy)
	}
}

func TestExecutorHonorsDeps(t *testing.T) {
	g := NewGraph()
	a := g.AddCompute(0, 2, "a")
	b := g.AddCompute(1, 3, "b")
	g.AddDep(a, b) // b waits for a even though on another GPU
	makespan, _ := runGraph(t, g, 1e9, 0)
	if makespan != 5 {
		t.Fatalf("makespan = %v, want 5", makespan)
	}
}

func TestExecutorCommPath(t *testing.T) {
	g := NewGraph()
	a := g.AddCompute(0, 1, "a")
	c := g.AddComm(0, 1, 2e9, "xfer") // 2 s at 1 GB/s
	b := g.AddCompute(1, 1, "b")
	g.AddDep(a, c)
	g.AddDep(c, b)
	makespan, tl := runGraph(t, g, 1e9, 0)
	if makespan != 4 {
		t.Fatalf("makespan = %v, want 4", makespan)
	}
	if commTime := tl.UnionTime(timeline.ByPhase("comm")); commTime != 2 {
		t.Fatalf("comm time = %v, want 2", commTime)
	}
}

func TestExecutorBarrierInstant(t *testing.T) {
	g := NewGraph()
	a := g.AddCompute(0, 1, "a")
	bar := g.AddBarrier("sync")
	b := g.AddCompute(1, 1, "b")
	g.AddDep(a, bar)
	g.AddDep(bar, b)
	makespan, _ := runGraph(t, g, 1e9, 0)
	if makespan != 2 {
		t.Fatalf("makespan = %v, want 2", makespan)
	}
}

func TestExecutorHostLoadPhase(t *testing.T) {
	g := NewGraph()
	h := g.AddHostLoad(9, 0, 1e9, "stage-input")
	c := g.AddCompute(0, 1, "fwd")
	g.AddDep(h, c)
	makespan, tl := runGraph(t, g, 1e9, 0)
	if makespan != 2 {
		t.Fatalf("makespan = %v, want 2", makespan)
	}
	if hl := tl.UnionTime(timeline.ByPhase("hostload")); hl != 1 {
		t.Fatalf("hostload time = %v", hl)
	}
}

func TestExecutorRejectsCyclicGraph(t *testing.T) {
	g := NewGraph()
	a := g.AddCompute(0, 1, "a")
	b := g.AddCompute(0, 1, "b")
	g.AddDep(a, b)
	g.AddDep(b, a)
	eng := sim.NewSerialEngine()
	x := NewExecutor(eng, network.NewIdealNetwork(eng, 1, 0), g,
		timeline.New())
	if _, err := x.Run(); err == nil {
		t.Fatal("cyclic graph executed")
	}
}

func TestExecutorEmptyGraph(t *testing.T) {
	g := NewGraph()
	makespan, _ := runGraph(t, g, 1e9, 0)
	if makespan != 0 {
		t.Fatalf("empty graph makespan = %v", makespan)
	}
}

// Property: for random DAGs, (1) every task runs exactly once, (2) the
// makespan is at least the critical-path length and at most the serial sum.
func TestExecutorRandomDAGsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		g := NewGraph()
		n := 2 + rng.Intn(30)
		nGPU := 1 + rng.Intn(4)
		var serial sim.VTime
		for i := 0; i < n; i++ {
			dur := sim.VTime(rng.Intn(10))
			tk := g.AddCompute(rng.Intn(nGPU), dur, "t")
			serial += dur
			// Edges only to earlier tasks: guaranteed acyclic.
			for j := 0; j < i; j++ {
				if rng.Intn(5) == 0 {
					g.AddDep(g.Tasks[j], tk)
				}
			}
		}
		makespan, tl := runGraph(t, g, 1e9, 0)
		cp := g.CriticalPathLength()
		if makespan < cp || makespan > serial {
			t.Fatalf("trial %d: makespan %v outside [%v, %v]",
				trial, makespan, cp, serial)
		}
		var runs int
		for i := range tl.Intervals {
			if tl.Intervals[i].Phase == "compute" {
				runs++
			}
		}
		if runs != n {
			t.Fatalf("trial %d: %d compute intervals for %d tasks",
				trial, runs, n)
		}
	}
}

// Property: per-GPU compute intervals never overlap (streams are serial).
func TestExecutorNoComputeOverlapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		g := NewGraph()
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			g.AddCompute(rng.Intn(2), sim.VTime(1+rng.Intn(5)), "t")
		}
		_, tl := runGraph(t, g, 1e9, 0)
		for _, res := range tl.Resources() {
			sum := tl.SumTime(timeline.ByResource(res))
			union := tl.UnionTime(timeline.ByResource(res))
			if sum != union {
				t.Fatalf("trial %d: %s has overlapping compute: sum %v, union %v",
					trial, res, sum, union)
			}
		}
	}
}

func TestExecutorWithFlowNetwork(t *testing.T) {
	// End-to-end with the real flow network: two transfers share a link.
	eng := sim.NewSerialEngine()
	topo := network.NewTopology()
	a := topo.AddNode("a", network.GPUNode)
	b := topo.AddNode("b", network.GPUNode)
	topo.AddLink(a, b, 1e9, 0)
	net := network.NewFlowNetwork(eng, topo)

	g := NewGraph()
	g.AddComm(a, b, 1e9, "x1")
	g.AddComm(a, b, 1e9, "x2")
	tl := timeline.New()
	x := NewExecutor(eng, net, g, tl)
	makespan, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 2 {
		t.Fatalf("shared-link makespan = %v, want 2", makespan)
	}
}
