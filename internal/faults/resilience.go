package faults

import (
	"fmt"
	"math"
	"sort"

	"triosim/internal/sim"
)

// ResilienceConfig feeds the checkpoint/restart overlay: an analytic
// post-processing model that extends a run's makespan (Work) with
// checkpoint pauses, failure-triggered restarts, and replayed work. It is
// deliberately outside the event engine — failures restart the whole job
// from the last checkpoint on healthy hardware, so the simulated schedule
// itself is unchanged and stays digest-stable.
type ResilienceConfig struct {
	// Work is the useful virtual time the job needs (the fault-free
	// makespan).
	Work sim.VTime
	// Interval is the useful work between checkpoints (0 = no checkpoints:
	// every failure restarts from scratch).
	Interval sim.VTime
	// CheckpointCost is the pause per checkpoint.
	CheckpointCost sim.VTime
	// RestartCost is the fixed overhead per failure before replay begins.
	RestartCost sim.VTime
	// Failures are absolute instants on the extended timeline. Failures at
	// or after job completion are ignored.
	Failures []sim.VTime
}

// ResilienceResult is the overlay's accounting. UsefulTime + CheckpointTime
// + ReplayTime + RestartTime == TotalTime, and UsefulTime == Work when the
// job completes.
type ResilienceResult struct {
	// TotalTime is the extended end-to-end time including recovery.
	TotalTime sim.VTime
	// UsefulTime is first-time (non-replayed) work.
	UsefulTime sim.VTime
	// CheckpointTime is the sum of checkpoint pauses.
	CheckpointTime sim.VTime
	// ReplayTime is re-done work (progress lost to failures).
	ReplayTime sim.VTime
	// RestartTime is the sum of per-failure restart overheads.
	RestartTime sim.VTime
	// Checkpoints and Failures count completed checkpoints and failures
	// that actually fired.
	Checkpoints int
	Failures    int
	// Goodput is UsefulTime / TotalTime in [0, 1]; 1 when nothing happened.
	Goodput float64
}

// maxResilienceSteps bounds the overlay walk (each step is one work
// segment, checkpoint, or failure); hitting it means the interval is
// pathologically fine relative to the work span.
const maxResilienceSteps = 2_000_000

// Evaluate walks the checkpoint/restart timeline: work advances toward the
// next checkpoint boundary or completion, failures interrupt segments and
// roll progress back to the last checkpoint (plus a restart cost), and
// re-done work is charged as replay. Deterministic: plain arithmetic over
// the materialized failure list.
func Evaluate(cfg ResilienceConfig) (*ResilienceResult, error) {
	if cfg.Work.Before(0) {
		return nil, fmt.Errorf("faults: resilience: negative work %v", cfg.Work)
	}
	if cfg.Interval.Before(0) || cfg.CheckpointCost.Before(0) ||
		cfg.RestartCost.Before(0) {
		return nil, fmt.Errorf("faults: resilience: negative interval or cost")
	}
	fails := append([]sim.VTime(nil), cfg.Failures...)
	sort.Slice(fails, func(i, j int) bool { return fails[i].Before(fails[j]) })
	for _, f := range fails {
		if f.Before(0) {
			return nil, fmt.Errorf("faults: resilience: negative failure time %v", f)
		}
	}

	res := &ResilienceResult{}
	var t sim.VTime    // extended-timeline clock
	var done sim.VTime // progress since the last restart point
	var ckpt sim.VTime // durable progress at the last checkpoint
	var high sim.VTime // highest progress ever reached (replay classifier)
	fi := 0
	// credit splits a progress increment into replay (below high) and
	// first-time work.
	credit := func(p sim.VTime) {
		replay := (high - done).Max(0).Min(p)
		res.ReplayTime += replay
		res.UsefulTime += p - replay
	}
	for steps := 0; done.Before(cfg.Work); steps++ {
		if steps >= maxResilienceSteps {
			return nil, fmt.Errorf(
				"faults: resilience walk exceeded %d steps (checkpoint "+
					"interval too fine for the work span?)", maxResilienceSteps)
		}
		// Next milestone: completion, or the next checkpoint boundary.
		target := cfg.Work
		checkpointing := false
		if cfg.Interval.After(0) {
			if next := ckpt + cfg.Interval; next.Before(target) {
				target = next
				checkpointing = true
			}
		}
		segEnd := t + (target - done)
		if fi < len(fails) && fails[fi].Before(segEnd) {
			// Failure interrupts the segment (or fires immediately if it
			// landed inside a checkpoint/restart pause already behind t).
			at := fails[fi].Max(t)
			prog := at - t
			credit(prog)
			done += prog
			high = high.Max(done)
			res.Failures++
			res.RestartTime += cfg.RestartCost
			t = at + cfg.RestartCost
			done = ckpt
			fi++
			continue
		}
		credit(target - done)
		t = segEnd
		done = target
		high = high.Max(done)
		if checkpointing {
			res.Checkpoints++
			res.CheckpointTime += cfg.CheckpointCost
			t += cfg.CheckpointCost
			ckpt = done
		}
	}
	res.TotalTime = t
	if t.After(0) {
		res.Goodput = float64(res.UsefulTime) / float64(t)
	} else {
		res.Goodput = 1
	}
	return res, nil
}

// OptimalInterval is the Young–Daly first-order optimum for the checkpoint
// interval: sqrt(2 × checkpoint cost × MTBF). Zero when either input is
// non-positive.
func OptimalInterval(checkpointCost, mtbf sim.VTime) sim.VTime {
	if checkpointCost.AtOrBefore(0) || mtbf.AtOrBefore(0) {
		return 0
	}
	return sim.VTime(math.Sqrt(2 * float64(checkpointCost) * float64(mtbf)))
}
