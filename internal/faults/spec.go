package faults

import (
	"encoding/json"
	"fmt"
	"os"

	"triosim/internal/sim"
)

// SpecSchema versions the fault-schedule JSON layout.
const SpecSchema = "triosim.faults/v1"

// EventSpec is one fault event in the JSON schedule format. Times are plain
// seconds. GPUFail may anchor on "at_sec" instead of "start_sec".
type EventSpec struct {
	Kind        string  `json:"kind"`
	Link        int     `json:"link,omitempty"`
	GPU         int     `json:"gpu,omitempty"`
	Factor      float64 `json:"factor,omitempty"`
	StartSec    float64 `json:"start_sec,omitempty"`
	AtSec       float64 `json:"at_sec,omitempty"`
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// CheckpointSpec is the checkpoint policy in the JSON schedule format.
type CheckpointSpec struct {
	IntervalSec float64 `json:"interval_sec"`
	// CostSec 0 derives the checkpoint cost from the model's tensor
	// footprint over the host staging path.
	CostSec    float64 `json:"cost_sec,omitempty"`
	RestartSec float64 `json:"restart_sec,omitempty"`
}

// Spec is the on-disk fault schedule document.
type Spec struct {
	Schema     string          `json:"schema,omitempty"`
	Events     []EventSpec     `json:"events"`
	Checkpoint *CheckpointSpec `json:"checkpoint,omitempty"`
}

// Parse decodes a JSON fault schedule and runs the bounds-free validation
// (Check). Topology bounds are checked later, when the schedule meets a
// topology (Schedule.Validate, called by the Injector). Parse never panics:
// malformed documents come back as errors.
func Parse(data []byte) (*Schedule, error) {
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("faults: parse schedule: %w", err)
	}
	if spec.Schema != "" && spec.Schema != SpecSchema {
		return nil, fmt.Errorf("faults: schedule schema %q, want %q",
			spec.Schema, SpecSchema)
	}
	s := &Schedule{}
	for i, es := range spec.Events {
		start := es.StartSec
		if Kind(es.Kind) == GPUFail && es.AtSec != 0 {
			if es.StartSec != 0 {
				return nil, fmt.Errorf(
					"faults: event %d: both at_sec and start_sec set", i)
			}
			start = es.AtSec
		}
		s.Events = append(s.Events, Event{
			Kind:     Kind(es.Kind),
			Link:     es.Link,
			GPU:      es.GPU,
			Factor:   es.Factor,
			Start:    sim.VTime(start),
			Duration: sim.VTime(es.DurationSec),
		})
	}
	if spec.Checkpoint != nil {
		s.Checkpoint = &Checkpoint{
			Interval: sim.VTime(spec.Checkpoint.IntervalSec),
			Cost:     sim.VTime(spec.Checkpoint.CostSec),
			Restart:  sim.VTime(spec.Checkpoint.RestartSec),
		}
	}
	if err := s.Check(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads and parses a JSON fault schedule file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return Parse(data)
}

// Spec converts the schedule back to its JSON document form (round-trips
// through Parse).
func (s *Schedule) Spec() *Spec {
	out := &Spec{Schema: SpecSchema}
	for _, e := range s.Events {
		es := EventSpec{
			Kind:        string(e.Kind),
			Link:        e.Link,
			GPU:         e.GPU,
			Factor:      e.Factor,
			StartSec:    e.Start.Seconds(),
			DurationSec: e.Duration.Seconds(),
		}
		out.Events = append(out.Events, es)
	}
	if e := s.Checkpoint; e != nil {
		out.Checkpoint = &CheckpointSpec{
			IntervalSec: e.Interval.Seconds(),
			CostSec:     e.Cost.Seconds(),
			RestartSec:  e.Restart.Seconds(),
		}
	}
	return out
}
