// Package faults is TrioSim's fault-injection and resilience-modeling
// subsystem: deterministic schedules of hardware perturbations (degraded or
// dead links, straggler GPUs, GPU failures) applied to a running simulation
// at virtual-time boundaries, plus a checkpoint/restart recovery model that
// turns failure schedules into goodput numbers.
//
// Determinism contract: a Schedule is fully materialized before the engine
// runs — the seeded generator (Generate) draws every random number up front,
// and the Injector schedules only the events the schedule implies. An empty
// or all-no-op schedule schedules nothing, so its run is bit-identical
// (same EventDigest) to a run with no faults configured at all.
package faults

import (
	"fmt"
	"sort"

	"triosim/internal/sim"
)

// Kind names a fault event type.
type Kind string

// Fault event kinds.
const (
	// LinkDegrade divides one link's per-direction bandwidth by Factor for
	// the window [Start, Start+Duration).
	LinkDegrade Kind = "link-degrade"
	// LinkDown sets one link's bandwidth to zero for the window; flows
	// crossing it stall (rate 0) and resume when the window ends.
	LinkDown Kind = "link-down"
	// GPUSlowdown stretches compute-task durations on one GPU by Factor for
	// tasks that *start* inside the window (a straggler). The factor is
	// sampled once at task start and applies to the whole task.
	GPUSlowdown Kind = "gpu-slowdown"
	// GPUFail marks one GPU as failed at Start. The simulated schedule is
	// not perturbed — recovery is modeled by the checkpoint/restart overlay
	// (Evaluate), which charges lost work, restart cost, and replay.
	GPUFail Kind = "gpu-fail"
)

// Event is one vtime-anchored fault. Which fields apply depends on Kind:
// link kinds use Link, GPU kinds use GPU; LinkDegrade and GPUSlowdown use
// Factor (a slowdown multiplier ≥ 1); GPUFail is instantaneous (Duration 0).
type Event struct {
	Kind Kind
	// Link is the topology link ID (LinkDegrade, LinkDown).
	Link int
	// GPU is the GPU index (GPUSlowdown, GPUFail).
	GPU int
	// Factor is the slowdown multiplier: bandwidth becomes bandwidth/Factor
	// (LinkDegrade), compute durations become duration×Factor (GPUSlowdown).
	// Factor == 1 is a no-op the injector drops. Unused kinds require 0.
	Factor float64
	// Start anchors the event in virtual time (the failure instant for
	// GPUFail).
	Start sim.VTime
	// Duration is the window length for windowed kinds; the window is
	// half-open [Start, Start+Duration). Must be 0 for GPUFail.
	Duration sim.VTime
}

// windowed reports whether the kind occupies a time window.
func (k Kind) windowed() bool { return k != GPUFail }

// usesFactor reports whether the kind reads Event.Factor.
func (k Kind) usesFactor() bool { return k == LinkDegrade || k == GPUSlowdown }

// usesLink reports whether the kind targets a link.
func (k Kind) usesLink() bool { return k == LinkDegrade || k == LinkDown }

// Checkpoint is the periodic checkpoint/restart policy the resilience
// overlay evaluates against the schedule's GPUFail events.
type Checkpoint struct {
	// Interval is the useful work between checkpoints. Must be > 0.
	Interval sim.VTime
	// Cost is the time one checkpoint takes. Zero means "derive it from the
	// model's tensor footprint over the host staging path" (core does this).
	Cost sim.VTime
	// Restart is the fixed overhead paid after each failure before work
	// resumes from the last checkpoint.
	Restart sim.VTime
}

// Schedule is a full fault plan for one simulation.
type Schedule struct {
	Events     []Event
	Checkpoint *Checkpoint
}

// Check validates everything that does not need topology bounds: kinds,
// factor/duration/time sanity, per-resource window overlaps, and the
// checkpoint policy. It returns an error, never panics, on any malformed
// schedule (including fuzzer-produced ones).
func (s *Schedule) Check() error {
	for i, e := range s.Events {
		switch e.Kind {
		case LinkDegrade, LinkDown, GPUSlowdown, GPUFail:
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
		if e.Start.Before(0) {
			return fmt.Errorf("faults: event %d (%s): negative start %v",
				i, e.Kind, e.Start)
		}
		if e.Kind.windowed() {
			if !e.Duration.After(0) {
				return fmt.Errorf(
					"faults: event %d (%s): duration %v must be > 0",
					i, e.Kind, e.Duration)
			}
		} else if e.Duration != 0 {
			return fmt.Errorf("faults: event %d (%s): duration must be 0",
				i, e.Kind)
		}
		if e.Kind.usesFactor() {
			if !(e.Factor >= 1) { // rejects NaN too
				return fmt.Errorf(
					"faults: event %d (%s): factor %g must be >= 1",
					i, e.Kind, e.Factor)
			}
		} else if e.Factor != 0 {
			return fmt.Errorf("faults: event %d (%s): factor must be unset",
				i, e.Kind)
		}
		if e.Kind.usesLink() {
			if e.GPU != 0 {
				return fmt.Errorf("faults: event %d (%s): gpu must be unset",
					i, e.Kind)
			}
		} else if e.Link != 0 {
			return fmt.Errorf("faults: event %d (%s): link must be unset",
				i, e.Kind)
		}
	}
	if err := s.checkOverlaps(); err != nil {
		return err
	}
	if cp := s.Checkpoint; cp != nil {
		if !cp.Interval.After(0) {
			return fmt.Errorf("faults: checkpoint interval %v must be > 0",
				cp.Interval)
		}
		if cp.Cost.Before(0) || cp.Restart.Before(0) {
			return fmt.Errorf("faults: negative checkpoint cost or restart")
		}
	}
	return nil
}

// checkOverlaps rejects intersecting windows on the same resource (link
// windows share the link's namespace across LinkDegrade/LinkDown) and
// duplicate GPUFail instants.
func (s *Schedule) checkOverlaps() error {
	type span struct {
		start, end sim.VTime
		idx        int
	}
	byRes := map[string][]span{}
	var keys []string
	for i, e := range s.Events {
		var key string
		switch {
		case e.Kind.usesLink():
			key = fmt.Sprintf("link%d", e.Link)
		case e.Kind == GPUSlowdown:
			key = fmt.Sprintf("gpu%d", e.GPU)
		default: // GPUFail: duplicates only
			key = fmt.Sprintf("fail-gpu%d", e.GPU)
		}
		if _, seen := byRes[key]; !seen {
			keys = append(keys, key)
		}
		end := e.Start + e.Duration
		if e.Kind == GPUFail {
			end = e.Start
		}
		byRes[key] = append(byRes[key], span{e.Start, end, i})
	}
	sort.Strings(keys)
	for _, key := range keys {
		spans := byRes[key]
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start.Before(spans[j].start)
			}
			return spans[i].idx < spans[j].idx
		})
		for i := 1; i < len(spans); i++ {
			prev, cur := spans[i-1], spans[i]
			overlap := cur.start.Before(prev.end) ||
				(prev.start == prev.end && cur.start == prev.start)
			if overlap {
				return fmt.Errorf(
					"faults: events %d and %d overlap on %s",
					prev.idx, cur.idx, key)
			}
		}
	}
	return nil
}

// Validate runs Check plus topology-bounds checks: every link and GPU index
// must exist in a topology with numLinks links and numGPUs GPUs.
func (s *Schedule) Validate(numGPUs, numLinks int) error {
	if err := s.Check(); err != nil {
		return err
	}
	for i, e := range s.Events {
		if e.Kind.usesLink() && (e.Link < 0 || e.Link >= numLinks) {
			return fmt.Errorf(
				"faults: event %d (%s): link %d out of range [0,%d)",
				i, e.Kind, e.Link, numLinks)
		}
		if !e.Kind.usesLink() && (e.GPU < 0 || e.GPU >= numGPUs) {
			return fmt.Errorf(
				"faults: event %d (%s): gpu %d out of range [0,%d)",
				i, e.Kind, e.GPU, numGPUs)
		}
	}
	return nil
}

// Window is one effective (schedule-perturbing) fault window. LinkDown
// windows carry Factor 0; LinkDegrade/GPUSlowdown carry their multiplier.
type Window struct {
	Kind     Kind
	Resource int // link ID for link kinds, GPU index for GPUSlowdown
	Factor   float64
	Start    sim.VTime
	End      sim.VTime
}

// ResourceName renders the perturbed resource ("link2", "gpu1").
func (w Window) ResourceName() string {
	if w.Kind.usesLink() {
		return fmt.Sprintf("link%d", w.Resource)
	}
	return fmt.Sprintf("gpu%d", w.Resource)
}

// Label renders a short human-readable description for timelines.
func (w Window) Label() string {
	switch w.Kind {
	case LinkDown:
		return fmt.Sprintf("%s down", w.ResourceName())
	case LinkDegrade:
		return fmt.Sprintf("%s bw ÷%g", w.ResourceName(), w.Factor)
	default:
		return fmt.Sprintf("%s ×%g slower", w.ResourceName(), w.Factor)
	}
}

// Windows returns the schedule's effective windows — Factor==1 no-ops are
// dropped, so an all-no-op schedule yields none — sorted by (Start, Kind,
// Resource) for deterministic arming order.
func (s *Schedule) Windows() []Window {
	var out []Window
	for _, e := range s.Events {
		if !e.Kind.windowed() {
			continue
		}
		if e.Kind.usesFactor() && e.Factor == 1 {
			continue // no-op: must not perturb the event schedule
		}
		res, factor := e.Link, e.Factor
		if e.Kind == GPUSlowdown {
			res = e.GPU
		}
		if e.Kind == LinkDown {
			factor = 0
		}
		out = append(out, Window{
			Kind:     e.Kind,
			Resource: res,
			Factor:   factor,
			Start:    e.Start,
			End:      e.Start + e.Duration,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}

// Failure is one GPUFail instant.
type Failure struct {
	GPU int
	At  sim.VTime
}

// Failures returns the schedule's GPUFail events sorted by (At, GPU).
func (s *Schedule) Failures() []Failure {
	var out []Failure
	for _, e := range s.Events {
		if e.Kind == GPUFail {
			out = append(out, Failure{GPU: e.GPU, At: e.Start})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At.Before(out[j].At)
		}
		return out[i].GPU < out[j].GPU
	})
	return out
}

// DegradedSeconds returns the union length of the windows, clamped to
// [0, clamp] (the run's makespan) — the "some hardware was degraded" time
// telemetry reports. Overlapping windows on different resources count once.
func DegradedSeconds(ws []Window, clamp sim.VTime) float64 {
	spans := make([]Window, 0, len(ws))
	for _, w := range ws {
		start, end := w.Start, w.End.Min(clamp)
		if !start.Before(end) {
			continue
		}
		spans = append(spans, Window{Start: start, End: end})
	}
	sort.Slice(spans, func(i, j int) bool {
		return spans[i].Start.Before(spans[j].Start)
	})
	var total float64
	var curStart, curEnd sim.VTime
	open := false
	for _, s := range spans {
		if open && s.Start.AtOrBefore(curEnd) {
			curEnd = curEnd.Max(s.End)
			continue
		}
		if open {
			total += float64(curEnd - curStart)
		}
		curStart, curEnd, open = s.Start, s.End, true
	}
	if open {
		total += float64(curEnd - curStart)
	}
	return total
}
