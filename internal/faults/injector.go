package faults

import (
	"fmt"

	"triosim/internal/network"
	"triosim/internal/sim"
)

// Injector applies a Schedule to a running simulation. Link windows become
// a pair of engine events (degrade at Start, restore at End) that rewrite
// the topology's bandwidth and re-solve the flow network's max-min fair
// shares; GPU slowdown windows schedule nothing — the executor's Stretch
// hook consults Factor at each compute-task start. GPUFail events also
// schedule nothing; they feed the checkpoint/restart overlay (Evaluate).
//
// A schedule with no effective windows arms zero events, keeping the run
// bit-identical to a fault-free one (the digest-identity property test in
// internal/core pins this).
type Injector struct {
	eng  sim.Engine
	net  *network.FlowNetwork
	topo *network.Topology

	windows  []Window // all effective windows, sorted
	gpuSlows []Window // GPUSlowdown subset, for Factor lookups
	fails    []Failure
	armed    bool
}

// NewInjector validates the schedule against the network's topology and
// prepares an injector. Call Arm before the engine runs.
func NewInjector(eng sim.Engine, net *network.FlowNetwork,
	s *Schedule) (*Injector, error) {

	topo := net.Topology()
	if err := s.Validate(len(topo.GPUs()), len(topo.Links)); err != nil {
		return nil, err
	}
	in := &Injector{
		eng:     eng,
		net:     net,
		topo:    topo,
		windows: s.Windows(),
		fails:   s.Failures(),
	}
	for _, w := range in.windows {
		if w.Kind == GPUSlowdown {
			in.gpuSlows = append(in.gpuSlows, w)
		}
	}
	return in, nil
}

// Windows returns the effective fault windows (sorted by start).
func (in *Injector) Windows() []Window { return in.windows }

// Failures returns the schedule's GPUFail instants (sorted by time).
func (in *Injector) Failures() []Failure { return in.fails }

// Arm schedules the link-window events. Baseline bandwidths are captured
// now, so back-to-back windows on one link restore correctly: all four
// events of two adjacent windows are scheduled here in sorted order, and
// the engine's FIFO tie-break runs window 1's restore before window 2's
// degrade when they share a timestamp.
func (in *Injector) Arm() {
	if in.armed {
		panic("faults: Injector.Arm called twice")
	}
	in.armed = true
	for _, w := range in.windows {
		if w.Kind != LinkDegrade && w.Kind != LinkDown {
			continue
		}
		link := w.Resource
		orig := in.topo.Links[link].Bandwidth
		degraded := 0.0
		if w.Kind == LinkDegrade {
			degraded = orig / w.Factor
		}
		sim.ScheduleFunc(in.eng, w.Start, func(now sim.VTime) error {
			in.topo.SetLinkBandwidth(link, degraded)
			in.net.RefreshRates()
			return nil
		})
		sim.ScheduleFunc(in.eng, w.End, func(now sim.VTime) error {
			in.topo.SetLinkBandwidth(link, orig)
			in.net.RefreshRates()
			return nil
		})
	}
}

// Factor returns the compute-duration multiplier for a task starting on gpu
// at time at: the enclosing GPUSlowdown window's factor, or 1. Windows are
// half-open, and overlap validation guarantees at most one match.
func (in *Injector) Factor(gpu int, at sim.VTime) float64 {
	for _, w := range in.gpuSlows {
		if w.Resource == gpu && w.Start.AtOrBefore(at) && at.Before(w.End) {
			return w.Factor
		}
	}
	return 1
}

// TimelineResource is the timeline lane fault windows are recorded on.
const TimelineResource = "faults"

// FailLabel renders a GPUFail marker label.
func FailLabel(f Failure) string {
	return fmt.Sprintf("gpu%d fail", f.GPU)
}
