package faults

import (
	"math"
	"testing"

	"triosim/internal/network"
	"triosim/internal/sim"
)

// pair builds a two-GPU topology with one direct link.
func pair(bw float64) (*network.Topology, network.NodeID, network.NodeID) {
	topo := network.NewTopology()
	a := topo.AddNode("a", network.GPUNode)
	b := topo.AddNode("b", network.GPUNode)
	topo.AddLink(a, b, bw, 0)
	return topo, a, b
}

func approx(t *testing.T, got, want sim.VTime, tol float64, what string) {
	t.Helper()
	if math.Abs(float64(got-want)) > tol*float64(want) {
		t.Fatalf("%s = %v, want ~%v", what, got, want)
	}
}

func TestLinkDegradeWindowSlowsFlowAndRestores(t *testing.T) {
	// 1 GB over 100 GB/s is 10 ms clean. Degrading ÷4 from 2 ms onward:
	// 0.2 GB done at full rate, the remaining 0.8 GB at 25 GB/s takes
	// 32 ms — 34 ms total, finishing inside the window.
	eng := sim.NewSerialEngine()
	topo, a, b := pair(100e9)
	net := network.NewFlowNetwork(eng, topo)
	sched := &Schedule{Events: []Event{{
		Kind: LinkDegrade, Link: 0, Factor: 4,
		Start: 2 * sim.MSec, Duration: 40 * sim.MSec,
	}}}
	inj, err := NewInjector(eng, net, sched)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	var done sim.VTime
	net.Send(a, b, 1e9, func(now sim.VTime) { done = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, done, 34*sim.MSec, 1e-9, "degraded flow completion")
	if topo.Links[0].Bandwidth != 100e9 {
		t.Fatalf("bandwidth not restored: %g", topo.Links[0].Bandwidth)
	}
}

func TestLinkDownWindowStallsThenResumes(t *testing.T) {
	// Down for [1 ms, 5 ms): 0.1 GB moves before the outage, the flow
	// starves (rate 0) for 4 ms, then the remaining 0.9 GB takes 9 ms.
	eng := sim.NewSerialEngine()
	topo, a, b := pair(100e9)
	net := network.NewFlowNetwork(eng, topo)
	sched := &Schedule{Events: []Event{{
		Kind: LinkDown, Link: 0,
		Start: 1 * sim.MSec, Duration: 4 * sim.MSec,
	}}}
	inj, err := NewInjector(eng, net, sched)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	var done sim.VTime
	net.Send(a, b, 1e9, func(now sim.VTime) { done = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, done, 14*sim.MSec, 1e-9, "outage flow completion")
}

// An empty schedule must arm zero events: the dispatched schedule (and its
// digest) is bit-identical to running without an injector at all.
func TestEmptyScheduleIsDigestIdentical(t *testing.T) {
	run := func(withInjector bool) (uint64, uint64) {
		eng := sim.NewSerialEngine()
		digest := sim.NewDigestHook()
		eng.RegisterHook(digest)
		topo, a, b := pair(100e9)
		net := network.NewFlowNetwork(eng, topo)
		if withInjector {
			inj, err := NewInjector(eng, net, &Schedule{
				Events: []Event{
					// All no-ops: factor-1 windows drop out entirely.
					{Kind: LinkDegrade, Link: 0, Factor: 1,
						Start: sim.MSec, Duration: sim.MSec},
					{Kind: GPUSlowdown, GPU: 1, Factor: 1,
						Start: sim.MSec, Duration: sim.MSec},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			inj.Arm()
		}
		net.Send(a, b, 1e9, func(sim.VTime) {})
		net.Send(b, a, 2e9, func(sim.VTime) {})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return digest.Sum64(), eng.EventCount()
	}
	baseDigest, baseEvents := run(false)
	injDigest, injEvents := run(true)
	if baseDigest != injDigest || baseEvents != injEvents {
		t.Fatalf("no-op injector perturbed the schedule: %#x/%d vs %#x/%d",
			injDigest, injEvents, baseDigest, baseEvents)
	}
}

func TestInjectorValidatesAgainstTopology(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, _, _ := pair(100e9)
	net := network.NewFlowNetwork(eng, topo)
	_, err := NewInjector(eng, net, &Schedule{Events: []Event{{
		Kind: LinkDown, Link: 5, Duration: sim.Sec,
	}}})
	mustErr(t, err, "out of range")
	_, err = NewInjector(eng, net, &Schedule{Events: []Event{{
		Kind: GPUFail, GPU: 9,
	}}})
	mustErr(t, err, "out of range")
}

func TestFactorWindowIsHalfOpen(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, _, _ := pair(100e9)
	net := network.NewFlowNetwork(eng, topo)
	inj, err := NewInjector(eng, net, &Schedule{Events: []Event{{
		Kind: GPUSlowdown, GPU: 1, Factor: 2,
		Start: sim.Sec, Duration: sim.Sec,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   sim.VTime
		want float64
	}{
		{0, 1},
		{sim.Sec, 2},              // inclusive start
		{1500 * sim.MSec, 2},      // inside
		{2 * sim.Sec, 1},          // exclusive end
		{3 * sim.Sec, 1},          // after
	}
	for _, tc := range cases {
		if got := inj.Factor(1, tc.at); got != tc.want {
			t.Fatalf("Factor(1, %v) = %g, want %g", tc.at, got, tc.want)
		}
	}
	if got := inj.Factor(0, 1500*sim.MSec); got != 1 {
		t.Fatalf("Factor(0) = %g, want 1 (other GPU untouched)", got)
	}
}
