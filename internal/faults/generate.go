package faults

import (
	"fmt"
	"math/rand"

	"triosim/internal/sim"
)

// GenConfig parameterizes the seeded stochastic schedule generator.
type GenConfig struct {
	// NumGPUs and NumLinks bound the resource indices (match the topology
	// the schedule will run against).
	NumGPUs  int
	NumLinks int
	// Horizon is the virtual-time span events are placed in, typically the
	// baseline (fault-free) makespan.
	Horizon sim.VTime

	// Event counts per kind.
	LinkDegrades int
	LinkDowns    int
	GPUSlowdowns int
	GPUFails     int

	// MaxFactor bounds LinkDegrade/GPUSlowdown multipliers; factors are
	// drawn uniformly from [1.25, MaxFactor] so every generated event
	// actually perturbs the run. Default 4.
	MaxFactor float64
	// MinDuration and MaxDuration bound window lengths. Defaults:
	// Horizon/20 and Horizon/4.
	MinDuration sim.VTime
	MaxDuration sim.VTime

	// Checkpoint, when non-nil, is copied onto the generated schedule.
	Checkpoint *Checkpoint
}

// maxPlaceAttempts bounds rejection sampling against per-resource overlaps.
const maxPlaceAttempts = 64

// Generate materializes a stochastic fault schedule from a seed. Every
// random draw happens here, before any simulation runs — the returned
// schedule is plain data, so replaying the same seed and config reproduces
// the identical schedule (and therefore the identical event digest).
func Generate(seed int64, cfg GenConfig) (*Schedule, error) {
	if cfg.Horizon.AtOrBefore(0) {
		return nil, fmt.Errorf("faults: generate: horizon %v must be > 0",
			cfg.Horizon)
	}
	if cfg.LinkDegrades+cfg.LinkDowns > 0 && cfg.NumLinks <= 0 {
		return nil, fmt.Errorf("faults: generate: link events need NumLinks > 0")
	}
	if cfg.GPUSlowdowns+cfg.GPUFails > 0 && cfg.NumGPUs <= 0 {
		return nil, fmt.Errorf("faults: generate: gpu events need NumGPUs > 0")
	}
	if cfg.MaxFactor == 0 {
		cfg.MaxFactor = 4
	}
	if cfg.MaxFactor < 1.25 {
		return nil, fmt.Errorf("faults: generate: max factor %g must be >= 1.25",
			cfg.MaxFactor)
	}
	if cfg.MinDuration == 0 {
		cfg.MinDuration = cfg.Horizon / 20
	}
	if cfg.MaxDuration == 0 {
		cfg.MaxDuration = cfg.Horizon / 4
	}
	if cfg.MinDuration.AtOrBefore(0) || cfg.MaxDuration.Before(cfg.MinDuration) {
		return nil, fmt.Errorf("faults: generate: bad duration range [%v, %v]",
			cfg.MinDuration, cfg.MaxDuration)
	}

	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{}
	// busy tracks placed windows per resource key for rejection sampling.
	busy := map[string][]Window{}
	place := func(kind Kind, count int, numRes int) error {
		for n := 0; n < count; n++ {
			placed := false
			for attempt := 0; attempt < maxPlaceAttempts; attempt++ {
				res := rng.Intn(numRes)
				dur := cfg.MinDuration +
					sim.VTime(rng.Float64())*(cfg.MaxDuration-cfg.MinDuration)
				start := sim.VTime(rng.Float64()) * (cfg.Horizon - dur).Max(0)
				key := fmt.Sprintf("%v%d", kind.usesLink(), res)
				if overlapsAny(busy[key], start, start+dur) {
					continue
				}
				busy[key] = append(busy[key], Window{Start: start, End: start + dur})
				e := Event{Kind: kind, Start: start, Duration: dur}
				if kind.usesLink() {
					e.Link = res
				} else {
					e.GPU = res
				}
				if kind.usesFactor() {
					e.Factor = 1.25 + rng.Float64()*(cfg.MaxFactor-1.25)
				}
				s.Events = append(s.Events, e)
				placed = true
				break
			}
			if !placed {
				return fmt.Errorf(
					"faults: generate: could not place %s %d/%d without overlap",
					kind, n+1, count)
			}
		}
		return nil
	}
	if err := place(LinkDegrade, cfg.LinkDegrades, cfg.NumLinks); err != nil {
		return nil, err
	}
	if err := place(LinkDown, cfg.LinkDowns, cfg.NumLinks); err != nil {
		return nil, err
	}
	if err := place(GPUSlowdown, cfg.GPUSlowdowns, cfg.NumGPUs); err != nil {
		return nil, err
	}
	for n := 0; n < cfg.GPUFails; n++ {
		s.Events = append(s.Events, Event{
			Kind:  GPUFail,
			GPU:   rng.Intn(cfg.NumGPUs),
			Start: sim.VTime(rng.Float64()) * cfg.Horizon,
		})
	}
	if cfg.Checkpoint != nil {
		cp := *cfg.Checkpoint
		s.Checkpoint = &cp
	}
	if err := s.Validate(cfg.NumGPUs, cfg.NumLinks); err != nil {
		return nil, fmt.Errorf("faults: generate: internal: %w", err)
	}
	return s, nil
}

// overlapsAny reports whether [start, end) intersects any placed window.
func overlapsAny(ws []Window, start, end sim.VTime) bool {
	for _, w := range ws {
		if start.Before(w.End) && w.Start.Before(end) {
			return true
		}
	}
	return false
}
