package faults

import (
	"strings"
	"testing"

	"triosim/internal/sim"
)

func mustErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestCheckRejectsMalformedEvents(t *testing.T) {
	cases := []struct {
		name   string
		ev     Event
		substr string
	}{
		{"unknown kind", Event{Kind: "meteor-strike", Duration: sim.Sec},
			"unknown kind"},
		{"negative start",
			Event{Kind: LinkDegrade, Factor: 2, Start: -sim.Sec, Duration: sim.Sec},
			"negative start"},
		{"zero duration",
			Event{Kind: LinkDegrade, Factor: 2, Duration: 0},
			"must be > 0"},
		{"negative duration",
			Event{Kind: GPUSlowdown, Factor: 2, Duration: -sim.Sec},
			"must be > 0"},
		{"factor below one",
			Event{Kind: GPUSlowdown, Factor: 0.5, Duration: sim.Sec},
			"must be >= 1"},
		{"nan factor",
			Event{Kind: LinkDegrade, Factor: nan(), Duration: sim.Sec},
			"must be >= 1"},
		{"factor on link-down",
			Event{Kind: LinkDown, Factor: 2, Duration: sim.Sec},
			"factor must be unset"},
		{"duration on gpu-fail",
			Event{Kind: GPUFail, Duration: sim.Sec},
			"duration must be 0"},
		{"gpu set on link kind",
			Event{Kind: LinkDown, GPU: 1, Duration: sim.Sec},
			"gpu must be unset"},
		{"link set on gpu kind",
			Event{Kind: GPUFail, Link: 1},
			"link must be unset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Schedule{Events: []Event{tc.ev}}
			mustErr(t, s.Check(), tc.substr)
		})
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestCheckRejectsOverlapsAndDuplicates(t *testing.T) {
	overlapping := &Schedule{Events: []Event{
		{Kind: LinkDegrade, Link: 2, Factor: 2, Start: 0, Duration: 2 * sim.Sec},
		{Kind: LinkDown, Link: 2, Start: sim.Sec, Duration: sim.Sec},
	}}
	mustErr(t, overlapping.Check(), "overlap")

	dupFail := &Schedule{Events: []Event{
		{Kind: GPUFail, GPU: 1, Start: 3 * sim.Sec},
		{Kind: GPUFail, GPU: 1, Start: 3 * sim.Sec},
	}}
	mustErr(t, dupFail.Check(), "overlap")

	// Back-to-back windows on one link (end == next start) are fine, as are
	// same-time windows on different resources and repeat fails at
	// different instants.
	ok := &Schedule{Events: []Event{
		{Kind: LinkDegrade, Link: 0, Factor: 2, Start: 0, Duration: sim.Sec},
		{Kind: LinkDown, Link: 0, Start: sim.Sec, Duration: sim.Sec},
		{Kind: GPUSlowdown, GPU: 1, Factor: 3, Start: 0, Duration: 5 * sim.Sec},
		{Kind: GPUFail, GPU: 0, Start: sim.Sec},
		{Kind: GPUFail, GPU: 0, Start: 2 * sim.Sec},
	}}
	if err := ok.Check(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestValidateBounds(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: LinkDegrade, Link: 7, Factor: 2, Duration: sim.Sec},
	}}
	mustErr(t, s.Validate(4, 6), "out of range")
	if err := s.Validate(4, 8); err != nil {
		t.Fatalf("in-range link rejected: %v", err)
	}
	g := &Schedule{Events: []Event{{Kind: GPUFail, GPU: 4}}}
	mustErr(t, g.Validate(4, 6), "out of range")
}

func TestWindowsDropsNoOpsAndSorts(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: GPUSlowdown, GPU: 2, Factor: 1, Start: 0, Duration: sim.Sec},
		{Kind: LinkDegrade, Link: 1, Factor: 1, Start: 0, Duration: sim.Sec},
		{Kind: LinkDown, Link: 0, Start: 4 * sim.Sec, Duration: sim.Sec},
		{Kind: GPUSlowdown, GPU: 0, Factor: 2, Start: 2 * sim.Sec, Duration: sim.Sec},
		{Kind: GPUFail, GPU: 1, Start: 9 * sim.Sec},
	}}
	ws := s.Windows()
	if len(ws) != 2 {
		t.Fatalf("want 2 effective windows, got %d: %v", len(ws), ws)
	}
	if ws[0].Kind != GPUSlowdown || ws[0].Resource != 0 || ws[0].Factor != 2 {
		t.Fatalf("first window = %+v", ws[0])
	}
	if ws[1].Kind != LinkDown || ws[1].Factor != 0 {
		t.Fatalf("second window = %+v", ws[1])
	}
	fs := s.Failures()
	if len(fs) != 1 || fs[0].GPU != 1 || fs[0].At != 9*sim.Sec {
		t.Fatalf("failures = %v", fs)
	}
}

func TestDegradedSecondsUnionsAndClamps(t *testing.T) {
	ws := []Window{
		{Start: 0, End: 2 * sim.Sec},
		{Start: sim.Sec, End: 3 * sim.Sec},  // overlaps the first
		{Start: 5 * sim.Sec, End: 20 * sim.Sec}, // clamped at 10
	}
	got := DegradedSeconds(ws, 10*sim.Sec)
	if got != 8 {
		t.Fatalf("DegradedSeconds = %g, want 8", got)
	}
	if DegradedSeconds(nil, 10*sim.Sec) != 0 {
		t.Fatal("empty window set should degrade nothing")
	}
}

func TestParseRoundTripAndErrors(t *testing.T) {
	doc := `{
		"schema": "triosim.faults/v1",
		"events": [
			{"kind": "link-degrade", "link": 1, "factor": 4,
			 "start_sec": 0.1, "duration_sec": 0.2},
			{"kind": "gpu-slowdown", "gpu": 2, "factor": 1.5,
			 "start_sec": 0.05, "duration_sec": 0.3},
			{"kind": "gpu-fail", "gpu": 0, "at_sec": 0.4}
		],
		"checkpoint": {"interval_sec": 0.1, "restart_sec": 0.02}
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 3 || s.Checkpoint == nil {
		t.Fatalf("parsed %d events, checkpoint %v", len(s.Events), s.Checkpoint)
	}
	if s.Events[2].Start != sim.VTime(0.4) {
		t.Fatalf("at_sec not honored: %v", s.Events[2].Start)
	}

	if _, err := Parse([]byte(`{"schema": "bogus/v9", "events": []}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Parse([]byte(
		`{"events":[{"kind":"gpu-fail","gpu":0,"at_sec":1,"start_sec":2}]}`,
	)); err == nil {
		t.Fatal("conflicting at_sec/start_sec accepted")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{
		NumGPUs: 4, NumLinks: 6, Horizon: 10 * sim.Sec,
		LinkDegrades: 3, LinkDowns: 1, GPUSlowdowns: 2, GPUFails: 2,
		Checkpoint: &Checkpoint{Interval: 2 * sim.Sec},
	}
	a, err := Generate(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 8 {
		t.Fatalf("generated %d events, want 8", len(a.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("seed 7 not reproducible: event %d %+v vs %+v",
				i, a.Events[i], b.Events[i])
		}
	}
	if err := a.Validate(cfg.NumGPUs, cfg.NumLinks); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for i, e := range a.Events {
		if e.Kind.usesFactor() && e.Factor < 1.25 {
			t.Fatalf("event %d factor %g below effective floor", i, e.Factor)
		}
	}

	c, err := Generate(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Events {
		if a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(1, GenConfig{Horizon: 0}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Generate(1, GenConfig{
		Horizon: sim.Sec, LinkDegrades: 1,
	}); err == nil {
		t.Fatal("link events without NumLinks accepted")
	}
	if _, err := Generate(1, GenConfig{
		Horizon: sim.Sec, NumGPUs: 2, GPUFails: 1, MaxFactor: 1.1,
	}); err == nil {
		t.Fatal("sub-floor MaxFactor accepted")
	}
}
