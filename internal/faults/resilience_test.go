package faults

import (
	"math"
	"math/rand"
	"testing"

	"triosim/internal/sim"
)

func eval(t *testing.T, cfg ResilienceConfig) *ResilienceResult {
	t.Helper()
	r, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkPartition asserts the overlay's accounting identity.
func checkPartition(t *testing.T, r *ResilienceResult) {
	t.Helper()
	sum := r.UsefulTime + r.CheckpointTime + r.ReplayTime + r.RestartTime
	if math.Abs(float64(sum-r.TotalTime)) > 1e-9*math.Max(1, float64(r.TotalTime)) {
		t.Fatalf("accounting %v+%v+%v+%v != total %v",
			r.UsefulTime, r.CheckpointTime, r.ReplayTime, r.RestartTime,
			r.TotalTime)
	}
}

func TestEvaluateNoFaultsIsIdentity(t *testing.T) {
	r := eval(t, ResilienceConfig{Work: 10 * sim.Sec})
	if r.TotalTime != 10*sim.Sec || r.Goodput != 1 ||
		r.Checkpoints != 0 || r.Failures != 0 {
		t.Fatalf("identity run = %+v", r)
	}
	checkPartition(t, r)

	zero := eval(t, ResilienceConfig{})
	if zero.TotalTime != 0 || zero.Goodput != 1 {
		t.Fatalf("zero-work run = %+v", zero)
	}
}

func TestEvaluateCheckpointsOnly(t *testing.T) {
	// 10s of work, checkpoint every 3s at 0.5s each: checkpoints complete
	// after 3, 6, and 9s of progress (none at completion).
	r := eval(t, ResilienceConfig{
		Work:           10 * sim.Sec,
		Interval:       3 * sim.Sec,
		CheckpointCost: sim.VTime(0.5),
	})
	if r.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3", r.Checkpoints)
	}
	if r.TotalTime != sim.VTime(11.5) {
		t.Fatalf("total = %v, want 11.5s", r.TotalTime)
	}
	if r.Goodput <= 0.86 || r.Goodput >= 0.88 { // 10/11.5
		t.Fatalf("goodput = %g", r.Goodput)
	}
	checkPartition(t, r)
}

func TestEvaluateFailureWithoutCheckpointsRestartsFromScratch(t *testing.T) {
	// Failure at t=4 with no checkpoints: 4s of progress lost, 1s restart,
	// then the full 10s again — 4 replayed... no: progress lost entirely
	// means the re-run's first 4s are replay, the rest useful.
	r := eval(t, ResilienceConfig{
		Work:        10 * sim.Sec,
		RestartCost: sim.Sec,
		Failures:    []sim.VTime{4 * sim.Sec},
	})
	if r.Failures != 1 {
		t.Fatalf("failures = %d", r.Failures)
	}
	if r.TotalTime != 15*sim.Sec { // 4 lost + 1 restart + 10 full
		t.Fatalf("total = %v, want 15s", r.TotalTime)
	}
	if r.ReplayTime != 4*sim.Sec || r.UsefulTime != 10*sim.Sec {
		t.Fatalf("replay %v useful %v", r.ReplayTime, r.UsefulTime)
	}
	checkPartition(t, r)
}

func TestEvaluateFailureWithCheckpointsReplaysFromLast(t *testing.T) {
	// Checkpoint every 3s (cost 0 to keep arithmetic plain), failure at
	// t=5: checkpoint happened at progress 3, so 2s are lost/replayed.
	r := eval(t, ResilienceConfig{
		Work:        10 * sim.Sec,
		Interval:    3 * sim.Sec,
		RestartCost: sim.Sec,
		Failures:    []sim.VTime{5 * sim.Sec},
	})
	if r.ReplayTime != 2*sim.Sec {
		t.Fatalf("replay = %v, want 2s", r.ReplayTime)
	}
	// 5 run + 1 restart + 2 replay + 5 remaining = 13.
	if r.TotalTime != 13*sim.Sec {
		t.Fatalf("total = %v, want 13s", r.TotalTime)
	}
	checkPartition(t, r)
}

func TestEvaluateFailuresAfterCompletionIgnored(t *testing.T) {
	r := eval(t, ResilienceConfig{
		Work:     5 * sim.Sec,
		Failures: []sim.VTime{5 * sim.Sec, 100 * sim.Sec},
	})
	if r.Failures != 0 || r.TotalTime != 5*sim.Sec {
		t.Fatalf("post-completion failures counted: %+v", r)
	}
}

func TestEvaluateRejectsNegativeInputs(t *testing.T) {
	if _, err := Evaluate(ResilienceConfig{Work: -sim.Sec}); err == nil {
		t.Fatal("negative work accepted")
	}
	if _, err := Evaluate(ResilienceConfig{
		Work: sim.Sec, Failures: []sim.VTime{-sim.Sec},
	}); err == nil {
		t.Fatal("negative failure time accepted")
	}
	if _, err := Evaluate(ResilienceConfig{
		Work: sim.Sec, Interval: -sim.Sec,
	}); err == nil {
		t.Fatal("negative interval accepted")
	}
}

func TestEvaluateStepGuardTrips(t *testing.T) {
	_, err := Evaluate(ResilienceConfig{
		Work:     1e6 * sim.Sec,
		Interval: sim.NSec,
	})
	mustErr(t, err, "exceeded")
}

// Property: over random fault scenarios, the overlay's invariants hold —
// the partition identity, TotalTime >= Work, UsefulTime == Work, and
// goodput in (0, 1].
func TestEvaluateInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		work := sim.VTime(1 + rng.Float64()*100)
		cfg := ResilienceConfig{
			Work:           work,
			Interval:       sim.VTime(rng.Float64()) * work / 2,
			CheckpointCost: sim.VTime(rng.Float64()),
			RestartCost:    sim.VTime(rng.Float64()),
		}
		for i := rng.Intn(6); i > 0; i-- {
			cfg.Failures = append(cfg.Failures,
				sim.VTime(rng.Float64())*work*2)
		}
		r, err := Evaluate(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v (cfg %+v)", trial, err, cfg)
		}
		checkPartition(t, r)
		if r.TotalTime.Before(work) {
			t.Fatalf("trial %d: total %v < work %v", trial, r.TotalTime, work)
		}
		if math.Abs(float64(r.UsefulTime-work)) > 1e-9*float64(work) {
			t.Fatalf("trial %d: useful %v != work %v", trial, r.UsefulTime, work)
		}
		if r.Goodput <= 0 || r.Goodput > 1 {
			t.Fatalf("trial %d: goodput %g", trial, r.Goodput)
		}
	}
}

func TestOptimalIntervalYoungDaly(t *testing.T) {
	// sqrt(2 × 30s × 86400s) ≈ 2276.8s — the textbook example.
	got := OptimalInterval(30*sim.Sec, 86400*sim.Sec)
	if math.Abs(float64(got)-2276.84) > 0.1 {
		t.Fatalf("OptimalInterval = %v", got)
	}
	if OptimalInterval(0, sim.Sec) != 0 || OptimalInterval(sim.Sec, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}
