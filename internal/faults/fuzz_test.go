package faults

import "testing"

// FuzzFaultSchedule drives schedule parsing and validation with arbitrary
// documents. The contract under fuzz: malformed schedules (overlapping
// windows, zero-duration events, out-of-range resource indices, junk kinds,
// conflicting anchors) come back as errors — parsing and validating never
// panic, and whatever Parse accepts, the injector-facing helpers must
// handle without crashing.
func FuzzFaultSchedule(f *testing.F) {
	seeds := []string{
		`{"events":[]}`,
		`{"schema":"triosim.faults/v1","events":[
			{"kind":"link-degrade","link":0,"factor":2,"start_sec":0.1,"duration_sec":0.5}]}`,
		`{"events":[
			{"kind":"link-down","link":1,"start_sec":0,"duration_sec":1},
			{"kind":"gpu-slowdown","gpu":2,"factor":1.5,"start_sec":0.2,"duration_sec":0.3},
			{"kind":"gpu-fail","gpu":0,"at_sec":0.7}],
		 "checkpoint":{"interval_sec":0.25,"cost_sec":0.01,"restart_sec":0.05}}`,
		// Invalid on purpose: overlap, zero duration, out-of-range, junk.
		`{"events":[
			{"kind":"link-down","link":0,"start_sec":0,"duration_sec":2},
			{"kind":"link-degrade","link":0,"factor":3,"start_sec":1,"duration_sec":2}]}`,
		`{"events":[{"kind":"gpu-slowdown","gpu":1,"factor":2,"start_sec":0,"duration_sec":0}]}`,
		`{"events":[{"kind":"link-degrade","link":99,"factor":2,"duration_sec":1}]}`,
		`{"events":[{"kind":"disk-melt","duration_sec":1}]}`,
		`{"events":[{"kind":"gpu-fail","gpu":0,"at_sec":1,"start_sec":2}]}`,
		`{"checkpoint":{"interval_sec":-1}}`,
		`{"events":[{"kind":"link-degrade","link":-3,"factor":1e308,"start_sec":-5,"duration_sec":1}]}`,
		`[]`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected with an error: the contract held
		}
		// Whatever parsed must survive bounds validation and the
		// injector-facing accessors without panicking.
		_ = s.Validate(4, 6)
		ws := s.Windows()
		_ = s.Failures()
		_ = DegradedSeconds(ws, 1e6)
		if s.Validate(4, 6) == nil && s.Check() != nil {
			t.Fatal("Validate passed but Check failed")
		}
		// Round-trip: the Spec form of an accepted schedule re-parses to
		// the same events.
		if s.Check() == nil {
			spec := s.Spec()
			if len(spec.Events) != len(s.Events) {
				t.Fatalf("spec round-trip dropped events: %d vs %d",
					len(spec.Events), len(s.Events))
			}
		}
	})
}
