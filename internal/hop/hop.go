// Package hop implements the paper's second case study (§7.2): the Hop
// heterogeneity-aware decentralized training protocol [Luo et al., ASPLOS
// 2019] running on top of TrioSim's event engine and network model.
//
// Hop replaces the global AllReduce with neighbor-wise update exchange over
// a communication graph, managed by two queue mechanisms:
//
//   - update queues: a worker may advance to the next iteration once it has
//     received updates from enough neighbors — with b backup workers, it may
//     skip the b slowest neighbors' updates;
//   - token queues: iteration gaps between neighbors are strictly bounded
//     (bounded staleness), so no worker runs away from a straggler.
//
// Heterogeneity is injected by slowing each worker's communication links by
// a per-worker random factor, exactly as the paper's case study does.
package hop

import (
	"fmt"
	"math/rand"

	"triosim/internal/network"
	"triosim/internal/sim"
)

// Config parameterizes one Hop simulation.
type Config struct {
	// Topo is the communication graph (ring-with-chords or double-ring in
	// the paper). Worker i is the i-th GPU node.
	Topo *network.Topology
	// Workers is the number of participating workers.
	Workers int
	// ComputeTime is the local fwd+bwd time per iteration per worker.
	ComputeTime sim.VTime
	// UpdateBytes is the gradient update size sent to each neighbor.
	UpdateBytes float64
	// Backup is the number of backup workers: how many slowest neighbor
	// updates each worker may skip per iteration (0 = fully synchronous).
	Backup int
	// MaxStaleness bounds the iteration gap between neighbors (token
	// queues). Minimum 1.
	MaxStaleness int
	// Iterations is the number of training iterations to run.
	Iterations int
	// Slowdowns divides worker i's link bandwidth by Slowdowns[i]
	// (heterogeneity); nil means homogeneous.
	Slowdowns []float64
}

// Result reports a Hop run.
type Result struct {
	// TotalTime is when the last worker finishes its final iteration.
	TotalTime sim.VTime
	// FinishTimes per worker.
	FinishTimes []sim.VTime
	// SkippedUpdates counts neighbor updates workers advanced without.
	SkippedUpdates int
}

// worker is one Hop participant's state machine.
type worker struct {
	id        int
	node      network.NodeID
	neighbors []int // worker IDs

	iter      int // current iteration being computed (0-based)
	computing bool
	finished  bool

	// received[k] counts update messages for iteration k.
	received map[int]int
	// peerIter tracks the highest iteration each neighbor has announced.
	peerIter map[int]int

	finishTime sim.VTime
}

type runner struct {
	cfg     Config
	eng     *sim.SerialEngine
	net     *network.FlowNetwork
	workers []*worker
	skipped int
}

// Run executes the Hop protocol and returns timing results.
func Run(cfg Config) (*Result, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("hop: nil topology")
	}
	gpus := cfg.Topo.GPUs()
	if cfg.Workers < 2 || cfg.Workers > len(gpus) {
		return nil, fmt.Errorf("hop: %d workers for %d GPUs",
			cfg.Workers, len(gpus))
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("hop: %d iterations", cfg.Iterations)
	}
	if cfg.MaxStaleness < 1 {
		cfg.MaxStaleness = 1
	}

	// Apply per-worker communication slowdowns to incident links.
	if cfg.Slowdowns != nil {
		if len(cfg.Slowdowns) != cfg.Workers {
			return nil, fmt.Errorf("hop: %d slowdowns for %d workers",
				len(cfg.Slowdowns), cfg.Workers)
		}
		for i := 0; i < cfg.Workers; i++ {
			if cfg.Slowdowns[i] < 1 {
				return nil, fmt.Errorf("hop: slowdown %g < 1",
					cfg.Slowdowns[i])
			}
			for _, l := range cfg.Topo.LinksOf(gpus[i]) {
				lk := cfg.Topo.Links[l]
				cfg.Topo.SetLinkBandwidth(l, lk.Bandwidth/cfg.Slowdowns[i])
			}
		}
	}

	eng := sim.NewSerialEngine()
	r := &runner{
		cfg: cfg,
		eng: eng,
		net: network.NewFlowNetwork(eng, cfg.Topo),
	}

	// Build workers and neighbor lists from GPU-GPU links.
	nodeToWorker := map[network.NodeID]int{}
	for i := 0; i < cfg.Workers; i++ {
		nodeToWorker[gpus[i]] = i
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:       i,
			node:     gpus[i],
			received: map[int]int{},
			peerIter: map[int]int{},
		}
		for _, l := range cfg.Topo.LinksOf(gpus[i]) {
			other := cfg.Topo.Neighbor(l, gpus[i])
			if j, ok := nodeToWorker[other]; ok && j != i {
				w.neighbors = append(w.neighbors, j)
				w.peerIter[j] = -1
			}
		}
		if len(w.neighbors) == 0 {
			return nil, fmt.Errorf("hop: worker %d has no neighbors", i)
		}
		if cfg.Backup >= len(w.neighbors) {
			return nil, fmt.Errorf("hop: %d backups ≥ degree %d",
				cfg.Backup, len(w.neighbors))
		}
		r.workers = append(r.workers, w)
	}

	for _, w := range r.workers {
		r.startCompute(w, 0)
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}

	out := &Result{SkippedUpdates: r.skipped}
	for _, w := range r.workers {
		if !w.finished {
			return nil, fmt.Errorf("hop: worker %d stalled at iteration %d",
				w.id, w.iter)
		}
		out.FinishTimes = append(out.FinishTimes, w.finishTime)
		if w.finishTime.After(out.TotalTime) {
			out.TotalTime = w.finishTime
		}
	}
	return out, nil
}

// startCompute begins iteration k's local computation on w.
func (r *runner) startCompute(w *worker, k int) {
	w.iter = k
	w.computing = true
	now := r.eng.CurrentTime()
	r.eng.Schedule(sim.NewFuncEvent(now+r.cfg.ComputeTime,
		func(t sim.VTime) error {
			r.onComputeDone(w, k, t)
			return nil
		}))
}

// onComputeDone sends iteration k's update to every neighbor and tries to
// advance.
func (r *runner) onComputeDone(w *worker, k int, now sim.VTime) {
	w.computing = false
	for _, nb := range w.neighbors {
		peer := r.workers[nb]
		r.net.Send(w.node, peer.node, r.cfg.UpdateBytes,
			func(t sim.VTime) {
				r.onUpdate(peer, w.id, k)
			})
	}
	r.tryAdvance(w, now)
}

// onUpdate records a neighbor's update arrival at w.
func (r *runner) onUpdate(w *worker, from, k int) {
	w.received[k]++
	if k > w.peerIter[from] {
		w.peerIter[from] = k
	}
	if !w.computing && !w.finished {
		r.tryAdvance(w, r.eng.CurrentTime())
	}
}

// tryAdvance applies Hop's queue rules to decide whether w may begin its
// next iteration.
func (r *runner) tryAdvance(w *worker, now sim.VTime) {
	k := w.iter
	// Update queue: need updates from at least (degree − backup) neighbors
	// for the iteration just computed.
	needed := len(w.neighbors) - r.cfg.Backup
	if w.received[k] < needed {
		return
	}
	// Token queue: no neighbor may lag more than MaxStaleness iterations.
	for _, nb := range w.neighbors {
		if w.peerIter[nb] < k-r.cfg.MaxStaleness {
			return
		}
	}
	if w.received[k] < len(w.neighbors) {
		r.skipped += len(w.neighbors) - w.received[k]
	}
	if k+1 >= r.cfg.Iterations {
		w.finished = true
		w.finishTime = now
		return
	}
	r.startCompute(w, k+1)
}

// RandomSlowdowns draws the paper's heterogeneity scenario: per-worker
// slowdown factors uniform in [1, 10), deterministic per seed.
func RandomSlowdowns(workers int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, workers)
	for i := range out {
		out[i] = 1 + 9*rng.Float64()
	}
	return out
}

// Speedup runs the scenario with and without backup workers and returns
// time(backup=0) / time(backup=b) — the paper's Fig 16 metric.
func Speedup(cfg Config, backup int) (float64, error) {
	// Run on fresh topology copies: Run mutates link bandwidths when
	// applying slowdowns.
	base := cfg
	base.Backup = 0
	base.Topo = cloneTopology(cfg.Topo)
	noBackup, err := Run(base)
	if err != nil {
		return 0, err
	}
	with := cfg
	with.Backup = backup
	with.Topo = cloneTopology(cfg.Topo)
	withBackup, err := Run(with)
	if err != nil {
		return 0, err
	}
	return float64(noBackup.TotalTime) / float64(withBackup.TotalTime), nil
}

// cloneTopology deep-copies nodes and links (bandwidths included).
func cloneTopology(t *network.Topology) *network.Topology {
	out := network.NewTopology()
	for _, n := range t.Nodes {
		out.AddNode(n.Name, n.Kind)
	}
	for _, l := range t.Links {
		out.AddLink(l.A, l.B, l.Bandwidth, l.Latency)
	}
	return out
}
