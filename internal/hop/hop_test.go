package hop

import (
	"testing"

	"triosim/internal/network"
	"triosim/internal/sim"
)

func hopTopo(kind string) *network.Topology {
	cfg := network.Config{
		NumGPUs:       8,
		LinkBandwidth: 235e9,
		LinkLatency:   1 * sim.USec,
		HostBandwidth: 20e9,
	}
	if kind == "double" {
		return network.DoubleRing(cfg)
	}
	return network.RingWithChords(cfg)
}

func baseCfg() Config {
	return Config{
		Topo:         hopTopo("ring"),
		Workers:      8,
		ComputeTime:  50 * sim.MSec,
		UpdateBytes:  531e6, // VGG-11 gradients
		MaxStaleness: 2,
		Iterations:   5,
	}
}

func TestHomogeneousSynchronousRun(t *testing.T) {
	cfg := baseCfg()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no time elapsed")
	}
	if len(res.FinishTimes) != 8 {
		t.Fatalf("finish times = %d", len(res.FinishTimes))
	}
	// Homogeneous synchronous workers finish nearly together.
	var min, max sim.VTime = sim.Infinity, 0
	for _, f := range res.FinishTimes {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if float64(max-min) > 0.05*float64(max) {
		t.Fatalf("homogeneous finishes spread too wide: %v..%v", min, max)
	}
	if res.SkippedUpdates != 0 {
		t.Fatalf("synchronous run skipped %d updates", res.SkippedUpdates)
	}
}

func TestIterationsScaleTime(t *testing.T) {
	cfg := baseCfg()
	cfg.Iterations = 2
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = baseCfg()
	cfg.Iterations = 6
	r6, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(r6.TotalTime) / float64(r2.TotalTime)
	if r < 2.5 || r > 3.5 {
		t.Fatalf("6/2 iteration time ratio %.2f, want ≈3", r)
	}
}

func TestSlowWorkerDragsSynchronousRun(t *testing.T) {
	fast, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg()
	slow := make([]float64, 8)
	for i := range slow {
		slow[i] = 1
	}
	slow[3] = 10
	cfg.Slowdowns = slow
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= fast.TotalTime {
		t.Fatalf("heterogeneous run %v not slower than homogeneous %v",
			res.TotalTime, fast.TotalTime)
	}
}

func TestBackupWorkerHelpsUnderHeterogeneity(t *testing.T) {
	cfg := baseCfg()
	cfg.Slowdowns = RandomSlowdowns(8, 1)
	sp, err := Speedup(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.0 {
		t.Fatalf("backup worker speedup %.3f < 1", sp)
	}
}

func TestBackupSpeedupVariesAcrossScenarios(t *testing.T) {
	// Fig 16's shape: the backup worker's effect varies widely with the
	// random slowdown scenario.
	var speedups []float64
	for seed := int64(1); seed <= 8; seed++ {
		cfg := baseCfg()
		cfg.Slowdowns = RandomSlowdowns(8, seed)
		sp, err := Speedup(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sp < 0.99 {
			t.Fatalf("seed %d: speedup %.3f below 1", seed, sp)
		}
		speedups = append(speedups, sp)
	}
	min, max := speedups[0], speedups[0]
	for _, s := range speedups {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min < 0.01 {
		t.Fatalf("speedups do not vary across scenarios: %v", speedups)
	}
}

func TestDoubleRingTopologyRuns(t *testing.T) {
	cfg := baseCfg()
	cfg.Topo = hopTopo("double")
	cfg.Slowdowns = RandomSlowdowns(8, 3)
	sp, err := Speedup(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 0.99 {
		t.Fatalf("double-ring speedup %.3f", sp)
	}
}

func TestBackupActuallySkips(t *testing.T) {
	cfg := baseCfg()
	cfg.Backup = 1
	cfg.Slowdowns = []float64{1, 1, 1, 10, 1, 1, 1, 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedUpdates == 0 {
		t.Fatal("backup run with a straggler skipped nothing")
	}
}

func TestStalenessBoundHolds(t *testing.T) {
	// Even with a backup worker and a severe straggler, all workers finish
	// (the token queue prevents runaway divergence and deadlock).
	cfg := baseCfg()
	cfg.Backup = 1
	cfg.MaxStaleness = 1
	cfg.Iterations = 10
	cfg.Slowdowns = []float64{1, 1, 1, 1, 1, 1, 1, 10}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinishTimes) != 8 {
		t.Fatal("not all workers finished")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := baseCfg()
	cfg.Topo = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("nil topo accepted")
	}
	cfg = baseCfg()
	cfg.Workers = 1
	if _, err := Run(cfg); err == nil {
		t.Fatal("1 worker accepted")
	}
	cfg = baseCfg()
	cfg.Iterations = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("0 iterations accepted")
	}
	cfg = baseCfg()
	cfg.Slowdowns = []float64{1, 2}
	if _, err := Run(cfg); err == nil {
		t.Fatal("wrong slowdown count accepted")
	}
	cfg = baseCfg()
	cfg.Slowdowns = RandomSlowdowns(8, 1)
	cfg.Slowdowns[0] = 0.5
	if _, err := Run(cfg); err == nil {
		t.Fatal("slowdown < 1 accepted")
	}
	cfg = baseCfg()
	cfg.Backup = 5 // degree on ring-with-chords is 3
	if _, err := Run(cfg); err == nil {
		t.Fatal("backup ≥ degree accepted")
	}
}

func TestRandomSlowdownsDeterministic(t *testing.T) {
	a := RandomSlowdowns(8, 42)
	b := RandomSlowdowns(8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 1 || a[i] >= 10 {
			t.Fatalf("slowdown %g out of [1,10)", a[i])
		}
	}
	c := RandomSlowdowns(8, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical slowdowns")
	}
}
