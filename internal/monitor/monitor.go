// Package monitor provides an AkitaRTM-style real-time monitoring surface
// for running simulations: an engine hook collects progress (virtual-time
// frontier, events dispatched, per-kind counts), and an HTTP handler exposes
// it as JSON so a dashboard — or plain curl — can watch a long simulation
// from outside, the way AkitaRTM watches Akita simulations.
package monitor

import (
	"encoding/json"
	"net/http"
	"sync"

	"triosim/internal/sim"
)

// Snapshot is one observation of a running simulation.
type Snapshot struct {
	VirtualTimeSec float64           `json:"virtual_time_sec"`
	Events         uint64            `json:"events"`
	EventsByKind   map[string]uint64 `json:"events_by_kind,omitempty"`
	Done           bool              `json:"done"`
}

// RTM is a thread-safe simulation monitor. Register its Hook on the engine
// before Run; serve its Handler from any goroutine.
type RTM struct {
	mu       sync.Mutex
	snapshot Snapshot
	// KindOf optionally classifies events for per-kind counts.
	KindOf func(e sim.Event) string
}

// New returns an empty monitor.
func New() *RTM {
	return &RTM{snapshot: Snapshot{EventsByKind: map[string]uint64{}}}
}

// Hook returns the engine hook feeding this monitor.
func (m *RTM) Hook() sim.Hook {
	return sim.HookFunc(func(ctx sim.HookCtx) {
		if ctx.Pos != sim.HookPosAfterEvent {
			return
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		m.snapshot.Events++
		m.snapshot.VirtualTimeSec = float64(ctx.Now)
		if m.KindOf != nil {
			if e, ok := ctx.Item.(sim.Event); ok {
				m.snapshot.EventsByKind[m.KindOf(e)]++
			}
		}
	})
}

// MarkDone flags the simulation as complete.
func (m *RTM) MarkDone() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot.Done = true
}

// Snapshot returns a copy of the current state.
func (m *RTM) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.snapshot
	out.EventsByKind = map[string]uint64{}
	for k, v := range m.snapshot.EventsByKind {
		out.EventsByKind[k] = v
	}
	return out
}

// Handler serves the monitoring endpoints:
//
//	GET /status  — the JSON Snapshot
//	GET /healthz — 200 ok
func (m *RTM) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(m.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}

// Serve blocks serving the monitor on addr (e.g. ":8080").
func (m *RTM) Serve(addr string) error {
	return http.ListenAndServe(addr, m.Handler())
}
