// Package monitor provides an AkitaRTM-style real-time monitoring surface
// for running simulations: an engine hook collects progress (virtual-time
// frontier, events dispatched, per-kind counts), and an HTTP handler exposes
// it as JSON so a dashboard — or plain curl — can watch a long simulation
// from outside, the way AkitaRTM watches Akita simulations.
//
// When a telemetry.Registry is attached, the same handler also serves a
// Prometheus text-format /metrics endpoint: the engine hook renders the
// registry into a cached byte snapshot every SampleEvery events (on the
// engine goroutine, so registry access needs no locking), and HTTP readers
// only ever touch the cache under the monitor's mutex. Wall-clock rates
// (events/second) are computed here, at the monitoring boundary, from the
// injectable Clock — the simulation packages themselves never read the host
// clock (triosimvet: no-wallclock).
package monitor

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"triosim/internal/sim"
	"triosim/internal/telemetry"
)

// Snapshot is one observation of a running simulation.
type Snapshot struct {
	VirtualTimeSec float64           `json:"virtual_time_sec"`
	Events         uint64            `json:"events"`
	EventsByKind   map[string]uint64 `json:"events_by_kind,omitempty"`
	// EventsPerSecond is the wall-clock dispatch rate over the last sampling
	// window (zero unless Clock is set).
	EventsPerSecond float64 `json:"events_per_second,omitempty"`
	Done            bool    `json:"done"`
}

// defaultSampleEvery balances /metrics freshness against render cost: one
// registry render per ~4k dispatched events.
const defaultSampleEvery = 4096

// RTM is a thread-safe simulation monitor. Register its Hook on the engine
// before Run; serve its Handler from any goroutine.
type RTM struct {
	mu        sync.Mutex
	snapshot  Snapshot
	promCache []byte
	// Wall-rate state (engine goroutine only).
	lastWall   time.Time
	lastEvents uint64

	// KindOf optionally classifies events for per-kind counts.
	KindOf func(e sim.Event) string
	// Registry optionally attaches a telemetry registry; when set, /metrics
	// serves its Prometheus rendering. Set before Run; the hook reads it on
	// the engine goroutine.
	Registry *telemetry.Registry
	// Clock supplies wall-clock readings for the events/second rate. Nil
	// leaves the rate zero (deterministic runs).
	Clock func() time.Time
	// SampleEvery is how many dispatched events pass between /metrics cache
	// refreshes (default 4096).
	SampleEvery uint64
}

// New returns an empty monitor.
func New() *RTM {
	return &RTM{snapshot: Snapshot{EventsByKind: map[string]uint64{}}}
}

// Hook returns the engine hook feeding this monitor.
func (m *RTM) Hook() sim.Hook {
	return sim.HookFunc(func(ctx sim.HookCtx) {
		if ctx.Pos != sim.HookPosAfterEvent {
			return
		}
		m.mu.Lock()
		m.snapshot.Events++
		m.snapshot.VirtualTimeSec = float64(ctx.Now)
		if m.KindOf != nil {
			if e, ok := ctx.Item.(sim.Event); ok {
				m.snapshot.EventsByKind[m.KindOf(e)]++
			}
		}
		events := m.snapshot.Events
		m.mu.Unlock()

		every := m.SampleEvery
		if every == 0 {
			every = defaultSampleEvery
		}
		if events%every == 0 {
			m.refresh(events)
		}
	})
}

// refresh re-renders the /metrics cache and the wall-clock rate. Called on
// the engine goroutine only (registry access is unsynchronized by design).
func (m *RTM) refresh(events uint64) {
	var rate float64
	if m.Clock != nil {
		now := m.Clock()
		if !m.lastWall.IsZero() {
			if dt := now.Sub(m.lastWall).Seconds(); dt > 0 {
				rate = float64(events-m.lastEvents) / dt
			}
		}
		m.lastWall, m.lastEvents = now, events
	}
	var cache []byte
	if m.Registry != nil {
		var buf bytes.Buffer
		m.Registry.WriteProm(&buf)
		cache = buf.Bytes()
	}
	m.mu.Lock()
	if rate > 0 {
		m.snapshot.EventsPerSecond = rate
	}
	if cache != nil {
		m.promCache = cache
	}
	m.mu.Unlock()
}

// MarkDone flags the simulation as complete and renders the final /metrics
// snapshot. Call it from the goroutine that ran the engine.
func (m *RTM) MarkDone() {
	m.mu.Lock()
	events := m.snapshot.Events
	m.mu.Unlock()
	m.refresh(events)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot.Done = true
}

// Snapshot returns a copy of the current state.
func (m *RTM) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.snapshot
	out.EventsByKind = map[string]uint64{}
	for k, v := range m.snapshot.EventsByKind {
		out.EventsByKind[k] = v
	}
	return out
}

// writeMetrics renders the Prometheus text response: the cached registry
// rendering (when attached) followed by the monitor's own gauges. With no
// registry it falls back to a minimal rendering of the snapshot so /metrics
// stays useful on bare monitors. All families register through a shared
// telemetry.PromText, so a registry that already exports one of the
// monitor's family names cannot duplicate it in the exposition.
func (m *RTM) writeMetrics(w http.ResponseWriter) {
	m.mu.Lock()
	cache := m.promCache
	snap := m.snapshot
	kinds := make(map[string]uint64, len(m.snapshot.EventsByKind))
	for k, v := range m.snapshot.EventsByKind {
		kinds[k] = v
	}
	m.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := telemetry.NewPromText()
	if cache != nil {
		p.Raw(cache)
	} else if p.Header("triosim_events_total", "counter",
		"Events dispatched by the engine.") {
		// Fallback: events by kind from the monitor's own counts.
		if len(kinds) == 0 {
			p.Samplef("triosim_events_total %d", snap.Events)
		} else {
			names := make([]string, 0, len(kinds))
			for k := range kinds {
				names = append(names, k)
			}
			sort.Strings(names)
			for _, k := range names {
				p.Samplef("triosim_events_total{kind=%q} %d", k, kinds[k])
			}
		}
	}
	p.Gauge("triosim_monitor_virtual_time_seconds",
		"Virtual-time frontier seen by the monitor.", snap.VirtualTimeSec)
	p.Gauge("triosim_monitor_events_per_second",
		"Wall-clock event dispatch rate (last window).", snap.EventsPerSecond)
	done := 0.0
	if snap.Done {
		done = 1
	}
	p.Gauge("triosim_monitor_done", "Whether the simulation finished.", done)
	_, _ = w.Write(p.Bytes())
}

// Handler serves the monitoring endpoints:
//
//	GET /status  — the JSON Snapshot
//	GET /metrics — Prometheus text format (registry + monitor gauges)
//	GET /healthz — 200 ok
func (m *RTM) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(m.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m.writeMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}

// Serve blocks serving the monitor on addr (e.g. ":8080").
func (m *RTM) Serve(addr string) error {
	return http.ListenAndServe(addr, m.Handler())
}
