package monitor

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"triosim/internal/sim"
	"triosim/internal/telemetry"
)

func TestHookCollectsProgress(t *testing.T) {
	m := New()
	m.KindOf = func(sim.Event) string { return "func" }
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	for i := 1; i <= 5; i++ {
		eng.Schedule(sim.NewFuncEvent(sim.VTime(i), func(sim.VTime) error {
			return nil
		}))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	m.MarkDone()
	snap := m.Snapshot()
	if snap.Events != 5 {
		t.Fatalf("events = %d", snap.Events)
	}
	if snap.VirtualTimeSec != 5 {
		t.Fatalf("virtual time = %v", snap.VirtualTimeSec)
	}
	if !snap.Done {
		t.Fatal("done flag missing")
	}
	if snap.EventsByKind["func"] != 5 {
		t.Fatalf("by-kind = %v", snap.EventsByKind)
	}
}

func TestHTTPStatus(t *testing.T) {
	m := New()
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	eng.Schedule(sim.NewFuncEvent(2, func(sim.VTime) error { return nil }))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Events != 1 || snap.VirtualTimeSec != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}

	h, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != 200 {
		t.Fatalf("healthz = %d", h.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("triosim_events_total", "kind", "FuncEvent",
		"Events dispatched.").Add(7)

	m := New()
	m.Registry = reg
	m.SampleEvery = 1
	m.Clock = time.Now
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	eng.Schedule(sim.NewFuncEvent(1, func(sim.VTime) error { return nil }))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	m.MarkDone()

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE triosim_events_total counter",
		`triosim_events_total{kind="FuncEvent"} 7`,
		"triosim_monitor_virtual_time_seconds 1",
		"triosim_monitor_done 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestMetricsFallbackWithoutRegistry(t *testing.T) {
	m := New()
	m.KindOf = func(sim.Event) string { return "func" }
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	eng.Schedule(sim.NewFuncEvent(1, func(sim.VTime) error { return nil }))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `triosim_events_total{kind="func"} 1`) {
		t.Fatalf("fallback /metrics missing event count:\n%s", body)
	}
}

// TestHandlerDuringRunRace hammers the HTTP surface while the engine runs and
// mutates the shared registry, so `go test -race` proves readers only ever
// touch the monitor's cached snapshot.
func TestHandlerDuringRunRace(t *testing.T) {
	reg := telemetry.NewRegistry()
	events := reg.Counter("triosim_events_total", "", "",
		"Events dispatched.")

	m := New()
	m.Registry = reg
	m.SampleEvery = 8
	m.Clock = time.Now
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	eng.RegisterHook(sim.HookFunc(func(ctx sim.HookCtx) {
		if ctx.Pos == sim.HookPosAfterEvent {
			events.Inc()
		}
	}))
	const nEvents = 5000
	var schedule func(i int)
	schedule = func(i int) {
		if i >= nEvents {
			return
		}
		eng.Schedule(sim.NewFuncEvent(sim.VTime(i), func(sim.VTime) error {
			schedule(i + 1)
			return nil
		}))
	}
	schedule(0)

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/status"} {
					resp, err := srv.Client().Get(srv.URL + path)
					if err != nil {
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	m.MarkDone()
	close(stop)
	wg.Wait()

	if got := m.Snapshot().Events; got != nEvents {
		t.Fatalf("events = %d, want %d", got, nEvents)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New()
	m.KindOf = func(sim.Event) string { return "x" }
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	eng.Schedule(sim.NewFuncEvent(1, func(sim.VTime) error { return nil }))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	snap.EventsByKind["x"] = 999
	if m.Snapshot().EventsByKind["x"] == 999 {
		t.Fatal("snapshot shares internal map")
	}
}
