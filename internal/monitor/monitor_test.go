package monitor

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"triosim/internal/sim"
)

func TestHookCollectsProgress(t *testing.T) {
	m := New()
	m.KindOf = func(sim.Event) string { return "func" }
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	for i := 1; i <= 5; i++ {
		eng.Schedule(sim.NewFuncEvent(sim.VTime(i), func(sim.VTime) error {
			return nil
		}))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	m.MarkDone()
	snap := m.Snapshot()
	if snap.Events != 5 {
		t.Fatalf("events = %d", snap.Events)
	}
	if snap.VirtualTimeSec != 5 {
		t.Fatalf("virtual time = %v", snap.VirtualTimeSec)
	}
	if !snap.Done {
		t.Fatal("done flag missing")
	}
	if snap.EventsByKind["func"] != 5 {
		t.Fatalf("by-kind = %v", snap.EventsByKind)
	}
}

func TestHTTPStatus(t *testing.T) {
	m := New()
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	eng.Schedule(sim.NewFuncEvent(2, func(sim.VTime) error { return nil }))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Events != 1 || snap.VirtualTimeSec != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}

	h, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != 200 {
		t.Fatalf("healthz = %d", h.StatusCode)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New()
	m.KindOf = func(sim.Event) string { return "x" }
	eng := sim.NewSerialEngine()
	eng.RegisterHook(m.Hook())
	eng.Schedule(sim.NewFuncEvent(1, func(sim.VTime) error { return nil }))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	snap.EventsByKind["x"] = 999
	if m.Snapshot().EventsByKind["x"] == 999 {
		t.Fatal("snapshot shares internal map")
	}
}
