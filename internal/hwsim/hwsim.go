// Package hwsim is the reference hardware emulator that stands in for the
// paper's physical platforms (P1/P2/P3). It plays two roles:
//
//  1. Measurement: it stamps per-operator execution times onto the model
//     zoo's trace skeletons, producing the single-GPU traces TrioSim
//     ingests (the PyTorch-Profiler substitute).
//  2. Ground truth: multi-GPU runs timed with hwsim's operator timer and
//     protocol overheads serve as the "real hardware" numbers that
//     TrioSim's predictions are validated against.
//
// hwsim deliberately includes the effects the paper lists as TrioSim's
// error sources (§8.2) and that TrioSim's lightweight models abstract away:
// a nonlinear, size-dependent SM-utilization curve, per-kernel launch
// overhead, per-collective-step protocol latency, and per-micro-batch CPU
// scheduling cost. The gap between hwsim ground truth and TrioSim
// prediction is therefore structural, not arbitrary noise.
package hwsim

import (
	"hash/fnv"
	"math"

	"triosim/internal/gpu"
	"triosim/internal/models"
	"triosim/internal/sim"
	"triosim/internal/trace"
)

// Timer computes "real hardware" operator times for one GPU spec.
type Timer struct {
	Spec *gpu.Spec
	// NoiseAmp is the amplitude of deterministic per-kernel timing
	// variation (0.02 = ±2%). Zero disables it.
	NoiseAmp float64
}

// DefaultNoiseAmp is the kernel-to-kernel timing variation NewTimer applies
// (±2%). Exported so the trace cache can fold the effective timer parameters
// into its content-addressed keys.
const DefaultNoiseAmp = 0.02

// NewTimer returns a Timer with the default ±2% kernel-to-kernel variation.
func NewTimer(spec *gpu.Spec) *Timer {
	return &Timer{Spec: spec, NoiseAmp: DefaultNoiseAmp}
}

// OpTime returns the hardware execution time of an operator with the given
// work. traceTime and scaled are part of the shared OpTimer contract used by
// the extrapolator; hardware always recomputes from first principles.
func (t *Timer) OpTime(name string, flops, bytes float64,
	traceTime sim.VTime, scaled bool) sim.VTime {

	var base float64
	if models.IsMemoryBound(name) {
		base = bytes / (t.Spec.MemBandwidth * t.Spec.MemEff)
	} else {
		util := t.Spec.Utilization(flops)
		if util <= 0 {
			util = 1e-3
		}
		base = flops / (t.Spec.PeakFLOPS * util)
	}
	base *= 1 + t.noise(name, flops)
	return sim.VTime(base) + t.Spec.LaunchOverhead
}

// noise derives a deterministic per-kernel perturbation in
// [-NoiseAmp, +NoiseAmp] from the kernel identity (name and size).
func (t *Timer) noise(name string, flops float64) float64 {
	if t.NoiseAmp == 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	bits := math.Float64bits(flops)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (8 * i))
	}
	h.Write(buf[:])
	u := float64(h.Sum64()%1_000_003) / 1_000_003.0 // [0,1)
	return t.NoiseAmp * (2*u - 1)
}

// Stamp assigns measured times to every op of the trace skeleton and records
// the device name, completing the "trace collection" step. The trace is
// pre-publication here: Stamp is part of the collection pipeline and runs
// before the trace is cached or shared, hence the publish-then-mutate
// suppressions below.
func Stamp(tr *trace.Trace, spec *gpu.Spec) {
	timer := NewTimer(spec)
	tr.Device = spec.Name //triosim:nolint publish-then-mutate -- pre-publication: Stamp completes collection before the trace is cached/shared
	for i := range tr.Ops {
		op := &tr.Ops[i]
		bytes := float64(op.BytesIn(tr.Tensors) + op.BytesOut(tr.Tensors))
		op.Time = timer.OpTime(op.Name, op.FLOPs, bytes, 0, true) //triosim:nolint publish-then-mutate -- pre-publication: same collection step
	}
}

// CollectTrace builds and stamps a single-GPU trace for the named model —
// the full tracer-substitute pipeline in one call.
func CollectTrace(model string, batch int, spec *gpu.Spec) (*trace.Trace,
	error) {
	tr, err := models.Build(model, batch)
	if err != nil {
		return nil, err
	}
	Stamp(tr, spec)
	return tr, nil
}

// Effects bundles the protocol/CPU overheads real hardware pays that
// TrioSim's lightweight models skip. The extrapolator accepts an Effects so
// the same extrapolation logic produces both the ground-truth graph (with
// overheads) and TrioSim's predicted graph (without).
type Effects struct {
	// CommStepLatency is added to every collective-communication step
	// (NCCL ring setup + kernel launch per step).
	CommStepLatency sim.VTime
	// CPUSchedPerMicroBatch is host scheduling cost charged per pipeline
	// micro-batch stage execution.
	CPUSchedPerMicroBatch sim.VTime
	// DPDispatchPerLayer is the single-process dispatch overhead of
	// standard (non-distributed) DataParallel, charged per layer on the
	// critical path (GIL contention across model replicas).
	DPDispatchPerLayer sim.VTime
	// TPSyncPerLayer is the per-layer synchronization overhead of tensor
	// parallelism on real hardware.
	TPSyncPerLayer sim.VTime
	// CommRampBytes parameterizes the network's size-dependent achieved
	// bandwidth (see network.FlowNetwork.RampBytes).
	CommRampBytes float64
	// DPComputeInflation is the fractional compute slowdown of standard
	// (single-process, multi-threaded) DataParallel caused by the Python
	// GIL serializing kernel launches across replicas. DDP's multi-process
	// design avoids it, which is why the paper finds DDP predictions more
	// accurate than standard-DP ones.
	DPComputeInflation float64
}

// NoEffects is what TrioSim assumes: no protocol or CPU overheads.
var NoEffects = Effects{}

// PlatformEffects derives the hardware Effects from a platform definition.
func PlatformEffects(p *gpu.Platform) Effects {
	return Effects{
		CommStepLatency:       p.CommStepLatency,
		CPUSchedPerMicroBatch: p.CPUSchedOverhead,
		DPDispatchPerLayer:    150 * sim.USec,
		TPSyncPerLayer:        40 * sim.USec,
		CommRampBytes:         p.CommRampBytes,
		DPComputeInflation:    0.055,
	}
}
