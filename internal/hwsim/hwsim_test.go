package hwsim

import (
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/sim"
)

func TestOpTimeComputeBound(t *testing.T) {
	tm := NewTimer(&gpu.A100)
	tm.NoiseAmp = 0
	// Big conv: 1e12 FLOPs, compute-bound.
	got := tm.OpTime("conv2d", 1e12, 1e9, 0, true)
	util := gpu.A100.Utilization(1e12)
	want := sim.VTime(1e12/(gpu.A100.PeakFLOPS*util)) + gpu.A100.LaunchOverhead
	if got != want {
		t.Fatalf("OpTime = %v, want %v", got, want)
	}
}

func TestOpTimeMemoryBound(t *testing.T) {
	tm := NewTimer(&gpu.A100)
	tm.NoiseAmp = 0
	got := tm.OpTime("relu", 1e9, 4e9, 0, true)
	want := sim.VTime(4e9/(gpu.A100.MemBandwidth*gpu.A100.MemEff)) +
		gpu.A100.LaunchOverhead
	if got != want {
		t.Fatalf("OpTime = %v, want %v", got, want)
	}
}

func TestLaunchOverheadDominatesTinyOps(t *testing.T) {
	tm := NewTimer(&gpu.A100)
	tm.NoiseAmp = 0
	got := tm.OpTime("relu", 10, 40, 0, true)
	if got < gpu.A100.LaunchOverhead {
		t.Fatalf("tiny op time %v below launch overhead", got)
	}
	if got > 2*gpu.A100.LaunchOverhead {
		t.Fatalf("tiny op time %v should be launch-dominated", got)
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	tm := NewTimer(&gpu.A40)
	a := tm.OpTime("conv2d", 5e10, 1e8, 0, true)
	b := tm.OpTime("conv2d", 5e10, 1e8, 0, true)
	if a != b {
		t.Fatal("noise not deterministic")
	}
	tm2 := NewTimer(&gpu.A40)
	tm2.NoiseAmp = 0
	clean := tm2.OpTime("conv2d", 5e10, 1e8, 0, true)
	rel := float64((a - clean) / clean)
	if rel > 0.03 || rel < -0.03 {
		t.Fatalf("noise out of bounds: %v vs %v", a, clean)
	}
	// Different sizes get different noise.
	c := tm.OpTime("conv2d", 5e10+1e9, 1e8, 0, true)
	if c == a {
		t.Log("note: adjacent sizes happened to share noise (unlikely)")
	}
}

func TestSublinearScaling(t *testing.T) {
	// Real hardware: doubling FLOPs less than doubles time for mid-size
	// kernels (utilization rises). This nonlinearity is what TrioSim's
	// linear model cannot capture exactly.
	tm := NewTimer(&gpu.A100)
	tm.NoiseAmp = 0
	t1 := tm.OpTime("conv2d", 5e9, 0, 0, true)
	t2 := tm.OpTime("conv2d", 10e9, 0, 0, true)
	if float64(t2) >= 2*float64(t1) {
		t.Fatalf("scaling not sublinear: %v → %v", t1, t2)
	}
	if t2 <= t1 {
		t.Fatalf("bigger kernel should still take longer: %v vs %v", t1, t2)
	}
}

func TestStampAndCollect(t *testing.T) {
	tr, err := CollectTrace("resnet18", 32, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Device != "A100" {
		t.Fatalf("device = %q", tr.Device)
	}
	for i := range tr.Ops {
		if tr.Ops[i].Time <= 0 {
			t.Fatalf("op %d (%s) has no time", i, tr.Ops[i].Name)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// A full ResNet-18 iteration at batch 32 lands in a plausible range on
	// an A100 (tens of ms to a few hundred ms).
	total := tr.TotalTime()
	if total < 10*sim.MSec || total > 1*sim.Sec {
		t.Fatalf("implausible iteration time %v", total)
	}
}

func TestFasterGPUFasterTrace(t *testing.T) {
	slow, err := CollectTrace("resnet50", 16, &gpu.A40)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := CollectTrace("resnet50", 16, &gpu.H100)
	if err != nil {
		t.Fatal(err)
	}
	if fast.TotalTime() >= slow.TotalTime() {
		t.Fatalf("H100 (%v) not faster than A40 (%v)",
			fast.TotalTime(), slow.TotalTime())
	}
}

func TestBatchScalingSublinear(t *testing.T) {
	// Per-sample time shrinks as batch grows (fixed overheads amortize).
	b64, err := CollectTrace("resnet18", 64, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	b128, err := CollectTrace("resnet18", 128, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(b128.TotalTime()) / float64(b64.TotalTime())
	if r >= 2 {
		t.Fatalf("batch 64→128 time ratio %.3f, want < 2", r)
	}
	if r <= 1.2 {
		t.Fatalf("batch 64→128 time ratio %.3f suspiciously low", r)
	}
}

func TestPlatformEffects(t *testing.T) {
	e := PlatformEffects(&gpu.P2)
	if e.CommStepLatency != gpu.P2.CommStepLatency {
		t.Fatal("comm step latency not propagated")
	}
	if e.CPUSchedPerMicroBatch != gpu.P2.CPUSchedOverhead {
		t.Fatal("CPU sched overhead not propagated")
	}
	if e.DPDispatchPerLayer <= 0 || e.TPSyncPerLayer <= 0 {
		t.Fatal("per-layer overheads missing")
	}
	if NoEffects.CommStepLatency != 0 || NoEffects.CPUSchedPerMicroBatch != 0 {
		t.Fatal("NoEffects must be zero")
	}
}
