package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBytes(t *testing.T) {
	tn := Tensor{Dims: []int64{64, 3, 224, 224}, DType: Float32}
	wantElems := int64(64 * 3 * 224 * 224)
	if tn.NumElements() != wantElems {
		t.Fatalf("NumElements = %d, want %d", tn.NumElements(), wantElems)
	}
	if tn.Bytes() != wantElems*4 {
		t.Fatalf("Bytes = %d, want %d", tn.Bytes(), wantElems*4)
	}
}

func TestEmptyTensor(t *testing.T) {
	tn := Tensor{DType: Float32}
	if tn.NumElements() != 0 || tn.Bytes() != 0 {
		t.Fatal("empty tensor should have 0 elements and bytes")
	}
}

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int64{
		Float32: 4, Float16: 2, BFloat16: 2, Int64: 8, Int32: 4, Int8: 1,
	}
	for d, want := range cases {
		if d.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", d, d.Size(), want)
		}
	}
	if DType(99).Size() != 0 {
		t.Error("invalid dtype should have size 0")
	}
}

func TestDTypeRoundTrip(t *testing.T) {
	for d := Float32; d <= Int8; d++ {
		got, err := ParseDType(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDType(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDType("nope"); err == nil {
		t.Error("ParseDType should reject unknown names")
	}
}

func TestCategoryRoundTrip(t *testing.T) {
	for c := Unknown; c <= Output; c++ {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCategory("nope"); err == nil {
		t.Error("ParseCategory should reject unknown names")
	}
}

func TestScaledToBatch(t *testing.T) {
	in := Tensor{Dims: []int64{128, 3, 32, 32}, DType: Float32, BatchDim: 0}
	out := in.ScaledToBatch(128, 256)
	if out.Dims[0] != 256 {
		t.Fatalf("batch dim = %d, want 256", out.Dims[0])
	}
	if in.Dims[0] != 128 {
		t.Fatal("ScaledToBatch mutated the input")
	}

	w := Tensor{Dims: []int64{512, 512}, DType: Float32, BatchDim: -1}
	sw := w.ScaledToBatch(128, 256)
	if sw.Dims[0] != 512 || sw.Dims[1] != 512 {
		t.Fatal("weight tensor must not scale with batch")
	}
}

func TestScaledToBatchProperty(t *testing.T) {
	// Scaling to k*oldBatch multiplies the batch-dim by k exactly.
	f := func(perSample uint8, oldB, k uint8) bool {
		ps := int64(perSample%16) + 1
		ob := int64(oldB%16) + 1
		kk := int64(k%8) + 1
		in := Tensor{Dims: []int64{ps * ob, 7}, DType: Float32, BatchDim: 0}
		out := in.ScaledToBatch(ob, ob*kk)
		return out.Dims[0] == ps*ob*kk && out.Dims[1] == 7
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestShardDim(t *testing.T) {
	w := Tensor{Dims: []int64{1000, 512}, DType: Float32}
	s := w.ShardDim(0, 4)
	if s.Dims[0] != 250 {
		t.Fatalf("shard dim = %d, want 250", s.Dims[0])
	}
	s = w.ShardDim(0, 3) // ceiling division
	if s.Dims[0] != 334 {
		t.Fatalf("ceil shard dim = %d, want 334", s.Dims[0])
	}
	s = w.ShardDim(5, 4) // out of range: unchanged
	if s.Dims[0] != 1000 {
		t.Fatal("out-of-range dim must leave tensor unchanged")
	}
}

func TestShardCoversProperty(t *testing.T) {
	// parts * shardSize >= original size, and shardSize <= original size.
	f := func(size uint16, parts uint8) bool {
		sz := int64(size%4096) + 1
		p := int(parts%15) + 2
		tn := Tensor{Dims: []int64{sz}, DType: Float32}
		sh := tn.ShardDim(0, p)
		return sh.Dims[0]*int64(p) >= sz && sh.Dims[0] <= sz
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable()
	id1 := tb.Add(Tensor{Dims: []int64{10}, DType: Float32, Category: Weight})
	id2 := tb.Add(Tensor{Dims: []int64{20}, DType: Float32, Category: Gradient})
	if id1 == id2 {
		t.Fatal("IDs must be unique")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if got := tb.Get(id1); got == nil || got.Dims[0] != 10 {
		t.Fatalf("Get(%d) = %v", id1, got)
	}
	if tb.Get(999) != nil {
		t.Fatal("Get of missing ID should be nil")
	}
	if got := tb.TotalBytes([]ID{id1, id2}); got != 30*4 {
		t.Fatalf("TotalBytes = %d, want 120", got)
	}
	if got := tb.TotalBytes([]ID{id1, 999}); got != 40 {
		t.Fatalf("TotalBytes with missing ID = %d, want 40", got)
	}
	if got := tb.BytesByCategory(Weight); got != 40 {
		t.Fatalf("BytesByCategory(Weight) = %d, want 40", got)
	}
	all := tb.All()
	if len(all) != 2 || all[0].ID != id1 || all[1].ID != id2 {
		t.Fatalf("All() order wrong: %v", all)
	}
}

func TestTablePut(t *testing.T) {
	tb := NewTable()
	tb.Put(Tensor{ID: 7, Dims: []int64{3}, DType: Float32})
	if tb.Get(7) == nil {
		t.Fatal("Put tensor missing")
	}
	// Next Add must not collide with the explicit ID.
	id := tb.Add(Tensor{Dims: []int64{1}, DType: Float32})
	if id <= 7 {
		t.Fatalf("Add after Put(7) returned %d", id)
	}
}

func TestTensorString(t *testing.T) {
	tn := Tensor{ID: 42, Dims: []int64{64, 3}, DType: Float32, Category: Input}
	want := "t42 float32[64,3] input"
	if got := tn.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
