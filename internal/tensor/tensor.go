// Package tensor describes the tensors recorded in TrioSim traces. A trace's
// second table (the tensor table) stores, for every tensor the training
// process touches, its dimensions, element type, and category. TrioSim uses
// this metadata to compute how many bytes must move when a tensor is not
// resident on the GPU that needs it.
package tensor

import (
	"fmt"
	"strings"
)

// ID uniquely identifies a tensor within one trace.
type ID int64

// Category classifies a tensor's role in training, mirroring the categories
// the Execution Graph Observer reports.
type Category int

// Tensor categories.
const (
	Unknown    Category = iota
	Input               // mini-batch input data (lives on the host until fetched)
	Weight              // model parameter
	Gradient            // parameter gradient
	Activation          // intermediate layer output
	Output              // final model output
)

var categoryNames = [...]string{
	"unknown", "input", "weight", "gradient", "activation", "output",
}

// String returns the lowercase category name.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// ParseCategory converts a category name back to a Category.
func ParseCategory(s string) (Category, error) {
	for i, n := range categoryNames {
		if n == s {
			return Category(i), nil
		}
	}
	return Unknown, fmt.Errorf("tensor: unknown category %q", s)
}

// DType is a tensor element type.
type DType int

// Element types used by the traced workloads.
const (
	Float32 DType = iota
	Float16
	BFloat16
	Int64
	Int32
	Int8
)

var dtypeInfo = []struct {
	name string
	size int64
}{
	{"float32", 4},
	{"float16", 2},
	{"bfloat16", 2},
	{"int64", 8},
	{"int32", 4},
	{"int8", 1},
}

// String returns the lowercase dtype name.
func (d DType) String() string {
	if d < 0 || int(d) >= len(dtypeInfo) {
		return fmt.Sprintf("dtype(%d)", int(d))
	}
	return dtypeInfo[d].name
}

// Size returns the element size in bytes.
func (d DType) Size() int64 {
	if d < 0 || int(d) >= len(dtypeInfo) {
		return 0
	}
	return dtypeInfo[d].size
}

// ParseDType converts a dtype name back to a DType.
func ParseDType(s string) (DType, error) {
	for i, info := range dtypeInfo {
		if info.name == s {
			return DType(i), nil
		}
	}
	return Float32, fmt.Errorf("tensor: unknown dtype %q", s)
}

// Tensor is one row of the trace's tensor table.
type Tensor struct {
	ID       ID
	Dims     []int64
	DType    DType
	Category Category
	// BatchDim is the index of the dimension that scales with batch size,
	// or -1 if the tensor does not scale (e.g., weights). The extrapolator
	// uses it to resize tensors when the simulated batch size differs from
	// the traced one.
	BatchDim int
}

// NumElements returns the product of the dims (0 for a dimensionless tensor).
func (t *Tensor) NumElements() int64 {
	if len(t.Dims) == 0 {
		return 0
	}
	n := int64(1)
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Bytes returns the tensor's size in bytes.
func (t *Tensor) Bytes() int64 {
	return t.NumElements() * t.DType.Size()
}

// ScaledToBatch returns a copy of the tensor resized to batch size newBatch,
// assuming the traced batch size was oldBatch. Tensors without a batch
// dimension are returned unchanged (weights do not scale with batch size).
func (t *Tensor) ScaledToBatch(oldBatch, newBatch int64) Tensor {
	out := *t
	out.Dims = append([]int64(nil), t.Dims...)
	if t.BatchDim < 0 || t.BatchDim >= len(out.Dims) || oldBatch <= 0 {
		return out
	}
	perSample := out.Dims[t.BatchDim] / oldBatch
	if perSample <= 0 {
		perSample = 1
	}
	out.Dims[t.BatchDim] = perSample * newBatch
	return out
}

// ShardDim returns a copy of the tensor with dimension dim divided across
// parts shards (ceiling division so shards cover the tensor). Tensor
// parallelism uses this to size per-GPU partitions.
func (t *Tensor) ShardDim(dim, parts int) Tensor {
	out := *t
	out.Dims = append([]int64(nil), t.Dims...)
	if dim < 0 || dim >= len(out.Dims) || parts <= 1 {
		return out
	}
	d := out.Dims[dim]
	out.Dims[dim] = (d + int64(parts) - 1) / int64(parts)
	return out
}

// String renders the tensor compactly, e.g. "t42 float32[64,3,224,224] input".
func (t *Tensor) String() string {
	dims := make([]string, len(t.Dims))
	for i, d := range t.Dims {
		dims[i] = fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("t%d %s[%s] %s",
		t.ID, t.DType, strings.Join(dims, ","), t.Category)
}

// Table is the tensor table of a trace: every tensor indexed by ID.
type Table struct {
	byID   map[ID]*Tensor
	nextID ID
}

// NewTable returns an empty tensor table.
func NewTable() *Table {
	return &Table{byID: map[ID]*Tensor{}}
}

// Add registers a tensor, assigning it a fresh ID, and returns that ID.
func (tb *Table) Add(t Tensor) ID {
	tb.nextID++
	t.ID = tb.nextID
	tb.byID[t.ID] = &t
	return t.ID
}

// Put registers a tensor under its existing ID (used when decoding traces).
func (tb *Table) Put(t Tensor) {
	tb.byID[t.ID] = &t
	if t.ID > tb.nextID {
		tb.nextID = t.ID
	}
}

// Get returns the tensor with the given ID, or nil.
func (tb *Table) Get(id ID) *Tensor {
	return tb.byID[id]
}

// Len returns the number of tensors in the table.
func (tb *Table) Len() int { return len(tb.byID) }

// All returns the tensors in ascending ID order.
func (tb *Table) All() []*Tensor {
	out := make([]*Tensor, 0, len(tb.byID))
	for id := ID(1); id <= tb.nextID; id++ {
		if t, ok := tb.byID[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Clone returns a deep copy of the table: tensors and their Dims slices are
// copied, so mutations of either table never alias the other. The trace
// cache uses this for its copy-on-write contract.
func (tb *Table) Clone() *Table {
	out := &Table{
		byID:   make(map[ID]*Tensor, len(tb.byID)),
		nextID: tb.nextID,
	}
	for id, t := range tb.byID {
		c := *t
		c.Dims = append([]int64(nil), t.Dims...)
		out.byID[id] = &c
	}
	return out
}

// TotalBytes sums the bytes of the tensors with the given IDs.
func (tb *Table) TotalBytes(ids []ID) int64 {
	var total int64
	for _, id := range ids {
		if t := tb.byID[id]; t != nil {
			total += t.Bytes()
		}
	}
	return total
}

// BytesByCategory sums tensor bytes for one category across the whole table.
func (tb *Table) BytesByCategory(c Category) int64 {
	var total int64
	for _, t := range tb.byID {
		if t.Category == c {
			total += t.Bytes()
		}
	}
	return total
}
