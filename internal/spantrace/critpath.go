// Critical-path extraction over the completed span DAG.
//
// The DAG's edges are (a) the task graph's dependency edges mapped onto the
// recorded spans and (b) serialization edges between consecutive compute
// spans on the same GPU lane (the executor runs each GPU's compute stream
// serially, a constraint the task graph itself does not encode). A backward
// CPM pass over the observed times yields per-span slack; the chain walk
// from the last-finishing span back through its latest-finishing
// predecessors yields the makespan-setting path, with every gap between
// consecutive steps attributed as idle (network queueing, lane waits, or
// event-ordering latency the span DAG does not model as an edge).
package spantrace

import (
	"fmt"
	"math"
	"sort"
)

// Attribution partitions the critical path's length by category. The fields
// sum to Report.LengthSec exactly: every step's duration lands in its
// category (compute spans split into nominal compute and fault stretch),
// and the gaps between steps land in IdleSec.
type Attribution struct {
	ComputeSec      float64 `json:"compute_sec"`
	CommSec         float64 `json:"comm_sec"`
	HostLoadSec     float64 `json:"hostload_sec"`
	IdleSec         float64 `json:"idle_sec"`
	FaultStretchSec float64 `json:"fault_stretch_sec"`
	// OtherSec is barrier and delay time on the chain.
	OtherSec float64 `json:"other_sec"`
}

// Sum returns the partition total (== Report.LengthSec).
func (a Attribution) Sum() float64 {
	return a.ComputeSec + a.CommSec + a.HostLoadSec + a.IdleSec +
		a.FaultStretchSec + a.OtherSec
}

// Step is one span on the critical path.
type Step struct {
	// Task is the task-graph id.
	Task     int    `json:"task"`
	Name     string `json:"name"`
	Track    string `json:"track"`
	Category string `json:"category"`
	// Collective is the owning collective's label, if any.
	Collective string  `json:"collective,omitempty"`
	StartSec   float64 `json:"start_sec"`
	EndSec     float64 `json:"end_sec"`
	// WaitSec is the idle gap between the previous step's end (or the log
	// base for the first step) and this step's start.
	WaitSec float64 `json:"wait_sec"`
	// FaultStretchSec is the portion of a compute step's duration beyond its
	// nominal (pre-stretch) duration.
	FaultStretchSec float64 `json:"fault_stretch_sec,omitempty"`
}

// SlackEntry is one near-critical span: how much later it could have
// finished without moving the makespan.
type SlackEntry struct {
	Task     int     `json:"task"`
	Name     string  `json:"name"`
	Track    string  `json:"track"`
	Category string  `json:"category"`
	StartSec float64 `json:"start_sec"`
	DurSec   float64 `json:"dur_sec"`
	SlackSec float64 `json:"slack_sec"`
}

// Report is the critical-path analysis of one run.
type Report struct {
	// MakespanSec is the span log's total extent (last end − first start).
	MakespanSec float64 `json:"makespan_sec"`
	// LengthSec is the critical chain's total length including gaps. It
	// equals MakespanSec by construction: the chain spans base→last-end and
	// every gap is accounted as idle.
	LengthSec   float64     `json:"length_sec"`
	Steps       []Step      `json:"steps"`
	Attribution Attribution `json:"attribution"`
	// Slack is the top-K near-critical stragglers, ascending slack.
	Slack []SlackEntry `json:"slack,omitempty"`
}

// DefaultSlackTop is the slack-table size CriticalPath uses for topK <= 0.
const DefaultSlackTop = 10

// slackEps ignores float-noise slack when classifying spans as critical.
const slackEps = 1e-12

// CriticalPath extracts the makespan-setting chain from the log. topK bounds
// the slack table (<= 0 means DefaultSlackTop). Fault-window spans are
// markers, not work, and are excluded from the DAG.
func (l *Log) CriticalPath(topK int) *Report {
	if topK <= 0 {
		topK = DefaultSlackTop
	}
	rep := &Report{}

	// Working set: indices of executed-activity spans. Fault windows and
	// request lifetimes overlay the activities that realize them, so they
	// are annotations, not path segments.
	work := make([]int, 0, len(l.Spans))
	for i := range l.Spans {
		if c := l.Spans[i].Cat; c != Fault && c != Request {
			work = append(work, i)
		}
	}
	if len(work) == 0 {
		return rep
	}

	base, endMax := l.Spans[work[0]].Start, l.Spans[work[0]].End
	for _, i := range work[1:] {
		sp := &l.Spans[i]
		if sp.Start.Before(base) {
			base = sp.Start
		}
		if sp.End.After(endMax) {
			endMax = sp.End
		}
	}
	rep.MakespanSec = (endMax - base).Seconds()

	preds := l.buildEdges(work)

	// Backward CPM pass in reverse topological order: LF(sink) = endMax;
	// LF(u) = min over successors v of (LF(v) − dur(v)); slack = LF − End.
	// Kahn order (not start-time order) keeps zero-duration same-timestamp
	// chains — barrier cascades — correctly ordered.
	order, ok := topoOrder(len(l.Spans), work, preds)
	if !ok {
		// A cyclic span DAG cannot happen for a validated task graph; fall
		// back to an empty report rather than guessing.
		return rep
	}
	lf := make([]float64, len(l.Spans))
	hasSucc := make([]bool, len(l.Spans))
	for i := range lf {
		lf[i] = math.Inf(1)
	}
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		sp := &l.Spans[v]
		if !hasSucc[v] {
			lf[v] = endMax.Seconds()
		}
		ls := lf[v] - sp.Duration().Seconds()
		for _, u := range preds[v] {
			if ls < lf[u] {
				lf[u] = ls
			}
			hasSucc[u] = true
		}
	}

	// Chain walk: start at the last-finishing span (ties: lowest index) and
	// repeatedly step to the latest-finishing predecessor.
	cur := work[0]
	for _, i := range work[1:] {
		if l.Spans[i].End.After(l.Spans[cur].End) {
			cur = i
		}
	}
	var chain []int
	for {
		chain = append(chain, cur)
		best := -1
		for _, u := range preds[cur] {
			if best < 0 || l.Spans[u].End.After(l.Spans[best].End) ||
				(l.Spans[u].End == l.Spans[best].End && u < best) {
				best = u
			}
		}
		if best < 0 {
			break
		}
		cur = best
	}
	// chain is end→start; reverse it.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}

	prevEnd := base
	for _, i := range chain {
		sp := &l.Spans[i]
		wait := (sp.Start - prevEnd).Seconds()
		if wait < 0 {
			// Overlapping predecessor (a dependency that finished after this
			// span started cannot happen; lane edges guarantee ordering).
			// Clamp defensively so the partition still sums.
			wait = 0
		}
		dur := sp.Duration().Seconds()
		stretch := 0.0
		if sp.Cat == Compute && sp.Nominal.After(0) &&
			sp.Duration().After(sp.Nominal) {
			stretch = (sp.Duration() - sp.Nominal).Seconds()
		}
		step := Step{
			Task:            int(sp.TaskID),
			Name:            l.Name(sp.Name),
			Track:           l.Name(sp.Track),
			Category:        sp.Cat.String(),
			Collective:      l.Name(sp.Coll),
			StartSec:        sp.Start.Seconds(),
			EndSec:          sp.End.Seconds(),
			WaitSec:         wait,
			FaultStretchSec: stretch,
		}
		rep.Steps = append(rep.Steps, step)
		rep.Attribution.IdleSec += wait
		switch sp.Cat {
		case Compute:
			rep.Attribution.ComputeSec += dur - stretch
			rep.Attribution.FaultStretchSec += stretch
		case Comm:
			rep.Attribution.CommSec += dur
		case HostLoad:
			rep.Attribution.HostLoadSec += dur
		default:
			rep.Attribution.OtherSec += dur
		}
		rep.LengthSec += wait + dur
		prevEnd = sp.End
	}
	// Any tail gap (the last-finishing span IS the chain tail, so none) —
	// LengthSec now equals endMax − base up to float association order.

	// Slack table: positive-slack spans with real duration, ascending slack.
	var entries []SlackEntry
	for _, i := range work {
		sp := &l.Spans[i]
		s := lf[i] - sp.End.Seconds()
		if s <= slackEps || !sp.End.After(sp.Start) {
			continue
		}
		entries = append(entries, SlackEntry{
			Task:     int(sp.TaskID),
			Name:     l.Name(sp.Name),
			Track:    l.Name(sp.Track),
			Category: sp.Cat.String(),
			StartSec: sp.Start.Seconds(),
			DurSec:   sp.Duration().Seconds(),
			SlackSec: s,
		})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].SlackSec != entries[b].SlackSec {
			return entries[a].SlackSec < entries[b].SlackSec
		}
		if entries[a].StartSec != entries[b].StartSec {
			return entries[a].StartSec < entries[b].StartSec
		}
		return entries[a].Task < entries[b].Task
	})
	if len(entries) > topK {
		entries = entries[:topK]
	}
	rep.Slack = entries
	return rep
}

// buildEdges assembles the predecessor lists: task-graph dependencies plus
// per-GPU lane serialization between consecutive compute spans.
func (l *Log) buildEdges(work []int) [][]int {
	preds := make([][]int, len(l.Spans))
	l.Deps(func(from, to int) {
		preds[to] = append(preds[to], from)
	})

	// Lane edges: compute spans grouped by track, ordered by start time
	// (record order breaks exact ties — it is completion order, which for a
	// serial lane equals start order).
	byTrack := map[int32][]int{}
	var tracks []int32
	for _, i := range work {
		sp := &l.Spans[i]
		if sp.Cat != Compute {
			continue
		}
		if _, ok := byTrack[sp.Track]; !ok {
			tracks = append(tracks, sp.Track)
		}
		byTrack[sp.Track] = append(byTrack[sp.Track], i)
	}
	sort.Slice(tracks, func(a, b int) bool { return tracks[a] < tracks[b] })
	for _, tr := range tracks {
		lane := byTrack[tr]
		sort.SliceStable(lane, func(a, b int) bool {
			return l.Spans[lane[a]].Start.Before(l.Spans[lane[b]].Start)
		})
		for k := 1; k < len(lane); k++ {
			preds[lane[k]] = append(preds[lane[k]], lane[k-1])
		}
	}
	return preds
}

// topoOrder returns a topological order of the working set (Kahn). ok is
// false if the edge set is cyclic.
func topoOrder(n int, work []int, preds [][]int) ([]int, bool) {
	indeg := make([]int, n)
	succs := make([][]int, n)
	inWork := make([]bool, n)
	for _, i := range work {
		inWork[i] = true
	}
	for _, v := range work {
		for _, u := range preds[v] {
			indeg[v]++
			succs[u] = append(succs[u], v)
		}
	}
	queue := make([]int, 0, len(work))
	for _, i := range work {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(work))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range succs[u] {
			indeg[v]--
			if indeg[v] == 0 && inWork[v] {
				queue = append(queue, v)
			}
		}
	}
	return order, len(order) == len(work)
}

// Validate checks the report's internal invariants: the chain covers the
// makespan exactly, the attribution partitions the length, and steps are
// time-ordered. Mirrors telemetry.RunReport.Validate's style so triosimvet
// -report can gate on it.
func (r *Report) Validate() error {
	tol := 1e-6 * math.Max(1e-12, r.MakespanSec)
	if r.LengthSec < 0 || r.MakespanSec < 0 {
		return fmt.Errorf("spantrace: negative critical-path report")
	}
	if r.LengthSec > r.MakespanSec+tol {
		return fmt.Errorf("spantrace: critical path %g exceeds makespan %g",
			r.LengthSec, r.MakespanSec)
	}
	if d := math.Abs(r.Attribution.Sum() - r.LengthSec); d > tol {
		return fmt.Errorf(
			"spantrace: attribution sums to %g, path length is %g",
			r.Attribution.Sum(), r.LengthSec)
	}
	prev := math.Inf(-1)
	for _, st := range r.Steps {
		if st.EndSec < st.StartSec {
			return fmt.Errorf("spantrace: step %q ends before it starts", st.Name)
		}
		if st.StartSec < prev-tol {
			return fmt.Errorf("spantrace: step %q starts before its predecessor ended", st.Name)
		}
		prev = st.EndSec
	}
	for i := 1; i < len(r.Slack); i++ {
		if r.Slack[i].SlackSec < r.Slack[i-1].SlackSec {
			return fmt.Errorf("spantrace: slack table out of order")
		}
	}
	return nil
}
