// Chrome trace-event export: the completed span Log rendered as a JSON
// object Perfetto and chrome://tracing load directly. Layout:
//
//   - pid 1 "GPU lanes": one thread per GPU compute stream;
//   - pid 2 "Network": one thread per transfer route ("gpu0->gpu1");
//   - pid 3 "Scheduler": the sync (barrier/delay) lane and fault windows;
//   - pid 4 "Simulator": counter tracks (queue depth, in-flight flows,
//     re-solve count, per-link cumulative bytes, self-profiling totals).
//
// Cross-track dependency edges become flow arrows ("s"/"f" pairs). All
// events are emitted sorted by (pid, tid, ts), so per-track timestamps are
// monotonic — the property ValidateChromeTrace (and the check.sh smoke leg)
// gates on.
package spantrace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// chromeEvent is one trace event. Field presence follows the trace-event
// format: "X" complete events carry ts/dur, "M" metadata carries args,
// "s"/"f" flow events carry an id, "C" counters carry args values.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object-format trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Export process ids.
const (
	pidGPU     = 1
	pidNetwork = 2
	pidSched   = 3
	pidCounter = 4
)

// maxFlowArrows caps emitted dependency arrows: graphs have O(tasks) edges
// and Perfetto renders tens of thousands fine, but beyond that the arrows
// are visual noise and double the file size. The dropped count is reported
// in otherData (no silent truncation).
const maxFlowArrows = 20000

// trackKey classifies a track name into its process.
func trackPID(name string) int {
	switch {
	case strings.HasPrefix(name, "gpu") && !strings.Contains(name, "->"):
		return pidGPU
	case strings.Contains(name, "->"):
		return pidNetwork
	default:
		return pidSched
	}
}

// trackLess orders tracks within one process: GPU lanes numerically
// ("gpu2" before "gpu10"), everything else lexicographically.
func trackLess(a, b string) bool {
	na, aok := numericSuffix(a, "gpu")
	nb, bok := numericSuffix(b, "gpu")
	if aok && bok {
		return na < nb
	}
	return a < b
}

// numericSuffix parses names like "gpu12".
func numericSuffix(s, prefix string) (int, bool) {
	rest, ok := strings.CutPrefix(s, prefix)
	if !ok || rest == "" {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}

// WriteChromeTrace renders the log as a Chrome trace-event JSON object.
// Output is deterministic: same log, same bytes.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	// Assign (pid, tid) per track.
	type trackInfo struct {
		name string
		pid  int
		tid  int
	}
	byID := map[int32]*trackInfo{}
	var perPID [5][]*trackInfo
	for i := range l.Spans {
		id := l.Spans[i].Track
		if byID[id] != nil {
			continue
		}
		ti := &trackInfo{name: l.Name(id), pid: trackPID(l.Name(id))}
		byID[id] = ti
		perPID[ti.pid] = append(perPID[ti.pid], ti)
	}
	for _, tracks := range perPID {
		sort.Slice(tracks, func(a, b int) bool {
			return trackLess(tracks[a].name, tracks[b].name)
		})
		for i, ti := range tracks {
			ti.tid = i + 1
		}
	}

	var events []chromeEvent

	// Process and thread metadata.
	procNames := map[int]string{
		pidGPU:     "GPU lanes",
		pidNetwork: "Network",
		pidSched:   "Scheduler",
		pidCounter: "Simulator",
	}
	for _, pid := range []int{pidGPU, pidNetwork, pidSched, pidCounter} {
		if pid != pidCounter && len(perPID[pid]) == 0 {
			continue
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": procNames[pid]},
		})
		for _, ti := range perPID[pid] {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: ti.tid,
				Args: map[string]any{"name": ti.name},
			})
		}
	}

	// Complete events, sorted per track by (ts, -dur, task) so enclosing
	// spans precede nested ones and per-track timestamps are monotonic.
	xs := make([]int, 0, len(l.Spans))
	for i := range l.Spans {
		xs = append(xs, i)
	}
	sort.SliceStable(xs, func(a, b int) bool {
		sa, sb := &l.Spans[xs[a]], &l.Spans[xs[b]]
		ta, tb := byID[sa.Track], byID[sb.Track]
		if ta.pid != tb.pid {
			return ta.pid < tb.pid
		}
		if ta.tid != tb.tid {
			return ta.tid < tb.tid
		}
		if sa.Start != sb.Start {
			return sa.Start.Before(sb.Start)
		}
		if sa.End != sb.End {
			return sa.End.After(sb.End)
		}
		return sa.TaskID < sb.TaskID
	})
	for _, i := range xs {
		sp := &l.Spans[i]
		ti := byID[sp.Track]
		dur := sp.Duration().Microseconds()
		ev := chromeEvent{
			Name: l.Name(sp.Name),
			Cat:  sp.Cat.String(),
			Ph:   "X",
			Ts:   sp.Start.Microseconds(),
			Dur:  &dur,
			PID:  ti.pid,
			TID:  ti.tid,
		}
		args := map[string]any{}
		if sp.TaskID >= 0 {
			args["task"] = sp.TaskID
		}
		if sp.Cat == Compute && sp.Nominal.After(0) &&
			sp.Duration().After(sp.Nominal) {
			args["nominal_us"] = sp.Nominal.Microseconds()
		}
		if sp.Coll >= 0 {
			args["collective"] = l.Name(sp.Coll)
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
	}

	// Flow arrows for cross-track dependency edges.
	arrowID := 0
	dropped := 0
	l.Deps(func(from, to int) {
		u, v := &l.Spans[from], &l.Spans[to]
		if u.Track == v.Track {
			return // same-lane edges are visible as adjacency
		}
		if arrowID >= maxFlowArrows {
			dropped++
			return
		}
		arrowID++
		tu, tv := byID[u.Track], byID[v.Track]
		events = append(events,
			chromeEvent{
				Name: "dep", Cat: "dep", Ph: "s", ID: arrowID,
				Ts: u.End.Microseconds(), PID: tu.pid, TID: tu.tid,
			},
			chromeEvent{
				Name: "dep", Cat: "dep", Ph: "f", BP: "e", ID: arrowID,
				Ts: v.Start.Microseconds(), PID: tv.pid, TID: tv.tid,
			})
	})

	// Counter tracks, one per series, sorted by name then time.
	counters := append([]*CounterSeries(nil), l.Counters...)
	sort.Slice(counters, func(a, b int) bool {
		return counters[a].Name < counters[b].Name
	})
	for _, cs := range counters {
		for _, s := range cs.Samples {
			events = append(events, chromeEvent{
				Name: cs.Name, Ph: "C", Ts: s.T.Microseconds(),
				PID: pidCounter, TID: 0,
				Args: map[string]any{"value": s.V},
			})
		}
	}

	tr := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	if dropped > 0 {
		tr.OtherData = map[string]any{"dropped_flow_arrows": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// WriteChromeTraceFile writes the trace to path (creating/truncating it).
func (l *Log) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rawEvent is the schema-check view of one trace event.
type rawEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	ID   *int           `json:"id"`
	Args map[string]any `json:"args"`
}

// rawTrace accepts both the object format ({"traceEvents": [...]}) and the
// bare-array format.
type rawTrace struct {
	TraceEvents []rawEvent `json:"traceEvents"`
}

// validPhases are the trace-event phase codes the validator accepts.
var validPhases = map[string]bool{
	"X": true, "B": true, "E": true, "M": true, "C": true,
	"s": true, "t": true, "f": true, "b": true, "e": true, "n": true,
	"i": true, "I": true,
}

// ValidateChromeTrace schema-checks an exported trace: every event has a
// known ph; "X" events carry ts >= 0, dur >= 0, pid and tid, with
// non-decreasing timestamps per (pid, tid) track; counters carry values;
// flow arrows pair up ("f" ids must have a matching "s"). This is the
// check.sh smoke gate (triosimvet -trace-check).
func ValidateChromeTrace(data []byte) error {
	var tr rawTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		var arr []rawEvent
		if aerr := json.Unmarshal(data, &arr); aerr != nil {
			return fmt.Errorf("spantrace: trace is neither an event object nor an array: %w", err)
		}
		tr.TraceEvents = arr
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("spantrace: trace has no events")
	}
	lastTs := map[[2]int]float64{}
	flowStarts := map[int]bool{}
	var flowEnds []int
	for i, ev := range tr.TraceEvents {
		if ev.Ph == "" {
			return fmt.Errorf("spantrace: event %d has no ph", i)
		}
		if !validPhases[ev.Ph] {
			return fmt.Errorf("spantrace: event %d has unknown ph %q", i, ev.Ph)
		}
		switch ev.Ph {
		case "X":
			if ev.Ts == nil || ev.PID == nil || ev.TID == nil {
				return fmt.Errorf("spantrace: X event %d (%q) missing ts/pid/tid",
					i, ev.Name)
			}
			if *ev.Ts < 0 {
				return fmt.Errorf("spantrace: X event %d (%q) has negative ts",
					i, ev.Name)
			}
			if ev.Dur != nil && *ev.Dur < 0 {
				return fmt.Errorf("spantrace: X event %d (%q) has negative dur",
					i, ev.Name)
			}
			key := [2]int{*ev.PID, *ev.TID}
			if prev, ok := lastTs[key]; ok && *ev.Ts < prev {
				return fmt.Errorf(
					"spantrace: X event %d (%q) goes back in time on track pid=%d tid=%d (%g < %g)",
					i, ev.Name, *ev.PID, *ev.TID, *ev.Ts, prev)
			}
			lastTs[key] = *ev.Ts
		case "C":
			if ev.Ts == nil || ev.PID == nil {
				return fmt.Errorf("spantrace: C event %d (%q) missing ts/pid",
					i, ev.Name)
			}
			if len(ev.Args) == 0 {
				return fmt.Errorf("spantrace: C event %d (%q) has no values",
					i, ev.Name)
			}
		case "s", "t", "f":
			if ev.ID == nil || ev.Ts == nil {
				return fmt.Errorf("spantrace: flow event %d (%q) missing id/ts",
					i, ev.Name)
			}
			if ev.Ph == "s" {
				flowStarts[*ev.ID] = true
			} else if ev.Ph == "f" {
				flowEnds = append(flowEnds, *ev.ID)
			}
		case "M":
			if ev.Name == "" {
				return fmt.Errorf("spantrace: metadata event %d has no name", i)
			}
		}
	}
	for _, id := range flowEnds {
		if !flowStarts[id] {
			return fmt.Errorf("spantrace: flow end id %d has no matching start", id)
		}
	}
	return nil
}
