package spantrace

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"triosim/internal/sim"
	"triosim/internal/task"
)

// fixtureLog builds a small mixed log: compute on two GPUs, a dependent
// cross-GPU transfer, a barrier, a fault window, and a counter series.
func fixtureLog(t *testing.T) *Log {
	t.Helper()
	g := task.NewGraph()
	a := g.AddCompute(0, 1, "fwd0")
	b := g.AddCompute(1, 1, "fwd1")
	x := g.AddComm(0, 1, 4096, "grad-xfer")
	bar := g.AddBarrier("step-sync")
	g.AddDep(a, x)
	g.AddDep(x, bar)
	g.AddDep(b, bar)
	if err := g.Validate(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	r := NewRecorder(g, nil)
	r.TaskDone(a, 0, 1)
	r.TaskDone(b, 0, 1)
	r.TaskDone(x, 1, 1.5)
	r.TaskDone(bar, 1.5, 1.5)
	r.AddFault("gpu1-straggler", 0.5, 1)
	r.Sample(CounterQueueDepth, 0, 3)
	r.Sample(CounterQueueDepth, 1, 5)
	return r.Finalize()
}

// TestChromeTraceRoundTrip: the exporter's output passes its own validator
// and carries the expected track structure.
func TestChromeTraceRoundTrip(t *testing.T) {
	l := fixtureLog(t)
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	data := buf.Bytes()
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("ValidateChromeTrace rejected own output: %v", err)
	}

	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var threads, durs, counters, flowS, flowF int
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				threads++
				if args, ok := ev["args"].(map[string]any); ok {
					names[args["name"].(string)] = true
				}
			}
		case "X":
			durs++
		case "C":
			counters++
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	// gpu0, gpu1, one transfer route, sync, faults.
	for _, want := range []string{"gpu0", "gpu1", "sync", "faults"} {
		if !names[want] {
			t.Fatalf("missing thread_name %q (have %v)", want, names)
		}
	}
	if durs != 5 {
		t.Fatalf("got %d X events, want 5 (4 tasks + 1 fault)", durs)
	}
	if counters != 2 {
		t.Fatalf("got %d C events, want 2", counters)
	}
	// Cross-track dep edges: a→x, x→bar, b→bar (a,b same-track-to-other all
	// cross); each edge is one s + one f.
	if flowS == 0 || flowS != flowF {
		t.Fatalf("flow arrows unbalanced: %d starts, %d finishes", flowS, flowF)
	}
}

// TestChromeTraceMonotonicPerTrack: exported X events never step backwards
// within one (pid, tid) — the property Perfetto's importer needs.
func TestChromeTraceMonotonicPerTrack(t *testing.T) {
	g := task.NewGraph()
	// Record completion out of start order on one lane: the exporter must
	// still sort per track.
	a := g.AddCompute(0, 1, "late")
	b := g.AddCompute(0, 1, "early")
	r := NewRecorder(g, nil)
	r.TaskDone(a, 5, 6)
	r.TaskDone(b, 0, 1)
	var buf bytes.Buffer
	if err := r.Finalize().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("monotonicity: %v", err)
	}
}

func TestChromeTraceFileAndEmptyLog(t *testing.T) {
	r := NewRecorder(task.NewGraph(), nil)
	path := t.TempDir() + "/trace.json"
	if err := r.Finalize().WriteChromeTraceFile(path); err != nil {
		t.Fatalf("WriteChromeTraceFile: %v", err)
	}
	// An empty log still exports a valid (metadata-only) trace.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("empty-log trace invalid: %v", err)
	}
}

// TestValidateChromeTraceRejects: the validator catches the malformations
// the check.sh smoke leg gates on.
func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [`,
		"no events":     `{"traceEvents": []}`,
		"unknown phase": `{"traceEvents": [{"ph":"Z","name":"x","ts":0,"pid":1,"tid":1}]}`,
		"X missing ts":  `{"traceEvents": [{"ph":"X","name":"x","pid":1,"tid":1,"dur":1}]}`,
		"X negative ts": `{"traceEvents": [{"ph":"X","name":"x","ts":-1,"dur":1,"pid":1,"tid":1}]}`,
		"X backwards ts": `{"traceEvents": [
			{"ph":"X","name":"a","ts":10,"dur":1,"pid":1,"tid":1},
			{"ph":"X","name":"b","ts":5,"dur":1,"pid":1,"tid":1}]}`,
		"C missing args": `{"traceEvents": [{"ph":"C","name":"c","ts":0,"pid":4,"tid":0}]}`,
		"f without s":    `{"traceEvents": [{"ph":"f","name":"dep","id":7,"ts":0,"pid":1,"tid":1,"bp":"e"}]}`,
	}
	for name, in := range cases {
		if err := ValidateChromeTrace([]byte(in)); err == nil {
			t.Errorf("%s: validator accepted malformed trace", name)
		}
	}
	// Distinct tracks may interleave timestamps freely.
	ok := `{"traceEvents": [
		{"ph":"X","name":"a","ts":10,"dur":1,"pid":1,"tid":1},
		{"ph":"X","name":"b","ts":5,"dur":1,"pid":1,"tid":2}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("cross-track interleaving rejected: %v", err)
	}
	// Bare-array form (what chrome://tracing also accepts).
	arr := `[{"ph":"X","name":"a","ts":0,"dur":1,"pid":1,"tid":1}]`
	if err := ValidateChromeTrace([]byte(arr)); err != nil {
		t.Errorf("bare-array form rejected: %v", err)
	}
}

// TestRecorderInterning: repeated labels collapse to one id; distinct lanes
// get distinct tracks.
func TestRecorderInterning(t *testing.T) {
	g := task.NewGraph()
	a := g.AddCompute(0, 1, "step")
	b := g.AddCompute(0, 1, "step")
	c := g.AddCompute(1, 1, "step")
	r := NewRecorder(g, nil)
	r.TaskDone(a, 0, 1)
	r.TaskDone(b, 1, 2)
	r.TaskDone(c, 0, 1)
	l := r.Finalize()
	if l.Spans[0].Name != l.Spans[1].Name || l.Spans[1].Name != l.Spans[2].Name {
		t.Fatalf("same label interned to different ids: %d %d %d",
			l.Spans[0].Name, l.Spans[1].Name, l.Spans[2].Name)
	}
	if l.Spans[0].Track != l.Spans[1].Track {
		t.Fatalf("same lane interned to different tracks")
	}
	if l.Spans[0].Track == l.Spans[2].Track {
		t.Fatalf("distinct lanes share a track id")
	}
	if got := l.Name(l.Spans[2].Track); got != "gpu1" {
		t.Fatalf("track name = %q, want gpu1", got)
	}
}

// TestCounterDecimation: a series past maxCounterSamples is thinned, keeps a
// bounded length, stays time-ordered, and retains first and (near-)last
// points.
func TestCounterDecimation(t *testing.T) {
	r := NewRecorder(nil, nil)
	n := maxCounterSamples*2 + 100
	for i := 0; i < n; i++ {
		r.Sample("q", sim.VTime(i), float64(i))
	}
	l := r.Finalize()
	if len(l.Counters) != 1 {
		t.Fatalf("got %d series, want 1", len(l.Counters))
	}
	cs := l.Counters[0]
	if len(cs.Samples) > maxCounterSamples {
		t.Fatalf("series not bounded: %d > %d", len(cs.Samples),
			maxCounterSamples)
	}
	if len(cs.Samples) < maxCounterSamples/4 {
		t.Fatalf("series over-thinned: %d", len(cs.Samples))
	}
	for i := 1; i < len(cs.Samples); i++ {
		if !cs.Samples[i].T.After(cs.Samples[i-1].T) {
			t.Fatalf("samples out of order at %d", i)
		}
	}
	if cs.Samples[0].T != 0 {
		t.Fatalf("first sample lost: t=%v", cs.Samples[0].T)
	}
}

// TestCounterSameTimestampOverwrite: bursts at one timestamp keep only the
// latest value.
func TestCounterSameTimestampOverwrite(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.Sample("q", 1, 10)
	r.Sample("q", 1, 20)
	r.Sample("q", 2, 30)
	cs := r.Finalize().Counters[0]
	if len(cs.Samples) != 2 || cs.Samples[0].V != 20 || cs.Samples[1].V != 30 {
		t.Fatalf("got %+v, want [(1,20) (2,30)]", cs.Samples)
	}
}
