package spantrace

import (
	"math"
	"testing"

	"triosim/internal/sim"
	"triosim/internal/task"
)

// record drives the recorder as the executor would: TaskDone per task with
// hand-chosen observed windows.
type window struct {
	t          *task.Task
	start, end sim.VTime
}

func buildLog(t *testing.T, g *task.Graph, ws []window) *Log {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("fixture graph invalid: %v", err)
	}
	r := NewRecorder(g, nil)
	for _, w := range ws {
		r.TaskDone(w.t, w.start, w.end)
	}
	return r.Finalize()
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %g, want %g", name, got, want)
	}
}

// TestCriticalPathSerialChain pins the simplest invariant: on a serial chain
// of back-to-back compute tasks, the critical path IS the whole run — length
// equals makespan and the attribution is 100% compute.
func TestCriticalPathSerialChain(t *testing.T) {
	g := task.NewGraph()
	a := g.AddCompute(0, 1, "a")
	b := g.AddCompute(0, 1, "b")
	c := g.AddCompute(0, 1, "c")
	g.AddDep(a, b)
	g.AddDep(b, c)
	l := buildLog(t, g, []window{{a, 0, 1}, {b, 1, 2}, {c, 2, 3}})

	rep := l.CriticalPath(0)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	approx(t, "MakespanSec", rep.MakespanSec, 3)
	approx(t, "LengthSec", rep.LengthSec, 3)
	approx(t, "ComputeSec", rep.Attribution.ComputeSec, 3)
	approx(t, "IdleSec", rep.Attribution.IdleSec, 0)
	approx(t, "Sum", rep.Attribution.Sum(), rep.LengthSec)
	if len(rep.Steps) != 3 {
		t.Fatalf("got %d steps, want 3", len(rep.Steps))
	}
	for i, want := range []string{"a", "b", "c"} {
		if rep.Steps[i].Name != want {
			t.Fatalf("step %d = %q, want %q", i, rep.Steps[i].Name, want)
		}
	}
	if len(rep.Slack) != 0 {
		t.Fatalf("serial chain has no slack, got %d entries", len(rep.Slack))
	}
}

// TestCriticalPathForkJoin checks slack extraction: the short branch of a
// fork-join carries exactly the slack the long branch denies it, and the
// slack table is ascending.
func TestCriticalPathForkJoin(t *testing.T) {
	g := task.NewGraph()
	a := g.AddCompute(0, 1, "a")            // 0..1
	b := g.AddCompute(0, 2, "b-long")       // 1..3 (critical branch)
	c := g.AddCompute(1, 1, "c-short")      // 1..2, slack 1
	d := g.AddCompute(0, 1, "d-join")       // 3..4
	e := g.AddCompute(2, 0.5, "e-unjoined") // 0..0.5, slack 3.5
	g.AddDep(a, b)
	g.AddDep(a, c)
	g.AddDep(b, d)
	g.AddDep(c, d)
	l := buildLog(t, g, []window{
		{a, 0, 1}, {e, 0, 0.5}, {c, 1, 2}, {b, 1, 3}, {d, 3, 4},
	})

	rep := l.CriticalPath(0)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	approx(t, "MakespanSec", rep.MakespanSec, 4)
	approx(t, "LengthSec", rep.LengthSec, 4)
	var names []string
	for _, st := range rep.Steps {
		names = append(names, st.Name)
	}
	want := []string{"a", "b-long", "d-join"}
	if len(names) != len(want) {
		t.Fatalf("chain %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("chain %v, want %v", names, want)
		}
	}
	// c could finish at LF(c)=3 (d's latest start); e at 4.
	if len(rep.Slack) != 2 {
		t.Fatalf("got %d slack entries, want 2: %+v", len(rep.Slack), rep.Slack)
	}
	if rep.Slack[0].Name != "c-short" || rep.Slack[1].Name != "e-unjoined" {
		t.Fatalf("slack order %q, %q; want c-short, e-unjoined",
			rep.Slack[0].Name, rep.Slack[1].Name)
	}
	approx(t, "slack(c)", rep.Slack[0].SlackSec, 1)
	approx(t, "slack(e)", rep.Slack[1].SlackSec, 3.5)
}

// TestCriticalPathIdleGap: a dependency gap (network queueing the DAG does
// not model as an edge) lands in IdleSec and the partition still covers the
// makespan exactly.
func TestCriticalPathIdleGap(t *testing.T) {
	g := task.NewGraph()
	a := g.AddCompute(0, 1, "a")
	b := g.AddCompute(0, 1, "b")
	g.AddDep(a, b)
	l := buildLog(t, g, []window{{a, 0, 1}, {b, 2, 3}}) // 1s gap

	rep := l.CriticalPath(0)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	approx(t, "LengthSec", rep.LengthSec, 3)
	approx(t, "ComputeSec", rep.Attribution.ComputeSec, 2)
	approx(t, "IdleSec", rep.Attribution.IdleSec, 1)
	approx(t, "step b WaitSec", rep.Steps[1].WaitSec, 1)
}

// TestCriticalPathFaultStretch: a compute span observed longer than its
// nominal duration splits into nominal compute and fault stretch, exactly.
func TestCriticalPathFaultStretch(t *testing.T) {
	g := task.NewGraph()
	a := g.AddCompute(0, 1, "a") // nominal 1s
	b := g.AddCompute(0, 1, "b")
	g.AddDep(a, b)
	// a runs 0..1.5 under a 1.5× straggler; b runs clean.
	l := buildLog(t, g, []window{{a, 0, 1.5}, {b, 1.5, 2.5}})

	rep := l.CriticalPath(0)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	approx(t, "LengthSec", rep.LengthSec, 2.5)
	approx(t, "ComputeSec", rep.Attribution.ComputeSec, 2)
	approx(t, "FaultStretchSec", rep.Attribution.FaultStretchSec, 0.5)
	approx(t, "step a stretch", rep.Steps[0].FaultStretchSec, 0.5)
	approx(t, "step b stretch", rep.Steps[1].FaultStretchSec, 0)
}

// TestCriticalPathExcludesFaultWindows: fault-window marker spans are not
// work — they must not extend the makespan or join the DAG.
func TestCriticalPathExcludesFaultWindows(t *testing.T) {
	g := task.NewGraph()
	a := g.AddCompute(0, 1, "a")
	r := NewRecorder(g, nil)
	r.TaskDone(a, 0, 1)
	r.AddFault("link0-degrade", 0, 10) // far past the last task
	l := r.Finalize()

	rep := l.CriticalPath(0)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	approx(t, "MakespanSec", rep.MakespanSec, 1)
	if len(rep.Steps) != 1 || rep.Steps[0].Name != "a" {
		t.Fatalf("chain %+v, want just a", rep.Steps)
	}
}

// TestCriticalPathLaneSerialization: two independent compute tasks on one GPU
// serialize through the lane edge even without a task-graph dependency, so
// the chain covers both.
func TestCriticalPathLaneSerialization(t *testing.T) {
	g := task.NewGraph()
	a := g.AddCompute(0, 1, "a")
	b := g.AddCompute(0, 1, "b") // no dep on a — lane edge only
	l := buildLog(t, g, []window{{a, 0, 1}, {b, 1, 2}})

	rep := l.CriticalPath(0)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	approx(t, "LengthSec", rep.LengthSec, 2)
	if len(rep.Steps) != 2 {
		t.Fatalf("got %d steps, want 2 (lane edge missing?)", len(rep.Steps))
	}
}

// TestCriticalPathEmptyLog: no spans → empty report that still validates.
func TestCriticalPathEmptyLog(t *testing.T) {
	r := NewRecorder(task.NewGraph(), nil)
	rep := r.Finalize().CriticalPath(0)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rep.MakespanSec != 0 || len(rep.Steps) != 0 {
		t.Fatalf("empty log produced %+v", rep)
	}
}

// TestCriticalPathTopK bounds the slack table.
func TestCriticalPathTopK(t *testing.T) {
	g := task.NewGraph()
	long := g.AddCompute(0, 10, "long")
	ws := []window{{long, 0, 10}}
	for i := 0; i < 5; i++ {
		sp := g.AddCompute(i+1, 1, "spare")
		ws = append(ws, window{sp, 0, 1})
	}
	l := buildLog(t, g, ws)
	rep := l.CriticalPath(2)
	if len(rep.Slack) != 2 {
		t.Fatalf("topK=2 kept %d entries", len(rep.Slack))
	}
}

// TestReportValidateRejects exercises the validator's failure modes.
func TestReportValidateRejects(t *testing.T) {
	bad := []*Report{
		{MakespanSec: 1, LengthSec: 2,
			Attribution: Attribution{ComputeSec: 2}}, // length > makespan
		{MakespanSec: 2, LengthSec: 2,
			Attribution: Attribution{ComputeSec: 1}}, // partition mismatch
		{MakespanSec: 1, LengthSec: 1,
			Attribution: Attribution{ComputeSec: 1},
			Steps:       []Step{{Name: "x", StartSec: 1, EndSec: 0}}},
		{MakespanSec: 1, LengthSec: 1,
			Attribution: Attribution{ComputeSec: 1},
			Slack:       []SlackEntry{{SlackSec: 2}, {SlackSec: 1}}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted an invalid report", i)
		}
	}
}
