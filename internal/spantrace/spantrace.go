// Package spantrace records a deterministic, virtual-time span log of one
// simulation: one span per executed task (compute, communication, host
// staging, barrier, delay) and per fault window, plus counter series sampled
// from the engine and the flow network. The recorder hooks into the run the
// same way sim.DigestHook and the telemetry Collector do — as a task.Observer,
// a network.FlowObserver, and an engine hook — and is strictly observation-
// only: it never schedules events, so the dispatched event schedule (and the
// replay digest) is byte-identical with or without it. core's regression test
// pins that identity.
//
// The completed Log supports critical-path extraction (critpath.go) and
// Chrome trace-event export for Perfetto / chrome://tracing (chrome.go).
package spantrace

import (
	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
)

// Category classifies a span for attribution and coloring.
type Category uint8

// Span categories. The first five mirror task.Kind; Fault marks an injected
// fault window rather than an executed task, and Request marks a serving
// request's arrival-to-delivery lifetime.
const (
	Compute Category = iota
	Comm
	HostLoad
	Barrier
	Delay
	Fault
	Request
)

var categoryNames = [...]string{
	"compute", "comm", "hostload", "barrier", "delay", "fault", "request",
}

// String returns the category name.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "unknown"
}

// Span is one recorded activity. Name, Track, and Coll are interned string
// ids resolved through the owning Log (Log.Name); the record itself is a
// small value type so the hot recording path moves no pointers and triggers
// no per-span allocation.
type Span struct {
	// TaskID is the task-graph id, or -1 for fault-window spans.
	TaskID int32
	// Name is the interned activity label.
	Name int32
	// Track is the interned lane name ("gpu0", "gpu0->gpu1", "sync", ...).
	Track int32
	// Coll is the interned collective label, or -1.
	Coll int32
	Cat  Category
	// Start and End are the observed virtual times.
	Start, End sim.VTime
	// Nominal is the pre-stretch predicted duration for Compute and Delay
	// spans (task.Task.Duration). An observed duration above Nominal is
	// fault-injected straggler stretch; the critical-path attribution
	// accounts it separately.
	Nominal sim.VTime
}

// Duration returns End-Start.
func (s *Span) Duration() sim.VTime { return s.End - s.Start }

// CounterSample is one point of a counter series.
type CounterSample struct {
	T sim.VTime
	V float64
}

// CounterSeries is a named virtual-time counter track (queue depth, in-flight
// flows, cumulative link bytes, solver re-solve count, ...).
type CounterSeries struct {
	Name    string
	Samples []CounterSample

	// cum accumulates for cumulative series (link bytes).
	cum float64
	// stride/skip implement deterministic decimation: when a series hits
	// maxCounterSamples the recorder halves it in place and doubles the
	// stride, so long runs keep a bounded, evenly thinned series instead of
	// silently truncating the tail.
	stride int
	skip   int
}

// maxCounterSamples bounds one series before decimation kicks in.
const maxCounterSamples = 1 << 14

// sample appends (t, v), overwriting the previous point when the timestamp
// has not advanced (same-timestamp bursts carry no extra information).
func (cs *CounterSeries) sample(t sim.VTime, v float64) {
	if n := len(cs.Samples); n > 0 && !t.After(cs.Samples[n-1].T) {
		cs.Samples[n-1].V = v
		return
	}
	if cs.stride > 1 {
		cs.skip++
		if cs.skip < cs.stride {
			return
		}
		cs.skip = 0
	}
	if len(cs.Samples) >= maxCounterSamples {
		// Halve in place: keep every other sample, double the stride.
		kept := cs.Samples[:0]
		for i := 0; i < len(cs.Samples); i += 2 {
			kept = append(kept, cs.Samples[i])
		}
		cs.Samples = kept
		if cs.stride == 0 {
			cs.stride = 1
		}
		cs.stride *= 2
		cs.skip = 0
	}
	cs.Samples = append(cs.Samples, CounterSample{T: t, V: v})
}

// spanChunk is the pooled span-storage chunk size. Chunks are allocated whole
// and never reallocated, so steady-state recording is one indexed store.
const spanChunk = 4096

// Recorder accumulates spans and counters during a run. All methods are
// invoked on the engine goroutine; the recorder never schedules events.
//
// Construct with NewRecorder, register via task.Executor.Observe /
// network observer / sim engine hook, and call Finalize after the engine
// drains.
type Recorder struct {
	graph *task.Graph
	topo  *network.Topology

	// Span storage: fixed-size chunks; cur aliases the last chunk and curLen
	// indexes into it, so the hot push is an indexed store (no append).
	chunks [][]Span
	cur    []Span
	curLen int
	total  int

	// byTask maps task id -> span index+1 (0 = not recorded).
	byTask []int32

	// String interning: every Span.Name/Track/Coll indexes names.
	strs  map[string]int32
	names []string

	// gpuTracks caches interned "gpu<N>" track ids (+1) by GPU index;
	// routeTracks caches interned "a->b" track ids (+1) by packed
	// (src, dst) node pair, so the hot path never builds track strings.
	gpuTracks   []int32
	routeTracks map[uint64]int32
	syncTrackID int32 // +1

	// Counter series, in first-touch order (export sorts).
	counters   []*CounterSeries
	counterIdx map[string]int

	// Queue-depth sampling state: the engine hook tracks the running max
	// within the current timestamp and flushes one sample when virtual time
	// advances, bounding the series by distinct dispatch times.
	queueAt    sim.VTime
	queueCur   int
	queueArmed bool

	recomputes int
}

// Counter track names used by the recorder itself.
const (
	CounterQueueDepth    = "sim.event_queue_depth"
	CounterQueueHighWatr = "sim.event_queue_high_water"
	CounterFlowsInFlight = "net.flows_in_flight"
	CounterRateResolves  = "net.rate_resolves_total"
	CounterSolveWallMs   = "net.solve_wall_ms"
	CounterCacheTrHits   = "tracecache.trace_hits"
	CounterCacheTrMiss   = "tracecache.trace_misses"
	CounterCacheTmHits   = "tracecache.timer_hits"
	CounterCacheTmMiss   = "tracecache.timer_misses"
	CounterCacheBytes    = "tracecache.bytes"
)

// syncTrackName is the lane barriers and delays are recorded on, and
// faultTrackName the lane for injected fault windows.
const (
	syncTrackName  = "sync"
	faultTrackName = "faults"
)

// NewRecorder builds a recorder for one run of g. topo supplies node names
// for communication track labels and may be nil (tracks fall back to raw
// node ids).
func NewRecorder(g *task.Graph, topo *network.Topology) *Recorder {
	r := &Recorder{
		graph:       g,
		topo:        topo,
		strs:        map[string]int32{},
		routeTracks: map[uint64]int32{},
		counterIdx:  map[string]int{},
	}
	if g != nil {
		r.byTask = make([]int32, g.Len())
	}
	r.grow()
	return r
}

var _ task.Observer = (*Recorder)(nil)
var _ network.FlowObserver = (*Recorder)(nil)

// TaskDone implements task.Observer: it records one span per completed task.
// This is the span-recording hot path — one call per task in the graph — so
// it is a struct store into pooled chunk storage plus interned-id lookups;
// the cold branches (chunk growth, first-sight labels) live in their own
// un-annotated methods.
//
//triosim:hotpath
func (r *Recorder) TaskDone(t *task.Task, start, end sim.VTime) {
	var sp Span
	sp.TaskID = int32(t.ID)
	sp.Start = start
	sp.End = end
	sp.Name = r.intern(t.Label)
	sp.Coll = -1
	switch t.Kind {
	case task.Compute:
		sp.Cat = Compute
		sp.Nominal = t.Duration
		sp.Track = r.gpuTrack(t.GPU)
	case task.Comm:
		sp.Cat = Comm
		sp.Track = r.routeTrack(t.Src, t.Dst)
		if t.Collective != "" {
			sp.Coll = r.intern(t.Collective)
		}
	case task.HostLoad:
		sp.Cat = HostLoad
		sp.Track = r.routeTrack(t.Src, t.Dst)
	case task.Barrier:
		sp.Cat = Barrier
		sp.Track = r.syncTrack()
	case task.Delay:
		sp.Cat = Delay
		sp.Nominal = t.Duration
		sp.Track = r.syncTrack()
	}
	idx := r.push(sp)
	if id := int(sp.TaskID); id >= 0 && id < len(r.byTask) {
		r.byTask[id] = int32(idx) + 1
	}
}

// push stores one span in the chunked arena and returns its index.
//
//triosim:hotpath
func (r *Recorder) push(sp Span) int {
	if r.curLen == len(r.cur) {
		r.grow()
	}
	r.cur[r.curLen] = sp
	r.curLen++
	idx := r.total
	r.total++
	return idx
}

// grow appends a fresh chunk (amortized: once per spanChunk spans).
func (r *Recorder) grow() {
	c := make([]Span, spanChunk)
	r.chunks = append(r.chunks, c)
	r.cur = c
	r.curLen = 0
}

// intern returns the id of s, assigning one on first sight. The lookup is a
// map read (no allocation); insertion is amortized by the number of distinct
// labels, not by span count.
//
//triosim:hotpath
func (r *Recorder) intern(s string) int32 {
	if id, ok := r.strs[s]; ok {
		return id
	}
	return r.internSlow(s)
}

// internSlow registers a first-sight string (cold path).
func (r *Recorder) internSlow(s string) int32 {
	id := int32(len(r.names))
	r.names = append(r.names, s)
	r.strs[s] = id
	return id
}

// gpuTrack returns the interned "gpu<N>" track id.
//
//triosim:hotpath
func (r *Recorder) gpuTrack(gpu int) int32 {
	if gpu >= 0 && gpu < len(r.gpuTracks) {
		if id := r.gpuTracks[gpu]; id != 0 {
			return id - 1
		}
	}
	return r.gpuTrackSlow(gpu)
}

func (r *Recorder) gpuTrackSlow(gpu int) int32 {
	if gpu < 0 {
		return r.intern(syncTrackName)
	}
	for gpu >= len(r.gpuTracks) {
		r.gpuTracks = append(r.gpuTracks, 0)
	}
	id := r.intern(gpuName(gpu))
	r.gpuTracks[gpu] = id + 1
	return id
}

func gpuName(gpu int) string {
	// Matches the executor's timeline lane names.
	return "gpu" + itoa(gpu)
}

// itoa is a minimal non-negative integer formatter (avoids fmt on cold paths
// that still run once per GPU/link).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// routeTrack returns the interned "src->dst" track id for a transfer,
// keyed by the packed node pair so the hot path builds no strings.
//
//triosim:hotpath
func (r *Recorder) routeTrack(src, dst network.NodeID) int32 {
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	if id, ok := r.routeTracks[key]; ok {
		return id - 1
	}
	return r.routeTrackSlow(key, src, dst)
}

func (r *Recorder) routeTrackSlow(key uint64, src, dst network.NodeID) int32 {
	id := r.intern(r.nodeName(src) + "->" + r.nodeName(dst))
	r.routeTracks[key] = id + 1
	return id
}

// nodeName resolves a topology node's display name.
func (r *Recorder) nodeName(n network.NodeID) string {
	if r.topo != nil && int(n) >= 0 && int(n) < len(r.topo.Nodes) {
		if name := r.topo.Nodes[n].Name; name != "" {
			return name
		}
	}
	return "node" + itoa(int(n))
}

// syncTrack returns the interned barrier/delay lane id.
//
//triosim:hotpath
func (r *Recorder) syncTrack() int32 {
	if r.syncTrackID != 0 {
		return r.syncTrackID - 1
	}
	id := r.intern(syncTrackName)
	r.syncTrackID = id + 1
	return id
}

// AddFault records one injected fault window as a span on the "faults" track.
func (r *Recorder) AddFault(label string, start, end sim.VTime) {
	r.AddSpan(faultTrackName, label, Fault, start, end)
}

// AddSpan records one externally produced span (no task identity) on the
// named track. The serving layer uses it for request-lifetime spans.
func (r *Recorder) AddSpan(track, label string, cat Category,
	start, end sim.VTime) {
	r.push(Span{
		TaskID: -1,
		Name:   r.intern(label),
		Track:  r.intern(track),
		Coll:   -1,
		Cat:    cat,
		Start:  start,
		End:    end,
	})
}

// series returns (creating on first use) the named counter series.
func (r *Recorder) series(name string) *CounterSeries {
	if i, ok := r.counterIdx[name]; ok {
		return r.counters[i]
	}
	cs := &CounterSeries{Name: name}
	r.counterIdx[name] = len(r.counters)
	r.counters = append(r.counters, cs)
	return cs
}

// Sample records one externally observed counter point (core injects
// end-of-run totals like queue high-water and trace-cache hit counts here).
func (r *Recorder) Sample(name string, t sim.VTime, v float64) {
	r.series(name).sample(t, v)
}

// FlowFinished implements network.FlowObserver: cumulative per-link traffic
// counters, one series per directed link the flow crossed.
func (r *Recorder) FlowFinished(route []network.DirLink, bytes float64,
	start, end sim.VTime) {
	for _, dl := range route {
		cs := r.linkSeries(dl)
		cs.cum += bytes
		cs.sample(end, cs.cum)
	}
}

// linkSeries returns the cumulative-bytes series for one link direction.
func (r *Recorder) linkSeries(dl network.DirLink) *CounterSeries {
	return r.series("link." + r.linkName(dl) + ".bytes")
}

// linkName renders one link direction as "a->b" via topology node names.
func (r *Recorder) linkName(dl network.DirLink) string {
	if r.topo == nil || dl.Link < 0 || dl.Link >= len(r.topo.Links) {
		return "link" + itoa(dl.Link)
	}
	lk := r.topo.Links[dl.Link]
	if dl.Forward {
		return r.nodeName(lk.A) + "->" + r.nodeName(lk.B)
	}
	return r.nodeName(lk.B) + "->" + r.nodeName(lk.A)
}

// RatesRecomputed implements network.FlowObserver: in-flight flow count and
// the cumulative max-min re-solve count, sampled at each recomputation.
func (r *Recorder) RatesRecomputed(flows int, now sim.VTime) {
	r.recomputes++
	r.series(CounterFlowsInFlight).sample(now, float64(flows))
	r.series(CounterRateResolves).sample(now, float64(r.recomputes))
}

// EngineHook returns the queue-depth sampling hook. pending is the engine's
// pending-event probe (sim.SerialEngine.Pending); the hook records the
// per-timestamp maximum depth, flushed when virtual time advances.
func (r *Recorder) EngineHook(pending func() int) sim.Hook {
	return sim.HookFunc(func(ctx sim.HookCtx) {
		if ctx.Pos != sim.HookPosAfterEvent || pending == nil {
			return
		}
		d := pending()
		switch {
		case !r.queueArmed:
			r.queueArmed = true
			r.queueAt, r.queueCur = ctx.Now, d
		case ctx.Now.After(r.queueAt):
			r.series(CounterQueueDepth).sample(r.queueAt, float64(r.queueCur))
			r.queueAt, r.queueCur = ctx.Now, d
		default:
			if d > r.queueCur {
				r.queueCur = d
			}
		}
	})
}

// Log is the completed, immutable span log Finalize produces.
type Log struct {
	// Spans in record (completion) order.
	Spans []Span
	// Counters in first-touch order.
	Counters []*CounterSeries

	names  []string
	byTask []int32
	graph  *task.Graph
}

// Finalize flattens the recorder into a Log. Call once, after the engine has
// drained; the recorder must not be reused afterwards.
func (r *Recorder) Finalize() *Log {
	if r.queueArmed {
		r.series(CounterQueueDepth).sample(r.queueAt, float64(r.queueCur))
		r.queueArmed = false
	}
	spans := make([]Span, 0, r.total)
	for i, c := range r.chunks {
		if i == len(r.chunks)-1 {
			c = c[:r.curLen]
		}
		spans = append(spans, c...)
	}
	return &Log{
		Spans:    spans,
		Counters: r.counters,
		names:    r.names,
		byTask:   r.byTask,
		graph:    r.graph,
	}
}

// Name resolves an interned string id ("" for -1 / out of range).
func (l *Log) Name(id int32) string {
	if id < 0 || int(id) >= len(l.names) {
		return ""
	}
	return l.names[id]
}

// SpanOf returns the span index recorded for task id, or -1.
func (l *Log) SpanOf(taskID int) int {
	if taskID < 0 || taskID >= len(l.byTask) {
		return -1
	}
	return int(l.byTask[taskID]) - 1
}

// Deps calls fn for every dependency edge (from, to) between recorded spans,
// in deterministic (to, dep-order) order. Fault spans have no edges.
func (l *Log) Deps(fn func(from, to int)) {
	if l.graph == nil {
		return
	}
	for i := range l.Spans {
		sp := &l.Spans[i]
		if sp.TaskID < 0 {
			continue
		}
		t := l.graph.Tasks[sp.TaskID]
		for _, d := range t.Deps() {
			if j := l.SpanOf(d); j >= 0 {
				fn(j, i)
			}
		}
	}
}

// Sample appends one counter point to a finalized log (core attaches
// end-of-run totals — e.g. trace-cache counters — after Finalize).
func (l *Log) Sample(name string, t sim.VTime, v float64) {
	for _, cs := range l.Counters {
		if cs.Name == name {
			cs.sample(t, v)
			return
		}
	}
	cs := &CounterSeries{Name: name}
	cs.sample(t, v)
	l.Counters = append(l.Counters, cs)
}
