package experiments

import (
	"context"
	"fmt"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/serving"
	"triosim/internal/sweep"
)

// Serving — request-level inference-serving study (not a paper figure; the
// serving extension, see docs/SERVING.md). Each transformer serves a seeded
// Poisson workload on P2 under each scheduler; the figure reports
// throughput, latency tails, batching efficiency, and GPU utilization.
func Serving(quick bool) (*Figure, error) {
	return ServingOpts(quick, Serial)
}

func servingModels(quick bool) []string {
	if quick {
		return []string{"gpt2"}
	}
	return []string{"gpt2", "llama32-1b"}
}

// ServingOpts is Serving with sweep options.
func ServingOpts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:    "serving",
		Title: "Inference serving: scheduler comparison under Poisson load",
		Columns: []string{"throughput_rps", "p50_ms", "p99_ms", "p999_ms",
			"ttft_p99_ms", "mean_batch", "gpu_util"},
	}
	requests := 192
	if quick {
		requests = 48
	}
	type cellID struct {
		model string
		sched string
	}
	var grid []cellID
	for _, m := range servingModels(quick) {
		for _, s := range serving.Policies() {
			grid = append(grid, cellID{m, s})
		}
	}
	cells := make([]sweep.Job[vals], len(grid))
	for i, c := range grid {
		c := c
		cells[i] = func(ctx context.Context) (vals, error) {
			p := gpu.P2
			cfg := core.ServeConfig{
				Platform:  &p,
				Telemetry: true,
				Context:   ctx,
				Serving: serving.Config{
					Model:     c.model,
					Scheduler: c.sched,
					MaxBatch:  8,
					Arrivals: serving.ArrivalConfig{
						Seed: 42, Rate: 8000, Requests: requests,
						PromptMin: 16, PromptMax: 128,
						OutputMin: 8, OutputMax: 64,
						PriorityLevels: 4,
					},
				},
			}
			if opts.TraceDir != "" {
				cfg.SpanTrace = true
			}
			res, err := core.Serve(cfg)
			if err != nil {
				return nil, fmt.Errorf("serving/%s/%s: %w", c.model,
					c.sched, err)
			}
			if opts.TraceDir != "" && res.Spans != nil {
				name := sweep.SanitizeName(fmt.Sprintf("serving_%s_%s",
					c.model, c.sched))
				if err := res.Spans.WriteChromeTraceFile(
					opts.TraceDir + "/" + name + ".trace.json"); err != nil {
					return nil, fmt.Errorf("experiments: write trace: %w",
						err)
				}
			}
			m := res.Metrics
			var util float64
			for _, rs := range m.PerReplica {
				util += rs.Utilization
			}
			util /= float64(len(m.PerReplica))
			return vals{
				"throughput_rps": m.ThroughputRPS,
				"p50_ms":         m.Latency.P50Sec * 1e3,
				"p99_ms":         m.Latency.P99Sec * 1e3,
				"p999_ms":        m.Latency.P999Sec * 1e3,
				"ttft_p99_ms":    m.TTFT.P99Sec * 1e3,
				"mean_batch":     m.MeanBatch,
				"gpu_util":       util,
			}, nil
		}
	}
	out, err := runCells(opts, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range grid {
		f.Add(c.model, c.sched, out[i])
	}
	f.Note("schedulers: %v; seeded Poisson arrivals, continuous batching "+
		"with full-KV admission reservations", serving.Policies())
	return f, nil
}
