package experiments

import (
	"context"
	"time"

	"triosim/internal/core"
	"triosim/internal/sweep"
)

// Options controls how a figure generator executes its scenario grid. Every
// figure is a set of independent cells (one workload under one
// configuration); the cells fan out on the sweep worker pool and their rows
// are merged back in grid order, so the figure's output is byte-identical
// at any worker count (the golden tests pin this).
type Options struct {
	// Workers is the sweep pool size: 0 = GOMAXPROCS, 1 = serial.
	Workers int
	// Timeout bounds each cell's simulations (0 = unbounded).
	Timeout time.Duration
	// Context cancels the remaining cells of a figure.
	Context context.Context
}

// Serial runs every cell sequentially on the calling goroutine — the
// configuration benchmarks use for a stable baseline, and the reference the
// parallel path is compared against.
var Serial = Options{Workers: 1}

func (o Options) sweep() sweep.Options {
	return sweep.Options{Workers: o.Workers, Timeout: o.Timeout,
		Context: o.Context}
}

// vals is one cell's named numeric outputs (a Row's Values).
type vals = map[string]float64

// runCells executes the cells on the sweep pool, returning outputs in cell
// order (first error aborts the figure).
func runCells[T any](o Options, cells []sweep.Job[T]) ([]T, error) {
	return sweep.Values(sweep.Run(o.sweep(), cells))
}

// validateCell runs prediction vs ground truth under ctx and returns the
// standard validation row values.
func validateCell(ctx context.Context, cfg core.Config) (vals, error) {
	cfg.Context = ctx
	cmp, err := core.Validate(cfg)
	if err != nil {
		return nil, err
	}
	return vals{
		"predicted_s": float64(cmp.Predicted),
		"hardware_s":  float64(cmp.Actual),
		"normalized":  cmp.Normalized,
		"error_pct":   cmp.Error * 100,
	}, nil
}
