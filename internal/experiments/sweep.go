package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"triosim/internal/core"
	"triosim/internal/sweep"
	"triosim/internal/tracecache"
)

// Options controls how a figure generator executes its scenario grid. Every
// figure is a set of independent cells (one workload under one
// configuration); the cells fan out on the sweep worker pool and their rows
// are merged back in grid order, so the figure's output is byte-identical
// at any worker count (the golden tests pin this).
type Options struct {
	// Workers is the sweep pool size: 0 = GOMAXPROCS, 1 = serial.
	Workers int
	// Timeout bounds each cell's simulations (0 = unbounded).
	Timeout time.Duration
	// Context cancels the remaining cells of a figure.
	Context context.Context
	// NoTraceCache disables the per-figure trace cache. By default every
	// figure shares one tracecache.Store across its cells, so the cells of,
	// say, a two-platform sweep collect each (model, batch, GPU) trace once.
	// Figure output is byte-identical either way (the golden tests compare
	// cache-on vs cache-off directly); the switch exists for A/B measurement.
	NoTraceCache bool
	// TraceDir, when non-empty, enables span tracing on every cell threaded
	// through cached() and writes each simulation's Chrome trace-event JSON
	// into the directory. Filenames are config-addressed (model, platform,
	// parallelism, GPU count, batch, iterations), so two cells running the
	// same configuration overwrite each other with identical bytes —
	// parallel-safe without coordination. The directory must exist.
	TraceDir string
	// cache is the figure run's shared store, installed by withCache at the
	// top of each figure generator.
	cache *tracecache.Store
}

// Serial runs every cell sequentially on the calling goroutine — the
// configuration benchmarks use for a stable baseline, and the reference the
// parallel path is compared against.
var Serial = Options{Workers: 1}

func (o Options) sweep() sweep.Options {
	return sweep.Options{Workers: o.Workers, Timeout: o.Timeout,
		Context: o.Context, NoTraceCache: o.NoTraceCache}
}

// withCache installs the figure run's shared trace cache (a no-op when
// disabled or already installed). Figure generators call it once, before
// building cells, so every cell closure captures the same store.
func (o Options) withCache() Options {
	if o.cache == nil && !o.NoTraceCache {
		o.cache = tracecache.New()
	}
	return o
}

// cached threads the figure's shared cache (and the trace-export switch)
// into one cell's Config.
func (o Options) cached(cfg core.Config) core.Config {
	if cfg.Cache == nil {
		cfg.Cache = o.cache
	}
	if o.TraceDir != "" {
		cfg.SpanTrace = true
	}
	return cfg
}

// cellName renders a config-addressed filename stem for one cell's trace.
func cellName(cfg core.Config) string {
	platform := "none"
	if cfg.Platform != nil {
		platform = cfg.Platform.Name
	}
	par := string(cfg.Parallelism)
	if par == "" {
		par = "single"
	}
	return sweep.SanitizeName(fmt.Sprintf("%s_%s_%s_g%d_b%d_i%d",
		cfg.Model, platform, par, cfg.NumGPUs, cfg.GlobalBatch,
		cfg.Iterations))
}

// exportSpans writes one simulation's Chrome trace into TraceDir (no-op when
// trace export is off or the run recorded no spans).
func (o Options) exportSpans(cfg core.Config, res *core.Result) error {
	if o.TraceDir == "" || res == nil || res.Spans == nil {
		return nil
	}
	path := filepath.Join(o.TraceDir, cellName(cfg)+".trace.json")
	if err := res.Spans.WriteChromeTraceFile(path); err != nil {
		return fmt.Errorf("experiments: write trace: %w", err)
	}
	return nil
}

// vals is one cell's named numeric outputs (a Row's Values).
type vals = map[string]float64

// runCells executes the cells on the sweep pool, returning outputs in cell
// order (first error aborts the figure).
func runCells[T any](o Options, cells []sweep.Job[T]) ([]T, error) {
	return sweep.Values(sweep.Run(o.sweep(), cells))
}

// validateCell runs prediction vs ground truth under ctx — with the figure's
// shared trace cache — and returns the standard validation row values.
func (o Options) validateCell(ctx context.Context, cfg core.Config) (vals, error) {
	cfg.Context = ctx
	cfg = o.cached(cfg)
	cmp, pred, _, err := core.ValidatePair(cfg)
	if err != nil {
		return nil, err
	}
	if err := o.exportSpans(cfg, pred); err != nil {
		return nil, err
	}
	return vals{
		"predicted_s": float64(cmp.Predicted),
		"hardware_s":  float64(cmp.Actual),
		"normalized":  cmp.Normalized,
		"error_pct":   cmp.Error * 100,
	}, nil
}
