package experiments

import (
	"context"
	"time"

	"triosim/internal/core"
	"triosim/internal/sweep"
	"triosim/internal/tracecache"
)

// Options controls how a figure generator executes its scenario grid. Every
// figure is a set of independent cells (one workload under one
// configuration); the cells fan out on the sweep worker pool and their rows
// are merged back in grid order, so the figure's output is byte-identical
// at any worker count (the golden tests pin this).
type Options struct {
	// Workers is the sweep pool size: 0 = GOMAXPROCS, 1 = serial.
	Workers int
	// Timeout bounds each cell's simulations (0 = unbounded).
	Timeout time.Duration
	// Context cancels the remaining cells of a figure.
	Context context.Context
	// NoTraceCache disables the per-figure trace cache. By default every
	// figure shares one tracecache.Store across its cells, so the cells of,
	// say, a two-platform sweep collect each (model, batch, GPU) trace once.
	// Figure output is byte-identical either way (the golden tests compare
	// cache-on vs cache-off directly); the switch exists for A/B measurement.
	NoTraceCache bool
	// cache is the figure run's shared store, installed by withCache at the
	// top of each figure generator.
	cache *tracecache.Store
}

// Serial runs every cell sequentially on the calling goroutine — the
// configuration benchmarks use for a stable baseline, and the reference the
// parallel path is compared against.
var Serial = Options{Workers: 1}

func (o Options) sweep() sweep.Options {
	return sweep.Options{Workers: o.Workers, Timeout: o.Timeout,
		Context: o.Context, NoTraceCache: o.NoTraceCache}
}

// withCache installs the figure run's shared trace cache (a no-op when
// disabled or already installed). Figure generators call it once, before
// building cells, so every cell closure captures the same store.
func (o Options) withCache() Options {
	if o.cache == nil && !o.NoTraceCache {
		o.cache = tracecache.New()
	}
	return o
}

// cached threads the figure's shared cache into one cell's Config.
func (o Options) cached(cfg core.Config) core.Config {
	if cfg.Cache == nil {
		cfg.Cache = o.cache
	}
	return cfg
}

// vals is one cell's named numeric outputs (a Row's Values).
type vals = map[string]float64

// runCells executes the cells on the sweep pool, returning outputs in cell
// order (first error aborts the figure).
func runCells[T any](o Options, cells []sweep.Job[T]) ([]T, error) {
	return sweep.Values(sweep.Run(o.sweep(), cells))
}

// validateCell runs prediction vs ground truth under ctx — with the figure's
// shared trace cache — and returns the standard validation row values.
func (o Options) validateCell(ctx context.Context, cfg core.Config) (vals, error) {
	cfg.Context = ctx
	cmp, err := core.Validate(o.cached(cfg))
	if err != nil {
		return nil, err
	}
	return vals{
		"predicted_s": float64(cmp.Predicted),
		"hardware_s":  float64(cmp.Actual),
		"normalized":  cmp.Normalized,
		"error_pct":   cmp.Error * 100,
	}, nil
}
