package experiments

import (
	"context"
	"fmt"

	"triosim/internal/core"
	"triosim/internal/faults"
	"triosim/internal/gpu"
	"triosim/internal/sim"
	"triosim/internal/sweep"
)

// Resilience — fault-injection and checkpoint/restart study (not a paper
// figure; this reproduction's resilience extension, see docs/RESILIENCE.md).
// Each workload runs fault-free and under a grid of canonical fault
// scenarios (stragglers, link degradation, outage, GPU failure with
// checkpointing); the figure reports the slowdown and goodput of each.
func Resilience(quick bool) (*Figure, error) {
	return ResilienceOpts(quick, Serial, nil, 0)
}

// faultScenario builds one grid cell's schedule from the workload's
// fault-free makespan (so windows scale with the run).
type faultScenario struct {
	name  string
	build func(h sim.VTime) *faults.Schedule
}

// resilienceScenarios is the canonical grid. h is the fault-free makespan.
func resilienceScenarios() []faultScenario {
	return []faultScenario{
		{"baseline", func(sim.VTime) *faults.Schedule { return nil }},
		{"straggler-1.5x", func(h sim.VTime) *faults.Schedule {
			return &faults.Schedule{Events: []faults.Event{{
				Kind: faults.GPUSlowdown, GPU: 1, Factor: 1.5,
				Start: h / 4, Duration: h,
			}}}
		}},
		{"straggler-2x", func(h sim.VTime) *faults.Schedule {
			return &faults.Schedule{Events: []faults.Event{{
				Kind: faults.GPUSlowdown, GPU: 1, Factor: 2,
				Start: h / 4, Duration: h,
			}}}
		}},
		{"link-degrade-4x", func(h sim.VTime) *faults.Schedule {
			return &faults.Schedule{Events: []faults.Event{{
				Kind: faults.LinkDegrade, Link: 0, Factor: 4,
				Start: h / 4, Duration: h,
			}}}
		}},
		{"link-down", func(h sim.VTime) *faults.Schedule {
			return &faults.Schedule{Events: []faults.Event{{
				Kind: faults.LinkDown, Link: 0,
				Start: h / 4, Duration: h / 4,
			}}}
		}},
		{"gpu-fail+ckpt", func(h sim.VTime) *faults.Schedule {
			return &faults.Schedule{
				Events: []faults.Event{{
					Kind: faults.GPUFail, GPU: 0, Start: h / 2,
				}},
				Checkpoint: &faults.Checkpoint{
					Interval: h / 5, Restart: h / 10,
				},
			}
		}},
	}
}

func resilienceModels(quick bool) []string {
	if quick {
		return []string{"resnet18"}
	}
	return []string{"resnet50", "gpt2"}
}

// ResilienceOpts is Resilience with sweep options plus two CLI hooks: a
// custom schedule (injected as an extra "custom" scenario) and a generator
// seed (an extra "seeded" scenario from faults.Generate, sized to each
// workload's fault-free horizon).
func ResilienceOpts(quick bool, opts Options, custom *faults.Schedule,
	seed int64) (*Figure, error) {

	f := &Figure{
		ID:      "resilience",
		Title:   "Fault injection: slowdown and goodput per scenario",
		Columns: []string{"total_s", "slowdown", "goodput", "degraded_s"},
	}
	scenarios := resilienceScenarios()
	if custom != nil {
		scenarios = append(scenarios, faultScenario{"custom",
			func(sim.VTime) *faults.Schedule { return custom }})
	}
	if seed != 0 {
		scenarios = append(scenarios, faultScenario{
			fmt.Sprintf("seeded-%d", seed),
			func(h sim.VTime) *faults.Schedule {
				p := gpu.P1
				topo := core.BuildTopology(&p)
				s, err := faults.Generate(seed, faults.GenConfig{
					NumGPUs:      len(topo.GPUs()),
					NumLinks:     len(topo.Links),
					Horizon:      h,
					LinkDegrades: 1,
					GPUSlowdowns: 1,
					GPUFails:     1,
					Checkpoint:   &faults.Checkpoint{Interval: h / 5},
				})
				if err != nil {
					// The generator only fails on config errors; surface it
					// as an (invalid) empty schedule so the cell reports it.
					return &faults.Schedule{Events: []faults.Event{{
						Kind: "generate-failed"}}}
				}
				return s
			}})
	}
	opts = opts.withCache()
	type cellID struct {
		model    string
		scenario int
	}
	var grid []cellID
	for _, m := range resilienceModels(quick) {
		for si := range scenarios {
			grid = append(grid, cellID{m, si})
		}
	}
	cells := make([]sweep.Job[vals], len(grid))
	for i, c := range grid {
		c := c
		cells[i] = func(ctx context.Context) (vals, error) {
			sc := scenarios[c.scenario]
			p := gpu.P1
			cfg := opts.cached(core.Config{
				Model:       c.model,
				Platform:    &p,
				Parallelism: core.DDP,
				TraceBatch:  traceBatchFor(c.model),
				Context:     ctx,
			})
			// Fault-free baseline anchors the horizon and the slowdown.
			base, err := core.Simulate(cfg)
			if err != nil {
				return nil, fmt.Errorf("resilience/%s/%s: %w", c.model,
					sc.name, err)
			}
			cfg.Faults = sc.build(base.TotalTime)
			res := base
			if cfg.Faults != nil {
				if res, err = core.Simulate(cfg); err != nil {
					return nil, fmt.Errorf("resilience/%s/%s: %w", c.model,
						sc.name, err)
				}
			}
			if err := opts.exportSpans(cfg, res); err != nil {
				return nil, err
			}
			v := vals{
				"total_s":  float64(res.TotalTime),
				"slowdown": float64(res.TotalTime) / float64(base.TotalTime),
				"goodput":  1,
			}
			if res.Goodput > 0 {
				v["goodput"] = res.Goodput
			}
			if cfg.Faults != nil {
				v["degraded_s"] = faults.DegradedSeconds(
					cfg.Faults.Windows(), res.TotalTime)
			}
			// Goodput reflects the extended (checkpoint/restart) run, so the
			// row's total follows it when failures occurred.
			if res.Resilience != nil && res.Resilience.Failures > 0 {
				v["total_s"] = float64(res.Resilience.TotalTime)
				v["slowdown"] = float64(res.Resilience.TotalTime) /
					float64(base.TotalTime)
			}
			return v, nil
		}
	}
	out, err := runCells(opts, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range grid {
		f.Add(c.model, scenarios[c.scenario].name, out[i])
	}
	f.Note("avg straggler-2x slowdown: %.3f",
		f.MeanValue("slowdown", "straggler-2x"))
	f.Note("avg gpu-fail+ckpt goodput: %.3f",
		f.MeanValue("goodput", "gpu-fail+ckpt"))
	addIntervalNote(f)
	return f, nil
}

// addIntervalNote sweeps checkpoint intervals for the first model's
// gpu-fail scenario and records the best one next to the Young–Daly
// approximation.
func addIntervalNote(f *Figure) {
	var h sim.VTime
	for i := range f.Rows {
		if f.Rows[i].Config == "baseline" {
			h = sim.VTime(f.Rows[i].Get("total_s"))
			break
		}
	}
	if h.AtOrBefore(0) {
		return
	}
	cost := h / 50
	base := faults.ResilienceConfig{
		Work:           h,
		CheckpointCost: cost,
		RestartCost:    h / 10,
		Failures:       []sim.VTime{h / 2},
	}
	var candidates []sim.VTime
	for _, div := range []float64{2, 4, 8, 16, 32} {
		candidates = append(candidates, h/sim.VTime(div))
	}
	results := sweep.Intervals(sweep.Options{Workers: 1}, base, candidates)
	best, err := sweep.BestInterval(results)
	if err != nil {
		return
	}
	f.Note("best checkpoint interval of %d candidates: %v (goodput %.3f); "+
		"Young–Daly (MTBF=makespan) suggests %v", len(candidates),
		best.Interval, best.Res.Goodput,
		faults.OptimalInterval(cost, h))
}
