package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// goldenFigure is the serialized form pinned in testdata: rows in order,
// values formatted to 12 significant digits (stable across rebuilds, below
// the noise floor of any real regression).
type goldenFigure struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Columns []string    `json:"columns"`
	Rows    []goldenRow `json:"rows"`
	Notes   []string    `json:"notes"`
}

type goldenRow struct {
	Model  string            `json:"model"`
	Config string            `json:"config"`
	Values map[string]string `json:"values"`
}

func goldenBytes(t *testing.T, f *Figure) []byte {
	t.Helper()
	g := goldenFigure{ID: f.ID, Title: f.Title, Columns: f.Columns,
		Notes: f.Notes}
	for _, r := range f.Rows {
		vals := map[string]string{}
		for k, v := range r.Values {
			vals[k] = fmt.Sprintf("%.12g", v)
		}
		g.Rows = append(g.Rows, goldenRow{Model: r.Model, Config: r.Config,
			Values: vals})
	}
	out, err := json.MarshalIndent(&g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// checkGolden regenerates the figure serially and in parallel, requires the
// two to be byte-identical, and pins the serial bytes against testdata.
// UPDATE_GOLDEN=1 rewrites the files.
func checkGolden(t *testing.T, id string,
	gen func(Options) (*Figure, error)) {
	t.Helper()

	serial, err := gen(Serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := gen(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sb := goldenBytes(t, serial)
	pb := goldenBytes(t, parallel)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("%s: parallel sweep output differs from serial", id)
	}

	path := filepath.Join("testdata", id+".golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, sb, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(sb, want) {
		t.Fatalf("%s: output differs from %s (rerun with UPDATE_GOLDEN=1 "+
			"after verifying the change is intended)", id, path)
	}
}

func TestGoldenTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure regeneration; run without -short")
	}
	checkGolden(t, "table1", func(o Options) (*Figure, error) {
		return Table1Opts(true, o)
	})
}

func TestGoldenFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure regeneration; run without -short")
	}
	checkGolden(t, "fig6", func(o Options) (*Figure, error) {
		return Fig6Opts(true, o)
	})
}

func TestGoldenFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure regeneration; run without -short")
	}
	checkGolden(t, "fig7", func(o Options) (*Figure, error) {
		return Fig7Opts(true, o)
	})
}

func TestGoldenResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure regeneration; run without -short")
	}
	checkGolden(t, "resilience", func(o Options) (*Figure, error) {
		return ResilienceOpts(true, o, nil, 0)
	})
}

func TestGoldenServing(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure regeneration; run without -short")
	}
	checkGolden(t, "serving", func(o Options) (*Figure, error) {
		return ServingOpts(true, o)
	})
}

// The acceptance criterion for the sweep engine: a quick-mode figure run is
// at least 2× faster in parallel than serially on a machine with ≥4 cores.
// The comparison uses Fig7 (a pure per-model grid with no shared stages).
func TestParallelSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; run without -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >=4 cores for the speedup bound, have %d",
			runtime.NumCPU())
	}
	measure := func(o Options) time.Duration {
		start := time.Now()
		if _, err := Fig7Opts(true, o); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure(Serial) // warm any lazy initialization before timing
	serial := measure(Serial)
	parallel := measure(Options{})
	t.Logf("serial %v, parallel %v (%.2fx)", serial, parallel,
		float64(serial)/float64(parallel))
	if float64(serial)/float64(parallel) < 2 {
		t.Fatalf("parallel sweep %.2fx speedup below 2x (serial %v, parallel %v)",
			float64(serial)/float64(parallel), serial, parallel)
	}
}
