// Package experiments regenerates every table and figure of the paper's
// evaluation (§6–§7): the same rows and series the paper reports, produced
// by running TrioSim's prediction path against the reference hardware
// emulator's ground truth. Absolute numbers differ from the paper (the
// substrate is an emulator, not the authors' testbed); the shapes — error
// bands per parallelism, who wins where, communication ratios — are the
// reproduction targets recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"triosim/internal/faults"
)

// Row is one data point of a figure: a workload under a configuration, with
// named numeric values (seconds, ratios, speedups...).
type Row struct {
	Model  string
	Config string
	Values map[string]float64
}

// Get returns a value (0 when absent).
func (r *Row) Get(key string) float64 { return r.Values[key] }

// Figure is one reproduced table/figure.
type Figure struct {
	ID      string
	Title   string
	Columns []string // value columns in display order
	Rows    []Row
	// Notes records summary lines (average errors etc.).
	Notes []string
}

// Add appends a row.
func (f *Figure) Add(model, config string, values map[string]float64) {
	f.Rows = append(f.Rows, Row{Model: model, Config: config, Values: values})
}

// MeanValue averages a column over rows matching the config filter ("" = all).
func (f *Figure) MeanValue(col, config string) float64 {
	var sum float64
	var n int
	for i := range f.Rows {
		if config != "" && f.Rows[i].Config != config {
			continue
		}
		if v, ok := f.Rows[i].Values[col]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Configs returns the distinct configs in first-appearance order.
func (f *Figure) Configs() []string {
	seen := map[string]bool{}
	var out []string
	for i := range f.Rows {
		c := f.Rows[i].Config
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Note records a summary line.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Print renders the figure as an aligned text table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	cols := f.Columns
	if len(cols) == 0 {
		colSet := map[string]bool{}
		for i := range f.Rows {
			for k := range f.Rows[i].Values {
				colSet[k] = true
			}
		}
		for k := range colSet {
			cols = append(cols, k)
		}
		sort.Strings(cols)
	}
	fmt.Fprintf(w, "  %-14s %-22s", "model", "config")
	for _, c := range cols {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for i := range f.Rows {
		r := &f.Rows[i]
		fmt.Fprintf(w, "  %-14s %-22s", r.Model, r.Config)
		for _, c := range cols {
			if v, ok := r.Values[c]; ok {
				fmt.Fprintf(w, " %14.6g", v)
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  # %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the figure as a Markdown table (used by EXPERIMENTS.md
// regeneration).
func (f *Figure) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s: %s\n\n", f.ID, f.Title)
	cols := f.Columns
	fmt.Fprintf(w, "| model | config |")
	for _, c := range cols {
		fmt.Fprintf(w, " %s |", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|---|%s\n", strings.Repeat("---|", len(cols)))
	for i := range f.Rows {
		r := &f.Rows[i]
		fmt.Fprintf(w, "| %s | %s |", r.Model, r.Config)
		for _, c := range cols {
			if v, ok := r.Values[c]; ok {
				fmt.Fprintf(w, " %.4g |", v)
			} else {
				fmt.Fprintf(w, " - |")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "- %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner names and runs a figure generator.
type Runner struct {
	ID  string
	Run func() (*Figure, error)
}

// All returns every figure generator in paper order, running serially.
// quick trims workload lists for fast smoke runs.
func All(quick bool) []Runner { return AllOpts(quick, Serial) }

// AllOpts is All with sweep options: each figure fans its scenario grid
// across the worker pool and produces output byte-identical to the serial
// run. Fig14 ignores the options — it measures per-simulation wall clock,
// which parallel contention would distort.
func AllOpts(quick bool, opts Options) []Runner {
	return allRunners(quick, opts, nil, 0)
}

// AllFaults is AllOpts with a custom fault schedule and/or a fault-generator
// seed threaded into the resilience figure's scenario grid (the CLI's
// -faults / -fault-seed flags).
func AllFaults(quick bool, opts Options, custom *faults.Schedule,
	faultSeed int64) []Runner {
	return allRunners(quick, opts, custom, faultSeed)
}

func allRunners(quick bool, opts Options, custom *faults.Schedule,
	faultSeed int64) []Runner {
	return []Runner{
		{"table1", func() (*Figure, error) { return Table1Opts(quick, opts) }},
		{"fig6", func() (*Figure, error) { return Fig6Opts(quick, opts) }},
		{"fig7", func() (*Figure, error) { return Fig7Opts(quick, opts) }},
		{"fig8", func() (*Figure, error) { return Fig8Opts(quick, opts) }},
		{"fig9", func() (*Figure, error) { return Fig9Opts(quick, opts) }},
		{"fig10", func() (*Figure, error) { return Fig10Opts(quick, opts) }},
		{"fig11", func() (*Figure, error) { return Fig11Opts(quick, opts) }},
		{"fig12", func() (*Figure, error) { return Fig12Opts(quick, opts) }},
		{"fig13", func() (*Figure, error) { return Fig13Opts(quick, opts) }},
		{"fig14", func() (*Figure, error) { return Fig14(quick) }},
		{"fig15", func() (*Figure, error) { return Fig15Opts(quick, opts) }},
		{"fig16", func() (*Figure, error) { return Fig16Opts(quick, opts) }},
		{"scale", func() (*Figure, error) { return Scale(quick) }},
		{"resilience", func() (*Figure, error) {
			return ResilienceOpts(quick, opts, custom, faultSeed)
		}},
		{"serving", func() (*Figure, error) {
			return ServingOpts(quick, opts)
		}},
	}
}

// cnnList returns the CNN workloads, trimmed in quick mode.
func cnnList(quick bool) []string {
	if quick {
		return []string{"resnet18", "vgg11", "densenet121"}
	}
	return allCNNs()
}

// mixedList returns CNNs plus transformers, trimmed in quick mode.
func mixedList(quick bool) []string {
	if quick {
		return []string{"resnet18", "vgg11", "gpt2"}
	}
	return append(allCNNs(), allTransformers()...)
}
