package experiments

import (
	"context"
	"fmt"
	"time"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/sweep"
)

// Fig12 — comparing data, tensor, and pipeline parallelism on P2 with a
// fixed total batch of 128 across 4 GPUs and a pipeline micro-batch of 64
// (2 chunks). The reproduction target is relative ordering: DP wins for a
// constant total workload; TP is competitive only on transformers; TrioSim
// ranks TP vs PP per model the same way the hardware does.
func Fig12(quick bool) (*Figure, error) { return Fig12Opts(quick, Serial) }

// Fig12Opts is Fig12 with sweep options.
func Fig12Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "fig12",
		Title:   "DP vs TP vs PP on P2 (total batch 128, micro-batch 64)",
		Columns: []string{"predicted_s", "hardware_s", "error_pct"},
	}
	type parCfg struct {
		par    core.Parallelism
		chunks int
		name   string
	}
	pars := []parCfg{{core.DDP, 0, "dp"}, {core.TP, 0, "tp"},
		{core.PP, 2, "pp"}}

	opts = opts.withCache()
	type cellID struct {
		model string
		pc    parCfg
	}
	var grid []cellID
	for _, m := range mixedList(quick) {
		for _, pc := range pars {
			grid = append(grid, cellID{m, pc})
		}
	}
	cells := make([]sweep.Job[vals], len(grid))
	for i, c := range grid {
		c := c
		cells[i] = func(ctx context.Context) (vals, error) {
			v, err := opts.validateCell(ctx, core.Config{
				Model: c.model, Platform: p2Copy(), Parallelism: c.pc.par,
				TraceBatch:  traceBatchFor(c.model),
				GlobalBatch: 128, MicroBatches: c.pc.chunks,
			})
			if err != nil {
				return nil, fmt.Errorf("fig12/%s/%s: %w", c.model,
					c.pc.name, err)
			}
			return vals{
				"predicted_s": v["predicted_s"],
				"hardware_s":  v["hardware_s"],
				"error_pct":   v["error_pct"],
			}, nil
		}
	}
	out, err := runCells(opts, cells)
	if err != nil {
		return nil, err
	}
	agreements, comparisons := 0, 0
	times := map[string]map[string][2]float64{} // model → name → {pred, act}
	for i, c := range grid {
		f.Add(c.model, c.pc.name, out[i])
		if times[c.model] == nil {
			times[c.model] = map[string][2]float64{}
		}
		times[c.model][c.pc.name] = [2]float64{out[i]["predicted_s"],
			out[i]["hardware_s"]}
	}
	// Does TrioSim rank TP vs PP the same way the hardware does?
	for _, m := range mixedList(quick) {
		t := times[m]
		predTPFaster := t["tp"][0] < t["pp"][0]
		hwTPFaster := t["tp"][1] < t["pp"][1]
		comparisons++
		if predTPFaster == hwTPFaster {
			agreements++
		}
	}
	f.Note("TP-vs-PP ranking agreement: %d/%d models",
		agreements, comparisons)
	return f, nil
}

// p2Copy returns a private copy of the P2 platform for one cell.
func p2Copy() *gpu.Platform { p := gpu.P2; return &p }

// Fig13 — communication/computation time ratio for TP vs DDP on P1. The
// reproduction target: TP's communication share exceeds DDP's.
func Fig13(quick bool) (*Figure, error) { return Fig13Opts(quick, Serial) }

// Fig13Opts is Fig13 with sweep options.
func Fig13Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "fig13",
		Title:   "Communication/computation ratio, TP vs DDP on P1",
		Columns: []string{"comm_s", "compute_s", "comm_ratio"},
	}
	opts = opts.withCache()
	type cellID struct {
		par   core.Parallelism
		model string
	}
	var grid []cellID
	for _, par := range []core.Parallelism{core.TP, core.DDP} {
		for _, m := range mixedList(quick) {
			grid = append(grid, cellID{par, m})
		}
	}
	cells := make([]sweep.Job[vals], len(grid))
	for i, c := range grid {
		c := c
		cells[i] = func(ctx context.Context) (vals, error) {
			p1 := gpu.P1
			cfg := opts.cached(core.Config{
				Model: c.model, Platform: &p1, Parallelism: c.par,
				TraceBatch: traceBatchFor(c.model), Context: ctx,
			})
			res, err := core.Simulate(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig13/%s/%s: %w", c.model, c.par, err)
			}
			if err := opts.exportSpans(cfg, res); err != nil {
				return nil, err
			}
			return vals{
				"comm_s":     float64(res.CommTime),
				"compute_s":  float64(res.ComputeTime),
				"comm_ratio": float64(res.CommTime) / float64(res.TotalTime),
			}, nil
		}
	}
	out, err := runCells(opts, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range grid {
		f.Add(c.model, string(c.par), out[i])
	}
	f.Note("avg comm ratio TP: %.3f, DDP: %.3f (TP > DDP expected)",
		f.MeanValue("comm_ratio", "tp"), f.MeanValue("comm_ratio", "ddp"))
	return f, nil
}

// Fig14 — the simulator's own execution time (wall clock) when modeling
// DDP on P2, per model. (Paper: seconds, log scale; grows with trace size
// and GPU count.)
//
// Fig14 deliberately stays serial regardless of sweep options: it measures
// each simulation's wall clock, and concurrent siblings contending for
// cores would inflate exactly the quantity being reported.
func Fig14(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig14",
		Title:   "TrioSim wall-clock execution time (DDP on P2)",
		Columns: []string{"wallclock_s", "sim_tasks", "sim_events"},
	}
	p2 := gpu.P2
	for _, m := range mixedList(quick) {
		res, err := core.Simulate(core.Config{
			Model: m, Platform: &p2, Parallelism: core.DDP,
			TraceBatch: traceBatchFor(m), Iterations: 3,
			// Fig 14 measures the simulator itself, so this experiment —
			// outside the no-wallclock boundary — injects the host clock.
			Clock: time.Now,
		})
		if err != nil {
			return nil, fmt.Errorf("fig14/%s: %w", m, err)
		}
		f.Add(m, "P2-DDP", map[string]float64{
			"wallclock_s": res.WallClock.Seconds(),
			"sim_tasks":   float64(res.Tasks),
			"sim_events":  float64(res.Events),
		})
	}
	f.Note("all simulations complete within seconds (paper's claim)")
	return f, nil
}
