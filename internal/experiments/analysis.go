package experiments

import (
	"fmt"
	"time"

	"triosim/internal/core"
	"triosim/internal/gpu"
)

// Fig12 — comparing data, tensor, and pipeline parallelism on P2 with a
// fixed total batch of 128 across 4 GPUs and a pipeline micro-batch of 64
// (2 chunks). The reproduction target is relative ordering: DP wins for a
// constant total workload; TP is competitive only on transformers; TrioSim
// ranks TP vs PP per model the same way the hardware does.
func Fig12(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig12",
		Title:   "DP vs TP vs PP on P2 (total batch 128, micro-batch 64)",
		Columns: []string{"predicted_s", "hardware_s", "error_pct"},
	}
	p2 := gpu.P2
	type parCfg struct {
		par    core.Parallelism
		chunks int
		name   string
	}
	pars := []parCfg{{core.DDP, 0, "dp"}, {core.TP, 0, "tp"},
		{core.PP, 2, "pp"}}

	agreements, comparisons := 0, 0
	for _, m := range mixedList(quick) {
		times := map[string][2]float64{} // name → {pred, actual}
		for _, pc := range pars {
			cmp, err := core.Validate(core.Config{
				Model: m, Platform: &p2, Parallelism: pc.par,
				TraceBatch:  traceBatchFor(m),
				GlobalBatch: 128, MicroBatches: pc.chunks,
			})
			if err != nil {
				return nil, fmt.Errorf("fig12/%s/%s: %w", m, pc.name, err)
			}
			times[pc.name] = [2]float64{float64(cmp.Predicted),
				float64(cmp.Actual)}
			f.Add(m, pc.name, map[string]float64{
				"predicted_s": float64(cmp.Predicted),
				"hardware_s":  float64(cmp.Actual),
				"error_pct":   cmp.Error * 100,
			})
		}
		// Does TrioSim rank TP vs PP the same way the hardware does?
		predTPFaster := times["tp"][0] < times["pp"][0]
		hwTPFaster := times["tp"][1] < times["pp"][1]
		comparisons++
		if predTPFaster == hwTPFaster {
			agreements++
		}
	}
	f.Note("TP-vs-PP ranking agreement: %d/%d models",
		agreements, comparisons)
	return f, nil
}

// Fig13 — communication/computation time ratio for TP vs DDP on P1. The
// reproduction target: TP's communication share exceeds DDP's.
func Fig13(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig13",
		Title:   "Communication/computation ratio, TP vs DDP on P1",
		Columns: []string{"comm_s", "compute_s", "comm_ratio"},
	}
	p1 := gpu.P1
	for _, par := range []core.Parallelism{core.TP, core.DDP} {
		for _, m := range mixedList(quick) {
			res, err := core.Simulate(core.Config{
				Model: m, Platform: &p1, Parallelism: par,
				TraceBatch: traceBatchFor(m),
			})
			if err != nil {
				return nil, fmt.Errorf("fig13/%s/%s: %w", m, par, err)
			}
			ratio := float64(res.CommTime) / float64(res.TotalTime)
			f.Add(m, string(par), map[string]float64{
				"comm_s":     float64(res.CommTime),
				"compute_s":  float64(res.ComputeTime),
				"comm_ratio": ratio,
			})
		}
	}
	f.Note("avg comm ratio TP: %.3f, DDP: %.3f (TP > DDP expected)",
		f.MeanValue("comm_ratio", "tp"), f.MeanValue("comm_ratio", "ddp"))
	return f, nil
}

// Fig14 — the simulator's own execution time (wall clock) when modeling
// DDP on P2, per model. (Paper: seconds, log scale; grows with trace size
// and GPU count.)
func Fig14(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig14",
		Title:   "TrioSim wall-clock execution time (DDP on P2)",
		Columns: []string{"wallclock_s", "sim_tasks", "sim_events"},
	}
	p2 := gpu.P2
	for _, m := range mixedList(quick) {
		res, err := core.Simulate(core.Config{
			Model: m, Platform: &p2, Parallelism: core.DDP,
			TraceBatch: traceBatchFor(m), Iterations: 3,
			// Fig 14 measures the simulator itself, so this experiment —
			// outside the no-wallclock boundary — injects the host clock.
			Clock: time.Now,
		})
		if err != nil {
			return nil, fmt.Errorf("fig14/%s: %w", m, err)
		}
		f.Add(m, "P2-DDP", map[string]float64{
			"wallclock_s": res.WallClock.Seconds(),
			"sim_tasks":   float64(res.Tasks),
			"sim_events":  float64(res.Events),
		})
	}
	f.Note("all simulations complete within seconds (paper's claim)")
	return f, nil
}
