package experiments

import (
	"context"
	"fmt"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/models"
	"triosim/internal/sweep"
)

func allCNNs() []string         { return models.CNNs() }
func allTransformers() []string { return models.Transformers() }

// traceBatchFor follows the paper's tracing batch sizes: 128 for everything
// except Llama, which is traced at 16 to avoid out-of-memory.
func traceBatchFor(model string) int {
	if model == "llama32-1b" {
		return 16
	}
	return 128
}

var valColumns = []string{"predicted_s", "hardware_s", "normalized",
	"error_pct"}

// valCell is one prediction-vs-hardware cell of a validation figure. cfg
// runs on the worker goroutine, so per-cell state (platforms, topologies)
// is constructed there.
type valCell struct {
	model string
	label string
	cfg   func() core.Config
}

// runValidation fans the cells out and appends one row per cell, in cell
// order.
func runValidation(f *Figure, opts Options, grid []valCell) error {
	opts = opts.withCache()
	cells := make([]sweep.Job[vals], len(grid))
	for i, c := range grid {
		c := c
		cells[i] = func(ctx context.Context) (vals, error) {
			v, err := opts.validateCell(ctx, c.cfg())
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", f.ID, c.label, err)
			}
			return v, nil
		}
	}
	out, err := runCells(opts, cells)
	if err != nil {
		return err
	}
	for i, c := range grid {
		f.Add(c.model, c.label, out[i])
	}
	return nil
}

// Fig6 — single-GPU validation: predict batch-256 iteration time from a
// batch-128 trace, on A40 and A100. (Paper: avg error 1.10% on A40, 3.25%
// on A100; transformers excluded — they OOM at 256 on real hardware.)
func Fig6(quick bool) (*Figure, error) { return Fig6Opts(quick, Serial) }

// Fig6Opts is Fig6 with sweep options.
func Fig6Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "fig6",
		Title:   "Single-GPU batch-256 prediction from batch-128 traces",
		Columns: valColumns,
	}
	gpuNames := []string{"A40", "A100"}
	var grid []valCell
	for _, gpuName := range gpuNames {
		spec, err := gpu.SpecByName(gpuName)
		if err != nil {
			return nil, err
		}
		for _, m := range cnnList(quick) {
			gpuName, spec, m := gpuName, spec, m
			grid = append(grid, valCell{m, gpuName, func() core.Config {
				plat := gpu.Platform{
					Name: "single-" + gpuName, GPU: *spec, NumGPUs: 1,
					Topology:      gpu.TopoNVSwitch,
					LinkBandwidth: 1, // unused with 1 GPU
					HostBandwidth: gpu.P2.HostBandwidth,
					HostLatency:   gpu.P2.HostLatency,
				}
				return core.Config{
					Model: m, Platform: &plat, Parallelism: core.Single,
					TraceBatch: 128, GlobalBatch: 256,
				}
			}})
		}
	}
	if err := runValidation(f, opts, grid); err != nil {
		return nil, err
	}
	for _, gpuName := range gpuNames {
		f.Note("avg error on %s: %.2f%%", gpuName,
			f.MeanValue("error_pct", gpuName))
	}
	return f, nil
}

// Fig7 — standard data parallelism on P1. (Paper: avg error 7.39%.)
func Fig7(quick bool) (*Figure, error) { return Fig7Opts(quick, Serial) }

// Fig7Opts is Fig7 with sweep options.
func Fig7Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "fig7",
		Title:   "Standard DataParallel on P1 (2×A40, PCIe)",
		Columns: valColumns,
	}
	var grid []valCell
	for _, m := range mixedList(quick) {
		m := m
		grid = append(grid, valCell{m, "P1-DP", func() core.Config {
			p1 := gpu.P1
			return core.Config{
				Model: m, Platform: &p1, Parallelism: core.DP,
				TraceBatch: traceBatchFor(m),
			}
		}})
	}
	if err := runValidation(f, opts, grid); err != nil {
		return nil, err
	}
	f.Note("avg error: %.2f%% (paper: 7.39%%)", f.MeanValue("error_pct", ""))
	return f, nil
}

// Fig8 — DistributedDataParallel on P1 and P2. (Paper: 2.91% / 2.73%.)
func Fig8(quick bool) (*Figure, error) { return Fig8Opts(quick, Serial) }

// Fig8Opts is Fig8 with sweep options.
func Fig8Opts(quick bool, opts Options) (*Figure, error) {
	return platformSweep(quick, opts, "fig8",
		"DistributedDataParallel on P1 and P2", core.DDP, "DDP",
		map[string]string{"P1": "2.91%", "P2": "2.73%"})
}

// Fig9 — tensor parallelism on P1 and P2. (Paper: 4.54% / 11.24%.)
func Fig9(quick bool) (*Figure, error) { return Fig9Opts(quick, Serial) }

// Fig9Opts is Fig9 with sweep options.
func Fig9Opts(quick bool, opts Options) (*Figure, error) {
	return platformSweep(quick, opts, "fig9",
		"Tensor parallelism on P1 and P2", core.TP, "TP",
		map[string]string{"P1": "4.54%", "P2": "11.24%"})
}

// platformSweep runs one parallelism across the mixed workload list on P1
// and P2 (the shared shape of Fig8 and Fig9).
func platformSweep(quick bool, opts Options, id, title string,
	par core.Parallelism, parName string,
	paperErr map[string]string) (*Figure, error) {

	f := &Figure{ID: id, Title: title, Columns: valColumns}
	platNames := []string{"P1", "P2"}
	var grid []valCell
	for _, platName := range platNames {
		if _, err := gpu.PlatformByName(platName); err != nil {
			return nil, err
		}
		for _, m := range mixedList(quick) {
			platName, m := platName, m
			grid = append(grid, valCell{m, platName + "-" + parName,
				func() core.Config {
					plat, _ := gpu.PlatformByName(platName)
					return core.Config{
						Model: m, Platform: plat, Parallelism: par,
						TraceBatch: traceBatchFor(m),
					}
				}})
		}
	}
	if err := runValidation(f, opts, grid); err != nil {
		return nil, err
	}
	for _, platName := range platNames {
		f.Note("avg error on %s: %.2f%% (paper: %s)", platName,
			f.MeanValue("error_pct", platName+"-"+parName),
			paperErr[platName])
	}
	return f, nil
}

// Fig10 — pipeline parallelism on 2 and 4 A100 GPUs with 1/2/4 chunks.
// (Paper: avg errors 6.82/6.58/15.10% on 2 GPUs, 5.14/8.96/8.18% on 4.)
func Fig10(quick bool) (*Figure, error) { return Fig10Opts(quick, Serial) }

// Fig10Opts is Fig10 with sweep options.
func Fig10Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "fig10",
		Title:   "GPipe pipeline parallelism on 2/4×A100, 1/2/4 chunks",
		Columns: valColumns,
	}
	var grid []valCell
	var labels []string
	for _, nGPU := range []int{2, 4} {
		for _, chunks := range []int{1, 2, 4} {
			label := fmt.Sprintf("%dxA100-%dchunk", nGPU, chunks)
			labels = append(labels, label)
			for _, m := range cnnList(quick) {
				nGPU, chunks, m := nGPU, chunks, m
				grid = append(grid, valCell{m, label, func() core.Config {
					plat := gpu.P2.WithGPUs(nGPU)
					return core.Config{
						Model: m, Platform: &plat, Parallelism: core.PP,
						TraceBatch: 128, MicroBatches: chunks,
					}
				}})
			}
		}
	}
	if err := runValidation(f, opts, grid); err != nil {
		return nil, err
	}
	for _, label := range labels {
		f.Note("avg error %s: %.2f%%", label, f.MeanValue("error_pct", label))
	}
	return f, nil
}

// Fig11 — new-GPU prediction on P3 (8×H100, batch 256): case 1 uses traces
// from a single A40 and a single A100 at batch 128 (cross-GPU + batch
// rescaling); case 2 uses a native H100 batch-256 trace. (Paper: case-1
// errors 9.09% DDP / 9.07% TP / 5.65–16.28% PP; case 2 slightly lower.)
func Fig11(quick bool) (*Figure, error) { return Fig11Opts(quick, Serial) }

// Fig11Opts is Fig11 with sweep options.
func Fig11Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "fig11",
		Title:   "New-GPU prediction: A40/A100 traces → 8×H100 @ batch 256",
		Columns: valColumns,
	}
	type variant struct {
		label      string
		traceGPU   string
		traceBatch int
	}
	variants := []variant{
		{"case1-A40trace", "A40", 128},
		{"case1-A100trace", "A100", 128},
		{"case2-H100trace", "H100", 256},
	}
	type parCfg struct {
		par    core.Parallelism
		chunks int
		name   string
	}
	pars := []parCfg{{core.DDP, 0, "ddp"}, {core.TP, 0, "tp"},
		{core.PP, 1, "pp1"}, {core.PP, 2, "pp2"}}
	if quick {
		pars = []parCfg{{core.DDP, 0, "ddp"}, {core.TP, 0, "tp"}}
	}
	var grid []valCell
	var labels []string
	for _, v := range variants {
		for _, pc := range pars {
			label := v.label + "-" + pc.name
			labels = append(labels, label)
			for _, m := range cnnList(quick) {
				v, pc, m := v, pc, m
				grid = append(grid, valCell{m, label, func() core.Config {
					p3 := gpu.P3
					return core.Config{
						Model: m, Platform: &p3, Parallelism: pc.par,
						TraceBatch: v.traceBatch, TraceGPU: v.traceGPU,
						GlobalBatch:  256,
						MicroBatches: pc.chunks,
					}
				}})
			}
		}
	}
	if err := runValidation(f, opts, grid); err != nil {
		return nil, err
	}
	for _, label := range labels {
		f.Note("avg error %s: %.2f%%", label, f.MeanValue("error_pct", label))
	}
	return f, nil
}
