package experiments

import (
	"fmt"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/models"
)

func allCNNs() []string         { return models.CNNs() }
func allTransformers() []string { return models.Transformers() }

// traceBatchFor follows the paper's tracing batch sizes: 128 for everything
// except Llama, which is traced at 16 to avoid out-of-memory.
func traceBatchFor(model string) int {
	if model == "llama32-1b" {
		return 16
	}
	return 128
}

// validateInto runs prediction vs ground truth and appends a row with
// predicted/actual seconds and relative error.
func validateInto(f *Figure, cfg core.Config, label string) error {
	cmp, err := core.Validate(cfg)
	if err != nil {
		return fmt.Errorf("%s/%s/%s: %w", f.ID, cfg.Model, label, err)
	}
	f.Add(cfg.Model, label, map[string]float64{
		"predicted_s": float64(cmp.Predicted),
		"hardware_s":  float64(cmp.Actual),
		"normalized":  cmp.Normalized,
		"error_pct":   cmp.Error * 100,
	})
	return nil
}

var valColumns = []string{"predicted_s", "hardware_s", "normalized",
	"error_pct"}

// Fig6 — single-GPU validation: predict batch-256 iteration time from a
// batch-128 trace, on A40 and A100. (Paper: avg error 1.10% on A40, 3.25%
// on A100; transformers excluded — they OOM at 256 on real hardware.)
func Fig6(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig6",
		Title:   "Single-GPU batch-256 prediction from batch-128 traces",
		Columns: valColumns,
	}
	for _, gpuName := range []string{"A40", "A100"} {
		spec, err := gpu.SpecByName(gpuName)
		if err != nil {
			return nil, err
		}
		plat := gpu.Platform{
			Name: "single-" + gpuName, GPU: *spec, NumGPUs: 1,
			Topology:      gpu.TopoNVSwitch,
			LinkBandwidth: 1, // unused with 1 GPU
			HostBandwidth: gpu.P2.HostBandwidth,
			HostLatency:   gpu.P2.HostLatency,
		}
		for _, m := range cnnList(quick) {
			err := validateInto(f, core.Config{
				Model: m, Platform: &plat, Parallelism: core.Single,
				TraceBatch: 128, GlobalBatch: 256,
			}, gpuName)
			if err != nil {
				return nil, err
			}
		}
		f.Note("avg error on %s: %.2f%%", gpuName,
			f.MeanValue("error_pct", gpuName))
	}
	return f, nil
}

// Fig7 — standard data parallelism on P1. (Paper: avg error 7.39%.)
func Fig7(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig7",
		Title:   "Standard DataParallel on P1 (2×A40, PCIe)",
		Columns: valColumns,
	}
	p1 := gpu.P1
	for _, m := range mixedList(quick) {
		err := validateInto(f, core.Config{
			Model: m, Platform: &p1, Parallelism: core.DP,
			TraceBatch: traceBatchFor(m),
		}, "P1-DP")
		if err != nil {
			return nil, err
		}
	}
	f.Note("avg error: %.2f%% (paper: 7.39%%)", f.MeanValue("error_pct", ""))
	return f, nil
}

// Fig8 — DistributedDataParallel on P1 and P2. (Paper: 2.91% / 2.73%.)
func Fig8(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig8",
		Title:   "DistributedDataParallel on P1 and P2",
		Columns: valColumns,
	}
	for _, platName := range []string{"P1", "P2"} {
		plat, err := gpu.PlatformByName(platName)
		if err != nil {
			return nil, err
		}
		for _, m := range mixedList(quick) {
			err := validateInto(f, core.Config{
				Model: m, Platform: plat, Parallelism: core.DDP,
				TraceBatch: traceBatchFor(m),
			}, platName+"-DDP")
			if err != nil {
				return nil, err
			}
		}
		f.Note("avg error on %s: %.2f%% (paper: %s)", platName,
			f.MeanValue("error_pct", platName+"-DDP"),
			map[string]string{"P1": "2.91%", "P2": "2.73%"}[platName])
	}
	return f, nil
}

// Fig9 — tensor parallelism on P1 and P2. (Paper: 4.54% / 11.24%.)
func Fig9(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig9",
		Title:   "Tensor parallelism on P1 and P2",
		Columns: valColumns,
	}
	for _, platName := range []string{"P1", "P2"} {
		plat, err := gpu.PlatformByName(platName)
		if err != nil {
			return nil, err
		}
		for _, m := range mixedList(quick) {
			err := validateInto(f, core.Config{
				Model: m, Platform: plat, Parallelism: core.TP,
				TraceBatch: traceBatchFor(m),
			}, platName+"-TP")
			if err != nil {
				return nil, err
			}
		}
		f.Note("avg error on %s: %.2f%% (paper: %s)", platName,
			f.MeanValue("error_pct", platName+"-TP"),
			map[string]string{"P1": "4.54%", "P2": "11.24%"}[platName])
	}
	return f, nil
}

// Fig10 — pipeline parallelism on 2 and 4 A100 GPUs with 1/2/4 chunks.
// (Paper: avg errors 6.82/6.58/15.10% on 2 GPUs, 5.14/8.96/8.18% on 4.)
func Fig10(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig10",
		Title:   "GPipe pipeline parallelism on 2/4×A100, 1/2/4 chunks",
		Columns: valColumns,
	}
	for _, nGPU := range []int{2, 4} {
		plat := gpu.P2.WithGPUs(nGPU)
		for _, chunks := range []int{1, 2, 4} {
			label := fmt.Sprintf("%dxA100-%dchunk", nGPU, chunks)
			for _, m := range cnnList(quick) {
				err := validateInto(f, core.Config{
					Model: m, Platform: &plat, Parallelism: core.PP,
					TraceBatch: 128, MicroBatches: chunks,
				}, label)
				if err != nil {
					return nil, err
				}
			}
			f.Note("avg error %s: %.2f%%", label,
				f.MeanValue("error_pct", label))
		}
	}
	return f, nil
}

// Fig11 — new-GPU prediction on P3 (8×H100, batch 256): case 1 uses traces
// from a single A40 and a single A100 at batch 128 (cross-GPU + batch
// rescaling); case 2 uses a native H100 batch-256 trace. (Paper: case-1
// errors 9.09% DDP / 9.07% TP / 5.65–16.28% PP; case 2 slightly lower.)
func Fig11(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "fig11",
		Title:   "New-GPU prediction: A40/A100 traces → 8×H100 @ batch 256",
		Columns: valColumns,
	}
	p3 := gpu.P3
	type variant struct {
		label      string
		traceGPU   string
		traceBatch int
	}
	variants := []variant{
		{"case1-A40trace", "A40", 128},
		{"case1-A100trace", "A100", 128},
		{"case2-H100trace", "H100", 256},
	}
	type parCfg struct {
		par    core.Parallelism
		chunks int
		name   string
	}
	pars := []parCfg{{core.DDP, 0, "ddp"}, {core.TP, 0, "tp"},
		{core.PP, 1, "pp1"}, {core.PP, 2, "pp2"}}
	if quick {
		pars = []parCfg{{core.DDP, 0, "ddp"}, {core.TP, 0, "tp"}}
	}
	for _, v := range variants {
		for _, pc := range pars {
			label := v.label + "-" + pc.name
			for _, m := range cnnList(quick) {
				err := validateInto(f, core.Config{
					Model: m, Platform: &p3, Parallelism: pc.par,
					TraceBatch: v.traceBatch, TraceGPU: v.traceGPU,
					GlobalBatch:  256,
					MicroBatches: pc.chunks,
				}, label)
				if err != nil {
					return nil, err
				}
			}
			f.Note("avg error %s: %.2f%%", label,
				f.MeanValue("error_pct", label))
		}
	}
	return f, nil
}
