package experiments

import (
	"fmt"
	"time"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/network"
	"triosim/internal/sim"
)

// scalePoint is one cluster size of the scaling study: a rail-optimized
// fat-tree of machines×8 H100s running llama32-1b under DP×TP×PP.
type scalePoint struct {
	gpus, dp, tp, pp int
}

// scaleGrid returns the cluster sizes swept, 64 → 10,000 GPUs. TP is pinned
// to the machine width (8) so tensor-parallel traffic stays on NVLink and the
// DP gradient rings run rank-aligned across machines — the layout the
// hierarchical collectives are built for.
func scaleGrid(quick bool) []scalePoint {
	pts := []scalePoint{
		{64, 8, 8, 1},
		{512, 16, 8, 4},
	}
	if quick {
		return pts
	}
	return append(pts,
		scalePoint{2048, 32, 8, 8},
		scalePoint{10000, 125, 8, 10},
	)
}

// scaleTopology builds the rail fat-tree for one cluster size: 300 GB/s
// NVLink inside each machine, one 50 GB/s NIC per GPU onto its rail, and a
// 2-spine 100 GB/s leaf/spine fabric per rail.
func scaleTopology(machines int) *network.Topology {
	return network.RailFatTree(network.ClusterConfig{
		Machines:        machines,
		GPUsPerMachine:  8,
		NVLinkBandwidth: 300e9,
		NVLinkLatency:   sim.USec,
		NICBandwidth:    50e9,
		NICLatency:      2 * sim.USec,
		FabricBandwidth: 100e9,
		FabricLatency:   2 * sim.USec,
		HostBandwidth:   20e9,
		HostLatency:     5 * sim.USec,
	}, 8, 2)
}

// Scale — the 10k-GPU scaling study (not in the paper, which stops at 8
// GPUs): simulator wall clock and simulated step time for one llama32-1b
// training iteration on rail fat-tree clusters from 64 to 10,000 GPUs under
// DP×TP×PP, fused compute, hierarchical collectives, and the approximate
// flow solver (tolerance 1%). Like Fig14 it measures the simulator itself,
// so it stays serial and is excluded from the byte-identity goldens.
func Scale(quick bool) (*Figure, error) {
	f := &Figure{
		ID:      "scale",
		Title:   "Cluster-scale wall clock (llama32-1b, DP×TP×PP, rail fat-tree)",
		Columns: []string{"step_s", "wallclock_s", "sim_tasks", "sim_events"},
	}
	p3 := gpu.P3
	for _, pt := range scaleGrid(quick) {
		machines := pt.gpus / 8
		const traceBatch = 16
		res, err := core.Simulate(core.Config{
			Model:        "llama32-1b",
			Platform:     &p3,
			Topology:     scaleTopology(machines),
			Parallelism:  core.DPTPPP,
			NumGPUs:      pt.gpus,
			TPRanks:      pt.tp,
			PPStages:     pt.pp,
			TraceBatch:   traceBatch,
			GlobalBatch:  pt.dp * 4 * traceBatch,
			MicroBatches: 4,
			FuseCompute:  true,
			NetApproxTol: 0.01,
			// The scaling study — like Fig14, outside the no-wallclock
			// boundary — injects the host clock to measure the simulator.
			Clock: time.Now,
		})
		if err != nil {
			return nil, fmt.Errorf("scale/%d: %w", pt.gpus, err)
		}
		f.Add("llama32-1b",
			fmt.Sprintf("%dx8-dp%d-tp%d-pp%d", machines, pt.dp, pt.tp, pt.pp),
			map[string]float64{
				"step_s":      res.PerIteration.Seconds(),
				"wallclock_s": res.WallClock.Seconds(),
				"sim_tasks":   float64(res.Tasks),
				"sim_events":  float64(res.Events),
			})
	}
	f.Note("wall clock stays in single-digit seconds through 10,000 GPUs")
	return f, nil
}
