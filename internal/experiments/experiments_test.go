package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The figure tests run in quick mode (trimmed workload lists) and assert the
// paper's qualitative reproduction targets, not absolute numbers.

func TestFig6SingleGPUPrediction(t *testing.T) {
	f, err := Fig6(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Paper: single-GPU batch extrapolation is the most accurate setting
	// (≈1–3%). Allow a safety margin.
	for _, cfg := range []string{"A40", "A100"} {
		if e := f.MeanValue("error_pct", cfg); e > 5 {
			t.Fatalf("%s avg error %.2f%% too high", cfg, e)
		}
	}
	// Normalized times hug 1.
	for _, r := range f.Rows {
		if n := r.Get("normalized"); n < 0.9 || n > 1.1 {
			t.Fatalf("%s/%s normalized %.3f far from 1",
				r.Model, r.Config, n)
		}
	}
}

func TestFig7And8ErrorOrdering(t *testing.T) {
	f7, err := Fig7(true)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(true)
	if err != nil {
		t.Fatal(err)
	}
	stdErr := f7.MeanValue("error_pct", "")
	ddpErr := f8.MeanValue("error_pct", "P1-DDP")
	// Paper: standard DP (7.39%) is predicted worse than DDP (2.91%).
	if stdErr <= ddpErr {
		t.Fatalf("std-DP error %.2f%% not above DDP %.2f%%", stdErr, ddpErr)
	}
	if ddpErr > 12 {
		t.Fatalf("DDP error %.2f%% out of band", ddpErr)
	}
	if stdErr > 20 {
		t.Fatalf("std-DP error %.2f%% out of band", stdErr)
	}
}

func TestFig9TPBand(t *testing.T) {
	f, err := Fig9(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []string{"P1-TP", "P2-TP"} {
		if e := f.MeanValue("error_pct", cfg); e > 25 {
			t.Fatalf("%s avg error %.2f%% out of band", cfg, e)
		}
	}
}

func TestFig10ChunkErrorGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy multi-GPU figure; run without -short")
	}
	f, err := Fig10(true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape on 2 GPUs: error grows from 1 chunk to 4 chunks.
	e1 := f.MeanValue("error_pct", "2xA100-1chunk")
	e4 := f.MeanValue("error_pct", "2xA100-4chunk")
	if e4 <= e1 {
		t.Fatalf("4-chunk error %.2f%% not above 1-chunk %.2f%%", e4, e1)
	}
}

func TestFig11CrossGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy multi-GPU figure; run without -short")
	}
	f, err := Fig11(true)
	if err != nil {
		t.Fatal(err)
	}
	// All variants stay in the paper's "reasonable" band (<25% avg) and the
	// same-GPU DDP case is at least as good as the cross-GPU A40 case.
	for _, cfg := range f.Configs() {
		if e := f.MeanValue("error_pct", cfg); e > 25 {
			t.Fatalf("%s avg error %.2f%%", cfg, e)
		}
	}
	cross := f.MeanValue("error_pct", "case1-A40trace-ddp")
	same := f.MeanValue("error_pct", "case2-H100trace-ddp")
	if same > cross+5 {
		t.Fatalf("same-GPU DDP error %.2f%% far above cross-GPU %.2f%%",
			same, cross)
	}
}

func TestFig12Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy multi-GPU figure; run without -short")
	}
	f, err := Fig12(true)
	if err != nil {
		t.Fatal(err)
	}
	// DP is fastest at fixed total batch — both predicted and on hardware.
	byModel := map[string]map[string]float64{}
	for _, r := range f.Rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[string]float64{}
		}
		byModel[r.Model][r.Config] = r.Get("predicted_s")
	}
	for m, times := range byModel {
		if times["dp"] >= times["tp"] || times["dp"] >= times["pp"] {
			t.Fatalf("%s: DP not fastest: %v", m, times)
		}
	}
	// Ranking agreement note exists.
	found := false
	for _, n := range f.Notes {
		if strings.Contains(n, "agreement") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing agreement note")
	}
}

func TestFig13TPCommShareHigher(t *testing.T) {
	f, err := Fig13(true)
	if err != nil {
		t.Fatal(err)
	}
	tp := f.MeanValue("comm_ratio", "tp")
	ddp := f.MeanValue("comm_ratio", "ddp")
	if tp <= ddp {
		t.Fatalf("TP comm ratio %.3f not above DDP %.3f", tp, ddp)
	}
}

func TestFig14WithinSeconds(t *testing.T) {
	f, err := Fig14(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rows {
		if w := r.Get("wallclock_s"); w > 10 {
			t.Fatalf("%s simulation took %.1fs (not 'within seconds')",
				r.Model, w)
		}
		if r.Get("sim_tasks") <= 0 || r.Get("sim_events") <= 0 {
			t.Fatalf("%s missing size metrics", r.Model)
		}
	}
}

func TestFig15PhotonicShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy multi-GPU figure; run without -short")
	}
	f, err := Fig15(true)
	if err != nil {
		t.Fatal(err)
	}
	// Electrical comm dominates; VGG-19's ratio is ≈0.9 in the paper.
	var vggRatio float64
	for _, r := range f.Rows {
		if r.Model == "vgg19" && r.Config == "electrical" {
			vggRatio = r.Get("comm_ratio")
		}
	}
	if vggRatio < 0.8 {
		t.Fatalf("VGG-19 electrical comm ratio %.2f below 0.8 (paper: 0.92)",
			vggRatio)
	}
	// Photonic cuts communication time substantially (paper: nearly half).
	elec := f.MeanValue("comm_s", "electrical")
	phot := f.MeanValue("comm_s", "photonic")
	reduction := 1 - phot/elec
	if reduction < 0.25 || reduction > 0.75 {
		t.Fatalf("photonic comm reduction %.0f%% outside [25,75]%%",
			reduction*100)
	}
}

func TestFig16BackupSpeedups(t *testing.T) {
	f, err := Fig16(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) < 6 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		if sp := r.Get("speedup"); sp < 0.99 {
			t.Fatalf("%s/%s speedup %.3f below 1", r.Model, r.Config, sp)
		}
	}
	// Speedups vary across scenarios.
	var lo, hi float64 = 1e9, 0
	for _, r := range f.Rows {
		sp := r.Get("speedup")
		if sp < lo {
			lo = sp
		}
		if sp > hi {
			hi = sp
		}
	}
	if hi-lo < 0.01 {
		t.Fatal("speedups do not vary")
	}
}

func TestFigurePrinting(t *testing.T) {
	f := &Figure{ID: "figX", Title: "test", Columns: []string{"a", "b"}}
	f.Add("m1", "c1", map[string]float64{"a": 1, "b": 2})
	f.Add("m2", "c2", map[string]float64{"a": 3})
	f.Note("note %d", 42)

	var buf bytes.Buffer
	f.Print(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "m1", "c2", "note 42", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	f.Markdown(&buf)
	if !strings.Contains(buf.String(), "| m1 | c1 |") {
		t.Fatalf("Markdown output malformed:\n%s", buf.String())
	}

	if f.MeanValue("a", "") != 2 {
		t.Fatalf("MeanValue = %v", f.MeanValue("a", ""))
	}
	if f.MeanValue("a", "c1") != 1 {
		t.Fatal("config-filtered MeanValue wrong")
	}
	if got := f.Configs(); len(got) != 2 || got[0] != "c1" {
		t.Fatalf("Configs = %v", got)
	}
}

func TestAllRunnersRegistered(t *testing.T) {
	rs := All(true)
	if len(rs) != 15 {
		t.Fatalf("runners = %d, want 15 (table1 + fig6..fig16 + resilience + serving + scale)",
			len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.ID] {
			t.Fatalf("duplicate runner %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil {
			t.Fatalf("runner %s has no function", r.ID)
		}
	}
}

func TestTable1BaselineGap(t *testing.T) {
	f, err := Table1(true)
	if err != nil {
		t.Fatal(err)
	}
	// On the asymmetric fabric TrioSim must beat the analytical baseline;
	// on the symmetric one both should be reasonable.
	trioAsym := f.MeanValue("triosim_err_pct", "asymmetric")
	baseAsym := f.MeanValue("analytical_err_pct", "asymmetric")
	if trioAsym >= baseAsym {
		t.Fatalf("TrioSim %.2f%% not below analytical %.2f%% on asymmetric fabric",
			trioAsym, baseAsym)
	}
	if sym := f.MeanValue("triosim_err_pct", "symmetric"); sym > 15 {
		t.Fatalf("TrioSim symmetric error %.2f%% out of band", sym)
	}
}

func TestSnakeOrderAdjacency(t *testing.T) {
	order := snakeOrder(4, 3)
	if len(order) != 12 {
		t.Fatalf("len = %d", len(order))
	}
	seen := map[int]bool{}
	for i, idx := range order {
		if seen[idx] {
			t.Fatalf("index %d repeated", idx)
		}
		seen[idx] = true
		if i == 0 {
			continue
		}
		// Consecutive entries are mesh neighbors (Manhattan distance 1).
		prev := order[i-1]
		pr, pc := prev/3, prev%3
		cr, cc := idx/3, idx%3
		dist := abs(pr-cr) + abs(pc-cc)
		if dist != 1 {
			t.Fatalf("order[%d]=%d and order[%d]=%d not adjacent",
				i-1, prev, i, idx)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
