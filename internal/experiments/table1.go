package experiments

import (
	"context"
	"fmt"
	"math"

	"triosim/internal/baseline"
	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/sweep"
)

// Table1 — the paper's Table 1 contrasts TrioSim with analytical
// predecessors (AstraSim/DistSim/vTrain-class models) along, among others,
// the "Network" axis: analytical models assume symmetric fabrics while
// TrioSim's simulation handles arbitrary topologies. This experiment makes
// that row quantitative: both predictors are scored against the hardware
// emulator on the stock (symmetric) P2 and on P2 with one NVLink degraded
// 4× — an asymmetry the closed-form model cannot express.
func Table1(quick bool) (*Figure, error) { return Table1Opts(quick, Serial) }

// Table1Opts is Table1 with sweep options.
func Table1Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:    "table1",
		Title: "TrioSim vs analytical baseline, symmetric vs asymmetric P2",
		Columns: []string{"hardware_s", "triosim_err_pct",
			"analytical_err_pct"},
	}
	modelsList := cnnList(quick)
	if !quick {
		modelsList = append(modelsList, "gpt2", "bert")
	}
	variants := []string{"symmetric", "asymmetric"}

	opts = opts.withCache()
	type cellID struct{ variant, model string }
	var grid []cellID
	for _, variant := range variants {
		for _, m := range modelsList {
			grid = append(grid, cellID{variant, m})
		}
	}
	cells := make([]sweep.Job[vals], len(grid))
	for i, c := range grid {
		c := c
		cells[i] = func(ctx context.Context) (vals, error) {
			// The topology (with its route cache) is built inside the cell:
			// nothing with unsynchronized state crosses workers.
			p2 := gpu.P2
			topo := core.BuildTopology(&p2)
			if c.variant == "asymmetric" {
				topo.SetLinkBandwidth(0, p2.LinkBandwidth/4)
			}
			cfg := opts.cached(core.Config{Model: c.model, Platform: &p2,
				Topology: topo, Parallelism: core.DDP,
				TraceBatch: traceBatchFor(c.model), Context: ctx})
			truth, err := core.GroundTruth(cfg)
			if err != nil {
				return nil, fmt.Errorf("table1/%s/%s: %w", c.model,
					c.variant, err)
			}
			trio, err := core.Simulate(cfg)
			if err != nil {
				return nil, fmt.Errorf("table1/%s/%s: %w", c.model,
					c.variant, err)
			}
			if err := opts.exportSpans(cfg, trio); err != nil {
				return nil, err
			}
			tr, err := hwsim.CollectTrace(c.model, traceBatchFor(c.model),
				&p2.GPU)
			if err != nil {
				return nil, err
			}
			// The analytical model only knows one uniform bandwidth.
			base, err := baseline.Predict(baseline.Config{
				Trace: tr, NumGPUs: p2.NumGPUs,
				LinkBandwidth: p2.LinkBandwidth,
				Parallelism:   baseline.DDP,
			})
			if err != nil {
				return nil, err
			}
			actual := float64(truth.PerIteration)
			trioErr := math.Abs(float64(trio.PerIteration)-actual) / actual
			baseErr := math.Abs(float64(base)-actual) / actual
			return vals{
				"hardware_s":         actual,
				"triosim_err_pct":    trioErr * 100,
				"analytical_err_pct": baseErr * 100,
			}, nil
		}
	}
	out, err := runCells(opts, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range grid {
		f.Add(c.model, c.variant, out[i])
	}
	for _, variant := range variants {
		f.Note("%s: TrioSim avg %.2f%%, analytical avg %.2f%%", variant,
			f.MeanValue("triosim_err_pct", variant),
			f.MeanValue("analytical_err_pct", variant))
	}
	return f, nil
}
