package experiments

import (
	"context"
	"fmt"

	"triosim/internal/extrapolator"
	"triosim/internal/gpu"
	"triosim/internal/hop"
	"triosim/internal/hwsim"
	"triosim/internal/network"
	"triosim/internal/perfmodel"
	"triosim/internal/sim"
	"triosim/internal/sweep"
	"triosim/internal/task"
	"triosim/internal/timeline"
	"triosim/internal/trace"
	"triosim/internal/tracecache"
)

// Wafer-scale case study parameters (§7.1): 12×7 = 84 A100-class chiplets.
// Passage provides 484 GB/s across 8 photonic links per GPU (60.5 GB/s per
// circuit) with a 20 ms link-establishment latency; the electrical baseline
// is a 2-D mesh of inter-reticle links.
const (
	waferRows             = 12
	waferCols             = 7
	waferElectricalLinkBW = 30e9
	waferPhotonicPerLink  = 484e9 / 8
	waferPhotonicPorts    = 8
	waferPhotonicSetup    = 20 * sim.MSec
	waferIterations       = 3
	waferTotalBatch       = 128
)

// snakeOrder returns the boustrophedon (snake) traversal of the wafer mesh:
// consecutive ring positions are always mesh neighbors, so the electrical
// ring AllReduce never pays multi-hop congestion.
func snakeOrder(rows, cols int) []int {
	out := make([]int, 0, rows*cols)
	for r := 0; r < rows; r++ {
		if r%2 == 0 {
			for c := 0; c < cols; c++ {
				out = append(out, r*cols+c)
			}
		} else {
			for c := cols - 1; c >= 0; c-- {
				out = append(out, r*cols+c)
			}
		}
	}
	return out
}

// runWafer extrapolates DDP training for one model across the wafer and
// executes it on the given network, returning per-iteration total and
// communication time. The trace and fitted model come from cache when one is
// supplied (the electrical and photonic variants share both).
func runWafer(model string, topo *network.Topology, net network.Network,
	eng *sim.SerialEngine, ringOrder []int,
	cache *tracecache.Store) (total, comm sim.VTime, err error) {

	key := tracecache.Key{
		Model:    model,
		Batch:    traceBatchFor(model),
		Spec:     gpu.A100,
		NoiseAmp: hwsim.DefaultNoiseAmp,
	}
	collect := func() (*trace.Trace, error) {
		return hwsim.CollectTrace(model, traceBatchFor(model), &gpu.A100)
	}
	var tr *trace.Trace
	if cache != nil {
		tr, err = cache.GetTrace(key, collect)
	} else {
		tr, err = collect()
	}
	if err != nil {
		return 0, 0, err
	}
	var pm extrapolator.OpTimer
	fit := func() (tracecache.OpTimer, error) { return perfmodel.Fit(tr) }
	if cache != nil {
		pm, err = cache.GetTimer(tracecache.TimerKey{
			Trace: key, ComputeModel: "li", Target: gpu.A100}, fit)
	} else {
		pm, err = fit()
	}
	if err != nil {
		return 0, 0, err
	}
	res, err := extrapolator.DataParallel(extrapolator.Config{
		Trace:       tr,
		Topo:        topo,
		NumGPUs:     waferRows * waferCols,
		Timer:       pm,
		GlobalBatch: waferTotalBatch,
		Iterations:  waferIterations,
		RingOrder:   ringOrder,
		// Large gradient buckets keep the 84-rank collective count sane for
		// billion-parameter models (240 buckets × 166 ring steps × 84 ranks
		// would otherwise dominate graph size, not fidelity).
		BucketBytes: 256 << 20,
	}, true)
	if err != nil {
		return 0, 0, err
	}
	tl := timeline.New()
	makespan, err := task.NewExecutor(eng, net, res.Graph, tl).Run()
	if err != nil {
		return 0, 0, err
	}
	iters := sim.VTime(waferIterations)
	return makespan / iters,
		tl.UnionTime(timeline.ByPhase("comm")) / iters, nil
}

// waferModels picks the case-study workloads.
func waferModels(quick bool) []string {
	if quick {
		return []string{"vgg19", "resnet50"}
	}
	return []string{"resnet50", "resnet152", "densenet201", "vgg19",
		"gpt2", "bert", "llama32-1b"}
}

// Fig15 — photonic-connected wafer-scale GPUs: 84 A100-class chiplets
// training with data parallelism at a fixed total batch, electrical mesh vs
// Passage-style photonic circuits. Reproduction targets: communication
// dominates on the electrical network (≈90%+ for VGG-19) and the optical
// network cuts communication time by roughly half.
func Fig15(quick bool) (*Figure, error) { return Fig15Opts(quick, Serial) }

// Fig15Opts is Fig15 with sweep options.
func Fig15Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "fig15",
		Title:   "Wafer-scale 84-GPU DP: electrical mesh vs photonic",
		Columns: []string{"total_s", "comm_s", "comm_ratio"},
	}
	meshCfg := network.Config{
		LinkBandwidth: waferElectricalLinkBW,
		LinkLatency:   1 * sim.USec,
		HostBandwidth: 30e9,
		HostLatency:   5 * sim.USec,
	}
	opts = opts.withCache()
	type cellID struct{ model, variant string }
	var grid []cellID
	for _, m := range waferModels(quick) {
		grid = append(grid, cellID{m, "electrical"}, cellID{m, "photonic"})
	}
	cells := make([]sweep.Job[vals], len(grid))
	for i, c := range grid {
		c := c
		cells[i] = func(context.Context) (vals, error) {
			// Engine, topology (route cache!), and network are all private
			// to the cell.
			topo := network.Mesh(waferRows, waferCols, meshCfg)
			eng := sim.NewSerialEngine()
			var net network.Network
			var ringOrder []int
			if c.variant == "electrical" {
				// Electrical: flow network over the mesh.
				net = network.NewFlowNetwork(eng, topo)
				ringOrder = snakeOrder(waferRows, waferCols)
			} else {
				// Photonic: same workload graph, circuit-switching network.
				// The mesh topology still provides node IDs and the host
				// staging path; inter-GPU transfers ride photonic circuits.
				net = newHybridPhotonic(eng, topo)
			}
			total, comm, err := runWafer(c.model, topo, net, eng, ringOrder,
				opts.cache)
			if err != nil {
				return nil, fmt.Errorf("fig15/%s/%s: %w", c.model,
					c.variant, err)
			}
			return vals{
				"total_s":    float64(total),
				"comm_s":     float64(comm),
				"comm_ratio": float64(comm) / float64(total),
			}, nil
		}
	}
	out, err := runCells(opts, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range grid {
		f.Add(c.model, c.variant, out[i])
	}
	f.Note("avg comm ratio electrical: %.3f, photonic: %.3f",
		f.MeanValue("comm_ratio", "electrical"),
		f.MeanValue("comm_ratio", "photonic"))
	f.Note("avg comm time reduction: %.1f%%",
		100*(1-f.MeanValue("comm_s", "photonic")/
			f.MeanValue("comm_s", "electrical")))
	return f, nil
}

// hybridPhotonic routes host staging over the electrical flow network and
// GPU↔GPU transfers over photonic circuits, mirroring the case study's
// "swap the network model, keep the devices" integration (§7.1).
type hybridPhotonic struct {
	photonic *network.PhotonicNetwork
	hostNet  *network.FlowNetwork
	topo     *network.Topology
}

func newHybridPhotonic(eng *sim.SerialEngine,
	topo *network.Topology) *hybridPhotonic {
	return &hybridPhotonic{
		photonic: network.NewPhotonicNetwork(eng, waferPhotonicPerLink,
			waferPhotonicSetup, waferPhotonicPorts),
		hostNet: network.NewFlowNetwork(eng, topo),
		topo:    topo,
	}
}

func (h *hybridPhotonic) Send(src, dst network.NodeID, bytes float64,
	onDone func(now sim.VTime)) {
	if h.topo.Nodes[src].Kind == network.HostNode ||
		h.topo.Nodes[dst].Kind == network.HostNode {
		h.hostNet.Send(src, dst, bytes, onDone)
		return
	}
	h.photonic.Send(src, dst, bytes, onDone)
}

// Fig16 — Hop heterogeneous training: speedup from one backup worker across
// 8 random slowdown scenarios on ring-with-chords and double-ring graphs of
// 8 A100 GPUs running VGG-11 at batch 128.
func Fig16(quick bool) (*Figure, error) { return Fig16Opts(quick, Serial) }

// Fig16Opts is Fig16 with sweep options.
func Fig16Opts(quick bool, opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "fig16",
		Title:   "Hop: backup-worker speedup across slowdown scenarios",
		Columns: []string{"speedup"},
	}
	// VGG-11 local step time and update volume from a single-GPU A100 trace.
	// The trace is reduced to two scalars here, so nothing mutable is shared
	// with the cells below.
	tr, err := hwsim.CollectTrace("vgg11", 128, &gpu.A100)
	if err != nil {
		return nil, err
	}
	computeTime := tr.TotalTime()
	updateBytes := float64(tr.GradientBytes())

	netCfg := network.Config{
		NumGPUs:       8,
		LinkBandwidth: 235e9,
		LinkLatency:   1.2 * sim.USec,
		HostBandwidth: 20e9,
	}
	scenarios := 8
	if quick {
		scenarios = 3
	}
	graphs := []struct {
		name  string
		build func(network.Config) *network.Topology
	}{
		{"ring", network.RingWithChords},
		{"double-ring", network.DoubleRing},
	}
	type cellID struct {
		graph int
		seed  int
	}
	var grid []cellID
	for gi := range graphs {
		for seed := 1; seed <= scenarios; seed++ {
			grid = append(grid, cellID{gi, seed})
		}
	}
	cells := make([]sweep.Job[vals], len(grid))
	for i, c := range grid {
		c := c
		cells[i] = func(context.Context) (vals, error) {
			g := graphs[c.graph]
			cfg := hop.Config{
				Topo:         g.build(netCfg),
				Workers:      8,
				ComputeTime:  computeTime,
				UpdateBytes:  updateBytes,
				MaxStaleness: 2,
				Iterations:   10,
				Slowdowns:    hop.RandomSlowdowns(8, int64(c.seed)),
			}
			sp, err := hop.Speedup(cfg, 1)
			if err != nil {
				return nil, fmt.Errorf("fig16/%s/seed%d: %w", g.name,
					c.seed, err)
			}
			return vals{"speedup": sp}, nil
		}
	}
	out, err := runCells(opts, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range grid {
		f.Add(fmt.Sprintf("scenario%d", c.seed), graphs[c.graph].name,
			out[i])
	}
	for _, g := range graphs {
		f.Note("avg speedup on %s: %.3f", g.name,
			f.MeanValue("speedup", g.name))
	}
	return f, nil
}
