package experiments

import (
	"bytes"
	"testing"
)

// The per-figure trace cache (on by default) must leave figure output
// byte-identical to a cache-free run: same rows, same 12-digit values, same
// notes. Fig6 exercises the validation path (Simulate + GroundTruth per
// cell); Fig7 the per-model grid.
func TestFigureCacheOnOffIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure regeneration; run without -short")
	}
	figs := []struct {
		id  string
		gen func(Options) (*Figure, error)
	}{
		{"fig6", func(o Options) (*Figure, error) { return Fig6Opts(true, o) }},
		{"fig7", func(o Options) (*Figure, error) { return Fig7Opts(true, o) }},
	}
	for _, fig := range figs {
		cached, err := fig.gen(Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		uncached, err := fig.gen(Options{Workers: 4, NoTraceCache: true})
		if err != nil {
			t.Fatal(err)
		}
		cb, ub := goldenBytes(t, cached), goldenBytes(t, uncached)
		if !bytes.Equal(cb, ub) {
			t.Fatalf("%s: cached figure differs from uncached", fig.id)
		}
	}
}
