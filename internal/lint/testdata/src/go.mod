module triosim

go 1.22
