package core

import "sync"

// Race spawns a goroutine and takes a lock inside the serial engine's
// domain: two no-goroutine-in-sim findings (the sync import and the go
// statement).
func Race() {
	var mu sync.Mutex
	go func() {
		mu.Lock()
		defer mu.Unlock()
	}()
}
