package core

import "context"

// Config mirrors the real core.Config surface the ctx-propagation analyzer
// matches on: a struct named Config with a context.Context field.
type Config struct {
	Model   string
	Context context.Context
}

// Result is a stub simulation result.
type Result struct {
	Events int
}

// Simulate is the stub long-running entry point.
func Simulate(cfg Config) (*Result, error) {
	return &Result{}, nil
}
