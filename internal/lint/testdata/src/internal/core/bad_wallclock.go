package core

import "time"

// Elapsed reads the host clock inside a sim package: two no-wallclock
// findings (time.Now and time.Since).
func Elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}
