package core

import "time"

// Suppressed demonstrates the nolint directive: no findings despite the
// wall-clock read.
func Suppressed() time.Time {
	return time.Now() //triosim:nolint no-wallclock -- fixture for directive parsing
}
