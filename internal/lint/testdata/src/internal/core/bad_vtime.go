package core

import "triosim/internal/sim"

// Later compares VTime with a raw operator: one vtime-compare finding.
func Later(a, b sim.VTime) bool {
	return a > b
}

// LaterHelper uses the ordering helper: clean.
func LaterHelper(a, b sim.VTime) bool {
	return a.After(b)
}
