// Package imm defines an annotated immutable type for the
// publish-then-mutate fixtures, mirroring trace.Trace: constructor, Clone
// boundary, in-package mutation API.
package imm

// Entry is a cached record shared read-only once published.
//
//triosim:immutable
type Entry struct {
	N     int
	Items []int
}

// New returns a fresh entry (the constructor consumers may mutate through).
func New(n int) *Entry {
	e := &Entry{N: n}
	e.Items = append(e.Items, n)
	return e
}

// Clone is the copy-on-write boundary.
func (e *Entry) Clone() *Entry {
	out := &Entry{N: e.N}
	out.Items = append([]int(nil), e.Items...)
	return out
}
