// Package immbad mutates published //triosim:immutable values — the
// publish-then-mutate positive fixtures.
package immbad

import "triosim/internal/imm"

// Tweak writes through a shared entry it did not construct.
func Tweak(e *imm.Entry) {
	e.N = 42
}

// AliasWrite mutates through a slice aliased out of a shared entry.
func AliasWrite(e *imm.Entry) {
	items := e.Items
	items[0] = 7
}

// FreshIsFine mutates values it provably owns: a constructor result and a
// clone. Both are silent.
func FreshIsFine(e *imm.Entry) *imm.Entry {
	mine := imm.New(1)
	mine.N = 2
	c := e.Clone()
	c.N = 3
	c.Items[0] = 4
	return c
}
