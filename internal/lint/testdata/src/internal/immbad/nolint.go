package immbad

import "triosim/internal/imm"

// Repair documents an intentional in-place fix on a shared entry. No
// findings.
func Repair(e *imm.Entry) {
	e.N = 0 //triosim:nolint publish-then-mutate -- fixture: documented single-writer repair before publication
}
