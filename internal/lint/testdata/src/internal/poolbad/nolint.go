package poolbad

// Requeue re-releases deliberately (a drain path that tolerates duplicates).
// No findings.
func (p *pool) Requeue(r *rec) {
	p.put(r)
	p.put(r) //triosim:nolint pool-lifecycle -- fixture: drain path tolerates duplicate entries
}
