// Package poolbad exercises the pool-lifecycle fixtures: a correctly
// plumbed free list in this file, the violations in bad_pool.go.
package poolbad

// rec is a recycled completion record, mirroring the executor's doneRec.
//
//triosim:pooled
type rec struct {
	n    int
	name string
}

// pool is a trivial LIFO free list.
type pool struct {
	free []*rec
}

// get pops the free list or allocates.
func (p *pool) get() *rec {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	return &rec{}
}

// put returns a record to the free list.
func (p *pool) put(r *rec) {
	r.name = ""
	p.free = append(p.free, r)
}

// Roundtrip is the clean pattern: copy what you need, then release last.
func (p *pool) Roundtrip() int {
	r := p.get()
	r.n = 1
	n := r.n
	p.put(r)
	return n
}
