package poolbad

// leaky is annotated pooled but the package never releases one — the
// missing-Put declaration-site finding.
//
//triosim:pooled
type leaky struct {
	n int
}

// NewLeaky allocates a "pooled" record nothing ever recycles.
func NewLeaky() *leaky {
	return &leaky{}
}

// UseAfterPut touches a record after handing it back to the pool.
func (p *pool) UseAfterPut() int {
	r := p.get()
	r.n = 9
	p.put(r)
	return r.n
}

// DoublePut releases the same record twice.
func (p *pool) DoublePut() {
	r := p.get()
	p.put(r)
	p.put(r)
}

// ReacquireIsFine reassigns the variable after the release; later uses refer
// to the new record. Silent.
func (p *pool) ReacquireIsFine() int {
	r := p.get()
	p.put(r)
	r = p.get()
	n := r.n
	p.put(r)
	return n
}
