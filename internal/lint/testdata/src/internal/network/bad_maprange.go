package network

import (
	"sort"

	"triosim/internal/sim"
)

type ev struct{ t sim.VTime }

func (e ev) Time() sim.VTime { return e.t }

// ScheduleFromMap schedules events while ranging a map: one map-range-order
// finding (same-timestamp events tie-break on scheduling sequence).
func ScheduleFromMap(eng *sim.Engine, pending map[int]sim.VTime) {
	for _, t := range pending {
		eng.Schedule(ev{t: t})
	}
}

// CollectUnsorted appends map keys without sorting: one map-range-order
// finding.
func CollectUnsorted(set map[string]bool) []string {
	var out []string
	for k := range set {
		out = append(out, k)
	}
	return out
}

// CollectSorted is the canonical idiom — append the keys, sort, then use:
// clean.
func CollectSorted(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PerElementUpdate mutates the loop value's own state: order-free, clean.
func PerElementUpdate(acc map[string]*struct{ Sum float64 }) {
	for _, a := range acc {
		a.Sum *= 0.5
	}
}

// SumFloats accumulates into an outer float in map order: one
// map-range-order finding (float addition is not associative).
func SumFloats(values map[string]float64) float64 {
	var total float64
	for _, v := range values {
		total += v
	}
	return total
}
