// Package good contains only clean patterns; the fixture test asserts no
// analyzer reports anything here.
package good

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"triosim/internal/sim"
)

// Deadline uses the VTime ordering helpers.
func Deadline(now, limit sim.VTime) bool {
	return now.AtOrBefore(limit)
}

// Shuffled draws from an explicitly seeded source.
func Shuffled(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)
}

// Report emits a map in sorted-key order.
func Report(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, counts[k])
	}
}
