// Package sim is a minimal stand-in for triosim/internal/sim so the lint
// fixtures type-check against the same package path the analyzers match.
package sim

// VTime mirrors the real virtual-time type.
type VTime float64

// Before reports whether t is strictly earlier than u.
func (t VTime) Before(u VTime) bool { return t < u }

// After reports whether t is strictly later than u.
func (t VTime) After(u VTime) bool { return t > u }

// AtOrBefore reports whether t is no later than u.
func (t VTime) AtOrBefore(u VTime) bool { return t <= u }

// AtOrAfter reports whether t is no earlier than u.
func (t VTime) AtOrAfter(u VTime) bool { return t >= u }

// Event is the minimal event surface the fixtures need.
type Event interface {
	Time() VTime
}

// Engine is a stub engine with the Schedule method the map-range-order
// analyzer treats as an ordered effect.
type Engine struct{}

// Schedule is a no-op.
func (e *Engine) Schedule(ev Event) {}
