// Package hotbad holds hotpath-alloc positive fixtures: every allocation
// class the analyzer names, inside //triosim:hotpath functions.
package hotbad

type item struct {
	vals []float64
}

func sink(v interface{}) {}

var results []int

// Churn allocates six different ways on a declared hot path.
//
//triosim:hotpath
func Churn(it *item, n int) {
	buf := make([]float64, n)

	p := &item{}
	_ = p

	weights := []float64{1, 2, 3}
	_ = weights

	results = append(results, n)

	f := func() int { return n }
	_ = f()

	box := item{}
	sink(box)

	_ = buf
}
