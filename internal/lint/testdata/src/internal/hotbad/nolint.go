package hotbad

// warm allocates once on its cold first call; the suppression records the
// amortization argument. No findings.
//
//triosim:hotpath
func warm(n int) []float64 {
	if scratch == nil {
		scratch = make([]float64, 0, n) //triosim:nolint hotpath-alloc -- amortized: first-call growth only
	}
	return scratch
}
