package hotbad

// scratch is the preallocated buffer Steady reuses.
var scratch []float64

// Steady shows the allowed hot-path idioms: value struct literals, re-slice
// append (reuse of the backing array), pointer-shaped values to interface
// parameters, and calls to non-allocating helpers. Silent.
//
//triosim:hotpath
func Steady(it *item, x float64) float64 {
	scratch = append(scratch[:0], x, x*2)
	probe := item{vals: scratch}
	sink(it) // pointers fit the interface word: no box
	return probe.vals[0] + sum(probe.vals)
}

// sum is not annotated; its body is out of scope for hotpath-alloc.
func sum(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
