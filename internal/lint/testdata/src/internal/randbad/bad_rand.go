// Package randbad exercises the no-unseeded-rand analyzer outside the sim
// packages (the rule applies module-wide).
package randbad

import (
	"math/rand"
	"time"
)

// GlobalDraw uses the global time-seeded source: one finding.
func GlobalDraw() int {
	return rand.Intn(10)
}

// ClockSeeded derives the seed from the wall clock: one finding.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// WellSeeded uses an explicit seed: clean.
func WellSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
