package randbad

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Test files are checked from the AST alone: the global source and an
// unseeded quick config are each one finding; the seeded rng is clean.
func TestUnseeded(t *testing.T) {
	_ = rand.Intn(3)

	f := func(x uint8) bool { return int(x) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	_ = rng.Intn(3)

	seeded := func(x uint8) bool { return int(x) >= 0 }
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(seeded, cfg); err != nil {
		t.Fatal(err)
	}
}
