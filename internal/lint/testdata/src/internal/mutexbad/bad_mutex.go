// Package mutexbad holds mutex-discipline fixture violations. It sits
// outside the sim-package set (where sync is banned outright by
// no-goroutine-in-sim), mirroring the real consumers: sweep, tracecache,
// monitor.
package mutexbad

import "sync"

type guarded struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	n     int
	ready chan struct{}
}

// MissingUnlock acquires and never releases.
func (g *guarded) MissingUnlock() int {
	g.mu.Lock()
	return g.n
}

// DoubleDeferUnlock defer-unlocks the same mutex twice; the second defer
// fires on an unheld mutex.
func (g *guarded) DoubleDeferUnlock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	defer g.mu.Unlock()
}

// ByValue takes a lock by value; the copy locks independently.
func ByValue(mu sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// CopyLock reads a lock into a new variable.
func (g *guarded) CopyLock() {
	mu2 := g.mu
	mu2.Lock()
	mu2.Unlock()
}

// BlockedUnderLock receives from a channel while holding the mutex.
func (g *guarded) BlockedUnderLock() {
	g.mu.Lock()
	<-g.ready
	g.mu.Unlock()
}
