package mutexbad

import "sync"

// lockHandoff hands the mutex to the caller by design; the suppression
// documents it. No findings.
type lockHandoff struct {
	mu sync.Mutex
}

// Acquire intentionally returns with the lock held.
func (h *lockHandoff) Acquire() {
	h.mu.Lock() //triosim:nolint mutex-discipline -- handoff: the caller releases via Release
}

// Release frees the handed-off lock.
func (h *lockHandoff) Release() {
	h.mu.Unlock()
}
