package sweep

import (
	"context"
	"time"
)

// Backoff documents a fixed settle delay that must not be cut short by
// cancellation. No findings.
func Backoff(ctx context.Context) {
	time.Sleep(time.Millisecond) //triosim:nolint ctx-propagation -- fixture: settle delay must complete even on shutdown
}
