// Package sweep holds the ctx-propagation fixtures: it sits at the
// module-relative path the analyzer treats as a cancellable orchestration
// package, and these functions all take a context.
package sweep

import (
	"context"
	"time"

	"triosim/internal/core"
)

// Worker blocks three ways a cancellable function must not, then launches an
// uncancellable run.
func Worker(ctx context.Context, jobs chan string, out chan *core.Result) error {
	time.Sleep(10 * time.Millisecond)

	model := <-jobs

	cfg := core.Config{Model: model}
	res, err := core.Simulate(cfg)
	if err != nil {
		return err
	}

	out <- res
	return nil
}

// GoodWorker threads cancellation correctly everywhere: select around the
// channel ops, Context set before the run. Silent.
func GoodWorker(ctx context.Context, jobs chan string, out chan *core.Result) error {
	var model string
	select {
	case model = <-jobs:
	case <-ctx.Done():
		return ctx.Err()
	}

	cfg := core.Config{Model: model}
	cfg.Context = ctx
	res, err := core.Simulate(cfg)
	if err != nil {
		return err
	}

	select {
	case out <- res:
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

// NoCtx takes no context, so it has not opted into cancellation; its bare
// receive is out of scope. Silent.
func NoCtx(jobs chan string) string {
	return <-jobs
}
