package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAnnotationScanner checks the module-wide registry built during
// loading: the fixture module annotates imm.Entry immutable and rec/leaky
// pooled.
func TestAnnotationScanner(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(mod.Packages) == 0 {
		t.Fatal("no packages")
	}
	ann := mod.Packages[0].ann
	if ann == nil {
		t.Fatal("no annotation registry on Pass")
	}
	for _, key := range []string{"triosim/internal/imm.Entry"} {
		if _, ok := ann.Immutable[key]; !ok {
			t.Errorf("Immutable missing %q; have %v", key, ann.Immutable)
		}
	}
	for _, key := range []string{
		"triosim/internal/poolbad.rec",
		"triosim/internal/poolbad.leaky",
	} {
		if _, ok := ann.Pooled[key]; !ok {
			t.Errorf("Pooled missing %q; have %v", key, ann.Pooled)
		}
	}
	if _, ok := ann.Immutable["triosim/internal/poolbad.rec"]; ok {
		t.Error("pooled type leaked into the immutable registry")
	}
}

// TestDirectiveParsing pins the exact-prefix rule: the directive must be the
// whole comment or be followed by whitespace.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"//triosim:immutable", true},
		{"//triosim:immutable shared out of the cache", true},
		{"//triosim:immutable\tnote", true},
		{"//triosim:immutablex", false},
		{"// triosim:immutable", false}, // directives are not prose comments
	}
	for _, c := range cases {
		src := "package p\n\n" + c.src + "\ntype T struct{}\n"
		mod := parseSingleFile(t, src)
		_, got := mod.Packages[0].ann.Immutable["probe.T"]
		if got != c.want {
			t.Errorf("%q: annotated=%v, want %v", c.src, got, c.want)
		}
	}
}

// TestBaselineDiff exercises the multiset matching: accepted findings are
// absorbed (line numbers ignored), extra instances and new findings
// surface as New, fixed entries as Stale.
func TestBaselineDiff(t *testing.T) {
	root := "/repo"
	f := func(analyzer, file, msg string, line int) Finding {
		return Finding{Analyzer: analyzer, File: "/repo/" + file, Line: line,
			Message: msg}
	}

	accepted := []Finding{
		f("hotpath-alloc", "a/hot.go", "append grows", 10),
		f("hotpath-alloc", "a/hot.go", "append grows", 20),
		f("mutex-discipline", "b/lock.go", "never unlocked", 5),
	}
	b := NewBaseline(root, accepted)
	if len(b.Entries) != 2 {
		t.Fatalf("NewBaseline collapsed to %d entries, want 2: %+v",
			len(b.Entries), b.Entries)
	}

	// Same findings on different lines: fully absorbed.
	moved := []Finding{
		f("hotpath-alloc", "a/hot.go", "append grows", 11),
		f("hotpath-alloc", "a/hot.go", "append grows", 99),
		f("mutex-discipline", "b/lock.go", "never unlocked", 6),
	}
	d := b.Diff(root, moved)
	if len(d.New) != 0 || len(d.Stale) != 0 {
		t.Errorf("moved lines: New=%v Stale=%v, want none", d.New, d.Stale)
	}

	// A third instance of an accepted duplicate is new.
	extra := append(moved, f("hotpath-alloc", "a/hot.go", "append grows", 100))
	d = b.Diff(root, extra)
	if len(d.New) != 1 {
		t.Errorf("extra instance: New=%v, want exactly 1", d.New)
	}

	// A brand-new finding is new; a fixed one goes stale.
	next := []Finding{
		f("hotpath-alloc", "a/hot.go", "append grows", 10),
		f("hotpath-alloc", "a/hot.go", "append grows", 20),
		f("ctx-propagation", "c/sweep.go", "time.Sleep", 3),
	}
	d = b.Diff(root, next)
	if len(d.New) != 1 || d.New[0].Analyzer != "ctx-propagation" {
		t.Errorf("New=%v, want the ctx-propagation finding", d.New)
	}
	if len(d.Stale) != 1 || d.Stale[0].Analyzer != "mutex-discipline" {
		t.Errorf("Stale=%v, want the mutex-discipline entry", d.Stale)
	}
}

// TestBaselineRoundTrip writes a baseline and reads it back byte-stably.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint.baseline.json")
	b := NewBaseline("/r", []Finding{
		{Analyzer: "x", File: "/r/p/f.go", Message: "m"},
	})
	if err := b.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if len(got.Entries) != 1 || got.Entries[0].File != "p/f.go" {
		t.Errorf("round trip: %+v", got.Entries)
	}

	// An empty baseline (the committed clean-tree state) reads fine and
	// passes everything through as new.
	empty := NewBaseline("/r", nil)
	epath := filepath.Join(dir, "empty.json")
	if err := empty.Write(epath); err != nil {
		t.Fatalf("Write empty: %v", err)
	}
	eb, err := ReadBaseline(epath)
	if err != nil {
		t.Fatalf("ReadBaseline empty: %v", err)
	}
	d := eb.Diff("/r", []Finding{{Analyzer: "x", File: "/r/f.go", Message: "m"}})
	if len(d.New) != 1 {
		t.Errorf("empty baseline: New=%v, want 1", d.New)
	}
}

// TestCommittedBaselineIsEmpty pins the repo's contract: the tree is clean,
// so the committed baseline must hold no accepted findings. If a future
// change needs a baseline entry, it should fix the violation instead (or
// argue the exception in review and regenerate).
func TestCommittedBaselineIsEmpty(t *testing.T) {
	b, err := ReadBaseline(filepath.Join("..", "..", "lint.baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("committed baseline has %d accepted finding(s); the tree "+
			"should be clean: %+v", len(b.Entries), b.Entries)
	}
}

// TestConcurrencyFindingMessages spot-checks that diagnostics carry their
// rationale (the "why", not just the "what").
func TestConcurrencyFindingMessages(t *testing.T) {
	findings := loadFixtures(t)
	wantSubstr := map[string]string{
		"mutex-discipline":    "never unlocked",
		"publish-then-mutate": "Clone()",
		"pool-lifecycle":      "pool",
		"hotpath-alloc":       "hotpath",
		"ctx-propagation":     "ctx.Done()",
	}
	for analyzer, substr := range wantSubstr {
		found := false
		for _, f := range findingsFor(findings, analyzer) {
			if strings.Contains(f.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no finding message mentions %q", analyzer, substr)
		}
	}
}
