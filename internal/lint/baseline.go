package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support: a committed snapshot of accepted findings so new
// analyzers can land with the tree imperfect and still gate CI on *new*
// violations only. The baseline is a multiset keyed by (analyzer,
// module-relative file, message) — deliberately NOT line numbers, so
// unrelated edits that shift a finding up or down do not invalidate the
// baseline, while any new finding (or a second instance of an accepted one)
// still fails.

// BaselineEntry is one accepted finding in a baseline file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative, slash-separated
	Message  string `json:"message"`
	// Count collapses identical (analyzer, file, message) triples.
	Count int `json:"count,omitempty"`
}

// Baseline is an accepted-findings multiset.
type Baseline struct {
	// Entries are sorted by (analyzer, file, message) for stable diffs.
	Entries []BaselineEntry `json:"findings"`
}

// baselineKey identifies a finding for baseline matching.
type baselineKey struct {
	analyzer, file, message string
}

// relFile maps a finding's absolute file to the module-relative slash path.
func relFile(root, file string) string {
	if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(file)
}

// NewBaseline builds a baseline from findings (typically a -write-baseline
// run), with files made module-relative against root.
func NewBaseline(root string, findings []Finding) *Baseline {
	counts := map[baselineKey]int{}
	for _, f := range findings {
		counts[baselineKey{f.Analyzer, relFile(root, f.File), f.Message}]++
	}
	b := &Baseline{Entries: []BaselineEntry{}}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Message < c.Message
	})
	return b
}

// ReadBaseline loads a baseline file. A missing file is an error; an empty
// findings list is a valid (clean-tree) baseline.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Write saves the baseline with stable formatting (sorted entries, indented
// JSON, trailing newline) so regeneration produces minimal diffs.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselineDiff is the result of comparing a run against a baseline.
type BaselineDiff struct {
	// New are findings not covered by the baseline — these fail the gate.
	New []Finding
	// Stale are baseline entries no finding matched — fixed violations whose
	// entries should be dropped (reported, never fatal).
	Stale []BaselineEntry
}

// Diff matches findings against the baseline multiset. Each baseline entry
// absorbs up to Count (default 1) matching findings; the remainder is New.
func (b *Baseline) Diff(root string, findings []Finding) BaselineDiff {
	remaining := map[baselineKey]int{}
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		remaining[baselineKey{e.Analyzer, e.File, e.Message}] += n
	}
	var diff BaselineDiff
	for _, f := range findings {
		k := baselineKey{f.Analyzer, relFile(root, f.File), f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		diff.New = append(diff.New, f)
	}
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if remaining[k] >= n {
			// No finding consumed any instance of this entry.
			diff.Stale = append(diff.Stale, e)
			remaining[k] -= n
		} else {
			remaining[k] = 0
		}
	}
	return diff
}
