package lint

import (
	"go/ast"
)

// wallclockFuncs are the package time functions that read or wait on the
// host clock. Types (time.Duration, time.Time) remain usable: only reading
// the wall clock inside the simulation makes results run-dependent.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// NoWallclock forbids host-clock reads inside the simulation packages.
// Virtual time must advance only through the event engine; a time.Now in a
// model makes predictions depend on host load. cmd/ binaries and _test.go
// files are exempt (they may measure the simulator itself), and sim code
// that genuinely needs a wall-clock metric must take an injected clock from
// its caller (see core.Config.Clock).
var NoWallclock = &Analyzer{
	Name: "no-wallclock",
	Doc: "forbid time.Now/time.Since and friends in simulation packages; " +
		"virtual time advances only through the event engine",
	Run: func(pass *Pass) {
		if !isSimPackage(pass.RelPath) {
			return
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := pkgFunc(pass.Info, sel)
				if fn == nil || fn.Pkg().Path() != "time" ||
					!wallclockFuncs[fn.Name()] {
					return true
				}
				pass.Reportf("no-wallclock", sel.Pos(),
					"time.%s reads the host clock inside simulation package %s; "+
						"inject a clock from cmd/ or derive time from the engine",
					fn.Name(), pass.RelPath)
				return true
			})
		}
	},
}
