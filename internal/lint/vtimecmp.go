package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// vtimePkgSuffix matches the package defining VTime in both the real module
// ("triosim/internal/sim") and lint's own test fixtures.
const vtimePkgSuffix = "internal/sim"

// VTimeCompare flags raw relational operators on sim.VTime outside the sim
// package itself. VTime is a float64 underneath, and the engine's total
// order (time, secondary flag, sequence) is defined by its helpers; ad-hoc
// `a < b` comparisons scattered through components are where subtle
// tie-breaking and NaN/inf bugs hide, and they bypass any future change to
// the ordering (e.g. epsilon comparison or integer ticks). Use Before /
// After / AtOrBefore / AtOrAfter / Max / Min instead. Equality (== / !=)
// stays allowed: it has no helper and no ordering subtlety.
var VTimeCompare = &Analyzer{
	Name: "vtime-compare",
	Doc: "flag raw </>/<=/>= on sim.VTime outside internal/sim; use the " +
		"ordering helpers (Before, After, AtOrBefore, AtOrAfter, Max, Min)",
	Run: func(pass *Pass) {
		if pass.RelPath == vtimePkgSuffix {
			return // the defining package implements the helpers
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
				default:
					return true
				}
				if isVTime(pass, be.X) || isVTime(pass, be.Y) {
					pass.Reportf("vtime-compare", be.Pos(),
						"raw %s comparison on sim.VTime; use the ordering "+
							"helpers (Before/After/AtOrBefore/AtOrAfter/Max/Min)",
						be.Op)
				}
				return true
			})
		}
	},
}

// isVTime reports whether the expression's type is the named type VTime from
// an internal/sim package.
func isVTime(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "VTime" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == vtimePkgSuffix ||
		len(path) > len(vtimePkgSuffix) &&
			path[len(path)-len(vtimePkgSuffix)-1] == '/' &&
			path[len(path)-len(vtimePkgSuffix):] == vtimePkgSuffix
}
