package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRangeOrder flags ranging over a map where the body's effects depend on
// iteration order: scheduling engine events, appending to slices, writing
// output, or accumulating floats into variables declared outside the loop.
// Go randomizes map iteration order per run, so each of these turns a map
// range into a nondeterminism source. Order-independent bodies (writing a
// map keyed by the loop variable, mutating the loop value itself) pass, and
// the collect-keys-then-sort idiom is recognized: a body that only appends
// is fine when every appended slice is sorted before further use.
var MapRangeOrder = &Analyzer{
	Name: "map-range-order",
	Doc: "flag map iteration whose body schedules events, appends, writes " +
		"output, or accumulates floats; sort the keys first",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			siblings := stmtSiblings(file)
			ast.Inspect(file, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, rs, siblings)
				return true
			})
		}
	},
}

// effect is one order-dependent action found in a range body.
type effect struct {
	pos  token.Pos
	kind string
	// target is the appended-to expression (append effects only), rendered
	// with types.ExprString for comparison against later sort calls.
	target string
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, siblings map[ast.Stmt]stmtPos) {
	loopVars := rangeVars(pass, rs)
	var effects []effect

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if e, ok := callEffect(pass, node); ok {
				effects = append(effects, e)
			}
		case *ast.AssignStmt:
			effects = append(effects, assignEffects(pass, node, rs, loopVars)...)
		}
		return true
	})
	if len(effects) == 0 {
		return
	}

	// Exemption: a body that only appends, where every appended slice is
	// sorted right after the loop, is the canonical sorted-keys idiom.
	onlyAppends := true
	targets := map[string]bool{}
	for _, e := range effects {
		if e.kind != "appends" {
			onlyAppends = false
			break
		}
		targets[e.target] = true
	}
	if onlyAppends && allSortedAfter(pass, rs, siblings, targets) {
		return
	}

	kinds := map[string]bool{}
	var desc []string
	for _, e := range effects {
		if !kinds[e.kind] {
			kinds[e.kind] = true
			desc = append(desc, e.kind)
		}
	}
	pass.Reportf("map-range-order", rs.Pos(),
		"map iteration %s in randomized order; iterate sorted keys instead",
		strings.Join(desc, ", "))
}

// rangeVars collects the loop's key/value variable objects; effects confined
// to them are order-independent.
func rangeVars(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, expr := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := expr.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// schedulingMethods are method names that feed the event engine.
var schedulingMethods = map[string]bool{"Schedule": true, "Send": true}

// outputMethods are writer methods whose call order is visible in output.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func callEffect(pass *Pass, call *ast.CallExpr) (effect, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Builtin append is handled by assignEffects, which knows the target.
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if fn := pkgFunc(pass.Info, fun); fn != nil {
			if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(name, "Print") ||
				strings.HasPrefix(name, "Fprint")) {
				return effect{pos: call.Pos(), kind: "writes output"}, true
			}
			return effect{}, false
		}
		if schedulingMethods[name] {
			return effect{pos: call.Pos(), kind: "schedules events"}, true
		}
		if outputMethods[name] {
			return effect{pos: call.Pos(), kind: "writes output"}, true
		}
	}
	return effect{}, false
}

// assignEffects inspects one assignment inside the body for appends into
// outer slices and float accumulation into outer variables. Targets rooted
// in the loop variables or in variables declared inside the body are
// order-free: each iteration touches its own state.
func assignEffects(pass *Pass, as *ast.AssignStmt, rs *ast.RangeStmt,
	loopVars map[types.Object]bool) []effect {

	var out []effect
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || !isBuiltinAppend(pass, id) {
				continue
			}
			if i < len(as.Lhs) && !orderFree(pass, as.Lhs[i], rs, loopVars) {
				out = append(out, effect{
					pos:    as.Pos(),
					kind:   "appends",
					target: types.ExprString(as.Lhs[i]),
				})
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		tv, ok := pass.Info.Types[lhs]
		if !ok {
			return out
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			return out
		}
		if orderFree(pass, lhs, rs, loopVars) {
			return out
		}
		out = append(out, effect{pos: as.Pos(), kind: "accumulates floats"})
	}
	return out
}

// isBuiltinAppend reports whether the identifier resolves to the builtin
// append (go/types records builtins as *types.Builtin in Uses).
func isBuiltinAppend(pass *Pass, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true // unresolved in a partially-checked file: assume builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// orderFree reports whether assigning through the expression cannot depend
// on iteration order: its base identifier is a loop variable (f.remaining
// where f is the range value) or is declared inside the loop body (a per-key
// local later stored by key).
func orderFree(pass *Pass, expr ast.Expr, rs *ast.RangeStmt,
	vars map[types.Object]bool) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := pass.Info.ObjectOf(e)
			if obj == nil {
				return false
			}
			if vars[obj] {
				return true
			}
			return obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// stmtPos locates a statement within its enclosing statement list.
type stmtPos struct {
	list  []ast.Stmt
	index int
}

// stmtSiblings maps every statement to its position in its enclosing block,
// so an analyzer can look at what follows a loop.
func stmtSiblings(file *ast.File) map[ast.Stmt]stmtPos {
	out := map[ast.Stmt]stmtPos{}
	record := func(list []ast.Stmt) {
		for i, s := range list {
			out[s] = stmtPos{list: list, index: i}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BlockStmt:
			record(node.List)
		case *ast.CaseClause:
			record(node.Body)
		case *ast.CommClause:
			record(node.Body)
		}
		return true
	})
	return out
}

// sortFuncs are the sort/slices package functions that impose an order.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
	"SliceStable": true, "Stable": true, "Sort": true, "SortFunc": true,
	"SortStableFunc": true,
}

// allSortedAfter reports whether every appended-to target is passed to a
// sort call in a statement following the range within the same block.
func allSortedAfter(pass *Pass, rs *ast.RangeStmt, siblings map[ast.Stmt]stmtPos,
	targets map[string]bool) bool {

	sp, ok := siblings[ast.Stmt(rs)]
	if !ok {
		return false
	}
	sorted := map[string]bool{}
	for _, stmt := range sp.list[sp.index+1:] {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !sortFuncs[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			fn := pkgFunc(pass.Info, sel)
			if fn == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			sorted[types.ExprString(call.Args[0])] = true
			return true
		})
	}
	for t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}
