package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PublishThenMutate enforces the read-only sharing contract of types
// annotated //triosim:immutable (cached traces, fitted operator timers):
// once a value escapes its constructor, no field may be written through it.
// The trace cache hands the same *trace.Trace to every concurrent scenario;
// one in-place tweak by a consumer is a data race AND a silent cross-scenario
// result corruption, which no RWMutex can prevent because readers hold no
// lock while using the value.
//
// The rule, per function outside the defining package: a write through an
// expression rooted in an annotated type — field assignment, element
// assignment, op-assignment, append-into-field, copy-into-field — is a
// violation unless the root is a local variable holding a provably fresh
// value: a composite literal, new(T), a call into the defining package (its
// constructors), or a Clone() call (the copy-on-write boundary). Aliases are
// tracked one level: a local initialized from an annotated value's
// pointer/slice/map innards inherits the restriction.
//
// The defining package is exempt — its constructors and mutation API are
// what the annotation reviews — as are _test.go files.
var PublishThenMutate = &Analyzer{
	Name: "publish-then-mutate",
	Doc: "forbid writes through //triosim:immutable values (cached traces, " +
		"fitted timers) outside their defining package; Clone before mutating",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkImmutableScope(pass, fd.Body)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkImmutableScope(pass, fl.Body)
				}
				return true
			})
		}
	},
}

// checkImmutableScope analyzes one function body. Nested function literals
// are analyzed as their own scopes but share the outer scope's fresh/alias
// classification through object identity (objects are per-declaration).
func checkImmutableScope(pass *Pass, body *ast.BlockStmt) {
	fresh := map[types.Object]bool{}
	aliased := map[types.Object]bool{}

	// Pass 1: classify local definitions in source order.
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if node.Tok != token.DEFINE {
				return true
			}
			classifyDefs(pass, node.Lhs, node.Rhs, fresh, aliased)
		case *ast.GenDecl:
			for _, spec := range node.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					classifyDefs(pass, lhs, vs.Values, fresh, aliased)
				}
			}
		}
		return true
	})

	// Pass 2: inspect writes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own scope
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				checkImmutableWrite(pass, lhs, fresh, aliased)
			}
		case *ast.IncDecStmt:
			checkImmutableWrite(pass, node.X, fresh, aliased)
		case *ast.CallExpr:
			// copy(tr.Ops, ...) writes through the first argument.
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok &&
				id.Name == "copy" && len(node.Args) == 2 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					checkImmutableWrite(pass, node.Args[0], fresh, aliased)
				}
			}
		}
		return true
	})
}

// classifyDefs records which newly defined locals are fresh (safe to mutate)
// or aliases of annotated values (unsafe).
func classifyDefs(pass *Pass, lhs, rhs []ast.Expr,
	fresh, aliased map[types.Object]bool) {

	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			continue
		}
		var r ast.Expr
		switch {
		case len(rhs) == len(lhs):
			r = rhs[i]
		case len(rhs) == 1:
			r = rhs[0] // multi-value call: freshness judged on the call
		default:
			continue
		}
		switch {
		case isFreshExpr(pass, r):
			fresh[obj] = true
		case rootsInAnnotated(pass, r, fresh, aliased) && sharesMemory(obj):
			aliased[obj] = true
		}
	}
}

// isFreshExpr reports whether evaluating the expression yields a value not
// yet published: a composite literal, new(T), a Clone() call, or a call to a
// package-level function of the package defining the (eventual) annotated
// type — i.e. one of its constructors.
func isFreshExpr(pass *Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "new" {
				_, isBuiltin := pass.Info.Uses[fun].(*types.Builtin)
				return isBuiltin
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Clone" {
				return true // the sanctioned copy-on-write boundary
			}
			if fn := pkgFunc(pass.Info, fun); fn != nil {
				// A package-level call into the package that defines the
				// call's (annotated) result type is a constructor.
				tv, ok := pass.Info.Types[e]
				if ok && pass.IsImmutable(tv.Type) {
					key := typeKey(tv.Type)
					return fn.Pkg().Path() == immutableOwner(key)
				}
			}
		}
	}
	return false
}

// rootsInAnnotated reports whether the expression reads out of a value whose
// type is annotated immutable (or an alias of one).
func rootsInAnnotated(pass *Pass, expr ast.Expr,
	fresh, aliased map[types.Object]bool) bool {

	root, annotated := writeRoot(pass, expr, fresh, aliased)
	return annotated && root != nil && !fresh[root]
}

// sharesMemory reports whether a variable of obj's type can share backing
// store with its source (pointer, slice, or map).
func sharesMemory(obj types.Object) bool {
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// checkImmutableWrite reports a finding when the written expression roots in
// an annotated immutable value that is not a fresh local.
func checkImmutableWrite(pass *Pass, lhs ast.Expr,
	fresh, aliased map[types.Object]bool) {

	// Only writes *through* a value count. Rebinding (`tr = x`) and storing
	// an annotated value INTO a container (`cache[k] = tr`) do not mutate
	// the object, so the annotation test starts at the base expression the
	// write goes through, not at the lhs itself (whose own type is the type
	// of the slot being assigned).
	var base ast.Expr
	switch node := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		base = node.X
	case *ast.IndexExpr:
		base = node.X
	case *ast.StarExpr:
		base = node.X
	default:
		return
	}
	root, annotated := writeRoot(pass, base, fresh, aliased)
	if !annotated {
		return
	}
	if root != nil && fresh[root] {
		return
	}
	key := annotatedKeyOf(pass, lhs, aliased)
	if key != "" && pass.PkgPath == immutableOwner(key) {
		return // defining package: constructors and reviewed mutation API
	}
	name := key
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	if name == "" {
		name = "an immutable value"
	}
	pass.Reportf("publish-then-mutate", lhs.Pos(),
		"write through %s, which is annotated //triosim:immutable and may "+
			"be shared (e.g. out of the trace cache); Clone() before mutating",
		name)
}

// writeRoot walks a selector/index/star chain to its root identifier and
// reports whether any step of the chain has an annotated immutable type.
func writeRoot(pass *Pass, expr ast.Expr,
	fresh, aliased map[types.Object]bool) (types.Object, bool) {

	annotated := false
	for {
		e := ast.Unparen(expr)
		if tv, ok := pass.Info.Types[e]; ok && pass.IsImmutable(tv.Type) {
			annotated = true
		}
		switch node := e.(type) {
		case *ast.Ident:
			obj := pass.Info.ObjectOf(node)
			if obj != nil && aliased[obj] {
				annotated = true
			}
			return obj, annotated
		case *ast.SelectorExpr:
			expr = node.X
		case *ast.IndexExpr:
			expr = node.X
		case *ast.StarExpr:
			expr = node.X
		case *ast.SliceExpr:
			expr = node.X
		case *ast.UnaryExpr:
			if node.Op != token.AND {
				return nil, annotated
			}
			expr = node.X // &tr.Ops[i] aliases into tr
		case *ast.CallExpr:
			// Chain roots in a call result (e.g. get().Field = v): treat the
			// call's type as the verdict; no root object.
			return nil, annotated
		default:
			return nil, annotated
		}
	}
}

// annotatedKeyOf finds the annotated type key along the write chain, for the
// diagnostic and the defining-package exemption.
func annotatedKeyOf(pass *Pass, expr ast.Expr,
	aliased map[types.Object]bool) string {

	for {
		e := ast.Unparen(expr)
		if tv, ok := pass.Info.Types[e]; ok && pass.IsImmutable(tv.Type) {
			return typeKey(tv.Type)
		}
		switch node := e.(type) {
		case *ast.SelectorExpr:
			expr = node.X
		case *ast.IndexExpr:
			expr = node.X
		case *ast.StarExpr:
			expr = node.X
		case *ast.SliceExpr:
			expr = node.X
		default:
			return ""
		}
	}
}
