package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolLifecycle checks free-list discipline for types annotated
// //triosim:pooled (the engine's funcEvent records, the network's flow
// objects, the executor's completion records). Pooled objects are recycled:
// after a value is handed back to its pool, the pool may recycle it at any
// moment, so touching it again reads or corrupts another owner's state —
// the classic use-after-free, reintroduced on purpose for allocation-free
// steady state.
//
// Per function:
//
//   - use-after-put: any use of a pooled variable in a statement after the
//     one that released it (putX(v), pool.put(v), freeList = append(freeList,
//     v), ...). Reassigning the variable first (v = getX()) resets tracking.
//   - double put: the same variable released twice with no intervening
//     reassignment.
//
// Release points are recognized by name: a call whose callee name starts
// with put/release/recycle/free (any case) taking the pooled value as an
// argument, or an append of the pooled value assigned to a field/variable
// whose name contains "free" or "pool".
var PoolLifecycle = &Analyzer{
	Name: "pool-lifecycle",
	Doc: "flag use-after-Put and double-Put of //triosim:pooled values " +
		"(recycled free-list objects: funcEvent, flow, doneRec)",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkPoolScope(pass, fd.Body)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkPoolScope(pass, fl.Body)
				}
				return true
			})
		}
		checkPoolHasRelease(pass)
	},
}

// checkPoolHasRelease verifies, once per defining package, that every
// //triosim:pooled type actually has a release path somewhere in the
// package — a pool annotation without a Put means every "pooled" object
// leaks and the free list never fills.
func checkPoolHasRelease(pass *Pass) {
	if pass.ann == nil {
		return
	}
	released := map[string]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			for _, id := range releasedIdents(pass, stmt) {
				if tv, ok := pass.Info.Types[id]; ok {
					released[typeKey(tv.Type)] = true
				}
			}
			return true
		})
	}
	for key, pos := range pass.ann.Pooled {
		if immutableOwner(key) != pass.PkgPath || released[key] {
			continue
		}
		pass.Reportf("pool-lifecycle", pos,
			"type %s is annotated //triosim:pooled but its package has no "+
				"release path (put*/release*/recycle*/free* or append to a "+
				"free list); pooled values leak", key)
	}
}

// checkPoolScope walks one function body's statement lists looking for
// release points, then scans the statements after each release.
func checkPoolScope(pass *Pass, body *ast.BlockStmt) {
	walkStmtLists(body, func(list []ast.Stmt) {
		for i, stmt := range list {
			// Only direct releases count here: a release nested in an inner
			// block (conditional early-exit) is checked against the inner
			// list when walkStmtLists reaches it, not against statements
			// that only run when the branch was NOT taken.
			// defer pool.put(v) releases at scope end; later uses are fine.
			switch stmt.(type) {
			case *ast.ExprStmt, *ast.AssignStmt:
			default:
				continue
			}
			for _, rel := range releasedIdents(pass, stmt) {
				reportUseAfterPut(pass, rel, list[i+1:])
			}
		}
	})
}

// walkStmtLists invokes fn on every statement list in the body: the body
// itself and each nested block (if/for/switch/select bodies), excluding
// nested function literals, which are their own scopes.
func walkStmtLists(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			fn(node.List)
		case *ast.CaseClause:
			fn(node.Body)
		case *ast.CommClause:
			fn(node.Body)
		}
		return true
	})
}

// releaseName reports whether a callee name reads as a pool-release
// operation.
func releaseName(name string) bool {
	lower := strings.ToLower(name)
	for _, prefix := range []string{"put", "release", "recycle", "free"} {
		if strings.HasPrefix(lower, prefix) {
			return true
		}
	}
	return false
}

// poolStoreName reports whether the destination of an append looks like a
// free list ("freeList", "eventPool", ...).
func poolStoreName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "free") || strings.Contains(lower, "pool")
}

// releasedIdents returns the pooled-typed identifiers the statement hands
// back to a pool, if any.
func releasedIdents(pass *Pass, stmt ast.Stmt) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			name := calleeName(node)
			if name == "" || !releaseName(name) {
				return true
			}
			for _, arg := range node.Args {
				if id := pooledIdent(pass, arg); id != nil {
					out = append(out, id)
				}
			}
		case *ast.AssignStmt:
			// freeList = append(freeList, v)
			for i, rhs := range node.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(node.Lhs) <= i {
					continue
				}
				fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || fn.Name != "append" || len(call.Args) < 2 {
					continue
				}
				if !poolStoreName(lastSelName(node.Lhs[i])) {
					continue
				}
				for _, arg := range call.Args[1:] {
					if id := pooledIdent(pass, arg); id != nil {
						out = append(out, id)
					}
				}
			}
		}
		return true
	})
	return out
}

// calleeName extracts the simple name of a call's callee ("putRec" from
// x.putRec(v) or putRec(v)).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// lastSelName renders the final identifier of an lvalue expression
// ("freeList" from e.freeList).
func lastSelName(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// pooledIdent returns the identifier when the expression is a plain variable
// of a //triosim:pooled type.
func pooledIdent(pass *Pass, expr ast.Expr) *ast.Ident {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	tv, ok := pass.Info.Types[id]
	if !ok || !pass.IsPooled(tv.Type) {
		return nil
	}
	return id
}

// reportUseAfterPut scans the statements following a release for uses of the
// released variable, stopping at a reassignment.
func reportUseAfterPut(pass *Pass, rel *ast.Ident, rest []ast.Stmt) {
	obj := pass.Info.ObjectOf(rel)
	if obj == nil {
		return
	}
	for _, stmt := range rest {
		if reassignsIdent(pass, stmt, obj) {
			return
		}
		var useAfter *ast.Ident
		rereleased := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if useAfter != nil || rereleased {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || pass.Info.ObjectOf(id) != obj {
				return true
			}
			// A second release of the same value is a double-put, a
			// stronger diagnosis than use-after-put.
			for _, again := range releasedIdents(pass, stmt) {
				if again == id {
					rereleased = true
					return false
				}
			}
			useAfter = id
			return false
		})
		switch {
		case rereleased:
			pass.Reportf("pool-lifecycle", stmt.Pos(),
				"%s is released to its pool twice; the pool will hand the "+
					"same object to two owners", rel.Name)
			return
		case useAfter != nil:
			pass.Reportf("pool-lifecycle", useAfter.Pos(),
				"%s is used after being released to its pool (released at "+
					"line %d); the pool may already have recycled it",
				rel.Name, pass.Fset.Position(rel.Pos()).Line)
			return
		}
	}
}

// reassignsIdent reports whether the statement assigns a new value to the
// object's variable (making later uses safe again).
func reassignsIdent(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if ok && pass.Info.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
