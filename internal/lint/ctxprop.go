package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxPropagation checks that the long-running orchestration paths — the
// sweep pool today, the triosimd server planned in the roadmap — stay
// cancellable. The simulator core is deliberately context-free (a run is a
// pure function of its inputs), so cancellation lives entirely at the
// orchestration layer: a worker that calls into a multi-minute simulation
// with a core.Config whose Context field was never threaded through cannot
// be stopped, and a bare channel op or time.Sleep in a cancellable function
// blocks past its caller's deadline.
//
// Scope: only packages in serverPackages, and within them only functions
// that take a context.Context (those opted into cancellation). Flagged:
//
//   - time.Sleep — sleeps through cancellation; use a timer in a select
//     with ctx.Done();
//   - channel send/receive outside a select — blocks forever if the
//     counterpart died; select with ctx.Done() instead;
//   - calling core.Simulate / core.GroundTruth (or any func taking
//     core.Config) with a config whose Context field is never set in the
//     function — the run cannot observe cancellation.
var CtxPropagation = &Analyzer{
	Name: "ctx-propagation",
	Doc: "in sweep/server packages, flag blocking calls that ignore an " +
		"in-scope context.Context and core.Config values passed on without " +
		"their Context field set",
	Run: func(pass *Pass) {
		if !isServerPackage(pass.RelPath) {
			return
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !hasContextParam(pass, fd.Type) {
					continue
				}
				checkCtxBody(pass, fd.Body)
			}
		}
	},
}

// serverPackages are the module-relative directories holding long-running,
// cancellable orchestration: the sweep pool, the monitor, and the triosimd
// server trees.
var serverPackages = []string{
	"internal/sweep",
	"internal/monitor",
	"internal/server",
	"cmd/triosimd",
}

// isServerPackage reports whether relPath is under the cancellation
// contract.
func isServerPackage(relPath string) bool {
	for _, p := range serverPackages {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// hasContextParam reports whether the function signature takes a
// context.Context.
func hasContextParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" &&
		obj.Name() == "Context"
}

// checkCtxBody inspects one cancellable function body. Nested function
// literals are included: a closure launched by a cancellable function
// inherits its obligations.
func checkCtxBody(pass *Pass, body *ast.BlockStmt) {
	// Channel ops inside a select's comm clauses are the fix, not the bug.
	inSelect := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					inSelect[cc.Comm] = true
					// The comm statement may wrap the op: v := <-ch.
					ast.Inspect(cc.Comm, func(m ast.Node) bool {
						switch m.(type) {
						case *ast.SendStmt, *ast.UnaryExpr:
							inSelect[m] = true
						}
						return true
					})
				}
			}
		}
		return true
	})

	configsWithCtx := collectCtxAssignedConfigs(pass, body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			checkCtxCall(pass, node, configsWithCtx, body.Pos())
		case *ast.SendStmt:
			if !inSelect[node] {
				pass.Reportf("ctx-propagation", node.Pos(),
					"bare channel send in a cancellable function; wrap in a "+
						"select with ctx.Done() so shutdown is not wedged by "+
						"a dead receiver")
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !inSelect[node] {
				pass.Reportf("ctx-propagation", node.Pos(),
					"bare channel receive in a cancellable function; wrap in "+
						"a select with ctx.Done()")
			}
		}
		return true
	})
}

// collectCtxAssignedConfigs records the objects of core.Config variables
// whose Context field is assigned anywhere in the body (cfg.Context = ctx).
func collectCtxAssignedConfigs(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Context" {
				continue
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	// Composite literals with an explicit Context field also count:
	// core.Config{Context: ctx, ...} assigned to a variable.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			cl, ok := ast.Unparen(rhs).(*ast.CompositeLit)
			if !ok || !compositeSetsContext(cl) || len(as.Lhs) <= i {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// compositeSetsContext reports whether a composite literal names a Context
// field.
func compositeSetsContext(cl *ast.CompositeLit) bool {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Context" {
			return true
		}
	}
	return false
}

// checkCtxCall flags time.Sleep and simulation entry points called with a
// context-less config. bodyPos separates the enclosing function's
// parameters (declared before the body, the caller's responsibility) from
// locally built configs (which must be wired here).
func checkCtxCall(pass *Pass, call *ast.CallExpr, configsWithCtx map[types.Object]bool, bodyPos token.Pos) {
	fn := pkgFunc(pass.Info, call.Fun)
	if fn == nil {
		return
	}
	if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
		pass.Reportf("ctx-propagation", call.Pos(),
			"time.Sleep in a cancellable function sleeps through "+
				"cancellation; use time.NewTimer in a select with ctx.Done()")
		return
	}
	// A call passing a core.Config (by value or pointer) whose Context was
	// never set in this function hands off uncancellable work.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() && !sig.Variadic() {
			break
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || !isCoreConfig(tv.Type) {
			continue
		}
		// Config passed as a composite literal that sets Context inline.
		if cl, ok := compositeOf(arg); ok {
			if !compositeSetsContext(cl) {
				pass.Reportf("ctx-propagation", arg.Pos(),
					"core.Config literal passed to %s without its Context "+
						"field; the run cannot observe cancellation",
					fn.Name())
			}
			continue
		}
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || configsWithCtx[obj] {
			continue
		}
		// Parameters are the caller's responsibility; only locally built
		// configs must be wired here.
		if obj.Pos() < bodyPos {
			continue
		}
		pass.Reportf("ctx-propagation", arg.Pos(),
			"%s is passed to %s but its Context field is never set in this "+
				"function; thread the ctx parameter via %s.Context so the "+
				"run can be cancelled", id.Name, fn.Name(), id.Name)
	}
}

// compositeOf unwraps arg to a composite literal through & and parens.
func compositeOf(arg ast.Expr) (*ast.CompositeLit, bool) {
	e := ast.Unparen(arg)
	if ue, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(ue.X)
	}
	cl, ok := e.(*ast.CompositeLit)
	return cl, ok
}

// isCoreConfig reports whether t (through pointers) is the simulator's
// config struct (a type named Config with a Context field).
func isCoreConfig(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Name() != "Config" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Context" && isContextType(f.Type()) {
			return true
		}
	}
	return false
}
