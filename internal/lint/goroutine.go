package lint

import (
	"go/ast"
	"strings"
)

// NoGoroutineInSim forbids goroutines and sync primitives inside the serial
// engine's domain. SerialEngine's contract (internal/sim/engine.go) is that
// every simulated component runs in the single goroutine that calls Run, so
// components need no locking; a go statement there either races with the
// engine or silently depends on scheduler timing, and a sync.Mutex is a sign
// some component believes the contract is broken. Concurrency belongs at the
// boundary (cmd/, internal/monitor's HTTP surface), not in the models.
var NoGoroutineInSim = &Analyzer{
	Name: "no-goroutine-in-sim",
	Doc: "forbid go statements, select, and sync imports inside the serial " +
		"simulation packages; the engine is single-goroutine by contract",
	Run: func(pass *Pass) {
		if !isSimPackage(pass.RelPath) {
			return
		}
		for _, file := range pass.Files {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "sync" || path == "sync/atomic" {
					pass.Reportf("no-goroutine-in-sim", imp.Pos(),
						"import of %q in simulation package %s; the serial "+
							"engine contract makes sync primitives dead "+
							"weight or a race", path, pass.RelPath)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.GoStmt:
					pass.Reportf("no-goroutine-in-sim", n.Pos(),
						"go statement in simulation package %s; all simulated "+
							"work must run via engine events in one goroutine",
						pass.RelPath)
				case *ast.SelectStmt:
					pass.Reportf("no-goroutine-in-sim", n.Pos(),
						"select statement in simulation package %s; channel "+
							"scheduling is nondeterministic by design",
						pass.RelPath)
				}
				return true
			})
		}
	},
}
