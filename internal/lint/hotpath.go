package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// describeCompositeKind labels a slice/map literal's kind for diagnostics.
func describeCompositeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// HotpathAlloc enforces the zero-allocation contract of functions annotated
// //triosim:hotpath (the engine dispatch loop, the 4-ary heap operations,
// the max-min rate solver). These run millions of times per simulated
// second; one heap allocation per call turns the "lightweight" in TrioSim's
// title into GC pressure that dominates the profile. The benchdiff gate
// catches regressions after the fact — this analyzer names the allocating
// expression at review time.
//
// Flagged inside an annotated function (and its nested literals):
//
//   - &T{...} and escaping composite literals (slice/map literals);
//   - make() and new();
//   - append() onto anything except a re-sliced backing array (x[:0] — the
//     free-list / reuse idiom) — append may grow and allocate;
//   - function literals (closure environments allocate);
//   - interface boxing: a concrete-typed argument passed to an interface
//     parameter allocates when the value escapes.
//
// Amortized or cold-path allocations inside hot functions are real and
// sometimes correct (error paths, first-call growth): suppress those with
// //triosim:nolint hotpath-alloc -- <why it is amortized/cold>.
var HotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc: "flag allocation sites (composite literals, make/new, growing " +
		"append, closures, interface boxing) in //triosim:hotpath functions",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			for _, fd := range hotpathFuncs(file) {
				if fd.Body != nil {
					checkHotpathBody(pass, fd.Body)
				}
			}
		}
	},
}

// checkHotpathBody reports every allocation site in one annotated body.
func checkHotpathBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op != token.AND {
				return true
			}
			if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
				pass.Reportf("hotpath-alloc", node.Pos(),
					"&T{...} in a //triosim:hotpath function escapes to the "+
						"heap; reuse a pooled object")
				return false
			}
		case *ast.CompositeLit:
			// Plain struct literals are stack values; only literals that
			// carry a backing store (slices, maps) allocate per evaluation.
			tv, ok := pass.Info.Types[node]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf("hotpath-alloc", node.Pos(),
					"%s literal in a //triosim:hotpath function allocates "+
						"its backing store; hoist it or reuse a buffer",
					describeCompositeKind(tv.Type))
				return false // don't re-report nested literals
			}
		case *ast.FuncLit:
			pass.Reportf("hotpath-alloc", node.Pos(),
				"function literal in a //triosim:hotpath function; closures "+
					"allocate their environment — use a method value bound "+
					"once at construction")
			// Still scan the closure body: it runs on the hot path too.
			return true
		case *ast.CallExpr:
			checkHotpathCall(pass, node)
		}
		return true
	})
}

// checkHotpathCall classifies one call inside a hot function.
func checkHotpathCall(pass *Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf("hotpath-alloc", call.Pos(),
					"%s() in a //triosim:hotpath function; allocate once at "+
						"construction and reuse", id.Name)
			case "append":
				if len(call.Args) > 0 && isResliceReuse(call.Args[0]) {
					return // append(x[:0], ...) — the reuse idiom
				}
				pass.Reportf("hotpath-alloc", call.Pos(),
					"append() in a //triosim:hotpath function may grow the "+
						"backing array; size it up front or append onto a "+
						"re-sliced buffer (buf[:0])")
			}
			return
		}
	}
	checkInterfaceBoxing(pass, call)
}

// isResliceReuse reports whether the expression is a re-slice like x[:0] or
// x[:n] — appending onto it reuses the existing backing array until cap.
func isResliceReuse(expr ast.Expr) bool {
	_, ok := ast.Unparen(expr).(*ast.SliceExpr)
	return ok
}

// checkInterfaceBoxing flags concrete-typed arguments passed to interface
// parameters: the conversion boxes the value on the heap when it escapes.
// Reported once per call (the first boxing argument) to keep the signal
// readable.
func checkInterfaceBoxing(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue // a spread slice arg (f(xs...)) does not box
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type.Underlying()) {
			continue // interface-to-interface: no box
		}
		if at.IsNil() {
			continue
		}
		if basicUntypedConstant(at) {
			continue // untyped constants to any-params are common & cheap
		}
		switch at.Type.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: fits the iface data word, no box
		}
		pass.Reportf("hotpath-alloc", arg.Pos(),
			"concrete value converted to interface %s in a "+
				"//triosim:hotpath call; boxing allocates when the value "+
				"escapes — take the concrete type or preconvert once",
			pt.String())
		return
	}
}

// basicUntypedConstant reports whether the value is a constant (boxing a
// constant folds to a static descriptor in practice).
func basicUntypedConstant(tv types.TypeAndValue) bool {
	return tv.Value != nil
}
