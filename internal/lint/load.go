package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a parsed and type-checked module tree, ready for analysis.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Packages holds one Pass per package directory, in deterministic
	// (sorted relative-path) order.
	Packages []*Pass
}

// loader type-checks module packages with a custom importer: module-internal
// imports resolve directly against the module tree, everything else (the
// standard library) goes through the stdlib source importer. No toolchain
// export data or third-party loader is involved.
type loader struct {
	root    string
	modpath string
	fset    *token.FileSet
	std     types.ImporterFrom
	cache   map[string]*entry
	nolint  map[string]map[int][]string
	ann     *Annotations
}

type entry struct {
	pass *Pass
	err  error
}

var _ types.ImporterFrom = (*loader)(nil)

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom resolves an import encountered while type-checking.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if rel, ok := l.moduleRel(path); ok {
		p, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// moduleRel maps an import path inside the module to its relative directory.
func (l *loader) moduleRel(path string) (string, bool) {
	if path == l.modpath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.modpath+"/"); ok {
		return rest, true
	}
	return "", false
}

// load parses and type-checks the package in the module-relative directory,
// memoized so shared dependencies are checked once.
func (l *loader) load(rel string) (*Pass, error) {
	if e, ok := l.cache[rel]; ok {
		return e.pass, e.err
	}
	// Mark in-progress to turn import cycles into errors instead of stack
	// overflows.
	l.cache[rel] = &entry{err: fmt.Errorf("lint: import cycle through %q", rel)}
	pass, err := l.check(rel)
	l.cache[rel] = &entry{pass: pass, err: err}
	return pass, err
}

func (l *loader) check(rel string) (*Pass, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, testFiles []*ast.File
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments)
		if err != nil {
			return nil, err
		}
		collectNolint(l.fset, f, l.nolint)
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	if len(files) == 0 && len(testFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkgPath := l.modpath
	if rel != "." {
		pkgPath = l.modpath + "/" + filepath.ToSlash(rel)
	}
	relPath := ""
	if rel != "." {
		relPath = filepath.ToSlash(rel)
	}
	for _, f := range files {
		collectTypeAnnotations(pkgPath, f, l.ann)
	}
	pass := &Pass{
		Fset:      l.fset,
		PkgPath:   pkgPath,
		RelPath:   relPath,
		Files:     files,
		TestFiles: testFiles,
		nolint:    l.nolint,
		ann:       l.ann,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	if len(files) == 0 {
		// Test-only directory: nothing to type-check, AST analyzers still run.
		pass.Pkg = types.NewPackage(pkgPath, "test")
		return pass, nil
	}

	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(pkgPath, l.fset, files, pass.Info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	pass.Pkg = pkg
	return pass, nil
}

// LoadModule parses go.mod at root, then loads and type-checks every package
// directory in the module (skipping testdata, hidden, and vendored trees).
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	// The stdlib source importer honors build.Default; cgo would make it
	// shell out to the cgo tool, so force the pure-Go stdlib variants.
	build.Default.CgoEnabled = false

	fset := token.NewFileSet()
	l := &loader{
		root:    root,
		modpath: modpath,
		fset:    fset,
		cache:   map[string]*entry{},
		nolint:  map[string]map[int][]string{},
		ann:     newAnnotations(),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modpath, Fset: fset}
	for _, rel := range dirs {
		pass, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		mod.Packages = append(mod.Packages, pass)
	}
	return mod, nil
}

// packageDirs returns the module-relative directories containing Go files,
// sorted for deterministic analysis order.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			// Nested modules are separate worlds.
			if path != root {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") ||
			strings.HasPrefix(d.Name(), ".") || strings.HasPrefix(d.Name(), "_") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits lexically, but re-dedup after sorting to be safe.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module path in %s", gomod)
}
