package lint

// This file implements triosimvet's source annotations: machine-checked
// markers that turn the repo's prose invariants ("cached entries are never
// mutated", "zero allocs in the engine loop", "flow objects are pooled") into
// inputs for the concurrency-safety analyzers. An annotation is a directive
// comment in the doc block of a type or function declaration:
//
//	//triosim:immutable  — on a type: once a value escapes its constructor
//	                       (any function of the defining package, or a Clone),
//	                       no field may be written through it. Enforced by
//	                       publish-then-mutate.
//	//triosim:pooled     — on a type: values are recycled through a free list.
//	                       The defining package must have a release path, and
//	                       a released value must not be touched again.
//	                       Enforced by pool-lifecycle.
//	//triosim:hotpath    — on a function: the body must not allocate (heap
//	                       composite literals, make/new, growing appends,
//	                       closures, interface boxing). Enforced by
//	                       hotpath-alloc.
//
// Type annotations are module-global: the registry is built while loading,
// so a consumer package's pass can ask about types defined elsewhere.
// Function annotations are consulted per package by hotpath-alloc.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation directive comment prefixes.
const (
	immutableDirective = "//triosim:immutable"
	pooledDirective    = "//triosim:pooled"
	hotpathDirective   = "//triosim:hotpath"
)

// Annotations is the module-wide registry of annotated types, keyed by
// "import/path.TypeName". Values are the directive's source position (for
// declaration-site diagnostics).
type Annotations struct {
	Immutable map[string]token.Pos
	Pooled    map[string]token.Pos
}

// newAnnotations returns an empty registry.
func newAnnotations() *Annotations {
	return &Annotations{
		Immutable: map[string]token.Pos{},
		Pooled:    map[string]token.Pos{},
	}
}

// hasDirective reports whether the comment group contains the directive (the
// exact comment, optionally followed by free text after a space).
func hasDirective(doc *ast.CommentGroup, directive string) (token.Pos, bool) {
	if doc == nil {
		return token.NoPos, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directive)
		if !ok {
			continue
		}
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return c.Pos(), true
		}
	}
	return token.NoPos, false
}

// collectTypeAnnotations indexes every annotated type declaration of a file
// into the registry. The directive may sit in the GenDecl's doc (the common
// single-spec form) or the TypeSpec's own doc in a grouped declaration.
func collectTypeAnnotations(pkgPath string, file *ast.File, ann *Annotations) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			key := pkgPath + "." + ts.Name.Name
			for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
				if pos, ok := hasDirective(doc, immutableDirective); ok {
					ann.Immutable[key] = pos
				}
				if pos, ok := hasDirective(doc, pooledDirective); ok {
					ann.Pooled[key] = pos
				}
			}
		}
	}
}

// typeKey renders a named type (through pointers) as the registry key, or ""
// when the type is not a named package-level type.
func typeKey(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// IsImmutable reports whether t (through pointers) is annotated
// //triosim:immutable anywhere in the module.
func (p *Pass) IsImmutable(t types.Type) bool {
	if p.ann == nil {
		return false
	}
	_, ok := p.ann.Immutable[typeKey(t)]
	return ok
}

// IsPooled reports whether t (through pointers) is annotated //triosim:pooled
// anywhere in the module.
func (p *Pass) IsPooled(t types.Type) bool {
	if p.ann == nil {
		return false
	}
	_, ok := p.ann.Pooled[typeKey(t)]
	return ok
}

// immutableOwner returns the import path of the package defining the
// annotated type key ("a/b.T" → "a/b").
func immutableOwner(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[:i]
	}
	return key
}

// hotpathFuncs returns the file's function declarations annotated
// //triosim:hotpath.
func hotpathFuncs(file *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if _, ok := hasDirective(fd.Doc, hotpathDirective); ok {
			out = append(out, fd)
		}
	}
	return out
}
