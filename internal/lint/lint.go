// Package lint implements triosimvet, TrioSim's determinism and
// simulator-invariant static-analysis suite. The discrete-event core
// (internal/sim.SerialEngine) promises that two runs of the same trace
// produce byte-identical schedules; that promise is only as strong as the
// absence of wall-clock reads, unseeded randomness, unordered map iteration
// on result paths, stray goroutines in the serial engine's domain, and ad-hoc
// float comparisons on virtual time. Each analyzer machine-checks one of
// those properties over the whole module using only the standard library's
// go/ast, go/parser and go/types.
//
// Findings can be suppressed per line with a trailing or preceding comment:
//
//	//triosim:nolint <analyzer...> -- reason
//
// An empty analyzer list suppresses every analyzer on that line. The reason
// after "--" is mandatory by convention (the comment is for the reviewer).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col,
		f.Analyzer, f.Message)
}

// Analyzer is one static check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings and nolint directives.
	Name string
	// Doc is a one-paragraph description of the rule and its rationale.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass presents one loaded package to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// PkgPath is the import path (e.g. "triosim/internal/sim").
	PkgPath string
	// RelPath is the module-relative directory ("internal/sim", "" for the
	// module root package).
	RelPath string
	// Files are the package's non-test files, fully type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go files (including external
	// package_test files), parsed but not type-checked. Analyzers that apply
	// to tests must work from the AST alone.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info

	findings *[]Finding
	nolint   map[string]map[int][]string // file → line → analyzer names
	// ann is the module-wide annotation registry (//triosim:immutable,
	// //triosim:pooled), shared by every Pass of a loaded module.
	ann *Annotations
}

// Reportf records a finding unless a nolint directive suppresses it.
func (p *Pass) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(analyzer, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(analyzer string, pos token.Position) bool {
	lines := p.nolint[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "" || name == analyzer {
				return true
			}
		}
	}
	return false
}

// nolintPrefix introduces a suppression comment.
const nolintPrefix = "//triosim:nolint"

// collectNolint indexes every nolint directive in the file by line. A
// directive names the analyzers it silences before an optional "-- reason";
// no names means all analyzers.
func collectNolint(fset *token.FileSet, file *ast.File, into map[string]map[int][]string) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, nolintPrefix)
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //triosim:nolintish
			}
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = rest[:i]
			}
			// Analyzer lists may be separated by spaces, commas, or both
			// ("a b", "a,b", "a, b").
			names := strings.FieldsFunc(rest, func(r rune) bool {
				return r == ' ' || r == '\t' || r == ','
			})
			if len(names) == 0 {
				names = []string{""} // suppress everything
			}
			pos := fset.Position(c.Pos())
			byLine := into[pos.Filename]
			if byLine == nil {
				byLine = map[int][]string{}
				into[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], names...)
		}
	}
}

// simPackages are the module-relative directories covered by the serial-
// engine determinism contract: everything that runs inside (or computes
// inputs to) SerialEngine.Run. cmd/ and _test.go files are exempt.
var simPackages = []string{
	"internal/sim",
	"internal/core",
	"internal/network",
	"internal/collective",
	"internal/extrapolator",
	"internal/hwsim",
	"internal/telemetry",
	"internal/spantrace",
	"internal/serving",
}

// isSimPackage reports whether relPath is under the determinism contract.
func isSimPackage(relPath string) bool {
	for _, p := range simPackages {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns every triosimvet analyzer in stable order: the
// determinism suite (PR 1) followed by the concurrency-safety suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoWallclock,
		NoUnseededRand,
		MapRangeOrder,
		NoGoroutineInSim,
		VTimeCompare,
		MutexDiscipline,
		PublishThenMutate,
		PoolLifecycle,
		HotpathAlloc,
		CtxPropagation,
	}
}

// Run executes every analyzer over every package of a loaded module and
// returns the findings sorted by position.
func Run(mod *Module) []Finding {
	return RunAnalyzers(mod, Analyzers())
}

// RunAnalyzers executes the given analyzers over a loaded module.
func RunAnalyzers(mod *Module, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range mod.Packages {
		pkg.findings = &findings
		for _, a := range analyzers {
			a.Run(pkg)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		if findings[i].Col != findings[j].Col {
			return findings[i].Col < findings[j].Col
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}

// pkgFunc returns the package-level function an expression calls, or nil.
// Methods (receiver != nil) are excluded: rng.Intn is fine, rand.Intn is not.
func pkgFunc(info *types.Info, fun ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// importName returns the local name a file binds the given import path to
// ("" when the file does not import it). A dot import returns ".".
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
