package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtures loads the testdata mini-module (its own go.mod with module
// path "triosim" plus a stub internal/sim, so every analyzer type-checks
// against the package paths it matches in the real tree).
func loadFixtures(t *testing.T) []Finding {
	t.Helper()
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("LoadModule(testdata/src): %v", err)
	}
	return Run(mod)
}

func findingsFor(findings []Finding, analyzer string) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Analyzer == analyzer {
			out = append(out, f)
		}
	}
	return out
}

func base(f Finding) string { return filepath.Base(f.File) }

func TestFixtureFindings(t *testing.T) {
	findings := loadFixtures(t)

	want := map[string]struct {
		count int
		file  string
	}{
		"no-wallclock":        {2, "bad_wallclock.go"},
		"no-goroutine-in-sim": {2, "bad_goroutine.go"},
		"vtime-compare":       {1, "bad_vtime.go"},
		"map-range-order":     {3, "bad_maprange.go"},
		"mutex-discipline":    {5, "bad_mutex.go"},
		"publish-then-mutate": {2, "bad_imm.go"},
		"pool-lifecycle":      {3, "bad_pool.go"},
		"hotpath-alloc":       {6, "bad_hot.go"},
		"ctx-propagation":     {4, "bad_ctx.go"},
	}
	for analyzer, w := range want {
		got := findingsFor(findings, analyzer)
		if len(got) != w.count {
			t.Errorf("%s: %d findings, want %d: %v", analyzer, len(got), w.count, got)
			continue
		}
		for _, f := range got {
			if base(f) != w.file {
				t.Errorf("%s: finding in %s, want all in %s", analyzer, base(f), w.file)
			}
		}
	}

	// no-unseeded-rand fires in both the source fixture (typed) and the test
	// fixture (AST-only).
	randFindings := findingsFor(findings, "no-unseeded-rand")
	byFile := map[string]int{}
	for _, f := range randFindings {
		byFile[base(f)]++
	}
	if byFile["bad_rand.go"] != 2 || byFile["bad_rand_test.go"] != 2 {
		t.Errorf("no-unseeded-rand by file = %v, want bad_rand.go:2 bad_rand_test.go:2",
			byFile)
	}

	// Clean and suppressed fixtures must stay silent.
	for _, f := range findings {
		switch {
		case strings.Contains(f.File, "good"):
			t.Errorf("finding in clean fixture: %v", f)
		case base(f) == "nolint.go":
			t.Errorf("nolint directive did not suppress: %v", f)
		case base(f) == "sim.go":
			t.Errorf("finding in the stub sim package: %v", f)
		}
	}
}

func TestFixtureTreeIsDirty(t *testing.T) {
	// The driver's contract: non-zero exit on the bad fixtures.
	if len(loadFixtures(t)) == 0 {
		t.Fatal("fixture tree produced no findings; the analyzers are dead")
	}
}

// TestRealTreeIsClean is the self-hosting check the CI gate relies on:
// triosimvet must exit zero on the repository itself.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule(repo root): %v", err)
	}
	if len(mod.Packages) < 20 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(mod.Packages))
	}
	findings := Run(mod)
	for _, f := range findings {
		t.Errorf("unexpected finding: %v", f)
	}
}

func TestNolintParsing(t *testing.T) {
	cases := []struct {
		comment  string
		analyzer string
		want     bool
	}{
		{"//triosim:nolint no-wallclock -- reason", "no-wallclock", true},
		{"//triosim:nolint no-wallclock -- reason", "vtime-compare", false},
		{"//triosim:nolint -- silence all", "vtime-compare", true},
		{"//triosim:nolint a b -- two", "b", true},
		{"//triosim:nolint a,b -- comma-joined", "b", true},
		{"//triosim:nolint a, b -- comma and space", "b", true},
		{"//triosim:nolint a , b , c -- spaced commas", "c", true},
		{"//triosim:nolint a,b -- comma-joined", "c", false},
		{"//triosim:nolintish", "no-wallclock", false},
		{"// plain comment", "no-wallclock", false},
	}
	for _, c := range cases {
		src := "package p\n\nvar X = 1 " + c.comment + "\n"
		mod := parseSingleFile(t, src)
		pass := mod.Packages[0]
		var got []Finding
		pass.findings = &got
		// Report at the declaration sharing the comment's line.
		decls := pass.Files[0].Decls
		pass.Reportf(c.analyzer, decls[len(decls)-1].Pos(), "probe")
		suppressed := len(got) == 0
		if suppressed != c.want {
			t.Errorf("%q vs %s: suppressed=%v, want %v",
				c.comment, c.analyzer, suppressed, c.want)
		}
	}
}

// parseSingleFile builds a throwaway one-file module in a temp dir.
func parseSingleFile(t *testing.T, src string) *Module {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module probe\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "p.go"), src)
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return mod
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
