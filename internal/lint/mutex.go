package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexDiscipline checks the lock hygiene of the packages that are allowed to
// use sync at all (the sweep pool, the trace cache, the monitor — everything
// no-goroutine-in-sim does not already ban). It is deliberately conservative:
// each check fires only on patterns that are wrong under any control flow.
//
//   - missing unlock: a function Locks a mutex and contains no matching
//     Unlock (immediate or deferred) anywhere after it;
//   - double unlock: the same mutex expression is defer-Unlocked twice in one
//     function;
//   - lock copied by value: a sync.Mutex/RWMutex/WaitGroup/Once taken as a
//     value parameter, or read into a new variable as a value;
//   - held across blocking ops: a channel send/receive, select, or
//     sync.WaitGroup.Wait between a Lock and the first matching Unlock —
//     blocking while holding a lock is how the sweep pool and a shared cache
//     deadlock under load.
var MutexDiscipline = &Analyzer{
	Name: "mutex-discipline",
	Doc: "check lock/unlock pairing, defer discipline, by-value lock copies, " +
		"and blocking calls (channels, WaitGroup.Wait) while a mutex is held",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockParams(pass, fd.Type)
				checkLockScope(pass, fd.Name.Name, fd.Body)
			}
			// Function literals are separate scopes: a lock taken inside a
			// closure must be released inside it.
			ast.Inspect(file, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkLockParams(pass, fl.Type)
					checkLockScope(pass, "", fl.Body)
				}
				return true
			})
		}
	},
}

// syncValueTypes are the sync types that must never be copied once used.
var syncValueTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
}

// isSyncValue reports whether t is one of the sync value types (not behind a
// pointer — pointers are the correct way to share them).
func isSyncValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		syncValueTypes[obj.Name()]
}

// checkLockParams flags value parameters of sync lock types.
func checkLockParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isSyncValue(tv.Type) {
			continue
		}
		pass.Reportf("mutex-discipline", field.Type.Pos(),
			"sync.%s passed by value; the copy locks independently of the "+
				"original — pass a pointer",
			tv.Type.(*types.Named).Obj().Name())
	}
}

// lockOpKind classifies one statement of interest to the lock checker.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opRLock
	opUnlock
	opRUnlock
	opBlocking // channel send/receive, select, WaitGroup.Wait
	opCopy     // by-value read of a sync lock type
)

// lockOp is one interesting operation, in source order.
type lockOp struct {
	kind     lockOpKind
	expr     string // lock identity (receiver expression rendered)
	pos      token.Pos
	deferred bool
	desc     string // human label for blocking ops
}

// lockMethodKinds maps sync.Mutex/RWMutex method names to op kinds.
var lockMethodKinds = map[string]lockOpKind{
	"Lock": opLock, "RLock": opRLock,
	"Unlock": opUnlock, "RUnlock": opRUnlock,
}

// matchingUnlock returns the unlock kind that releases the given lock kind.
func matchingUnlock(k lockOpKind) lockOpKind {
	if k == opRLock {
		return opRUnlock
	}
	return opUnlock
}

// checkLockScope runs every per-function lock check over one function body.
// funcName exempts lock-helper functions (a method literally named "lock" may
// return with the lock held by design).
func checkLockScope(pass *Pass, funcName string, body *ast.BlockStmt) {
	ops := collectLockOps(pass, body)
	if len(ops) == 0 {
		return
	}

	// Lock-shaped helpers may acquire without releasing.
	lockHelper := funcName == "lock" || funcName == "rlock" ||
		funcName == "Lock" || funcName == "RLock"

	deferCount := map[string]int{}
	for _, op := range ops {
		switch op.kind {
		case opCopy:
			pass.Reportf("mutex-discipline", op.pos,
				"%s copies a sync lock by value; the copy's state diverges "+
					"from the original", op.desc)
		case opUnlock, opRUnlock:
			if !op.deferred {
				continue
			}
			key := op.expr + "/" + map[lockOpKind]string{
				opUnlock: "u", opRUnlock: "ru"}[op.kind]
			deferCount[key]++
			if deferCount[key] == 2 {
				pass.Reportf("mutex-discipline", op.pos,
					"%s is defer-unlocked twice in one function; the second "+
						"defer unlocks an unheld mutex at return", op.expr)
			}
		}
	}

	for i, op := range ops {
		if op.kind != opLock && op.kind != opRLock {
			continue
		}
		unlock := matchingUnlock(op.kind)
		// Find the first matching release after the acquire; deferred
		// releases hold until scope end.
		releaseAt := token.Pos(-1)
		deferredRelease := false
		for _, later := range ops {
			if later.kind != unlock || later.expr != op.expr {
				continue
			}
			if later.deferred {
				deferredRelease = true
				continue
			}
			if later.pos > op.pos &&
				(releaseAt == token.Pos(-1) || later.pos < releaseAt) {
				releaseAt = later.pos
			}
		}
		if releaseAt == token.Pos(-1) && !deferredRelease {
			if !lockHelper {
				pass.Reportf("mutex-discipline", op.pos,
					"%s is locked but never unlocked in this function",
					op.expr)
			}
			continue
		}
		// Held window: acquire → first immediate release, or scope end when
		// only a deferred release exists.
		end := releaseAt
		if end == token.Pos(-1) {
			end = body.End()
		}
		for _, b := range ops[i+1:] {
			if b.kind == opBlocking && b.pos > op.pos && b.pos < end {
				pass.Reportf("mutex-discipline", b.pos,
					"%s while holding %s; blocking under a lock stalls every "+
						"other goroutine contending for it", b.desc, op.expr)
			}
		}
	}
}

// collectLockOps gathers the scope's lock-relevant operations in source
// order, without descending into nested function literals (separate scopes).
func collectLockOps(pass *Pass, body *ast.BlockStmt) []lockOp {
	var ops []lockOp
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				walk(node.Call, true)
				return false
			case *ast.CallExpr:
				if op, ok := lockCallOp(pass, node, deferred); ok {
					ops = append(ops, op)
					return true
				}
			case *ast.SendStmt:
				ops = append(ops, lockOp{kind: opBlocking, pos: node.Pos(),
					desc: "channel send"})
			case *ast.UnaryExpr:
				if node.Op == token.ARROW {
					ops = append(ops, lockOp{kind: opBlocking,
						pos: node.Pos(), desc: "channel receive"})
				}
			case *ast.SelectStmt:
				ops = append(ops, lockOp{kind: opBlocking, pos: node.Pos(),
					desc: "select"})
			case *ast.AssignStmt:
				for _, rhs := range node.Rhs {
					if op, ok := lockCopyOp(pass, rhs); ok {
						ops = append(ops, op)
					}
				}
			case *ast.GenDecl:
				for _, spec := range node.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, rhs := range vs.Values {
						if op, ok := lockCopyOp(pass, rhs); ok {
							ops = append(ops, op)
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	// ast.Inspect on DeferStmt bodies may interleave; restore source order.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].pos < ops[j-1].pos; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	return ops
}

// lockCallOp classifies a call as a lock/unlock on a sync primitive or a
// blocking WaitGroup.Wait.
func lockCallOp(pass *Pass, call *ast.CallExpr, deferred bool) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return lockOp{}, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	if fn.Name() == "Wait" {
		return lockOp{kind: opBlocking, pos: call.Pos(),
			desc: "sync.WaitGroup.Wait"}, true
	}
	kind, ok := lockMethodKinds[fn.Name()]
	if !ok {
		return lockOp{}, false
	}
	return lockOp{
		kind:     kind,
		expr:     types.ExprString(sel.X),
		pos:      call.Pos(),
		deferred: deferred,
	}, true
}

// lockCopyOp flags reading an existing sync lock value into a new location.
// Fresh composite literals (sync.Mutex{}) are fine; selecting or
// dereferencing an existing one is a copy.
func lockCopyOp(pass *Pass, rhs ast.Expr) (lockOp, bool) {
	switch ast.Unparen(rhs).(type) {
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr, *ast.Ident:
	default:
		return lockOp{}, false
	}
	tv, ok := pass.Info.Types[rhs]
	if !ok || !isSyncValue(tv.Type) {
		return lockOp{}, false
	}
	return lockOp{kind: opCopy, pos: rhs.Pos(),
		desc: types.ExprString(rhs)}, true
}
