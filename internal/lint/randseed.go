package lint

import (
	"go/ast"
	"strings"
)

// randTopLevel are the math/rand package-level functions backed by the
// shared, time-seeded global source. Methods on an explicit *rand.Rand are
// fine — the point is that every random stream must trace back to a seed the
// configuration controls.
var randTopLevel = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "N": true,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// NoUnseededRand forbids randomness that cannot be reproduced: the global
// math/rand source (seeded from the clock at process start), rand sources
// seeded from the wall clock, and testing/quick runs without an explicit
// Rand. It applies everywhere, including _test.go files: a failing seed that
// cannot be replayed is a failure report nobody can act on.
var NoUnseededRand = &Analyzer{
	Name: "no-unseeded-rand",
	Doc: "forbid the global math/rand source, wall-clock-derived seeds, and " +
		"unseeded testing/quick configs; every random stream must come from " +
		"an explicit constant or config-derived seed",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			checkRandTyped(pass, file)
			checkQuickAST(pass, file)
		}
		for _, file := range pass.TestFiles {
			checkRandAST(pass, file)
			checkQuickAST(pass, file)
		}
	},
}

// checkRandTyped uses full type information on non-test files.
func checkRandTyped(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pkgFunc(pass.Info, call.Fun)
		if fn == nil || !isRandPath(fn.Pkg().Path()) {
			return true
		}
		switch name := fn.Name(); {
		case name == "New" || name == "NewZipf":
			// Seeding is judged at the NewSource/NewPCG call.
		case name == "NewSource" || name == "NewPCG" || name == "NewChaCha8":
			for _, arg := range call.Args {
				if wallClockInExpr(pass, arg) {
					pass.Reportf("no-unseeded-rand", call.Pos(),
						"rand.%s seeded from the wall clock; use a constant "+
							"or config-derived seed so runs reproduce", name)
					break
				}
			}
		case randTopLevel[name]:
			pass.Reportf("no-unseeded-rand", call.Pos(),
				"rand.%s uses the global time-seeded source; use "+
					"rand.New(rand.NewSource(seed)) with an explicit seed", name)
		}
		return true
	})
}

// wallClockInExpr reports whether the expression's subtree calls into
// package time (e.g. time.Now().UnixNano()).
func wallClockInExpr(pass *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn := pkgFunc(pass.Info, sel); fn != nil && fn.Pkg().Path() == "time" {
			found = true
		}
		return !found
	})
	return found
}

// checkRandAST is the type-info-free variant for _test.go files: it matches
// selector calls against the file's local import name for math/rand.
func checkRandAST(pass *Pass, file *ast.File) {
	randName := importName(file, "math/rand")
	if randName == "" {
		randName = importName(file, "math/rand/v2")
	}
	if randName == "" || randName == "." || randName == "_" {
		return
	}
	timeName := importName(file, "time")
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || pkgID.Name != randName {
			return true
		}
		switch name := sel.Sel.Name; {
		case name == "NewSource" || name == "NewPCG" || name == "NewChaCha8":
			if timeName == "" {
				return true
			}
			for _, arg := range call.Args {
				if astCallsPackage(arg, timeName) {
					pass.Reportf("no-unseeded-rand", call.Pos(),
						"rand.%s seeded from the wall clock; use a constant "+
							"seed so test failures reproduce", name)
					break
				}
			}
		case randTopLevel[name]:
			pass.Reportf("no-unseeded-rand", call.Pos(),
				"rand.%s uses the global time-seeded source; use "+
					"rand.New(rand.NewSource(seed)) so test failures reproduce",
				name)
		}
		return true
	})
}

// astCallsPackage reports whether the subtree contains a pkgName.X(...) call.
func astCallsPackage(expr ast.Expr, pkgName string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == pkgName {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkQuickAST flags testing/quick runs whose Config carries no explicit
// Rand: quick's default source is seeded from the clock, so a property
// failure prints a counterexample no one can regenerate.
func checkQuickAST(pass *Pass, file *ast.File) {
	quickName := importName(file, "testing/quick")
	if quickName == "" || quickName == "." || quickName == "_" {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || pkgID.Name != quickName {
			return true
		}
		name := sel.Sel.Name
		if name != "Check" && name != "CheckEqual" || len(call.Args) == 0 {
			return true
		}
		cfg := call.Args[len(call.Args)-1]
		if !quickConfigSeeded(cfg) {
			pass.Reportf("no-unseeded-rand", call.Pos(),
				"quick.%s without an explicit Config.Rand draws a clock seed; "+
					"set Rand: rand.New(rand.NewSource(...)) so failures reproduce",
				name)
		}
		return true
	})
}

// quickConfigSeeded accepts any config expression that sets a Rand field; a
// nil config or a composite literal without Rand is unseeded. Configs built
// elsewhere (plain identifiers) get the benefit of the doubt.
func quickConfigSeeded(cfg ast.Expr) bool {
	cfg = ast.Unparen(cfg)
	if id, ok := cfg.(*ast.Ident); ok {
		return id.Name != "nil"
	}
	lit := compositeLit(cfg)
	if lit == nil {
		return true
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Rand" {
			return true
		}
	}
	return false
}

func compositeLit(expr ast.Expr) *ast.CompositeLit {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return e
	case *ast.UnaryExpr:
		if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok &&
			strings.HasPrefix(e.Op.String(), "&") {
			return lit
		}
	}
	return nil
}
