// Package memory estimates per-GPU peak memory footprints for the simulated
// parallelism strategies. The paper repeatedly runs into memory capacity as
// the binding constraint (transformers OOM at batch 256 on real hardware;
// Llama is traced at batch 16 "to avoid out-of-memory issues"), so a
// simulator meant for what-if exploration needs to tell the user which
// configurations would not fit before they burn GPU-hours discovering it.
//
// The estimate follows standard training accounting:
//
//	weights + gradients + optimizer state + live activations + input batch
//
// Activations are the forward outputs kept for the backward pass; data
// parallelism scales them by the per-GPU batch share, tensor parallelism
// keeps them at full batch but shards weights, and GPipe holds every
// in-flight micro-batch's activations until its backward drains (so a full
// batch worth per stage at the flush point).
package memory

import (
	"fmt"

	"triosim/internal/tensor"
	"triosim/internal/trace"
)

// Strategy mirrors the extrapolator's parallelism schemes.
type Strategy string

// Strategies.
const (
	Single Strategy = "single"
	DP     Strategy = "dp"
	TP     Strategy = "tp"
	PP     Strategy = "pp"
	// ZeRO1 replicates weights and gradients but shards optimizer state.
	ZeRO1 Strategy = "zero1"
)

// Footprint is one GPU's estimated peak memory, in bytes.
type Footprint struct {
	Weights        int64
	Gradients      int64
	OptimizerState int64
	Activations    int64
	Input          int64
}

// Total sums the components.
func (f Footprint) Total() int64 {
	return f.Weights + f.Gradients + f.OptimizerState + f.Activations +
		f.Input
}

// Config parameterizes an estimate.
type Config struct {
	Trace    *trace.Trace
	Strategy Strategy
	NumGPUs  int
	// GlobalBatch defaults to the trace batch.
	GlobalBatch int
	// OptimizerStatePerParamBytes defaults to 4 (SGD with momentum); use 8
	// for Adam's two moments.
	OptimizerStatePerParamBytes int64
	// StageOf optionally supplies the PP layer→stage mapping; nil uses
	// equal layer counts.
	StageOf []int
}

// Estimate returns each GPU's peak footprint.
func Estimate(cfg Config) ([]Footprint, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("memory: nil trace")
	}
	if cfg.NumGPUs < 1 {
		return nil, fmt.Errorf("memory: %d GPUs", cfg.NumGPUs)
	}
	tr := cfg.Trace
	if cfg.GlobalBatch == 0 {
		cfg.GlobalBatch = tr.BatchSize
	}
	if cfg.OptimizerStatePerParamBytes == 0 {
		cfg.OptimizerStatePerParamBytes = 4
	}
	batchScale := float64(cfg.GlobalBatch) / float64(tr.BatchSize)

	weights := tr.WeightBytes()
	grads := tr.GradientBytes()
	params := weights / 4 // float32 weights
	optState := params * cfg.OptimizerStatePerParamBytes
	input := float64(tr.InputBytes())

	// Live activations: forward outputs of Activation category, per layer.
	actByLayer := map[int]float64{}
	var actTotal float64
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Phase != trace.Forward {
			continue
		}
		for _, id := range op.Outputs {
			t := tr.Tensors.Get(id)
			if t == nil || t.Category != tensor.Activation {
				continue
			}
			b := float64(t.Bytes())
			actByLayer[op.Layer] += b
			actTotal += b
		}
	}

	n := cfg.NumGPUs
	out := make([]Footprint, n)
	switch cfg.Strategy {
	case Single:
		if n != 1 {
			return nil, fmt.Errorf("memory: single strategy with %d GPUs", n)
		}
		out[0] = Footprint{
			Weights:        weights,
			Gradients:      grads,
			OptimizerState: optState,
			Activations:    int64(actTotal * batchScale),
			Input:          int64(input * batchScale),
		}
	case DP, ZeRO1:
		per := batchScale / float64(n)
		ost := optState
		if cfg.Strategy == ZeRO1 {
			ost = optState / int64(n)
		}
		for i := range out {
			out[i] = Footprint{
				Weights:        weights,
				Gradients:      grads,
				OptimizerState: ost,
				Activations:    int64(actTotal * per),
				Input:          int64(input * per),
			}
		}
	case TP:
		shard := int64(n)
		for i := range out {
			out[i] = Footprint{
				Weights:        weights / shard,
				Gradients:      grads / shard,
				OptimizerState: optState / shard,
				// Full batch flows through every rank; boundary
				// activations are replicated after each gather.
				Activations: int64(actTotal * batchScale),
				Input:       int64(input * batchScale),
			}
		}
	case PP:
		stageOf := cfg.StageOf
		nLayers := tr.NumLayers()
		if stageOf == nil {
			stageOf = make([]int, nLayers)
			for l := 0; l < nLayers; l++ {
				stageOf[l] = l * n / nLayers
			}
		}
		if len(stageOf) != nLayers {
			return nil, fmt.Errorf("memory: stage map covers %d of %d layers",
				len(stageOf), nLayers)
		}
		// Weights/grads per stage from layer ownership; at the GPipe flush
		// every micro-batch's activations are live, i.e. a full global
		// batch worth of this stage's activations.
		wByLayer := map[int]int64{}
		for i := range tr.Ops {
			op := &tr.Ops[i]
			if op.Phase != trace.Forward {
				continue
			}
			for _, id := range op.Inputs {
				t := tr.Tensors.Get(id)
				if t != nil && t.Category == tensor.Weight {
					wByLayer[op.Layer] += t.Bytes()
				}
			}
		}
		for l := 0; l < nLayers; l++ {
			s := stageOf[l]
			if s < 0 || s >= n {
				return nil, fmt.Errorf("memory: layer %d maps to stage %d of %d",
					l, s, n)
			}
			out[s].Weights += wByLayer[l]
			out[s].Activations += int64(actByLayer[l] * batchScale)
		}
		for i := range out {
			out[i].Gradients = out[i].Weights
			out[i].OptimizerState = out[i].Weights / 4 *
				cfg.OptimizerStatePerParamBytes
		}
		out[0].Input = int64(input * batchScale)
	default:
		return nil, fmt.Errorf("memory: unknown strategy %q", cfg.Strategy)
	}
	return out, nil
}

// Fits reports whether every GPU's footprint is within capacity, and the
// worst utilization fraction.
func Fits(footprints []Footprint, capacity int64) (bool, float64) {
	worst := 0.0
	for _, f := range footprints {
		u := float64(f.Total()) / float64(capacity)
		if u > worst {
			worst = u
		}
	}
	return worst <= 1.0, worst
}
