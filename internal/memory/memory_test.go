package memory

import (
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/trace"
)

func traceFor(t *testing.T, model string, batch int) *trace.Trace {
	t.Helper()
	tr, err := hwsim.CollectTrace(model, batch, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSingleGPUFootprint(t *testing.T) {
	tr := traceFor(t, "resnet50", 128)
	fp, err := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 1 {
		t.Fatalf("footprints = %d", len(fp))
	}
	f := fp[0]
	if f.Weights != tr.WeightBytes() || f.Gradients != tr.GradientBytes() {
		t.Fatal("weights/gradients wrong")
	}
	if f.OptimizerState != tr.WeightBytes() {
		t.Fatalf("SGD momentum state should equal weight bytes, got %d",
			f.OptimizerState)
	}
	if f.Activations <= f.Weights {
		t.Fatal("CNN activations at batch 128 should dominate weights")
	}
	// ResNet-50 at batch 128 trains within an A100's 80 GB.
	if ok, util := Fits(fp, gpu.A100.MemCapacity); !ok {
		t.Fatalf("resnet50@128 should fit an A100 (util %.2f)", util)
	}
}

func TestActivationsScaleWithBatch(t *testing.T) {
	tr := traceFor(t, "resnet18", 64)
	small, err := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 1,
		GlobalBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	r := float64(big[0].Activations) / float64(small[0].Activations)
	if r < 1.99 || r > 2.01 {
		t.Fatalf("activation scaling %.3f, want 2", r)
	}
	if big[0].Weights != small[0].Weights {
		t.Fatal("weights must not scale with batch")
	}
}

func TestDPSplitsActivationsNotWeights(t *testing.T) {
	tr := traceFor(t, "vgg16", 128)
	solo, err := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Estimate(Config{Trace: tr, Strategy: DP, NumGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range dp {
		if f.Weights != solo[0].Weights {
			t.Fatalf("gpu%d: DP weights should replicate", i)
		}
		r := float64(solo[0].Activations) / float64(f.Activations)
		if r < 3.99 || r > 4.01 {
			t.Fatalf("gpu%d: DP activation split %.3f, want 4", i, r)
		}
	}
}

func TestTPShardsWeightsNotActivations(t *testing.T) {
	tr := traceFor(t, "gpt2", 128)
	solo, err := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Estimate(Config{Trace: tr, Strategy: TP, NumGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tp {
		if f.Weights != solo[0].Weights/4 {
			t.Fatal("TP weights should shard 4 ways")
		}
		if f.Activations != solo[0].Activations {
			t.Fatal("TP activations stay at full batch")
		}
	}
}

func TestPPPartitionsAcrossStages(t *testing.T) {
	tr := traceFor(t, "resnet50", 128)
	pp, err := Estimate(Config{Trace: tr, Strategy: PP, NumGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wSum, aSum int64
	for _, f := range pp {
		wSum += f.Weights
		aSum += f.Activations
	}
	if wSum != solo[0].Weights {
		t.Fatalf("PP stage weights sum %d != total %d", wSum, solo[0].Weights)
	}
	if aSum != solo[0].Activations {
		t.Fatalf("PP stage activations sum %d != total %d",
			aSum, solo[0].Activations)
	}
	// Only stage 0 stages input.
	if pp[0].Input == 0 || pp[1].Input != 0 {
		t.Fatal("input staging should live on stage 0")
	}
}

func TestOOMDetection(t *testing.T) {
	// The paper's constraint: Llama is traced at batch 16 because larger
	// batches OOM. At batch 128 on a single GPU the footprint must exceed
	// 80 GB; at batch 16 it should fit.
	big := traceFor(t, "llama32-1b", 128)
	fp, err := Estimate(Config{Trace: big, Strategy: Single, NumGPUs: 1,
		OptimizerStatePerParamBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ok, util := Fits(fp, gpu.A100.MemCapacity); ok {
		t.Fatalf("llama@128 should OOM an 80 GB A100 (util %.2f)", util)
	}
	small := traceFor(t, "llama32-1b", 16)
	fp, err = Estimate(Config{Trace: small, Strategy: Single, NumGPUs: 1,
		OptimizerStatePerParamBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ok, util := Fits(fp, gpu.A100.MemCapacity); !ok {
		t.Fatalf("llama@16 should fit an 80 GB A100 (util %.2f)", util)
	}
}

func TestAdamDoublesOptimizerState(t *testing.T) {
	tr := traceFor(t, "resnet18", 32)
	sgd, _ := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 1})
	adam, _ := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 1,
		OptimizerStatePerParamBytes: 8})
	if adam[0].OptimizerState != 2*sgd[0].OptimizerState {
		t.Fatal("Adam state should be 2× SGD momentum")
	}
}

func TestEstimateValidation(t *testing.T) {
	tr := traceFor(t, "resnet18", 32)
	if _, err := Estimate(Config{Strategy: DP, NumGPUs: 2}); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := Estimate(Config{Trace: tr, Strategy: DP, NumGPUs: 0}); err == nil {
		t.Fatal("0 GPUs accepted")
	}
	if _, err := Estimate(Config{Trace: tr, Strategy: Single, NumGPUs: 2}); err == nil {
		t.Fatal("single with 2 GPUs accepted")
	}
	if _, err := Estimate(Config{Trace: tr, Strategy: "quantum",
		NumGPUs: 2}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := Estimate(Config{Trace: tr, Strategy: PP, NumGPUs: 2,
		StageOf: []int{0}}); err == nil {
		t.Fatal("short stage map accepted")
	}
	if _, err := Estimate(Config{Trace: tr, Strategy: PP, NumGPUs: 2,
		StageOf: make([]int, tr.NumLayers())}); err != nil {
		t.Fatalf("valid stage map rejected: %v", err)
	}
	bad := make([]int, tr.NumLayers())
	bad[0] = 99
	if _, err := Estimate(Config{Trace: tr, Strategy: PP, NumGPUs: 2,
		StageOf: bad}); err == nil {
		t.Fatal("out-of-range stage accepted")
	}
}

func TestFitsUtilization(t *testing.T) {
	fp := []Footprint{{Weights: 60}, {Weights: 80}}
	ok, worst := Fits(fp, 100)
	if !ok || worst != 0.8 {
		t.Fatalf("Fits = %v, %v", ok, worst)
	}
	ok, worst = Fits(fp, 70)
	if ok || worst < 1.1 {
		t.Fatalf("over-capacity not detected: %v, %v", ok, worst)
	}
}
