package sim

// Event is something that happens at a point in virtual time. The engine
// dispatches events to their handlers in non-decreasing time order.
type Event interface {
	// Time returns the virtual time at which the event fires.
	Time() VTime

	// Handler returns the handler that processes the event.
	Handler() Handler

	// IsSecondary reports whether the event should run after all primary
	// events scheduled for the same time. Secondary events are used for
	// bookkeeping (e.g., statistics flushes) that must observe the state
	// after all same-cycle primary activity.
	IsSecondary() bool
}

// Handler processes events.
type Handler interface {
	Handle(e Event) error
}

// EventBase provides a reusable implementation of the Event interface.
// Concrete event types embed it and add their payload fields.
type EventBase struct {
	EventTime VTime
	EventHdl  Handler
	Secondary bool
}

// NewEventBase builds an EventBase for a primary event at time t handled by h.
func NewEventBase(t VTime, h Handler) EventBase {
	return EventBase{EventTime: t, EventHdl: h}
}

// Time returns the event firing time.
func (e EventBase) Time() VTime { return e.EventTime }

// Handler returns the event handler.
func (e EventBase) Handler() Handler { return e.EventHdl }

// IsSecondary reports whether the event is secondary.
func (e EventBase) IsSecondary() bool { return e.Secondary }

// HandlerFunc adapts a plain function to the Handler interface.
type HandlerFunc func(e Event) error

// Handle calls f(e).
func (f HandlerFunc) Handle(e Event) error { return f(e) }

// funcEvent is an Event that calls a closure when it fires. pooled marks
// events drawn from a SerialEngine's free list (via ScheduleFunc); the engine
// recycles those after dispatch, so nothing may retain them past the event's
// own handler and hooks.
//
//triosim:pooled
type funcEvent struct {
	EventBase
	fn     func(now VTime) error
	pooled bool
	// hf caches the HandlerFunc method value for e.run. Building it on every
	// Handler() call would allocate a closure per dispatch; caching it keeps
	// the pooled schedule/dispatch path allocation-free while preserving the
	// handler's dynamic type (sim.HandlerFunc), which the replay digest folds
	// into its event names.
	hf HandlerFunc
}

func (e *funcEvent) Handler() Handler {
	if e.hf == nil {
		e.hf = e.run
	}
	return e.hf
}

func (e *funcEvent) run(Event) error { return e.fn(e.EventTime) }

// NewFuncEvent wraps fn in an event that fires at time t. It is the most
// convenient way for components to schedule one-off future work.
func NewFuncEvent(t VTime, fn func(now VTime) error) Event {
	return &funcEvent{EventBase: EventBase{EventTime: t}, fn: fn}
}

// NewSecondaryFuncEvent is like NewFuncEvent but the event runs after all
// primary events at the same timestamp.
func NewSecondaryFuncEvent(t VTime, fn func(now VTime) error) Event {
	return &funcEvent{
		EventBase: EventBase{EventTime: t, Secondary: true},
		fn:        fn,
	}
}

// ScheduleFunc schedules fn as a primary event at t, drawing the event object
// from eng's free list when eng is a *SerialEngine (the engine recycles it
// after dispatch). The pooled and unpooled paths schedule events of identical
// dynamic type, so the event digest — and therefore the replay gate — is
// byte-identical either way. Hot paths (the flow network, the task executor)
// use this instead of NewFuncEvent to avoid one allocation per event.
func ScheduleFunc(eng Engine, t VTime, fn func(now VTime) error) {
	if se, ok := eng.(*SerialEngine); ok {
		se.schedulePooled(t, fn, false)
		return
	}
	eng.Schedule(NewFuncEvent(t, fn))
}

// ScheduleSecondaryFunc is ScheduleFunc for secondary events.
func ScheduleSecondaryFunc(eng Engine, t VTime, fn func(now VTime) error) {
	if se, ok := eng.(*SerialEngine); ok {
		se.schedulePooled(t, fn, true)
		return
	}
	eng.Schedule(NewSecondaryFuncEvent(t, fn))
}
