package sim

import (
	"fmt"
	"math"
)

// FNV-1a constants (64-bit).
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

// DigestHook folds every dispatched event's (virtual time, handler name,
// dispatch sequence) into a running FNV-1a digest. Two runs of the same
// workload must produce the same digest; a mismatch means the schedule
// itself diverged — the exact failure mode map iteration order, wall-clock
// reads, or unseeded randomness introduce. It is the runtime complement to
// the triosimvet static analyzers.
type DigestHook struct {
	// NameOf labels events in the digest. Nil uses the dynamic types of the
	// event and its handler, which are stable across runs of a binary.
	NameOf func(e Event) string

	digest uint64
	count  uint64
}

// NewDigestHook returns a hook with an empty digest.
func NewDigestHook() *DigestHook {
	return &DigestHook{digest: fnvOffset}
}

var _ Hook = (*DigestHook)(nil)

// Func implements Hook, folding each dispatch as it begins.
func (d *DigestHook) Func(ctx HookCtx) {
	if ctx.Pos != HookPosBeforeEvent {
		return
	}
	d.foldUint64(math.Float64bits(float64(ctx.Now)))
	if e, ok := ctx.Item.(Event); ok {
		name := ""
		if d.NameOf != nil {
			name = d.NameOf(e)
		} else {
			name = fmt.Sprintf("%T/%T", e, e.Handler())
		}
		d.foldString(name)
		d.foldUint64(uint64(boolBit(e.IsSecondary())))
	}
	d.foldUint64(d.count)
	d.count++
}

// Sum64 returns the digest over all events folded so far.
func (d *DigestHook) Sum64() uint64 { return d.digest }

// Count returns the number of events folded.
func (d *DigestHook) Count() uint64 { return d.count }

func (d *DigestHook) foldUint64(v uint64) {
	for i := 0; i < 8; i++ {
		d.digest = (d.digest ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
}

func (d *DigestHook) foldString(s string) {
	for i := 0; i < len(s); i++ {
		d.digest = (d.digest ^ uint64(s[i])) * fnvPrime
	}
	d.foldUint64(uint64(len(s)))
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ReplayCheck runs the workload `runs` times, each on a fresh engine with a
// fresh DigestHook, and returns the common event digest. It fails when any
// run's digest (or event count) differs from the first — the replay gate CI
// uses to prove the simulation is deterministic end to end.
func ReplayCheck(runs int, workload func(eng *SerialEngine) error) (uint64, error) {
	if runs < 2 {
		return 0, fmt.Errorf("sim: ReplayCheck needs at least 2 runs, got %d", runs)
	}
	var first *DigestHook
	for i := 0; i < runs; i++ {
		eng := NewSerialEngine()
		d := NewDigestHook()
		eng.RegisterHook(d)
		if err := workload(eng); err != nil {
			return 0, fmt.Errorf("sim: ReplayCheck run %d: %w", i+1, err)
		}
		if err := eng.Run(); err != nil {
			return 0, fmt.Errorf("sim: ReplayCheck run %d: %w", i+1, err)
		}
		if first == nil {
			first = d
			continue
		}
		if d.Sum64() != first.Sum64() || d.Count() != first.Count() {
			return 0, fmt.Errorf(
				"sim: replay divergence on run %d: digest %#x (%d events) vs %#x (%d events)",
				i+1, d.Sum64(), d.Count(), first.Sum64(), first.Count())
		}
	}
	return first.Sum64(), nil
}
