package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Engine schedules and dispatches events in virtual-time order.
type Engine interface {
	// Schedule enqueues an event. Scheduling an event earlier than the
	// current time is an error surfaced by Run.
	Schedule(e Event)

	// Run dispatches events until the queue drains, an error occurs, or the
	// engine is terminated. It may be called repeatedly: each call continues
	// from the current virtual time.
	Run() error

	// CurrentTime returns the virtual time of the most recently dispatched
	// event (0 before any event runs).
	CurrentTime() VTime

	// Terminate makes Run return after the in-flight event completes. The
	// remaining queue is preserved, so Run can resume.
	Terminate()

	// EventCount returns the total number of events dispatched so far.
	EventCount() uint64
}

// queuedEvent decorates an event with a sequence number so the heap order is
// a deterministic total order: (time, secondary flag, insertion sequence).
type queuedEvent struct {
	event Event
	seq   uint64
}

type eventHeap []queuedEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	ti, tj := h[i].event.Time(), h[j].event.Time()
	if ti != tj {
		return ti < tj
	}
	si, sj := h[i].event.IsSecondary(), h[j].event.IsSecondary()
	if si != sj {
		return !si // primary before secondary
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(queuedEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = queuedEvent{}
	*h = old[:n-1]
	return item
}

// SerialEngine is a single-goroutine Engine. All simulated components run in
// the goroutine that calls Run, so they need no internal locking.
type SerialEngine struct {
	queue      eventHeap
	now        VTime
	seq        uint64
	dispatched uint64
	terminated bool
	hooks      []Hook
	started    bool
	// free is the funcEvent recycling pool for ScheduleFunc. Single-goroutine
	// by the engine contract, so a plain slice suffices (and a shared
	// sync.Pool would violate no-goroutine-in-sim anyway).
	free []*funcEvent
}

// NewSerialEngine returns an empty engine at virtual time 0.
func NewSerialEngine() *SerialEngine {
	return &SerialEngine{}
}

var _ Engine = (*SerialEngine)(nil)

// ErrPastEvent is wrapped by Run's error when an event was scheduled in the
// virtual past.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule enqueues e.
func (eng *SerialEngine) Schedule(e Event) {
	eng.seq++
	heap.Push(&eng.queue, queuedEvent{event: e, seq: eng.seq})
}

// schedulePooled enqueues fn wrapped in a recycled (or new) funcEvent. The
// event returns to the free list after its dispatch completes.
func (eng *SerialEngine) schedulePooled(t VTime, fn func(now VTime) error,
	secondary bool) {

	var fe *funcEvent
	if n := len(eng.free); n > 0 {
		fe = eng.free[n-1]
		eng.free[n-1] = nil
		eng.free = eng.free[:n-1]
	} else {
		fe = &funcEvent{}
	}
	fe.EventBase = EventBase{EventTime: t, Secondary: secondary}
	fe.fn = fn
	fe.pooled = true
	eng.Schedule(fe)
}

// recycle returns a dispatched pooled event to the free list. Hooks have
// already run; by contract neither hooks nor handlers retain the event.
func (eng *SerialEngine) recycle(e Event) {
	fe, ok := e.(*funcEvent)
	if !ok || !fe.pooled {
		return
	}
	fe.pooled = false
	fe.fn = nil
	eng.free = append(eng.free, fe)
}

// CurrentTime returns the time of the last dispatched event.
func (eng *SerialEngine) CurrentTime() VTime { return eng.now }

// EventCount returns the number of events dispatched so far.
func (eng *SerialEngine) EventCount() uint64 { return eng.dispatched }

// Terminate stops Run after the current event.
func (eng *SerialEngine) Terminate() { eng.terminated = true }

// Pending returns the number of events waiting in the queue.
func (eng *SerialEngine) Pending() int { return len(eng.queue) }

// RegisterHook adds a hook invoked around every event dispatch.
func (eng *SerialEngine) RegisterHook(h Hook) {
	eng.hooks = append(eng.hooks, h)
}

// Run dispatches events until the queue is empty or Terminate is called.
func (eng *SerialEngine) Run() error {
	eng.terminated = false
	for len(eng.queue) > 0 && !eng.terminated {
		qe := heap.Pop(&eng.queue).(queuedEvent)
		e := qe.event
		if eng.started && e.Time() < eng.now {
			return fmt.Errorf("%w: event at %v, now %v",
				ErrPastEvent, e.Time(), eng.now)
		}
		eng.started = true
		eng.now = e.Time()
		eng.dispatched++

		for _, h := range eng.hooks {
			h.Func(HookCtx{Pos: HookPosBeforeEvent, Now: eng.now, Item: e})
		}
		if err := dispatch(e); err != nil {
			return err
		}
		for _, h := range eng.hooks {
			h.Func(HookCtx{Pos: HookPosAfterEvent, Now: eng.now, Item: e})
		}
		eng.recycle(e)
	}
	return nil
}

func dispatch(e Event) error {
	h := e.Handler()
	if h == nil {
		return fmt.Errorf("sim: event at %v has nil handler", e.Time())
	}
	return h.Handle(e)
}
