package sim

import (
	"errors"
	"fmt"
)

// Engine schedules and dispatches events in virtual-time order.
type Engine interface {
	// Schedule enqueues an event. Scheduling an event earlier than the
	// current time is an error surfaced by Run.
	Schedule(e Event)

	// Run dispatches events until the queue drains, an error occurs, or the
	// engine is terminated. It may be called repeatedly: each call continues
	// from the current virtual time.
	Run() error

	// CurrentTime returns the virtual time of the most recently dispatched
	// event (0 before any event runs).
	CurrentTime() VTime

	// Terminate makes Run return after the in-flight event completes. The
	// remaining queue is preserved, so Run can resume.
	Terminate()

	// EventCount returns the total number of events dispatched so far.
	EventCount() uint64
}

// queuedEvent decorates an event with its ordering key — firing time and
// secondary flag cached at enqueue so heap comparisons never call back into
// the Event interface, plus an insertion sequence number that makes the heap
// order a deterministic total order: (time, secondary flag, sequence).
type queuedEvent struct {
	event     Event
	time      VTime
	seq       uint64
	secondary bool
}

// SerialEngine is a single-goroutine Engine. All simulated components run in
// the goroutine that calls Run, so they need no internal locking.
type SerialEngine struct {
	queue      heap4[queuedEvent]
	now        VTime
	seq        uint64
	dispatched uint64
	terminated bool
	hooks      []Hook
	started    bool
	highWater  int
	// cohort is the reused buffer for same-timestamp batch dispatch: Run pops
	// every primary event sharing the minimum timestamp in one pass, then
	// dispatches them without re-sifting the heap between events. cohortLeft
	// counts the not-yet-dispatched tail so Pending stays exact mid-batch.
	cohort     []queuedEvent
	cohortLeft int
	// free is the funcEvent recycling pool for ScheduleFunc. Single-goroutine
	// by the engine contract, so a plain slice suffices (and a shared
	// sync.Pool would violate no-goroutine-in-sim anyway).
	free []*funcEvent
}

// NewSerialEngine returns an empty engine at virtual time 0.
func NewSerialEngine() *SerialEngine {
	return &SerialEngine{}
}

var _ Engine = (*SerialEngine)(nil)

// ErrPastEvent is wrapped by Run's error when an event was scheduled in the
// virtual past.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule enqueues e.
//
//triosim:hotpath
func (eng *SerialEngine) Schedule(e Event) {
	eng.seq++
	eng.queue.push(queuedEvent{
		event:     e,
		time:      e.Time(),
		seq:       eng.seq,
		secondary: e.IsSecondary(),
	})
	if p := eng.queue.len() + eng.cohortLeft; p > eng.highWater {
		eng.highWater = p
	}
}

// schedulePooled enqueues fn wrapped in a recycled (or new) funcEvent. The
// event returns to the free list after its dispatch completes.
func (eng *SerialEngine) schedulePooled(t VTime, fn func(now VTime) error,
	secondary bool) {

	var fe *funcEvent
	if n := len(eng.free); n > 0 {
		fe = eng.free[n-1]
		eng.free[n-1] = nil
		eng.free = eng.free[:n-1]
	} else {
		fe = &funcEvent{}
	}
	fe.EventBase = EventBase{EventTime: t, Secondary: secondary}
	fe.fn = fn
	fe.pooled = true
	eng.Schedule(fe)
}

// recycle returns a dispatched pooled event to the free list. Hooks have
// already run; by contract neither hooks nor handlers retain the event.
func (eng *SerialEngine) recycle(e Event) {
	fe, ok := e.(*funcEvent)
	if !ok || !fe.pooled {
		return
	}
	fe.pooled = false
	fe.fn = nil
	eng.free = append(eng.free, fe)
}

// CurrentTime returns the time of the last dispatched event.
func (eng *SerialEngine) CurrentTime() VTime { return eng.now }

// EventCount returns the number of events dispatched so far.
func (eng *SerialEngine) EventCount() uint64 { return eng.dispatched }

// Terminate stops Run after the current event.
func (eng *SerialEngine) Terminate() { eng.terminated = true }

// Pending returns the number of events waiting to be dispatched, including
// any same-timestamp cohort events popped from the heap but not yet run.
func (eng *SerialEngine) Pending() int { return eng.queue.len() + eng.cohortLeft }

// QueueHighWater returns the largest Pending value observed so far — the
// peak number of events simultaneously waiting in the engine.
func (eng *SerialEngine) QueueHighWater() int { return eng.highWater }

// RegisterHook adds a hook invoked around every event dispatch.
func (eng *SerialEngine) RegisterHook(h Hook) {
	eng.hooks = append(eng.hooks, h)
}

// Run dispatches events until the queue is empty or Terminate is called.
//
// Events sharing the minimum timestamp are drained as a batch: when the head
// of the queue is a primary event, every other primary event at the same time
// is popped in one pass (they are dispatched in seq order regardless, and any
// event a handler schedules for the same timestamp gets a higher seq, so it
// sorts after the whole batch — the cohort is exactly the prefix of the total
// order either way). Secondary events are never batched: a secondary handler
// may schedule a primary event at the current time, which must precede the
// remaining secondaries.
//
//triosim:hotpath
func (eng *SerialEngine) Run() error {
	eng.terminated = false
	for eng.queue.len() > 0 && !eng.terminated {
		qe := eng.queue.pop()
		if eng.started && qe.time < eng.now {
			return fmt.Errorf("%w: event at %v, now %v", //triosim:nolint hotpath-alloc -- cold error path: a past-dated event aborts the run
				ErrPastEvent, qe.time, eng.now)
		}
		eng.started = true
		eng.now = qe.time

		eng.cohort = append(eng.cohort[:0], qe)
		if !qe.secondary {
			for eng.queue.len() > 0 {
				head := eng.queue.peek()
				if head.time != qe.time || head.secondary {
					break
				}
				eng.cohort = append(eng.cohort, eng.queue.pop()) //triosim:nolint hotpath-alloc -- amortized: the cohort buffer grows to the largest batch once, then is re-sliced
			}
		}

		for i := range eng.cohort {
			eng.cohortLeft = len(eng.cohort) - i - 1
			e := eng.cohort[i].event
			eng.cohort[i] = queuedEvent{}
			eng.dispatched++

			for _, h := range eng.hooks {
				h.Func(HookCtx{Pos: HookPosBeforeEvent, Now: eng.now, Item: e})
			}
			if err := dispatch(e); err != nil {
				eng.requeueCohort(i + 1)
				return err
			}
			for _, h := range eng.hooks {
				h.Func(HookCtx{Pos: HookPosAfterEvent, Now: eng.now, Item: e})
			}
			eng.recycle(e)

			if eng.terminated && i+1 < len(eng.cohort) {
				eng.requeueCohort(i + 1)
				break
			}
		}
		eng.cohortLeft = 0
	}
	return nil
}

// requeueCohort pushes the undispatched tail of the current cohort back onto
// the heap so Terminate and handler errors preserve the queue for a later
// Run. Original sequence numbers are kept, so resumed dispatch order is
// unchanged.
func (eng *SerialEngine) requeueCohort(from int) {
	for i := from; i < len(eng.cohort); i++ {
		eng.queue.push(eng.cohort[i])
		eng.cohort[i] = queuedEvent{}
	}
	eng.cohortLeft = 0
}

func dispatch(e Event) error {
	h := e.Handler()
	if h == nil {
		return fmt.Errorf("sim: event at %v has nil handler", e.Time())
	}
	return h.Handle(e)
}
