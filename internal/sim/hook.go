package sim

import "sort"

// HookPos identifies where in the engine's dispatch loop a hook fires.
type HookPos int

// Hook positions.
const (
	HookPosBeforeEvent HookPos = iota
	HookPosAfterEvent
)

// HookCtx carries the context of a hook invocation.
type HookCtx struct {
	Pos  HookPos
	Now  VTime
	Item any
}

// Hook observes engine activity. Hooks enable AkitaRTM-style real-time
// monitoring without touching component logic.
type Hook interface {
	Func(ctx HookCtx)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(ctx HookCtx)

// Func calls f(ctx).
func (f HookFunc) Func(ctx HookCtx) { f(ctx) }

// Monitor is a built-in hook that counts dispatched events and tracks the
// virtual-time frontier. It stands in for the AkitaRTM monitoring surface:
// callers can poll it from another goroutine-free context (e.g., between Run
// segments) to report progress.
type Monitor struct {
	Events       uint64
	LastTime     VTime
	ByHandler    map[string]uint64
	NameOf       func(e Event) string
	sampleEveryN uint64
}

// NewMonitor returns a Monitor that tags events using nameOf (may be nil).
func NewMonitor(nameOf func(e Event) string) *Monitor {
	return &Monitor{ByHandler: map[string]uint64{}, NameOf: nameOf}
}

// HandlerCount is one named event-count entry of a Monitor report.
type HandlerCount struct {
	Name  string
	Count uint64
}

// HandlerCounts returns the per-handler event counts in sorted name order.
// ByHandler is a map; any code emitting it (reports, digests, logs) must go
// through this accessor so output order does not depend on map iteration.
func (m *Monitor) HandlerCounts() []HandlerCount {
	names := make([]string, 0, len(m.ByHandler))
	for name := range m.ByHandler {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]HandlerCount, 0, len(names))
	for _, name := range names {
		out = append(out, HandlerCount{Name: name, Count: m.ByHandler[name]})
	}
	return out
}

// Func implements Hook.
func (m *Monitor) Func(ctx HookCtx) {
	if ctx.Pos != HookPosAfterEvent {
		return
	}
	m.Events++
	m.LastTime = ctx.Now
	if m.NameOf != nil {
		if e, ok := ctx.Item.(Event); ok {
			m.ByHandler[m.NameOf(e)]++
		}
	}
}
