package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSerialEngineDispatchOrder(t *testing.T) {
	eng := NewSerialEngine()
	var got []VTime
	times := []VTime{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		eng.Schedule(NewFuncEvent(tm, func(now VTime) error {
			got = append(got, now)
			return nil
		}))
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []VTime{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

func TestSerialEngineSameTimeFIFO(t *testing.T) {
	eng := NewSerialEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(NewFuncEvent(1, func(VTime) error {
			got = append(got, i)
			return nil
		}))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSecondaryEventsRunAfterPrimary(t *testing.T) {
	eng := NewSerialEngine()
	var got []string
	eng.Schedule(NewSecondaryFuncEvent(1, func(VTime) error {
		got = append(got, "secondary")
		return nil
	}))
	eng.Schedule(NewFuncEvent(1, func(VTime) error {
		got = append(got, "primary")
		return nil
	}))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "primary" || got[1] != "secondary" {
		t.Fatalf("got order %v", got)
	}
}

func TestScheduleDuringRun(t *testing.T) {
	eng := NewSerialEngine()
	var fired []VTime
	eng.Schedule(NewFuncEvent(1, func(now VTime) error {
		fired = append(fired, now)
		eng.Schedule(NewFuncEvent(now+2, func(now VTime) error {
			fired = append(fired, now)
			return nil
		}))
		return nil
	}))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 3 {
		t.Fatalf("cascade failed: %v", fired)
	}
	if eng.CurrentTime() != 3 {
		t.Fatalf("CurrentTime = %v, want 3", eng.CurrentTime())
	}
}

func TestPastEventRejected(t *testing.T) {
	eng := NewSerialEngine()
	eng.Schedule(NewFuncEvent(5, func(now VTime) error {
		eng.Schedule(NewFuncEvent(1, func(VTime) error { return nil }))
		return nil
	}))
	err := eng.Run()
	if !errors.Is(err, ErrPastEvent) {
		t.Fatalf("want ErrPastEvent, got %v", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	eng := NewSerialEngine()
	boom := errors.New("boom")
	eng.Schedule(NewFuncEvent(1, func(VTime) error { return boom }))
	if err := eng.Run(); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestTerminateAndResume(t *testing.T) {
	eng := NewSerialEngine()
	var count int
	for i := 1; i <= 5; i++ {
		i := i
		eng.Schedule(NewFuncEvent(VTime(i), func(VTime) error {
			count++
			if i == 2 {
				eng.Terminate()
			}
			return nil
		}))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("ran %d events before terminate, want 2", count)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("ran %d events total, want 5", count)
	}
}

func TestMonitorHook(t *testing.T) {
	eng := NewSerialEngine()
	mon := NewMonitor(func(Event) string { return "func" })
	eng.RegisterHook(mon)
	for i := 1; i <= 4; i++ {
		eng.Schedule(NewFuncEvent(VTime(i), func(VTime) error { return nil }))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if mon.Events != 4 {
		t.Fatalf("monitor counted %d events, want 4", mon.Events)
	}
	if mon.LastTime != 4 {
		t.Fatalf("monitor last time %v, want 4", mon.LastTime)
	}
	if mon.ByHandler["func"] != 4 {
		t.Fatalf("by-handler count = %v", mon.ByHandler)
	}
	if eng.EventCount() != 4 {
		t.Fatalf("EventCount = %d", eng.EventCount())
	}
}

// Property: for any set of non-negative event times, the engine dispatches
// them in sorted order.
func TestDispatchOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		eng := NewSerialEngine()
		var got []VTime
		for _, r := range raw {
			tm := VTime(r)
			eng.Schedule(NewFuncEvent(tm, func(now VTime) error {
				got = append(got, now)
				return nil
			}))
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool {
			return got[i] < got[j]
		}) && len(got) == len(raw)
	}
	// Explicit Rand so a failing counterexample reproduces (quick's default
	// source is seeded from the clock).
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving schedule-during-run never loses events and still
// dispatches in order.
func TestCascadingScheduleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		eng := NewSerialEngine()
		total := 0
		var fired int
		var last VTime = -1
		var schedule func(at VTime, depth int)
		schedule = func(at VTime, depth int) {
			total++
			eng.Schedule(NewFuncEvent(at, func(now VTime) error {
				if now < last {
					t.Fatalf("time went backwards: %v after %v", now, last)
				}
				last = now
				fired++
				if depth < 3 && rng.Intn(2) == 0 {
					schedule(now+VTime(rng.Intn(5)), depth+1)
				}
				return nil
			}))
		}
		for i := 0; i < 20; i++ {
			schedule(VTime(rng.Intn(100)), 0)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if fired != total {
			t.Fatalf("fired %d of %d events", fired, total)
		}
	}
}

func TestVTimeHelpers(t *testing.T) {
	if VTime(2).Max(3) != 3 || VTime(2).Min(3) != 2 {
		t.Fatal("Max/Min broken")
	}
	if !VTime(1).Before(2) || !VTime(2).After(1) {
		t.Fatal("Before/After broken")
	}
	cases := map[VTime]string{
		0:        "0s",
		1.5:      "1.500000s",
		2e-3:     "2.000ms",
		3e-6:     "3.000us",
		4e-9:     "4.000ns",
		Infinity: "+inf",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("VTime(%g).String() = %q, want %q", float64(in), got, want)
		}
	}
	if VTime(1.5).Milliseconds() != 1500 {
		t.Fatal("Milliseconds broken")
	}
	if VTime(1.5).Microseconds() != 1.5e6 {
		t.Fatal("Microseconds broken")
	}
	if VTime(1.5).Seconds() != 1.5 {
		t.Fatal("Seconds broken")
	}
}

func TestNilHandlerError(t *testing.T) {
	eng := NewSerialEngine()
	eng.Schedule(&nilHandlerEvent{EventBase: NewEventBase(1, nil)})
	if err := eng.Run(); err == nil {
		t.Fatal("want error for nil handler")
	}
}

type nilHandlerEvent struct{ EventBase }
