package sim

// Feed drives an open-loop event source through the engine lazily: next is
// pulled for one item at a time, and the following item is only scheduled
// after the current one fires. An arrival process of N requests therefore
// holds one pending event, not N — the queue depth (and QueueHighWater)
// stays independent of workload length.
//
// next returns the item's firing time, its action, and ok=false when the
// source is exhausted. Times must be non-decreasing across calls (an
// arrival process); a time earlier than the engine's current time is
// clamped to now. Feed must be called before the engine runs or from within
// a handler.
func Feed(eng Engine, next func() (VTime, func(now VTime) error, bool)) {
	t, fire, ok := next()
	if !ok {
		return
	}
	var step func(now VTime) error
	step = func(now VTime) error {
		if err := fire(now); err != nil {
			return err
		}
		nt, nf, nok := next()
		if !nok {
			return nil
		}
		fire = nf
		ScheduleFunc(eng, nt.Max(now), step)
		return nil
	}
	ScheduleFunc(eng, t, step)
}
