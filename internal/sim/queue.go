package sim

// This file is the engine's specialized event queue: a hand-rolled generic
// 4-ary min-heap over queuedEvent values. It replaces container/heap, whose
// Push(x any)/Pop() any interface boxes every queuedEvent on the heap's hot
// path (one allocation per scheduled event) and whose binary layout costs one
// extra comparison level for every doubling of the queue. The 4-ary layout
// halves the tree depth, the concrete element type removes the boxing and the
// Less/Swap interface calls, and the (time, secondary, seq) key is cached in
// the element so ordering never calls back into the Event interface.
//
// The total order is exactly the one the engine has always used — event time,
// then primary-before-secondary, then insertion sequence — so the dispatch
// schedule, and therefore the pinned replay digests, are bit-identical to the
// container/heap implementation (property-tested side by side in
// queue_test.go and fuzzed in FuzzEventQueueOrder).

// before reports whether a sorts strictly ahead of b in the engine's total
// dispatch order: (time, primary before secondary, insertion sequence).
func (a queuedEvent) before(b queuedEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.secondary != b.secondary {
		return !a.secondary
	}
	return a.seq < b.seq
}

// heapOrdered is the element constraint for heap4: the type supplies its own
// strict ordering.
type heapOrdered[T any] interface{ before(T) bool }

// heap4 is a generic 4-ary min-heap. Children of node i live at 4i+1..4i+4;
// the parent of node i is (i-1)/4. The zero value is an empty, ready-to-use
// heap.
type heap4[T heapOrdered[T]] struct {
	items []T
}

func (h *heap4[T]) len() int { return len(h.items) }

// peek returns the minimum element without removing it. Undefined on an
// empty heap (callers check len first).
func (h *heap4[T]) peek() T { return h.items[0] }

// push inserts v, keeping the heap property.
//
//triosim:hotpath
func (h *heap4[T]) push(v T) {
	h.items = append(h.items, v) //triosim:nolint hotpath-alloc -- amortized: the heap's backing array doubles until the queue's high-water mark, then is reused
	h.siftUp(len(h.items) - 1)
}

// pop removes and returns the minimum element.
//
//triosim:hotpath
func (h *heap4[T]) pop() T {
	root := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	var zero T
	h.items[n] = zero // release references held by the vacated slot
	h.items = h.items[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return root
}

// siftUp restores the heap property upward from slot i.
//
//triosim:hotpath
func (h *heap4[T]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 4
		if !h.items[i].before(h.items[p]) {
			return
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

// siftDown restores the heap property downward from slot i.
//
//triosim:hotpath
func (h *heap4[T]) siftDown(i int) {
	n := len(h.items)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.items[c].before(h.items[min]) {
				min = c
			}
		}
		if !h.items[min].before(h.items[i]) {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}
