package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the reference priority queue: the exact container/heap
// implementation the engine used before the specialized 4-ary heap, kept here
// so the property test and fuzz target can assert the two produce identical
// pop orders for arbitrary interleavings of pushes and pops.
type refHeap []queuedEvent

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].secondary != h[j].secondary {
		return !h[i].secondary // primary before secondary
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *refHeap) Push(x any) { *h = append(*h, x.(queuedEvent)) }

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = queuedEvent{}
	*h = old[:n-1]
	return item
}

func sameKey(a, b queuedEvent) bool {
	return a.time == b.time && a.secondary == b.secondary && a.seq == b.seq
}

// TestQueueMatchesContainerHeap drives randomized push/pop interleavings
// through heap4 and the container/heap reference side by side and asserts
// identical pop order. Times are drawn from a tiny set so same-timestamp
// collisions (where the secondary flag and seq tiebreaks matter) dominate.
func TestQueueMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var h4 heap4[queuedEvent]
		ref := &refHeap{}
		var seq uint64
		ops := 1 + rng.Intn(400)
		for op := 0; op < ops; op++ {
			if h4.len() == 0 || rng.Intn(3) > 0 {
				seq++
				qe := queuedEvent{
					time:      VTime(rng.Intn(5)) * MSec,
					seq:       seq,
					secondary: rng.Intn(4) == 0,
				}
				h4.push(qe)
				heap.Push(ref, qe)
				continue
			}
			got := h4.pop()
			want := heap.Pop(ref).(queuedEvent)
			if !sameKey(got, want) {
				t.Fatalf("trial %d op %d: pop mismatch: heap4 (%v,%v,%d) vs container/heap (%v,%v,%d)",
					trial, op, got.time, got.secondary, got.seq,
					want.time, want.secondary, want.seq)
			}
		}
		for h4.len() > 0 {
			if ref.Len() == 0 {
				t.Fatalf("trial %d: heap4 has %d leftover events, reference is empty",
					trial, h4.len())
			}
			got := h4.pop()
			want := heap.Pop(ref).(queuedEvent)
			if !sameKey(got, want) {
				t.Fatalf("trial %d drain: pop mismatch: heap4 (%v,%v,%d) vs container/heap (%v,%v,%d)",
					trial, got.time, got.secondary, got.seq,
					want.time, want.secondary, want.seq)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference has %d leftover events, heap4 is empty",
				trial, ref.Len())
		}
	}
}

// TestQueuePopOrderIsTotal drains a shuffled batch and checks the output is
// strictly increasing in the (time, secondary, seq) total order.
func TestQueuePopOrderIsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h4 heap4[queuedEvent]
	for seq := uint64(1); seq <= 1000; seq++ {
		h4.push(queuedEvent{
			time:      VTime(rng.Intn(10)) * USec,
			seq:       seq,
			secondary: rng.Intn(2) == 0,
		})
	}
	prev := h4.pop()
	for h4.len() > 0 {
		next := h4.pop()
		if next.before(prev) {
			t.Fatalf("pop order violated: (%v,%v,%d) after (%v,%v,%d)",
				next.time, next.secondary, next.seq,
				prev.time, prev.secondary, prev.seq)
		}
		prev = next
	}
}

// ringCollectiveSeed encodes the event pattern a ring all-reduce produces:
// per step, one primary send per GPU at the same timestamp (the heavy
// same-time cohort the batch pop targets) followed by a secondary bookkeeping
// flush, with the next step offset in time. Each byte is one fuzz op (see
// FuzzEventQueueOrder for the decoding).
func ringCollectiveSeed(gpus, steps int) []byte {
	var ops []byte
	for s := 0; s < steps; s++ {
		tick := byte(s % 8)
		for g := 0; g < gpus; g++ {
			ops = append(ops, tick) // primary send at this step's time
		}
		ops = append(ops, tick|0x80) // secondary flush at the same time
		for g := 0; g < gpus; g++ {
			ops = append(ops, 0xFF) // drain the step
		}
	}
	return ops
}

// FuzzEventQueueOrder fuzzes push/pop interleavings: byte 0xFF pops from both
// queues and compares; any other byte pushes an event with time = low 3 bits
// (in ms) and secondary = high bit. Seeds include ring-collective patterns so
// the corpus starts on the same-timestamp cohorts the engine batches.
func FuzzEventQueueOrder(f *testing.F) {
	f.Add(ringCollectiveSeed(4, 3))
	f.Add(ringCollectiveSeed(8, 2))
	f.Add([]byte{0, 0, 0x80, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var h4 heap4[queuedEvent]
		ref := &refHeap{}
		var seq uint64
		for _, b := range ops {
			if b == 0xFF {
				if h4.len() == 0 {
					if ref.Len() != 0 {
						t.Fatalf("heap4 empty but reference holds %d", ref.Len())
					}
					continue
				}
				got := h4.pop()
				want := heap.Pop(ref).(queuedEvent)
				if !sameKey(got, want) {
					t.Fatalf("pop mismatch: heap4 (%v,%v,%d) vs container/heap (%v,%v,%d)",
						got.time, got.secondary, got.seq,
						want.time, want.secondary, want.seq)
				}
				continue
			}
			seq++
			qe := queuedEvent{
				time:      VTime(b&0x07) * MSec,
				seq:       seq,
				secondary: b&0x80 != 0,
			}
			h4.push(qe)
			heap.Push(ref, qe)
		}
		for h4.len() > 0 {
			got := h4.pop()
			want := heap.Pop(ref).(queuedEvent)
			if !sameKey(got, want) {
				t.Fatalf("drain mismatch: heap4 (%v,%v,%d) vs container/heap (%v,%v,%d)",
					got.time, got.secondary, got.seq,
					want.time, want.secondary, want.seq)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("reference holds %d events after heap4 drained", ref.Len())
		}
	})
}
