package sim

import (
	"errors"
	"testing"
)

func TestFeedDeliversInOrder(t *testing.T) {
	eng := NewSerialEngine()
	times := []VTime{1 * MSec, 2 * MSec, 2 * MSec, 5 * MSec}
	i := 0
	var got []VTime
	Feed(eng, func() (VTime, func(VTime) error, bool) {
		if i >= len(times) {
			return 0, nil, false
		}
		at := times[i]
		i++
		return at, func(now VTime) error {
			got = append(got, now)
			return nil
		}, true
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(times) {
		t.Fatalf("fired %d items, want %d", len(got), len(times))
	}
	for j, at := range times {
		if got[j] != at {
			t.Fatalf("item %d fired at %v, want %v", j, got[j], at)
		}
	}
}

func TestFeedIsLazy(t *testing.T) {
	// A 10k-item source must never hold more than one pending feed event.
	eng := NewSerialEngine()
	const n = 10000
	i := 0
	Feed(eng, func() (VTime, func(VTime) error, bool) {
		if i >= n {
			return 0, nil, false
		}
		at := VTime(i) * USec
		i++
		return at, func(VTime) error { return nil }, true
	})
	if p := eng.Pending(); p != 1 {
		t.Fatalf("feed enqueued %d events up front, want 1", p)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("consumed %d items, want %d", i, n)
	}
	if hw := eng.QueueHighWater(); hw > 2 {
		t.Fatalf("queue high-water %d, want <= 2 (lazy feed)", hw)
	}
}

func TestFeedEmptyAndError(t *testing.T) {
	eng := NewSerialEngine()
	Feed(eng, func() (VTime, func(VTime) error, bool) { return 0, nil, false })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	i := 0
	Feed(eng, func() (VTime, func(VTime) error, bool) {
		i++
		return VTime(i) * USec, func(VTime) error {
			if i >= 2 {
				return boom
			}
			return nil
		}, true
	})
	if err := eng.Run(); !errors.Is(err, boom) {
		t.Fatalf("engine error = %v, want %v", err, boom)
	}
}

func TestFeedClampsPastTimes(t *testing.T) {
	// A source whose next time is earlier than the current dispatch time is
	// clamped to now rather than scheduled in the past.
	eng := NewSerialEngine()
	times := []VTime{2 * MSec, 1 * MSec}
	i := 0
	var got []VTime
	Feed(eng, func() (VTime, func(VTime) error, bool) {
		if i >= len(times) {
			return 0, nil, false
		}
		at := times[i]
		i++
		return at, func(now VTime) error {
			got = append(got, now)
			return nil
		}, true
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != 2*MSec {
		t.Fatalf("got %v, want second item clamped to 2ms", got)
	}
}
