package sim

import (
	"strings"
	"testing"
)

// mixedWorkload schedules a deliberately adversarial mix: primary and
// secondary events at identical timestamps, cascading re-schedules, and
// ties that only the (time, secondary, sequence) total order resolves.
func mixedWorkload(eng *SerialEngine) error {
	for i := 0; i < 8; i++ {
		i := i
		at := VTime(1 + i%3) // times 1,2,3 with many ties
		eng.Schedule(NewFuncEvent(at, func(now VTime) error {
			if i%2 == 0 {
				eng.Schedule(NewSecondaryFuncEvent(now, func(VTime) error {
					return nil
				}))
			}
			eng.Schedule(NewFuncEvent(now+VTime(i)*MSec, func(VTime) error {
				return nil
			}))
			return nil
		}))
		eng.Schedule(NewSecondaryFuncEvent(at, func(VTime) error { return nil }))
	}
	return nil
}

// goldenMixedDigest pins the event-schedule digest of mixedWorkload. If an
// engine change alters same-time ordering (primary-before-secondary, FIFO
// within a class), this value changes and the regression is caught — update
// it only when the ordering change is intentional and documented.
const goldenMixedDigest = uint64(0xb74c39ce8ef02660)

func TestMixedWorkloadDigestStable(t *testing.T) {
	digest, err := ReplayCheck(3, mixedWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if digest != goldenMixedDigest {
		t.Fatalf("mixed workload digest = %#x, want pinned %#x "+
			"(same-time event ordering changed?)", digest, goldenMixedDigest)
	}
}

func TestReplayCheckDetectsDivergence(t *testing.T) {
	run := 0
	diverging := func(eng *SerialEngine) error {
		run++
		eng.Schedule(NewFuncEvent(VTime(run), func(VTime) error { return nil }))
		return nil
	}
	_, err := ReplayCheck(2, diverging)
	if err == nil {
		t.Fatal("ReplayCheck accepted a diverging workload")
	}
	if !strings.Contains(err.Error(), "replay divergence") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReplayCheckNeedsTwoRuns(t *testing.T) {
	if _, err := ReplayCheck(1, mixedWorkload); err == nil {
		t.Fatal("ReplayCheck(1, ...) should be rejected")
	}
}

func TestDigestHookCountsAndNames(t *testing.T) {
	eng := NewSerialEngine()
	d := NewDigestHook()
	d.NameOf = func(e Event) string { return "ev" }
	eng.RegisterHook(d)
	for i := 1; i <= 3; i++ {
		eng.Schedule(NewFuncEvent(VTime(i), func(VTime) error { return nil }))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Count() != 3 {
		t.Fatalf("digest count = %d, want 3", d.Count())
	}
	if d.Sum64() == NewDigestHook().Sum64() {
		t.Fatal("digest did not change after events")
	}
}

func TestDigestDiffersAcrossSchedules(t *testing.T) {
	digestOf := func(times []VTime) uint64 {
		eng := NewSerialEngine()
		d := NewDigestHook()
		eng.RegisterHook(d)
		for _, at := range times {
			eng.Schedule(NewFuncEvent(at, func(VTime) error { return nil }))
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Sum64()
	}
	if digestOf([]VTime{1, 2, 3}) == digestOf([]VTime{1, 2, 4}) {
		t.Fatal("different schedules produced the same digest")
	}
}

func TestMonitorHandlerCountsSorted(t *testing.T) {
	m := NewMonitor(nil)
	m.ByHandler = map[string]uint64{"zeta": 3, "alpha": 1, "mid": 2}
	counts := m.HandlerCounts()
	if len(counts) != 3 {
		t.Fatalf("len = %d", len(counts))
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, hc := range counts {
		if hc.Name != want[i] {
			t.Fatalf("order %v, want %v", counts, want)
		}
	}
	if counts[0].Count != 1 || counts[2].Count != 3 {
		t.Fatalf("counts wrong: %v", counts)
	}
}
