// Package sim provides a lightweight discrete-event simulation engine in the
// style of the Akita Simulator Engine. Events carry a virtual timestamp and a
// handler; a serial engine pops events in time order and dispatches them.
// The engine is the substrate every other TrioSim component runs on: the
// network model, the GPU compute streams, and the collective-communication
// schedules all advance virtual time exclusively by scheduling events here.
package sim

import (
	"fmt"
	"math"
)

// VTime is virtual time inside the simulated world, in seconds.
type VTime float64

// Common time units expressed in VTime seconds.
const (
	Sec  VTime = 1
	MSec VTime = 1e-3
	USec VTime = 1e-6
	NSec VTime = 1e-9
)

// Infinity is a VTime later than any schedulable event.
var Infinity = VTime(math.Inf(1))

// Seconds returns the time as a plain float64 second count.
func (t VTime) Seconds() float64 { return float64(t) }

// Milliseconds returns the time in milliseconds.
func (t VTime) Milliseconds() float64 { return float64(t) * 1e3 }

// Microseconds returns the time in microseconds.
func (t VTime) Microseconds() float64 { return float64(t) * 1e6 }

// Before reports whether t is strictly earlier than u.
func (t VTime) Before(u VTime) bool { return t < u }

// After reports whether t is strictly later than u.
func (t VTime) After(u VTime) bool { return t > u }

// AtOrBefore reports whether t is no later than u.
func (t VTime) AtOrBefore(u VTime) bool { return t <= u }

// AtOrAfter reports whether t is no earlier than u.
func (t VTime) AtOrAfter(u VTime) bool { return t >= u }

// Max returns the later of t and u.
func (t VTime) Max(u VTime) VTime {
	if t > u {
		return t
	}
	return u
}

// Min returns the earlier of t and u.
func (t VTime) Min(u VTime) VTime {
	if t < u {
		return t
	}
	return u
}

// String formats the time with an adaptive unit for readability.
func (t VTime) String() string {
	switch {
	case math.IsInf(float64(t), 1):
		return "+inf"
	case t == 0:
		return "0s"
	case t >= Sec:
		return fmt.Sprintf("%.6fs", float64(t))
	case t >= MSec:
		return fmt.Sprintf("%.3fms", float64(t)*1e3)
	case t >= USec:
		return fmt.Sprintf("%.3fus", float64(t)*1e6)
	default:
		return fmt.Sprintf("%.3fns", float64(t)*1e9)
	}
}
