package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"triosim/internal/sim"
	"triosim/internal/tensor"
)

func sampleTrace() *Trace {
	t := New("toy", "A100", 128)
	in := t.Tensors.Add(tensor.Tensor{
		Dims: []int64{128, 3, 8, 8}, DType: tensor.Float32,
		Category: tensor.Input, BatchDim: 0,
	})
	w := t.Tensors.Add(tensor.Tensor{
		Dims: []int64{16, 3, 3, 3}, DType: tensor.Float32,
		Category: tensor.Weight, BatchDim: -1,
	})
	act := t.Tensors.Add(tensor.Tensor{
		Dims: []int64{128, 16, 8, 8}, DType: tensor.Float32,
		Category: tensor.Activation, BatchDim: 0,
	})
	g := t.Tensors.Add(tensor.Tensor{
		Dims: []int64{16, 3, 3, 3}, DType: tensor.Float32,
		Category: tensor.Gradient, BatchDim: -1,
	})
	t.Append(Op{
		Name: "conv2d", Layer: 0, LayerName: "conv1", Phase: Forward,
		Time: 1e-3, FLOPs: 1e9,
		Inputs: []tensor.ID{in, w}, Outputs: []tensor.ID{act},
		Parallelizable: true,
	})
	t.Append(Op{
		Name: "conv2d_bwd", Layer: 0, LayerName: "conv1", Phase: Backward,
		Time: 2e-3, FLOPs: 2e9,
		Inputs: []tensor.ID{act, w}, Outputs: []tensor.ID{g},
		Parallelizable: true,
	})
	t.Append(Op{
		Name: "sgd_step", Layer: 0, Phase: Optimizer,
		Time: 1e-4, FLOPs: 1e6,
		Inputs: []tensor.ID{w, g}, Outputs: []tensor.ID{w},
	})
	return t
}

func TestTotals(t *testing.T) {
	tr := sampleTrace()
	if got := tr.TotalTime(); got != sim.VTime(3.1e-3) {
		t.Fatalf("TotalTime = %v", got)
	}
	if got := tr.TotalFLOPs(); got != 3.001e9 {
		t.Fatalf("TotalFLOPs = %v", got)
	}
	if tr.NumLayers() != 1 {
		t.Fatalf("NumLayers = %d", tr.NumLayers())
	}
}

func TestPhaseSelection(t *testing.T) {
	tr := sampleTrace()
	fwd := tr.OpsInPhase(Forward)
	if len(fwd) != 1 || tr.Ops[fwd[0]].Name != "conv2d" {
		t.Fatalf("forward ops = %v", fwd)
	}
	bwd := tr.OpsInPhase(Backward)
	if len(bwd) != 1 || tr.Ops[bwd[0]].Name != "conv2d_bwd" {
		t.Fatalf("backward ops = %v", bwd)
	}
	if len(tr.OpsInPhase(Optimizer)) != 1 {
		t.Fatal("optimizer ops missing")
	}
}

func TestCategoryByteSums(t *testing.T) {
	tr := sampleTrace()
	wantGrad := int64(16 * 3 * 3 * 3 * 4)
	if got := tr.GradientBytes(); got != wantGrad {
		t.Fatalf("GradientBytes = %d, want %d", got, wantGrad)
	}
	if got := tr.WeightBytes(); got != wantGrad {
		t.Fatalf("WeightBytes = %d, want %d", got, wantGrad)
	}
	wantIn := int64(128 * 3 * 8 * 8 * 4)
	if got := tr.InputBytes(); got != wantIn {
		t.Fatalf("InputBytes = %d, want %d", got, wantIn)
	}
}

func TestOpByteAccessors(t *testing.T) {
	tr := sampleTrace()
	op := &tr.Ops[0]
	wantIn := int64(128*3*8*8*4 + 16*3*3*3*4)
	if got := op.BytesIn(tr.Tensors); got != wantIn {
		t.Fatalf("BytesIn = %d, want %d", got, wantIn)
	}
	wantOut := int64(128 * 16 * 8 * 8 * 4)
	if got := op.BytesOut(tr.Tensors); got != wantOut {
		t.Fatalf("BytesOut = %d, want %d", got, wantOut)
	}
}

func TestValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	bad := sampleTrace()
	bad.Ops[1].Inputs = append(bad.Ops[1].Inputs, 9999)
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown tensor reference not caught")
	}

	bad2 := sampleTrace()
	bad2.Ops[0].Time = -1
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative time not caught")
	}

	bad3 := sampleTrace()
	bad3.Ops[0].Seq = 5
	if err := bad3.Validate(); err == nil {
		t.Fatal("bad seq not caught")
	}

	bad4 := sampleTrace()
	bad4.Ops[0].FLOPs = -3
	if err := bad4.Validate(); err == nil {
		t.Fatal("negative FLOPs not caught")
	}

	bad5 := sampleTrace()
	bad5.Ops[2].Outputs = []tensor.ID{4242}
	if err := bad5.Validate(); err == nil {
		t.Fatal("unknown output tensor not caught")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != tr.Model || back.Device != tr.Device ||
		back.BatchSize != tr.BatchSize {
		t.Fatal("metadata not preserved")
	}
	if len(back.Ops) != len(tr.Ops) {
		t.Fatalf("op count %d, want %d", len(back.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		a, b := &tr.Ops[i], &back.Ops[i]
		if a.Name != b.Name || a.Time != b.Time || a.FLOPs != b.FLOPs ||
			a.Phase != b.Phase || a.Layer != b.Layer ||
			a.Parallelizable != b.Parallelizable {
			t.Fatalf("op %d differs: %+v vs %+v", i, a, b)
		}
		if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
			t.Fatalf("op %d tensor lists differ", i)
		}
	}
	if back.Tensors.Len() != tr.Tensors.Len() {
		t.Fatal("tensor table size differs")
	}
	for _, tn := range tr.Tensors.All() {
		bt := back.Tensors.Get(tn.ID)
		if bt == nil || bt.Bytes() != tn.Bytes() || bt.Category != tn.Category ||
			bt.BatchDim != tn.BatchDim {
			t.Fatalf("tensor %d differs", tn.ID)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalTime() != tr.TotalTime() {
		t.Fatal("file round trip changed total time")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(strings.NewReader(
		`{"ops":[{"phase":"sideways"}],"tensors":[]}`)); err == nil {
		t.Fatal("bad phase accepted")
	}
	if _, err := Decode(strings.NewReader(
		`{"ops":[],"tensors":[{"id":1,"dims":[1],"dtype":"quux","category":"input"}]}`)); err == nil {
		t.Fatal("bad dtype accepted")
	}
	if _, err := Decode(strings.NewReader(
		`{"ops":[],"tensors":[{"id":1,"dims":[1],"dtype":"float32","category":"quux"}]}`)); err == nil {
		t.Fatal("bad category accepted")
	}
}

func TestPhaseRoundTrip(t *testing.T) {
	for p := Forward; p <= Optimizer; p++ {
		got, err := ParsePhase(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePhase(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePhase("nope"); err == nil {
		t.Error("ParsePhase should reject unknown names")
	}
}
