package trace

import (
	"fmt"
	"io"
	"sort"

	"triosim/internal/sim"
)

// OpClassStats aggregates one operator type.
type OpClassStats struct {
	Name  string
	Count int
	Time  sim.VTime
	FLOPs float64
	Bytes int64
}

// Stats is a trace profile: what a user inspects before simulating.
type Stats struct {
	Model     string
	Device    string
	BatchSize int
	Ops       int
	Tensors   int
	TotalTime sim.VTime
	// Phase times.
	ForwardTime, BackwardTime, OptimizerTime sim.VTime
	// Byte accounting.
	WeightBytes, GradientBytes, InputBytes int64
	// ByOp is sorted by descending total time.
	ByOp []OpClassStats
}

// ComputeStats profiles the trace.
func (t *Trace) ComputeStats() Stats {
	s := Stats{
		Model:         t.Model,
		Device:        t.Device,
		BatchSize:     t.BatchSize,
		Ops:           len(t.Ops),
		Tensors:       t.Tensors.Len(),
		TotalTime:     t.TotalTime(),
		WeightBytes:   t.WeightBytes(),
		GradientBytes: t.GradientBytes(),
		InputBytes:    t.InputBytes(),
	}
	byOp := map[string]*OpClassStats{}
	for i := range t.Ops {
		op := &t.Ops[i]
		switch op.Phase {
		case Forward:
			s.ForwardTime += op.Time
		case Backward:
			s.BackwardTime += op.Time
		case Optimizer:
			s.OptimizerTime += op.Time
		}
		cls := byOp[op.Name]
		if cls == nil {
			cls = &OpClassStats{Name: op.Name}
			byOp[op.Name] = cls
		}
		cls.Count++
		cls.Time += op.Time
		cls.FLOPs += op.FLOPs
		cls.Bytes += op.BytesIn(t.Tensors) + op.BytesOut(t.Tensors)
	}
	for _, cls := range byOp {
		s.ByOp = append(s.ByOp, *cls)
	}
	sort.Slice(s.ByOp, func(i, j int) bool {
		if s.ByOp[i].Time != s.ByOp[j].Time {
			return s.ByOp[i].Time.After(s.ByOp[j].Time)
		}
		return s.ByOp[i].Name < s.ByOp[j].Name
	})
	return s
}

// Print renders the profile as an aligned report.
func (s *Stats) Print(w io.Writer) {
	fmt.Fprintf(w, "trace: %s on %s, batch %d\n", s.Model, s.Device,
		s.BatchSize)
	fmt.Fprintf(w, "  %d ops, %d tensors, iteration %v\n",
		s.Ops, s.Tensors, s.TotalTime)
	fmt.Fprintf(w, "  forward %v | backward %v | optimizer %v\n",
		s.ForwardTime, s.BackwardTime, s.OptimizerTime)
	fmt.Fprintf(w, "  weights %.1f MB | gradients %.1f MB | input %.1f MB\n",
		float64(s.WeightBytes)/1e6, float64(s.GradientBytes)/1e6,
		float64(s.InputBytes)/1e6)
	fmt.Fprintf(w, "  %-16s %6s %14s %8s %12s %12s\n",
		"operator", "count", "time", "share", "GFLOPs", "GB moved")
	for _, cls := range s.ByOp {
		fmt.Fprintf(w, "  %-16s %6d %14v %7.1f%% %12.1f %12.2f\n",
			cls.Name, cls.Count, cls.Time,
			100*float64(cls.Time)/float64(s.TotalTime),
			cls.FLOPs/1e9, float64(cls.Bytes)/1e9)
	}
}
