// Package trace defines TrioSim's trace format and its JSON serialization.
//
// A trace is what the tracer tool (built on the PyTorch Profiler and the
// Execution Graph Observer in the paper; the analytic model zoo plus the
// reference hardware emulator in this reproduction) captures from one
// single-GPU training iteration. It has two tables:
//
//   - the operator table: one entry per executed operator, with the operator
//     name, the layer it belongs to, the training phase, the measured
//     execution time, and the input/output tensors as lists of tensor IDs;
//   - the tensor table: every tensor's dimensions, element type, and
//     category, so the simulator can compute the bytes that must move when a
//     tensor is not resident where it is needed.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"triosim/internal/sim"
	"triosim/internal/tensor"
)

// Phase tags which part of the training step an operator belongs to.
type Phase int

// Training phases.
const (
	Forward Phase = iota
	Backward
	Optimizer
)

var phaseNames = [...]string{"forward", "backward", "optimizer"}

// String returns the lowercase phase name.
func (p Phase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// ParsePhase converts a phase name back to a Phase.
func ParsePhase(s string) (Phase, error) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), nil
		}
	}
	return Forward, fmt.Errorf("trace: unknown phase %q", s)
}

// Op is one operator-table entry.
type Op struct {
	// Seq is the position of the operator in program order.
	Seq int
	// Name is the operator name, e.g. "conv2d" or "matmul".
	Name string
	// Layer is the index of the DNN layer this operator implements. The
	// trace extrapolator groups operators by layer when assigning pipeline
	// stages and when deciding tensor-parallel splits.
	Layer int
	// LayerName is a human-readable layer label, e.g. "layer3.block2.conv1".
	LayerName string
	// Phase is forward, backward, or optimizer.
	Phase Phase
	// Time is the measured single-GPU execution time of the operator.
	Time sim.VTime
	// FLOPs is the floating-point work of the operator, derived from the
	// operator's input/output dimensions (what Li's Model computes from the
	// shapes the Execution Graph Observer records).
	FLOPs float64
	// Inputs and Outputs list the tensors the operator reads and writes.
	Inputs  []tensor.ID
	Outputs []tensor.ID
	// Parallelizable marks operators whose work tensor parallelism can
	// split across GPUs (conv, linear, embedding, matmul).
	Parallelizable bool
}

// BytesIn returns the total input bytes of the op according to tab.
func (o *Op) BytesIn(tab *tensor.Table) int64 { return tab.TotalBytes(o.Inputs) }

// BytesOut returns the total output bytes of the op according to tab.
func (o *Op) BytesOut(tab *tensor.Table) int64 { return tab.TotalBytes(o.Outputs) }

// Trace is a complete single-GPU trace. Traces are shared read-only — the
// trace cache hands the same *Trace to every concurrent scenario — so once a
// trace escapes its builder it must not be mutated; Clone is the sanctioned
// copy-on-write boundary (enforced by triosimvet's publish-then-mutate).
//
//triosim:immutable
type Trace struct {
	// Model is the workload name, e.g. "resnet50".
	Model string
	// Device is the GPU the trace was collected on, e.g. "A100".
	Device string
	// BatchSize is the mini-batch size used during tracing.
	BatchSize int
	Ops       []Op
	Tensors   *tensor.Table
}

// New returns an empty trace with an initialized tensor table.
func New(model, device string, batchSize int) *Trace {
	return &Trace{
		Model:     model,
		Device:    device,
		BatchSize: batchSize,
		Tensors:   tensor.NewTable(),
	}
}

// Append adds an op, assigning its sequence number.
func (t *Trace) Append(op Op) {
	op.Seq = len(t.Ops)
	t.Ops = append(t.Ops, op)
}

// Clone returns a deep copy of the trace: the op table (including Inputs and
// Outputs ID slices) and the tensor table are copied, so the clone can be
// mutated freely without touching the original. This is the copy-on-write
// boundary for traces shared read-only out of the trace cache.
func (t *Trace) Clone() *Trace {
	out := &Trace{
		Model:     t.Model,
		Device:    t.Device,
		BatchSize: t.BatchSize,
	}
	if t.Ops != nil {
		out.Ops = make([]Op, len(t.Ops))
		copy(out.Ops, t.Ops)
		for i := range out.Ops {
			op := &out.Ops[i]
			op.Inputs = append([]tensor.ID(nil), op.Inputs...)
			op.Outputs = append([]tensor.ID(nil), op.Outputs...)
		}
	}
	if t.Tensors != nil {
		out.Tensors = t.Tensors.Clone()
	}
	return out
}

// TotalTime sums the measured time of all ops (the traced single-GPU
// iteration time, excluding data loading).
func (t *Trace) TotalTime() sim.VTime {
	var total sim.VTime
	for i := range t.Ops {
		total += t.Ops[i].Time
	}
	return total
}

// TotalFLOPs sums the FLOPs of all ops.
func (t *Trace) TotalFLOPs() float64 {
	var total float64
	for i := range t.Ops {
		total += t.Ops[i].FLOPs
	}
	return total
}

// OpsInPhase returns the indices of ops in the given phase, in order.
func (t *Trace) OpsInPhase(p Phase) []int {
	var out []int
	for i := range t.Ops {
		if t.Ops[i].Phase == p {
			out = append(out, i)
		}
	}
	return out
}

// NumLayers returns 1 + the maximum layer index (0 for an empty trace).
func (t *Trace) NumLayers() int {
	max := -1
	for i := range t.Ops {
		if t.Ops[i].Layer > max {
			max = t.Ops[i].Layer
		}
	}
	return max + 1
}

// GradientBytes sums the bytes of all gradient-category tensors; this is the
// volume a data-parallel AllReduce must synchronize.
func (t *Trace) GradientBytes() int64 {
	return t.Tensors.BytesByCategory(tensor.Gradient)
}

// WeightBytes sums the bytes of all weight tensors.
func (t *Trace) WeightBytes() int64 {
	return t.Tensors.BytesByCategory(tensor.Weight)
}

// InputBytes sums the bytes of all input tensors (the host-to-device volume
// per iteration).
func (t *Trace) InputBytes() int64 {
	return t.Tensors.BytesByCategory(tensor.Input)
}

// Validate checks trace integrity: sequence numbers are consecutive, every
// referenced tensor exists, and times are non-negative.
func (t *Trace) Validate() error {
	if t.Tensors == nil {
		return fmt.Errorf("trace: nil tensor table")
	}
	for i := range t.Ops {
		op := &t.Ops[i]
		if op.Seq != i {
			return fmt.Errorf("trace: op %d has seq %d", i, op.Seq)
		}
		if op.Time.Before(0) {
			return fmt.Errorf("trace: op %d (%s) has negative time", i, op.Name)
		}
		if op.FLOPs < 0 {
			return fmt.Errorf("trace: op %d (%s) has negative FLOPs", i, op.Name)
		}
		for _, id := range op.Inputs {
			if t.Tensors.Get(id) == nil {
				return fmt.Errorf("trace: op %d (%s) reads unknown tensor %d",
					i, op.Name, id)
			}
		}
		for _, id := range op.Outputs {
			if t.Tensors.Get(id) == nil {
				return fmt.Errorf("trace: op %d (%s) writes unknown tensor %d",
					i, op.Name, id)
			}
		}
	}
	return nil
}

// ---- JSON serialization ----

type jsonTensor struct {
	ID       tensor.ID `json:"id"`
	Dims     []int64   `json:"dims"`
	DType    string    `json:"dtype"`
	Category string    `json:"category"`
	BatchDim int       `json:"batch_dim"`
}

type jsonOp struct {
	Seq            int         `json:"seq"`
	Name           string      `json:"name"`
	Layer          int         `json:"layer"`
	LayerName      string      `json:"layer_name,omitempty"`
	Phase          string      `json:"phase"`
	TimeSec        float64     `json:"time_sec"`
	FLOPs          float64     `json:"flops"`
	Inputs         []tensor.ID `json:"inputs"`
	Outputs        []tensor.ID `json:"outputs"`
	Parallelizable bool        `json:"parallelizable,omitempty"`
}

type jsonTrace struct {
	Model     string       `json:"model"`
	Device    string       `json:"device"`
	BatchSize int          `json:"batch_size"`
	Ops       []jsonOp     `json:"ops"`
	Tensors   []jsonTensor `json:"tensors"`
}

// Encode writes the trace as JSON to w.
func (t *Trace) Encode(w io.Writer) error {
	jt := jsonTrace{
		Model:     t.Model,
		Device:    t.Device,
		BatchSize: t.BatchSize,
	}
	for i := range t.Ops {
		op := &t.Ops[i]
		jt.Ops = append(jt.Ops, jsonOp{
			Seq:            op.Seq,
			Name:           op.Name,
			Layer:          op.Layer,
			LayerName:      op.LayerName,
			Phase:          op.Phase.String(),
			TimeSec:        float64(op.Time),
			FLOPs:          op.FLOPs,
			Inputs:         op.Inputs,
			Outputs:        op.Outputs,
			Parallelizable: op.Parallelizable,
		})
	}
	for _, tn := range t.Tensors.All() {
		jt.Tensors = append(jt.Tensors, jsonTensor{
			ID:       tn.ID,
			Dims:     tn.Dims,
			DType:    tn.DType.String(),
			Category: tn.Category.String(),
			BatchDim: tn.BatchDim,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jt)
}

// Decode reads a JSON trace from r.
func Decode(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	t := New(jt.Model, jt.Device, jt.BatchSize)
	for _, jtn := range jt.Tensors {
		dt, err := tensor.ParseDType(jtn.DType)
		if err != nil {
			return nil, err
		}
		cat, err := tensor.ParseCategory(jtn.Category)
		if err != nil {
			return nil, err
		}
		t.Tensors.Put(tensor.Tensor{
			ID:       jtn.ID,
			Dims:     jtn.Dims,
			DType:    dt,
			Category: cat,
			BatchDim: jtn.BatchDim,
		})
	}
	for _, jop := range jt.Ops {
		ph, err := ParsePhase(jop.Phase)
		if err != nil {
			return nil, err
		}
		t.Ops = append(t.Ops, Op{
			Seq:            jop.Seq,
			Name:           jop.Name,
			Layer:          jop.Layer,
			LayerName:      jop.LayerName,
			Phase:          ph,
			Time:           sim.VTime(jop.TimeSec),
			FLOPs:          jop.FLOPs,
			Inputs:         jop.Inputs,
			Outputs:        jop.Outputs,
			Parallelizable: jop.Parallelizable,
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteFile encodes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile decodes a trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
