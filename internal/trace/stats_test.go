package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	tr := sampleTrace()
	s := tr.ComputeStats()
	if s.Ops != 3 || s.Tensors != tr.Tensors.Len() {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.TotalTime != tr.TotalTime() {
		t.Fatal("total time mismatch")
	}
	if s.ForwardTime != 1e-3 || s.BackwardTime != 2e-3 ||
		s.OptimizerTime != 1e-4 {
		t.Fatalf("phase split wrong: %+v", s)
	}
	if s.WeightBytes != tr.WeightBytes() {
		t.Fatal("weight bytes mismatch")
	}
	// Sorted by descending time: conv2d_bwd first.
	if len(s.ByOp) != 3 || s.ByOp[0].Name != "conv2d_bwd" {
		t.Fatalf("ByOp order: %+v", s.ByOp)
	}
	var sum float64
	for _, cls := range s.ByOp {
		sum += float64(cls.Time)
	}
	if sum != float64(s.TotalTime) {
		t.Fatal("per-op times do not sum to total")
	}
}

func TestStatsPrint(t *testing.T) {
	tr := sampleTrace()
	s := tr.ComputeStats()
	var buf bytes.Buffer
	s.Print(&buf)
	out := buf.String()
	for _, want := range []string{"toy", "A100", "conv2d_bwd", "forward",
		"weights"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
