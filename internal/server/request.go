// Package server is triosimd's simulation-as-a-service engine: an HTTP/JSON
// front end over the existing simulation stack. Clients submit training or
// serving simulation requests; the server validates them against the config
// layer, queues them by priority under per-request deadlines, executes them
// on a bounded worker pool through internal/sweep, and shares one
// process-wide trace cache across every run.
//
// The load-bearing design decision is coalescing: requests are
// content-addressed with internal/digest — the same canonicalization the
// trace cache keys with — and identical configurations submitted while an
// equivalent run is queued or running join that run instead of spawning
// another (singleflight). Every subscriber receives the same byte-identical
// RunReport, which the simulator's determinism contract (EventDigest) makes
// a safe substitution: the report a joiner would have computed is the report
// the originating run computed.
//
// Overload is explicit, not implicit: a full queue rejects with 429 and a
// draining server with 503, both carrying Retry-After, so a load balancer or
// client backs off instead of stacking latency. See docs/SERVER.md.
package server

import (
	"encoding/json"
	"fmt"

	"triosim/internal/config"
	"triosim/internal/core"
	"triosim/internal/digest"
	"triosim/internal/faults"
	"triosim/internal/gpu"
	"triosim/internal/serving"
)

// Request kinds.
const (
	KindSimulate = "simulate"
	KindServe    = "serve"
)

// Request is one simulation job submission (POST /v1/jobs).
type Request struct {
	// Kind selects the pipeline: "simulate" (training, the default when Run
	// is set) or "serve" (request-level inference serving).
	Kind string `json:"kind,omitempty"`
	// Run configures a training simulation (required for kind "simulate").
	// TraceFile is rejected: the daemon does not read client-named paths
	// from its own filesystem.
	Run *config.RunSpec `json:"run,omitempty"`
	// Serve configures a serving simulation (required for kind "serve").
	Serve *ServeSpec `json:"serve,omitempty"`
	// Faults optionally injects a fault schedule (triosim.faults/v1).
	Faults *faults.Spec `json:"faults,omitempty"`
	// Priority orders the queue: higher runs first, ties FIFO. It does not
	// affect the simulation result and is excluded from the coalescing
	// digest; a coalesced join raises the queued run to the joiner's
	// priority when higher.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds the request end to end — queue wait plus execution —
	// in milliseconds (0 = the server's default). Joiners inherit the
	// originating run's deadline (see docs/SERVER.md).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ServeSpec configures one serving simulation over the API, mirroring the
// triosim -serve-sim flags.
type ServeSpec struct {
	// Platform is the simulated system (P1, P2, or P3).
	Platform string `json:"platform"`
	// Serving is the workload: model, scheduler, batching, arrivals.
	Serving serving.Config `json:"serving"`
	// Topology optionally overrides the platform's default interconnect.
	Topology *config.TopologySpec `json:"topology,omitempty"`
}

// RequestDigestDomain tags request digests (see internal/digest).
const RequestDigestDomain = "server.Request"

// compiled is a validated request: the canonical form the digest covers plus
// the pre-parsed fault schedule the run executes with.
type compiled struct {
	kind   string
	run    *config.RunSpec
	serve  *ServeSpec
	sched  *faults.Schedule
	digest string
}

// compile validates a request and computes its coalescing digest. Validation
// runs the same constructors a run would (config.RunSpec.ToCore, topology
// Build, faults.Parse), so a request that compiles cannot fail on
// configuration grounds later — only on cancellation or workload errors.
func compile(req *Request) (*compiled, error) {
	if req == nil {
		return nil, fmt.Errorf("empty request")
	}
	c := &compiled{kind: req.Kind, run: req.Run, serve: req.Serve}
	if c.kind == "" {
		switch {
		case req.Run != nil && req.Serve == nil:
			c.kind = KindSimulate
		case req.Serve != nil && req.Run == nil:
			c.kind = KindServe
		default:
			return nil, fmt.Errorf("set kind, or exactly one of run/serve")
		}
	}

	switch c.kind {
	case KindSimulate:
		if req.Run == nil {
			return nil, fmt.Errorf("kind %q needs a run spec", c.kind)
		}
		if req.Serve != nil {
			return nil, fmt.Errorf("kind %q does not take a serve spec", c.kind)
		}
		if req.Run.TraceFile != "" {
			return nil, fmt.Errorf("trace_file is not accepted over the API")
		}
		if req.Run.Model == "" {
			return nil, fmt.Errorf("run spec needs a model")
		}
		if _, err := req.Run.ToCore(); err != nil {
			return nil, err
		}
	case KindServe:
		if req.Serve == nil {
			return nil, fmt.Errorf("kind %q needs a serve spec", c.kind)
		}
		if req.Run != nil {
			return nil, fmt.Errorf("kind %q does not take a run spec", c.kind)
		}
		if req.Serve.Serving.Model == "" {
			return nil, fmt.Errorf("serve spec needs a serving model")
		}
		if _, err := gpu.PlatformByName(req.Serve.Platform); err != nil {
			return nil, err
		}
		if req.Serve.Topology != nil {
			if _, err := req.Serve.Topology.Build(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown kind %q", req.Kind)
	}

	if req.Faults != nil {
		// Round-trip through the schedule parser: it owns the schema and
		// bounds-free validation, and the run needs the compiled form.
		data, err := json.Marshal(req.Faults)
		if err != nil {
			return nil, err
		}
		sched, err := faults.Parse(data)
		if err != nil {
			return nil, err
		}
		c.sched = sched
	}

	// The digest covers exactly what determines the result: kind, workload
	// spec, and fault schedule. Priority and deadline are delivery
	// parameters, not simulation inputs — two requests differing only there
	// coalesce.
	d, err := digest.Sum(RequestDigestDomain, struct {
		Kind   string          `json:"kind"`
		Run    *config.RunSpec `json:"run,omitempty"`
		Serve  *ServeSpec      `json:"serve,omitempty"`
		Faults *faults.Spec    `json:"faults,omitempty"`
	}{c.kind, c.run, c.serve, req.Faults})
	if err != nil {
		return nil, err
	}
	c.digest = d
	return c, nil
}

// coreConfig builds the training core.Config for one execution attempt. It
// must run on the executing goroutine: the topology's route cache is
// unsynchronized, so the topology cannot be shared across runs.
func (c *compiled) coreConfig() (core.Config, error) {
	cfg, err := c.run.ToCore()
	if err != nil {
		return core.Config{}, err
	}
	cfg.Faults = c.sched
	cfg.Telemetry = true
	return cfg, nil
}

// serveConfig is coreConfig for serving runs.
func (c *compiled) serveConfig() (core.ServeConfig, error) {
	plat, err := gpu.PlatformByName(c.serve.Platform)
	if err != nil {
		return core.ServeConfig{}, err
	}
	cfg := core.ServeConfig{
		Serving:   c.serve.Serving,
		Platform:  plat,
		Telemetry: true,
		Faults:    c.sched,
	}
	if c.serve.Topology != nil {
		topo, err := c.serve.Topology.Build()
		if err != nil {
			return core.ServeConfig{}, err
		}
		cfg.Topology = topo
	}
	return cfg, nil
}
