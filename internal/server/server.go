package server

import (
	"bytes"
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"triosim/internal/core"
	"triosim/internal/digest"
	"triosim/internal/sweep"
	"triosim/internal/telemetry"
	"triosim/internal/tracecache"
)

// Options configure a Server.
type Options struct {
	// MaxQueue bounds the number of queued (not yet running) runs; a
	// submission past the bound is rejected with 429. Default 256.
	MaxQueue int
	// Workers is the in-flight cap: at most this many simulations execute
	// concurrently. Default GOMAXPROCS.
	Workers int
	// DefaultDeadline bounds requests that set no deadline_ms, covering
	// queue wait plus execution. Default 2 minutes.
	DefaultDeadline time.Duration
	// MaxCompleted bounds how many terminal runs stay fetchable before the
	// oldest are evicted. Default 4096.
	MaxCompleted int
	// Cache optionally supplies the shared trace cache (tests); nil builds a
	// fresh store.
	Cache *tracecache.Store
	// Clock supplies wall-clock readings for latency metrics and event
	// timestamps. Default time.Now.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxQueue <= 0 {
		o.MaxQueue = 256
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 2 * time.Minute
	}
	if o.MaxCompleted <= 0 {
		o.MaxCompleted = 4096
	}
	if o.Cache == nil {
		o.Cache = tracecache.New()
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Run states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// Event is one lifecycle event on a run's NDJSON stream.
type Event struct {
	State string `json:"state"`
	Msg   string `json:"msg,omitempty"`
	// WallMS is the server's wall-clock timestamp in Unix milliseconds.
	WallMS int64 `json:"wall_ms"`
}

// Result is a run's compact outcome (GET /v1/jobs/{id}/result).
type Result struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Digest string `json:"digest"`
	Error  string `json:"error,omitempty"`
	// TotalSec is the simulated makespan in seconds.
	TotalSec float64 `json:"total_sec,omitempty"`
	// Events and EventDigest are the engine's dispatch count and schedule
	// fingerprint — equal configurations must report equal digests.
	Events      uint64 `json:"events,omitempty"`
	EventDigest string `json:"event_digest,omitempty"`
	// Coalesced counts submissions that joined this run beyond the first.
	Coalesced int `json:"coalesced"`
}

// run is one unit of simulation work and its coalescing anchor: every
// submission with the same digest while the run is queued or running
// subscribes to it instead of creating another.
type run struct {
	id       string
	req      *compiled
	priority int
	seq      uint64
	index    int // heap slot, -1 once popped

	ctx      context.Context
	cancel   context.CancelFunc
	canceled bool // all subscribers withdrew

	state       string
	subscribers int
	coalesced   int
	enqueued    time.Time

	events  []Event
	updated chan struct{} // closed and replaced on every change
	done    chan struct{} // closed on terminal state

	result     *Result
	reportJSON []byte
}

// runHeap orders queued runs by priority (higher first), FIFO within a
// priority level.
type runHeap []*run

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h runHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *runHeap) Push(x any) {
	r := x.(*run)
	r.index = len(*h)
	*h = append(*h, r)
}
func (h *runHeap) Pop() any {
	old := *h
	r := old[len(old)-1]
	old[len(old)-1] = nil
	r.index = -1
	*h = old[:len(old)-1]
	return r
}

// latencyBounds are the request-latency histogram's upper bucket edges in
// seconds (submission to terminal state, queue wait included).
var latencyBounds = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// counters aggregate the server's lifetime totals (guarded by Server.mu).
type counters struct {
	submitted uint64
	coalesced uint64
	completed uint64
	failed    uint64
	canceled  uint64
	rejected  uint64

	latencyCounts []uint64 // len(latencyBounds)+1, last is +Inf overflow
	latencySum    float64
	latencyCount  uint64
}

func (c *counters) observeLatency(sec float64) {
	i := 0
	for i < len(latencyBounds) && sec > latencyBounds[i] {
		i++
	}
	c.latencyCounts[i]++
	c.latencySum += sec
	c.latencyCount++
}

// Server owns the queue, the coalescing window, the worker pool, and the
// shared trace cache. Construct with New; stop with Drain or Close.
type Server struct {
	opts  Options
	cache *tracecache.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	wake     chan struct{} // closed and replaced to broadcast queue changes
	queue    runHeap
	active   map[string]*run // digest → queued/running run (coalescing window)
	jobs     map[string]*run // id → run, incl. terminal until evicted
	doneIDs  []string        // terminal run ids, oldest first (eviction order)
	seq      uint64
	inFlight int
	draining bool
	stats    counters

	wg      sync.WaitGroup
	stopped chan struct{} // closed when every worker has exited
}

// New starts a server and its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		cache:      opts.Cache,
		baseCtx:    ctx,
		baseCancel: cancel,
		active:     map[string]*run{},
		jobs:       map[string]*run{},
		wake:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	s.stats.latencyCounts = make([]uint64, len(latencyBounds)+1)
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	go func() {
		s.wg.Wait()
		close(s.stopped)
	}()
	return s
}

// StatusError is an admission or lookup failure with its HTTP status.
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter int // seconds; 0 omits the header
}

func (e *StatusError) Error() string { return e.Msg }

// Ack answers a submission (POST /v1/jobs).
type Ack struct {
	ID     string `json:"id"`
	Digest string `json:"digest"`
	State  string `json:"state"`
	// Coalesced is true when the submission joined an existing equivalent
	// run rather than enqueuing a new one.
	Coalesced bool `json:"coalesced"`
	// QueueDepth is the queue length after this submission (observability,
	// not a position guarantee under priorities).
	QueueDepth int `json:"queue_depth"`
}

// Submit validates, coalesces or enqueues, and acknowledges one request.
// Errors are *StatusError: 400 on invalid requests, 429 when the queue is
// full, 503 when draining.
func (s *Server) Submit(req *Request) (*Ack, error) {
	c, err := compile(req)
	if err != nil {
		s.mu.Lock()
		s.stats.rejected++
		s.mu.Unlock()
		return nil, &StatusError{Code: 400, Msg: err.Error()}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.submitted++

	if s.draining {
		s.stats.rejected++
		return nil, &StatusError{Code: 503, Msg: "server is draining",
			RetryAfter: 5}
	}

	// Coalesce: an equivalent run queued or running absorbs this submission.
	// Joining is admission-free — it adds no work — and can only raise the
	// queued run's priority, never lower it.
	if r, ok := s.active[c.digest]; ok {
		r.subscribers++
		r.coalesced++
		s.stats.coalesced++
		if req.Priority > r.priority && r.index >= 0 {
			r.priority = req.Priority
			heap.Fix(&s.queue, r.index)
		}
		s.eventLocked(r, r.state, "coalesced with an equivalent submission")
		return &Ack{ID: r.id, Digest: c.digest, State: r.state,
			Coalesced: true, QueueDepth: len(s.queue)}, nil
	}

	if len(s.queue) >= s.opts.MaxQueue {
		s.stats.rejected++
		return nil, &StatusError{Code: 429, Msg: "queue is full",
			RetryAfter: 1}
	}

	deadline := s.opts.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	s.seq++
	r := &run{
		id:          fmt.Sprintf("%s-%d", digest.Short(c.digest), s.seq),
		req:         c,
		priority:    req.Priority,
		seq:         s.seq,
		state:       StateQueued,
		subscribers: 1,
		enqueued:    s.opts.Clock(),
		updated:     make(chan struct{}),
		done:        make(chan struct{}),
	}
	// The deadline starts at enqueue so queue wait counts against it: a
	// request that waits out its whole budget in the queue fails fast
	// instead of running past it.
	r.ctx, r.cancel = context.WithTimeout(s.baseCtx, deadline)
	heap.Push(&s.queue, r)
	s.active[c.digest] = r
	s.jobs[r.id] = r
	s.eventLocked(r, StateQueued, "")
	s.wakeLocked()
	return &Ack{ID: r.id, Digest: c.digest, State: StateQueued,
		QueueDepth: len(s.queue)}, nil
}

// wakeLocked broadcasts a queue change to sleeping workers by closing the
// current wake channel and installing a fresh one. Caller holds mu. This
// replaces a sync.Cond: Wait-under-lock is banned by the repo's
// mutex-discipline analyzer, and the channel form lets workers block outside
// the lock with no lost-wakeup window (a worker that snapshotted the old
// channel sees it closed).
func (s *Server) wakeLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// eventLocked appends a lifecycle event and wakes streamers. Caller holds mu.
func (s *Server) eventLocked(r *run, state, msg string) {
	r.events = append(r.events, Event{State: state, Msg: msg,
		WallMS: s.opts.Clock().UnixMilli()})
	close(r.updated)
	r.updated = make(chan struct{})
}

// worker executes queued runs until the server drains and the queue empties.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		r, wake, stop := s.next()
		if stop {
			return
		}
		if r == nil {
			select {
			case <-wake:
			}
			continue
		}
		res, report, err := s.execute(r)
		s.mu.Lock()
		s.inFlight--
		s.finalizeLocked(r, res, report, err)
		s.mu.Unlock()
	}
}

// next claims the highest-priority runnable job. It returns (nil, wake,
// false) when the queue is empty — the worker blocks on wake, which the next
// Submit or Drain closes — and stop once the server is draining and the
// queue has emptied.
func (s *Server) next() (r *run, wake chan struct{}, stop bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) > 0 {
		r := heap.Pop(&s.queue).(*run)
		if err := r.ctx.Err(); err != nil {
			// Deadline expired (or every subscriber canceled) while queued.
			s.finalizeLocked(r, nil, nil,
				fmt.Errorf("while queued: %w", err))
			continue
		}
		r.state = StateRunning
		s.inFlight++
		s.eventLocked(r, StateRunning, "")
		return r, nil, false
	}
	if s.draining {
		return nil, nil, true
	}
	return nil, s.wake, false
}

// execute runs one simulation through the sweep pool (Workers:1 — the
// server's own pool provides the parallelism; sweep provides ctx threading,
// panic isolation, and the cache installation point).
func (s *Server) execute(r *run) (*Result, []byte, error) {
	out := &Result{ID: r.id, Kind: r.req.kind, Digest: r.req.digest}
	switch r.req.kind {
	case KindServe:
		results := sweep.Serve(sweep.Options{Workers: 1, Context: r.ctx},
			[]sweep.ServeScenario{{Name: r.id, Build: func() core.ServeConfig {
				cfg, err := r.req.serveConfig()
				if err != nil {
					// compile() validated the same constructors; reaching
					// here is a programming error, isolated by the pool.
					panic(err)
				}
				cfg.Context = r.ctx
				return cfg
			}}})
		if err := results[0].Err; err != nil {
			return nil, nil, err
		}
		sr := results[0].Value.Res
		out.TotalSec = sr.TotalTime.Seconds()
		out.Events = sr.Events
		out.EventDigest = fmt.Sprintf("%#x", sr.EventDigest)
		report, err := renderReport(sr.Report)
		return out, report, err
	default:
		results := sweep.Simulate(sweep.Options{Workers: 1, Context: r.ctx},
			[]sweep.Scenario{{Name: r.id, Build: func() core.Config {
				cfg, err := r.req.coreConfig()
				if err != nil {
					panic(err)
				}
				cfg.Context = r.ctx
				cfg.Cache = s.cache
				return cfg
			}}})
		if err := results[0].Err; err != nil {
			return nil, nil, err
		}
		sr := results[0].Value.Res
		out.TotalSec = sr.TotalTime.Seconds()
		out.Events = sr.Events
		out.EventDigest = fmt.Sprintf("%#x", sr.EventDigest)
		report, err := renderReport(sr.Report)
		return out, report, err
	}
}

// finalizeLocked moves a run to its terminal state: classify, close the
// coalescing window, record latency, notify. Caller holds mu.
func (s *Server) finalizeLocked(r *run, res *Result, report []byte, err error) {
	switch {
	case err == nil:
		r.state = StateDone
		s.stats.completed++
	case r.canceled:
		r.state = StateCanceled
		s.stats.canceled++
	default:
		r.state = StateFailed
		s.stats.failed++
	}
	if res == nil {
		res = &Result{ID: r.id, Kind: r.req.kind, Digest: r.req.digest}
	}
	res.State = r.state
	res.Coalesced = r.coalesced
	if err != nil {
		res.Error = err.Error()
	}
	r.result = res
	r.reportJSON = report
	// The coalescing window closes here: a later identical submission is a
	// fresh run (results are served from the job table, not re-coalesced,
	// so completed work is never implicitly reused with stale deadlines).
	delete(s.active, r.req.digest)
	r.cancel()
	s.stats.observeLatency(s.opts.Clock().Sub(r.enqueued).Seconds())
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	s.eventLocked(r, r.state, msg)
	close(r.done)
	s.doneIDs = append(s.doneIDs, r.id)
	for len(s.doneIDs) > s.opts.MaxCompleted {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
}

// Cancel withdraws one subscriber from a run; the run itself is canceled
// when the last subscriber leaves. Terminal runs are left untouched (their
// results stay fetchable). Returns false for unknown jobs.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok {
		return false
	}
	if terminal(r.state) {
		return true
	}
	r.subscribers--
	if r.subscribers > 0 {
		s.eventLocked(r, r.state, "subscriber withdrew")
		return true
	}
	r.canceled = true
	r.cancel()
	if r.index >= 0 {
		// Still queued: finalize immediately instead of waiting for a
		// worker to pop a corpse.
		heap.Remove(&s.queue, r.index)
		s.finalizeLocked(r, nil, nil, context.Canceled)
		return true
	}
	// Running: the engine observes ctx cancellation and terminates; the
	// worker finalizes.
	s.eventLocked(r, r.state, "canceling")
	return true
}

// JobStatus is a run's point-in-time view (GET /v1/jobs/{id}).
type JobStatus struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	State       string `json:"state"`
	Digest      string `json:"digest"`
	Priority    int    `json:"priority"`
	Subscribers int    `json:"subscribers"`
	Coalesced   int    `json:"coalesced"`
	Error       string `json:"error,omitempty"`
}

// Status returns a job's current state, or nil when unknown.
func (s *Server) Status(id string) *JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok {
		return nil
	}
	st := &JobStatus{
		ID:          r.id,
		Kind:        r.req.kind,
		State:       r.state,
		Digest:      r.req.digest,
		Priority:    r.priority,
		Subscribers: r.subscribers,
		Coalesced:   r.coalesced,
	}
	if r.result != nil {
		st.Error = r.result.Error
	}
	return st
}

// Result returns a terminal run's compact outcome; nil until terminal or
// when unknown.
func (s *Server) Result(id string) *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.jobs[id]; ok && terminal(r.state) {
		return r.result
	}
	return nil
}

// Report returns the raw RunReport bytes of a completed run (nil otherwise).
// The bytes are the same for every subscriber of a coalesced run, and — for
// deterministic configurations — byte-identical to a triosim -deterministic
// -metrics-out run of the same spec.
func (s *Server) Report(id string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.jobs[id]; ok && r.state == StateDone {
		return r.reportJSON
	}
	return nil
}

// Wait blocks until the run reaches a terminal state or ctx is done,
// returning the result (nil on ctx expiry or unknown id).
func (s *Server) Wait(ctx context.Context, id string) *Result {
	s.mu.Lock()
	r, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	select {
	case <-r.done:
		return s.Result(id)
	case <-ctx.Done():
		return nil
	}
}

// Stats is the server's aggregate state (GET /v1/stats).
type Stats struct {
	QueueDepth int  `json:"queue_depth"`
	InFlight   int  `json:"in_flight"`
	Draining   bool `json:"draining"`

	Submitted uint64 `json:"submitted"`
	Coalesced uint64 `json:"coalesced"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Rejected  uint64 `json:"rejected"`

	TraceCache tracecache.Stats `json:"trace_cache"`
}

// Stats returns a snapshot of the aggregate counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		QueueDepth: len(s.queue),
		InFlight:   s.inFlight,
		Draining:   s.draining,
		Submitted:  s.stats.submitted,
		Coalesced:  s.stats.coalesced,
		Completed:  s.stats.completed,
		Failed:     s.stats.failed,
		Canceled:   s.stats.canceled,
		Rejected:   s.stats.rejected,
		TraceCache: s.cache.Stats(),
	}
}

// Ready reports whether the server accepts submissions.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// Drain stops admissions and lets queued and in-flight runs finish. When ctx
// expires first, every remaining run is hard-canceled (engines terminate at
// their next cancellation poll) and Drain returns ctx's error after the
// workers exit.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.wakeLocked()
	s.mu.Unlock()

	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
	}
	s.baseCancel()
	select {
	case <-s.stopped:
	}
	return ctx.Err()
}

// Close hard-stops the server: admissions off, every run canceled, workers
// joined. For tests and fatal shutdown paths; prefer Drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.wakeLocked()
	s.mu.Unlock()
	s.baseCancel()
	<-s.stopped
}

// renderReport marshals a RunReport to the bytes every subscriber receives.
// The TraceCache section is stripped first: its counters are store-wide and
// history-dependent, which would break the byte-identity guarantee between
// coalesced subscribers' fetches and the one-shot CLI (which runs cacheless).
func renderReport(rep *telemetry.RunReport) ([]byte, error) {
	if rep == nil {
		return nil, nil
	}
	cp := *rep
	cp.TraceCache = nil
	var buf bytes.Buffer
	if err := cp.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
