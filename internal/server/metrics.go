package server

import (
	"net/http"

	"triosim/internal/telemetry"
)

// handleMetrics renders the Prometheus exposition. Every family registers
// through one telemetry.PromText, so the server's own gauges and the shared
// trace-cache stats cannot collide with each other — or with a monitor
// handler mounted on the same scrape path — without the duplicate being
// dropped whole.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	queueDepth := len(s.queue)
	inFlight := s.inFlight
	draining := s.draining
	st := s.stats
	counts := make([]uint64, len(st.latencyCounts))
	copy(counts, st.latencyCounts)
	s.mu.Unlock()
	cache := s.cache.Stats()

	p := telemetry.NewPromText()
	p.Gauge("triosim_server_queue_depth",
		"Queued (not yet running) simulation requests.", float64(queueDepth))
	p.Gauge("triosim_server_in_flight",
		"Simulations currently executing.", float64(inFlight))
	drainingV := 0.0
	if draining {
		drainingV = 1
	}
	p.Gauge("triosim_server_draining",
		"Whether the server is draining (1) or accepting (0).", drainingV)
	p.Counter("triosim_server_submitted_total",
		"Requests received, including rejected ones.", float64(st.submitted))
	p.Counter("triosim_server_coalesce_hits_total",
		"Submissions that joined an equivalent queued or running run.",
		float64(st.coalesced))
	p.Counter("triosim_server_completed_total",
		"Runs finished successfully.", float64(st.completed))
	p.Counter("triosim_server_failed_total",
		"Runs that ended in an error (deadline expiry included).",
		float64(st.failed))
	p.Counter("triosim_server_canceled_total",
		"Runs canceled by their subscribers.", float64(st.canceled))
	p.Counter("triosim_server_rejected_total",
		"Submissions rejected at admission (invalid, queue full, draining).",
		float64(st.rejected))
	p.Histogram("triosim_server_request_seconds",
		"Submission-to-terminal latency, queue wait included.",
		latencyBounds, counts, st.latencySum, st.latencyCount)

	p.Gauge("triosim_tracecache_traces",
		"Traces resident in the shared cache.", float64(cache.Traces))
	p.Gauge("triosim_tracecache_timers",
		"Fitted operator timers resident in the shared cache.",
		float64(cache.Timers))
	p.Gauge("triosim_tracecache_bytes",
		"Approximate retained bytes of cached traces.", float64(cache.Bytes))
	p.Counter("triosim_tracecache_trace_hits_total",
		"Trace lookups served from the shared cache.", float64(cache.TraceHits))
	p.Counter("triosim_tracecache_trace_misses_total",
		"Trace builds executed.", float64(cache.TraceMisses))
	p.Counter("triosim_tracecache_timer_hits_total",
		"Timer lookups served from the shared cache.", float64(cache.TimerHits))
	p.Counter("triosim_tracecache_timer_misses_total",
		"Timer fits executed.", float64(cache.TimerMisses))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write(p.Bytes())
}
