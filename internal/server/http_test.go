package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testClient(t *testing.T, s *Server) (*httptest.Server, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, ts.Client()
}

func postJSON(t *testing.T, c *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, c *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

const submitBody = `{"run":{"model":"resnet18","platform":"P1",` +
	`"parallelism":"ddp","trace_batch":32,"global_batch":64}}`

func TestHTTPSubmitLifecycle(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ts, c := testClient(t, s)

	resp, data := postJSON(t, c, ts.URL+"/v1/jobs", submitBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var a Ack
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || a.Digest == "" || a.Coalesced {
		t.Fatalf("ack: %+v", a)
	}

	// Poll the result endpoint: 409 while not terminal, then 200.
	var res Result
	deadline := time.Now().Add(time.Minute)
	for {
		resp, data = getJSON(t, c, ts.URL+"/v1/jobs/"+a.ID+"/result")
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &res); err != nil {
				t.Fatal(err)
			}
			break
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("result poll: %d %s", resp.StatusCode, data)
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out polling result")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if res.State != StateDone || res.EventDigest == "" || res.Events == 0 {
		t.Fatalf("result: %+v", res)
	}

	resp, report := getJSON(t, c, ts.URL+"/v1/jobs/"+a.ID+"/report")
	if resp.StatusCode != http.StatusOK ||
		resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("report: %d %q", resp.StatusCode,
			resp.Header.Get("Content-Type"))
	}
	if !bytes.Contains(report, []byte(res.EventDigest)) {
		t.Fatal("report does not embed the event digest")
	}
	if bytes.Contains(report, []byte(`"trace_cache"`)) {
		t.Fatal("served report leaks the store-wide trace_cache section")
	}

	resp, data = getJSON(t, c, ts.URL+"/v1/jobs/"+a.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d %s", resp.StatusCode, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Kind != KindSimulate {
		t.Fatalf("status body: %+v", st)
	}
}

func TestHTTPEventsStreamNDJSON(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ts, c := testClient(t, s)

	_, data := postJSON(t, c, ts.URL+"/v1/jobs", submitBody)
	var a Ack
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Get(ts.URL + "/v1/jobs/" + a.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	// The stream must deliver queued → running → done and then close.
	var states []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		states = append(states, ev.State)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(states) < 3 || states[0] != StateQueued ||
		states[len(states)-1] != StateDone {
		t.Fatalf("event states %v", states)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	s := New(Options{Workers: 1, MaxQueue: 1})
	defer s.Close()
	ts, c := testClient(t, s)

	for name, tc := range map[string]struct {
		method, path, body string
		wantCode           int
	}{
		"bad json":       {"POST", "/v1/jobs", "{", http.StatusBadRequest},
		"unknown field":  {"POST", "/v1/jobs", `{"runn":{}}`, http.StatusBadRequest},
		"invalid spec":   {"POST", "/v1/jobs", `{"run":{"platform":"P1"}}`, http.StatusBadRequest},
		"unknown status": {"GET", "/v1/jobs/nope", "", http.StatusNotFound},
		"unknown result": {"GET", "/v1/jobs/nope/result", "", http.StatusNotFound},
		"unknown report": {"GET", "/v1/jobs/nope/report", "", http.StatusNotFound},
		"unknown events": {"GET", "/v1/jobs/nope/events", "", http.StatusNotFound},
		"unknown cancel": {"DELETE", "/v1/jobs/nope", "", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path,
			strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: %d %s, want %d", name, resp.StatusCode, data,
				tc.wantCode)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: body %q is not an error document", name, data)
		}
	}
}

func TestHTTPRetryAfterOnOverload(t *testing.T) {
	s := newIdle(Options{MaxQueue: 1})
	defer s.Close()
	ts, c := testClient(t, s)

	resp, data := postJSON(t, c, ts.URL+"/v1/jobs", submitBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, data)
	}
	distinct := strings.Replace(submitBody, `"global_batch":64`,
		`"global_batch":96`, 1)
	resp, data = postJSON(t, c, ts.URL+"/v1/jobs", distinct)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	resp, _ = getJSON(t, c, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}
	resp, data = postJSON(t, c, ts.URL+"/v1/jobs", distinct)
	if resp.StatusCode != http.StatusServiceUnavailable ||
		resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining submit: %d %s (Retry-After %q)", resp.StatusCode,
			data, resp.Header.Get("Retry-After"))
	}
}

func TestHTTPHealthStatsMetrics(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ts, c := testClient(t, s)

	resp, _ := getJSON(t, c, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, c, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	_, data := postJSON(t, c, ts.URL+"/v1/jobs", submitBody)
	var a Ack
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	if res := s.Wait(ctx, a.ID); res == nil || res.State != StateDone {
		t.Fatalf("run did not finish: %+v", res)
	}

	resp, data = getJSON(t, c, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("stats body: %+v", st)
	}

	resp, data = getJSON(t, c, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(data)
	for _, family := range []string{
		"triosim_server_queue_depth",
		"triosim_server_submitted_total",
		"triosim_server_completed_total",
		"triosim_server_request_seconds_bucket",
		"triosim_server_request_seconds_sum",
		"triosim_tracecache_trace_misses_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metrics missing %s", family)
		}
	}
	// Exactly one TYPE line per family: the shared-registry guarantee.
	if n := strings.Count(text,
		"# TYPE triosim_server_submitted_total"); n != 1 {
		t.Errorf("submitted_total TYPE lines: %d", n)
	}
}

func TestHTTPCancel(t *testing.T) {
	s := newIdle(Options{})
	defer s.Close()
	ts, c := testClient(t, s)

	_, data := postJSON(t, c, ts.URL+"/v1/jobs", submitBody)
	var a Ack
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+a.ID, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	resp, data = getJSON(t, c, ts.URL+"/v1/jobs/"+a.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result after cancel: %d %s", resp.StatusCode, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.State != StateCanceled {
		t.Fatalf("canceled job result: %+v", res)
	}
	// A canceled run has no report: 409, not 200.
	resp, _ = getJSON(t, c, ts.URL+"/v1/jobs/"+a.ID+"/report")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report of canceled job: %d", resp.StatusCode)
	}
}
