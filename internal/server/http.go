package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// maxBodyBytes bounds a submission body; simulation specs are small.
const maxBodyBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             — submit (202; 400/429/503 with Retry-After)
//	GET    /v1/jobs/{id}        — status
//	GET    /v1/jobs/{id}/events — NDJSON lifecycle stream
//	GET    /v1/jobs/{id}/result — compact outcome (409 until terminal)
//	GET    /v1/jobs/{id}/report — raw RunReport bytes (409 until done)
//	DELETE /v1/jobs/{id}        — cancel / unsubscribe
//	GET    /v1/stats            — aggregate counters (JSON)
//	GET    /healthz             — liveness
//	GET    /readyz              — readiness (503 while draining)
//	GET    /metrics             — Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready"))
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

func writeStatusError(w http.ResponseWriter, err error) {
	if se, ok := err.(*StatusError); ok {
		if se.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
		}
		writeJSON(w, se.Code, errorBody{Error: se.Msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var r Request
	body := http.MaxBytesReader(w, req.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		writeStatusError(w, &StatusError{Code: http.StatusBadRequest,
			Msg: fmt.Sprintf("decode request: %v", err)})
		return
	}
	ack, err := s.Submit(&r)
	if err != nil {
		writeStatusError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ack)
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	st := s.Status(req.PathValue("id"))
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if res := s.Result(id); res != nil {
		writeJSON(w, http.StatusOK, res)
		return
	}
	if st := s.Status(id); st != nil {
		writeJSON(w, http.StatusConflict,
			errorBody{Error: "job is " + st.State + "; result not ready"})
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
}

func (s *Server) handleReport(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if rep := s.Report(id); rep != nil {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(rep)
		return
	}
	st := s.Status(id)
	switch {
	case st == nil:
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
	case st.State == StateDone:
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "run produced no report"})
	case terminal(st.State):
		writeJSON(w, http.StatusConflict,
			errorBody{Error: "job is " + st.State + "; no report"})
	default:
		writeJSON(w, http.StatusConflict,
			errorBody{Error: "job is " + st.State + "; report not ready"})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	if !s.Cancel(req.PathValue("id")) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Canceled bool `json:"canceled"`
	}{true})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleEvents streams a run's lifecycle as NDJSON: every Event already
// recorded, then new ones as they land, closing after the terminal event
// (or when the client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	r, ok := s.jobs[req.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	next := 0
	for {
		s.mu.Lock()
		pending := r.events[next:]
		next = len(r.events)
		ch := r.updated
		isTerminal := terminal(r.state)
		s.mu.Unlock()

		for i := range pending {
			if err := enc.Encode(pending[i]); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if isTerminal {
			// The terminal event is appended in the same critical section
			// that sets the state, so the drain above already sent it.
			return
		}
		select {
		case <-ch:
		case <-req.Context().Done():
			return
		}
	}
}
