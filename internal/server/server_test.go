package server

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"triosim/internal/config"
	"triosim/internal/core"
	"triosim/internal/faults"
	"triosim/internal/serving"
)

// newIdle builds a server whose worker pool is NOT started, so tests can
// assert on queue and coalescing state with no scheduling races, then drive
// execution deterministically with step().
func newIdle(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		cache:      opts.Cache,
		baseCtx:    ctx,
		baseCancel: cancel,
		active:     map[string]*run{},
		jobs:       map[string]*run{},
		wake:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	s.stats.latencyCounts = make([]uint64, len(latencyBounds)+1)
	close(s.stopped) // no workers to join; Close must not block
	return s
}

// step runs one queued job to completion on the calling goroutine (the
// worker loop's body, minus the blocking).
func (s *Server) step() bool {
	r, _, stop := s.next()
	if stop || r == nil {
		return false
	}
	res, report, err := s.execute(r)
	s.mu.Lock()
	s.inFlight--
	s.finalizeLocked(r, res, report, err)
	s.mu.Unlock()
	return true
}

func simRequest(globalBatch int) *Request {
	return &Request{Run: &config.RunSpec{
		Model:       "resnet18",
		Platform:    "P1",
		Parallelism: "ddp",
		TraceBatch:  32,
		GlobalBatch: globalBatch,
	}}
}

func TestCoalesceIdenticalRequests(t *testing.T) {
	s := newIdle(Options{})
	defer s.Close()

	a1, err := s.Submit(simRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Submit(simRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	a3, err := s.Submit(simRequest(128))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Coalesced {
		t.Fatal("first submission cannot coalesce")
	}
	if !a2.Coalesced || a2.ID != a1.ID || a2.Digest != a1.Digest {
		t.Fatalf("identical request did not coalesce: %+v vs %+v", a2, a1)
	}
	if a3.Coalesced || a3.ID == a1.ID {
		t.Fatalf("distinct request coalesced: %+v", a3)
	}
	st := s.Stats()
	if st.QueueDepth != 2 || st.Coalesced != 1 || st.Submitted != 3 {
		t.Fatalf("stats after coalesce: %+v", st)
	}

	for s.step() {
	}
	res := s.Result(a1.ID)
	if res == nil || res.State != StateDone {
		t.Fatalf("coalesced run did not complete: %+v", res)
	}
	if res.Coalesced != 1 {
		t.Fatalf("result reports %d coalesced joins, want 1", res.Coalesced)
	}
	// Both subscribers fetch through the same job id; the report must exist
	// and be stable across fetches.
	r1, r2 := s.Report(a1.ID), s.Report(a2.ID)
	if r1 == nil || !bytes.Equal(r1, r2) {
		t.Fatal("subscribers saw different report bytes")
	}
}

// A submission identical to a COMPLETED run must start a fresh run: the
// coalescing window is queued+running only.
func TestCoalesceWindowClosesAtCompletion(t *testing.T) {
	s := newIdle(Options{})
	defer s.Close()

	a1, err := s.Submit(simRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	for s.step() {
	}
	a2, err := s.Submit(simRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	if a2.Coalesced || a2.ID == a1.ID {
		t.Fatalf("submission coalesced with a completed run: %+v", a2)
	}
	for s.step() {
	}
	b1, b2 := s.Report(a1.ID), s.Report(a2.ID)
	if b1 == nil || b2 == nil {
		t.Fatal("missing reports")
	}
	// Same configuration ⇒ byte-identical reports even across separate runs
	// (determinism), including the embedded event digest.
	if !bytes.Equal(b1, b2) {
		t.Fatal("two runs of the same config produced different report bytes")
	}
}

func TestAdmissionQueueFullAndDraining(t *testing.T) {
	s := newIdle(Options{MaxQueue: 2})
	defer s.Close()

	if _, err := s.Submit(simRequest(32)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(simRequest(64)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(simRequest(128))
	se, ok := err.(*StatusError)
	if !ok || se.Code != 429 || se.RetryAfter <= 0 {
		t.Fatalf("full queue: got %v, want 429 with Retry-After", err)
	}
	// Joining a queued run bypasses admission: it adds no work.
	ack, err := s.Submit(simRequest(64))
	if err != nil || !ack.Coalesced {
		t.Fatalf("coalescing join rejected at full queue: %v %+v", err, ack)
	}

	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	_, err = s.Submit(simRequest(256))
	se, ok = err.(*StatusError)
	if !ok || se.Code != 503 || se.RetryAfter <= 0 {
		t.Fatalf("draining: got %v, want 503 with Retry-After", err)
	}
}

func TestInvalidRequests(t *testing.T) {
	s := newIdle(Options{})
	defer s.Close()
	for name, req := range map[string]*Request{
		"empty":         {},
		"both":          {Run: simRequest(0).Run, Serve: &ServeSpec{}},
		"no model":      {Run: &config.RunSpec{Platform: "P1", Parallelism: "ddp"}},
		"trace file":    {Run: &config.RunSpec{Model: "resnet18", Platform: "P1", Parallelism: "ddp", TraceFile: "/etc/passwd"}},
		"bad platform":  {Run: &config.RunSpec{Model: "resnet18", Platform: "P9", Parallelism: "ddp"}},
		"bad kind":      {Kind: "emulate", Run: simRequest(0).Run},
		"serve nomodel": {Serve: &ServeSpec{Platform: "P1"}},
		"bad faults": {Run: simRequest(0).Run,
			Faults: &faults.Spec{Events: []faults.EventSpec{{Kind: "nonsense"}}}},
	} {
		_, err := s.Submit(req)
		se, ok := err.(*StatusError)
		if !ok || se.Code != 400 {
			t.Errorf("%s: got %v, want 400", name, err)
		}
	}
	if st := s.Stats(); st.Rejected == 0 {
		t.Fatal("rejections not counted")
	}
}

func TestDeadlineWhileQueued(t *testing.T) {
	s := newIdle(Options{})
	defer s.Close()
	ack, err := s.Submit(&Request{Run: simRequest(64).Run, DeadlineMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Let the 1ms budget lapse entirely inside the queue.
	time.Sleep(10 * time.Millisecond)
	for s.step() {
	}
	res := s.Result(ack.ID)
	if res == nil || res.State != StateFailed {
		t.Fatalf("expired-in-queue run: %+v, want failed", res)
	}
	if !strings.Contains(res.Error, "deadline") {
		t.Fatalf("error %q does not name the deadline", res.Error)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("stats: %+v, want one failure", st)
	}
}

func TestCancelSubscriberSemantics(t *testing.T) {
	s := newIdle(Options{})
	defer s.Close()
	a1, _ := s.Submit(simRequest(64))
	a2, _ := s.Submit(simRequest(64))
	if !a2.Coalesced {
		t.Fatal("setup: expected coalesce")
	}
	// First cancel only withdraws one subscriber; the run survives.
	if !s.Cancel(a1.ID) {
		t.Fatal("cancel of live job returned false")
	}
	if st := s.Status(a1.ID); st == nil || st.State != StateQueued ||
		st.Subscribers != 1 {
		t.Fatalf("after first cancel: %+v", st)
	}
	// Last subscriber out cancels the run; queued runs finalize immediately.
	if !s.Cancel(a2.ID) {
		t.Fatal("second cancel returned false")
	}
	st := s.Status(a1.ID)
	if st == nil || st.State != StateCanceled {
		t.Fatalf("after last cancel: %+v", st)
	}
	if s.Cancel("nope") {
		t.Fatal("cancel of unknown job returned true")
	}
	if stats := s.Stats(); stats.Canceled != 1 || stats.QueueDepth != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestPriorityOrderAndCoalesceBump(t *testing.T) {
	s := newIdle(Options{})
	defer s.Close()
	low, _ := s.Submit(&Request{Run: simRequest(32).Run, Priority: 0})
	high, _ := s.Submit(&Request{Run: simRequest(64).Run, Priority: 5})
	mid, _ := s.Submit(&Request{Run: simRequest(128).Run, Priority: 3})
	// A coalescing join with higher priority promotes the queued run.
	bump, _ := s.Submit(&Request{Run: simRequest(128).Run, Priority: 9})
	if !bump.Coalesced || bump.ID != mid.ID {
		t.Fatalf("bump join: %+v", bump)
	}

	var order []string
	for {
		r, _, _ := s.next()
		if r == nil {
			break
		}
		s.mu.Lock()
		s.inFlight--
		s.finalizeLocked(r, nil, nil, nil)
		s.mu.Unlock()
		order = append(order, r.id)
	}
	want := []string{mid.ID, high.ID, low.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

// The pinned regression: the daemon-served report must be byte-identical —
// EventDigest included — to the report core.Simulate produces directly for
// the same spec.
func TestReportByteIdenticalToDirectRun(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()

	req := simRequest(64)
	ack, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res := s.Wait(ctx, ack.ID)
	if res == nil || res.State != StateDone {
		t.Fatalf("daemon run: %+v", res)
	}
	served := s.Report(ack.ID)
	if served == nil {
		t.Fatal("no served report")
	}

	cfg, err := req.Run.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = true
	direct, err := core.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := renderReport(direct.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served report differs from direct core.Simulate report:\n"+
			"served %d bytes, direct %d bytes", len(served), len(want))
	}
	wantDigest := direct.Report.Engine.EventDigest
	if wantDigest == "" || res.EventDigest != wantDigest {
		t.Fatalf("event digest: served %q, direct %q",
			res.EventDigest, wantDigest)
	}
	if !bytes.Contains(served, []byte(wantDigest)) {
		t.Fatal("served report does not embed the event digest")
	}
}

func TestServeKind(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ack, err := s.Submit(&Request{Serve: &ServeSpec{
		Platform: "P1",
		Serving: serving.Config{
			Model: "gpt2",
			Arrivals: serving.ArrivalConfig{
				Requests: 8, Rate: 200, Seed: 7,
			},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res := s.Wait(ctx, ack.ID)
	if res == nil || res.State != StateDone {
		t.Fatalf("serve run: %+v", res)
	}
	rep := s.Report(ack.ID)
	if rep == nil || !bytes.Contains(rep, []byte(`"serving"`)) {
		t.Fatal("serve report missing its serving section")
	}
	if res.EventDigest == "" {
		t.Fatal("serve result missing the event digest")
	}
}

func TestDrainFinishesQueuedWork(t *testing.T) {
	s := New(Options{Workers: 2})
	var acks []*Ack
	for i := 1; i <= 4; i++ {
		ack, err := s.Submit(simRequest(32 * i))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s.Ready() {
		t.Fatal("server still ready after drain")
	}
	for _, ack := range acks {
		res := s.Result(ack.ID)
		if res == nil || res.State != StateDone {
			t.Fatalf("queued run %s not drained to completion: %+v",
				ack.ID, res)
		}
	}
	if _, err := s.Submit(simRequest(999)); err == nil {
		t.Fatal("drained server accepted a submission")
	}
}

func TestDrainDeadlineHardCancels(t *testing.T) {
	s := New(Options{Workers: 1})
	// Enough queued work that an immediate drain deadline cannot finish it.
	for i := 1; i <= 8; i++ {
		if _, err := s.Submit(simRequest(32 * i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: drain must hard-cancel and still return
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with expired ctx returned nil")
	}
	// Every run must still reach a terminal state.
	st := s.Stats()
	if got := st.Completed + st.Failed + st.Canceled; got != 8 {
		t.Fatalf("after hard drain: %d terminal of 8 (%+v)", got, st)
	}
}

// Concurrent load against a live pool: exercised under -race in check.sh.
func TestConcurrentSubmitters(t *testing.T) {
	s := New(Options{Workers: 4, MaxQueue: 64})
	defer s.Close()
	const (
		submitters = 16
		perWorker  = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, submitters*perWorker)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ack, err := s.Submit(simRequest(32 + 32*(i%2)))
				if err != nil {
					errs <- err
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Minute)
				res := s.Wait(ctx, ack.ID)
				cancel()
				if res == nil || res.State != StateDone {
					errs <- &StatusError{Code: 500,
						Msg: "run did not complete"}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Coalesced == 0 {
		t.Log("no coalesce hits this run (timing-dependent); counters:", st)
	}
	if st.TraceCache.TraceMisses == 0 ||
		st.TraceCache.TraceHits == 0 {
		t.Fatalf("shared cache unused across runs: %+v", st.TraceCache)
	}
}
