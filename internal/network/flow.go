package network

import (
	"fmt"
	"math"
	"sort"
	"time"

	"triosim/internal/sim"
)

// Network is the interface TrioSim requires of any interconnect model: a
// Send that starts a transfer and later invokes onDone (the Deliver step) at
// the virtual time the destination receives the data.
type Network interface {
	Send(src, dst NodeID, bytes float64, onDone func(now sim.VTime))
}

// FlowObserver is notified of flow-network activity. Observers may record
// but must never schedule events — the event schedule (and the replay
// digest) is identical with or without them.
type FlowObserver interface {
	// FlowFinished fires when a flow's last byte leaves the network, before
	// the delivery latency. start is when Send admitted the flow.
	FlowFinished(route []DirLink, bytes float64, start, end sim.VTime)
	// RatesRecomputed fires after each max-min fair-share recomputation.
	RatesRecomputed(flows int, now sim.VTime)
}

// MultiFlowObserver fans every notification out to each member in order,
// letting several observers (telemetry collector, span recorder) share the
// network's single Observer slot.
type MultiFlowObserver []FlowObserver

var _ FlowObserver = MultiFlowObserver(nil)

// FlowFinished implements FlowObserver.
func (m MultiFlowObserver) FlowFinished(route []DirLink, bytes float64,
	start, end sim.VTime) {
	for _, o := range m {
		o.FlowFinished(route, bytes, start, end)
	}
}

// RatesRecomputed implements FlowObserver.
func (m MultiFlowObserver) RatesRecomputed(flows int, now sim.VTime) {
	for _, o := range m {
		o.RatesRecomputed(flows, now)
	}
}

// flow is one in-flight message in the flow network. Completed flows are
// recycled through FlowNetwork.freeFlows (releaseFlow/acquireFlow); after
// releaseFlow, only the monotonic gen field distinguishes a stale delivery
// event's reference from the object's next life.
//
//triosim:pooled
type flow struct {
	id        int
	route     []DirLink
	remaining float64
	bytes     float64 // original transfer size
	rate      float64 // bytes/s currently achieved
	eff       float64 // achieved fraction of the allocated share
	latency   sim.VTime
	start     sim.VTime
	onDone    func(now sim.VTime)
	// gen invalidates superseded delivery events. It is NEVER reset when the
	// flow object is recycled through the free list: stale delivery events
	// from a previous life still hold this object, and only the monotonic
	// generation distinguishes them from the current life's events.
	gen int
	// mark is the computeRates solve generation that froze this flow's rate
	// (scratch state replacing a per-solve "unassigned" set).
	mark int
}

// linkState is the per-directed-link allocator state. flows is maintained
// incrementally across Send/complete instead of being rebuilt on every
// max-min solve; cap and active are scratch fields valid only inside one
// computeRates call.
type linkState struct {
	cap    float64 // scratch: remaining capacity during a solve
	active int     // scratch: unassigned crossing flows during a solve
	flows  []*flow // in-flight flows crossing this link, ascending id
}

// FlowNetwork is the flow-based packet-switching model: shortest-path
// routing, max-min fair bandwidth sharing per directed link, and
// reschedule-on-change delivery events.
type FlowNetwork struct {
	eng  sim.Engine
	topo *Topology

	// RampBytes models the message-size-dependent achieved bandwidth of
	// real transport stacks: a transfer of B bytes achieves the fraction
	// B/(B+RampBytes) of its allocated share (protocol setup, chunking and
	// pipelining warm-up). Zero — TrioSim's lightweight assumption — gives
	// every transfer its full share regardless of size; the reference
	// hardware emulator sets it, making small messages one of the
	// controlled error sources (paper §8.2, "varying data transfer unit
	// sizes").
	RampBytes float64

	flows map[int]*flow
	// ordered holds the in-flight flows in ascending id order. Anything that
	// schedules events or produces output per flow must iterate this slice,
	// not the flows map: same-timestamp events tie-break on scheduling
	// sequence, so map iteration order would leak into the simulated
	// schedule (triosimvet: map-range-order). ids are assigned
	// monotonically, so appends keep it sorted without re-sorting.
	ordered    []*flow
	nextID     int
	lastUpdate sim.VTime
	// recomputePending coalesces same-timestamp flow arrivals/departures
	// into one max-min reallocation (a secondary event), so an 84-rank ring
	// step triggers one recompute instead of 84. Virtual-time semantics are
	// unchanged: no time passes between the individual changes.
	recomputePending bool

	// Incremental allocator state: the per-link crossing-flow sets and the
	// sorted key slice persist across solves. links grows to the set of
	// directed links ever crossed (bounded by 2× the topology's link count);
	// linkKeys is rebuilt only when a new directed link first appears.
	links     map[DirLink]*linkState
	linkKeys  []DirLink
	keysDirty bool
	solveGen  int

	// freeFlows recycles completed flow objects (see flow.gen for why the
	// generation survives recycling).
	freeFlows []*flow

	// Stats.
	TotalBytes     float64
	TotalTransfers int

	// Observer optionally receives flow-completion and rate-recompute
	// notifications (telemetry). Set before the first Send.
	Observer FlowObserver

	// SolveClock, when set, times each max-min solve on the host clock for
	// self-profiling (ROADMAP: profile the solver at scale). It is an
	// injected clock — never time.Now directly — so the wall-clock read
	// stays out of the deterministic simulation core and the no-wallclock
	// analyzer holds. The measured wall time feeds SolveWall and never
	// influences virtual time.
	SolveClock func() time.Time
	// SolveWall accumulates host time spent inside computeRates.
	SolveWall time.Duration
	// Solves counts max-min recomputations.
	Solves int
}

// NewFlowNetwork builds a flow network over topo driven by eng.
func NewFlowNetwork(eng sim.Engine, topo *Topology) *FlowNetwork {
	return &FlowNetwork{
		eng:   eng,
		topo:  topo,
		flows: map[int]*flow{},
		links: map[DirLink]*linkState{},
	}
}

var _ Network = (*FlowNetwork)(nil)

// Topology returns the underlying topology.
func (n *FlowNetwork) Topology() *Topology { return n.topo }

// InFlight returns the number of active flows.
func (n *FlowNetwork) InFlight() int { return len(n.flows) }

// Send starts a transfer of bytes from src to dst. onDone fires at delivery.
// Local transfers (src == dst) complete immediately.
func (n *FlowNetwork) Send(src, dst NodeID, bytes float64,
	onDone func(now sim.VTime)) {

	now := n.eng.CurrentTime()
	n.TotalTransfers++
	n.TotalBytes += bytes
	if src == dst || bytes <= 0 {
		sim.ScheduleFunc(n.eng, now, func(t sim.VTime) error {
			onDone(t)
			return nil
		})
		return
	}

	route, err := n.topo.Route(src, dst)
	if err != nil {
		panic(fmt.Sprintf("network: Send: %v", err))
	}
	n.nextID++
	eff := 1.0
	if n.RampBytes > 0 {
		eff = bytes / (bytes + n.RampBytes)
	}
	f := n.acquireFlow()
	f.id = n.nextID
	f.route = route
	f.remaining = bytes
	f.bytes = bytes
	f.rate = 0
	f.eff = eff
	f.latency = n.topo.RouteLatency(route)
	f.start = now
	f.onDone = onDone
	n.advance(now)
	n.flows[f.id] = f
	n.ordered = append(n.ordered, f)
	n.attachLinks(f)
	n.scheduleReallocate(now)
}

// acquireFlow pops the free list or allocates. gen is deliberately left at
// its previous-life value (see the flow.gen doc).
func (n *FlowNetwork) acquireFlow() *flow {
	if k := len(n.freeFlows); k > 0 {
		f := n.freeFlows[k-1]
		n.freeFlows[k-1] = nil
		n.freeFlows = n.freeFlows[:k-1]
		return f
	}
	return &flow{}
}

// releaseFlow drops the flow's external references and returns it to the
// free list.
func (n *FlowNetwork) releaseFlow(f *flow) {
	f.onDone = nil
	f.route = nil
	n.freeFlows = append(n.freeFlows, f)
}

// attachLinks registers f on every directed link of its route. Flows are
// admitted in ascending id order and removal preserves relative order, so
// each linkState.flows slice stays sorted by id — the invariant the solve's
// freeze loop relies on for deterministic (and bit-identical) allocation.
func (n *FlowNetwork) attachLinks(f *flow) {
	for _, dl := range f.route {
		st := n.links[dl]
		if st == nil {
			st = &linkState{}
			n.links[dl] = st
			n.keysDirty = true
		}
		st.flows = append(st.flows, f)
	}
}

// detachLinks removes f from its route's link sets and from the ordered
// slice, preserving order.
func (n *FlowNetwork) detachLinks(f *flow) {
	for _, dl := range f.route {
		st := n.links[dl]
		st.flows = removeFlow(st.flows, f)
	}
	n.ordered = removeFlow(n.ordered, f)
}

// removeFlow deletes f from s, keeping the remaining order.
func removeFlow(s []*flow, f *flow) []*flow {
	for i, g := range s {
		if g == f {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			return s[:len(s)-1]
		}
	}
	return s
}

// scheduleReallocate defers the max-min recomputation to a secondary event
// at the current timestamp, coalescing bursts of changes.
func (n *FlowNetwork) scheduleReallocate(now sim.VTime) {
	if n.recomputePending {
		return
	}
	n.recomputePending = true
	sim.ScheduleSecondaryFunc(n.eng, now, func(t sim.VTime) error {
		n.recomputePending = false
		n.advance(t)
		n.reallocate(t)
		if n.Observer != nil {
			n.Observer.RatesRecomputed(len(n.flows), t)
		}
		return nil
	})
}

// RefreshRates re-solves the max-min fair shares at the current virtual
// time, picking up topology bandwidth changes made mid-run (fault
// injection, degradation experiments). The recompute is coalesced through
// the same secondary event as flow arrivals/departures, so several
// same-timestamp capacity changes trigger one solve.
func (n *FlowNetwork) RefreshRates() {
	n.scheduleReallocate(n.eng.CurrentTime())
}

// advance applies the elapsed time since the last reallocation to every
// in-flight flow's remaining byte count.
func (n *FlowNetwork) advance(now sim.VTime) {
	dt := float64(now - n.lastUpdate)
	if dt > 0 {
		for _, f := range n.ordered {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	n.lastUpdate = now
}

// reallocate recomputes max-min fair rates and reschedules every flow's
// delivery event.
func (n *FlowNetwork) reallocate(now sim.VTime) {
	n.Solves++
	if n.SolveClock != nil {
		t0 := n.SolveClock()
		n.computeRates()
		n.SolveWall += n.SolveClock().Sub(t0)
	} else {
		n.computeRates()
	}
	// Size-dependent achieved fraction: the unachieved share of a flow's
	// allocation is protocol dead time, not reusable by other flows.
	for _, f := range n.ordered {
		f.rate *= f.eff
	}
	for _, f := range n.ordered {
		f.gen++
		if f.rate <= 0 {
			continue // starved flow: rescheduled when capacity frees up
		}
		doneAt := now + sim.VTime(f.remaining/f.rate)
		fl, gen := f, f.gen
		sim.ScheduleFunc(n.eng, doneAt, func(t sim.VTime) error {
			n.completeFlow(fl, gen, t)
			return nil
		})
	}
}

// completeFlow finalizes a flow when its delivery event fires, unless the
// event was superseded by a reallocation.
func (n *FlowNetwork) completeFlow(f *flow, gen int, now sim.VTime) {
	cur, ok := n.flows[f.id]
	if !ok || cur != f || f.gen != gen {
		return // stale event
	}
	n.advance(now)
	delete(n.flows, f.id)
	n.detachLinks(f)
	if n.Observer != nil {
		n.Observer.FlowFinished(f.route, f.bytes, f.start, now)
	}
	n.scheduleReallocate(now)
	// The receiver observes the data one route-latency later. onDone is
	// captured locally: the flow object goes back to the pool now, while
	// the delivery event fires later.
	onDone := f.onDone
	sim.ScheduleFunc(n.eng, now+f.latency, func(t sim.VTime) error {
		onDone(t)
		return nil
	})
	n.releaseFlow(f)
}

// computeRates assigns max-min fair rates: repeatedly find the most
// constrained directed link (lowest capacity per crossing flow), freeze its
// flows at that fair share, remove them, and continue (progressive filling).
//
// The solve reuses the incrementally maintained link→flows sets and sorted
// key slice instead of rebuilding them per call, and tracks per-link
// unassigned counts instead of re-scanning flow lists per filling round. The
// arithmetic — capacity reset, fair-share division, freeze order, capacity
// charging order — is exactly the from-scratch solve's, so the resulting
// rates are bit-identical (TestMaxMinMatchesReferenceSolve pins this).
//
//triosim:hotpath
func (n *FlowNetwork) computeRates() {
	if n.keysDirty {
		n.linkKeys = n.linkKeys[:0]
		for k := range n.links {
			n.linkKeys = append(n.linkKeys, k) //triosim:nolint hotpath-alloc -- runs only when a new directed link first appears (keysDirty), bounded by 2x the link count
		}
		//triosim:nolint hotpath-alloc -- same keysDirty-gated rebuild: sorting the fresh key slice is not steady-state work
		sort.Slice(n.linkKeys, func(i, j int) bool {
			if n.linkKeys[i].Link != n.linkKeys[j].Link {
				return n.linkKeys[i].Link < n.linkKeys[j].Link
			}
			return n.linkKeys[i].Forward && !n.linkKeys[j].Forward
		})
		n.keysDirty = false
	}
	n.solveGen++
	gen := n.solveGen
	for _, k := range n.linkKeys {
		st := n.links[k]
		// Capacity is re-read from the topology each solve so mid-run
		// bandwidth changes (degradation experiments) keep taking effect.
		st.cap = n.topo.Links[k.Link].Bandwidth
		st.active = len(st.flows)
	}
	for _, f := range n.ordered {
		f.rate = 0
	}

	assigned := 0
	total := len(n.ordered)
	for assigned < total {
		// Find the bottleneck: min cap/activeCount over links with
		// unassigned flows, scanning keys in sorted order so ties resolve
		// deterministically.
		var bn *linkState
		best := math.Inf(1)
		for _, k := range n.linkKeys {
			st := n.links[k]
			if st.active == 0 {
				continue
			}
			fair := st.cap / float64(st.active)
			if fair < best {
				best = fair
				bn = st
			}
		}
		if bn == nil {
			break
		}
		// Freeze the bottleneck's unassigned flows at the fair share and
		// charge their rate against every link they cross.
		for _, f := range bn.flows {
			if f.mark == gen {
				continue
			}
			f.rate = best
			f.mark = gen
			assigned++
			for _, dl := range f.route {
				st := n.links[dl]
				st.cap -= best
				if st.cap < 0 {
					st.cap = 0
				}
				st.active--
			}
		}
	}
}

// Rates returns the current flow rates keyed by flow ID (test hook).
func (n *FlowNetwork) Rates() map[int]float64 {
	out := map[int]float64{}
	for id, f := range n.flows {
		out[id] = f.rate
	}
	return out
}

// IdealNetwork gives every transfer the full configured bandwidth with a
// fixed latency, with no sharing. It serves as the uncontended reference in
// tests and the equal-split ablation baseline.
type IdealNetwork struct {
	eng       sim.Engine
	Bandwidth float64
	Latency   sim.VTime
}

// NewIdealNetwork returns an IdealNetwork.
func NewIdealNetwork(eng sim.Engine, bandwidth float64,
	latency sim.VTime) *IdealNetwork {
	return &IdealNetwork{eng: eng, Bandwidth: bandwidth, Latency: latency}
}

var _ Network = (*IdealNetwork)(nil)

// Send delivers after latency + bytes/bandwidth.
func (n *IdealNetwork) Send(src, dst NodeID, bytes float64,
	onDone func(now sim.VTime)) {
	now := n.eng.CurrentTime()
	var dur sim.VTime
	if src != dst && bytes > 0 {
		dur = n.Latency + sim.VTime(bytes/n.Bandwidth)
	}
	sim.ScheduleFunc(n.eng, now+dur, func(t sim.VTime) error {
		onDone(t)
		return nil
	})
}
