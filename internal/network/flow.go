package network

import (
	"fmt"
	"math"
	"sort"
	"time"

	"triosim/internal/sim"
)

// Network is the interface TrioSim requires of any interconnect model: a
// Send that starts a transfer and later invokes onDone (the Deliver step) at
// the virtual time the destination receives the data.
type Network interface {
	Send(src, dst NodeID, bytes float64, onDone func(now sim.VTime))
}

// FlowObserver is notified of flow-network activity. Observers may record
// but must never schedule events — the event schedule (and the replay
// digest) is identical with or without them.
type FlowObserver interface {
	// FlowFinished fires when a flow's last byte leaves the network, before
	// the delivery latency. start is when Send admitted the flow.
	FlowFinished(route []DirLink, bytes float64, start, end sim.VTime)
	// RatesRecomputed fires after each max-min fair-share recomputation.
	RatesRecomputed(flows int, now sim.VTime)
}

// MultiFlowObserver fans every notification out to each member in order,
// letting several observers (telemetry collector, span recorder) share the
// network's single Observer slot.
type MultiFlowObserver []FlowObserver

var _ FlowObserver = MultiFlowObserver(nil)

// FlowFinished implements FlowObserver.
func (m MultiFlowObserver) FlowFinished(route []DirLink, bytes float64,
	start, end sim.VTime) {
	for _, o := range m {
		o.FlowFinished(route, bytes, start, end)
	}
}

// RatesRecomputed implements FlowObserver.
func (m MultiFlowObserver) RatesRecomputed(flows int, now sim.VTime) {
	for _, o := range m {
		o.RatesRecomputed(flows, now)
	}
}

// flow is one in-flight message in the flow network. Completed flows are
// recycled through FlowNetwork.freeFlows (releaseFlow/acquireFlow); after
// releaseFlow, only the monotonic gen field distinguishes a stale delivery
// event's reference from the object's next life.
//
//triosim:pooled
type flow struct {
	id        int
	route     []DirLink
	remaining float64
	bytes     float64 // original transfer size
	rate      float64 // bytes/s currently achieved
	eff       float64 // achieved fraction of the allocated share
	latency   sim.VTime
	start     sim.VTime
	onDone    func(now sim.VTime)
	// gen invalidates superseded delivery events. It is NEVER reset when the
	// flow object is recycled through the free list: stale delivery events
	// from a previous life still hold this object, and only the monotonic
	// generation distinguishes them from the current life's events.
	gen int
	// mark is the computeRates solve generation that froze this flow's rate
	// (scratch state replacing a per-solve "unassigned" set).
	mark int
	// seen is the solve generation that collected this flow into the dirty
	// closure (dedup stamp; monotonic like mark, survives recycling).
	seen int
	// schedRate is the achieved rate the live delivery event was scheduled
	// with (0 = starved / no event). Only the approximate mode reads it.
	schedRate float64
	// lastAdv is the virtual time remaining was last materialized at. The
	// exact solver advances every flow eagerly (bit-identical float sums);
	// the approximate mode integrates lazily per flow from lastAdv.
	lastAdv sim.VTime
}

// linkState is the per-directed-link allocator state. flows is maintained
// incrementally across Send/complete instead of being rebuilt on every
// max-min solve; cap, active, heapKey and seenGen are scratch fields valid
// only inside one computeRates call.
//
// Each linkState is also an element of two persistent structures: a
// union-find over directed links (two links share a partition when some
// flow's route has crossed both — the transitive link-sharing components
// max-min provably decomposes over) and, while it carries flows, an
// intrusive per-partition active-link list that lets a solve enumerate
// exactly the links of the dirty components.
type linkState struct {
	cap    float64 // scratch: remaining capacity during a solve
	active int     // scratch: unassigned crossing flows during a solve
	flows  []*flow // in-flight flows crossing this link, ascending id

	key DirLink
	// idx is the dense union-find element index (creation order).
	idx int
	// sortKey reproduces the historical sorted-scan tie-break order
	// (ascending link ID, forward before reverse) for the solve heap.
	sortKey uint64
	// heapKey is the fair share of this link's most recent live heap entry;
	// entries popped with a mismatching key are superseded and discarded.
	heapKey float64
	// seenGen stamps the solve generation that initialized the scratch
	// fields, so a solve touches each closure link's state exactly once.
	seenGen int
	// prevActive/nextActive chain the intrusive active-link list of this
	// link's partition root (only valid while len(flows) > 0).
	prevActive, nextActive *linkState
}

// FlowNetwork is the flow-based packet-switching model: shortest-path
// routing, max-min fair bandwidth sharing per directed link, and
// reschedule-on-change delivery events.
type FlowNetwork struct {
	eng  sim.Engine
	topo *Topology

	// RampBytes models the message-size-dependent achieved bandwidth of
	// real transport stacks: a transfer of B bytes achieves the fraction
	// B/(B+RampBytes) of its allocated share (protocol setup, chunking and
	// pipelining warm-up). Zero — TrioSim's lightweight assumption — gives
	// every transfer its full share regardless of size; the reference
	// hardware emulator sets it, making small messages one of the
	// controlled error sources (paper §8.2, "varying data transfer unit
	// sizes").
	RampBytes float64

	flows map[int]*flow
	// ordered holds the in-flight flows in ascending id order. Anything that
	// schedules events or produces output per flow must iterate this slice,
	// not the flows map: same-timestamp events tie-break on scheduling
	// sequence, so map iteration order would leak into the simulated
	// schedule (triosimvet: map-range-order). ids are assigned
	// monotonically, so appends keep it sorted without re-sorting.
	ordered    []*flow
	nextID     int
	lastUpdate sim.VTime
	// recomputePending coalesces same-timestamp flow arrivals/departures
	// into one max-min reallocation (a secondary event), so an 84-rank ring
	// step triggers one recompute instead of 84. Virtual-time semantics are
	// unchanged: no time passes between the individual changes.
	recomputePending bool

	// ApproxTol, when positive, enables the approximate-equilibrium mode
	// for large networks: a flow whose newly solved rate differs from the
	// rate its live delivery event was scheduled with by at most ApproxTol
	// (relative) keeps that event and keeps draining at the old rate,
	// cutting the O(flows) reschedule churn that dominates at cluster
	// scale. Rates are still solved exactly; only event rescheduling and
	// the per-flow byte integration (lazy, per-flow) are approximated, so
	// makespan error is bounded by the tolerance (property-tested at ≤1%).
	// Zero — the default — is the exact mode: every solve reschedules every
	// flow and replay digests are byte-identical to the historical solver.
	// Set before the first Send and never change it mid-run.
	ApproxTol float64

	// Incremental allocator state: the per-link crossing-flow sets persist
	// across solves. links indexes them densely by 2·linkID+direction (the
	// sortKey encoding) — a slice, not a map keyed by DirLink, because the
	// solver pays one lookup per route hop per filling round and the hash
	// alone dominated 10k-GPU solves. nil entries are directed links no route
	// has crossed yet; states holds the same linkStates in creation order for
	// the union-find arrays below.
	links    []*linkState
	states   []*linkState
	solveGen int

	// Partition (dirty-set) state. ufParent/ufSize are a weighted
	// union-find over states: attachLinks unions every link of a route, so
	// a partition root identifies one transitive link-sharing component.
	// Components only ever merge (a detach never splits them — stale
	// merges are conservative, never wrong). heads/tails hold each root's
	// intrusive list of links that currently carry flows; dirtyFlag/
	// dirtyList record which elements' components changed membership since
	// the last solve, and rootGen dedups canonicalized roots per solve.
	ufParent  []int
	ufSize    []int
	heads     []*linkState
	tails     []*linkState
	dirtyFlag []bool
	dirtyList []int
	rootGen   []int
	// allDirty forces a full re-solve: set when the topology's capacity
	// generation moved (SetLinkBandwidth without an explicit refresh mark),
	// preserving the historical "capacities are re-read every solve"
	// semantics.
	allDirty   bool
	lastCapGen int

	// Per-solve scratch, reused across solves: the dirty closure's flows
	// (sorted ascending id after collection) and links, and the bottleneck
	// min-heap keyed by (fair share, sortKey).
	scratchFlows []*flow
	solveLinks   []*linkState
	heap         []solveEntry

	// freeFlows recycles completed flow objects (see flow.gen for why the
	// generation survives recycling).
	freeFlows []*flow

	// Stats.
	TotalBytes     float64
	TotalTransfers int

	// Observer optionally receives flow-completion and rate-recompute
	// notifications (telemetry). Set before the first Send.
	Observer FlowObserver

	// SolveClock, when set, times each max-min solve on the host clock for
	// self-profiling (ROADMAP: profile the solver at scale). It is an
	// injected clock — never time.Now directly — so the wall-clock read
	// stays out of the deterministic simulation core and the no-wallclock
	// analyzer holds. The measured wall time feeds SolveWall and never
	// influences virtual time.
	SolveClock func() time.Time
	// SolveWall accumulates host time spent inside computeRates.
	SolveWall time.Duration
	// Solves counts max-min recomputations.
	Solves int
	// SolvedFlows/SolvedLinks count the flows and directed links actually
	// re-solved across all solves — the dirty-set win shows up as these
	// staying far below Solves × InFlight on partitioned topologies.
	SolvedFlows int
	SolvedLinks int
}

// solveEntry is one bottleneck-heap entry: a candidate most-constrained
// link at the fair share it had when pushed. Entries are superseded (not
// removed) when a charge changes the link's fair share; heapKey arbitrates.
type solveEntry struct {
	fair    float64
	sortKey uint64
	st      *linkState
}

// NewFlowNetwork builds a flow network over topo driven by eng.
func NewFlowNetwork(eng sim.Engine, topo *Topology) *FlowNetwork {
	return &FlowNetwork{
		eng:   eng,
		topo:  topo,
		flows: map[int]*flow{},
		links: make([]*linkState, 2*len(topo.Links)),
	}
}

var _ Network = (*FlowNetwork)(nil)

// Topology returns the underlying topology.
func (n *FlowNetwork) Topology() *Topology { return n.topo }

// InFlight returns the number of active flows.
func (n *FlowNetwork) InFlight() int { return len(n.flows) }

// Send starts a transfer of bytes from src to dst. onDone fires at delivery.
// Local transfers (src == dst) complete immediately.
func (n *FlowNetwork) Send(src, dst NodeID, bytes float64,
	onDone func(now sim.VTime)) {

	now := n.eng.CurrentTime()
	n.TotalTransfers++
	n.TotalBytes += bytes
	if src == dst || bytes <= 0 {
		sim.ScheduleFunc(n.eng, now, func(t sim.VTime) error {
			onDone(t)
			return nil
		})
		return
	}

	route, err := n.topo.Route(src, dst)
	if err != nil {
		panic(fmt.Sprintf("network: Send: %v", err))
	}
	n.nextID++
	eff := 1.0
	if n.RampBytes > 0 {
		eff = bytes / (bytes + n.RampBytes)
	}
	f := n.acquireFlow()
	f.id = n.nextID
	f.route = route
	f.remaining = bytes
	f.bytes = bytes
	f.rate = 0
	f.eff = eff
	f.latency = n.topo.RouteLatency(route)
	f.start = now
	f.onDone = onDone
	f.schedRate = 0
	f.lastAdv = now
	n.advance(now)
	n.flows[f.id] = f
	n.ordered = append(n.ordered, f)
	n.attachLinks(f)
	n.scheduleReallocate(now)
}

// acquireFlow pops the free list or allocates. gen is deliberately left at
// its previous-life value (see the flow.gen doc).
func (n *FlowNetwork) acquireFlow() *flow {
	if k := len(n.freeFlows); k > 0 {
		f := n.freeFlows[k-1]
		n.freeFlows[k-1] = nil
		n.freeFlows = n.freeFlows[:k-1]
		return f
	}
	return &flow{}
}

// releaseFlow drops the flow's external references and returns it to the
// free list.
func (n *FlowNetwork) releaseFlow(f *flow) {
	f.onDone = nil
	f.route = nil
	n.freeFlows = append(n.freeFlows, f)
}

// attachLinks registers f on every directed link of its route. Flows are
// admitted in ascending id order and removal preserves relative order, so
// each linkState.flows slice stays sorted by id — the invariant the solve's
// freeze loop relies on for deterministic (and bit-identical) allocation.
// The route's links are unioned into one partition and that partition is
// marked dirty for the next solve.
func (n *FlowNetwork) attachLinks(f *flow) {
	first := -1
	for _, dl := range f.route {
		st := n.linkFor(dl)
		if st == nil {
			st = n.newLinkState(dl)
		}
		if len(st.flows) == 0 {
			n.activateLink(st)
		}
		st.flows = append(st.flows, f)
		if first < 0 {
			first = st.idx
		} else {
			n.union(first, st.idx)
		}
	}
	n.markDirty(first)
}

// detachLinks removes f from its route's link sets and from the ordered
// slice, preserving order, and marks the flow's partition dirty.
func (n *FlowNetwork) detachLinks(f *flow) {
	first := -1
	for _, dl := range f.route {
		st := n.linkFor(dl)
		if first < 0 {
			first = st.idx
		}
		st.flows = removeFlow(st.flows, f)
		if len(st.flows) == 0 {
			n.deactivateLink(st)
		}
	}
	n.markDirty(first)
	n.ordered = removeFlow(n.ordered, f)
}

// denseIndex maps a directed link to its slot in FlowNetwork.links: the
// sortKey encoding (ascending link ID, forward before reverse) as an int.
func denseIndex(dl DirLink) int {
	i := dl.Link << 1
	if !dl.Forward {
		i |= 1
	}
	return i
}

// linkFor returns the allocator state of dl, or nil if no route has crossed
// it yet.
func (n *FlowNetwork) linkFor(dl DirLink) *linkState {
	if i := denseIndex(dl); i < len(n.links) {
		return n.links[i]
	}
	return nil
}

// newLinkState creates the allocator state for a directed link the first
// time a route crosses it, registering it with the union-find arrays.
func (n *FlowNetwork) newLinkState(dl DirLink) *linkState {
	st := &linkState{key: dl, idx: len(n.states)}
	st.sortKey = uint64(dl.Link) << 1
	if !dl.Forward {
		st.sortKey |= 1
	}
	// Links added to the topology after construction (AddLink mid-setup)
	// land past the initial sizing; grow to cover them.
	di := denseIndex(dl)
	for di >= len(n.links) {
		n.links = append(n.links, nil)
	}
	n.links[di] = st
	n.states = append(n.states, st)
	n.ufParent = append(n.ufParent, st.idx)
	n.ufSize = append(n.ufSize, 1)
	n.heads = append(n.heads, nil)
	n.tails = append(n.tails, nil)
	n.dirtyFlag = append(n.dirtyFlag, false)
	n.rootGen = append(n.rootGen, 0)
	return st
}

// find returns the partition root of link element x (path-halving).
func (n *FlowNetwork) find(x int) int {
	for n.ufParent[x] != x {
		n.ufParent[x] = n.ufParent[n.ufParent[x]]
		x = n.ufParent[x]
	}
	return x
}

// union merges the partitions of link elements a and b (union by size),
// concatenating the loser's active-link list onto the winner's.
func (n *FlowNetwork) union(a, b int) {
	ra, rb := n.find(a), n.find(b)
	if ra == rb {
		return
	}
	if n.ufSize[ra] < n.ufSize[rb] {
		ra, rb = rb, ra
	}
	n.ufParent[rb] = ra
	n.ufSize[ra] += n.ufSize[rb]
	if n.heads[rb] != nil {
		if n.tails[ra] != nil {
			n.tails[ra].nextActive = n.heads[rb]
			n.heads[rb].prevActive = n.tails[ra]
		} else {
			n.heads[ra] = n.heads[rb]
		}
		n.tails[ra] = n.tails[rb]
		n.heads[rb], n.tails[rb] = nil, nil
	}
}

// activateLink inserts st into its partition root's active-link list (the
// link is about to carry its first flow).
func (n *FlowNetwork) activateLink(st *linkState) {
	r := n.find(st.idx)
	st.prevActive = n.tails[r]
	st.nextActive = nil
	if n.tails[r] != nil {
		n.tails[r].nextActive = st
	} else {
		n.heads[r] = st
	}
	n.tails[r] = st
}

// deactivateLink unlinks st from its partition root's active-link list (its
// last flow just detached).
func (n *FlowNetwork) deactivateLink(st *linkState) {
	r := n.find(st.idx)
	if st.prevActive != nil {
		st.prevActive.nextActive = st.nextActive
	} else {
		n.heads[r] = st.nextActive
	}
	if st.nextActive != nil {
		st.nextActive.prevActive = st.prevActive
	} else {
		n.tails[r] = st.prevActive
	}
	st.prevActive, st.nextActive = nil, nil
}

// markDirty queues link element idx's partition for re-solving. Roots are
// canonicalized (and deduped) at solve time, so marking a non-root element
// that later merges into a bigger component still dirties the right root.
func (n *FlowNetwork) markDirty(idx int) {
	if idx < 0 || n.dirtyFlag[idx] {
		return
	}
	n.dirtyFlag[idx] = true
	n.dirtyList = append(n.dirtyList, idx)
}

// removeFlow deletes f from s, keeping the remaining order.
func removeFlow(s []*flow, f *flow) []*flow {
	for i, g := range s {
		if g == f {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			return s[:len(s)-1]
		}
	}
	return s
}

// scheduleReallocate defers the max-min recomputation to a secondary event
// at the current timestamp, coalescing bursts of changes.
func (n *FlowNetwork) scheduleReallocate(now sim.VTime) {
	if n.recomputePending {
		return
	}
	n.recomputePending = true
	sim.ScheduleSecondaryFunc(n.eng, now, func(t sim.VTime) error {
		n.recomputePending = false
		n.advance(t)
		n.reallocate(t)
		if n.Observer != nil {
			n.Observer.RatesRecomputed(len(n.flows), t)
		}
		return nil
	})
}

// RefreshRates re-solves the max-min fair shares at the current virtual
// time, picking up topology bandwidth changes made mid-run (fault
// injection, degradation experiments). The recompute is coalesced through
// the same secondary event as flow arrivals/departures, so several
// same-timestamp capacity changes trigger one solve.
func (n *FlowNetwork) RefreshRates() {
	n.scheduleReallocate(n.eng.CurrentTime())
}

// advance applies the elapsed time since the last reallocation to every
// in-flight flow's remaining byte count. The approximate mode skips the
// global sweep and instead integrates each flow lazily from flow.lastAdv
// when its rate actually changes (the sums differ in rounding, which is why
// the exact path keeps the eager sweep bit-identical to the historical one).
func (n *FlowNetwork) advance(now sim.VTime) {
	if n.ApproxTol > 0 {
		n.lastUpdate = now
		return
	}
	dt := float64(now - n.lastUpdate)
	if dt > 0 {
		for _, f := range n.ordered {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	n.lastUpdate = now
}

// reallocate recomputes max-min fair rates and reschedules delivery events:
// every flow's on the exact path (byte-identical replay), only the flows
// whose rate moved beyond ApproxTol on the approximate path.
func (n *FlowNetwork) reallocate(now sim.VTime) {
	n.Solves++
	if n.SolveClock != nil {
		t0 := n.SolveClock()
		n.computeRates()
		n.SolveWall += n.SolveClock().Sub(t0)
	} else {
		n.computeRates()
	}
	// Size-dependent achieved fraction: the unachieved share of a flow's
	// allocation is protocol dead time, not reusable by other flows. Only
	// the re-solved closure got fresh raw rates; everything else already
	// carries its achieved rate from an earlier solve.
	for _, f := range n.scratchFlows {
		f.rate *= f.eff
	}
	if n.ApproxTol > 0 {
		n.rescheduleApprox(now)
		return
	}
	for _, f := range n.ordered {
		f.gen++
		if f.rate <= 0 {
			continue // starved flow: rescheduled when capacity frees up
		}
		doneAt := now + sim.VTime(f.remaining/f.rate)
		fl, gen := f, f.gen
		sim.ScheduleFunc(n.eng, doneAt, func(t sim.VTime) error {
			n.completeFlow(fl, gen, t)
			return nil
		})
	}
}

// rescheduleApprox is the approximate mode's selective rescheduling: only
// the re-solved closure is examined, and a flow keeps its live delivery
// event (and its current drain rate) when the new rate is within ApproxTol
// of the rate that event was scheduled with. Starvation transitions always
// reschedule. Flows outside the closure are untouched by construction.
func (n *FlowNetwork) rescheduleApprox(now sim.VTime) {
	// Deterministic reschedule order regardless of closure-collection
	// order: ascending flow id, like the exact path's ordered slice.
	sort.Slice(n.scratchFlows, func(i, j int) bool {
		return n.scratchFlows[i].id < n.scratchFlows[j].id
	})
	tol := n.ApproxTol
	for _, f := range n.scratchFlows {
		old, next := f.schedRate, f.rate
		if old > 0 && next > 0 && math.Abs(next-old) <= tol*old {
			f.rate = old // keep the event; keep draining at its rate
			continue
		}
		// Materialize the lazily integrated remaining bytes at the old
		// rate, then reschedule at the new one.
		if dt := float64(now - f.lastAdv); dt > 0 && old > 0 {
			f.remaining -= old * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastAdv = now
		f.gen++
		f.schedRate = next
		if next <= 0 {
			continue
		}
		doneAt := now + sim.VTime(f.remaining/next)
		fl, gen := f, f.gen
		sim.ScheduleFunc(n.eng, doneAt, func(t sim.VTime) error {
			n.completeFlow(fl, gen, t)
			return nil
		})
	}
}

// completeFlow finalizes a flow when its delivery event fires, unless the
// event was superseded by a reallocation.
func (n *FlowNetwork) completeFlow(f *flow, gen int, now sim.VTime) {
	cur, ok := n.flows[f.id]
	if !ok || cur != f || f.gen != gen {
		return // stale event
	}
	n.advance(now)
	delete(n.flows, f.id)
	n.detachLinks(f)
	if n.Observer != nil {
		n.Observer.FlowFinished(f.route, f.bytes, f.start, now)
	}
	n.scheduleReallocate(now)
	// The receiver observes the data one route-latency later. onDone is
	// captured locally: the flow object goes back to the pool now, while
	// the delivery event fires later.
	onDone := f.onDone
	sim.ScheduleFunc(n.eng, now+f.latency, func(t sim.VTime) error {
		onDone(t)
		return nil
	})
	n.releaseFlow(f)
}

// computeRates assigns max-min fair rates: repeatedly find the most
// constrained directed link (lowest capacity per crossing flow), freeze its
// flows at that fair share, remove them, and continue (progressive filling).
//
// Two structural fast paths make this scale to 10k-GPU fabrics while
// producing bit-identical rates (TestMaxMinMatchesReferenceSolve and
// TestPartitionedSolveMatchesReference pin this):
//
//  1. Dirty partitions. Max-min decomposes exactly over the connected
//     components of the link-sharing graph (flows in disjoint components
//     never exchange capacity, and the global freeze order restricted to a
//     component equals the component's own freeze order). Only components
//     whose membership changed since the last solve — or all of them, when
//     a capacity changed — are re-solved; every other flow keeps the rate
//     an earlier solve froze, which is exactly what the global solve would
//     recompute for it.
//
//  2. Bottleneck heap. Within a component, the most constrained link is
//     popped from a min-heap keyed by (fair share, historical scan order)
//     instead of an O(links) scan per filling round. Heap entries are
//     superseded eagerly whenever a charge moves a link's fair share
//     (heapKey arbitrates), so the pop order — including float-equal
//     ties — replays the sorted scan's selection order exactly.
//
// The arithmetic — capacity reset, fair-share division, freeze order,
// capacity charging order — is exactly the from-scratch solve's, so the
// resulting rates are bit-identical.
//
//triosim:hotpath
func (n *FlowNetwork) computeRates() {
	n.solveGen++
	gen := n.solveGen
	if cg := n.topo.CapacityGen(); cg != n.lastCapGen {
		n.lastCapGen = cg
		n.allDirty = true
	}
	n.scratchFlows = n.scratchFlows[:0]
	n.solveLinks = n.solveLinks[:0]
	if n.allDirty {
		n.allDirty = false
		n.gatherAll(gen)
	} else {
		n.gatherDirty(gen)
	}
	n.SolvedFlows += len(n.scratchFlows)
	n.SolvedLinks += len(n.solveLinks)

	n.heap = n.heap[:0]
	for _, st := range n.solveLinks {
		if st.active == 0 {
			continue
		}
		fair := st.cap / float64(st.active)
		st.heapKey = fair
		n.heapPush(solveEntry{fair: fair, sortKey: st.sortKey, st: st})
	}
	for _, f := range n.scratchFlows {
		f.rate = 0
	}

	assigned := 0
	total := len(n.scratchFlows)
	for assigned < total && len(n.heap) > 0 {
		e := n.heapPop()
		bn := e.st
		if bn.active == 0 || e.fair != bn.heapKey {
			continue // superseded entry (link frozen or fair share moved)
		}
		best := e.fair
		// Freeze the bottleneck's unassigned flows at the fair share and
		// charge their rate against every link they cross, refreshing the
		// heap entry of every link whose fair share moves.
		for _, f := range bn.flows {
			if f.mark == gen {
				continue
			}
			f.rate = best
			f.mark = gen
			assigned++
			for _, dl := range f.route {
				st := n.links[denseIndex(dl)]
				st.cap -= best
				if st.cap < 0 {
					st.cap = 0
				}
				st.active--
				if st.active > 0 {
					fair := st.cap / float64(st.active)
					if fair != st.heapKey {
						st.heapKey = fair
						n.heapPush(solveEntry{
							fair: fair, sortKey: st.sortKey, st: st,
						})
					}
				}
			}
		}
	}
}

// gatherAll collects every in-flight flow and every link they cross into
// the solve scratch (the full re-solve the historical allocator always did).
func (n *FlowNetwork) gatherAll(gen int) {
	// Consume any pending dirty marks; this solve covers them.
	for _, idx := range n.dirtyList {
		n.dirtyFlag[idx] = false
	}
	n.dirtyList = n.dirtyList[:0]
	for _, f := range n.ordered {
		f.seen = gen
		n.scratchFlows = append(n.scratchFlows, f) //triosim:nolint hotpath-alloc -- reused scratch buffer, grows to steady-state size once
		for _, dl := range f.route {
			st := n.links[denseIndex(dl)]
			if st.seenGen == gen {
				continue
			}
			st.seenGen = gen
			st.cap = n.topo.Links[dl.Link].Bandwidth
			st.active = len(st.flows)
			n.solveLinks = append(n.solveLinks, st) //triosim:nolint hotpath-alloc -- reused scratch buffer, grows to steady-state size once
		}
	}
}

// gatherDirty collects the flows and links of every dirty partition into
// the solve scratch, leaving untouched components alone.
func (n *FlowNetwork) gatherDirty(gen int) {
	for _, idx := range n.dirtyList {
		n.dirtyFlag[idx] = false
		root := n.find(idx)
		if n.rootGen[root] == gen {
			continue // several dirty marks canonicalized to one component
		}
		n.rootGen[root] = gen
		for st := n.heads[root]; st != nil; st = st.nextActive {
			st.seenGen = gen
			// Capacity is re-read from the topology each solve so mid-run
			// bandwidth changes keep taking effect.
			st.cap = n.topo.Links[st.key.Link].Bandwidth
			st.active = len(st.flows)
			n.solveLinks = append(n.solveLinks, st) //triosim:nolint hotpath-alloc -- reused scratch buffer, grows to steady-state size once
			for _, f := range st.flows {
				if f.seen == gen {
					continue
				}
				f.seen = gen
				n.scratchFlows = append(n.scratchFlows, f) //triosim:nolint hotpath-alloc -- reused scratch buffer, grows to steady-state size once
			}
		}
	}
	n.dirtyList = n.dirtyList[:0]
}

// heapPush adds e to the bottleneck min-heap ordered by (fair, sortKey).
// The heap is 4-ary, like the engine's event queue: supersession pushes far
// outnumber pops in big solves, and a 4-ary sift-up is half the depth of a
// binary one. (fair, sortKey) is a strict total order over live entries, so
// the pop sequence is identical at any arity.
func (n *FlowNetwork) heapPush(e solveEntry) {
	n.heap = append(n.heap, e)
	i := len(n.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !solveEntryLess(n.heap[i], n.heap[p]) {
			break
		}
		n.heap[i], n.heap[p] = n.heap[p], n.heap[i]
		i = p
	}
}

// heapPop removes and returns the minimum entry.
func (n *FlowNetwork) heapPop() solveEntry {
	h := n.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = solveEntry{}
	n.heap = h[:last]
	h = n.heap
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		small := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if solveEntryLess(h[c], h[small]) {
				small = c
			}
		}
		if !solveEntryLess(h[small], h[i]) {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// solveEntryLess orders heap entries by fair share, then by the historical
// sorted-scan position so float-equal ties freeze in the same order the
// O(links) scan froze them.
func solveEntryLess(a, b solveEntry) bool {
	if a.fair != b.fair {
		return a.fair < b.fair
	}
	return a.sortKey < b.sortKey
}

// Rates returns the current flow rates keyed by flow ID in a fresh map
// (convenience/test hook; steady-state callers use RatesInto).
func (n *FlowNetwork) Rates() map[int]float64 {
	out := map[int]float64{}
	n.RatesInto(out)
	return out
}

// RatesInto fills dst — cleared first — with the current flow rates keyed
// by flow ID, reusing the caller's map so periodic monitors don't allocate
// a fresh one per sample.
//
//triosim:hotpath
func (n *FlowNetwork) RatesInto(dst map[int]float64) {
	for id := range dst {
		delete(dst, id)
	}
	for id, f := range n.flows {
		dst[id] = f.rate
	}
}

// IdealNetwork gives every transfer the full configured bandwidth with a
// fixed latency, with no sharing. It serves as the uncontended reference in
// tests and the equal-split ablation baseline.
type IdealNetwork struct {
	eng       sim.Engine
	Bandwidth float64
	Latency   sim.VTime
}

// NewIdealNetwork returns an IdealNetwork.
func NewIdealNetwork(eng sim.Engine, bandwidth float64,
	latency sim.VTime) *IdealNetwork {
	return &IdealNetwork{eng: eng, Bandwidth: bandwidth, Latency: latency}
}

var _ Network = (*IdealNetwork)(nil)

// Send delivers after latency + bytes/bandwidth.
func (n *IdealNetwork) Send(src, dst NodeID, bytes float64,
	onDone func(now sim.VTime)) {
	now := n.eng.CurrentTime()
	var dur sim.VTime
	if src != dst && bytes > 0 {
		dur = n.Latency + sim.VTime(bytes/n.Bandwidth)
	}
	sim.ScheduleFunc(n.eng, now+dur, func(t sim.VTime) error {
		onDone(t)
		return nil
	})
}
