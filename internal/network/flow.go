package network

import (
	"fmt"
	"math"
	"sort"

	"triosim/internal/sim"
)

// Network is the interface TrioSim requires of any interconnect model: a
// Send that starts a transfer and later invokes onDone (the Deliver step) at
// the virtual time the destination receives the data.
type Network interface {
	Send(src, dst NodeID, bytes float64, onDone func(now sim.VTime))
}

// FlowObserver is notified of flow-network activity. Observers may record
// but must never schedule events — the event schedule (and the replay
// digest) is identical with or without them.
type FlowObserver interface {
	// FlowFinished fires when a flow's last byte leaves the network, before
	// the delivery latency. start is when Send admitted the flow.
	FlowFinished(route []DirLink, bytes float64, start, end sim.VTime)
	// RatesRecomputed fires after each max-min fair-share recomputation.
	RatesRecomputed(flows int, now sim.VTime)
}

// flow is one in-flight message in the flow network.
type flow struct {
	id        int
	route     []DirLink
	remaining float64
	bytes     float64 // original transfer size
	rate      float64 // bytes/s currently achieved
	eff       float64 // achieved fraction of the allocated share
	latency   sim.VTime
	start     sim.VTime
	onDone    func(now sim.VTime)
	gen       int // invalidates superseded delivery events
}

// FlowNetwork is the flow-based packet-switching model: shortest-path
// routing, max-min fair bandwidth sharing per directed link, and
// reschedule-on-change delivery events.
type FlowNetwork struct {
	eng  sim.Engine
	topo *Topology

	// RampBytes models the message-size-dependent achieved bandwidth of
	// real transport stacks: a transfer of B bytes achieves the fraction
	// B/(B+RampBytes) of its allocated share (protocol setup, chunking and
	// pipelining warm-up). Zero — TrioSim's lightweight assumption — gives
	// every transfer its full share regardless of size; the reference
	// hardware emulator sets it, making small messages one of the
	// controlled error sources (paper §8.2, "varying data transfer unit
	// sizes").
	RampBytes float64

	flows      map[int]*flow
	nextID     int
	lastUpdate sim.VTime
	// recomputePending coalesces same-timestamp flow arrivals/departures
	// into one max-min reallocation (a secondary event), so an 84-rank ring
	// step triggers one recompute instead of 84. Virtual-time semantics are
	// unchanged: no time passes between the individual changes.
	recomputePending bool

	// Stats.
	TotalBytes     float64
	TotalTransfers int

	// Observer optionally receives flow-completion and rate-recompute
	// notifications (telemetry). Set before the first Send.
	Observer FlowObserver
}

// NewFlowNetwork builds a flow network over topo driven by eng.
func NewFlowNetwork(eng sim.Engine, topo *Topology) *FlowNetwork {
	return &FlowNetwork{eng: eng, topo: topo, flows: map[int]*flow{}}
}

var _ Network = (*FlowNetwork)(nil)

// Topology returns the underlying topology.
func (n *FlowNetwork) Topology() *Topology { return n.topo }

// InFlight returns the number of active flows.
func (n *FlowNetwork) InFlight() int { return len(n.flows) }

// Send starts a transfer of bytes from src to dst. onDone fires at delivery.
// Local transfers (src == dst) complete immediately.
func (n *FlowNetwork) Send(src, dst NodeID, bytes float64,
	onDone func(now sim.VTime)) {

	now := n.eng.CurrentTime()
	n.TotalTransfers++
	n.TotalBytes += bytes
	if src == dst || bytes <= 0 {
		n.eng.Schedule(sim.NewFuncEvent(now, func(t sim.VTime) error {
			onDone(t)
			return nil
		}))
		return
	}

	route, err := n.topo.Route(src, dst)
	if err != nil {
		panic(fmt.Sprintf("network: Send: %v", err))
	}
	n.nextID++
	eff := 1.0
	if n.RampBytes > 0 {
		eff = bytes / (bytes + n.RampBytes)
	}
	f := &flow{
		id:        n.nextID,
		route:     route,
		remaining: bytes,
		bytes:     bytes,
		eff:       eff,
		latency:   n.topo.RouteLatency(route),
		start:     now,
		onDone:    onDone,
	}
	n.advance(now)
	n.flows[f.id] = f
	n.scheduleReallocate(now)
}

// scheduleReallocate defers the max-min recomputation to a secondary event
// at the current timestamp, coalescing bursts of changes.
func (n *FlowNetwork) scheduleReallocate(now sim.VTime) {
	if n.recomputePending {
		return
	}
	n.recomputePending = true
	n.eng.Schedule(sim.NewSecondaryFuncEvent(now, func(t sim.VTime) error {
		n.recomputePending = false
		n.advance(t)
		n.reallocate(t)
		if n.Observer != nil {
			n.Observer.RatesRecomputed(len(n.flows), t)
		}
		return nil
	}))
}

// advance applies the elapsed time since the last reallocation to every
// in-flight flow's remaining byte count.
func (n *FlowNetwork) advance(now sim.VTime) {
	dt := float64(now - n.lastUpdate)
	if dt > 0 {
		for _, f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	n.lastUpdate = now
}

// sortedFlows returns the in-flight flows in ascending id order. Anything
// that schedules events or produces output per flow must iterate this slice,
// not the flows map: same-timestamp events tie-break on scheduling sequence,
// so map iteration order would leak into the simulated schedule
// (triosimvet: map-range-order).
func (n *FlowNetwork) sortedFlows() []*flow {
	out := make([]*flow, 0, len(n.flows))
	for _, f := range n.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// reallocate recomputes max-min fair rates and reschedules every flow's
// delivery event.
func (n *FlowNetwork) reallocate(now sim.VTime) {
	n.computeRates()
	// Size-dependent achieved fraction: the unachieved share of a flow's
	// allocation is protocol dead time, not reusable by other flows.
	for _, f := range n.flows {
		f.rate *= f.eff
	}
	for _, f := range n.sortedFlows() {
		f.gen++
		var doneAt sim.VTime
		if f.rate <= 0 {
			continue // starved flow: rescheduled when capacity frees up
		}
		doneAt = now + sim.VTime(f.remaining/f.rate)
		fl, gen := f, f.gen
		n.eng.Schedule(sim.NewFuncEvent(doneAt, func(t sim.VTime) error {
			n.completeFlow(fl, gen, t)
			return nil
		}))
	}
}

// completeFlow finalizes a flow when its delivery event fires, unless the
// event was superseded by a reallocation.
func (n *FlowNetwork) completeFlow(f *flow, gen int, now sim.VTime) {
	cur, ok := n.flows[f.id]
	if !ok || cur != f || f.gen != gen {
		return // stale event
	}
	n.advance(now)
	delete(n.flows, f.id)
	if n.Observer != nil {
		n.Observer.FlowFinished(f.route, f.bytes, f.start, now)
	}
	n.scheduleReallocate(now)
	// The receiver observes the data one route-latency later.
	n.eng.Schedule(sim.NewFuncEvent(now+f.latency, func(t sim.VTime) error {
		f.onDone(t)
		return nil
	}))
}

// computeRates assigns max-min fair rates: repeatedly find the most
// constrained directed link (lowest capacity per crossing flow), freeze its
// flows at that fair share, remove them, and continue (progressive filling).
func (n *FlowNetwork) computeRates() {
	type linkState struct {
		cap   float64
		flows []*flow
	}
	links := map[DirLink]*linkState{}
	for _, f := range n.sortedFlows() {
		f.rate = 0
		for _, dl := range f.route {
			st := links[dl]
			if st == nil {
				st = &linkState{cap: n.topo.Links[dl.Link].Bandwidth}
				links[dl] = st
			}
			st.flows = append(st.flows, f)
		}
	}
	unassigned := map[int]bool{}
	for id := range n.flows {
		unassigned[id] = true
	}

	// Deterministic iteration: sort link keys.
	keys := make([]DirLink, 0, len(links))
	for k := range links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Link != keys[j].Link {
			return keys[i].Link < keys[j].Link
		}
		return keys[i].Forward && !keys[j].Forward
	})

	for len(unassigned) > 0 {
		// Find the bottleneck: min cap/activeCount over links with
		// unassigned flows.
		bottleneck := DirLink{Link: -1}
		best := math.Inf(1)
		for _, k := range keys {
			st := links[k]
			cnt := 0
			for _, f := range st.flows {
				if unassigned[f.id] {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			fair := st.cap / float64(cnt)
			if fair < best {
				best = fair
				bottleneck = k
			}
		}
		if bottleneck.Link == -1 {
			break
		}
		// Freeze the bottleneck's unassigned flows at the fair share and
		// charge their rate against every link they cross.
		for _, f := range links[bottleneck].flows {
			if !unassigned[f.id] {
				continue
			}
			f.rate = best
			delete(unassigned, f.id)
			for _, dl := range f.route {
				links[dl].cap -= best
				if links[dl].cap < 0 {
					links[dl].cap = 0
				}
			}
		}
	}
}

// Rates returns the current flow rates keyed by flow ID (test hook).
func (n *FlowNetwork) Rates() map[int]float64 {
	out := map[int]float64{}
	for id, f := range n.flows {
		out[id] = f.rate
	}
	return out
}

// IdealNetwork gives every transfer the full configured bandwidth with a
// fixed latency, with no sharing. It serves as the uncontended reference in
// tests and the equal-split ablation baseline.
type IdealNetwork struct {
	eng       sim.Engine
	Bandwidth float64
	Latency   sim.VTime
}

// NewIdealNetwork returns an IdealNetwork.
func NewIdealNetwork(eng sim.Engine, bandwidth float64,
	latency sim.VTime) *IdealNetwork {
	return &IdealNetwork{eng: eng, Bandwidth: bandwidth, Latency: latency}
}

var _ Network = (*IdealNetwork)(nil)

// Send delivers after latency + bytes/bandwidth.
func (n *IdealNetwork) Send(src, dst NodeID, bytes float64,
	onDone func(now sim.VTime)) {
	now := n.eng.CurrentTime()
	var dur sim.VTime
	if src != dst && bytes > 0 {
		dur = n.Latency + sim.VTime(bytes/n.Bandwidth)
	}
	n.eng.Schedule(sim.NewFuncEvent(now+dur, func(t sim.VTime) error {
		onDone(t)
		return nil
	}))
}
