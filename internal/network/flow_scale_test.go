package network

import (
	"math"
	"math/rand"
	"testing"

	"triosim/internal/sim"
)

// The partitioned dirty-set solve must stay bit-identical to the
// from-scratch reference on a tiered topology, where flows split into many
// independent link-sharing components (intra-machine NVLink islands vs.
// inter-machine rail traffic) and mid-run bandwidth changes force the
// all-dirty fallback.
func TestPartitionedSolveMatchesReferenceOnTieredTopo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		eng := sim.NewSerialEngine()
		topo := RailFatTree(clusterCfg(4, 2), 2, 2)
		gpus := topo.GPUs()
		net := NewFlowNetwork(eng, topo)

		n := 8 + rng.Intn(24)
		for i := 0; i < n; i++ {
			at := sim.VTime(rng.Float64()) * sim.Sec
			bytes := float64(1+rng.Intn(50)) * 1e9
			src := gpus[rng.Intn(len(gpus))]
			var dst NodeID
			if rng.Intn(2) == 0 {
				// Bias half the traffic intra-machine so NVLink islands
				// form partitions disjoint from the rail fabric.
				m := int(src) / 2 * 2
				dst = gpus[m+(int(src)+1)%2]
			} else {
				dst = gpus[rng.Intn(len(gpus))]
			}
			if dst == src {
				continue
			}
			eng.Schedule(sim.NewFuncEvent(at, func(sim.VTime) error {
				net.Send(src, dst, bytes, func(sim.VTime) {})
				return nil
			}))
		}
		// A mid-run capacity change invalidates every cached closure via
		// the capacity generation and must fall back to a full solve.
		if trial%3 == 0 {
			lk := rng.Intn(len(topo.Links))
			at := sim.VTime(rng.Float64()) * sim.Sec
			eng.Schedule(sim.NewFuncEvent(at, func(sim.VTime) error {
				topo.SetLinkBandwidth(lk, topo.Links[lk].Bandwidth/2)
				net.RefreshRates()
				return nil
			}))
		}
		stopAt := sim.VTime(rng.Float64()) * sim.Sec
		eng.Schedule(sim.NewFuncEvent(stopAt, func(sim.VTime) error {
			eng.Terminate()
			return nil
		}))
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}

		want := referenceRates(net)
		net.computeRates()
		if len(want) != len(net.flows) {
			t.Fatalf("trial %d: reference solved %d flows, have %d",
				trial, len(want), len(net.flows))
		}
		for _, f := range net.ordered {
			if f.rate != want[f.id] {
				t.Fatalf("trial %d: flow %d rate %g != reference %g",
					trial, f.id, f.rate, want[f.id])
			}
		}
	}
}

// A flow arriving inside one machine's NVLink island must not re-solve
// flows confined to another machine: the dirty-set gathers only the
// touched partition.
func TestDirtySetPartitionIsolation(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo := RailFatTree(clusterCfg(2, 2), 2, 1)
	gpus := topo.GPUs() // machine 0: gpus[0..1], machine 1: gpus[2..3]
	net := NewFlowNetwork(eng, topo)

	// Long-running intra-machine flows on both machines.
	net.Send(gpus[0], gpus[1], 500e9, func(sim.VTime) {})
	net.Send(gpus[2], gpus[3], 500e9, func(sim.VTime) {})

	var before, after int
	eng.Schedule(sim.NewFuncEvent(100*sim.MSec, func(sim.VTime) error {
		before = net.SolvedFlows
		net.Send(gpus[0], gpus[1], 1e9, func(sim.VTime) {})
		return nil
	}))
	eng.Schedule(sim.NewFuncEvent(101*sim.MSec, func(sim.VTime) error {
		after = net.SolvedFlows
		eng.Terminate()
		return nil
	}))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The arrival's solve touches machine 0's partition only: the two
	// machine-0 flows, never machine 1's.
	if got := after - before; got != 2 {
		t.Fatalf("arrival re-solved %d flows, want 2 (machine-0 partition)",
			got)
	}
}

func TestApproxModeOffByDefault(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, _ := lineTopo()
	if net := NewFlowNetwork(eng, topo); net.ApproxTol != 0 {
		t.Fatalf("ApproxTol defaults to %g, want 0 (exact)", net.ApproxTol)
	}
}

// runTieredWorkload replays a deterministic random workload on a rail
// fat-tree and returns (makespan, deliveries).
func runTieredWorkload(t *testing.T, seed int64,
	tol float64) (sim.VTime, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng := sim.NewSerialEngine()
	topo := RailFatTree(clusterCfg(8, 2), 4, 2)
	gpus := topo.GPUs()
	net := NewFlowNetwork(eng, topo)
	net.ApproxTol = tol

	var makespan sim.VTime
	delivered := 0
	n := 60
	for i := 0; i < n; i++ {
		at := sim.VTime(rng.Float64()) * sim.Sec
		bytes := float64(1+rng.Intn(80)) * 1e9
		src := gpus[rng.Intn(len(gpus))]
		dst := gpus[rng.Intn(len(gpus))]
		if dst == src {
			delivered++ // keep counts comparable across modes
			continue
		}
		eng.Schedule(sim.NewFuncEvent(at, func(sim.VTime) error {
			net.Send(src, dst, bytes, func(now sim.VTime) {
				delivered++
				if now > makespan {
					makespan = now
				}
			})
			return nil
		}))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return makespan, delivered
}

// Approximate-equilibrium mode (the large-network fast path) must deliver
// every flow and keep the makespan within the advertised tolerance of the
// exact solve: ApproxTol=0.01 → ≤1% relative deviation.
func TestApproxBoundedMakespanError(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		exact, nExact := runTieredWorkload(t, seed, 0)
		appr, nAppr := runTieredWorkload(t, seed, 0.01)
		if nExact != nAppr {
			t.Fatalf("seed %d: exact delivered %d, approx %d",
				seed, nExact, nAppr)
		}
		rel := math.Abs(float64(appr-exact)) / float64(exact)
		if rel > 0.01 {
			t.Fatalf("seed %d: approx makespan %v vs exact %v (%.3f%% > 1%%)",
				seed, appr, exact, rel*100)
		}
	}
}

// RatesInto fills a caller-owned map (clearing stale entries) and must
// agree with the allocating Rates().
func TestRatesInto(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	net.Send(n[0], n[2], 100e9, func(sim.VTime) {})
	net.Send(n[0], n[1], 100e9, func(sim.VTime) {})
	eng.Schedule(sim.NewFuncEvent(10*sim.MSec, func(sim.VTime) error {
		eng.Terminate()
		return nil
	}))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	want := net.Rates()
	if len(want) != 2 {
		t.Fatalf("expected 2 in-flight flows, got %d", len(want))
	}
	got := map[int]float64{999: 1} // stale entry must be cleared
	net.RatesInto(got)
	if len(got) != len(want) {
		t.Fatalf("RatesInto kept %d entries, want %d", len(got), len(want))
	}
	for id, r := range want {
		if got[id] != r {
			t.Fatalf("flow %d: RatesInto %g != Rates %g", id, got[id], r)
		}
	}
}
