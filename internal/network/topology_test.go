package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"triosim/internal/sim"
)

func cfg(n int) Config {
	return Config{
		NumGPUs:       n,
		LinkBandwidth: 100e9,
		LinkLatency:   1 * sim.USec,
		HostBandwidth: 10e9,
		HostLatency:   5 * sim.USec,
	}
}

func TestRingTopology(t *testing.T) {
	topo := Ring(cfg(4))
	if got := len(topo.GPUs()); got != 4 {
		t.Fatalf("GPUs = %d", got)
	}
	if topo.Host() < 0 {
		t.Fatal("no host")
	}
	gpus := topo.GPUs()
	// Neighbors are 1 hop, opposite corner is 2 hops.
	r, err := topo.Route(gpus[0], gpus[1])
	if err != nil || len(r) != 1 {
		t.Fatalf("0→1 route %v, %v", r, err)
	}
	r, err = topo.Route(gpus[0], gpus[2])
	if err != nil || len(r) != 2 {
		t.Fatalf("0→2 route %v, %v", r, err)
	}
}

func TestRingOfTwoHasSingleLink(t *testing.T) {
	topo := Ring(cfg(2))
	gpuLinks := 0
	for _, l := range topo.Links {
		if topo.Nodes[l.A].Kind == GPUNode && topo.Nodes[l.B].Kind == GPUNode {
			gpuLinks++
		}
	}
	if gpuLinks != 1 {
		t.Fatalf("2-GPU ring has %d GPU-GPU links, want 1", gpuLinks)
	}
}

func TestSwitchTopology(t *testing.T) {
	topo := Switch(cfg(8))
	gpus := topo.GPUs()
	for i := 1; i < 8; i++ {
		r, err := topo.Route(gpus[0], gpus[i])
		if err != nil || len(r) != 2 {
			t.Fatalf("switch route 0→%d = %v, %v", i, r, err)
		}
	}
}

func TestPCIeTreeTopology(t *testing.T) {
	topo := PCIeTree(cfg(2))
	gpus := topo.GPUs()
	r, err := topo.Route(gpus[0], gpus[1])
	if err != nil || len(r) != 2 {
		t.Fatalf("pcie route = %v, %v", r, err)
	}
	// Host reaches GPUs through the switch.
	r, err = topo.Route(topo.Host(), gpus[0])
	if err != nil || len(r) != 2 {
		t.Fatalf("host route = %v, %v", r, err)
	}
}

func TestMeshTopology(t *testing.T) {
	topo := Mesh(3, 4, cfg(0))
	gpus := topo.GPUs()
	if len(gpus) != 12 {
		t.Fatalf("mesh GPUs = %d", len(gpus))
	}
	// Manhattan distance routing: corner to corner is (3-1)+(4-1)=5 hops.
	r, err := topo.Route(gpus[0], gpus[11])
	if err != nil || len(r) != 5 {
		t.Fatalf("mesh corner route = %d hops, %v", len(r), err)
	}
}

func TestRingWithChords(t *testing.T) {
	topo := RingWithChords(cfg(8))
	gpus := topo.GPUs()
	// Most distant node is now 1 hop via the chord.
	r, err := topo.Route(gpus[0], gpus[4])
	if err != nil || len(r) != 1 {
		t.Fatalf("chord route = %v, %v", r, err)
	}
}

func TestDoubleRing(t *testing.T) {
	topo := DoubleRing(cfg(8))
	gpus := topo.GPUs()
	if len(gpus) != 8 {
		t.Fatalf("GPUs = %d", len(gpus))
	}
	// Cross-ring peers are directly connected.
	r, err := topo.Route(gpus[0], gpus[4])
	if err != nil || len(r) != 1 {
		t.Fatalf("cross-ring route = %v, %v", r, err)
	}
	// Within each ring of 4, the opposite node is 2 hops.
	r, err = topo.Route(gpus[0], gpus[2])
	if err != nil || len(r) != 2 {
		t.Fatalf("in-ring route = %v, %v", r, err)
	}
}

func TestRouteCacheAndSymmetryProperty(t *testing.T) {
	topo := Mesh(4, 4, cfg(0))
	gpus := topo.GPUs()
	f := func(a, b uint8) bool {
		src := gpus[int(a)%len(gpus)]
		dst := gpus[int(b)%len(gpus)]
		r1, err1 := topo.Route(src, dst)
		r2, err2 := topo.Route(dst, src)
		if err1 != nil || err2 != nil {
			return false
		}
		if src == dst {
			return len(r1) == 0 && len(r2) == 0
		}
		// Shortest paths in both directions have equal hop count.
		return len(r1) == len(r2) && len(r1) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteFollowsEdges(t *testing.T) {
	// Property: each route is a connected path from src to dst.
	topo := Mesh(3, 5, cfg(0))
	gpus := topo.GPUs()
	for _, src := range gpus {
		for _, dst := range gpus {
			route, err := topo.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			at := src
			for _, dl := range route {
				lk := topo.Links[dl.Link]
				if dl.Forward {
					if lk.A != at {
						t.Fatalf("route %d→%d broken at %v", src, dst, dl)
					}
					at = lk.B
				} else {
					if lk.B != at {
						t.Fatalf("route %d→%d broken at %v", src, dst, dl)
					}
					at = lk.A
				}
			}
			if at != dst {
				t.Fatalf("route %d→%d ends at %d", src, dst, at)
			}
		}
	}
}

func TestDisconnectedRoute(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode("a", GPUNode)
	b := topo.AddNode("b", GPUNode)
	if _, err := topo.Route(a, b); err == nil {
		t.Fatal("disconnected route must error")
	}
}

func TestRouteLatency(t *testing.T) {
	topo := Ring(cfg(4))
	gpus := topo.GPUs()
	r, _ := topo.Route(gpus[0], gpus[2])
	if got := topo.RouteLatency(r); got != 2*sim.USec {
		t.Fatalf("RouteLatency = %v, want 2us", got)
	}
}

func TestSetLinkBandwidth(t *testing.T) {
	topo := Ring(cfg(4))
	topo.SetLinkBandwidth(0, 42)
	if topo.Links[0].Bandwidth != 42 {
		t.Fatal("SetLinkBandwidth did not apply")
	}
}
