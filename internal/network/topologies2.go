package network

import "fmt"

// Additional interconnects the paper names as supported configurations
// (§1: "network topology (e.g., NVSwitch, mesh, fat tree, etc.)";
// §2.1: the DGX-2's NVLink hypercube mesh).

// FatTree builds a two-level fat tree: GPUs attach to leaf switches in
// groups of leafWidth; every leaf connects to every spine switch with
// uplinks of uplinkBandwidth. With uplinkBandwidth ≥ leafWidth ×
// LinkBandwidth the tree is non-blocking; smaller values model
// oversubscription.
func FatTree(cfg Config, leafWidth, spines int,
	uplinkBandwidth float64) *Topology {
	t := NewTopology()
	gpus := addGPUs(t, cfg.NumGPUs)
	nLeaves := (cfg.NumGPUs + leafWidth - 1) / leafWidth
	leaves := make([]NodeID, nLeaves)
	for i := range leaves {
		leaves[i] = t.AddNode(fmt.Sprintf("leaf%d", i), SwitchNode)
	}
	for i, g := range gpus {
		t.AddLink(g, leaves[i/leafWidth], cfg.LinkBandwidth, cfg.LinkLatency)
	}
	for s := 0; s < spines; s++ {
		spine := t.AddNode(fmt.Sprintf("spine%d", s), SwitchNode)
		for _, leaf := range leaves {
			t.AddLink(leaf, spine, uplinkBandwidth, cfg.LinkLatency)
		}
	}
	addHostAll(t, gpus, cfg.HostBandwidth, cfg.HostLatency)
	return t
}

// Hypercube builds a d-dimensional hypercube of 2^d GPUs: node i connects
// to every node differing in one address bit (the DGX-2-style NVLink cube
// mesh).
func Hypercube(dims int, cfg Config) *Topology {
	t := NewTopology()
	n := 1 << dims
	gpus := addGPUs(t, n)
	for i := 0; i < n; i++ {
		for b := 0; b < dims; b++ {
			j := i ^ (1 << b)
			if j > i {
				t.AddLink(gpus[i], gpus[j], cfg.LinkBandwidth,
					cfg.LinkLatency)
			}
		}
	}
	addHostAll(t, gpus, cfg.HostBandwidth, cfg.HostLatency)
	return t
}

// Torus builds a rows×cols 2-D torus: a mesh with wrap-around links, so
// every node has degree 4 and the snake ring has no long way home.
func Torus(rows, cols int, cfg Config) *Topology {
	t := Mesh(rows, cols, cfg)
	gpus := t.GPUs()
	at := func(r, c int) NodeID { return gpus[r*cols+c] }
	if cols > 2 {
		for r := 0; r < rows; r++ {
			t.AddLink(at(r, 0), at(r, cols-1), cfg.LinkBandwidth,
				cfg.LinkLatency)
		}
	}
	if rows > 2 {
		for c := 0; c < cols; c++ {
			t.AddLink(at(0, c), at(rows-1, c), cfg.LinkBandwidth,
				cfg.LinkLatency)
		}
	}
	return t
}

// MultiNode builds a cluster of `nodes` machines with gpusPerNode GPUs
// each: intra-node traffic rides an NVSwitch per machine, inter-node
// traffic crosses per-machine NICs into a non-blocking cluster switch at
// interBandwidth — the asymmetric two-tier fabric large training clusters
// actually have.
func MultiNode(nodes, gpusPerNode int, cfg Config,
	interBandwidth float64) *Topology {
	t := NewTopology()
	gpus := addGPUs(t, nodes*gpusPerNode)
	cluster := t.AddNode("cluster-switch", SwitchNode)
	for m := 0; m < nodes; m++ {
		sw := t.AddNode(fmt.Sprintf("nvswitch%d", m), SwitchNode)
		for g := 0; g < gpusPerNode; g++ {
			t.AddLink(gpus[m*gpusPerNode+g], sw, cfg.LinkBandwidth,
				cfg.LinkLatency)
		}
		t.AddLink(sw, cluster, interBandwidth, 5*cfg.LinkLatency)
	}
	addHostAll(t, gpus, cfg.HostBandwidth, cfg.HostLatency)
	return t
}
