package network

import (
	"math/rand"
	"testing"

	"triosim/internal/sim"
)

// checkMaxMinInvariants asserts the three allocator invariants over the
// network's current flow set:
//
//  1. no directed link's capacity is exceeded;
//  2. every in-flight flow gets a positive rate (no starvation);
//  3. every flow is bottlenecked on some saturated link where its rate is
//     at least every other flow's (the max-min condition).
func checkMaxMinInvariants(t *testing.T, net *FlowNetwork) {
	t.Helper()
	usage := map[DirLink]float64{}
	flowsOn := map[DirLink][]*flow{}
	for _, f := range net.ordered {
		if f.rate <= 0 {
			t.Fatalf("flow %d starved", f.id)
		}
		for _, dl := range f.route {
			usage[dl] += f.rate
			flowsOn[dl] = append(flowsOn[dl], f)
		}
	}
	for dl, u := range usage {
		cap := net.topo.Links[dl.Link].Bandwidth
		if u > cap*(1+1e-9) {
			t.Fatalf("link %v overcommitted: %g > %g", dl, u, cap)
		}
	}
	for _, f := range net.ordered {
		bottlenecked := false
		for _, dl := range f.route {
			cap := net.topo.Links[dl.Link].Bandwidth
			if usage[dl] < cap*(1-1e-9) {
				continue
			}
			maxOther := 0.0
			for _, g := range flowsOn[dl] {
				if g.rate > maxOther {
					maxOther = g.rate
				}
			}
			if f.rate >= maxOther*(1-1e-9) {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Fatalf("flow %d rate %g not max-min bottlenecked", f.id, f.rate)
		}
	}
}

// FuzzComputeRates drives the incremental allocator with fuzz-chosen
// topology shape, traffic pattern, and sizes, asserting it never panics,
// never overcommits a link, and always produces a max-min allocation. The
// seed corpus covers the collective-communication shapes the simulator
// actually generates: ring AllReduce neighbor steps and tree
// reduce/broadcast halving pairs.
func FuzzComputeRates(f *testing.F) {
	// pattern 0 = ring neighbor sends, 1 = tree halving pairs, 2 = random
	// pairs; topoKind 0 = ring, 1 = PCIe tree, 2 = mesh, 3 = switch.
	f.Add(int64(1), uint8(8), uint8(0), uint8(0), uint8(30))  // ring/ring
	f.Add(int64(2), uint8(8), uint8(1), uint8(1), uint8(100)) // tree/tree
	f.Add(int64(3), uint8(4), uint8(0), uint8(1), uint8(50))  // ring on tree
	f.Add(int64(4), uint8(16), uint8(1), uint8(3), uint8(10)) // tree on switch
	f.Add(int64(5), uint8(9), uint8(2), uint8(2), uint8(80))  // random on mesh

	f.Fuzz(func(t *testing.T, seed int64, nGPU, pattern, topoKind,
		bwGBs uint8) {

		numGPUs := int(nGPU)%15 + 2
		bw := (float64(bwGBs) + 1) * 1e9
		cfg := Config{NumGPUs: numGPUs, LinkBandwidth: bw,
			HostBandwidth: bw / 4}
		var topo *Topology
		switch topoKind % 4 {
		case 0:
			topo = Ring(cfg)
		case 1:
			topo = PCIeTree(cfg)
		case 2:
			rows := 1
			for rows*rows < numGPUs {
				rows++
			}
			topo = Mesh(rows, (numGPUs+rows-1)/rows, cfg)
		default:
			topo = Switch(cfg)
		}
		gpus := topo.GPUs()
		eng := sim.NewSerialEngine()
		net := NewFlowNetwork(eng, topo)

		rng := rand.New(rand.NewSource(seed))
		send := func(src, dst NodeID) {
			if src == dst {
				return
			}
			net.Send(src, dst, float64(1+rng.Intn(1000))*1e7,
				func(sim.VTime) {})
		}
		switch pattern % 3 {
		case 0: // ring collective step: everyone sends to the right neighbor
			for i := range gpus {
				send(gpus[i], gpus[(i+1)%len(gpus)])
			}
		case 1: // tree reduce step: upper half sends to lower half
			for i := len(gpus) / 2; i < len(gpus); i++ {
				send(gpus[i], gpus[i-len(gpus)/2])
			}
		default: // random pairs
			for i := 0; i < 1+rng.Intn(2*len(gpus)); i++ {
				send(gpus[rng.Intn(len(gpus))], gpus[rng.Intn(len(gpus))])
			}
		}

		// Run just past t=0 so the coalesced reallocation event fires, then
		// check the invariants over the in-flight flows.
		eng.Schedule(sim.NewFuncEvent(1e-12, func(sim.VTime) error {
			eng.Terminate()
			return nil
		}))
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		checkMaxMinInvariants(t, net)

		// The incremental state must also agree with a from-scratch solve.
		want := referenceRates(net)
		net.computeRates()
		for _, fl := range net.ordered {
			if fl.rate != want[fl.id] {
				t.Fatalf("flow %d rate %g != reference %g",
					fl.id, fl.rate, want[fl.id])
			}
		}
	})
}
