package network

import (
	"math/rand"
	"testing"

	"triosim/internal/sim"
)

func clusterCfg(machines, gpusPer int) ClusterConfig {
	return ClusterConfig{
		Machines: machines, GPUsPerMachine: gpusPer,
		NVLinkBandwidth: 300e9, NVLinkLatency: 1 * sim.USec,
		NICBandwidth: 50e9, NICLatency: 2 * sim.USec,
		FabricBandwidth: 100e9, FabricLatency: 3 * sim.USec,
		HostBandwidth: 10e9, HostLatency: 5 * sim.USec,
	}
}

// checkRoutePath asserts route is a contiguous directed src→dst path.
func checkRoutePath(t *testing.T, topo *Topology, src, dst NodeID,
	route []DirLink) {
	t.Helper()
	cur := src
	for i, dl := range route {
		lk := topo.Links[dl.Link]
		from, to := lk.A, lk.B
		if !dl.Forward {
			from, to = to, from
		}
		if from != cur {
			t.Fatalf("route %d→%d hop %d starts at %d, want %d",
				src, dst, i, from, cur)
		}
		cur = to
	}
	if cur != dst {
		t.Fatalf("route %d→%d ends at %d", src, dst, cur)
	}
}

// tierOf names the tier sequence of a route, e.g. "nvlink,nvlink".
func tierOf(topo *Topology, route []DirLink) []string {
	out := make([]string, len(route))
	for i, dl := range route {
		out[i] = topo.Links[dl.Link].Tier
	}
	return out
}

func TestRailFatTreeStructure(t *testing.T) {
	topo := RailFatTree(clusterCfg(8, 4), 4, 2)
	gpus := topo.GPUs()
	if len(gpus) != 32 {
		t.Fatalf("got %d GPUs, want 32", len(gpus))
	}
	if !topo.Tiered() {
		t.Fatal("rail fat-tree not tiered")
	}
	if topo.Machines() != 8 {
		t.Fatalf("Machines() = %d, want 8", topo.Machines())
	}
	for _, lk := range topo.Links {
		if lk.Tier == "" {
			t.Fatalf("link %d (%d↔%d) has no tier", lk.ID, lk.A, lk.B)
		}
	}
	// Machine-major rank order.
	for i, g := range gpus {
		if m := topo.MachineOf(g); m != i/4 {
			t.Fatalf("gpu %d on machine %d, want %d", i, m, i/4)
		}
	}

	// Intra-machine: two NVLink hops through the machine's NVSwitch.
	r, err := topo.Route(gpus[0], gpus[3])
	if err != nil {
		t.Fatal(err)
	}
	checkRoutePath(t, topo, gpus[0], gpus[3], r)
	if got := tierOf(topo, r); len(got) != 2 ||
		got[0] != TierNVLink || got[1] != TierNVLink {
		t.Fatalf("intra-machine tiers %v", got)
	}

	// Same local rank, different machines under one leaf: the rail keeps
	// it to two NIC hops.
	r, err = topo.Route(gpus[1], gpus[4+1]) // rank 1 of machines 0 and 1
	if err != nil {
		t.Fatal(err)
	}
	checkRoutePath(t, topo, gpus[1], gpus[5], r)
	if got := tierOf(topo, r); len(got) != 2 ||
		got[0] != TierNIC || got[1] != TierNIC {
		t.Fatalf("same-leaf rail tiers %v", got)
	}

	// Same local rank across leaf groups: NIC, two fabric hops over a
	// spine, NIC — never an NVLink.
	r, err = topo.Route(gpus[2], gpus[7*4+2]) // rank 2, machines 0 and 7
	if err != nil {
		t.Fatal(err)
	}
	checkRoutePath(t, topo, gpus[2], gpus[30], r)
	got := tierOf(topo, r)
	if len(got) != 4 || got[0] != TierNIC || got[1] != TierFabric ||
		got[2] != TierFabric || got[3] != TierNIC {
		t.Fatalf("cross-leaf rail tiers %v", got)
	}

	// Cross-rank, cross-machine also crosses the spine layer.
	r, err = topo.Route(gpus[0], gpus[4+3])
	if err != nil {
		t.Fatal(err)
	}
	checkRoutePath(t, topo, gpus[0], gpus[7], r)
}

func TestDragonflyRoutes(t *testing.T) {
	topo := Dragonfly(clusterCfg(9, 2), 3) // 3 groups of 3 machines
	gpus := topo.GPUs()
	if !topo.Tiered() || topo.Machines() != 9 {
		t.Fatalf("tiered=%v machines=%d", topo.Tiered(), topo.Machines())
	}
	for _, lk := range topo.Links {
		if lk.Tier == "" {
			t.Fatalf("link %d has no tier", lk.ID)
		}
	}
	cases := [][2]int{
		{0, 3},  // same machine
		{0, 2},  // same group, different machine
		{0, 17}, // different groups
		{5, 12}, // different groups, holder hops needed
	}
	for _, c := range cases {
		r, err := topo.Route(gpus[c[0]], gpus[c[1]])
		if err != nil {
			t.Fatalf("route %v: %v", c, err)
		}
		checkRoutePath(t, topo, gpus[c[0]], gpus[c[1]], r)
	}
	// Minimal routing: inter-group paths take at most 3 fabric hops
	// (local, global, local) plus the two NICs.
	r, _ := topo.Route(gpus[5], gpus[12])
	if len(r) > 5 {
		t.Fatalf("dragonfly inter-group path %d hops, want ≤5", len(r))
	}
}

func TestTorus3DRoutes(t *testing.T) {
	topo := Torus3D(clusterCfg(0, 2), 3, 3, 2) // 18 machines
	gpus := topo.GPUs()
	if len(gpus) != 36 || topo.Machines() != 18 {
		t.Fatalf("gpus=%d machines=%d", len(gpus), topo.Machines())
	}
	for _, lk := range topo.Links {
		if lk.Tier == "" {
			t.Fatalf("link %d has no tier", lk.ID)
		}
	}
	// Dimension-ordered minimal routing: machine (0,0,0) → (2,1,1) wraps
	// -x once (3-torus), +y once, +z once: 3 fabric hops + 2 NICs.
	src, dst := gpus[0], gpus[(2*3*2+1*2+1)*2]
	r, err := topo.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	checkRoutePath(t, topo, src, dst, r)
	if len(r) != 5 {
		t.Fatalf("torus path %d hops, want 5", len(r))
	}
	// Wrap-around shortcut: (0,0,0) → (2,0,0) is one -x hop.
	r, _ = topo.Route(gpus[0], gpus[(2*3*2)*2])
	if len(r) != 3 {
		t.Fatalf("torus wrap path %d hops, want 3", len(r))
	}
}

// Hierarchical routes must agree with BFS shortest paths in hop count —
// the structural routers are a fast path, not a different metric.
func TestStructuralRoutersMatchBFSLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	builds := []func() *Topology{
		func() *Topology { return RailFatTree(clusterCfg(6, 3), 2, 2) },
		func() *Topology { return Dragonfly(clusterCfg(8, 2), 4) },
		func() *Topology { return Torus3D(clusterCfg(0, 2), 2, 3, 2) },
	}
	for bi, build := range builds {
		fast := build()
		slow := build()
		slow.SetRouter(nil) // BFS only
		gpus := fast.GPUs()
		for trial := 0; trial < 40; trial++ {
			a := gpus[rng.Intn(len(gpus))]
			b := gpus[rng.Intn(len(gpus))]
			if a == b {
				continue
			}
			rf, err := fast.Route(a, b)
			if err != nil {
				t.Fatalf("build %d: fast route %d→%d: %v", bi, a, b, err)
			}
			checkRoutePath(t, fast, a, b, rf)
			rs, err := slow.Route(a, b)
			if err != nil {
				t.Fatalf("build %d: bfs route %d→%d: %v", bi, a, b, err)
			}
			if len(rf) != len(rs) {
				t.Fatalf("build %d: route %d→%d structural %d hops, BFS %d",
					bi, a, b, len(rf), len(rs))
			}
		}
	}
}

// FuzzTopologyBuild checks generator invariants over fuzz-chosen cluster
// shapes: every link carries a tier label, adjacency is symmetric, GPUs
// carry dense machine labels, and the installed structural router produces
// valid GPU↔GPU paths with BFS-shortest hop counts.
func FuzzTopologyBuild(f *testing.F) {
	// kind 0 = rail fat-tree, 1 = dragonfly, 2 = 3D torus.
	f.Add(uint8(0), uint8(8), uint8(4), uint8(4), uint8(2))
	f.Add(uint8(1), uint8(9), uint8(2), uint8(3), uint8(0))
	f.Add(uint8(2), uint8(0), uint8(2), uint8(3), uint8(3))
	f.Add(uint8(0), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(2), uint8(0), uint8(1), uint8(1), uint8(1))

	f.Fuzz(func(t *testing.T, kind, machines, gpusPer, p1, p2 uint8) {
		m := int(machines)%12 + 1
		g := int(gpusPer)%4 + 1
		cfg := clusterCfg(m, g)
		var topo *Topology
		switch kind % 3 {
		case 0:
			topo = RailFatTree(cfg, int(p1)%4+1, int(p2)%3+1)
		case 1:
			topo = Dragonfly(cfg, int(p1)%5+1)
		default:
			x, y := int(p1)%3+1, int(p2)%3+1
			z := (m + x*y - 1) / (x * y)
			topo = Torus3D(cfg, x, y, z)
		}

		if !topo.Tiered() {
			t.Fatal("generator produced an untiered topology")
		}
		for _, lk := range topo.Links {
			if lk.Tier == "" {
				t.Fatalf("link %d (%d↔%d) has no tier", lk.ID, lk.A, lk.B)
			}
			// Symmetric adjacency: both endpoints list the link.
			for _, end := range []NodeID{lk.A, lk.B} {
				found := false
				for _, l := range topo.LinksOf(end) {
					if l == lk.ID {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("link %d missing from node %d's adjacency",
						lk.ID, end)
				}
			}
		}
		gpus := topo.GPUs()
		for i, gp := range gpus {
			if topo.MachineOf(gp) != i/g && kind%3 != 2 {
				t.Fatalf("gpu %d machine %d, want %d",
					i, topo.MachineOf(gp), i/g)
			}
		}

		// Connectivity + router validity + shortest-length agreement on a
		// bounded random sample of pairs.
		slow := NewTopology()
		*slow = *topo
		slow.SetRouter(nil)
		slow.routeCache = map[[2]NodeID][]DirLink{}
		rng := rand.New(rand.NewSource(int64(kind)<<16 |
			int64(machines)<<8 | int64(gpusPer)))
		pairs := len(gpus)
		if pairs > 12 {
			pairs = 12
		}
		for i := 0; i < pairs; i++ {
			a := gpus[rng.Intn(len(gpus))]
			b := gpus[rng.Intn(len(gpus))]
			if a == b {
				continue
			}
			route, err := topo.Route(a, b)
			if err != nil {
				t.Fatalf("no route %d→%d: %v", a, b, err)
			}
			checkRoutePath(t, topo, a, b, route)
			bfs, err := slow.Route(a, b)
			if err != nil {
				t.Fatalf("BFS disagrees: no route %d→%d: %v", a, b, err)
			}
			// Dragonfly minimal routing (local→global→local) may take one
			// hop more than a BFS shortcut that chains two global links
			// through an intermediate group; the other generators must
			// match BFS exactly.
			slack := 0
			if kind%3 == 1 {
				slack = 1
			}
			if len(route) > len(bfs)+slack || len(route) < len(bfs) {
				t.Fatalf("route %d→%d: structural %d hops, BFS %d",
					a, b, len(route), len(bfs))
			}
		}
		// The host must reach every GPU for input staging.
		if h := topo.Host(); h >= 0 && len(gpus) > 0 {
			if _, err := topo.Route(h, gpus[len(gpus)-1]); err != nil {
				t.Fatalf("host cannot stage to gpu: %v", err)
			}
		}
	})
}
