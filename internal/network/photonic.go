package network

import (
	"triosim/internal/sim"
)

// PhotonicNetwork models a circuit-switching photonic interconnect in the
// style of Lightmatter's Passage (paper §7.1). Sending is a 3-step process:
//
//  1. establish the logical link (costs SetupLatency if no circuit between
//     the endpoints exists yet; if either endpoint's photonic ports are all
//     occupied, the idle circuit unused for the longest time is destroyed
//     to free a port, or the sender waits until one goes idle);
//  2. reserve buffer space at the destination (modeled by serializing
//     transfers on the circuit);
//  3. move the data at the circuit bandwidth.
//
// Once a circuit exists, delivery latency is nearly distance-independent.
type PhotonicNetwork struct {
	eng sim.Engine

	// BandwidthPerLink is the bytes/s each established circuit provides.
	BandwidthPerLink float64
	// SetupLatency is the time to establish a new circuit.
	SetupLatency sim.VTime
	// PortsPerNode bounds how many circuits a node can terminate at once.
	PortsPerNode int
	// DeliverLatency is the propagation latency once a circuit exists.
	DeliverLatency sim.VTime

	circuits map[[2]NodeID]*circuit
	portUse  map[NodeID]int

	// Stats.
	Establishments int
	Evictions      int
	TotalBytes     float64
	TotalTransfers int
}

type circuit struct {
	key       [2]NodeID
	busyUntil sim.VTime
	lastUsed  sim.VTime
}

// NewPhotonicNetwork returns a photonic network driven by eng.
func NewPhotonicNetwork(eng sim.Engine, bandwidthPerLink float64,
	setupLatency sim.VTime, portsPerNode int) *PhotonicNetwork {
	return &PhotonicNetwork{
		eng:              eng,
		BandwidthPerLink: bandwidthPerLink,
		SetupLatency:     setupLatency,
		PortsPerNode:     portsPerNode,
		DeliverLatency:   200 * sim.NSec,
		circuits:         map[[2]NodeID]*circuit{},
		portUse:          map[NodeID]int{},
	}
}

var _ Network = (*PhotonicNetwork)(nil)

func pairOf(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Send starts a transfer; onDone fires at delivery.
func (n *PhotonicNetwork) Send(src, dst NodeID, bytes float64,
	onDone func(now sim.VTime)) {

	now := n.eng.CurrentTime()
	n.TotalTransfers++
	n.TotalBytes += bytes
	if src == dst || bytes <= 0 {
		n.eng.Schedule(sim.NewFuncEvent(now, func(t sim.VTime) error {
			onDone(t)
			return nil
		}))
		return
	}
	n.trySend(now, src, dst, bytes, onDone)
}

func (n *PhotonicNetwork) trySend(now sim.VTime, src, dst NodeID,
	bytes float64, onDone func(now sim.VTime)) {

	key := pairOf(src, dst)
	c := n.circuits[key]
	if c == nil {
		if !n.freePorts(now, src, dst) {
			// All ports busy: retry when the earliest circuit involving a
			// saturated endpoint goes idle.
			retry := n.earliestIdleTime(src, dst)
			if retry.AtOrBefore(now) {
				retry = now + n.DeliverLatency
			}
			n.eng.Schedule(sim.NewFuncEvent(retry, func(t sim.VTime) error {
				n.trySend(t, src, dst, bytes, onDone)
				return nil
			}))
			return
		}
		c = &circuit{key: key, busyUntil: now + n.SetupLatency}
		n.circuits[key] = c
		n.portUse[src]++
		n.portUse[dst]++
		n.Establishments++
	}

	start := now.Max(c.busyUntil)
	done := start + sim.VTime(bytes/n.BandwidthPerLink)
	c.busyUntil = done
	c.lastUsed = done
	n.eng.Schedule(sim.NewFuncEvent(done+n.DeliverLatency,
		func(t sim.VTime) error {
			onDone(t)
			return nil
		}))
}

// freePorts ensures src and dst each have a free port, evicting the
// longest-idle circuits if needed. Returns false if a needed port cannot be
// freed right now.
func (n *PhotonicNetwork) freePorts(now sim.VTime, src, dst NodeID) bool {
	for _, node := range []NodeID{src, dst} {
		for n.portUse[node] >= n.PortsPerNode {
			victim := n.longestIdleCircuit(now, node)
			if victim == nil {
				return false
			}
			n.destroy(victim)
		}
	}
	return true
}

// longestIdleCircuit returns the idle (not mid-transfer) circuit touching
// node with the oldest lastUsed, or nil.
func (n *PhotonicNetwork) longestIdleCircuit(now sim.VTime,
	node NodeID) *circuit {
	var victim *circuit
	for _, c := range n.circuits {
		if c.key[0] != node && c.key[1] != node {
			continue
		}
		if c.busyUntil.After(now) {
			continue
		}
		if victim == nil || c.lastUsed.Before(victim.lastUsed) ||
			(c.lastUsed == victim.lastUsed && less(c.key, victim.key)) {
			victim = c
		}
	}
	return victim
}

func less(a, b [2]NodeID) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// earliestIdleTime finds when the soonest circuit touching src or dst goes
// idle.
func (n *PhotonicNetwork) earliestIdleTime(src, dst NodeID) sim.VTime {
	earliest := sim.Infinity
	for _, c := range n.circuits {
		touches := c.key[0] == src || c.key[1] == src ||
			c.key[0] == dst || c.key[1] == dst
		if touches && c.busyUntil.Before(earliest) {
			earliest = c.busyUntil
		}
	}
	return earliest
}

func (n *PhotonicNetwork) destroy(c *circuit) {
	delete(n.circuits, c.key)
	n.portUse[c.key[0]]--
	n.portUse[c.key[1]]--
	n.Evictions++
}

// Circuits returns the number of currently established circuits (test hook).
func (n *PhotonicNetwork) Circuits() int { return len(n.circuits) }
