package network

import (
	"testing"

	"triosim/internal/sim"
)

func newPhotonic(eng *sim.SerialEngine) *PhotonicNetwork {
	// 60.5 GB/s per circuit, 20 ms setup, 8 ports (case study numbers).
	return NewPhotonicNetwork(eng, 60.5e9, 20*sim.MSec, 8)
}

func TestPhotonicFirstSendPaysSetup(t *testing.T) {
	eng := sim.NewSerialEngine()
	net := newPhotonic(eng)
	var done sim.VTime
	net.Send(0, 1, 60.5e9, func(now sim.VTime) { done = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 20*sim.MSec + 1*sim.Sec + net.DeliverLatency
	approx(t, done, want, 1e-9, "first photonic send")
	if net.Establishments != 1 {
		t.Fatalf("establishments = %d", net.Establishments)
	}
}

func TestPhotonicReuseSkipsSetup(t *testing.T) {
	eng := sim.NewSerialEngine()
	net := newPhotonic(eng)
	var d1, d2 sim.VTime
	net.Send(0, 1, 60.5e9, func(now sim.VTime) { d1 = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	net.Send(0, 1, 60.5e9, func(now sim.VTime) { d2 = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Establishments != 1 {
		t.Fatalf("second send re-established: %d", net.Establishments)
	}
	// Second transfer takes only 1 s (no setup).
	gap := d2 - d1
	approx(t, gap, 1*sim.Sec, 1e-6, "reused circuit transfer")
}

func TestPhotonicCircuitSerializes(t *testing.T) {
	// Two back-to-back sends on the same circuit queue behind each other
	// (buffer-space reservation), not share bandwidth.
	eng := sim.NewSerialEngine()
	net := newPhotonic(eng)
	var d1, d2 sim.VTime
	net.Send(0, 1, 60.5e9, func(now sim.VTime) { d1 = now })
	net.Send(0, 1, 60.5e9, func(now sim.VTime) { d2 = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, d1, 20*sim.MSec+1*sim.Sec+net.DeliverLatency, 1e-9, "first")
	approx(t, d2, 20*sim.MSec+2*sim.Sec+net.DeliverLatency, 1e-9, "second")
}

func TestPhotonicDistinctPairsParallel(t *testing.T) {
	// Circuits between distinct pairs run concurrently at full bandwidth.
	eng := sim.NewSerialEngine()
	net := newPhotonic(eng)
	var d1, d2 sim.VTime
	net.Send(0, 1, 60.5e9, func(now sim.VTime) { d1 = now })
	net.Send(2, 3, 60.5e9, func(now sim.VTime) { d2 = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 20*sim.MSec + 1*sim.Sec + net.DeliverLatency
	approx(t, d1, want, 1e-9, "pair 0-1")
	approx(t, d2, want, 1e-9, "pair 2-3")
	if net.Circuits() != 2 {
		t.Fatalf("circuits = %d", net.Circuits())
	}
}

func TestPhotonicPortEviction(t *testing.T) {
	// With 2 ports per node, a third circuit from node 0 must evict the
	// longest-idle one.
	eng := sim.NewSerialEngine()
	net := NewPhotonicNetwork(eng, 100e9, 1*sim.MSec, 2)
	done := 0
	net.Send(0, 1, 100e9, func(sim.VTime) { done++ })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	net.Send(0, 2, 100e9, func(sim.VTime) { done++ })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Circuits() != 2 {
		t.Fatalf("circuits before eviction = %d", net.Circuits())
	}
	net.Send(0, 3, 100e9, func(sim.VTime) { done++ })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("delivered %d", done)
	}
	if net.Evictions != 1 {
		t.Fatalf("evictions = %d", net.Evictions)
	}
	if net.Circuits() != 2 {
		t.Fatalf("circuits after eviction = %d", net.Circuits())
	}
}

func TestPhotonicEvictsLongestIdle(t *testing.T) {
	eng := sim.NewSerialEngine()
	net := NewPhotonicNetwork(eng, 100e9, 1*sim.MSec, 2)
	// Establish 0-1, then 0-2 (0-1 becomes the longest idle).
	net.Send(0, 1, 1e9, func(sim.VTime) {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	net.Send(0, 2, 1e9, func(sim.VTime) {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	net.Send(0, 3, 1e9, func(sim.VTime) {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, has01 := net.circuits[pairOf(0, 1)]; has01 {
		t.Fatal("0-1 should have been evicted (longest idle)")
	}
	if _, has02 := net.circuits[pairOf(0, 2)]; !has02 {
		t.Fatal("0-2 should survive")
	}
}

func TestPhotonicWaitsWhenAllPortsBusy(t *testing.T) {
	// 1 port per node, circuit 0-1 busy; a send 0→2 must wait for it to go
	// idle, then evict and proceed.
	eng := sim.NewSerialEngine()
	net := NewPhotonicNetwork(eng, 100e9, 1*sim.MSec, 1)
	var d01, d02 sim.VTime
	net.Send(0, 1, 100e9, func(now sim.VTime) { d01 = now }) // busy ~1.001 s
	net.Send(0, 2, 100e9, func(now sim.VTime) { d02 = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d02 <= d01 {
		t.Fatalf("0→2 finished at %v before 0→1 at %v", d02, d01)
	}
	// 0→2 starts after 0→1's transfer completes: ≥ 1.001s + setup + 1s.
	if d02 < 2*sim.Sec {
		t.Fatalf("0→2 done too early: %v", d02)
	}
}

func TestPhotonicLocalSend(t *testing.T) {
	eng := sim.NewSerialEngine()
	net := newPhotonic(eng)
	fired := false
	net.Send(5, 5, 1e9, func(sim.VTime) { fired = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("local send not delivered")
	}
	if net.Establishments != 0 {
		t.Fatal("local send should not establish a circuit")
	}
}
