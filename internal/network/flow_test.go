package network

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"triosim/internal/sim"
)

// lineTopo builds A—B—C with 100 GB/s links and 1 µs latency.
func lineTopo() (*Topology, []NodeID) {
	topo := NewTopology()
	a := topo.AddNode("a", GPUNode)
	b := topo.AddNode("b", GPUNode)
	c := topo.AddNode("c", GPUNode)
	topo.AddLink(a, b, 100e9, 1*sim.USec)
	topo.AddLink(b, c, 100e9, 1*sim.USec)
	return topo, []NodeID{a, b, c}
}

func approx(t *testing.T, got, want sim.VTime, tol float64, msg string) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s: got %v, want 0", msg, got)
		}
		return
	}
	rel := math.Abs(float64(got-want)) / math.Abs(float64(want))
	if rel > tol {
		t.Fatalf("%s: got %v, want %v (±%.1f%%)", msg, got, want, tol*100)
	}
}

func TestSingleFlowTime(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	var done sim.VTime
	net.Send(n[0], n[2], 100e9, func(now sim.VTime) { done = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 100 GB over 100 GB/s plus 2 µs route latency.
	approx(t, done, 1*sim.Sec+2*sim.USec, 1e-9, "single flow")
	if net.TotalTransfers != 1 || net.TotalBytes != 100e9 {
		t.Fatalf("stats: %d transfers, %g bytes",
			net.TotalTransfers, net.TotalBytes)
	}
}

func TestLocalSendImmediate(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	fired := false
	net.Send(n[0], n[0], 1e9, func(now sim.VTime) {
		fired = true
		if now != 0 {
			t.Fatalf("local send at %v", now)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("local send never delivered")
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	// Two flows over the same link each get half the bandwidth.
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	var d1, d2 sim.VTime
	net.Send(n[0], n[1], 100e9, func(now sim.VTime) { d1 = now })
	net.Send(n[0], n[1], 100e9, func(now sim.VTime) { d2 = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, d1, 2*sim.Sec+1*sim.USec, 1e-9, "flow 1")
	approx(t, d2, 2*sim.Sec+1*sim.USec, 1e-9, "flow 2")
}

func TestOppositeDirectionsDoNotShare(t *testing.T) {
	// Full-duplex: a→b and b→a flows each get full bandwidth.
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	var d1, d2 sim.VTime
	net.Send(n[0], n[1], 100e9, func(now sim.VTime) { d1 = now })
	net.Send(n[1], n[0], 100e9, func(now sim.VTime) { d2 = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, d1, 1*sim.Sec+1*sim.USec, 1e-9, "forward flow")
	approx(t, d2, 1*sim.Sec+1*sim.USec, 1e-9, "reverse flow")
}

func TestRescheduleOnCompletion(t *testing.T) {
	// Figure 5 case B: a short flow shares the link, then the long flow
	// speeds back up after the short one delivers.
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	var dLong, dShort sim.VTime
	// Long: 200 GB. Short: 50 GB, both start at t=0 over the same link.
	net.Send(n[0], n[1], 200e9, func(now sim.VTime) { dLong = now })
	net.Send(n[0], n[1], 50e9, func(now sim.VTime) { dShort = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Shared 50 GB/s each: short finishes its 50 GB at t=1. Long has
	// 150 GB left and reclaims 100 GB/s: +1.5 s → t=2.5.
	approx(t, dShort, 1*sim.Sec+1*sim.USec, 1e-6, "short flow")
	approx(t, dLong, 2.5*sim.Sec+1*sim.USec, 1e-6, "long flow")
}

func TestLateArrivalSlowsExisting(t *testing.T) {
	// Figure 5 case B, arrival variant: a flow arriving mid-transfer forces
	// a reallocation of the in-flight flow.
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	var d1, d2 sim.VTime
	net.Send(n[0], n[1], 100e9, func(now sim.VTime) { d1 = now })
	eng.Schedule(sim.NewFuncEvent(0.5*sim.Sec, func(sim.VTime) error {
		net.Send(n[0], n[1], 100e9, func(now sim.VTime) { d2 = now })
		return nil
	}))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Flow 1: 50 GB at full rate (0.5 s), then 50 GB at half rate (1 s):
	// done at 1.5 s. Flow 2 then has 50 GB left at full rate: 0.5+1+0.5=2 s.
	approx(t, d1, 1.5*sim.Sec+1*sim.USec, 1e-6, "first flow")
	approx(t, d2, 2*sim.Sec+1*sim.USec, 1e-6, "second flow")
}

func TestBottleneckFairness(t *testing.T) {
	// One flow crosses both links, one flow only the second link. Max-min:
	// both get 50 GB/s on the shared link; the first link has spare 50.
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	var dAC, dBC sim.VTime
	net.Send(n[0], n[2], 50e9, func(now sim.VTime) { dAC = now })
	net.Send(n[1], n[2], 50e9, func(now sim.VTime) { dBC = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, dAC, 1*sim.Sec+2*sim.USec, 1e-6, "a→c")
	approx(t, dBC, 1*sim.Sec+1*sim.USec, 1e-6, "b→c")
}

func TestMaxMinUnevenSplit(t *testing.T) {
	// Three flows: two on link1 only, one crossing link1+link2 where link2
	// is the bottleneck at 30 GB/s. Max-min: crossing flow pinned to 30,
	// remaining 70 split 35/35.
	eng := sim.NewSerialEngine()
	topo := NewTopology()
	a := topo.AddNode("a", GPUNode)
	b := topo.AddNode("b", GPUNode)
	c := topo.AddNode("c", GPUNode)
	topo.AddLink(a, b, 100e9, 0)
	topo.AddLink(b, c, 30e9, 0)
	net := NewFlowNetwork(eng, topo)

	var dCross, dL1a, dL1b sim.VTime
	net.Send(a, c, 30e9, func(now sim.VTime) { dCross = now })
	net.Send(a, b, 35e9, func(now sim.VTime) { dL1a = now })
	net.Send(a, b, 35e9, func(now sim.VTime) { dL1b = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, dCross, 1*sim.Sec, 1e-6, "crossing flow")
	approx(t, dL1a, 1*sim.Sec, 1e-6, "link1 flow a")
	approx(t, dL1b, 1*sim.Sec, 1e-6, "link1 flow b")
}

func TestRingDisjointFlows(t *testing.T) {
	// Ring AllReduce's step pattern: every GPU sends to its right neighbor
	// simultaneously; the flows use disjoint directed links and all run at
	// full bandwidth.
	eng := sim.NewSerialEngine()
	topo := Ring(Config{
		NumGPUs: 4, LinkBandwidth: 100e9, LinkLatency: 0,
		HostBandwidth: 10e9,
	})
	gpus := topo.GPUs()
	net := NewFlowNetwork(eng, topo)
	var times []sim.VTime
	for i := range gpus {
		net.Send(gpus[i], gpus[(i+1)%4], 100e9, func(now sim.VTime) {
			times = append(times, now)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("delivered %d flows", len(times))
	}
	for _, tm := range times {
		approx(t, tm, 1*sim.Sec, 1e-6, "ring step flow")
	}
}

// Property-based check of the max-min allocator invariants:
// (1) no directed link's capacity is exceeded;
// (2) every flow with demand gets a positive rate;
// (3) allocation is max-min: every flow is bottlenecked on some saturated
// link where it receives at least as much as every other flow on that link.
func TestMaxMinInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		eng := sim.NewSerialEngine()
		topo := Mesh(3, 3, Config{
			LinkBandwidth: float64(10+rng.Intn(90)) * 1e9,
			HostBandwidth: 10e9,
		})
		gpus := topo.GPUs()
		net := NewFlowNetwork(eng, topo)
		nFlows := 2 + rng.Intn(8)
		for i := 0; i < nFlows; i++ {
			src := gpus[rng.Intn(len(gpus))]
			dst := gpus[rng.Intn(len(gpus))]
			for dst == src {
				dst = gpus[rng.Intn(len(gpus))]
			}
			net.Send(src, dst, 1e15, func(sim.VTime) {})
		}

		// Rates are computed by a coalesced secondary event at t=0; run the
		// engine up to just after it, then inspect.
		eng.Schedule(sim.NewFuncEvent(1e-12, func(sim.VTime) error {
			eng.Terminate()
			return nil
		}))
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		usage := map[DirLink]float64{}
		flowsOn := map[DirLink][]*flow{}
		for _, f := range net.flows {
			if f.rate <= 0 {
				t.Fatalf("trial %d: flow starved", trial)
			}
			for _, dl := range f.route {
				usage[dl] += f.rate
				flowsOn[dl] = append(flowsOn[dl], f)
			}
		}
		for dl, u := range usage {
			cap := topo.Links[dl.Link].Bandwidth
			if u > cap*(1+1e-9) {
				t.Fatalf("trial %d: link %v overcommitted: %g > %g",
					trial, dl, u, cap)
			}
		}
		for _, f := range net.flows {
			bottlenecked := false
			for _, dl := range f.route {
				cap := topo.Links[dl.Link].Bandwidth
				saturated := usage[dl] >= cap*(1-1e-9)
				if !saturated {
					continue
				}
				maxOther := 0.0
				for _, g := range flowsOn[dl] {
					if g.rate > maxOther {
						maxOther = g.rate
					}
				}
				if f.rate >= maxOther*(1-1e-9) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				t.Fatalf("trial %d: flow rate %g not max-min bottlenecked",
					trial, f.rate)
			}
		}
	}
}

// Conservation: total delivered bytes equal total sent bytes regardless of
// interleaving.
func TestByteConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		eng := sim.NewSerialEngine()
		topo := Ring(Config{
			NumGPUs: 6, LinkBandwidth: 50e9, HostBandwidth: 10e9,
		})
		gpus := topo.GPUs()
		net := NewFlowNetwork(eng, topo)
		var sent float64
		delivered := 0
		n := 5 + rng.Intn(10)
		for i := 0; i < n; i++ {
			bytes := float64(1+rng.Intn(1000)) * 1e6
			sent += bytes
			at := sim.VTime(rng.Float64()) * sim.Sec
			src := gpus[rng.Intn(len(gpus))]
			dst := gpus[rng.Intn(len(gpus))]
			eng.Schedule(sim.NewFuncEvent(at, func(sim.VTime) error {
				net.Send(src, dst, bytes, func(sim.VTime) { delivered++ })
				return nil
			}))
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if delivered != n {
			t.Fatalf("trial %d: delivered %d of %d", trial, delivered, n)
		}
		if net.TotalBytes != sent {
			t.Fatalf("trial %d: TotalBytes %g, sent %g",
				trial, net.TotalBytes, sent)
		}
		if net.InFlight() != 0 {
			t.Fatalf("trial %d: %d flows leaked", trial, net.InFlight())
		}
	}
}

func TestIdealNetwork(t *testing.T) {
	eng := sim.NewSerialEngine()
	net := NewIdealNetwork(eng, 100e9, 1*sim.USec)
	var d1, d2 sim.VTime
	net.Send(0, 1, 100e9, func(now sim.VTime) { d1 = now })
	net.Send(0, 1, 100e9, func(now sim.VTime) { d2 = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// No sharing: both complete in 1 s.
	approx(t, d1, 1*sim.Sec+1*sim.USec, 1e-9, "ideal flow 1")
	approx(t, d2, 1*sim.Sec+1*sim.USec, 1e-9, "ideal flow 2")
	var local sim.VTime = 5
	net.Send(3, 3, 1e9, func(now sim.VTime) { local = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if local != d1 && local != 1*sim.Sec+1*sim.USec {
		// local send completes at current time (when Run resumed).
		t.Logf("local done at %v", local)
	}
}

// referenceRates is a from-scratch max-min solve (the pre-incremental
// algorithm): rebuild every per-link flow list from the current flow set,
// then run progressive filling. The incremental allocator must match it
// bit-for-bit — same capacity resets, same freeze order, same charge order —
// so the comparison below uses ==, not a tolerance.
func referenceRates(net *FlowNetwork) map[int]float64 {
	type ls struct {
		cap    float64
		active int
		flows  []*flow
	}
	links := map[DirLink]*ls{}
	for _, f := range net.ordered { // ascending flow id
		for _, dl := range f.route {
			st := links[dl]
			if st == nil {
				st = &ls{}
				links[dl] = st
			}
			st.flows = append(st.flows, f)
		}
	}
	var keys []DirLink
	for k := range links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Link != keys[j].Link {
			return keys[i].Link < keys[j].Link
		}
		return keys[i].Forward && !keys[j].Forward
	})
	for _, k := range keys {
		st := links[k]
		st.cap = net.topo.Links[k.Link].Bandwidth
		st.active = len(st.flows)
	}
	rates := map[int]float64{}
	for len(rates) < len(net.ordered) {
		var bn *ls
		best := math.Inf(1)
		for _, k := range keys {
			st := links[k]
			if st.active == 0 {
				continue
			}
			fair := st.cap / float64(st.active)
			if fair < best {
				best = fair
				bn = st
			}
		}
		if bn == nil {
			break
		}
		for _, f := range bn.flows {
			if _, done := rates[f.id]; done {
				continue
			}
			rates[f.id] = best
			for _, dl := range f.route {
				st := links[dl]
				st.cap -= best
				if st.cap < 0 {
					st.cap = 0
				}
				st.active--
			}
		}
	}
	return rates
}

// After an arbitrary add/complete history — which exercises attach/detach,
// the persistent link sets, the order-preserving removals, and flow-object
// recycling — the incremental solve must equal the from-scratch solve
// exactly.
func TestMaxMinMatchesReferenceSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		eng := sim.NewSerialEngine()
		topo := Mesh(3, 3, Config{
			LinkBandwidth: float64(10+rng.Intn(90)) * 1e9,
			HostBandwidth: 10e9,
		})
		gpus := topo.GPUs()
		net := NewFlowNetwork(eng, topo)

		// Random traffic over random times: sends keep arriving while
		// earlier flows complete, so the persistent link state sees plenty
		// of attach/detach churn (and the free list sees reuse).
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			at := sim.VTime(rng.Float64()) * sim.Sec
			bytes := float64(1+rng.Intn(100)) * 1e9
			src := gpus[rng.Intn(len(gpus))]
			dst := gpus[rng.Intn(len(gpus))]
			for dst == src {
				dst = gpus[rng.Intn(len(gpus))]
			}
			eng.Schedule(sim.NewFuncEvent(at, func(sim.VTime) error {
				net.Send(src, dst, bytes, func(sim.VTime) {})
				return nil
			}))
		}
		// Stop at a random mid-run instant and compare solves over whatever
		// is in flight.
		stopAt := sim.VTime(rng.Float64()) * sim.Sec
		eng.Schedule(sim.NewFuncEvent(stopAt, func(sim.VTime) error {
			eng.Terminate()
			return nil
		}))
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}

		want := referenceRates(net)
		net.computeRates()
		if len(want) != len(net.flows) {
			t.Fatalf("trial %d: reference solved %d flows, have %d",
				trial, len(want), len(net.flows))
		}
		for _, f := range net.ordered {
			if f.rate != want[f.id] {
				t.Fatalf("trial %d: flow %d rate %g != reference %g",
					trial, f.id, f.rate, want[f.id])
			}
		}
	}
}

// Flow objects are recycled through the free list; a recycled object's
// pending stale delivery events must never complete its next life early.
func TestFlowPoolingReusesObjects(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	delivered := 0
	// Chain: each completed transfer launches the next, so every flow after
	// the first draws the same object from the free list.
	var next func(k int) func(sim.VTime)
	next = func(k int) func(sim.VTime) {
		return func(sim.VTime) {
			delivered++
			if k > 0 {
				net.Send(n[0], n[2], 10e9, next(k-1))
			}
		}
	}
	net.Send(n[0], n[2], 10e9, next(9))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 10 {
		t.Fatalf("delivered %d of 10 chained transfers", delivered)
	}
	if net.InFlight() != 0 {
		t.Fatalf("%d flows leaked", net.InFlight())
	}
	if len(net.freeFlows) != 1 {
		t.Fatalf("free list has %d objects, want 1 (reuse broken)",
			len(net.freeFlows))
	}
}
