package network

import (
	"math/rand"
	"testing"

	"triosim/internal/sim"
)

// Failure-injection and adversarial-condition tests for the network models.

func TestSendPanicsOnDisconnectedNodes(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo := NewTopology()
	a := topo.AddNode("a", GPUNode)
	b := topo.AddNode("b", GPUNode)
	net := NewFlowNetwork(eng, topo)
	defer func() {
		if recover() == nil {
			t.Fatal("Send over a disconnected pair must panic")
		}
	}()
	net.Send(a, b, 1e9, func(sim.VTime) {})
}

func TestZeroBandwidthLinkStallsFlowUntilRestored(t *testing.T) {
	// A degraded-to-zero link starves the flow (rate 0); the flow network
	// must not crash and must not deliver.
	eng := sim.NewSerialEngine()
	topo := NewTopology()
	a := topo.AddNode("a", GPUNode)
	b := topo.AddNode("b", GPUNode)
	topo.AddLink(a, b, 0, 0)
	net := NewFlowNetwork(eng, topo)
	delivered := false
	net.Send(a, b, 1e9, func(sim.VTime) { delivered = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("flow over a dead link delivered")
	}
	if net.InFlight() != 1 {
		t.Fatalf("starved flow should stay in flight, got %d", net.InFlight())
	}
}

func TestTinyAndHugeTransfers(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	var tiny, huge sim.VTime
	net.Send(n[0], n[1], 1, func(now sim.VTime) { tiny = now })
	net.Send(n[1], n[2], 1e15, func(now sim.VTime) { huge = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tiny <= 0 || tiny > 1*sim.MSec {
		t.Fatalf("1-byte transfer took %v", tiny)
	}
	// 1 PB over 100 GB/s = 10,000 s.
	approx(t, huge, 10000*sim.Sec+1*sim.USec, 1e-6, "petabyte flow")
}

func TestZeroByteSendDeliversImmediately(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo, n := lineTopo()
	net := NewFlowNetwork(eng, topo)
	fired := false
	net.Send(n[0], n[2], 0, func(now sim.VTime) {
		fired = true
		if now != 0 {
			t.Fatalf("zero-byte send at %v", now)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("zero-byte send lost")
	}
}

// Property: with random degradations (including repeated SetLinkBandwidth
// between bursts), the network still delivers every flow over live links.
func TestDegradedFabricStillDeliversProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		eng := sim.NewSerialEngine()
		topo := Switch(Config{
			NumGPUs: 6, LinkBandwidth: 100e9, HostBandwidth: 10e9,
		})
		// Degrade (but never kill) a few random links.
		for i := 0; i < 3; i++ {
			l := rng.Intn(6) // GPU-switch links are first
			factor := 1 + rng.Float64()*9
			topo.SetLinkBandwidth(l, 100e9/factor)
		}
		net := NewFlowNetwork(eng, topo)
		gpus := topo.GPUs()
		delivered := 0
		nSends := 10 + rng.Intn(10)
		for i := 0; i < nSends; i++ {
			src := gpus[rng.Intn(len(gpus))]
			dst := gpus[rng.Intn(len(gpus))]
			for dst == src {
				dst = gpus[rng.Intn(len(gpus))]
			}
			net.Send(src, dst, float64(1+rng.Intn(100))*1e6,
				func(sim.VTime) { delivered++ })
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if delivered != nSends {
			t.Fatalf("trial %d: delivered %d of %d", trial, delivered, nSends)
		}
	}
}

func TestRampBytesReducesEffectiveRate(t *testing.T) {
	run := func(ramp float64) sim.VTime {
		eng := sim.NewSerialEngine()
		topo, n := lineTopo()
		net := NewFlowNetwork(eng, topo)
		net.RampBytes = ramp
		var done sim.VTime
		net.Send(n[0], n[1], 4e6, func(now sim.VTime) { done = now })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	fast := run(0)
	slow := run(4e6) // equal to the message: 50% achieved bandwidth
	ratio := float64(slow) / float64(fast)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("ramp at message size should halve throughput, ratio %.2f",
			ratio)
	}
}
