// Package network implements TrioSim's lightweight network models.
//
// The default model is flow-based packet switching (paper §4.5): a message
// is routed over the shortest path, bandwidth on every traversed link is
// shared max-min fairly among in-flight messages, and a delivery event is
// scheduled assuming the allocation stays constant; whenever a message
// starts or finishes, allocations are recomputed and the delivery events of
// all in-transit messages are rescheduled (Figure 5 semantics).
//
// The model is swappable: PhotonicNetwork implements the same Network
// interface with circuit-switching semantics (case study §7.1), and
// IdealNetwork provides an uncontended reference for tests and ablations.
package network

import (
	"fmt"
	"sort"

	"triosim/internal/sim"
)

// NodeID identifies a node (GPU, switch, or host) in a topology.
type NodeID int

// NodeKind classifies topology nodes.
type NodeKind int

// Node kinds.
const (
	GPUNode NodeKind = iota
	SwitchNode
	HostNode
)

// Node is a vertex in the interconnect graph.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
	// Machine is the physical machine (node enclosure) this vertex belongs
	// to, or -1 for fabric elements that belong to no machine (spine/leaf
	// switches, the host). Hierarchical collectives use it to split ranks
	// into intra-machine groups.
	Machine int
}

// Link tiers. A tier classifies a link by its position in the datacenter
// hierarchy; hierarchical collectives and per-tier telemetry key off it.
// Single-node topologies leave Tier empty ("untiered").
const (
	TierNVLink = "nvlink" // intra-machine GPU interconnect
	TierNIC    = "nic"    // GPU/machine to first-hop fabric switch
	TierFabric = "fabric" // switch-to-switch fabric
	TierHost   = "host"   // host staging links
)

// Link is a full-duplex edge: each direction has independent Bandwidth.
type Link struct {
	ID        int
	A, B      NodeID
	Bandwidth float64 // bytes/s per direction
	Latency   sim.VTime
	// Tier labels the link's hierarchy level (TierNVLink, TierNIC,
	// TierFabric, TierHost); empty on untiered (single-node) topologies.
	Tier string
}

// DirLink is one direction of a link, the unit of bandwidth accounting.
type DirLink struct {
	Link int
	// Forward is true for the A→B direction.
	Forward bool
}

// Topology is the interconnect graph.
type Topology struct {
	Nodes []Node
	Links []Link

	adj        map[NodeID][]int // node -> incident link IDs
	routeCache map[[2]NodeID][]DirLink

	// router, when set by a hierarchical generator, computes shortest
	// paths structurally (rail lookup, dimension-ordered routing) instead
	// of BFS — O(path) instead of O(V+E) per new pair, which matters at
	// 10k nodes. Results are cached like BFS routes.
	router func(src, dst NodeID) []DirLink

	tiered   bool // any link carries a non-empty Tier
	machines int  // max assigned Machine + 1
	// capGen increments on every SetLinkBandwidth so the flow solver can
	// detect capacity changes that arrive without an explicit dirty mark
	// and fall back to a full re-solve (preserving the historical
	// "capacities are re-read every solve" semantics).
	capGen int
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		adj:        map[NodeID][]int{},
		routeCache: map[[2]NodeID][]DirLink{},
	}
}

// AddNode appends a node and returns its ID. The node starts unassigned to
// any machine (Machine == -1); see SetMachine.
func (t *Topology) AddNode(name string, kind NodeKind) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Name: name, Kind: kind,
		Machine: -1})
	return id
}

// SetMachine assigns node n to machine m (0-based). Machine indices are
// expected to be dense; Machines() reports max+1.
func (t *Topology) SetMachine(n NodeID, m int) {
	t.Nodes[n].Machine = m
	if m+1 > t.machines {
		t.machines = m + 1
	}
}

// MachineOf returns the machine index of n, or -1 for fabric elements.
func (t *Topology) MachineOf(n NodeID) int { return t.Nodes[n].Machine }

// Machines returns the number of machines declared via SetMachine (0 for
// single-node topologies that never assign machines).
func (t *Topology) Machines() int { return t.machines }

// Tiered reports whether any link carries a tier label — the signal that
// this topology has an intra/inter-machine hierarchy worth exploiting.
func (t *Topology) Tiered() bool { return t.tiered }

// AddLink connects a and b full-duplex and returns the link ID.
func (t *Topology) AddLink(a, b NodeID, bandwidth float64,
	latency sim.VTime) int {
	id := len(t.Links)
	t.Links = append(t.Links, Link{
		ID: id, A: a, B: b, Bandwidth: bandwidth, Latency: latency,
	})
	t.adj[a] = append(t.adj[a], id)
	t.adj[b] = append(t.adj[b], id)
	t.routeCache = map[[2]NodeID][]DirLink{}
	return id
}

// AddLinkTiered is AddLink plus a hierarchy tier label on the new link.
func (t *Topology) AddLinkTiered(a, b NodeID, bandwidth float64,
	latency sim.VTime, tier string) int {
	id := t.AddLink(a, b, bandwidth, latency)
	t.Links[id].Tier = tier
	if tier != "" {
		t.tiered = true
	}
	return id
}

// SetRouter installs a structural routing function consulted by Route
// before falling back to BFS. The function must return a valid directed
// src→dst path (contiguous, correct endpoints) or nil to decline the pair;
// hierarchical generators install per-topology closed-form routers so a
// 10k-node cluster never pays O(V+E) BFS per pair.
func (t *Topology) SetRouter(r func(src, dst NodeID) []DirLink) {
	t.router = r
	t.routeCache = map[[2]NodeID][]DirLink{}
}

// SetLinkBandwidth changes a link's per-direction bandwidth (used by the Hop
// case study to inject heterogeneous slowdowns).
func (t *Topology) SetLinkBandwidth(linkID int, bandwidth float64) {
	t.Links[linkID].Bandwidth = bandwidth
	t.capGen++
}

// CapacityGen returns the bandwidth-change generation counter (see capGen).
func (t *Topology) CapacityGen() int { return t.capGen }

// LinksOf returns the IDs of links incident to n.
func (t *Topology) LinksOf(n NodeID) []int { return t.adj[n] }

// Neighbor returns the node on the other end of link l from n.
func (t *Topology) Neighbor(l int, n NodeID) NodeID {
	lk := t.Links[l]
	if lk.A == n {
		return lk.B
	}
	return lk.A
}

// Route returns the directed links of a shortest path (minimum hop count,
// deterministic tie-break by link ID) from src to dst, or an error if the
// nodes are disconnected. Routes are cached.
func (t *Topology) Route(src, dst NodeID) ([]DirLink, error) {
	if src == dst {
		return nil, nil
	}
	key := [2]NodeID{src, dst}
	if r, ok := t.routeCache[key]; ok {
		return r, nil
	}
	if t.router != nil {
		if r := t.router(src, dst); r != nil {
			t.routeCache[key] = r
			return r, nil
		}
	}

	// BFS with deterministic neighbor ordering.
	prev := map[NodeID]DirLink{}
	visited := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	for len(queue) > 0 && !visited[dst] {
		n := queue[0]
		queue = queue[1:]
		// Hosts are endpoints, never transit: GPU↔GPU traffic must not
		// shortcut through the host's staging links.
		if t.Nodes[n].Kind == HostNode && n != src {
			continue
		}
		links := append([]int(nil), t.adj[n]...)
		sort.Ints(links)
		for _, l := range links {
			m := t.Neighbor(l, n)
			if visited[m] {
				continue
			}
			visited[m] = true
			prev[m] = DirLink{Link: l, Forward: t.Links[l].A == n}
			queue = append(queue, m)
		}
	}
	if !visited[dst] {
		return nil, fmt.Errorf("network: no route %d→%d", src, dst)
	}

	var rev []DirLink
	for n := dst; n != src; {
		dl := prev[n]
		rev = append(rev, dl)
		if dl.Forward {
			n = t.Links[dl.Link].A
		} else {
			n = t.Links[dl.Link].B
		}
	}
	route := make([]DirLink, len(rev))
	for i := range rev {
		route[i] = rev[len(rev)-1-i]
	}
	t.routeCache[key] = route
	return route, nil
}

// RouteLatency sums the latencies of the route's links.
func (t *Topology) RouteLatency(route []DirLink) sim.VTime {
	var total sim.VTime
	for _, dl := range route {
		total += t.Links[dl.Link].Latency
	}
	return total
}

// GPUs returns the IDs of GPU nodes in insertion order.
func (t *Topology) GPUs() []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Kind == GPUNode {
			out = append(out, n.ID)
		}
	}
	return out
}

// Host returns the first host node's ID, or -1 if none.
func (t *Topology) Host() NodeID {
	for _, n := range t.Nodes {
		if n.Kind == HostNode {
			return n.ID
		}
	}
	return -1
}

// ---- Builders ----

// Config parameterizes the standard topology builders.
type Config struct {
	NumGPUs       int
	LinkBandwidth float64
	LinkLatency   sim.VTime
	HostBandwidth float64
	HostLatency   sim.VTime
}

func addGPUs(t *Topology, n int) []NodeID {
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = t.AddNode(fmt.Sprintf("gpu%d", i), GPUNode)
	}
	return ids
}

// addHostAll connects a host node directly to every GPU (staging path for
// input batches).
func addHostAll(t *Topology, gpus []NodeID, bw float64, lat sim.VTime) NodeID {
	host := t.AddNode("host", HostNode)
	for _, g := range gpus {
		t.AddLink(host, g, bw, lat)
	}
	return host
}

// Ring builds a ring of GPUs plus a host.
func Ring(cfg Config) *Topology {
	t := NewTopology()
	gpus := addGPUs(t, cfg.NumGPUs)
	for i := 0; i < cfg.NumGPUs; i++ {
		j := (i + 1) % cfg.NumGPUs
		if j == i || (cfg.NumGPUs == 2 && i == 1) {
			continue // no self-loop; a 2-ring is a single link
		}
		t.AddLink(gpus[i], gpus[j], cfg.LinkBandwidth, cfg.LinkLatency)
	}
	addHostAll(t, gpus, cfg.HostBandwidth, cfg.HostLatency)
	return t
}

// Switch builds an any-to-any switch (NVSwitch) with one link per GPU.
func Switch(cfg Config) *Topology {
	t := NewTopology()
	gpus := addGPUs(t, cfg.NumGPUs)
	sw := t.AddNode("nvswitch", SwitchNode)
	for _, g := range gpus {
		t.AddLink(g, sw, cfg.LinkBandwidth, cfg.LinkLatency)
	}
	addHostAll(t, gpus, cfg.HostBandwidth, cfg.HostLatency)
	return t
}

// PCIeTree builds GPUs under a PCIe switch with the host at the root; GPU↔GPU
// traffic traverses the switch (P1's arrangement).
func PCIeTree(cfg Config) *Topology {
	t := NewTopology()
	gpus := addGPUs(t, cfg.NumGPUs)
	sw := t.AddNode("pcie-switch", SwitchNode)
	for _, g := range gpus {
		t.AddLink(g, sw, cfg.LinkBandwidth, cfg.LinkLatency)
	}
	host := t.AddNode("host", HostNode)
	t.AddLink(host, sw, cfg.HostBandwidth, cfg.HostLatency)
	return t
}

// Mesh builds a rows×cols 2-D mesh of GPUs (wafer-scale case study) plus a
// host attached to every GPU.
func Mesh(rows, cols int, cfg Config) *Topology {
	t := NewTopology()
	gpus := addGPUs(t, rows*cols)
	at := func(r, c int) NodeID { return gpus[r*cols+c] }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				t.AddLink(at(r, c), at(r, c+1),
					cfg.LinkBandwidth, cfg.LinkLatency)
			}
			if r+1 < rows {
				t.AddLink(at(r, c), at(r+1, c),
					cfg.LinkBandwidth, cfg.LinkLatency)
			}
		}
	}
	addHostAll(t, gpus, cfg.HostBandwidth, cfg.HostLatency)
	return t
}

// RingWithChords builds the Hop case study's ring-based graph: a
// bidirectional ring plus a chord from each node to its most distant node.
func RingWithChords(cfg Config) *Topology {
	t := Ring(cfg)
	gpus := t.GPUs()
	n := len(gpus)
	for i := 0; i < n/2; i++ {
		t.AddLink(gpus[i], gpus[(i+n/2)%n],
			cfg.LinkBandwidth, cfg.LinkLatency)
	}
	return t
}

// DoubleRing builds the Hop case study's double-ring graph: two rings of
// n/2 GPUs each, interconnected node-to-node.
func DoubleRing(cfg Config) *Topology {
	t := NewTopology()
	gpus := addGPUs(t, cfg.NumGPUs)
	half := cfg.NumGPUs / 2
	ring := func(ids []NodeID) {
		for i := 0; i < len(ids); i++ {
			j := (i + 1) % len(ids)
			if j == i || (len(ids) == 2 && i == 1) {
				continue
			}
			t.AddLink(ids[i], ids[j], cfg.LinkBandwidth, cfg.LinkLatency)
		}
	}
	ring(gpus[:half])
	ring(gpus[half:])
	for i := 0; i < half; i++ {
		t.AddLink(gpus[i], gpus[half+i], cfg.LinkBandwidth, cfg.LinkLatency)
	}
	addHostAll(t, gpus, cfg.HostBandwidth, cfg.HostLatency)
	return t
}
