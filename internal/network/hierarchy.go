package network

import (
	"fmt"

	"triosim/internal/sim"
)

// Hierarchical (multi-machine) datacenter topologies. Each generator lays
// out machines of GPUsPerMachine GPUs in machine-major rank order (global
// rank = machine×GPUsPerMachine + local rank), gives every machine an
// NVSwitch for intra-machine traffic (TierNVLink), and differs in the
// inter-machine fabric: rail-optimized fat-tree, dragonfly, or 3D torus.
// Every link carries a tier label and every GPU/switch inside a machine
// carries the machine index, which is what the hierarchy-aware collectives
// and the per-tier telemetry key off.
//
// All three install a structural router: routes are computed from the
// topology's closed form (rail lookup, minimal group paths,
// dimension-ordered torus hops) in O(path length) instead of O(V+E) BFS,
// which is the difference between milliseconds and minutes of setup at
// 10,000 GPUs. Host staging links fall back to BFS (they are single hops).

// ClusterConfig parameterizes the hierarchical topology generators.
type ClusterConfig struct {
	Machines       int
	GPUsPerMachine int

	// Intra-machine GPU↔NVSwitch links.
	NVLinkBandwidth float64
	NVLinkLatency   sim.VTime
	// GPU/machine↔first-hop-fabric links (one NIC per GPU).
	NICBandwidth float64
	NICLatency   sim.VTime
	// Switch↔switch fabric links.
	FabricBandwidth float64
	FabricLatency   sim.VTime
	// Host staging links (input batches).
	HostBandwidth float64
	HostLatency   sim.VTime
}

// normalized clamps degenerate parameters so fuzzing and careless callers
// get a valid (if tiny) cluster instead of a panic.
func (c ClusterConfig) normalized() ClusterConfig {
	if c.Machines < 1 {
		c.Machines = 1
	}
	if c.GPUsPerMachine < 1 {
		c.GPUsPerMachine = 1
	}
	if c.NVLinkBandwidth <= 0 {
		c.NVLinkBandwidth = 300e9
	}
	if c.NICBandwidth <= 0 {
		c.NICBandwidth = 50e9
	}
	if c.FabricBandwidth <= 0 {
		c.FabricBandwidth = c.NICBandwidth
	}
	if c.HostBandwidth <= 0 {
		c.HostBandwidth = 10e9
	}
	return c
}

// addMachineScaffold creates the machine-major GPUs, one NVSwitch per
// machine with TierNVLink links, and the host with TierHost staging links.
// Returns the GPU IDs (machine-major) and per-machine NVSwitch IDs.
func addMachineScaffold(t *Topology, c ClusterConfig) ([]NodeID, []NodeID) {
	gpus := make([]NodeID, c.Machines*c.GPUsPerMachine)
	for i := range gpus {
		gpus[i] = t.AddNode(fmt.Sprintf("gpu%d", i), GPUNode)
		t.SetMachine(gpus[i], i/c.GPUsPerMachine)
	}
	nvsw := make([]NodeID, c.Machines)
	for m := range nvsw {
		nvsw[m] = t.AddNode(fmt.Sprintf("nvswitch%d", m), SwitchNode)
		t.SetMachine(nvsw[m], m)
		for g := 0; g < c.GPUsPerMachine; g++ {
			t.AddLinkTiered(gpus[m*c.GPUsPerMachine+g], nvsw[m],
				c.NVLinkBandwidth, c.NVLinkLatency, TierNVLink)
		}
	}
	host := t.AddNode("host", HostNode)
	for _, g := range gpus {
		t.AddLinkTiered(host, g, c.HostBandwidth, c.HostLatency, TierHost)
	}
	return gpus, nvsw
}

// dirFrom returns the directed traversal of link l starting at node from.
func dirFrom(t *Topology, l int, from NodeID) DirLink {
	return DirLink{Link: l, Forward: t.Links[l].A == from}
}

// gpuCoords resolves a GPU NodeID to (machine, local rank), or ok=false
// for non-GPU nodes (generators add GPUs first, so IDs 0..n-1 are GPUs).
func gpuCoords(t *Topology, n NodeID, gpusPerMachine, total int) (
	machine, rank int, ok bool) {
	if int(n) >= total || t.Nodes[n].Kind != GPUNode {
		return 0, 0, false
	}
	return int(n) / gpusPerMachine, int(n) % gpusPerMachine, true
}

// RailFatTree builds a rail-optimized two-level fat tree: local rank r of
// every machine attaches through its own NIC to rail r's leaf switches
// (machines grouped leafWidth per leaf), and every leaf of every rail
// connects to every spine. Same-rank traffic stays on its rail (the
// rail-optimized property that makes inter-machine ring/tree collectives
// contention-free); cross-rank traffic crosses a spine.
func RailFatTree(c ClusterConfig, leafWidth, spines int) *Topology {
	c = c.normalized()
	if leafWidth < 1 {
		leafWidth = 1
	}
	if spines < 1 {
		spines = 1
	}
	t := NewTopology()
	gpus, nvsw := addMachineScaffold(t, c)
	G := c.GPUsPerMachine
	nLeaves := (c.Machines + leafWidth - 1) / leafWidth

	// leaf[r][l] serves local rank r of machines [l·leafWidth, …).
	leaves := make([][]NodeID, G)
	nicLink := make([]int, c.Machines*G) // GPU (machine-major) → its leaf
	for r := 0; r < G; r++ {
		leaves[r] = make([]NodeID, nLeaves)
		for l := 0; l < nLeaves; l++ {
			leaves[r][l] = t.AddNode(
				fmt.Sprintf("rail%d-leaf%d", r, l), SwitchNode)
		}
	}
	for m := 0; m < c.Machines; m++ {
		for r := 0; r < G; r++ {
			g := gpus[m*G+r]
			nicLink[m*G+r] = t.AddLinkTiered(g, leaves[r][m/leafWidth],
				c.NICBandwidth, c.NICLatency, TierNIC)
		}
	}
	// spineLink[r][l][s]: rail r leaf l ↔ spine s.
	spineIDs := make([]NodeID, spines)
	for s := range spineIDs {
		spineIDs[s] = t.AddNode(fmt.Sprintf("spine%d", s), SwitchNode)
	}
	spineLink := make([][][]int, G)
	for r := 0; r < G; r++ {
		spineLink[r] = make([][]int, nLeaves)
		for l := 0; l < nLeaves; l++ {
			spineLink[r][l] = make([]int, spines)
			for s := 0; s < spines; s++ {
				spineLink[r][l][s] = t.AddLinkTiered(leaves[r][l],
					spineIDs[s], c.FabricBandwidth, c.FabricLatency,
					TierFabric)
			}
		}
	}

	total := c.Machines * G
	t.SetRouter(func(src, dst NodeID) []DirLink {
		m1, r1, ok := gpuCoords(t, src, G, total)
		if !ok {
			return nil
		}
		m2, r2, ok := gpuCoords(t, dst, G, total)
		if !ok {
			return nil
		}
		if m1 == m2 {
			// Intra-machine: up to the NVSwitch and back down.
			return []DirLink{
				dirFrom(t, nvLinkOf(t, src, nvsw[m1]), src),
				dirFrom(t, nvLinkOf(t, dst, nvsw[m1]), nvsw[m1]),
			}
		}
		l1, l2 := m1/leafWidth, m2/leafWidth
		up := dirFrom(t, nicLink[m1*G+r1], src)
		down := dirFrom(t, nicLink[m2*G+r2], leaves[r2][l2])
		if r1 == r2 && l1 == l2 {
			// Same rail, same leaf: two NIC hops.
			return []DirLink{up, down}
		}
		// Across the spine layer (also the cross-rail path): pick a spine
		// deterministically, spread by endpoint coordinates.
		s := (l1 + l2 + r1 + r2) % spines
		return []DirLink{
			up,
			dirFrom(t, spineLink[r1][l1][s], leaves[r1][l1]),
			dirFrom(t, spineLink[r2][l2][s], spineIDs[s]),
			down,
		}
	})
	return t
}

// nvLinkOf finds the NVLink connecting GPU g to NVSwitch sw. Each GPU has
// exactly one nvlink plus one host and one-or-more fabric links, so this
// tiny scan stays O(degree) and runs only on route-cache misses.
func nvLinkOf(t *Topology, g, sw NodeID) int {
	for _, l := range t.adj[g] {
		lk := t.Links[l]
		if lk.Tier == TierNVLink && (lk.A == sw || lk.B == sw) {
			return l
		}
	}
	panic(fmt.Sprintf("network: no nvlink %d↔%d", g, sw))
}

// Dragonfly builds a dragonfly of machines: each machine's router connects
// its GPUs' NICs; routers within a group are fully connected; every group
// pair is joined by one global link. Minimal routing (local, global, local)
// with at most three fabric hops.
func Dragonfly(c ClusterConfig, groupSize int) *Topology {
	c = c.normalized()
	if groupSize < 1 {
		groupSize = 1
	}
	if groupSize > c.Machines {
		groupSize = c.Machines
	}
	t := NewTopology()
	gpus, nvsw := addMachineScaffold(t, c)
	G := c.GPUsPerMachine
	groups := (c.Machines + groupSize - 1) / groupSize

	routers := make([]NodeID, c.Machines)
	nicLink := make([]int, c.Machines*G)
	for m := 0; m < c.Machines; m++ {
		routers[m] = t.AddNode(fmt.Sprintf("dfr%d", m), SwitchNode)
		t.SetMachine(routers[m], m)
		for r := 0; r < G; r++ {
			nicLink[m*G+r] = t.AddLinkTiered(gpus[m*G+r], routers[m],
				c.NICBandwidth, c.NICLatency, TierNIC)
		}
	}
	groupOf := func(m int) int { return m / groupSize }
	// localLink[a][b] within a group, keyed by machine indices (a < b).
	localLink := map[[2]int]int{}
	for g := 0; g < groups; g++ {
		lo := g * groupSize
		hi := lo + groupSize
		if hi > c.Machines {
			hi = c.Machines
		}
		for a := lo; a < hi; a++ {
			for b := a + 1; b < hi; b++ {
				localLink[[2]int{a, b}] = t.AddLinkTiered(routers[a],
					routers[b], c.FabricBandwidth, c.FabricLatency,
					TierFabric)
			}
		}
	}
	// globalLink[i][j] (i < j): one link per group pair, attached to a
	// deterministically chosen router in each group.
	sizeOf := func(g int) int {
		lo := g * groupSize
		hi := lo + groupSize
		if hi > c.Machines {
			hi = c.Machines
		}
		return hi - lo
	}
	holder := func(g, peer int) int { // machine in g holding the link to peer
		return g*groupSize + peer%sizeOf(g)
	}
	globalLink := map[[2]int]int{}
	for i := 0; i < groups; i++ {
		for j := i + 1; j < groups; j++ {
			globalLink[[2]int{i, j}] = t.AddLinkTiered(
				routers[holder(i, j)], routers[holder(j, i)],
				c.FabricBandwidth, c.FabricLatency, TierFabric)
		}
	}
	localHop := func(a, b int) (DirLink, bool) {
		if a == b {
			return DirLink{}, false
		}
		if a > b {
			l := localLink[[2]int{b, a}]
			return dirFrom(t, l, routers[a]), true
		}
		return dirFrom(t, localLink[[2]int{a, b}], routers[a]), true
	}

	total := c.Machines * G
	t.SetRouter(func(src, dst NodeID) []DirLink {
		m1, _, ok := gpuCoords(t, src, G, total)
		if !ok {
			return nil
		}
		m2, _, ok := gpuCoords(t, dst, G, total)
		if !ok {
			return nil
		}
		if m1 == m2 {
			return []DirLink{
				dirFrom(t, nvLinkOf(t, src, nvsw[m1]), src),
				dirFrom(t, nvLinkOf(t, dst, nvsw[m1]), nvsw[m1]),
			}
		}
		path := []DirLink{dirFrom(t, nicLink[int(src)], src)}
		g1, g2 := groupOf(m1), groupOf(m2)
		if g1 == g2 {
			if hop, ok := localHop(m1, m2); ok {
				path = append(path, hop)
			}
		} else {
			h1 := holder(g1, g2) // exit router in src group
			h2 := holder(g2, g1) // entry router in dst group
			if hop, ok := localHop(m1, h1); ok {
				path = append(path, hop)
			}
			lo, hi := g1, g2
			if lo > hi {
				lo, hi = hi, lo
			}
			path = append(path,
				dirFrom(t, globalLink[[2]int{lo, hi}], routers[h1]))
			if hop, ok := localHop(h2, m2); ok {
				path = append(path, hop)
			}
		}
		path = append(path, dirFrom(t, nicLink[int(dst)], routers[m2]))
		return path
	})
	return t
}

// Torus3D builds an X×Y×Z torus of machines: each machine's router has
// bidirectional fabric links to its six neighbors (with wraparound), GPUs
// reach the router through per-GPU NICs, and routing is dimension-ordered
// (x, then y, then z; shorter wrap direction, positive on ties).
func Torus3D(c ClusterConfig, x, y, z int) *Topology {
	c = c.normalized()
	if x < 1 {
		x = 1
	}
	if y < 1 {
		y = 1
	}
	if z < 1 {
		z = 1
	}
	c.Machines = x * y * z
	t := NewTopology()
	gpus, nvsw := addMachineScaffold(t, c)
	G := c.GPUsPerMachine

	routers := make([]NodeID, c.Machines)
	nicLink := make([]int, c.Machines*G)
	at := func(i, j, k int) int { return (i*y+j)*z + k }
	for m := 0; m < c.Machines; m++ {
		routers[m] = t.AddNode(fmt.Sprintf("torus-r%d", m), SwitchNode)
		t.SetMachine(routers[m], m)
		for r := 0; r < G; r++ {
			nicLink[m*G+r] = t.AddLinkTiered(gpus[m*G+r], routers[m],
				c.NICBandwidth, c.NICLatency, TierNIC)
		}
	}
	// torusLink[a][b] keyed by (min, max) machine index; dimensions with
	// fewer than three positions get a single link, not a doubled pair.
	torusLink := map[[2]int]int{}
	addTorus := func(a, b int) {
		if a == b {
			return
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if _, dup := torusLink[key]; dup {
			return
		}
		torusLink[key] = t.AddLinkTiered(routers[a], routers[b],
			c.FabricBandwidth, c.FabricLatency, TierFabric)
	}
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				addTorus(at(i, j, k), at((i+1)%x, j, k))
				addTorus(at(i, j, k), at(i, (j+1)%y, k))
				addTorus(at(i, j, k), at(i, j, (k+1)%z))
			}
		}
	}
	hop := func(a, b int) DirLink {
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		return dirFrom(t, torusLink[key], routers[a])
	}
	// step advances one position along a dimension of size n toward dst,
	// taking the shorter wrap direction (positive on ties).
	step := func(cur, dst, n int) int {
		if cur == dst {
			return cur
		}
		fwd := (dst - cur + n) % n
		bwd := (cur - dst + n) % n
		if fwd <= bwd {
			return (cur + 1) % n
		}
		return (cur - 1 + n) % n
	}

	total := c.Machines * G
	t.SetRouter(func(src, dst NodeID) []DirLink {
		m1, _, ok := gpuCoords(t, src, G, total)
		if !ok {
			return nil
		}
		m2, _, ok := gpuCoords(t, dst, G, total)
		if !ok {
			return nil
		}
		if m1 == m2 {
			return []DirLink{
				dirFrom(t, nvLinkOf(t, src, nvsw[m1]), src),
				dirFrom(t, nvLinkOf(t, dst, nvsw[m1]), nvsw[m1]),
			}
		}
		path := []DirLink{dirFrom(t, nicLink[int(src)], src)}
		i1, j1, k1 := m1/(y*z), (m1/z)%y, m1%z
		i2, j2, k2 := m2/(y*z), (m2/z)%y, m2%z
		for i1 != i2 {
			ni := step(i1, i2, x)
			path = append(path, hop(at(i1, j1, k1), at(ni, j1, k1)))
			i1 = ni
		}
		for j1 != j2 {
			nj := step(j1, j2, y)
			path = append(path, hop(at(i1, j1, k1), at(i1, nj, k1)))
			j1 = nj
		}
		for k1 != k2 {
			nk := step(k1, k2, z)
			path = append(path, hop(at(i1, j1, k1), at(i1, j1, nk)))
			k1 = nk
		}
		path = append(path, dirFrom(t, nicLink[int(dst)], routers[m2]))
		return path
	})
	return t
}
