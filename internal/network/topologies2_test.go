package network

import (
	"testing"

	"triosim/internal/sim"
)

func TestFatTree(t *testing.T) {
	topo := FatTree(cfg(8), 4, 2, 400e9)
	gpus := topo.GPUs()
	if len(gpus) != 8 {
		t.Fatalf("GPUs = %d", len(gpus))
	}
	// Same leaf: 2 hops (gpu-leaf-gpu).
	r, err := topo.Route(gpus[0], gpus[1])
	if err != nil || len(r) != 2 {
		t.Fatalf("same-leaf route = %v, %v", r, err)
	}
	// Cross leaf: 4 hops (gpu-leaf-spine-leaf-gpu).
	r, err = topo.Route(gpus[0], gpus[7])
	if err != nil || len(r) != 4 {
		t.Fatalf("cross-leaf route = %v, %v", r, err)
	}
}

func TestFatTreeOversubscription(t *testing.T) {
	// 8 GPUs per leaf, one thin spine uplink: cross-leaf flows contend on
	// the uplink while same-leaf flows do not.
	eng := sim.NewSerialEngine()
	topo := FatTree(Config{
		NumGPUs: 16, LinkBandwidth: 100e9, HostBandwidth: 10e9,
	}, 8, 1, 100e9)
	net := NewFlowNetwork(eng, topo)
	gpus := topo.GPUs()
	var crossA, crossB, local sim.VTime
	net.Send(gpus[0], gpus[8], 100e9, func(now sim.VTime) { crossA = now })
	net.Send(gpus[1], gpus[9], 100e9, func(now sim.VTime) { crossB = now })
	net.Send(gpus[2], gpus[3], 100e9, func(now sim.VTime) { local = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Two cross flows share the 100 GB/s uplink → 2 s; local gets 1 s.
	approx(t, local, 1*sim.Sec, 1e-6, "same-leaf flow")
	approx(t, crossA, 2*sim.Sec, 1e-6, "cross-leaf flow A")
	approx(t, crossB, 2*sim.Sec, 1e-6, "cross-leaf flow B")
}

func TestHypercube(t *testing.T) {
	topo := Hypercube(3, cfg(0))
	gpus := topo.GPUs()
	if len(gpus) != 8 {
		t.Fatalf("GPUs = %d", len(gpus))
	}
	// Degree = dims for every node.
	for _, g := range gpus {
		deg := 0
		for _, l := range topo.LinksOf(g) {
			other := topo.Neighbor(l, g)
			if topo.Nodes[other].Kind == GPUNode {
				deg++
			}
		}
		if deg != 3 {
			t.Fatalf("gpu %d degree %d, want 3", g, deg)
		}
	}
	// Route length equals Hamming distance.
	r, err := topo.Route(gpus[0], gpus[7]) // 000 → 111
	if err != nil || len(r) != 3 {
		t.Fatalf("route 0→7 = %v, %v", r, err)
	}
	r, err = topo.Route(gpus[0], gpus[5]) // 000 → 101
	if err != nil || len(r) != 2 {
		t.Fatalf("route 0→5 = %v, %v", r, err)
	}
}

func TestTorusWrapAround(t *testing.T) {
	topo := Torus(4, 4, cfg(0))
	gpus := topo.GPUs()
	// Opposite corner is 2 hops via the wrap links (vs 6 in a plain mesh).
	r, err := topo.Route(gpus[0], gpus[15])
	if err != nil || len(r) != 2 {
		t.Fatalf("torus corner route = %d hops, %v", len(r), err)
	}
	// Row neighbors across the wrap.
	r, err = topo.Route(gpus[0], gpus[3])
	if err != nil || len(r) != 1 {
		t.Fatalf("torus wrap route = %d hops, %v", len(r), err)
	}
}

func TestTorusSmallDimensionsNoDuplicateLinks(t *testing.T) {
	// 2-wide dimensions already have the "wrap" link; no duplicates added.
	topo := Torus(2, 2, cfg(0))
	gpuLinks := 0
	for _, l := range topo.Links {
		if topo.Nodes[l.A].Kind == GPUNode && topo.Nodes[l.B].Kind == GPUNode {
			gpuLinks++
		}
	}
	if gpuLinks != 4 {
		t.Fatalf("2×2 torus has %d GPU links, want 4", gpuLinks)
	}
}

func TestMultiNode(t *testing.T) {
	topo := MultiNode(4, 8, cfg(0), 25e9)
	gpus := topo.GPUs()
	if len(gpus) != 32 {
		t.Fatalf("GPUs = %d", len(gpus))
	}
	// Intra-node: 2 hops through the local NVSwitch.
	r, err := topo.Route(gpus[0], gpus[7])
	if err != nil || len(r) != 2 {
		t.Fatalf("intra-node route = %v, %v", r, err)
	}
	// Inter-node: 4 hops (gpu-nvswitch-cluster-nvswitch-gpu).
	r, err = topo.Route(gpus[0], gpus[8])
	if err != nil || len(r) != 4 {
		t.Fatalf("inter-node route = %v, %v", r, err)
	}
	// The inter-node hop is the thin one.
	var minBW float64 = 1e18
	for _, dl := range r {
		if bw := topo.Links[dl.Link].Bandwidth; bw < minBW {
			minBW = bw
		}
	}
	if minBW != 25e9 {
		t.Fatalf("inter-node bottleneck %g, want 25e9", minBW)
	}
}

func TestMultiNodeAllReduceHitsInterNodeBottleneck(t *testing.T) {
	// A ring AllReduce across 2 nodes is limited by the NIC, not NVLink.
	eng := sim.NewSerialEngine()
	topo := MultiNode(2, 2, Config{
		NumGPUs: 4, LinkBandwidth: 200e9, HostBandwidth: 10e9,
	}, 25e9)
	net := NewFlowNetwork(eng, topo)
	gpus := topo.GPUs()
	var done sim.VTime
	// One cross-node transfer at NVLink-scale volume.
	net.Send(gpus[0], gpus[2], 25e9, func(now sim.VTime) { done = now })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done < 1*sim.Sec {
		t.Fatalf("cross-node transfer finished in %v; NIC limit ignored",
			done)
	}
}
