package timeline

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"

	"triosim/internal/sim"
)

func TestSumAndUnion(t *testing.T) {
	tl := New()
	tl.Add("gpu0", "a", "compute", 0, 2)
	tl.Add("gpu0", "b", "compute", 1, 3) // overlaps a
	tl.Add("gpu1", "c", "comm", 5, 6)

	if got := tl.SumTime(ByPhase("compute")); got != 4 {
		t.Fatalf("SumTime = %v, want 4", got)
	}
	if got := tl.UnionTime(ByPhase("compute")); got != 3 {
		t.Fatalf("UnionTime = %v, want 3", got)
	}
	if got := tl.UnionTime(ByPhase("comm")); got != 1 {
		t.Fatalf("comm UnionTime = %v, want 1", got)
	}
	if got := tl.UnionTime(func(*Interval) bool { return true }); got != 4 {
		t.Fatalf("all UnionTime = %v, want 4 (gap between 3 and 5)", got)
	}
}

func TestSpan(t *testing.T) {
	tl := New()
	if s, e := tl.Span(); s != 0 || e != 0 {
		t.Fatal("empty span not zero")
	}
	tl.Add("x", "a", "p", 2, 4)
	tl.Add("x", "b", "p", 1, 3)
	s, e := tl.Span()
	if s != 1 || e != 4 {
		t.Fatalf("span = [%v, %v]", s, e)
	}
}

func TestFilters(t *testing.T) {
	tl := New()
	tl.Add("gpu0", "a", "compute", 0, 1)
	tl.Add("gpu1", "b", "compute", 0, 2)
	got := tl.SumTime(And(ByResource("gpu1"), ByPhase("compute")))
	if got != 2 {
		t.Fatalf("And filter = %v", got)
	}
	rs := tl.Resources()
	if len(rs) != 2 || rs[0] != "gpu0" || rs[1] != "gpu1" {
		t.Fatalf("Resources = %v", rs)
	}
}

func TestUnionAdjacentIntervals(t *testing.T) {
	tl := New()
	tl.Add("g", "a", "p", 0, 1)
	tl.Add("g", "b", "p", 1, 2) // touching, not overlapping
	if got := tl.UnionTime(ByPhase("p")); got != 2 {
		t.Fatalf("adjacent union = %v, want 2", got)
	}
}

func TestUnionIgnoresEmptyIntervals(t *testing.T) {
	tl := New()
	tl.Add("g", "zero", "p", 5, 5)
	if got := tl.UnionTime(ByPhase("p")); got != 0 {
		t.Fatalf("empty-interval union = %v", got)
	}
}

// Property: union <= sum, and union >= max single duration.
func TestUnionBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		tl := New()
		var maxDur sim.VTime
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			s := sim.VTime(rng.Intn(100))
			d := sim.VTime(1 + rng.Intn(20))
			tl.Add("g", "x", "p", s, s+d)
			if d > maxDur {
				maxDur = d
			}
		}
		sum := tl.SumTime(ByPhase("p"))
		union := tl.UnionTime(ByPhase("p"))
		if union > sum || union < maxDur {
			t.Fatalf("trial %d: union %v, sum %v, max %v",
				trial, union, sum, maxDur)
		}
	}
}

// Property: union equals a brute-force sweep over integer points.
func TestUnionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		tl := New()
		n := 1 + rng.Intn(10)
		type span struct{ s, e int }
		var spans []span
		for i := 0; i < n; i++ {
			s := rng.Intn(50)
			e := s + 1 + rng.Intn(10)
			spans = append(spans, span{s, e})
			tl.Add("g", "x", "p", sim.VTime(s), sim.VTime(e))
		}
		covered := map[int]bool{}
		for _, sp := range spans {
			for x := sp.s; x < sp.e; x++ {
				covered[x] = true
			}
		}
		got := tl.UnionTime(ByPhase("p"))
		if got != sim.VTime(len(covered)) {
			keys := make([]int, 0)
			for k := range covered {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			t.Fatalf("trial %d: union %v, brute force %d", trial, got,
				len(covered))
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tl := New()
	tl.Add("gpu0", "conv2d", "compute", 0, 1e-3)
	tl.Add("net", "allreduce", "comm", 1e-3, 2e-3)
	var buf bytes.Buffer
	if err := tl.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0]["name"] != "conv2d" || events[0]["ph"] != "X" {
		t.Fatalf("bad event: %v", events[0])
	}
	if events[0]["dur"].(float64) != 1000 {
		t.Fatalf("duration should be in microseconds: %v", events[0]["dur"])
	}
}

func TestSummary(t *testing.T) {
	tl := New()
	tl.Add("gpu0", "a", "compute", 0, 1)
	if s := tl.Summary(); s == "" {
		t.Fatal("empty summary")
	}
}
