package timeline

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportHTML(t *testing.T) {
	tl := New()
	tl.Add("gpu0", "conv2d", "compute", 0, 2e-3)
	tl.Add("gpu1", "allreduce-step0", "comm", 1e-3, 3e-3)
	tl.Add("net", "stage-input", "hostload", 0, 5e-4)
	var buf bytes.Buffer
	if err := tl.ExportHTML(&buf, "test timeline"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "<svg", "</svg>", "test timeline",
		"gpu0", "gpu1", "net", "conv2d", "allreduce-step0",
		"#4878cf", "#d65f5f", "#6acc65",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
	// One rect per interval plus one lane background per resource.
	if got := strings.Count(out, "<rect"); got != 3+3 {
		t.Fatalf("rect count = %d, want 6", got)
	}
}

func TestExportHTMLEscapes(t *testing.T) {
	tl := New()
	tl.Add("gpu0", `<script>alert("x")</script>`, "compute", 0, 1)
	var buf bytes.Buffer
	if err := tl.ExportHTML(&buf, "<title>"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Fatal("labels not escaped")
	}
}

func TestExportHTMLEmptyTimeline(t *testing.T) {
	tl := New()
	var buf bytes.Buffer
	if err := tl.ExportHTML(&buf, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("empty export malformed")
	}
}
