package timeline

import (
	"bytes"
	"strings"
	"testing"
)

// TestBreakdownDegenerateLane: a lane whose only activity is instantaneous
// (zero-duration barriers, failure markers) still gets an all-idle breakdown
// row, keeping the HTML table aligned with the SVG lanes.
func TestBreakdownDegenerateLane(t *testing.T) {
	tl := New()
	tl.Add("gpu0", "conv", "compute", 0, 1e-3)
	tl.Add("sync", "barrier-step0", "barrier", 5e-4, 5e-4) // zero duration
	rows := tl.Breakdown()
	if len(rows) != 2 {
		t.Fatalf("got %d breakdown rows, want 2 (degenerate lane dropped)",
			len(rows))
	}
	var sync *ResourceBreakdown
	for i := range rows {
		if rows[i].Resource == "sync" {
			sync = &rows[i]
		}
	}
	if sync == nil {
		t.Fatal("sync lane missing from breakdown")
	}
	if sync.BusySec != 0 || sync.IdleSec <= 0 {
		t.Fatalf("degenerate lane should be all idle: %+v", *sync)
	}
	// The HTML view renders without misalignment: one table row and one lane
	// background per resource.
	var buf bytes.Buffer
	if err := tl.ExportHTML(&buf, "degenerate"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "<td>gpu0</td>")+
		strings.Count(out, "<td>sync</td>"); got != 2 {
		t.Fatalf("breakdown table rows = %d, want 2", got)
	}
	if got := strings.Count(out, `fill="#f0f0f0"`); got != 2 {
		t.Fatalf("lane backgrounds = %d, want 2", got)
	}
}

// TestPhaseColorStable: the well-known phases have pinned colors, and unknown
// phases map to a deterministic palette color — independent of insertion or
// map-iteration order.
func TestPhaseColorStable(t *testing.T) {
	pinned := map[string]string{
		"compute":  "#4878cf",
		"comm":     "#d65f5f",
		"hostload": "#6acc65",
		"fault":    "#ee854a",
		"barrier":  "#956cb4",
		"delay":    "#8c613c",
	}
	for phase, want := range pinned {
		if got := phaseColor(phase); got != want {
			t.Fatalf("phaseColor(%q) = %q, want %q", phase, got, want)
		}
	}
	for _, phase := range []string{"checkpoint", "restart", "custom-phase"} {
		a, b := phaseColor(phase), phaseColor(phase)
		if a != b {
			t.Fatalf("phaseColor(%q) unstable: %q vs %q", phase, a, b)
		}
		if !strings.HasPrefix(a, "#") {
			t.Fatalf("phaseColor(%q) = %q, not a color", phase, a)
		}
	}
}

// TestExportHTMLHighlight: critical intervals render at full opacity with an
// outline, the rest are dimmed, and summary lines appear under the legend.
func TestExportHTMLHighlight(t *testing.T) {
	tl := New()
	tl.Add("gpu0", "on-path", "compute", 0, 1e-3)
	tl.Add("gpu1", "off-path", "compute", 0, 5e-4)
	var buf bytes.Buffer
	err := tl.ExportHTMLHighlight(&buf, "highlight",
		func(iv *Interval) bool { return iv.Label == "on-path" },
		[]string{"critical path: 1 step, 100% compute"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `stroke="#222"`) {
		t.Fatal("critical interval not outlined")
	}
	if !strings.Contains(out, `opacity="0.35"`) {
		t.Fatal("non-critical interval not dimmed")
	}
	if !strings.Contains(out, "critical path: 1 step, 100% compute") {
		t.Fatal("summary line missing")
	}
	// Without an overlay nothing is dimmed or outlined.
	buf.Reset()
	if err := tl.ExportHTML(&buf, "plain"); err != nil {
		t.Fatal(err)
	}
	plain := buf.String()
	if strings.Contains(plain, `opacity="0.35"`) ||
		strings.Contains(plain, `stroke="#222"`) {
		t.Fatal("plain export should not dim or outline")
	}
}
