package timeline

import "sort"

// ResourceBreakdown is one resource's per-phase accounting over the whole
// timeline span. ComputeSec, ExposedCommSec, ExposedHostSec and IdleSec
// partition the span exactly: communication or host staging overlapped by
// compute is hidden (pipelined) and charged to compute, matching the paper's
// exposed-communication notion.
type ResourceBreakdown struct {
	Resource string
	// ComputeSec is the union time the resource spent computing.
	ComputeSec float64
	// CommSec is the union time the resource had communication in flight
	// (overlap with compute included).
	CommSec float64
	// ExposedCommSec is communication time not hidden under compute.
	ExposedCommSec float64
	// HostLoadSec is the union time of host→device staging.
	HostLoadSec float64
	// ExposedHostSec is host staging hidden by neither compute nor comm.
	ExposedHostSec float64
	// IdleSec is the rest of the span.
	IdleSec float64
	// BusySec is the union of all recorded activity.
	BusySec float64
}

// vspan is a half-open [s, e) float interval used by the sweep below.
type vspan struct{ s, e float64 }

// unionSpans sorts and merges overlapping spans.
func unionSpans(in []vspan) []vspan {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].s < in[j].s })
	out := in[:1]
	for _, sp := range in[1:] {
		last := &out[len(out)-1]
		if sp.s <= last.e {
			if sp.e > last.e {
				last.e = sp.e
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// subtractSpans returns a minus b; both must be merged unions.
func subtractSpans(a, b []vspan) []vspan {
	var out []vspan
	j := 0
	for _, sp := range a {
		cur := sp
		for j < len(b) && b[j].e <= cur.s {
			j++
		}
		k := j
		for k < len(b) && b[k].s < cur.e {
			if b[k].s > cur.s {
				out = append(out, vspan{cur.s, b[k].s})
			}
			if b[k].e >= cur.e {
				cur.s = cur.e
				break
			}
			cur.s = b[k].e
			k++
		}
		if cur.s < cur.e {
			out = append(out, vspan{cur.s, cur.e})
		}
	}
	return out
}

func spansLen(in []vspan) float64 {
	var total float64
	for _, sp := range in {
		total += sp.e - sp.s
	}
	return total
}

// Breakdown computes the per-resource, per-phase accounting over the whole
// timeline span, sorted by resource name. Overlap handling is exact: exposed
// communication is comm∖compute, exposed host staging is
// hostload∖(compute∪comm), and idle is whatever remains of the span.
func (tl *Timeline) Breakdown() []ResourceBreakdown {
	start, end := tl.Span()
	total := float64(end - start)

	byPhase := map[string]map[string][]vspan{} // resource → phase → spans
	for i := range tl.Intervals {
		iv := &tl.Intervals[i]
		// Seed the resource's row before skipping zero-duration intervals:
		// a lane whose only activity is instantaneous (barrier cascades,
		// GPUFail markers) must still get an (all-idle) breakdown row, or the
		// HTML view's table and lanes fall out of alignment.
		m := byPhase[iv.Resource]
		if m == nil {
			m = map[string][]vspan{}
			byPhase[iv.Resource] = m
		}
		if iv.End.AtOrBefore(iv.Start) {
			continue
		}
		m[iv.Phase] = append(m[iv.Phase],
			vspan{float64(iv.Start), float64(iv.End)})
	}

	names := make([]string, 0, len(byPhase))
	for r := range byPhase {
		names = append(names, r)
	}
	sort.Strings(names)

	out := make([]ResourceBreakdown, 0, len(names))
	for _, r := range names {
		phases := byPhase[r]
		compute := unionSpans(phases["compute"])
		comm := unionSpans(phases["comm"])
		host := unionSpans(phases["hostload"])
		var all []vspan
		for _, spans := range [][]vspan{compute, comm, host} {
			all = append(all, spans...)
		}
		extra := make([]string, 0, len(phases))
		for phase := range phases {
			extra = append(extra, phase)
		}
		sort.Strings(extra)
		for _, phase := range extra {
			if phase != "compute" && phase != "comm" && phase != "hostload" {
				all = append(all, phases[phase]...)
			}
		}
		busy := unionSpans(all)
		notHidden := subtractSpans(comm, compute)
		hostExposed := subtractSpans(subtractSpans(host, compute), comm)
		b := ResourceBreakdown{
			Resource:       r,
			ComputeSec:     spansLen(compute),
			CommSec:        spansLen(comm),
			ExposedCommSec: spansLen(notHidden),
			HostLoadSec:    spansLen(host),
			ExposedHostSec: spansLen(hostExposed),
			BusySec:        spansLen(busy),
		}
		b.IdleSec = total - b.BusySec
		if b.IdleSec < 0 {
			b.IdleSec = 0
		}
		out = append(out, b)
	}
	return out
}
