// Package timeline records execution intervals produced by the simulator:
// which resource (GPU compute stream, network) was doing what, from when to
// when. It backs TrioSim's outputs beyond the total time: the per-layer and
// per-stage communication/computation breakdown and the Daisen-style
// timeline export.
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"triosim/internal/sim"
)

// Interval is one recorded activity.
type Interval struct {
	// Resource identifies the executing resource, e.g. "gpu0" or "net".
	Resource string
	// Label describes the activity, e.g. "conv2d" or "allreduce-step3".
	Label string
	// Phase groups activities for breakdowns: "compute", "comm", "hostload".
	Phase string
	Start sim.VTime
	End   sim.VTime
}

// Duration returns End-Start.
func (iv *Interval) Duration() sim.VTime { return iv.End - iv.Start }

// Timeline is an append-only interval log.
type Timeline struct {
	Intervals []Interval
}

// New returns an empty timeline.
func New() *Timeline { return &Timeline{} }

// Add records one interval.
func (tl *Timeline) Add(resource, label, phase string, start, end sim.VTime) {
	tl.Intervals = append(tl.Intervals, Interval{
		Resource: resource, Label: label, Phase: phase,
		Start: start, End: end,
	})
}

// Span returns the earliest start and latest end across all intervals.
func (tl *Timeline) Span() (start, end sim.VTime) {
	if len(tl.Intervals) == 0 {
		return 0, 0
	}
	start = sim.Infinity
	for i := range tl.Intervals {
		iv := &tl.Intervals[i]
		if iv.Start.Before(start) {
			start = iv.Start
		}
		if iv.End.After(end) {
			end = iv.End
		}
	}
	return start, end
}

// SumTime adds up interval durations matching the filter (overlaps counted
// multiply). Useful for per-resource serial streams.
func (tl *Timeline) SumTime(match func(*Interval) bool) sim.VTime {
	var total sim.VTime
	for i := range tl.Intervals {
		if match(&tl.Intervals[i]) {
			total += tl.Intervals[i].Duration()
		}
	}
	return total
}

// UnionTime computes the length of the union of intervals matching the
// filter: the time during which at least one matching activity was running.
// This is the paper's notion of "time at least one GPU is busy or at least
// one data movement task is taking place".
func (tl *Timeline) UnionTime(match func(*Interval) bool) sim.VTime {
	type edge struct {
		t     sim.VTime
		delta int
	}
	var edges []edge
	for i := range tl.Intervals {
		iv := &tl.Intervals[i]
		if !match(iv) || iv.End.AtOrBefore(iv.Start) {
			continue
		}
		edges = append(edges, edge{iv.Start, +1}, edge{iv.End, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t.Before(edges[j].t)
		}
		return edges[i].delta > edges[j].delta
	})
	var total sim.VTime
	depth := 0
	var openAt sim.VTime
	for _, e := range edges {
		if depth == 0 && e.delta > 0 {
			openAt = e.t
		}
		depth += e.delta
		if depth == 0 && e.delta < 0 {
			total += e.t - openAt
		}
	}
	return total
}

// ByPhase returns the filter matching one phase.
func ByPhase(phase string) func(*Interval) bool {
	return func(iv *Interval) bool { return iv.Phase == phase }
}

// ByResource returns the filter matching one resource.
func ByResource(resource string) func(*Interval) bool {
	return func(iv *Interval) bool { return iv.Resource == resource }
}

// And composes filters.
func And(fs ...func(*Interval) bool) func(*Interval) bool {
	return func(iv *Interval) bool {
		for _, f := range fs {
			if !f(iv) {
				return false
			}
		}
		return true
	}
}

// Resources returns the distinct resource names, sorted.
func (tl *Timeline) Resources() []string {
	seen := map[string]bool{}
	for i := range tl.Intervals {
		seen[tl.Intervals[i].Resource] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// chromeEvent is the Chrome trace-viewer "complete" event format, which
// Daisen-style visualizers (chrome://tracing, Perfetto) load directly.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// ExportChromeTrace writes the timeline as a Chrome trace-viewer JSON array.
func (tl *Timeline) ExportChromeTrace(w io.Writer) error {
	resources := tl.Resources()
	tidOf := map[string]int{}
	for i, r := range resources {
		tidOf[r] = i
	}
	events := make([]chromeEvent, 0, len(tl.Intervals))
	for i := range tl.Intervals {
		iv := &tl.Intervals[i]
		events = append(events, chromeEvent{
			Name: iv.Label,
			Cat:  iv.Phase,
			Ph:   "X",
			Ts:   iv.Start.Microseconds(),
			Dur:  iv.Duration().Microseconds(),
			PID:  0,
			TID:  tidOf[iv.Resource],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Summary formats per-resource busy times for quick inspection.
func (tl *Timeline) Summary() string {
	out := ""
	for _, r := range tl.Resources() {
		busy := tl.UnionTime(ByResource(r))
		out += fmt.Sprintf("%-8s busy %v\n", r, busy)
	}
	return out
}
