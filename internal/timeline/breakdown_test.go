package timeline

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBreakdownOverlapAware(t *testing.T) {
	tl := New()
	// gpu0: compute [0,4), comm [2,6) (2s hidden, 2s exposed),
	// hostload [5,7) (1s under comm, 1s exposed). Span ends at 10.
	tl.Add("gpu0", "op", "compute", 0, 4)
	tl.Add("gpu0", "xfer", "comm", 2, 6)
	tl.Add("gpu0", "stage", "hostload", 5, 7)
	tl.Add("gpu1", "op", "compute", 0, 10)

	bds := tl.Breakdown()
	if len(bds) != 2 || bds[0].Resource != "gpu0" || bds[1].Resource != "gpu1" {
		t.Fatalf("breakdown = %+v", bds)
	}
	b := bds[0]
	approx := func(got, want float64) bool {
		return math.Abs(got-want) < 1e-9
	}
	if !approx(b.ComputeSec, 4) || !approx(b.CommSec, 4) ||
		!approx(b.ExposedCommSec, 2) {
		t.Fatalf("gpu0 compute/comm/exposed = %v/%v/%v",
			b.ComputeSec, b.CommSec, b.ExposedCommSec)
	}
	if !approx(b.HostLoadSec, 2) || !approx(b.ExposedHostSec, 1) {
		t.Fatalf("gpu0 host/exposed = %v/%v", b.HostLoadSec, b.ExposedHostSec)
	}
	if !approx(b.BusySec, 7) || !approx(b.IdleSec, 3) {
		t.Fatalf("gpu0 busy/idle = %v/%v", b.BusySec, b.IdleSec)
	}
	// Partition: compute + exposed comm + exposed host + idle = span.
	sum := b.ComputeSec + b.ExposedCommSec + b.ExposedHostSec + b.IdleSec
	if !approx(sum, 10) {
		t.Fatalf("partition sums to %v, span 10", sum)
	}
	if g1 := bds[1]; !approx(g1.ComputeSec, 10) || !approx(g1.IdleSec, 0) {
		t.Fatalf("gpu1 = %+v", g1)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	if got := New().Breakdown(); len(got) != 0 {
		t.Fatalf("empty timeline breakdown = %+v", got)
	}
}

func TestExportHTMLIncludesBreakdownTable(t *testing.T) {
	tl := New()
	tl.Add("gpu0", "op", "compute", 0, 1)
	tl.Add("gpu0", "xfer", "comm", 0.5, 2)
	var buf bytes.Buffer
	if err := tl.ExportHTML(&buf, "t"); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		`<table class="breakdown">`,
		"<th>exposed comm (s)</th>",
		"<td>gpu0</td>",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
	if strings.Index(html, "<table") > strings.Index(html, "<svg") {
		t.Fatal("breakdown table should precede the SVG lanes")
	}
}
