package timeline

import (
	"fmt"
	"html"
	"io"
	"sort"

	"triosim/internal/sim"
)

// phaseColors pins the well-known phases to fixed colors; every other phase
// gets a deterministic palette color via phaseColor, so a given phase name
// renders identically across runs and machines (no map-iteration or
// insertion-order dependence).
var phaseColors = map[string]string{
	"compute":  "#4878cf",
	"comm":     "#d65f5f",
	"hostload": "#6acc65",
	"fault":    "#ee854a",
	"barrier":  "#956cb4",
	"delay":    "#8c613c",
}

// phasePalette colors unknown phases; chosen to stay distinguishable from the
// pinned colors above.
var phasePalette = [...]string{
	"#797979", "#d5bb67", "#82c6e2", "#dc7ec0",
	"#4c72b0", "#55a868", "#c44e52", "#8172b3",
}

// phaseColor returns the stable color for a phase name: pinned phases first,
// otherwise an FNV-1a hash of the name indexes the fallback palette.
func phaseColor(phase string) string {
	if c, ok := phaseColors[phase]; ok {
		return c
	}
	h := uint32(2166136261)
	for i := 0; i < len(phase); i++ {
		h ^= uint32(phase[i])
		h *= 16777619
	}
	return phasePalette[h%uint32(len(phasePalette))]
}

// ExportHTML writes a self-contained Daisen-style timeline viewer: one SVG
// lane per resource, intervals as colored bars (compute / comm / hostload),
// hover titles with labels and durations. No external assets — open the
// file in any browser.
func (tl *Timeline) ExportHTML(w io.Writer, title string) error {
	return tl.ExportHTMLHighlight(w, title, nil, nil)
}

// ExportHTMLHighlight is ExportHTML with an optional critical-path overlay:
// intervals for which critical returns true are drawn at full opacity with a
// dark outline (everything else is dimmed), and the summary lines — e.g. the
// critical path's per-category attribution — render under the legend.
// Both critical and summary may be nil.
func (tl *Timeline) ExportHTMLHighlight(w io.Writer, title string,
	critical func(*Interval) bool, summary []string) error {

	start, end := tl.Span()
	span := float64(end - start)
	if span <= 0 {
		span = 1
	}
	resources := tl.Resources()
	laneOf := map[string]int{}
	for i, r := range resources {
		laneOf[r] = i
	}

	const (
		width      = 1200.0
		laneHeight = 28.0
		laneGap    = 6.0
		leftPad    = 90.0
		topPad     = 40.0
	)
	height := topPad + float64(len(resources))*(laneHeight+laneGap) + 20

	if _, err := fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
body { font-family: sans-serif; background: #fafafa; margin: 16px; }
svg { background: white; border: 1px solid #ddd; }
.lane-label { font-size: 12px; fill: #333; }
.axis { font-size: 10px; fill: #777; }
.legend { font-size: 12px; }
.critpath { font-size: 12px; color: #444; }
table.breakdown { border-collapse: collapse; font-size: 12px; margin-bottom: 12px; }
table.breakdown th, table.breakdown td { border: 1px solid #ddd; padding: 3px 8px; text-align: right; }
table.breakdown th:first-child, table.breakdown td:first-child { text-align: left; }
</style></head><body>
<h2>%s</h2>
<p class="legend">
<span style="color:%s">&#9632;</span> compute&nbsp;
<span style="color:%s">&#9632;</span> communication&nbsp;
<span style="color:%s">&#9632;</span> host load&nbsp;
<span style="color:%s">&#9632;</span> fault window
— span %s</p>
`, html.EscapeString(title), html.EscapeString(title),
		phaseColor("compute"), phaseColor("comm"), phaseColor("hostload"),
		phaseColor("fault"), (end-start).String()); err != nil {
		return err
	}
	for _, line := range summary {
		if _, err := fmt.Fprintf(w, "<p class=\"critpath\">%s</p>\n",
			html.EscapeString(line)); err != nil {
			return err
		}
	}

	// Per-resource breakdown summary above the lanes. Breakdown emits one row
	// per resource — including resources whose only activity is instantaneous
	// — so the table rows align one-to-one with the SVG lanes below.
	fmt.Fprint(w, `<table class="breakdown">
<tr><th>resource</th><th>compute (s)</th><th>comm (s)</th><th>exposed comm (s)</th><th>host load (s)</th><th>idle (s)</th><th>busy %</th></tr>
`)
	for _, b := range tl.Breakdown() {
		busyPct := 0.0
		if span > 0 {
			busyPct = b.BusySec / span * 100
		}
		fmt.Fprintf(w,
			"<tr><td>%s</td><td>%.6g</td><td>%.6g</td><td>%.6g</td><td>%.6g</td><td>%.6g</td><td>%.1f</td></tr>\n",
			html.EscapeString(b.Resource), b.ComputeSec, b.CommSec,
			b.ExposedCommSec, b.HostLoadSec, b.IdleSec, busyPct)
	}
	fmt.Fprint(w, "</table>\n")

	if _, err := fmt.Fprintf(w, `<svg width="%.0f" height="%.0f">
`, width, height); err != nil {
		return err
	}

	// Lane labels and backgrounds.
	for i, r := range resources {
		y := topPad + float64(i)*(laneHeight+laneGap)
		fmt.Fprintf(w,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#f0f0f0"/>`+"\n",
			leftPad, y, width-leftPad-10, laneHeight)
		fmt.Fprintf(w,
			`<text class="lane-label" x="4" y="%.1f">%s</text>`+"\n",
			y+laneHeight*0.65, html.EscapeString(r))
	}
	// Time axis ticks.
	for i := 0; i <= 10; i++ {
		frac := float64(i) / 10
		x := leftPad + frac*(width-leftPad-10)
		t := start + sim.VTime(frac*float64(end-start))
		fmt.Fprintf(w,
			`<text class="axis" x="%.1f" y="%.1f">%s</text>`+"\n",
			x, topPad-8, t.String())
	}

	// Intervals, drawn in start order so later bars overlay earlier ones.
	ivs := make([]Interval, len(tl.Intervals))
	copy(ivs, tl.Intervals)
	sort.SliceStable(ivs, func(i, j int) bool {
		return ivs[i].Start.Before(ivs[j].Start)
	})
	for i := range ivs {
		iv := &ivs[i]
		lane, ok := laneOf[iv.Resource]
		if !ok {
			continue
		}
		x := leftPad + float64(iv.Start-start)/span*(width-leftPad-10)
		wpx := float64(iv.Duration()) / span * (width - leftPad - 10)
		if wpx < 0.5 {
			wpx = 0.5
		}
		y := topPad + float64(lane)*(laneHeight+laneGap)
		color := phaseColor(iv.Phase)
		opacity, stroke := "0.85", ""
		if critical != nil {
			if critical(iv) {
				opacity, stroke = "1.0", ` stroke="#222" stroke-width="1.5"`
			} else {
				opacity = "0.35"
			}
		}
		fmt.Fprintf(w,
			`<rect x="%.2f" y="%.1f" width="%.2f" height="%.1f" fill="%s" opacity="%s"%s><title>%s [%s] %s–%s (%s)</title></rect>`+"\n",
			x, y+3, wpx, laneHeight-6, color, opacity, stroke,
			html.EscapeString(iv.Label), iv.Phase,
			iv.Start.String(), iv.End.String(), iv.Duration().String())
	}

	_, err := fmt.Fprint(w, "</svg></body></html>\n")
	return err
}
