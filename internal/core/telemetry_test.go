package core

import (
	"bytes"
	"math"
	"testing"

	"triosim/internal/gpu"
)

func p3() *gpu.Platform { p := gpu.P3; return &p }

// TestTelemetryDoesNotPerturbSchedule is the determinism contract: the same
// configuration dispatches a byte-identical event schedule with the telemetry
// collector attached and without it.
func TestTelemetryDoesNotPerturbSchedule(t *testing.T) {
	cfg := Config{
		Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32,
	}
	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report != nil {
		t.Fatal("telemetry off should leave Report nil")
	}
	cfg.Telemetry = true
	instr, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if instr.Report == nil {
		t.Fatal("telemetry on should produce a Report")
	}
	if instr.EventDigest != plain.EventDigest {
		t.Fatalf("telemetry perturbed the event schedule: %#x vs %#x",
			instr.EventDigest, plain.EventDigest)
	}
	if instr.Events != plain.Events || instr.TotalTime != plain.TotalTime {
		t.Fatalf("telemetry changed the outcome: %d events %v vs %d events %v",
			instr.Events, instr.TotalTime, plain.Events, plain.TotalTime)
	}
}

// TestRunReportDeterministic serializes the RunReport of two identical runs
// and requires byte-identical JSON (nil Clock leaves wall-rate fields zero).
func TestRunReportDeterministic(t *testing.T) {
	cfg := Config{
		Model: "resnet18", Platform: p2(), Parallelism: DDP,
		TraceBatch: 32, Telemetry: true,
	}
	var out [2]bytes.Buffer
	for i := range out {
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Report.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatalf("RunReport JSON differs across identical runs:\n%s\n--- vs ---\n%s",
			out[0].String(), out[1].String())
	}
}

// TestReportTimeAccounting checks the tentpole invariant on every platform ×
// strategy pair: each GPU's compute + exposed comm + exposed host + idle
// seconds sum to the simulated total, and the report passes its own
// validation (utilization bounds, collective sanity).
func TestReportTimeAccounting(t *testing.T) {
	cases := []struct {
		plat *gpu.Platform
		par  Parallelism
	}{
		{p1(), DDP}, {p1(), TP}, {p1(), PP},
		{p2(), DDP}, {p2(), TP}, {p2(), PP},
		{p3(), DDP}, {p3(), TP}, {p3(), PP},
	}
	for _, tc := range cases {
		res, err := Simulate(Config{
			Model: "resnet18", Platform: tc.plat, Parallelism: tc.par,
			TraceBatch: 32, Telemetry: true,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.plat.Name, tc.par, err)
		}
		rep := res.Report
		if rep == nil {
			t.Fatalf("%s/%s: nil report", tc.plat.Name, tc.par)
		}
		if err := rep.Validate(); err != nil {
			t.Errorf("%s/%s: %v", tc.plat.Name, tc.par, err)
		}
		if len(rep.GPUs) != rep.NumGPUs || rep.NumGPUs < 2 {
			t.Errorf("%s/%s: %d GPU stats for %d GPUs",
				tc.plat.Name, tc.par, len(rep.GPUs), rep.NumGPUs)
		}
		for _, g := range rep.GPUs {
			sum := g.ComputeSec + g.ExposedCommSec + g.ExposedHostSec +
				g.IdleSec
			if math.Abs(sum-rep.TotalSec) > 1e-6*math.Max(1, rep.TotalSec) {
				t.Errorf("%s/%s gpu%d: components sum to %.9g, total %.9g",
					tc.plat.Name, tc.par, g.GPU, sum, rep.TotalSec)
			}
		}
		if rep.Network.TotalBytes <= 0 || len(rep.Links) == 0 {
			t.Errorf("%s/%s: no network accounting", tc.plat.Name, tc.par)
		}
		if tc.par != PP && len(rep.Collectives) == 0 {
			t.Errorf("%s/%s: no collectives recorded", tc.plat.Name, tc.par)
		}
		if rep.Engine.Events != res.Events || rep.Engine.Events == 0 {
			t.Errorf("%s/%s: engine events %d, result %d",
				tc.plat.Name, tc.par, rep.Engine.Events, res.Events)
		}
	}
}

// TestReportCollectiveEfficiency sanity-checks the NCCL-style bandwidth
// accounting: ring AllReduce bus bandwidth must not exceed the ideal link
// bandwidth, and efficiency must land in (0, 1].
func TestReportCollectiveEfficiency(t *testing.T) {
	res, err := Simulate(Config{
		Model: "resnet18", Platform: p2(), Parallelism: DDP,
		TraceBatch: 32, Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Collectives) == 0 {
		t.Fatal("no collectives")
	}
	for _, c := range res.Report.Collectives {
		if c.Algo != "ring-allreduce" {
			t.Errorf("%s: algo %q", c.Label, c.Algo)
		}
		if c.Efficiency <= 0 || c.Efficiency > 1+1e-9 {
			t.Errorf("%s: efficiency %v out of range", c.Label, c.Efficiency)
		}
		if c.BusBwBytesPerSec > c.IdealBwBytesPerSec*(1+1e-9) {
			t.Errorf("%s: bus bw %v exceeds ideal %v",
				c.Label, c.BusBwBytesPerSec, c.IdealBwBytesPerSec)
		}
		if c.EndSec <= c.StartSec {
			t.Errorf("%s: empty span [%v, %v]", c.Label, c.StartSec, c.EndSec)
		}
	}
}

// TestGroundTruthTelemetry covers the emulator path: effects enabled,
// RampBytes nonzero, same accounting invariant.
func TestGroundTruthTelemetry(t *testing.T) {
	res, err := GroundTruth(Config{
		Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32, Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("nil report")
	}
	if err := res.Report.Validate(); err != nil {
		t.Fatal(err)
	}
}
