package core

import (
	"bytes"
	"strings"
	"testing"

	"triosim/internal/telemetry"
	"triosim/internal/tracecache"
)

// TestPromGaugesForEngineAndCache: a metrics-enabled run exports the engine
// queue high-water and the trace-cache hit/miss/bytes stats as Prometheus
// gauges — the series the monitor's /metrics endpoint serves.
func TestPromGaugesForEngineAndCache(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{
		Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32,
		Metrics:    reg,
		Cache:      tracecache.New(),
	}
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"triosim_engine_queue_high_water",
		"triosim_tracecache_trace_hits",
		"triosim_tracecache_trace_misses",
		"triosim_tracecache_timer_hits",
		"triosim_tracecache_timer_misses",
		"triosim_tracecache_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus export missing %s:\n%s", want, out)
		}
	}
	// The high-water gauge carries the engine's real value, not zero.
	hw := reg.Gauge("triosim_engine_queue_high_water", "", "", "")
	if hw.Value() <= 0 {
		t.Fatalf("queue high-water gauge = %g, want > 0", hw.Value())
	}
	// A cold cache records misses, no hits.
	if v := reg.Gauge("triosim_tracecache_trace_misses", "", "", "").Value(); v <= 0 {
		t.Fatalf("trace-miss gauge = %g, want > 0 on a cold cache", v)
	}
}
