package core

import (
	"sort"

	"triosim/internal/sim"
)

// Candidate is one evaluated deployment strategy.
type Candidate struct {
	Parallelism  Parallelism
	MicroBatches int
	DPGroups     int
	// PerIteration is the predicted training-step time.
	PerIteration sim.VTime
	// CommShare is communication time / total time.
	CommShare float64
	// Feasible reports whether every GPU's peak memory fits.
	Feasible bool
	// WorstMemUtil is the highest footprint/capacity fraction.
	WorstMemUtil float64
}

// Advise runs the paper's §8.3 workflow end-to-end: given a workload, a
// platform, and a total batch size, simulate every applicable parallelism
// strategy (and pipeline chunkings, and hybrid splits), check memory
// feasibility, and return the candidates sorted fastest-feasible-first.
// All of it costs milliseconds, from one single-GPU trace — the design-space
// exploration the single-trace capability exists for.
func Advise(cfg Config) ([]Candidate, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	type variant struct {
		par    Parallelism
		chunks int
		groups int
	}
	variants := []variant{
		{DDP, 0, 0},
		{ZeRO1, 0, 0},
		{TP, 0, 0},
		{PP, 1, 0},
		{PP, 2, 0},
		{PP, 4, 0},
	}
	if cfg.NumGPUs >= 4 && cfg.NumGPUs%2 == 0 {
		variants = append(variants, variant{DPPP, 2, 2}, variant{DPTP, 0, 2})
	}

	var out []Candidate
	for _, v := range variants {
		c := cfg
		c.Parallelism = v.par
		c.MicroBatches = v.chunks
		c.DPGroups = v.groups
		// Hybrid batch divisibility: skip inapplicable variants.
		if v.groups > 1 {
			batch := c.GlobalBatch
			if batch == 0 {
				batch = c.TraceBatch
			}
			if batch%v.groups != 0 {
				continue
			}
		}
		res, err := Simulate(c)
		if err != nil {
			return nil, err
		}
		mem, err := MemoryFootprint(c)
		if err != nil {
			return nil, err
		}
		out = append(out, Candidate{
			Parallelism:  v.par,
			MicroBatches: v.chunks,
			DPGroups:     v.groups,
			PerIteration: res.PerIteration,
			CommShare:    float64(res.CommTime) / float64(res.TotalTime),
			Feasible:     mem.Fits,
			WorstMemUtil: mem.WorstUtilization,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Feasible != out[j].Feasible {
			return out[i].Feasible
		}
		return out[i].PerIteration.Before(out[j].PerIteration)
	})
	return out, nil
}
