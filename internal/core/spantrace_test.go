package core

import (
	"os"
	"testing"

	"triosim/internal/faults"
	"triosim/internal/gpu"
	"triosim/internal/spantrace"
)

// TestSpanTraceDoesNotPerturbSchedule pins the observation-only contract for
// span tracing, the same way telemetry's digest-identity test does: the same
// configuration dispatches a byte-identical event schedule with the span
// recorder attached and without it.
func TestSpanTraceDoesNotPerturbSchedule(t *testing.T) {
	cfg := Config{
		Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32,
	}
	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Spans != nil || plain.CriticalPath != nil {
		t.Fatal("span tracing off should leave Spans and CriticalPath nil")
	}
	cfg.SpanTrace = true
	traced, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Spans == nil || traced.CriticalPath == nil {
		t.Fatal("span tracing on should produce Spans and CriticalPath")
	}
	if traced.EventDigest != plain.EventDigest {
		t.Fatalf("span tracing perturbed the event schedule: %#x vs %#x",
			traced.EventDigest, plain.EventDigest)
	}
	if traced.Events != plain.Events || traced.TotalTime != plain.TotalTime {
		t.Fatalf("span tracing changed the outcome: %d events %v vs %d events %v",
			traced.Events, traced.TotalTime, plain.Events, plain.TotalTime)
	}
	// One span per executed task.
	if len(traced.Spans.Spans) != traced.Tasks {
		t.Fatalf("recorded %d spans for %d tasks",
			len(traced.Spans.Spans), traced.Tasks)
	}
}

// TestSpanTraceDigestIdentityUnderFaults extends the identity to faulted
// runs: fault windows are recorded as marker spans without touching the
// schedule.
func TestSpanTraceDigestIdentityUnderFaults(t *testing.T) {
	cfg := Config{
		Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32,
		Faults: &faults.Schedule{Events: []faults.Event{{
			Kind: faults.GPUSlowdown, GPU: 1, Factor: 2,
			Start: 0, Duration: 10,
		}}},
	}
	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SpanTrace = true
	traced, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.EventDigest != plain.EventDigest ||
		traced.Events != plain.Events {
		t.Fatalf("span tracing perturbed the faulted schedule: %#x (%d) vs %#x (%d)",
			traced.EventDigest, traced.Events,
			plain.EventDigest, plain.Events)
	}
	var faultSpans int
	for i := range traced.Spans.Spans {
		if traced.Spans.Spans[i].Cat == spantrace.Fault {
			faultSpans++
		}
	}
	if faultSpans == 0 {
		t.Fatal("faulted run recorded no fault-window spans")
	}
	// The straggler must surface as fault stretch on the critical path.
	if traced.CriticalPath.Attribution.FaultStretchSec <= 0 {
		t.Fatalf("straggler run attributed no fault stretch: %+v",
			traced.CriticalPath.Attribution)
	}
}

// TestCriticalPathBoundedByMakespan checks the acceptance invariant across
// platforms and strategies: the extracted path validates and never exceeds
// the simulated makespan.
func TestCriticalPathBoundedByMakespan(t *testing.T) {
	cases := []struct {
		plat *gpu.Platform
		par  Parallelism
	}{
		{p1(), DDP}, {p1(), TP}, {p1(), PP},
		{p2(), DDP}, {p2(), TP},
	}
	for _, c := range cases {
		cfg := Config{
			Model: "resnet18", Platform: c.plat, Parallelism: c.par,
			TraceBatch: 32, SpanTrace: true,
		}
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.plat.Name, c.par, err)
		}
		cp := res.CriticalPath
		if err := cp.Validate(); err != nil {
			t.Fatalf("%s/%s: %v", c.plat.Name, c.par, err)
		}
		total := res.TotalTime.Seconds()
		tol := 1e-6 * total
		if cp.LengthSec > total+tol {
			t.Fatalf("%s/%s: critical path %g exceeds makespan %g",
				c.plat.Name, c.par, cp.LengthSec, total)
		}
		if len(cp.Steps) == 0 {
			t.Fatalf("%s/%s: empty critical path", c.plat.Name, c.par)
		}
	}
}

// TestSpanTraceInRunReport: with telemetry on, the critical path rides in
// the RunReport and the report (including the embedded path) validates.
func TestSpanTraceInRunReport(t *testing.T) {
	cfg := Config{
		Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32, SpanTrace: true, Telemetry: true,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.CriticalPath == nil {
		t.Fatal("RunReport missing the critical-path section")
	}
	if err := res.Report.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanTraceChromeExport: a real run's exported trace passes the
// trace-event validator (the property check.sh's smoke leg gates on).
func TestSpanTraceChromeExport(t *testing.T) {
	cfg := Config{
		Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32, SpanTrace: true,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.json"
	if err := res.Spans.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := spantrace.ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
}
