package core

import "testing"

func TestZeROEndToEnd(t *testing.T) {
	res, err := Simulate(Config{Model: "resnet50", Platform: p2(),
		Parallelism: ZeRO1, TraceBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIteration <= 0 || res.CommTime <= 0 {
		t.Fatalf("incomplete ZeRO result: %+v", res)
	}
	// Memory: ZeRO-1 shards optimizer state relative to DDP.
	ddpMem, err := MemoryFootprint(Config{Model: "resnet50", Platform: p2(),
		Parallelism: DDP, TraceBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	zMem, err := MemoryFootprint(Config{Model: "resnet50", Platform: p2(),
		Parallelism: ZeRO1, TraceBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	d := ddpMem.PerGPU[0]
	z := zMem.PerGPU[0]
	if z.OptimizerState*4 != d.OptimizerState {
		t.Fatalf("ZeRO optimizer state %d, DDP %d (want 4× shard)",
			z.OptimizerState, d.OptimizerState)
	}
	if z.Weights != d.Weights {
		t.Fatal("ZeRO-1 must not shard weights")
	}
	// Validation against the emulator stays in a reasonable band.
	cmp, err := Validate(Config{Model: "resnet50", Platform: p2(),
		Parallelism: ZeRO1, TraceBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Error > 0.15 {
		t.Fatalf("ZeRO validation error %.1f%%", cmp.Error*100)
	}
}
