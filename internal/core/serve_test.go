package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"triosim/internal/faults"
	"triosim/internal/serving"
)

// Pinned serving digests: the replay gate for the serving subsystem. These
// change only when the serving event schedule itself changes — cost model,
// admission order, routing, or arrival generation. Update deliberately.
const (
	goldenServeDigest       = uint64(0x227e26643d1677b7)
	goldenServeFaultsDigest = uint64(0x748b244dec294b2a)
)

func serveConfig() ServeConfig {
	return ServeConfig{
		Platform: p1(),
		Serving: serving.Config{
			Model:     "gpt2",
			Scheduler: "fifo",
			MaxBatch:  4,
			Arrivals: serving.ArrivalConfig{
				Seed: 7, Rate: 300, Requests: 48,
				PromptMin: 8, PromptMax: 64,
				OutputMin: 4, OutputMax: 24,
				PriorityLevels: 3,
			},
		},
		Telemetry: true,
		SpanTrace: true,
	}
}

func TestServeReplayDigestPinned(t *testing.T) {
	first, err := Serve(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	again, err := Serve(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if first.EventDigest != again.EventDigest || first.Events != again.Events {
		t.Fatalf("serving run not replayable: %#x/%d vs %#x/%d",
			first.EventDigest, first.Events, again.EventDigest, again.Events)
	}
	if first.EventDigest != goldenServeDigest {
		t.Fatalf("serving digest = %#x, want pinned %#x "+
			"(serving schedule changed?)", first.EventDigest,
			goldenServeDigest)
	}

	// The RunReport — including the latency quantiles — must be
	// byte-identical across replays.
	j1, err := json.Marshal(first.Report)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(again.Report)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("serving reports differ across replays:\n%s\n%s", j1, j2)
	}
	if err := first.Report.Validate(); err != nil {
		t.Fatal(err)
	}
	if first.Report.Serving == nil ||
		first.Report.Serving.Completed != first.Metrics.Requests {
		t.Fatalf("serving section missing or incomplete: %+v",
			first.Report.Serving)
	}
}

func TestServeSeedMovesDigest(t *testing.T) {
	cfg := serveConfig()
	base, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Serving.Arrivals.Seed = 8
	other, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.EventDigest == other.EventDigest {
		t.Fatalf("arrival seed did not reach the schedule: %#x",
			base.EventDigest)
	}
}

func TestServeObservationOffDigestIdentity(t *testing.T) {
	full, err := Serve(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	bare := serveConfig()
	bare.Telemetry = false
	bare.SpanTrace = false
	plain, err := Serve(bare)
	if err != nil {
		t.Fatal(err)
	}
	if full.EventDigest != plain.EventDigest {
		t.Fatalf("observation changed the serving digest: %#x vs %#x",
			full.EventDigest, plain.EventDigest)
	}
}

// serveFaultsConfig adds a seeded link-degrade + GPU-slowdown schedule on
// top of the serving run (satellite: mixed serving+faults pinned digest).
func serveFaultsConfig(t *testing.T) ServeConfig {
	t.Helper()
	cfg := serveConfig()
	base, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo := BuildTopology(cfg.Platform)
	sched, err := faults.Generate(11, faults.GenConfig{
		NumGPUs:      len(topo.GPUs()),
		NumLinks:     len(topo.Links),
		Horizon:      base.TotalTime,
		LinkDegrades: 1,
		GPUSlowdowns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = sched
	return cfg
}

func TestServeWithFaultsDigestPinned(t *testing.T) {
	cfg := serveFaultsConfig(t)
	first, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.EventDigest != again.EventDigest {
		t.Fatalf("serving+faults not replayable: %#x vs %#x",
			first.EventDigest, again.EventDigest)
	}
	if first.EventDigest != goldenServeFaultsDigest {
		t.Fatalf("serving+faults digest = %#x, want pinned %#x",
			first.EventDigest, goldenServeFaultsDigest)
	}
	if err := first.Report.Validate(); err != nil {
		t.Fatal(err)
	}
	fr := first.Report.Faults
	if fr == nil || fr.DegradedSec <= 0 || fr.Goodput != 1 {
		t.Fatalf("serving fault section wrong: %+v", fr)
	}
}

func TestServeRejectsGPUFail(t *testing.T) {
	cfg := serveConfig()
	base, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo := BuildTopology(cfg.Platform)
	sched, err := faults.Generate(3, faults.GenConfig{
		NumGPUs:  len(topo.GPUs()),
		NumLinks: len(topo.Links),
		Horizon:  base.TotalTime,
		GPUFails: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = sched
	if _, err := Serve(cfg); err == nil {
		t.Fatal("gpufail schedule accepted by serving")
	}
}

func TestServeRequestSpans(t *testing.T) {
	res, err := Serve(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans == nil {
		t.Fatal("no span log")
	}
	var reqSpans int
	for i := range res.Spans.Spans {
		if res.Spans.Spans[i].Cat.String() == "request" {
			reqSpans++
		}
	}
	if reqSpans != res.Metrics.Requests {
		t.Fatalf("%d request spans, want %d",
			reqSpans, res.Metrics.Requests)
	}
}
