package core

import (
	"context"
	"fmt"
	"time"

	"triosim/internal/faults"
	"triosim/internal/gpu"
	"triosim/internal/network"
	"triosim/internal/serving"
	"triosim/internal/sim"
	"triosim/internal/spantrace"
	"triosim/internal/telemetry"
)

// ServeConfig describes one request-level inference-serving simulation: a
// serving workload (internal/serving) executed on a platform's GPUs and
// interconnect with the same observability and determinism plumbing as a
// training run.
type ServeConfig struct {
	// Serving is the workload: model, scheduler, batching, and arrivals.
	Serving serving.Config
	// Platform is the simulated multi-GPU system.
	Platform *gpu.Platform
	// Topology optionally overrides the platform's default topology.
	Topology *network.Topology
	// Clock supplies wall-clock readings for ServeResult.WallClock; nil
	// leaves it zero (see Config.Clock).
	Clock func() time.Time
	// Telemetry / Metrics enable the RunReport exactly as in Config.
	Telemetry bool
	Metrics   *telemetry.Registry
	// SpanTrace enables the span recorder: per-step spans on GPU tracks and
	// one lifetime span per request on "requests.gpuN" tracks.
	SpanTrace bool
	// Hooks are extra engine hooks; they must not schedule events.
	Hooks []sim.Hook
	// Context optionally bounds the run (see Config.Context).
	Context context.Context
	// Faults optionally injects link-degrade/down windows and GPU slowdown
	// stretch. GPUFail events and checkpoint policies are rejected: the
	// serving layer has no checkpoint/restart model — a failed replica
	// would need request re-routing, which this PR does not simulate.
	Faults *faults.Schedule
}

// ServeResult is a serving simulation's output.
type ServeResult struct {
	// Metrics is the request-level outcome: latency tails, throughput, and
	// batching efficiency.
	Metrics *serving.Metrics
	// TotalTime is the full simulated duration (virtual time zero to the
	// last delivered response).
	TotalTime sim.VTime
	// Events / EventDigest mirror Result: the digest pins the dispatched
	// schedule for triosimvet -replay.
	Events      uint64
	EventDigest uint64
	// WallClock is the host time the simulation took (zero without Clock).
	WallClock time.Duration
	// Report is the RunReport with its Serving section populated (nil
	// unless Telemetry/Metrics).
	Report *telemetry.RunReport
	// Spans is the span log (nil unless SpanTrace). Serving runs carry no
	// critical-path analysis: request lifetimes overlap by design, so a
	// single makespan-setting chain through them is not meaningful.
	Spans *spantrace.Log
}

// Serve runs one request-level serving simulation.
func Serve(cfg ServeConfig) (*ServeResult, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("core: no platform")
	}
	topo := cfg.Topology
	if topo == nil {
		topo = BuildTopology(cfg.Platform)
	}

	var start time.Time
	if cfg.Clock != nil {
		start = cfg.Clock()
	}
	eng := sim.NewSerialEngine()
	digest := sim.NewDigestHook()
	eng.RegisterHook(digest)
	net := network.NewFlowNetwork(eng, topo)
	net.RampBytes = cfg.Platform.CommRampBytes
	net.SolveClock = cfg.Clock

	spec := cfg.Platform.GPU
	cl, err := serving.New(eng, net, topo, &spec, cfg.Serving)
	if err != nil {
		return nil, err
	}

	var rec *spantrace.Recorder
	if cfg.SpanTrace {
		rec = spantrace.NewRecorder(nil, topo)
		cl.Observe(rec)
		cl.Spans = rec
		eng.RegisterHook(rec.EngineHook(eng.Pending))
	}

	var inj *faults.Injector
	if cfg.Faults != nil {
		if cfg.Faults.Checkpoint != nil {
			return nil, fmt.Errorf(
				"core: serving has no checkpoint/restart model")
		}
		inj, err = faults.NewInjector(eng, net, cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if n := len(inj.Failures()); n > 0 {
			return nil, fmt.Errorf(
				"core: serving does not support gpufail events (%d in schedule): "+
					"a failed replica would need request re-routing", n)
		}
		cl.Stretch = inj.Factor
		inj.Arm()
		if rec != nil {
			for _, w := range inj.Windows() {
				rec.AddFault(w.Label(), w.Start, w.End)
			}
		}
	}

	var coll *telemetry.Collector
	if cfg.Telemetry || cfg.Metrics != nil {
		reg := cfg.Metrics
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		coll = telemetry.NewCollector(reg, topo, nil)
		eng.RegisterHook(coll.EngineHook(eng.Pending))
		cl.Observe(coll)
	}
	switch {
	case coll != nil && rec != nil:
		net.Observer = network.MultiFlowObserver{coll, rec}
	case coll != nil:
		net.Observer = coll
	case rec != nil:
		net.Observer = rec
	}
	for _, h := range cfg.Hooks {
		eng.RegisterHook(h)
	}
	if ctx := cfg.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: simulation canceled: %w", err)
		}
		var dispatched uint64
		eng.RegisterHook(sim.HookFunc(func(hc sim.HookCtx) {
			if hc.Pos != sim.HookPosAfterEvent {
				return
			}
			dispatched++
			if dispatched&1023 == 0 && ctx.Err() != nil {
				eng.Terminate()
			}
		}))
	}

	cl.Start()
	if err := eng.Run(); err != nil {
		if cfg.Context != nil && cfg.Context.Err() != nil {
			return nil, fmt.Errorf("core: simulation canceled: %w",
				cfg.Context.Err())
		}
		return nil, err
	}
	m, err := cl.Metrics()
	if err != nil {
		return nil, err
	}

	out := &ServeResult{
		Metrics:     m,
		TotalTime:   eng.CurrentTime(),
		Events:      eng.EventCount(),
		EventDigest: digest.Sum64(),
	}
	if cfg.Clock != nil {
		out.WallClock = cfg.Clock().Sub(start)
	}
	if rec != nil {
		rec.Sample(spantrace.CounterQueueHighWatr, eng.CurrentTime(),
			float64(eng.QueueHighWater()))
		out.Spans = rec.Finalize()
	}
	if coll != nil {
		out.Report = coll.Finalize(telemetry.RunInfo{
			Model:           cfg.Serving.Model,
			Platform:        cfg.Platform.Name,
			Parallelism:     "serving-" + m.Scheduler,
			NumGPUs:         m.Replicas,
			Iterations:      1,
			TotalSec:        out.TotalTime.Seconds(),
			PerIterationSec: out.TotalTime.Seconds(),
			Events:          out.Events,
			QueueHighWater:  eng.QueueHighWater(),
			NetTotalBytes:   net.TotalBytes,
			NetTransfers:    net.TotalTransfers,
			NetSolveSeconds: net.SolveWall.Seconds(),
			Parallel: telemetry.ParallelStat{
				Strategy: "serving-" + m.Scheduler,
				Replicas: m.Replicas,
			},
		})
		out.Report.Serving = servingStat(m)
		out.Report.Engine.EventDigest = fmt.Sprintf("%#x", out.EventDigest)
		if cfg.Clock != nil && out.WallClock > 0 {
			out.Report.Engine.WallSeconds = out.WallClock.Seconds()
			out.Report.Engine.EventsPerSecond =
				float64(out.Events) / out.Report.Engine.WallSeconds
		}
		if inj != nil {
			out.Report.Faults = servingFaultReport(inj, out.TotalTime)
		}
	}
	return out, nil
}

// servingStat converts serving metrics into the RunReport section.
func servingStat(m *serving.Metrics) *telemetry.ServingStat {
	return &telemetry.ServingStat{
		Scheduler:          m.Scheduler,
		Replicas:           m.Replicas,
		MaxBatch:           m.MaxBatch,
		Requests:           m.Requests,
		Completed:          m.Completed,
		OfferedRPS:         m.OfferedRPS,
		MakespanSec:        m.MakespanSec,
		ThroughputRPS:      m.ThroughputRPS,
		TokensPerSec:       m.TokensPerSec,
		Latency:            quantiles(m.Latency),
		TTFT:               quantiles(m.TTFT),
		Steps:              m.Steps,
		MeanBatch:          m.MeanBatch,
		BatchingEfficiency: m.BatchingEfficiency,
		GeneratedTokens:    m.GeneratedTokens,
		KVPeakBytes:        m.KVPeakBytes,
	}
}

func quantiles(ls serving.LatencyStats) telemetry.LatencyQuantiles {
	return telemetry.LatencyQuantiles{
		MeanSec: ls.MeanSec,
		P50Sec:  ls.P50Sec,
		P90Sec:  ls.P90Sec,
		P99Sec:  ls.P99Sec,
		P999Sec: ls.P999Sec,
		MaxSec:  ls.MaxSec,
	}
}

// servingFaultReport builds the fault section for a serving run: window
// bookkeeping only. Serving has no resilience overlay, so the extended
// timeline IS the useful timeline and goodput is 1 by construction.
func servingFaultReport(inj *faults.Injector,
	total sim.VTime) *telemetry.FaultReport {
	ws := inj.Windows()
	fr := &telemetry.FaultReport{
		DegradedSec: faults.DegradedSeconds(ws, total),
		UsefulSec:   total.Seconds(),
		ExtendedSec: total.Seconds(),
		Goodput:     1,
	}
	for _, w := range ws {
		fr.Windows = append(fr.Windows, telemetry.FaultWindow{
			Kind:     string(w.Kind),
			Resource: w.ResourceName(),
			Factor:   w.Factor,
			StartSec: w.Start.Seconds(),
			EndSec:   w.End.Seconds(),
		})
	}
	return fr
}
