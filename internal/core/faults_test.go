package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"triosim/internal/faults"
	"triosim/internal/sim"
)

// mixedFaultConfigs is the mixed-workload scenario the digest-identity
// property is pinned on: a CNN under DDP, a CNN under pipeline parallelism,
// and a transformer under tensor parallelism.
func mixedFaultConfigs() []Config {
	return []Config{
		{Model: "resnet18", Platform: p1(), Parallelism: DDP, TraceBatch: 32},
		{Model: "vgg11", Platform: p1(), Parallelism: PP, TraceBatch: 32,
			MicroBatches: 2},
		{Model: "gpt2", Platform: p1(), Parallelism: TP, TraceBatch: 32},
	}
}

// Satellite property: an empty or all-no-op (factor-1) fault schedule must
// produce a bit-identical event schedule — same EventDigest, event count,
// and makespan — as a run with no faults configured at all. The injector
// may not add a single event for schedules that perturb nothing.
func TestZeroFaultScheduleDigestIdenticalToBaseline(t *testing.T) {
	noops := []*faults.Schedule{
		{}, // empty
		{Events: []faults.Event{ // zero-effect factors
			{Kind: faults.LinkDegrade, Link: 0, Factor: 1,
				Start: sim.MSec, Duration: sim.MSec},
			{Kind: faults.GPUSlowdown, GPU: 1, Factor: 1,
				Start: 2 * sim.MSec, Duration: sim.MSec},
		}},
	}
	for _, cfg := range mixedFaultConfigs() {
		base, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, sched := range noops {
			fcfg := cfg
			fcfg.Faults = sched
			res, err := Simulate(fcfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.EventDigest != base.EventDigest ||
				res.Events != base.Events ||
				res.TotalTime != base.TotalTime {
				t.Fatalf("%s/%s: no-op schedule %d perturbed the run: "+
					"digest %#x/%d events/%v vs %#x/%d/%v",
					cfg.Model, cfg.Parallelism, i,
					res.EventDigest, res.Events, res.TotalTime,
					base.EventDigest, base.Events, base.TotalTime)
			}
			if res.Goodput != 1 || res.Resilience == nil {
				t.Fatalf("no-op schedule should report goodput 1, got %g (%+v)",
					res.Goodput, res.Resilience)
			}
		}
	}
}

// Property flavor of the same guarantee: randomized (seeded) no-op window
// placement — any factor-1 windows anywhere must leave the digest alone.
func TestRandomNoOpSchedulesDigestIdentityProperty(t *testing.T) {
	cfg := Config{Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32}
	base, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo := BuildTopology(cfg.Platform)
	numGPUs, numLinks := len(topo.GPUs()), len(topo.Links)
	rng := rand.New(rand.NewSource(5))
	horizon := float64(base.TotalTime)
	for trial := 0; trial < 4; trial++ {
		var sched faults.Schedule
		for l := 0; l < numLinks; l++ {
			if rng.Intn(2) == 0 {
				continue
			}
			sched.Events = append(sched.Events, faults.Event{
				Kind: faults.LinkDegrade, Link: l, Factor: 1,
				Start:    sim.VTime(rng.Float64() * horizon),
				Duration: sim.VTime(rng.Float64() * horizon),
			})
		}
		for g := 0; g < numGPUs; g++ {
			if rng.Intn(2) == 0 {
				continue
			}
			sched.Events = append(sched.Events, faults.Event{
				Kind: faults.GPUSlowdown, GPU: g, Factor: 1,
				Start:    sim.VTime(rng.Float64() * horizon),
				Duration: sim.VTime(rng.Float64() * horizon),
			})
		}
		fcfg := cfg
		fcfg.Faults = &sched
		res, err := Simulate(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.EventDigest != base.EventDigest || res.Events != base.Events {
			t.Fatalf("trial %d: no-op schedule (%d events) changed digest "+
				"%#x/%d vs %#x/%d", trial, len(sched.Events),
				res.EventDigest, res.Events, base.EventDigest, base.Events)
		}
	}
}

// Acceptance: a seeded GPUSlowdown straggler strictly lengthens the
// makespan, and the run's goodput lands in the RunReport JSON.
func TestStragglerSlowsMakespanAndReportsGoodput(t *testing.T) {
	cfg := Config{Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32, Telemetry: true}
	base, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Faults = &faults.Schedule{Events: []faults.Event{{
		Kind: faults.GPUSlowdown, GPU: 1, Factor: 2,
		Start: 0, Duration: base.TotalTime * 2,
	}}}
	res, err := Simulate(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TotalTime.After(base.TotalTime) {
		t.Fatalf("straggler makespan %v not longer than baseline %v",
			res.TotalTime, base.TotalTime)
	}
	if res.Report == nil || res.Report.Faults == nil {
		t.Fatal("fault section missing from RunReport")
	}
	fr := res.Report.Faults
	if fr.DegradedSec <= 0 {
		t.Fatalf("degraded time = %g, want > 0", fr.DegradedSec)
	}
	if err := res.Report.Validate(); err != nil {
		t.Fatalf("fault-run report failed validation: %v", err)
	}
	var buf bytes.Buffer
	if err := res.Report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"goodput"`) {
		t.Fatal("goodput missing from RunReport JSON")
	}
}

// A GPUFail with a checkpoint policy drives the resilience overlay: the
// extended timeline grows, goodput drops below 1, and the checkpoint cost
// is derived from the tensor footprint when not given explicitly.
func TestGPUFailCheckpointResilience(t *testing.T) {
	cfg := Config{Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32, Telemetry: true}
	base, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Faults = &faults.Schedule{
		Events: []faults.Event{{
			Kind: faults.GPUFail, GPU: 0, Start: base.TotalTime / 2,
		}},
		Checkpoint: &faults.Checkpoint{
			Interval: base.TotalTime / 4,
			Restart:  base.TotalTime / 10,
		},
	}
	res, err := Simulate(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	// The fault-free schedule itself is untouched (failure recovery is the
	// overlay's business)...
	if res.TotalTime != base.TotalTime {
		t.Fatalf("GPUFail perturbed the simulated schedule: %v vs %v",
			res.TotalTime, base.TotalTime)
	}
	// ...but the resilience accounting extends it.
	rr := res.Resilience
	if rr == nil || rr.Failures != 1 {
		t.Fatalf("resilience overlay = %+v", rr)
	}
	if !rr.TotalTime.After(res.TotalTime) {
		t.Fatalf("extended time %v not longer than makespan %v",
			rr.TotalTime, res.TotalTime)
	}
	if rr.CheckpointTime.AtOrBefore(0) {
		t.Fatal("derived checkpoint cost should be > 0")
	}
	if res.Goodput <= 0 || res.Goodput >= 1 {
		t.Fatalf("goodput = %g, want in (0,1)", res.Goodput)
	}
	if res.Report.Faults.Goodput != res.Goodput {
		t.Fatalf("report goodput %g != result goodput %g",
			res.Report.Faults.Goodput, res.Goodput)
	}
	if err := res.Report.Validate(); err != nil {
		t.Fatalf("report validation: %v", err)
	}
}

// goldenFaultDigest pins the event digest of the seeded fault run below: a
// schedule from faults.Generate(7, ...) over the resnet18/P1/DDP baseline.
// If this value changes, fault arming order or the flow network's
// degradation path changed — update only when the change is intentional.
const goldenFaultDigest = uint64(0xdbc390ae391fdfd9)

func seededFaultConfig(t *testing.T) (Config, *Result) {
	t.Helper()
	cfg := Config{Model: "resnet18", Platform: p1(), Parallelism: DDP,
		TraceBatch: 32}
	base, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo := BuildTopology(cfg.Platform)
	sched, err := faults.Generate(7, faults.GenConfig{
		NumGPUs:      len(topo.GPUs()),
		NumLinks:     len(topo.Links),
		Horizon:      base.TotalTime,
		LinkDegrades: 1,
		GPUSlowdowns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = sched
	return cfg, base
}

func TestSeededFaultReplayDigestPinned(t *testing.T) {
	cfg, base := seededFaultConfig(t)
	first, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.EventDigest != again.EventDigest || first.Events != again.Events {
		t.Fatalf("seeded fault run not replayable: %#x/%d vs %#x/%d",
			first.EventDigest, first.Events, again.EventDigest, again.Events)
	}
	if first.EventDigest == base.EventDigest {
		t.Fatal("effective fault schedule left the digest unchanged")
	}
	if first.EventDigest != goldenFaultDigest {
		t.Fatalf("seeded fault digest = %#x, want pinned %#x "+
			"(fault arming order changed?)", first.EventDigest,
			goldenFaultDigest)
	}
}
