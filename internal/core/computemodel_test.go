package core

import "testing"

func TestComputeModelSelection(t *testing.T) {
	for _, cm := range []string{"", "li", "roofline", "hybrid"} {
		res, err := Simulate(Config{Model: "resnet18", Platform: p1(),
			Parallelism: DDP, TraceBatch: 32, ComputeModel: cm})
		if err != nil {
			t.Fatalf("%q: %v", cm, err)
		}
		if res.PerIteration <= 0 {
			t.Fatalf("%q: no time", cm)
		}
	}
	if _, err := Simulate(Config{Model: "resnet18", Platform: p1(),
		Parallelism: DDP, TraceBatch: 32, ComputeModel: "magic"}); err == nil {
		t.Fatal("unknown compute model accepted")
	}
	// Cross-GPU traces require Li's rescaling.
	p3 := p2()
	if _, err := Simulate(Config{Model: "resnet18", Platform: p3,
		Parallelism: DDP, TraceBatch: 32, TraceGPU: "A40",
		ComputeModel: "roofline"}); err == nil {
		t.Fatal("cross-GPU roofline accepted")
	}
}

func TestHybridModelCompetitiveOnTransformerTP(t *testing.T) {
	// §8.2's promise: the alternative model helps underutilized workloads.
	li, err := Validate(Config{Model: "gpt2", Platform: p2(),
		Parallelism: TP, TraceBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Validate(Config{Model: "gpt2", Platform: p2(),
		Parallelism: TP, TraceBatch: 128, ComputeModel: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	// Allow a small tolerance: the hybrid must be at least competitive.
	if hy.Error > li.Error+0.02 {
		t.Fatalf("hybrid error %.2f%% much worse than Li %.2f%%",
			hy.Error*100, li.Error*100)
	}
}
