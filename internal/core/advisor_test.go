package core

import "testing"

func TestAdviseRanksStrategies(t *testing.T) {
	cands, err := Advise(Config{Model: "resnet50", Platform: p2(),
		TraceBatch: 128, GlobalBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 5 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Sorted: feasible first, then by time.
	for i := 1; i < len(cands); i++ {
		a, b := cands[i-1], cands[i]
		if !a.Feasible && b.Feasible {
			t.Fatal("infeasible candidate ranked above feasible one")
		}
		if a.Feasible == b.Feasible && a.PerIteration > b.PerIteration {
			t.Fatal("candidates not time-sorted")
		}
	}
	// Fig 12's conclusion: for a CNN at fixed total batch, DDP wins.
	if cands[0].Parallelism != DDP {
		t.Fatalf("winner = %+v, want DDP", cands[0])
	}
	// Every candidate carries a memory verdict.
	for _, c := range cands {
		if c.WorstMemUtil <= 0 {
			t.Fatalf("candidate %+v missing memory estimate", c)
		}
	}
}

func TestAdviseIncludesHybrids(t *testing.T) {
	cands, err := Advise(Config{Model: "resnet18", Platform: p2(),
		TraceBatch: 64, GlobalBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	var sawDPPP, sawDPTP bool
	for _, c := range cands {
		if c.Parallelism == DPPP {
			sawDPPP = true
		}
		if c.Parallelism == DPTP {
			sawDPTP = true
		}
	}
	if !sawDPPP || !sawDPTP {
		t.Fatalf("hybrids missing: %+v", cands)
	}
}

func TestAdviseSkipsIndivisibleHybrids(t *testing.T) {
	cands, err := Advise(Config{Model: "resnet18", Platform: p2(),
		TraceBatch: 63, GlobalBatch: 63})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.DPGroups > 1 {
			t.Fatalf("indivisible batch produced hybrid candidate %+v", c)
		}
	}
}

func TestAdviseFlagsOOM(t *testing.T) {
	// Llama at total batch 256 (64/GPU) on P2: DDP replicates the full
	// model and holds 64 samples of activations per GPU — must be flagged
	// infeasible on 80 GB A100s.
	cands, err := Advise(Config{Model: "llama32-1b", Platform: p2(),
		TraceBatch: 16, GlobalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	var ddp *Candidate
	for i := range cands {
		if cands[i].Parallelism == DDP {
			ddp = &cands[i]
		}
	}
	if ddp == nil {
		t.Fatal("DDP candidate missing")
	}
	if ddp.Feasible {
		t.Fatalf("llama@256 DDP on 80 GB A100s should be infeasible (util %.2f)",
			ddp.WorstMemUtil)
	}
}
