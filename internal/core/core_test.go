package core

import (
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/network"
	"triosim/internal/sim"
)

func p1() *gpu.Platform { p := gpu.P1; return &p }
func p2() *gpu.Platform { p := gpu.P2; return &p }

func TestSimulateSingleGPU(t *testing.T) {
	res, err := Simulate(Config{
		Model: "resnet18", Platform: p1(), Parallelism: Single,
		TraceBatch: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.ComputeTime <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.CommTime != 0 {
		t.Fatalf("single GPU should have no inter-GPU comm, got %v",
			res.CommTime)
	}
	if res.HostLoadTime <= 0 {
		t.Fatal("input staging missing")
	}
	if res.Tasks == 0 || res.Events == 0 {
		t.Fatal("no tasks or events recorded")
	}
}

func TestSimulateAllParallelisms(t *testing.T) {
	for _, par := range []Parallelism{DP, DDP, TP, PP} {
		res, err := Simulate(Config{
			Model: "resnet18", Platform: p2(), Parallelism: par,
			TraceBatch: 32, MicroBatches: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", par, err)
		}
		if res.TotalTime <= 0 {
			t.Fatalf("%s: zero time", par)
		}
		if res.CommTime <= 0 {
			t.Fatalf("%s: no communication", par)
		}
	}
}

func TestValidateErrorBands(t *testing.T) {
	// The paper's headline claims, at reduced scale: DDP error a few
	// percent, TP somewhat larger, PP larger still — all well under 25%.
	ddp, err := Validate(Config{Model: "resnet50", Platform: p1(),
		Parallelism: DDP, TraceBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ddp.Error > 0.10 {
		t.Fatalf("DDP error %.1f%% out of band", ddp.Error*100)
	}
	tp, err := Validate(Config{Model: "resnet50", Platform: p1(),
		Parallelism: TP, TraceBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Error > 0.20 {
		t.Fatalf("TP error %.1f%% out of band", tp.Error*100)
	}
	if ddp.Normalized <= 0 || tp.Normalized <= 0 {
		t.Fatal("normalized times missing")
	}
}

func TestGroundTruthSlowerThanPrediction(t *testing.T) {
	// hw pays overheads TrioSim skips, so ground truth ≥ prediction for
	// matched configurations (the residual is the validation error).
	pred, err := Simulate(Config{Model: "vgg11", Platform: p1(),
		Parallelism: DDP, TraceBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	actual, err := GroundTruth(Config{Model: "vgg11", Platform: p1(),
		Parallelism: DDP, TraceBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if actual.PerIteration < pred.PerIteration {
		t.Fatalf("ground truth %v faster than prediction %v",
			actual.PerIteration, pred.PerIteration)
	}
}

func TestCrossGPUPrediction(t *testing.T) {
	// Fig 11 case 1: trace on A40, predict on an H100 platform. Error stays
	// bounded and the predicted time reflects the faster GPU.
	p3 := gpu.P3
	p3.NumGPUs = 2
	cross, err := Validate(Config{Model: "resnet50", Platform: &p3,
		Parallelism: DDP, TraceBatch: 64, TraceGPU: "A40"})
	if err != nil {
		t.Fatal(err)
	}
	if cross.Error > 0.35 {
		t.Fatalf("cross-GPU error %.1f%% out of band", cross.Error*100)
	}
	same, err := Validate(Config{Model: "resnet50", Platform: &p3,
		Parallelism: DDP, TraceBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if same.Error > cross.Error+0.02 {
		t.Fatalf("same-GPU error %.1f%% should not exceed cross-GPU %.1f%%",
			same.Error*100, cross.Error*100)
	}
}

func TestBatchSizeWhatIf(t *testing.T) {
	// The single-trace capability: change the simulated batch without a new
	// trace (Fig 6 setting: trace at 128 predicting 256 — here scaled down).
	res64, err := Simulate(Config{Model: "resnet18", Platform: p1(),
		Parallelism: Single, TraceBatch: 64, GlobalBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	res128, err := Simulate(Config{Model: "resnet18", Platform: p1(),
		Parallelism: Single, TraceBatch: 64, GlobalBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	r := float64(res128.PerIteration) / float64(res64.PerIteration)
	if r < 1.5 || r > 2.2 {
		t.Fatalf("batch doubling ratio %.3f", r)
	}
}

func TestTPCommRatioExceedsDDP(t *testing.T) {
	// Fig 13's shape: tensor parallelism has a higher communication share
	// than distributed data parallelism on P1.
	tp, err := Simulate(Config{Model: "resnet50", Platform: p1(),
		Parallelism: TP, TraceBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	ddp, err := Simulate(Config{Model: "resnet50", Platform: p1(),
		Parallelism: DDP, TraceBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	tpRatio := float64(tp.CommTime) / float64(tp.TotalTime)
	ddpRatio := float64(ddp.CommTime) / float64(ddp.TotalTime)
	if tpRatio <= ddpRatio {
		t.Fatalf("TP comm ratio %.2f not above DDP %.2f", tpRatio, ddpRatio)
	}
}

func TestDPFastestAtFixedTotalBatch(t *testing.T) {
	// Fig 12's headline: with the total workload constant, data parallelism
	// is the most efficient option for CNNs.
	times := map[Parallelism]sim.VTime{}
	for _, par := range []Parallelism{DDP, TP, PP} {
		res, err := Simulate(Config{Model: "resnet50", Platform: p2(),
			Parallelism: par, TraceBatch: 128, GlobalBatch: 128,
			MicroBatches: 2})
		if err != nil {
			t.Fatal(err)
		}
		times[par] = res.PerIteration
	}
	if times[DDP] >= times[TP] || times[DDP] >= times[PP] {
		t.Fatalf("DP not fastest: %v", times)
	}
}

func TestCustomTopologyOverride(t *testing.T) {
	topo := network.Ring(network.Config{
		NumGPUs:       4,
		LinkBandwidth: 50e9,
		LinkLatency:   1 * sim.USec,
		HostBandwidth: 20e9,
		HostLatency:   5 * sim.USec,
	})
	res, err := Simulate(Config{Model: "resnet18", Platform: p2(),
		Topology: topo, Parallelism: DDP, TraceBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("custom topology run failed")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Simulate(Config{Model: "resnet18"}); err == nil {
		t.Fatal("missing platform accepted")
	}
	if _, err := Simulate(Config{Platform: p1()}); err == nil {
		t.Fatal("missing model accepted")
	}
	if _, err := Simulate(Config{Model: "nope", Platform: p1()}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Simulate(Config{Model: "resnet18", Platform: p1(),
		Parallelism: "quantum"}); err == nil {
		t.Fatal("unknown parallelism accepted")
	}
	if _, err := Simulate(Config{Model: "resnet18", Platform: p1(),
		TraceGPU: "TPU"}); err == nil {
		t.Fatal("unknown trace GPU accepted")
	}
	if _, err := GroundTruth(Config{Platform: p1()}); err == nil {
		t.Fatal("ground truth without model accepted")
	}
}

func TestBuildTopologyKinds(t *testing.T) {
	kinds := []gpu.TopologyKind{gpu.TopoPCIeTree, gpu.TopoNVSwitch,
		gpu.TopoRing, gpu.TopoMesh}
	for _, k := range kinds {
		p := gpu.P2
		p.Topology = k
		topo := BuildTopology(&p)
		if len(topo.GPUs()) != p.NumGPUs {
			t.Fatalf("%s: %d GPUs", k, len(topo.GPUs()))
		}
		if topo.Host() < 0 && k != gpu.TopoPCIeTree {
			t.Fatalf("%s: no host", k)
		}
		// All GPU pairs routable.
		gs := topo.GPUs()
		if _, err := topo.Route(gs[0], gs[len(gs)-1]); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
}

func TestEffectsOnlyInGroundTruth(t *testing.T) {
	// TrioSim's own graph has no Delay tasks; the hardware graph does (PP
	// CPU overheads, collective step latencies).
	cfgBase := Config{Model: "resnet18", Platform: p2(), Parallelism: PP,
		TraceBatch: 32, MicroBatches: 4}
	pred, err := Simulate(cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := GroundTruth(cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	if gt.PerIteration <= pred.PerIteration {
		t.Fatalf("PP ground truth %v not above prediction %v (effects lost)",
			gt.PerIteration, pred.PerIteration)
	}
	_ = hwsim.NoEffects
}
