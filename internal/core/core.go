// Package core is TrioSim proper: it wires the tracer substitute, the
// multi-GPU trace extrapolator, the linear-regression operator performance
// model, and the lightweight network model into a single simulator with the
// paper's inputs (a single-GPU trace, a network topology, GPU parameters,
// and a parallelism scheme) and outputs (predicted execution time, per-phase
// communication/computation breakdown, and a timeline).
package core

import (
	"context"
	"fmt"
	"time"

	"triosim/internal/extrapolator"
	"triosim/internal/faults"
	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/memory"
	"triosim/internal/network"
	"triosim/internal/perfmodel"
	"triosim/internal/sim"
	"triosim/internal/spantrace"
	"triosim/internal/task"
	"triosim/internal/telemetry"
	"triosim/internal/timeline"
	"triosim/internal/trace"
	"triosim/internal/tracecache"
)

// Parallelism selects the training strategy to simulate.
type Parallelism string

// Supported parallelism strategies.
const (
	Single Parallelism = "single"
	DP     Parallelism = "dp"  // standard DataParallel
	DDP    Parallelism = "ddp" // DistributedDataParallel (overlapped)
	TP     Parallelism = "tp"  // tensor parallelism
	PP     Parallelism = "pp"  // pipeline parallelism (GPipe)
	// Hybrid strategies: DPGroups data-parallel replicas of pipeline or
	// tensor parallel groups (an extension beyond the paper's DP/TP/PP).
	DPPP Parallelism = "dp+pp"
	DPTP Parallelism = "dp+tp"
	// DPTPPP is full 3D parallelism (Megatron-style DP×TP×PP) for
	// cluster-scale runs: TPRanks×PPStages GPUs per replica, the rest of
	// NumGPUs split into data-parallel replicas.
	DPTPPP Parallelism = "dp+tp+pp"
	// ZeRO1 is ZeRO stage-1 data parallelism: gradients reduce-scattered,
	// optimizer state sharded, parameters all-gathered.
	ZeRO1 Parallelism = "zero1"
)

// Config describes one simulation.
type Config struct {
	// Model is the workload name from the model zoo (used when Trace is
	// nil).
	Model string
	// Trace optionally supplies a pre-collected single-GPU trace.
	Trace *trace.Trace
	// TraceBatch is the batch size to collect the trace at (default: the
	// platform-appropriate 128).
	TraceBatch int
	// TraceGPU names the GPU the trace is collected on (default: the
	// platform's GPU). A different GPU exercises Li's Model's cross-GPU
	// rescaling (Fig 11 case 1).
	TraceGPU string

	// Platform is the simulated multi-GPU system.
	Platform *gpu.Platform
	// Topology optionally overrides the platform's default topology.
	Topology *network.Topology

	Parallelism Parallelism
	// NumGPUs defaults to the platform's GPU count.
	NumGPUs int
	// GlobalBatch is the simulated total mini-batch (default: trace batch).
	GlobalBatch int
	// MicroBatches is the GPipe chunk count for PP.
	MicroBatches int
	// BucketBytes is the DDP gradient bucket size (default 25 MB).
	BucketBytes float64
	// Iterations to simulate (default 1).
	Iterations int
	// DPGroups is the number of data-parallel replicas for the hybrid
	// strategies (default 2).
	DPGroups int
	// Collective selects the gradient AllReduce algorithm: "auto"
	// (default: hierarchical on tiered topologies, ring otherwise),
	// "ring", "tree", or "hier".
	Collective string
	// TPRanks and PPStages size the tensor and pipeline dimensions of the
	// "dp+tp+pp" strategy (default 1 each); the data-parallel dimension is
	// NumGPUs / (TPRanks·PPStages).
	TPRanks  int
	PPStages int
	// FuseCompute collapses sequential op chains into single compute tasks
	// (see extrapolator.Config.FuseCompute). Needed for cluster-scale runs.
	FuseCompute bool
	// NetApproxTol enables the flow network's approximate-equilibrium mode
	// with the given relative tolerance (0 = exact, the default). Replay
	// digests are only stable on the exact path.
	NetApproxTol float64
	// InferenceOnly simulates forward-only execution (no backward pass, no
	// gradient synchronization, no optimizer).
	InferenceOnly bool
	// ComputeModel selects the operator performance model: "li" (default,
	// the paper's Li's Model regression), "roofline" (NeuSight-style pooled
	// device roofline), or "hybrid" (Li where the per-type fit is size-
	// diverse, roofline otherwise — §8.2's alternative-model integration).
	ComputeModel string
	// Clock supplies wall-clock readings for Result.WallClock (the paper's
	// Fig 14 simulator-runtime metric). The sim core never reads the host
	// clock itself — triosimvet's no-wallclock analyzer enforces that — so
	// callers that want the metric pass time.Now here. Nil leaves WallClock
	// zero.
	Clock func() time.Time
	// Telemetry enables the unified telemetry layer: a Collector observes
	// task completions, network flows, and engine dispatch, and Result.Report
	// carries the structured RunReport. Observation is side-effect-free, so
	// Result.EventDigest is identical with or without it.
	Telemetry bool
	// Metrics optionally supplies the registry the Collector populates
	// (implies Telemetry). Share one registry with a monitor.RTM to serve a
	// live Prometheus /metrics surface.
	Metrics *telemetry.Registry
	// SpanTrace enables the span recorder: Result.Spans carries the
	// virtual-time span log (one span per task and fault window plus counter
	// series) and Result.CriticalPath its critical-path analysis. Like
	// Telemetry, observation is side-effect-free: Result.EventDigest is
	// identical with or without it (pinned by a regression test).
	SpanTrace bool
	// Hooks are extra engine hooks registered before the run (e.g. a
	// monitor.RTM progress hook). Hooks must not schedule events.
	Hooks []sim.Hook
	// Context optionally bounds the simulation: the engine polls ctx.Err()
	// periodically during dispatch and terminates early, and the run returns
	// the context's error. internal/sweep uses this for per-scenario timeouts
	// and sweep-wide cancellation. Nil means no cancellation.
	Context context.Context
	// Cache optionally shares collected traces and fitted operator timers
	// across simulations: scenarios with the same (model, trace batch, GPU
	// spec, noise amplitude) reuse one immutable trace instead of rebuilding
	// it. internal/sweep and cmd/experiments set this by default; a supplied
	// Trace bypasses the cache. Cached values are shared read-only — see
	// docs/PERFORMANCE.md for the keying rules and copy-on-write contract.
	Cache *tracecache.Store
	// Faults optionally injects a deterministic fault schedule: degraded or
	// dead links re-solve the flow network's fair shares mid-run, GPU
	// slowdown windows stretch compute tasks (stragglers), and GPUFail
	// events drive the checkpoint/restart resilience overlay
	// (Result.Resilience, Result.Goodput). An empty or all-no-op schedule
	// leaves the run bit-identical to Faults being nil. See docs/RESILIENCE.md.
	Faults *faults.Schedule
}

// telemetryOn reports whether a Collector should run.
func (c *Config) telemetryOn() bool { return c.Telemetry || c.Metrics != nil }

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Platform == nil {
		return out, fmt.Errorf("core: no platform")
	}
	if out.NumGPUs == 0 {
		out.NumGPUs = out.Platform.NumGPUs
	}
	if out.TraceBatch == 0 {
		out.TraceBatch = 128
	}
	if out.TraceGPU == "" {
		out.TraceGPU = out.Platform.GPU.Name
	}
	if out.Parallelism == "" {
		out.Parallelism = Single
	}
	if out.Iterations == 0 {
		out.Iterations = 1
	}
	return out, nil
}

// Result is the simulator's output.
type Result struct {
	// TotalTime is the simulated end-to-end time for all iterations.
	TotalTime sim.VTime
	// PerIteration is TotalTime / iterations.
	PerIteration sim.VTime
	// ComputeTime is the union time during which at least one GPU computed.
	ComputeTime sim.VTime
	// CommTime is the union time during which at least one inter-GPU
	// transfer was in flight.
	CommTime sim.VTime
	// HostLoadTime is the union time of host→GPU input staging.
	HostLoadTime sim.VTime
	// Timeline holds every recorded interval for deeper analysis.
	Timeline *timeline.Timeline
	// Tasks is the extrapolated graph size.
	Tasks int
	// Events is the number of engine events dispatched.
	Events uint64
	// WallClock is how long the simulation itself took to run (the paper's
	// Fig 14 metric). Zero unless Config.Clock was set.
	WallClock time.Duration
	// EventDigest is the FNV-1a digest of the dispatched event schedule
	// (time, handler, sequence). Identical configurations must produce
	// identical digests; triosimvet -replay uses this as its runtime
	// determinism gate.
	EventDigest uint64
	// Report is the structured telemetry RunReport (nil unless
	// Config.Telemetry or Config.Metrics enabled collection).
	Report *telemetry.RunReport
	// Spans is the virtual-time span log (nil unless Config.SpanTrace).
	// Export with Spans.WriteChromeTrace for Perfetto / chrome://tracing.
	Spans *spantrace.Log
	// CriticalPath is the makespan-setting chain extracted from Spans with
	// per-category attribution and a near-critical slack table (nil unless
	// Config.SpanTrace).
	CriticalPath *spantrace.Report
	// Resilience is the checkpoint/restart overlay's accounting (nil unless
	// Config.Faults was set): the makespan extended with checkpoint pauses,
	// failure restarts, and replayed work.
	Resilience *faults.ResilienceResult
	// Goodput is useful vtime / total vtime under the fault schedule (1
	// when no failure fired and no checkpoint policy was set). Zero unless
	// Config.Faults was set.
	Goodput float64
}

// BuildTopology constructs the platform's default interconnect.
func BuildTopology(p *gpu.Platform) *network.Topology {
	cfg := network.Config{
		NumGPUs:       p.NumGPUs,
		LinkBandwidth: p.LinkBandwidth,
		LinkLatency:   p.LinkLatency,
		HostBandwidth: p.HostBandwidth,
		HostLatency:   p.HostLatency,
	}
	switch p.Topology {
	case gpu.TopoPCIeTree:
		return network.PCIeTree(cfg)
	case gpu.TopoRing:
		return network.Ring(cfg)
	case gpu.TopoMesh:
		// Square-ish mesh.
		rows := 1
		for rows*rows < p.NumGPUs {
			rows++
		}
		cols := (p.NumGPUs + rows - 1) / rows
		return network.Mesh(rows, cols, cfg)
	default:
		return network.Switch(cfg)
	}
}

// collectTrace returns the configured trace, collecting one from the model
// zoo + hardware emulator — or the shared trace cache — when none was
// supplied. Traces returned through the cache are shared read-only.
func collectTrace(cfg Config) (*trace.Trace, error) {
	if cfg.Trace != nil {
		return cfg.Trace, nil
	}
	if cfg.Model == "" {
		return nil, fmt.Errorf("core: neither Trace nor Model given")
	}
	spec, err := gpu.SpecByName(cfg.TraceGPU)
	if err != nil {
		return nil, err
	}
	if cfg.Cache == nil {
		return hwsim.CollectTrace(cfg.Model, cfg.TraceBatch, spec)
	}
	return cfg.Cache.GetTrace(traceKey(cfg.Model, cfg.TraceBatch, spec),
		func() (*trace.Trace, error) {
			return hwsim.CollectTrace(cfg.Model, cfg.TraceBatch, spec)
		})
}

// traceKey content-addresses a zoo trace: everything that influences the
// collected bytes (model, batch, the full GPU spec by value, and the
// stamping timer's noise amplitude) is part of the key.
func traceKey(model string, batch int, spec *gpu.Spec) tracecache.Key {
	return tracecache.Key{
		Model:    model,
		Batch:    batch,
		Spec:     *spec,
		NoiseAmp: hwsim.DefaultNoiseAmp,
	}
}

// extrapolate builds the task graph for the configured parallelism.
func extrapolate(cfg Config, tr *trace.Trace, topo *network.Topology,
	timer extrapolator.OpTimer, effects hwsim.Effects,
	collLog *telemetry.CollectiveLog) (*extrapolator.Result, error) {

	ecfg := extrapolator.Config{
		Trace:        tr,
		Topo:         topo,
		NumGPUs:      cfg.NumGPUs,
		Timer:        timer,
		Effects:      effects,
		GlobalBatch:  cfg.GlobalBatch,
		MicroBatches: cfg.MicroBatches,
		BucketBytes:  cfg.BucketBytes,
		Iterations:   cfg.Iterations,
		Collective:   cfg.Collective,
		FuseCompute:  cfg.FuseCompute,
		ForwardOnly:  cfg.InferenceOnly,
		Collectives:  collLog,
	}
	switch cfg.Parallelism {
	case Single:
		ecfg.NumGPUs = 1
		return extrapolator.SingleGPU(ecfg)
	case DP:
		return extrapolator.DataParallel(ecfg, false)
	case DDP:
		return extrapolator.DataParallel(ecfg, true)
	case TP:
		return extrapolator.TensorParallel(ecfg)
	case PP:
		return extrapolator.PipelineParallel(ecfg)
	case DPPP:
		return extrapolator.HybridDPPP(ecfg, hybridGroups(cfg))
	case DPTP:
		return extrapolator.HybridDPTP(ecfg, hybridGroups(cfg))
	case DPTPPP:
		tp, pp := cfg.TPRanks, cfg.PPStages
		if tp < 1 {
			tp = 1
		}
		if pp < 1 {
			pp = 1
		}
		if cfg.NumGPUs%(tp*pp) != 0 {
			return nil, fmt.Errorf("core: %d GPUs not divisible by tp·pp = %d×%d",
				cfg.NumGPUs, tp, pp)
		}
		return extrapolator.Hybrid3D(ecfg, cfg.NumGPUs/(tp*pp), tp, pp)
	case ZeRO1:
		return extrapolator.DataParallelZeRO(ecfg)
	}
	return nil, fmt.Errorf("core: unknown parallelism %q", cfg.Parallelism)
}

// execute runs a task graph over the platform network and packages results.
// ckptCost is the resolved per-checkpoint pause for the resilience overlay
// (zero when Config.Faults carries no checkpoint policy).
func execute(cfg Config, topo *network.Topology, res *extrapolator.Result,
	rampBytes float64, collLog *telemetry.CollectiveLog,
	ckptCost sim.VTime) (*Result, error) {

	var start time.Time
	if cfg.Clock != nil {
		start = cfg.Clock()
	}
	eng := sim.NewSerialEngine()
	digest := sim.NewDigestHook()
	eng.RegisterHook(digest)
	net := network.NewFlowNetwork(eng, topo)
	net.RampBytes = rampBytes
	net.ApproxTol = cfg.NetApproxTol
	tl := timeline.New()
	x := task.NewExecutor(eng, net, res.Graph, tl)

	// Self-profiling: time the max-min solver on the injected clock (the sim
	// core never reads the host clock itself). Wall time feeds counter
	// tracks and gauges only — virtual time is unaffected.
	net.SolveClock = cfg.Clock

	var rec *spantrace.Recorder
	if cfg.SpanTrace {
		rec = spantrace.NewRecorder(res.Graph, topo)
		x.Observe(rec)
		eng.RegisterHook(rec.EngineHook(eng.Pending))
	}

	var inj *faults.Injector
	if cfg.Faults != nil {
		var err error
		inj, err = faults.NewInjector(eng, net, cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		// Straggler model: compute durations stretch by the enclosing
		// GPUSlowdown window's factor. Link windows become engine events
		// that rewrite bandwidth and re-solve the fair shares; an empty
		// schedule arms nothing and the run stays digest-identical.
		x.Stretch = inj.Factor
		inj.Arm()
		for _, w := range inj.Windows() {
			tl.Add(faults.TimelineResource, w.Label(), "fault", w.Start, w.End)
			if rec != nil {
				rec.AddFault(w.Label(), w.Start, w.End)
			}
		}
		for _, f := range inj.Failures() {
			tl.Add(faults.TimelineResource, faults.FailLabel(f), "fault",
				f.At, f.At)
			if rec != nil {
				rec.AddFault(faults.FailLabel(f), f.At, f.At)
			}
		}
	}

	var coll *telemetry.Collector
	if cfg.telemetryOn() {
		reg := cfg.Metrics
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		coll = telemetry.NewCollector(reg, topo, collLog)
		eng.RegisterHook(coll.EngineHook(eng.Pending))
		x.Observe(coll)
	}
	switch {
	case coll != nil && rec != nil:
		net.Observer = network.MultiFlowObserver{coll, rec}
	case coll != nil:
		net.Observer = coll
	case rec != nil:
		net.Observer = rec
	}
	for _, h := range cfg.Hooks {
		eng.RegisterHook(h)
	}
	if ctx := cfg.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: simulation canceled: %w", err)
		}
		// Poll the context every 1024 dispatches: ctx.Err() is a mutex
		// acquisition, too expensive per event, and cancellation latency of
		// ~1k events is fine for sweep timeouts.
		var dispatched uint64
		eng.RegisterHook(sim.HookFunc(func(hc sim.HookCtx) {
			if hc.Pos != sim.HookPosAfterEvent {
				return
			}
			dispatched++
			if dispatched&1023 == 0 && ctx.Err() != nil {
				eng.Terminate()
			}
		}))
	}

	makespan, err := x.Run()
	if err != nil {
		if cfg.Context != nil && cfg.Context.Err() != nil {
			// Terminate left the executor mid-graph; the context error is
			// the cause, not the "stalled" symptom.
			return nil, fmt.Errorf("core: simulation canceled: %w",
				cfg.Context.Err())
		}
		return nil, err
	}
	out := &Result{
		TotalTime:    makespan,
		PerIteration: makespan / sim.VTime(cfg.Iterations),
		ComputeTime:  tl.UnionTime(timeline.ByPhase("compute")),
		CommTime:     tl.UnionTime(timeline.ByPhase("comm")),
		HostLoadTime: tl.UnionTime(timeline.ByPhase("hostload")),
		Timeline:     tl,
		Tasks:        res.Graph.Len(),
		Events:       eng.EventCount(),
		EventDigest:  digest.Sum64(),
	}
	if cfg.Clock != nil {
		out.WallClock = cfg.Clock().Sub(start)
	}
	if rec != nil {
		// End-of-run self-profiling totals on the counter tracks. The solver
		// wall-time sample exists only when a clock was injected, so traces
		// from clockless runs stay fully deterministic.
		rec.Sample(spantrace.CounterQueueHighWatr, eng.CurrentTime(),
			float64(eng.QueueHighWater()))
		if cfg.Clock != nil {
			rec.Sample(spantrace.CounterSolveWallMs, eng.CurrentTime(),
				net.SolveWall.Seconds()*1e3)
		}
		out.Spans = rec.Finalize()
		out.CriticalPath = out.Spans.CriticalPath(0)
	}
	if cfg.Faults != nil {
		rc := faults.ResilienceConfig{Work: makespan}
		if cp := cfg.Faults.Checkpoint; cp != nil {
			rc.Interval = cp.Interval
			rc.CheckpointCost = ckptCost
			rc.RestartCost = cp.Restart
		}
		for _, f := range inj.Failures() {
			rc.Failures = append(rc.Failures, f.At)
		}
		rres, err := faults.Evaluate(rc)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		out.Resilience = rres
		out.Goodput = rres.Goodput
	}
	if coll != nil {
		numGPUs := cfg.NumGPUs
		if cfg.Parallelism == Single {
			numGPUs = 1
		}
		out.Report = coll.Finalize(telemetry.RunInfo{
			Model:           cfg.Model,
			Platform:        cfg.Platform.Name,
			Parallelism:     string(cfg.Parallelism),
			NumGPUs:         numGPUs,
			Iterations:      cfg.Iterations,
			TotalSec:        makespan.Seconds(),
			PerIterationSec: out.PerIteration.Seconds(),
			Events:          out.Events,
			QueueHighWater:  eng.QueueHighWater(),
			NetTotalBytes:   net.TotalBytes,
			NetTransfers:    net.TotalTransfers,
			NetSolveSeconds: net.SolveWall.Seconds(),
			Parallel:        res.Meta,
		})
		out.Report.CriticalPath = out.CriticalPath
		out.Report.Engine.EventDigest = fmt.Sprintf("%#x", out.EventDigest)
		if cfg.Clock != nil && out.WallClock > 0 {
			out.Report.Engine.WallSeconds = out.WallClock.Seconds()
			out.Report.Engine.EventsPerSecond =
				float64(out.Events) / out.Report.Engine.WallSeconds
		}
		if cfg.Faults != nil {
			out.Report.Faults = faultReport(inj, out.Resilience, makespan)
		}
	}
	return out, nil
}

// faultReport converts the injector's windows and the resilience overlay's
// accounting into the telemetry RunReport section.
func faultReport(inj *faults.Injector, rr *faults.ResilienceResult,
	makespan sim.VTime) *telemetry.FaultReport {

	ws := inj.Windows()
	fr := &telemetry.FaultReport{
		DegradedSec:   faults.DegradedSeconds(ws, makespan),
		Failures:      rr.Failures,
		Checkpoints:   rr.Checkpoints,
		CheckpointSec: rr.CheckpointTime.Seconds(),
		ReplaySec:     rr.ReplayTime.Seconds(),
		RestartSec:    rr.RestartTime.Seconds(),
		UsefulSec:     rr.UsefulTime.Seconds(),
		ExtendedSec:   rr.TotalTime.Seconds(),
		Goodput:       rr.Goodput,
	}
	for _, w := range ws {
		fr.Windows = append(fr.Windows, telemetry.FaultWindow{
			Kind:     string(w.Kind),
			Resource: w.ResourceName(),
			Factor:   w.Factor,
			StartSec: w.Start.Seconds(),
			EndSec:   w.End.Seconds(),
		})
	}
	for _, f := range inj.Failures() {
		fr.Windows = append(fr.Windows, telemetry.FaultWindow{
			Kind:     string(faults.GPUFail),
			Resource: fmt.Sprintf("gpu%d", f.GPU),
			StartSec: f.At.Seconds(),
			EndSec:   f.At.Seconds(),
		})
	}
	return fr
}

// Simulate is TrioSim's prediction path: fit Li's Model on the single-GPU
// trace (rescaling it when the trace came from a different GPU than the
// simulated platform), extrapolate to the multi-GPU configuration with no
// hardware protocol overheads, and execute over the lightweight network
// model.
func Simulate(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	tr, err := collectTrace(cfg)
	if err != nil {
		return nil, err
	}
	timer, err := fitTimerCached(cfg, tr)
	if err != nil {
		return nil, err
	}
	topo := cfg.Topology
	if topo == nil {
		topo = BuildTopology(cfg.Platform)
	}
	var collLog *telemetry.CollectiveLog
	if cfg.telemetryOn() {
		collLog = telemetry.NewCollectiveLog()
	}
	eres, err := extrapolate(cfg, tr, topo, timer, hwsim.NoEffects, collLog)
	if err != nil {
		return nil, err
	}
	res, err := execute(cfg, topo, eres, 0, collLog, checkpointCost(cfg, tr))
	if err != nil {
		return nil, err
	}
	attachCacheStats(cfg, res)
	return res, nil
}

// fitTimer fits the configured operator performance model on the trace,
// rescaling Li's Model when the trace came from a different GPU than the
// simulated platform.
func fitTimer(cfg Config, tr *trace.Trace) (extrapolator.OpTimer, error) {
	crossGPU := tr.Device != cfg.Platform.GPU.Name
	switch cfg.ComputeModel {
	case "", "li":
		model, err := perfmodel.Fit(tr)
		if err != nil {
			return nil, err
		}
		if crossGPU {
			from, err := gpu.SpecByName(tr.Device)
			if err != nil {
				return nil, err
			}
			model = model.Rescale(from, &cfg.Platform.GPU)
		}
		return model, nil
	case "roofline":
		if crossGPU {
			return nil, fmt.Errorf("core: roofline model has no cross-GPU rescaling (trace from %s, platform %s)",
				tr.Device, cfg.Platform.GPU.Name)
		}
		return perfmodel.FitRoofline(tr)
	case "hybrid":
		if crossGPU {
			return nil, fmt.Errorf("core: hybrid model has no cross-GPU rescaling (trace from %s, platform %s)",
				tr.Device, cfg.Platform.GPU.Name)
		}
		return perfmodel.FitHybrid(tr)
	}
	return nil, fmt.Errorf("core: unknown compute model %q", cfg.ComputeModel)
}

// fitTimerCached memoizes fitTimer through the trace cache when the trace is
// itself cache-addressable (a zoo trace, not a caller-supplied one). Fitting
// is pure and fitted models are read-only at prediction time, so sharing one
// model across scenarios is safe.
func fitTimerCached(cfg Config, tr *trace.Trace) (extrapolator.OpTimer, error) {
	if cfg.Cache == nil || cfg.Trace != nil {
		return fitTimer(cfg, tr)
	}
	spec, err := gpu.SpecByName(cfg.TraceGPU)
	if err != nil {
		return nil, err
	}
	cm := cfg.ComputeModel
	if cm == "" {
		cm = "li"
	}
	tk := tracecache.TimerKey{
		Trace:        traceKey(cfg.Model, cfg.TraceBatch, spec),
		ComputeModel: cm,
		Target:       cfg.Platform.GPU,
	}
	return cfg.Cache.GetTimer(tk, func() (tracecache.OpTimer, error) {
		return fitTimer(cfg, tr)
	})
}

// attachCacheStats copies the shared store's counters into the run's
// telemetry report. The counters are store-wide — they accumulate across
// every simulation sharing the cache — so this section is explicitly outside
// the RunReport byte-identity guarantee and is omitted when no cache is
// configured.
func attachCacheStats(cfg Config, res *Result) {
	if cfg.Cache == nil {
		return
	}
	st := cfg.Cache.Stats()
	if res.Report != nil {
		res.Report.TraceCache = &telemetry.TraceCacheStat{
			TraceHits:   st.TraceHits,
			TraceMisses: st.TraceMisses,
			TimerHits:   st.TimerHits,
			TimerMisses: st.TimerMisses,
			Traces:      st.Traces,
			Timers:      st.Timers,
			Bytes:       st.Bytes,
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge("triosim_tracecache_trace_hits", "", "",
			"trace cache trace hits (store-wide)").Set(float64(st.TraceHits))
		cfg.Metrics.Gauge("triosim_tracecache_trace_misses", "", "",
			"trace cache trace misses (store-wide)").Set(float64(st.TraceMisses))
		cfg.Metrics.Gauge("triosim_tracecache_timer_hits", "", "",
			"trace cache timer hits (store-wide)").Set(float64(st.TimerHits))
		cfg.Metrics.Gauge("triosim_tracecache_timer_misses", "", "",
			"trace cache timer misses (store-wide)").Set(float64(st.TimerMisses))
		cfg.Metrics.Gauge("triosim_tracecache_bytes", "", "",
			"trace cache resident bytes (store-wide)").Set(float64(st.Bytes))
	}
	if res.Spans != nil {
		// Store-wide totals on the trace's counter tracks, stamped at the end
		// of the run.
		at := res.TotalTime
		res.Spans.Sample(spantrace.CounterCacheTrHits, at, float64(st.TraceHits))
		res.Spans.Sample(spantrace.CounterCacheTrMiss, at, float64(st.TraceMisses))
		res.Spans.Sample(spantrace.CounterCacheTmHits, at, float64(st.TimerHits))
		res.Spans.Sample(spantrace.CounterCacheTmMiss, at, float64(st.TimerMisses))
		res.Spans.Sample(spantrace.CounterCacheBytes, at, float64(st.Bytes))
	}
}

// checkpointCost resolves the per-checkpoint pause for the resilience
// overlay. An explicit Checkpoint.Cost wins; zero derives it from the
// checkpointed state's size — weights plus optimizer state, the tensors a
// training checkpoint must persist — moved over the host staging path.
func checkpointCost(cfg Config, tr *trace.Trace) sim.VTime {
	if cfg.Faults == nil || cfg.Faults.Checkpoint == nil {
		return 0
	}
	if cp := cfg.Faults.Checkpoint; cp.Cost.After(0) {
		return cp.Cost
	}
	// Optimizer state mirrors memory.Estimate's default: 4 bytes/param
	// (SGD with momentum), the same size as the fp32 weights.
	bytes := 2 * float64(tr.WeightBytes())
	if cfg.Platform.HostBandwidth <= 0 {
		return 0
	}
	return cfg.Platform.HostLatency + sim.VTime(bytes/cfg.Platform.HostBandwidth)
}

// GroundTruth is the reference-hardware path standing in for the paper's
// physical platforms: the workload is "executed" natively at the simulated
// sizes with hwsim's nonlinear operator timer and the platform's protocol
// overheads. TrioSim's predictions are validated against this.
func GroundTruth(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.Model == "" {
		return nil, fmt.Errorf("core: ground truth requires a zoo model name")
	}
	// Native trace on the platform's own GPU at the simulated global batch:
	// real hardware does not extrapolate across batch sizes or devices.
	batch := cfg.GlobalBatch
	if batch == 0 {
		batch = cfg.TraceBatch
	}
	collect := func() (*trace.Trace, error) {
		return hwsim.CollectTrace(cfg.Model, batch, &cfg.Platform.GPU)
	}
	var tr *trace.Trace
	if cfg.Cache != nil {
		tr, err = cfg.Cache.GetTrace(traceKey(cfg.Model, batch,
			&cfg.Platform.GPU), collect)
	} else {
		tr, err = collect()
	}
	if err != nil {
		return nil, err
	}
	gcfg := cfg
	gcfg.GlobalBatch = batch
	topo := cfg.Topology
	if topo == nil {
		topo = BuildTopology(cfg.Platform)
	}
	timer := hwsim.NewTimer(&cfg.Platform.GPU)
	effects := hwsim.PlatformEffects(cfg.Platform)
	var collLog *telemetry.CollectiveLog
	if gcfg.telemetryOn() {
		collLog = telemetry.NewCollectiveLog()
	}
	eres, err := extrapolate(gcfg, tr, topo, timer, effects, collLog)
	if err != nil {
		return nil, err
	}
	res, err := execute(gcfg, topo, eres, effects.CommRampBytes, collLog,
		checkpointCost(gcfg, tr))
	if err != nil {
		return nil, err
	}
	attachCacheStats(gcfg, res)
	return res, nil
}

func hybridGroups(cfg Config) int {
	if cfg.DPGroups > 0 {
		return cfg.DPGroups
	}
	return 2
}

// Comparison holds a predicted-vs-hardware pair, the paper's validation
// unit.
type Comparison struct {
	Model     string
	Predicted sim.VTime
	Actual    sim.VTime
	// Error is |Predicted-Actual| / Actual.
	Error float64
	// Normalized is Predicted / Actual (the paper's normalized-time bars).
	Normalized float64
}

// Validate runs both paths and compares per-iteration times.
func Validate(cfg Config) (*Comparison, error) {
	cmp, _, _, err := ValidatePair(cfg)
	return cmp, err
}

// ValidatePair is Validate returning the two underlying results as well, so
// callers can export the prediction's telemetry or span trace alongside the
// comparison (cmd/experiments does).
func ValidatePair(cfg Config) (*Comparison, *Result, *Result, error) {
	pred, err := Simulate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	actual, err := GroundTruth(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	p := float64(pred.PerIteration)
	a := float64(actual.PerIteration)
	diff := p - a
	if diff < 0 {
		diff = -diff
	}
	return &Comparison{
		Model:      cfg.Model,
		Predicted:  pred.PerIteration,
		Actual:     actual.PerIteration,
		Error:      diff / a,
		Normalized: p / a,
	}, pred, actual, nil
}

// MemoryReport is the per-GPU peak-memory estimate for a configuration.
type MemoryReport struct {
	PerGPU []memory.Footprint
	// Fits is false when some GPU exceeds its memory capacity.
	Fits bool
	// WorstUtilization is the highest footprint/capacity fraction.
	WorstUtilization float64
}

// MemoryFootprint estimates whether the configured training run fits in GPU
// memory — the constraint that forces the paper to trace Llama at batch 16
// and to exclude batch-256 transformers. Hybrid strategies are estimated as
// their inner strategy over the per-replica batch share.
func MemoryFootprint(cfg Config) (*MemoryReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	tr, err := collectTrace(cfg)
	if err != nil {
		return nil, err
	}
	batch := cfg.GlobalBatch
	if batch == 0 {
		batch = tr.BatchSize
	}

	mcfg := memory.Config{Trace: tr, GlobalBatch: batch}
	switch cfg.Parallelism {
	case Single:
		mcfg.Strategy, mcfg.NumGPUs = memory.Single, 1
	case DP, DDP:
		mcfg.Strategy, mcfg.NumGPUs = memory.DP, cfg.NumGPUs
	case ZeRO1:
		mcfg.Strategy, mcfg.NumGPUs = memory.ZeRO1, cfg.NumGPUs
	case TP:
		mcfg.Strategy, mcfg.NumGPUs = memory.TP, cfg.NumGPUs
	case PP:
		mcfg.Strategy, mcfg.NumGPUs = memory.PP, cfg.NumGPUs
		mcfg.StageOf = extrapolator.StageAssignment(tr, cfg.NumGPUs)
	case DPPP:
		groups := hybridGroups(cfg)
		mcfg.Strategy = memory.PP
		mcfg.NumGPUs = cfg.NumGPUs / groups
		mcfg.GlobalBatch = batch / groups
		mcfg.StageOf = extrapolator.StageAssignment(tr, mcfg.NumGPUs)
	case DPTP:
		groups := hybridGroups(cfg)
		mcfg.Strategy = memory.TP
		mcfg.NumGPUs = cfg.NumGPUs / groups
		mcfg.GlobalBatch = batch / groups
	case DPTPPP:
		// Conservative per-GPU bound: price the pipeline dimension only
		// (each stage further TP-shards its weights, so the true footprint
		// is lower).
		tp, pp := cfg.TPRanks, cfg.PPStages
		if tp < 1 {
			tp = 1
		}
		if pp < 1 {
			pp = 1
		}
		mcfg.Strategy = memory.PP
		mcfg.NumGPUs = pp
		mcfg.GlobalBatch = batch * tp * pp / cfg.NumGPUs
		mcfg.StageOf = extrapolator.StageAssignment(tr, pp)
	default:
		return nil, fmt.Errorf("core: unknown parallelism %q", cfg.Parallelism)
	}
	fp, err := memory.Estimate(mcfg)
	if err != nil {
		return nil, err
	}
	fits, worst := memory.Fits(fp, cfg.Platform.GPU.MemCapacity)
	return &MemoryReport{PerGPU: fp, Fits: fits, WorstUtilization: worst}, nil
}
