package core

import "testing"

func TestInferenceFasterThanTraining(t *testing.T) {
	base := Config{Model: "resnet50", Platform: p2(), Parallelism: DDP,
		TraceBatch: 64}
	train, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	inf := base
	inf.InferenceOnly = true
	infRes, err := Simulate(inf)
	if err != nil {
		t.Fatal(err)
	}
	// Forward-only drops the backward pass (≥half the work) and all
	// gradient traffic.
	if infRes.PerIteration >= train.PerIteration/2 {
		t.Fatalf("inference %v not under half of training %v",
			infRes.PerIteration, train.PerIteration)
	}
	if infRes.CommTime > 0 {
		t.Fatalf("DP inference should have no inter-GPU traffic, got %v",
			infRes.CommTime)
	}
}

func TestInferencePipelineHasBoundaryTrafficOnly(t *testing.T) {
	cfg := Config{Model: "vgg16", Platform: p2(), Parallelism: PP,
		TraceBatch: 64, MicroBatches: 4, InferenceOnly: true}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommTime <= 0 {
		t.Fatal("pipeline inference still moves activations between stages")
	}
	// And TP inference gathers layer outputs.
	cfg.Parallelism = TP
	cfg.MicroBatches = 0
	res, err = Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommTime <= 0 {
		t.Fatal("TP inference should gather partial outputs")
	}
}

func TestInferenceGroundTruthValidates(t *testing.T) {
	cmp, err := Validate(Config{Model: "resnet18", Platform: p1(),
		Parallelism: DP, TraceBatch: 64, InferenceOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Li's Model's home turf: single-digit error band for inference.
	if cmp.Error > 0.12 {
		t.Fatalf("inference error %.1f%% out of band", cmp.Error*100)
	}
}

func TestInferenceOnlyForwardOps(t *testing.T) {
	res, err := Simulate(Config{Model: "resnet18", Platform: p1(),
		Parallelism: Single, TraceBatch: 32, InferenceOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range res.Timeline.Intervals {
		if iv.Phase != "compute" {
			continue
		}
		if len(iv.Label) > 4 && iv.Label[len(iv.Label)-4:] == "_bwd" {
			t.Fatalf("backward op %q ran in inference mode", iv.Label)
		}
		if len(iv.Label) >= 8 && iv.Label[:8] == "sgd_step" {
			t.Fatalf("optimizer op ran in inference mode")
		}
	}
}
