package models

import "fmt"

// TransformerSpec is the exported architecture description of one zoo
// transformer. The serving layer (internal/serving) prices prefill/decode
// steps and KV-cache footprints from these numbers; they mirror the private
// transformerCfg values the trace builders use, so the two views of a model
// can never drift apart.
type TransformerSpec struct {
	Name   string
	Layers int
	Hidden int64
	Heads  int64
	// KVHeads < Heads means grouped-query attention (Llama 3): the KV cache
	// stores KVHeads·HeadDim values per token instead of Hidden.
	KVHeads int64
	FFN     int64
	Vocab   int64
	// SeqLen is the training sequence length (serving workloads choose
	// their own prompt/output lengths).
	SeqLen   int64
	GatedFFN bool
	// CrossAttn marks the T5-style encoder-decoder approximation: the last
	// half of the layers carry a second attention block.
	CrossAttn bool
}

// specOf converts the private builder config.
func specOf(c transformerCfg) TransformerSpec {
	return TransformerSpec{
		Name: c.Name, Layers: c.Layers, Hidden: c.Hidden, Heads: c.Heads,
		KVHeads: c.KVHeads, FFN: c.FFN, Vocab: c.Vocab, SeqLen: c.SeqLen,
		GatedFFN: c.GatedFFN, CrossAttn: c.CrossAttn,
	}
}

// TransformerSpecOf returns the architecture of a zoo transformer by name
// (see Transformers() for the list).
func TransformerSpecOf(name string) (TransformerSpec, error) {
	switch name {
	case "gpt2":
		return specOf(gpt2Cfg), nil
	case "bert":
		return specOf(bertCfg), nil
	case "t5small":
		return specOf(t5SmallCfg), nil
	case "flant5small":
		return specOf(flanT5SmallCfg), nil
	case "llama32-1b":
		return specOf(llama1BCfg), nil
	}
	return TransformerSpec{}, fmt.Errorf("models: %q is not a zoo transformer", name)
}

// HeadDim is the per-head projection width.
func (s TransformerSpec) HeadDim() int64 { return s.Hidden / s.Heads }

// Params counts the model's weight parameters: embeddings, per-layer
// attention and FFN projections (three matrices when gated), layer norms,
// and the untied LM head.
func (s TransformerSpec) Params() float64 {
	H, F, V := float64(s.Hidden), float64(s.FFN), float64(s.Vocab)
	kv := float64(s.KVHeads * s.HeadDim())
	attn := 2*H*H + 2*H*kv // Q and O full-width; K and V at KV width
	ffnMats := 2.0
	if s.GatedFFN {
		ffnMats = 3
	}
	perLayer := attn + ffnMats*H*F + 4*H // two norms of (gain, bias)
	layers := float64(s.Layers) * perLayer
	if s.CrossAttn {
		// The last half of the layers carry a second attention block.
		layers += float64(s.Layers-s.Layers/2) * attn
	}
	return V*H + layers + 2*H + V*H // embed + blocks + final norm + head
}

// WeightBytes is the fp16 weight footprint in bytes.
func (s TransformerSpec) WeightBytes() float64 { return 2 * s.Params() }

// KVBytesPerToken is the fp16 KV-cache growth per cached token: K and V at
// KVHeads·HeadDim per layer. (The cross-attention cache of the T5-style
// models is folded into the same per-token figure — the serving layer
// treats every zoo transformer as a decoder for KV accounting.)
func (s TransformerSpec) KVBytesPerToken() float64 {
	return 2 * float64(s.Layers) * float64(s.KVHeads*s.HeadDim()) * 2
}

// DecodeFLOPsPerToken is the dense (context-independent) compute per
// processed token: one multiply-add through every weight.
func (s TransformerSpec) DecodeFLOPsPerToken() float64 { return 2 * s.Params() }

// AttnFLOPsPerCtxToken is the attention compute per generated token per
// token of context: the QKᵀ scores plus the value mix, 4·Hidden
// multiply-adds (every query head attends regardless of KV grouping).
func (s TransformerSpec) AttnFLOPsPerCtxToken() float64 {
	return 4 * float64(s.Hidden)
}
