package models

import (
	"strconv"

	"triosim/internal/tensor"
)

// CNN builders: ResNet, DenseNet, and VGG at ImageNet resolution (3×224×224),
// matching the torchvision architectures the paper traces.

// convOut computes the output spatial size of a convolution/pooling window.
func convOut(in, k, stride, pad int64) int64 {
	return (in+2*pad-k)/stride + 1
}

// prod multiplies all dims.
func prod(d []int64) int64 {
	p := int64(1)
	for _, v := range d {
		p *= v
	}
	return p
}

// convOn emits a Conv2d reading activation in [B,C,H,W] and returns the
// produced activation. Used directly for skip-path projections.
func (b *builder) convOn(in act, cout, k, stride, pad int64) act {
	bb, cin, h, w := in.dims[0], in.dims[1], in.dims[2], in.dims[3]
	oh, ow := convOut(h, k, stride, pad), convOut(w, k, stride, pad)
	flops := 2 * float64(bb) * float64(cout) * float64(oh) * float64(ow) *
		float64(cin) * float64(k) * float64(k)
	return b.emitOn(in, "conv2d", flops, []int64{bb, cout, oh, ow},
		[]int64{cout, cin, k, k}, true, 2)
}

// conv2d emits a Conv2d over the current activation.
func (b *builder) conv2d(cout, k, stride, pad int64) {
	b.cur = b.convOn(b.cur, cout, k, stride, pad)
}

// batchnorm emits a BatchNorm2d over the current activation.
func (b *builder) batchnorm() {
	d := b.cur.dims
	elems := float64(prod(d))
	b.emit("batchnorm", 5*elems, d, []int64{2, d[1]}, false, 1)
}

// relu emits a ReLU.
func (b *builder) relu() {
	d := b.cur.dims
	b.emit("relu", float64(prod(d)), d, nil, false, 1)
}

// maxpool emits a MaxPool2d.
func (b *builder) maxpool(k, stride, pad int64) {
	d := b.cur.dims
	oh := convOut(d[2], k, stride, pad)
	ow := convOut(d[3], k, stride, pad)
	out := []int64{d[0], d[1], oh, ow}
	b.emit("maxpool", float64(prod(out))*float64(k*k), out, nil, false, 1)
}

// avgpoolGlobal emits adaptive average pooling to 1×1.
func (b *builder) avgpoolGlobal() {
	d := b.cur.dims
	b.emit("avgpool", float64(prod(d)), []int64{d[0], d[1], 1, 1},
		nil, false, 1)
}

// avgpool2 emits a stride-2 2×2 average pool (DenseNet transitions).
func (b *builder) avgpool2() {
	d := b.cur.dims
	out := []int64{d[0], d[1], d[2] / 2, d[3] / 2}
	b.emit("avgpool", float64(prod(d)), out, nil, false, 1)
}

// flatten reshapes [B,C,H,W] to [B,C*H*W] as a free view (no op emitted).
func (b *builder) flatten() {
	d := b.cur.dims
	b.cur.dims = []int64{d[0], d[1] * d[2] * d[3]}
}

// linear emits a fully connected layer over [B,...,in].
func (b *builder) linear(out int64) {
	d := b.cur.dims
	in := d[len(d)-1]
	rows := prod(d) / in
	flops := 2 * float64(rows) * float64(in) * float64(out)
	outDims := append(append([]int64(nil), d[:len(d)-1]...), out)
	b.emit("linear", flops, outDims, []int64{out, in}, true, 2)
}

// addResidual emits the elementwise residual addition with the skip input.
func (b *builder) addResidual(skip act) {
	d := b.cur.dims
	b.emit("add", float64(prod(d)), d, nil, false, 1, skip.id)
}

// concat emits a channel-dim concat of the current activation with priors.
func (b *builder) concat(priors ...act) {
	d := b.cur.dims
	chans := d[1]
	extraIDs := make([]tensor.ID, 0, len(priors))
	for _, p := range priors {
		chans += p.dims[1]
		extraIDs = append(extraIDs, p.id)
	}
	out := []int64{d[0], chans, d[2], d[3]}
	b.emit("concat", float64(prod(out)), out, nil, false, 1, extraIDs...)
}

func itoa(n int) string { return strconv.Itoa(n) }

// ---- ResNet ----

// buildResNet builds resnet{18,34} (basic blocks) or resnet{50,101,152}
// (bottleneck blocks) per the torchvision configuration.
func buildResNet(b *builder, blocks []int, bottleneck bool) {
	b.beginLayer("stem")
	b.input([]int64{3, 224, 224}, 0)
	b.conv2d(64, 7, 2, 3)
	b.batchnorm()
	b.relu()
	b.maxpool(3, 2, 1)

	channels := []int64{64, 128, 256, 512}
	expansion := int64(1)
	if bottleneck {
		expansion = 4
	}
	for stage, n := range blocks {
		cout := channels[stage]
		for blk := 0; blk < n; blk++ {
			stride := int64(1)
			if stage > 0 && blk == 0 {
				stride = 2
			}
			b.beginLayer("layer" + itoa(stage+1) + "." + itoa(blk))
			if bottleneck {
				resBottleneckBlock(b, cout, stride, expansion)
			} else {
				resBasicBlock(b, cout, stride)
			}
		}
	}
	b.beginLayer("head")
	b.avgpoolGlobal()
	b.flatten()
	b.linear(1000)
}

func resBasicBlock(b *builder, cout, stride int64) {
	skip := b.saveAct()
	needsProj := stride != 1 || skip.dims[1] != cout
	b.conv2d(cout, 3, stride, 1)
	b.batchnorm()
	b.relu()
	b.conv2d(cout, 3, 1, 1)
	b.batchnorm()
	if needsProj {
		skip = b.convOn(skip, cout, 1, stride, 0)
	}
	b.addResidual(skip)
	b.relu()
}

func resBottleneckBlock(b *builder, cout, stride, expansion int64) {
	skip := b.saveAct()
	outC := cout * expansion
	needsProj := stride != 1 || skip.dims[1] != outC
	b.conv2d(cout, 1, 1, 0)
	b.batchnorm()
	b.relu()
	b.conv2d(cout, 3, stride, 1)
	b.batchnorm()
	b.relu()
	b.conv2d(outC, 1, 1, 0)
	b.batchnorm()
	if needsProj {
		skip = b.convOn(skip, outC, 1, stride, 0)
	}
	b.addResidual(skip)
	b.relu()
}

// ---- DenseNet ----

func buildDenseNet(b *builder, growth, initFeat int64, blocks []int) {
	b.beginLayer("stem")
	b.input([]int64{3, 224, 224}, 0)
	b.conv2d(initFeat, 7, 2, 3)
	b.batchnorm()
	b.relu()
	b.maxpool(3, 2, 1)

	for bi, n := range blocks {
		for li := 0; li < n; li++ {
			b.beginLayer("dense" + itoa(bi+1) + "." + itoa(li))
			in := b.saveAct()
			// BN-ReLU-Conv1×1(4k) → BN-ReLU-Conv3×3(k), then concat with
			// the block input (the dense connection).
			b.batchnorm()
			b.relu()
			b.conv2d(4*growth, 1, 1, 0)
			b.batchnorm()
			b.relu()
			b.conv2d(growth, 3, 1, 1)
			b.concat(in)
		}
		if bi != len(blocks)-1 {
			b.beginLayer("trans" + itoa(bi+1))
			b.batchnorm()
			b.relu()
			b.conv2d(b.cur.dims[1]/2, 1, 1, 0)
			b.avgpool2()
		}
	}
	b.beginLayer("head")
	b.batchnorm()
	b.relu()
	b.avgpoolGlobal()
	b.flatten()
	b.linear(1000)
}

// ---- VGG ----

// VGG configurations: positive numbers are conv channel counts, -1 is a
// max-pool.
var (
	vgg11Cfg = []int64{64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1}
	vgg13Cfg = []int64{64, 64, -1, 128, 128, -1, 256, 256, -1, 512, 512, -1,
		512, 512, -1}
	vgg16Cfg = []int64{64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
		512, 512, 512, -1, 512, 512, 512, -1}
	vgg19Cfg = []int64{64, 64, -1, 128, 128, -1, 256, 256, 256, 256, -1,
		512, 512, 512, 512, -1, 512, 512, 512, 512, -1}
)

func buildVGG(b *builder, cfg []int64) {
	b.beginLayer("conv1")
	b.input([]int64{3, 224, 224}, 0)
	conv := 0
	for _, c := range cfg {
		if c == -1 {
			b.maxpool(2, 2, 0)
			continue
		}
		conv++
		if conv > 1 {
			b.beginLayer("conv" + itoa(conv))
		}
		b.conv2d(c, 3, 1, 1)
		b.batchnorm()
		b.relu()
	}
	b.beginLayer("classifier")
	b.flatten()
	b.linear(4096)
	b.relu()
	b.linear(4096)
	b.relu()
	b.linear(1000)
}
