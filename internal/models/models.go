// Package models is TrioSim's tracer substitute: an analytic model zoo that
// constructs operator-level execution traces for every workload in the
// paper's evaluation (ResNet, DenseNet, VGG, GPT-2, BERT, T5, FLAN-T5,
// Llama-3.2-1B).
//
// The paper's tracer blends PyTorch Profiler output (operators + kernel
// times) with Execution Graph Observer output (tensor lists, categories,
// dims). Without GPUs to profile, this package produces traces with the same
// structure — operator table plus tensor table, with exact FLOPs and tensor
// shapes derived from the published architectures — and leaves the measured
// times zero. internal/hwsim then stamps times as the "measurement" step.
package models

import (
	"fmt"
	"sort"

	"triosim/internal/tensor"
	"triosim/internal/trace"
)

// Build constructs the operator-level trace skeleton for the named model at
// the given batch size. Times are zero until a hardware model stamps them.
func Build(name string, batch int) (*trace.Trace, error) {
	bf, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
	if batch < 1 {
		return nil, fmt.Errorf("models: batch size %d", batch)
	}
	b := newBuilder(name, batch)
	bf(b)
	return b.finish(), nil
}

// List returns all model names in sorted order.
func List() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CNNs returns the image-classification model names in the paper's plotting
// order (DenseNets, ResNets, VGGs).
func CNNs() []string {
	return []string{
		"densenet121", "densenet161", "densenet169", "densenet201",
		"resnet18", "resnet34", "resnet50", "resnet101", "resnet152",
		"vgg11", "vgg13", "vgg16", "vgg19",
	}
}

// Transformers returns the NLP model names.
func Transformers() []string {
	return []string{"gpt2", "bert", "t5small", "flant5small", "llama32-1b"}
}

var registry = map[string]func(*builder){
	"resnet18":    func(b *builder) { buildResNet(b, []int{2, 2, 2, 2}, false) },
	"resnet34":    func(b *builder) { buildResNet(b, []int{3, 4, 6, 3}, false) },
	"resnet50":    func(b *builder) { buildResNet(b, []int{3, 4, 6, 3}, true) },
	"resnet101":   func(b *builder) { buildResNet(b, []int{3, 4, 23, 3}, true) },
	"resnet152":   func(b *builder) { buildResNet(b, []int{3, 8, 36, 3}, true) },
	"densenet121": func(b *builder) { buildDenseNet(b, 32, 64, []int{6, 12, 24, 16}) },
	"densenet161": func(b *builder) { buildDenseNet(b, 48, 96, []int{6, 12, 36, 24}) },
	"densenet169": func(b *builder) { buildDenseNet(b, 32, 64, []int{6, 12, 32, 32}) },
	"densenet201": func(b *builder) { buildDenseNet(b, 32, 64, []int{6, 12, 48, 32}) },
	"vgg11":       func(b *builder) { buildVGG(b, vgg11Cfg) },
	"vgg13":       func(b *builder) { buildVGG(b, vgg13Cfg) },
	"vgg16":       func(b *builder) { buildVGG(b, vgg16Cfg) },
	"vgg19":       func(b *builder) { buildVGG(b, vgg19Cfg) },
	"gpt2":        func(b *builder) { buildTransformer(b, gpt2Cfg) },
	"bert":        func(b *builder) { buildTransformer(b, bertCfg) },
	"t5small":     func(b *builder) { buildTransformer(b, t5SmallCfg) },
	"flant5small": func(b *builder) { buildTransformer(b, flanT5SmallCfg) },
	"llama32-1b":  func(b *builder) { buildTransformer(b, llama1BCfg) },
}

// act is a handle to a produced activation tensor and its dims.
type act struct {
	id   tensor.ID
	dims []int64
}

// pendingOp is a forward op awaiting finalization, with enough information
// to synthesize its backward counterpart.
type pendingOp struct {
	op trace.Op
	// bwdFLOPsFactor scales the fwd FLOPs to get the bwd FLOPs: 2 for ops
	// with weight gradients (input-grad + weight-grad matmuls), 1 for
	// elementwise/memory-bound ops.
	bwdFLOPsFactor float64
	// inputActDims are the dims of the primary activation input, used to
	// size the input-gradient tensor the backward op produces.
	inputActDims []int64
	weightID     tensor.ID
}

// builder accumulates forward ops and synthesizes the backward pass and
// optimizer step at finish time.
type builder struct {
	tr    *trace.Trace
	batch int64

	layer     int
	layerName string

	cur  act
	pend []pendingOp

	// layerWeights maps layer index -> weight tensor IDs for optimizer ops.
	layerWeights map[int][]tensor.ID
}

func newBuilder(model string, batch int) *builder {
	return &builder{
		tr:           trace.New(model, "", batch),
		batch:        int64(batch),
		layer:        -1,
		layerWeights: map[int][]tensor.ID{},
	}
}

// beginLayer starts a new named layer; subsequent ops belong to it.
func (b *builder) beginLayer(name string) {
	b.layer++
	b.layerName = name
}

// input creates the mini-batch input tensor and makes it the current
// activation. perSample are per-sample dims (the batch dim is prepended).
func (b *builder) input(perSample []int64, dt tensor.DType) {
	dims := append([]int64{b.batch}, perSample...)
	id := b.tr.Tensors.Add(tensor.Tensor{
		Dims: dims, DType: dt, Category: tensor.Input, BatchDim: 0,
	})
	b.cur = act{id: id, dims: dims}
}

func (b *builder) addActivation(dims []int64) tensor.ID {
	return b.tr.Tensors.Add(tensor.Tensor{
		Dims: append([]int64(nil), dims...), DType: tensor.Float32,
		Category: tensor.Activation, BatchDim: 0,
	})
}

func (b *builder) addWeight(dims []int64) tensor.ID {
	id := b.tr.Tensors.Add(tensor.Tensor{
		Dims: append([]int64(nil), dims...), DType: tensor.Float32,
		Category: tensor.Weight, BatchDim: -1,
	})
	b.layerWeights[b.layer] = append(b.layerWeights[b.layer], id)
	return id
}

// saveAct returns a handle to the current activation (for skip connections).
func (b *builder) saveAct() act {
	return act{id: b.cur.id, dims: append([]int64(nil), b.cur.dims...)}
}

// emitOn records one forward op reading activation in (plus extras and an
// optional weight) and producing a fresh activation with outDims. It returns
// the produced activation without changing the builder's current one.
func (b *builder) emitOn(in act, name string, flops float64, outDims []int64,
	weightDims []int64, parallelizable bool, bwdFactor float64,
	extraInputs ...tensor.ID) act {

	inputs := []tensor.ID{in.id}
	inputs = append(inputs, extraInputs...)
	var wid tensor.ID
	if weightDims != nil {
		wid = b.addWeight(weightDims)
		inputs = append(inputs, wid)
	}
	out := b.addActivation(outDims)
	op := trace.Op{
		Name:           name,
		Layer:          b.layer,
		LayerName:      b.layerName,
		Phase:          trace.Forward,
		FLOPs:          flops,
		Inputs:         inputs,
		Outputs:        []tensor.ID{out},
		Parallelizable: parallelizable,
	}
	b.pend = append(b.pend, pendingOp{
		op:             op,
		bwdFLOPsFactor: bwdFactor,
		inputActDims:   append([]int64(nil), in.dims...),
		weightID:       wid,
	})
	return act{id: out, dims: append([]int64(nil), outDims...)}
}

// emit is emitOn applied to (and advancing) the current activation.
func (b *builder) emit(name string, flops float64, outDims []int64,
	weightDims []int64, parallelizable bool, bwdFactor float64,
	extraInputs ...tensor.ID) {
	b.cur = b.emitOn(b.cur, name, flops, outDims, weightDims,
		parallelizable, bwdFactor, extraInputs...)
}

// finish emits forward ops, synthesizes the backward pass (reverse order)
// and the per-layer optimizer steps, then returns the completed trace.
func (b *builder) finish() *trace.Trace {
	for i := range b.pend {
		b.tr.Append(b.pend[i].op)
	}

	// Backward: reverse program order. Each backward op consumes the forward
	// op's output activation (plus weight) and produces an input-gradient
	// activation and, for weighted ops, a weight gradient.
	gradByWeight := map[tensor.ID]tensor.ID{}
	for i := len(b.pend) - 1; i >= 0; i-- {
		p := &b.pend[i]
		fwd := &p.op
		inputs := append([]tensor.ID(nil), fwd.Outputs...)
		var outputs []tensor.ID
		if p.weightID != 0 {
			inputs = append(inputs, p.weightID)
			wt := b.tr.Tensors.Get(p.weightID)
			gid := b.tr.Tensors.Add(tensor.Tensor{
				Dims: append([]int64(nil), wt.Dims...), DType: wt.DType,
				Category: tensor.Gradient, BatchDim: -1,
			})
			gradByWeight[p.weightID] = gid
			outputs = append(outputs, gid)
		}
		gin := b.tr.Tensors.Add(tensor.Tensor{
			Dims:     append([]int64(nil), p.inputActDims...),
			DType:    tensor.Float32,
			Category: tensor.Activation, BatchDim: 0,
		})
		outputs = append(outputs, gin)
		b.tr.Append(trace.Op{
			Name:           fwd.Name + "_bwd",
			Layer:          fwd.Layer,
			LayerName:      fwd.LayerName,
			Phase:          trace.Backward,
			FLOPs:          fwd.FLOPs * p.bwdFLOPsFactor,
			Inputs:         inputs,
			Outputs:        outputs,
			Parallelizable: fwd.Parallelizable,
		})
	}

	// Optimizer: one SGD step per layer that owns weights, ascending layer
	// order. FLOPs ~ 2 per parameter; the step is memory-bound.
	layers := make([]int, 0, len(b.layerWeights))
	for l := range b.layerWeights {
		layers = append(layers, l)
	}
	sort.Ints(layers)
	for _, l := range layers {
		ws := b.layerWeights[l]
		var inputs []tensor.ID
		var params int64
		for _, w := range ws {
			inputs = append(inputs, w)
			if g, ok := gradByWeight[w]; ok {
				inputs = append(inputs, g)
			}
			params += b.tr.Tensors.Get(w).NumElements()
		}
		b.tr.Append(trace.Op{
			Name:    "sgd_step",
			Layer:   l,
			Phase:   trace.Optimizer,
			FLOPs:   float64(2 * params),
			Inputs:  inputs,
			Outputs: ws,
		})
	}
	return b.tr
}

// MemoryBoundOps names the operators whose time is dominated by memory
// traffic rather than FLOPs. The hardware emulator uses this classification
// when stamping times; TrioSim's regression model discovers the distinction
// from the (FLOPs, bytes) feature split.
var MemoryBoundOps = map[string]bool{
	"relu": true, "batchnorm": true, "maxpool": true, "avgpool": true,
	"add": true, "concat": true, "softmax": true, "layernorm": true,
	"gelu": true, "embedding": true, "sgd_step": true,
	"relu_bwd": true, "batchnorm_bwd": true, "maxpool_bwd": true,
	"avgpool_bwd": true, "add_bwd": true, "concat_bwd": true,
	"softmax_bwd": true, "layernorm_bwd": true, "gelu_bwd": true,
	"embedding_bwd": true,
}

// IsMemoryBound reports whether the named operator is memory-bound.
func IsMemoryBound(name string) bool { return MemoryBoundOps[name] }
