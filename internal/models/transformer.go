package models

import "triosim/internal/tensor"

// Transformer builders for the NLP workloads: GPT-2, BERT-Base, T5-Small,
// FLAN-T5-Small, and Llama-3.2-1B. Configurations follow the published
// architectures; sequence lengths match typical fine-tuning settings (the
// paper traces these models from Hugging Face with PyTorch defaults).

type transformerCfg struct {
	Name   string
	Layers int
	Hidden int64
	Heads  int64
	// KVHeads < Heads enables grouped-query attention (Llama 3).
	KVHeads int64
	FFN     int64
	Vocab   int64
	SeqLen  int64
	// GatedFFN uses the gated activation (three projection matrices), as in
	// Llama and FLAN-T5.
	GatedFFN bool
	// CrossAttn adds a second attention block to the last half of the
	// layers, approximating a T5-style encoder-decoder stack.
	CrossAttn bool
}

var (
	gpt2Cfg = transformerCfg{
		Name: "gpt2", Layers: 12, Hidden: 768, Heads: 12, KVHeads: 12,
		FFN: 3072, Vocab: 50257, SeqLen: 128,
	}
	bertCfg = transformerCfg{
		Name: "bert", Layers: 12, Hidden: 768, Heads: 12, KVHeads: 12,
		FFN: 3072, Vocab: 30522, SeqLen: 128,
	}
	t5SmallCfg = transformerCfg{
		Name: "t5small", Layers: 12, Hidden: 512, Heads: 8, KVHeads: 8,
		FFN: 2048, Vocab: 32128, SeqLen: 128, CrossAttn: true,
	}
	flanT5SmallCfg = transformerCfg{
		Name: "flant5small", Layers: 12, Hidden: 512, Heads: 6, KVHeads: 6,
		FFN: 1024, Vocab: 32128, SeqLen: 128, CrossAttn: true, GatedFFN: true,
	}
	llama1BCfg = transformerCfg{
		Name: "llama32-1b", Layers: 16, Hidden: 2048, Heads: 32, KVHeads: 8,
		FFN: 8192, Vocab: 128256, SeqLen: 512, GatedFFN: true,
	}
)

func buildTransformer(b *builder, cfg transformerCfg) {
	B, S, H := b.batch, cfg.SeqLen, cfg.Hidden

	b.beginLayer("embed")
	b.input([]int64{S}, tensor.Int64)
	b.emit("embedding", float64(B*S*H), []int64{B, S, H},
		[]int64{cfg.Vocab, H}, true, 1)

	for l := 0; l < cfg.Layers; l++ {
		b.beginLayer("block" + itoa(l))
		attentionBlock(b, cfg)
		if cfg.CrossAttn && l >= cfg.Layers/2 {
			attentionBlock(b, cfg)
		}
		ffnBlock(b, cfg)
	}

	b.beginLayer("head")
	b.layernorm()
	b.linear(cfg.Vocab)
}

// layernorm emits a LayerNorm over the current activation.
func (b *builder) layernorm() {
	d := b.cur.dims
	elems := float64(prod(d))
	b.emit("layernorm", 5*elems, d, []int64{2, d[len(d)-1]}, false, 1)
}

// gelu emits the GELU activation.
func (b *builder) gelu() {
	d := b.cur.dims
	b.emit("gelu", 8*float64(prod(d)), d, nil, false, 1)
}

// softmax emits the attention softmax.
func (b *builder) softmax() {
	d := b.cur.dims
	b.emit("softmax", 5*float64(prod(d)), d, nil, false, 1)
}

// attentionBlock emits LN → QKV projections → scores → softmax → values →
// output projection → residual add.
func attentionBlock(b *builder, cfg transformerCfg) {
	resid := b.saveAct()
	b.layernorm()
	x := b.saveAct()
	d := x.dims
	B, S, H := d[0], d[1], cfg.Hidden
	Hkv := H * cfg.KVHeads / cfg.Heads

	fB, fS, fH, fHkv := float64(B), float64(S), float64(H), float64(Hkv)
	q := b.emitOn(x, "linear", 2*fB*fS*fH*fH, []int64{B, S, H},
		[]int64{H, H}, true, 2)
	k := b.emitOn(x, "linear", 2*fB*fS*fH*fHkv, []int64{B, S, Hkv},
		[]int64{Hkv, H}, true, 2)
	v := b.emitOn(x, "linear", 2*fB*fS*fH*fHkv, []int64{B, S, Hkv},
		[]int64{Hkv, H}, true, 2)

	// scores = Q·Kᵀ over all heads: 2·B·S·S·H FLOPs.
	scores := b.emitOn(q, "matmul", 2*fB*fS*fS*fH,
		[]int64{B, cfg.Heads, S, S}, nil, true, 2, k.id)
	b.cur = scores
	b.softmax()
	// context = scores·V.
	ctx := b.emitOn(b.cur, "matmul", 2*fB*fS*fS*fH,
		[]int64{B, S, H}, nil, true, 2, v.id)
	b.cur = ctx
	b.linear(H)
	b.addResidual(resid)
}

// ffnBlock emits LN → up-projection(s) → activation → down-projection →
// residual add.
func ffnBlock(b *builder, cfg transformerCfg) {
	resid := b.saveAct()
	b.layernorm()
	d := b.cur.dims
	B, S, H, F := d[0], d[1], cfg.Hidden, cfg.FFN
	fB, fS, fH, fF := float64(B), float64(S), float64(H), float64(F)

	if cfg.GatedFFN {
		x := b.saveAct()
		up := b.emitOn(x, "linear", 2*fB*fS*fH*fF, []int64{B, S, F},
			[]int64{F, H}, true, 2)
		gate := b.emitOn(x, "linear", 2*fB*fS*fH*fF, []int64{B, S, F},
			[]int64{F, H}, true, 2)
		b.cur = gate
		b.gelu()
		// Elementwise gating (same cost profile as an elementwise add).
		b.emit("add", fB*fS*fF, []int64{B, S, F}, nil, false, 1, up.id)
	} else {
		b.linear(F)
		b.gelu()
	}
	b.linear(H)
	b.addResidual(resid)
}
