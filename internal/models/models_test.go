package models

import (
	"math/rand"
	"testing"
	"testing/quick"

	"triosim/internal/tensor"
	"triosim/internal/trace"
)

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, name := range List() {
		tr, err := Build(name, 8)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", name, err)
		}
		if len(tr.Ops) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		if tr.TotalFLOPs() <= 0 {
			t.Fatalf("%s: no FLOPs", name)
		}
		if tr.WeightBytes() <= 0 || tr.GradientBytes() <= 0 {
			t.Fatalf("%s: missing weights or gradients", name)
		}
	}
}

func TestUnknownModelRejected(t *testing.T) {
	if _, err := Build("alexnet", 8); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Build("resnet18", 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
}

func TestKnownParameterCounts(t *testing.T) {
	// Published parameter counts (float32 bytes = 4·params). The zoo uses
	// BN-enabled VGG and an untied LM head for transformers, so we allow a
	// tolerance band around the canonical numbers.
	cases := []struct {
		model  string
		params float64 // millions
		tol    float64 // relative
	}{
		{"resnet18", 11.7, 0.05},
		{"resnet50", 25.6, 0.05},
		{"resnet152", 60.2, 0.05},
		{"densenet121", 8.0, 0.05},
		{"densenet201", 20.0, 0.05},
		{"vgg16", 138.4, 0.05},
		{"bert", 110 + 23.5, 0.1}, // +untied MLM head V×H
		{"gpt2", 124 + 38.6, 0.1}, // +untied LM head
		{"llama32-1b", 1236 + 263, 0.15},
	}
	for _, c := range cases {
		tr, err := Build(c.model, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotM := float64(tr.WeightBytes()) / 4e6
		lo, hi := c.params*(1-c.tol), c.params*(1+c.tol)
		if gotM < lo || gotM > hi {
			t.Errorf("%s: %0.1fM params, want %0.1fM ±%0.0f%%",
				c.model, gotM, c.params, c.tol*100)
		}
	}
}

func TestKnownFLOPs(t *testing.T) {
	// Forward FLOPs per image at 224², 2-FLOPs-per-MAC convention.
	cases := []struct {
		model  string
		gflops float64
		tol    float64
	}{
		{"resnet18", 3.6, 0.1},
		{"resnet50", 8.2, 0.1},
		{"vgg16", 31.0, 0.1},
		{"densenet121", 5.7, 0.15},
	}
	for _, c := range cases {
		tr, err := Build(c.model, 1)
		if err != nil {
			t.Fatal(err)
		}
		var fwd float64
		for i := range tr.Ops {
			if tr.Ops[i].Phase == trace.Forward {
				fwd += tr.Ops[i].FLOPs
			}
		}
		got := fwd / 1e9
		lo, hi := c.gflops*(1-c.tol), c.gflops*(1+c.tol)
		if got < lo || got > hi {
			t.Errorf("%s: %.2f fwd GFLOPs/image, want %.2f ±%.0f%%",
				c.model, got, c.gflops, c.tol*100)
		}
	}
}

func TestFLOPsScaleLinearlyWithBatch(t *testing.T) {
	for _, name := range []string{"resnet18", "vgg11", "gpt2", "llama32-1b"} {
		t1, err := Build(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := Build(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Optimizer FLOPs are batch-independent; compare fwd+bwd only.
		sum := func(tr *trace.Trace) float64 {
			var s float64
			for i := range tr.Ops {
				if tr.Ops[i].Phase != trace.Optimizer {
					s += tr.Ops[i].FLOPs
				}
			}
			return s
		}
		r := sum(t2) / sum(t1)
		if r < 1.99 || r > 2.01 {
			t.Errorf("%s: batch 2→4 FLOPs ratio %.4f, want 2", name, r)
		}
	}
}

func TestBackwardStructure(t *testing.T) {
	tr, err := Build("resnet18", 4)
	if err != nil {
		t.Fatal(err)
	}
	var fwd, bwd, opt int
	var fwdFLOPs, bwdFLOPs float64
	for i := range tr.Ops {
		switch tr.Ops[i].Phase {
		case trace.Forward:
			fwd++
			fwdFLOPs += tr.Ops[i].FLOPs
		case trace.Backward:
			bwd++
			bwdFLOPs += tr.Ops[i].FLOPs
		case trace.Optimizer:
			opt++
		}
	}
	if fwd != bwd {
		t.Fatalf("fwd ops %d != bwd ops %d", fwd, bwd)
	}
	if opt != tr.NumLayers() {
		t.Fatalf("optimizer ops %d, layers %d", opt, tr.NumLayers())
	}
	// Backward is 1–2× forward FLOPs depending on compute/memory op mix.
	if bwdFLOPs < fwdFLOPs || bwdFLOPs > 2*fwdFLOPs {
		t.Fatalf("bwd FLOPs %.3g not in [1,2]× fwd %.3g", bwdFLOPs, fwdFLOPs)
	}
	// Backward ops appear in reverse layer order.
	lastLayer := tr.NumLayers()
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Phase != trace.Backward {
			continue
		}
		if op.Layer > lastLayer {
			t.Fatalf("backward layer order violated at op %d", i)
		}
		lastLayer = op.Layer
	}
}

func TestGradientsMatchWeights(t *testing.T) {
	for _, name := range []string{"resnet50", "bert", "densenet121"} {
		tr, err := Build(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if tr.GradientBytes() != tr.WeightBytes() {
			t.Errorf("%s: gradient bytes %d != weight bytes %d",
				name, tr.GradientBytes(), tr.WeightBytes())
		}
	}
}

func TestParallelizableOpsExist(t *testing.T) {
	for _, name := range []string{"resnet18", "gpt2"} {
		tr, err := Build(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		var par, tot int
		var parFLOPs, totFLOPs float64
		for i := range tr.Ops {
			tot++
			totFLOPs += tr.Ops[i].FLOPs
			if tr.Ops[i].Parallelizable {
				par++
				parFLOPs += tr.Ops[i].FLOPs
			}
		}
		if par == 0 {
			t.Fatalf("%s: no parallelizable ops", name)
		}
		// Compute-heavy ops dominate: tensor parallelism must be able to
		// split the bulk of the FLOPs.
		if parFLOPs < 0.8*totFLOPs {
			t.Errorf("%s: parallelizable FLOPs only %.0f%%",
				name, 100*parFLOPs/totFLOPs)
		}
	}
}

func TestWeightsScaleFreeOfBatch(t *testing.T) {
	f := func(b1, b2 uint8) bool {
		bA := int(b1%16) + 1
		bB := int(b2%16) + 1
		tA, err := Build("resnet18", bA)
		if err != nil {
			return false
		}
		tB, err := Build("resnet18", bB)
		if err != nil {
			return false
		}
		return tA.WeightBytes() == tB.WeightBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestInputTensorBatchDim(t *testing.T) {
	tr, err := Build("vgg11", 32)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, tn := range tr.Tensors.All() {
		if tn.Category == tensor.Input {
			found = true
			if tn.BatchDim != 0 || tn.Dims[0] != 32 {
				t.Fatalf("input tensor %v has wrong batch handling", tn)
			}
		}
	}
	if !found {
		t.Fatal("no input tensor")
	}
}

func TestModelLists(t *testing.T) {
	if len(CNNs()) != 13 {
		t.Fatalf("CNNs() = %d entries, want 13", len(CNNs()))
	}
	if len(Transformers()) != 5 {
		t.Fatalf("Transformers() = %d entries, want 5", len(Transformers()))
	}
	all := map[string]bool{}
	for _, n := range List() {
		all[n] = true
	}
	for _, n := range append(CNNs(), Transformers()...) {
		if !all[n] {
			t.Fatalf("%s missing from registry", n)
		}
	}
	if len(List()) != 18 {
		t.Fatalf("List() = %d, want 18", len(List()))
	}
}

func TestMemoryBoundClassification(t *testing.T) {
	if !IsMemoryBound("relu") || !IsMemoryBound("batchnorm_bwd") {
		t.Fatal("memory-bound ops misclassified")
	}
	if IsMemoryBound("conv2d") || IsMemoryBound("matmul") ||
		IsMemoryBound("linear_bwd") {
		t.Fatal("compute ops misclassified as memory-bound")
	}
	// Every op name the zoo emits is classified one way or the other.
	for _, name := range List() {
		tr, err := Build(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Ops {
			n := tr.Ops[i].Name
			if !IsMemoryBound(n) {
				switch n {
				case "conv2d", "linear", "matmul",
					"conv2d_bwd", "linear_bwd", "matmul_bwd":
				default:
					t.Fatalf("%s: unclassified op %q", name, n)
				}
			}
		}
	}
}

func TestTransformerSizes(t *testing.T) {
	// Model size ordering: llama > gpt2 > bert > t5small > flant5small.
	sizes := map[string]int64{}
	for _, n := range Transformers() {
		tr, err := Build(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		sizes[n] = tr.WeightBytes()
	}
	if !(sizes["llama32-1b"] > sizes["gpt2"] &&
		sizes["gpt2"] > sizes["bert"] &&
		sizes["bert"] > sizes["t5small"] &&
		sizes["t5small"] > sizes["flant5small"]) {
		t.Fatalf("transformer size ordering wrong: %v", sizes)
	}
}
