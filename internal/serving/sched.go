package serving

import (
	"fmt"
	"sort"
)

// Policy orders a replica's admission queue. Less reports whether request a
// should be served before request b; every policy breaks ties by request ID
// so the order (and therefore the event schedule) is total and
// deterministic.
type Policy interface {
	Name() string
	Less(a, b *Request) bool
}

type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo" }
func (fifoPolicy) Less(a, b *Request) bool {
	// Requests are numbered in arrival order, so ID order is arrival order.
	return a.ID < b.ID
}

type priorityPolicy struct{}

func (priorityPolicy) Name() string { return "priority" }
func (priorityPolicy) Less(a, b *Request) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.ID < b.ID
}

type sjfPolicy struct{}

func (sjfPolicy) Name() string { return "sjf" }
func (sjfPolicy) Less(a, b *Request) bool {
	ja, jb := a.PromptTokens+a.OutputTokens, b.PromptTokens+b.OutputTokens
	if ja != jb {
		return ja < jb
	}
	return a.ID < b.ID
}

// PolicyByName resolves a scheduler name ("fifo", "priority", "sjf").
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "fifo":
		return fifoPolicy{}, nil
	case "priority":
		return priorityPolicy{}, nil
	case "sjf":
		return sjfPolicy{}, nil
	}
	return nil, fmt.Errorf("serving: unknown scheduler %q (have %v)",
		name, Policies())
}

// Policies lists the scheduler names.
func Policies() []string { return []string{"fifo", "priority", "sjf"} }

// insertByPolicy places request id into the queue (a slice of request
// indices into reqs) at its policy position, via binary search: stable with
// respect to equal-order requests already queued.
func insertByPolicy(queue []int, id int, reqs []Request, pol Policy) []int {
	pos := sort.Search(len(queue), func(i int) bool {
		return pol.Less(&reqs[id], &reqs[queue[i]])
	})
	queue = append(queue, 0)
	copy(queue[pos+1:], queue[pos:])
	queue[pos] = id
	return queue
}
