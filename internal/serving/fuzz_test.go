package serving

import (
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
)

// invariantObs watches every synthesized step and fails fast if the batch
// cap is ever exceeded. (KV-range and double-serve violations surface as
// engine errors from the replica handlers themselves.)
type invariantObs struct {
	tb       testing.TB
	maxBatch int
}

func (o *invariantObs) TaskDone(t *task.Task, start, end sim.VTime) {
	if t.Kind != task.Compute {
		o.tb.Fatalf("serving synthesized a %v task", t.Kind)
	}
	if end.Before(start) {
		o.tb.Fatalf("step ends (%v) before it starts (%v)", end, start)
	}
}

// FuzzSchedulerInvariants fuzzes request mixes across all three schedulers
// and asserts the serving invariants: every request served exactly once,
// batches never exceed the cap, KV accounting never goes negative nor over
// GPU memory, and per-request lifecycles stay ordered.
func FuzzSchedulerInvariants(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(0), uint8(4))
	f.Add(int64(7), uint8(48), uint8(1), uint8(1))
	f.Add(int64(42), uint8(3), uint8(2), uint8(8))
	f.Add(int64(-9), uint8(255), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, n, schedIdx, maxBatch uint8) {
		scheds := Policies()
		cfg := Config{
			Model:     "gpt2",
			Scheduler: scheds[int(schedIdx)%len(scheds)],
			MaxBatch:  int(maxBatch)%8 + 1,
			Arrivals: ArrivalConfig{
				Seed:      seed,
				Rate:      400,
				Requests:  int(n)%48 + 1,
				PromptMin: 1, PromptMax: 96,
				OutputMin: 1, OutputMax: 32,
				PriorityLevels: 4,
			},
		}

		eng := sim.NewSerialEngine()
		topo := network.Switch(network.Config{
			NumGPUs:       2,
			LinkBandwidth: 100e9,
			LinkLatency:   2 * sim.USec,
			HostBandwidth: 20e9,
			HostLatency:   5 * sim.USec,
		})
		net := network.NewFlowNetwork(eng, topo)
		spec := gpu.A40
		cl, err := New(eng, net, topo, &spec, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		cl.Observe(&invariantObs{tb: t, maxBatch: cfg.MaxBatch})
		cl.Start()
		// The replica handlers return errors on any cap or KV-accounting
		// violation and on double completion, so a clean Run IS the
		// invariant check for those.
		if err := eng.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		m, err := cl.Metrics()
		if err != nil {
			t.Fatalf("metrics (dropped requests?): %v", err)
		}
		if m.Completed != m.Requests {
			t.Fatalf("%d of %d completed", m.Completed, m.Requests)
		}
		seen := map[int]bool{}
		for _, rm := range m.PerRequest {
			if seen[rm.ID] {
				t.Fatalf("request %d reported twice", rm.ID)
			}
			seen[rm.ID] = true
			if rm.FirstTokenSec < rm.ArrivalSec ||
				rm.DoneSec < rm.FirstTokenSec {
				t.Fatalf("request %d lifecycle out of order: %+v",
					rm.ID, rm)
			}
		}
		budget := float64(spec.MemCapacity)
		for _, rs := range m.PerReplica {
			if rs.KVPeakBytes < 0 || rs.KVPeakBytes > budget {
				t.Fatalf("replica %d KV peak %.0f outside [0, %.0f]",
					rs.Replica, rs.KVPeakBytes, budget)
			}
			if rs.Steps > 0 &&
				(rs.MeanBatch <= 0 || rs.MeanBatch > float64(cfg.MaxBatch)) {
				t.Fatalf("replica %d mean batch %v with cap %d",
					rs.Replica, rs.MeanBatch, cfg.MaxBatch)
			}
		}
	})
}
