package serving

import (
	"math"
	"sort"
)

// LatencyStats summarizes a latency sample deterministically. Percentiles
// use the nearest-rank method on the sorted sample — sorted[ceil(q·n)−1] —
// so a given sample always yields the same quantile values, bit for bit, on
// every platform (no interpolation, no floating accumulation order).
type LatencyStats struct {
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P90Sec  float64 `json:"p90_sec"`
	P99Sec  float64 `json:"p99_sec"`
	P999Sec float64 `json:"p999_sec"`
	MaxSec  float64 `json:"p100_sec"`
}

// nearestRank returns sorted[ceil(q·n)−1] (q in (0,1], sorted non-empty).
func nearestRank(sorted []float64, q float64) float64 {
	r := int(math.Ceil(q * float64(len(sorted))))
	if r < 1 {
		r = 1
	}
	if r > len(sorted) {
		r = len(sorted)
	}
	return sorted[r-1]
}

// summarize computes LatencyStats over a sample (seconds). Empty samples
// yield the zero value.
func summarize(sample []float64) LatencyStats {
	if len(sample) == 0 {
		return LatencyStats{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return LatencyStats{
		MeanSec: sum / float64(len(sorted)),
		P50Sec:  nearestRank(sorted, 0.50),
		P90Sec:  nearestRank(sorted, 0.90),
		P99Sec:  nearestRank(sorted, 0.99),
		P999Sec: nearestRank(sorted, 0.999),
		MaxSec:  sorted[len(sorted)-1],
	}
}

// RequestMetric is one request's observed lifecycle, all in seconds of
// virtual time.
type RequestMetric struct {
	ID            int     `json:"id"`
	Replica       int     `json:"replica"`
	ArrivalSec    float64 `json:"arrival_sec"`
	FirstTokenSec float64 `json:"first_token_sec"`
	DoneSec       float64 `json:"done_sec"`
	PromptTokens  int     `json:"prompt_tokens"`
	OutputTokens  int     `json:"output_tokens"`
}

// ReplicaStat aggregates one replica's serving activity.
type ReplicaStat struct {
	Replica     int     `json:"replica"`
	Served      int     `json:"served"`
	Steps       int     `json:"steps"`
	MeanBatch   float64 `json:"mean_batch"`
	BusySec     float64 `json:"busy_sec"`
	Utilization float64 `json:"utilization"`
	KVPeakBytes float64 `json:"kv_peak_bytes"`
	QueuePeak   int     `json:"queue_peak"`
}

// Metrics is the request-level result of a serving run.
type Metrics struct {
	Scheduler string `json:"scheduler"`
	Replicas  int    `json:"replicas"`
	MaxBatch  int    `json:"max_batch"`
	Requests  int    `json:"requests"`
	Completed int    `json:"completed"`
	// OfferedRate is requests over the arrival span; ThroughputRPS is
	// completions over the makespan (arrival of the first request to
	// delivery of the last response).
	OfferedRPS    float64 `json:"offered_rps"`
	MakespanSec   float64 `json:"makespan_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	TokensPerSec  float64 `json:"tokens_per_sec"`
	// Latency is arrival→response-delivered; TTFT is arrival→first token.
	Latency LatencyStats `json:"latency"`
	TTFT    LatencyStats `json:"ttft"`
	// Steps counts batched model steps across replicas; MeanBatch is the
	// mean number of requests per step, and BatchingEfficiency normalizes
	// it by MaxBatch.
	Steps              int     `json:"steps"`
	MeanBatch          float64 `json:"mean_batch"`
	BatchingEfficiency float64 `json:"batching_efficiency"`
	GeneratedTokens    int     `json:"generated_tokens"`
	KVPeakBytes        float64 `json:"kv_peak_bytes"`

	PerReplica []ReplicaStat   `json:"per_replica"`
	PerRequest []RequestMetric `json:"per_request"`
}
