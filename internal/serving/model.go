package serving

import (
	"math"

	"triosim/internal/gpu"
	"triosim/internal/models"
	"triosim/internal/sim"
)

// costModel prices prefill and decode steps for one transformer replica on
// one GPU using the paper's roofline form: a step takes the larger of its
// compute time (FLOPs over effective throughput) and its memory time (bytes
// moved over effective bandwidth). The weight read is shared by every
// request in the batch — that sharing is where continuous batching earns
// its throughput.
type costModel struct {
	spec        models.TransformerSpec
	gpuSpec     *gpu.Spec
	weightBytes float64
	kvPerToken  float64
	// flopsPerToken is the dense compute per processed token; attnPerCtx the
	// additional attention compute per token of cached context.
	flopsPerToken float64
	attnPerCtx    float64
}

func newCostModel(model string, spec *gpu.Spec) (*costModel, error) {
	ts, err := models.TransformerSpecOf(model)
	if err != nil {
		return nil, err
	}
	return &costModel{
		spec:          ts,
		gpuSpec:       spec,
		weightBytes:   ts.WeightBytes(),
		kvPerToken:    ts.KVBytesPerToken(),
		flopsPerToken: ts.DecodeFLOPsPerToken(),
		attnPerCtx:    ts.AttnFLOPsPerCtxToken(),
	}, nil
}

// kvBudget is the KV-cache capacity of one replica: GPU memory minus the
// resident weights.
func (m *costModel) kvBudget() float64 {
	return float64(m.gpuSpec.MemCapacity) - m.weightBytes
}

// stepwork accumulates one batched step's cost terms.
type stepwork struct {
	flops float64
	bytes float64
}

// addPrefill prices processing a whole prompt of p tokens in one step:
// dense compute for every token plus causal attention over the growing
// context (sum of 1..p ≈ p(p+1)/2 context-token pairs), KV writes for all p
// tokens.
func (m *costModel) addPrefill(w *stepwork, p int) {
	fp := float64(p)
	w.flops += fp*m.flopsPerToken + m.attnPerCtx*fp*(fp+1)/2
	w.bytes += fp * m.kvPerToken
}

// addDecode prices generating one token with ctx tokens already cached:
// dense compute for the one token, attention over the context, a read of
// the cached KV entries, and the new token's KV write.
func (m *costModel) addDecode(w *stepwork, ctx int) {
	w.flops += m.flopsPerToken + m.attnPerCtx*float64(ctx)
	w.bytes += (float64(ctx) + 1) * m.kvPerToken
}

// stepTime converts an accumulated batch step into time. The batch shares
// one weight sweep, so weightBytes enters once per step regardless of batch
// size.
func (m *costModel) stepTime(w stepwork) sim.VTime {
	g := m.gpuSpec
	compute := w.flops / (g.PeakFLOPS * g.Utilization(w.flops))
	memory := (w.bytes + m.weightBytes) / (g.MemBandwidth * g.MemEff)
	return sim.VTime(math.Max(compute, memory))
}
