package serving

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"triosim/internal/sim"
)

// Request is one inference request: it arrives at Arrival, carries a prompt
// of PromptTokens, and generates OutputTokens before the response ships back
// to the host. Priority only matters to the priority scheduler (higher runs
// first).
type Request struct {
	ID           int       `json:"id"`
	Arrival      sim.VTime `json:"arrival_sec"`
	PromptTokens int       `json:"prompt_tokens"`
	OutputTokens int       `json:"output_tokens"`
	Priority     int       `json:"priority,omitempty"`
}

// ArrivalConfig parameterizes the seeded synthetic workload generator: an
// open-loop Poisson arrival process with uniformly drawn prompt/output
// lengths and priority levels. Identical configs generate byte-identical
// workloads — every draw comes from one rand.Source seeded with Seed.
type ArrivalConfig struct {
	// Seed seeds the generator (default 1). Same seed, same workload.
	Seed int64 `json:"seed"`
	// Rate is the offered load λ in requests per second (default 100).
	Rate float64 `json:"rate"`
	// Requests is the workload length (default 64).
	Requests int `json:"requests"`
	// Prompt/output token ranges, inclusive (defaults 16..128 and 8..64).
	PromptMin int `json:"prompt_min"`
	PromptMax int `json:"prompt_max"`
	OutputMin int `json:"output_min"`
	OutputMax int `json:"output_max"`
	// PriorityLevels > 1 draws Priority uniformly from [0, levels). Zero or
	// one leaves every request at priority 0.
	PriorityLevels int `json:"priority_levels,omitempty"`
}

// withDefaults fills zero fields.
func (c ArrivalConfig) withDefaults() ArrivalConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rate == 0 {
		c.Rate = 100
	}
	if c.Requests == 0 {
		c.Requests = 64
	}
	if c.PromptMin == 0 {
		c.PromptMin = 16
	}
	if c.PromptMax == 0 {
		c.PromptMax = 128
	}
	if c.OutputMin == 0 {
		c.OutputMin = 8
	}
	if c.OutputMax == 0 {
		c.OutputMax = 64
	}
	return c
}

// validate rejects nonsensical ranges.
func (c ArrivalConfig) validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("serving: arrival rate %v must be positive", c.Rate)
	}
	if c.Requests < 0 {
		return fmt.Errorf("serving: %d requests is negative", c.Requests)
	}
	if c.PromptMin < 1 || c.PromptMax < c.PromptMin {
		return fmt.Errorf("serving: prompt range [%d, %d] invalid",
			c.PromptMin, c.PromptMax)
	}
	if c.OutputMin < 1 || c.OutputMax < c.OutputMin {
		return fmt.Errorf("serving: output range [%d, %d] invalid",
			c.OutputMin, c.OutputMax)
	}
	return nil
}

// GenerateWorkload draws a seeded Poisson workload. Arrival gaps are
// exponential with mean 1/Rate; token counts and priorities are uniform in
// their ranges. The draw order is fixed (gap, prompt, output, priority per
// request), so the sequence is a pure function of the config.
func GenerateWorkload(cfg ArrivalConfig) ([]Request, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([]Request, cfg.Requests)
	var at sim.VTime
	for i := range reqs {
		at += sim.VTime(rng.ExpFloat64() / cfg.Rate)
		r := &reqs[i]
		r.ID = i
		r.Arrival = at
		r.PromptTokens = cfg.PromptMin + rng.Intn(cfg.PromptMax-cfg.PromptMin+1)
		r.OutputTokens = cfg.OutputMin + rng.Intn(cfg.OutputMax-cfg.OutputMin+1)
		if cfg.PriorityLevels > 1 {
			r.Priority = rng.Intn(cfg.PriorityLevels)
		}
	}
	return reqs, nil
}

// LoadWorkload reads a request trace from a JSON file: an array of Request
// objects with arrival_sec in seconds. Requests are sorted by arrival time
// and renumbered 0..n-1 in that order.
func LoadWorkload(path string) ([]Request, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serving: workload: %w", err)
	}
	var reqs []Request
	if err := json.Unmarshal(raw, &reqs); err != nil {
		return nil, fmt.Errorf("serving: workload %s: %w", path, err)
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		return reqs[i].Arrival.Before(reqs[j].Arrival)
	})
	for i := range reqs {
		reqs[i].ID = i
	}
	return reqs, nil
}
