package serving

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestWorkloadSameSeedByteIdentical(t *testing.T) {
	cfg := ArrivalConfig{Seed: 42, Rate: 250, Requests: 200}
	w1, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := GenerateWorkload(cfg)
	j1, _ := json.Marshal(w1)
	j2, _ := json.Marshal(w2)
	if !bytes.Equal(j1, j2) {
		t.Fatal("same seed produced different workloads")
	}
	cfg.Seed = 43
	w3, _ := GenerateWorkload(cfg)
	j3, _ := json.Marshal(w3)
	if bytes.Equal(j1, j3) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestArrivalProperties(t *testing.T) {
	// Seeded testing/quick: for any seed, gaps are non-negative, token
	// counts stay in range, and the mean gap converges to 1/λ.
	prop := func(seed int64) bool {
		cfg := ArrivalConfig{Seed: seed, Rate: 500, Requests: 4000}
		w, err := GenerateWorkload(cfg)
		if err != nil {
			return false
		}
		cfg = cfg.withDefaults()
		prev := w[0].Arrival
		if prev.Seconds() < 0 {
			return false
		}
		for _, r := range w[1:] {
			if r.Arrival.Before(prev) {
				return false
			}
			prev = r.Arrival
		}
		for _, r := range w {
			if r.PromptTokens < cfg.PromptMin || r.PromptTokens > cfg.PromptMax ||
				r.OutputTokens < cfg.OutputMin || r.OutputTokens > cfg.OutputMax {
				return false
			}
		}
		// Mean inter-arrival gap vs 1/λ: 4000 exponential draws put the
		// sample mean within ±10% of 1/λ with overwhelming probability.
		meanGap := w[len(w)-1].Arrival.Seconds() / float64(len(w))
		want := 1 / cfg.Rate
		return math.Abs(meanGap-want) < 0.10*want
	}
	cfg := &quick.Config{
		Rand:     rand.New(rand.NewSource(99)),
		MaxCount: 30,
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []ArrivalConfig{
		{Rate: -1},
		{Requests: -5},
		{PromptMin: 10, PromptMax: 5},
		{OutputMin: 10, OutputMax: 5},
	}
	for i, cfg := range bad {
		if _, err := GenerateWorkload(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestLoadWorkloadSortsAndRenumbers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wl.json")
	raw := `[
		{"id": 9, "arrival_sec": 0.5, "prompt_tokens": 4, "output_tokens": 2},
		{"id": 3, "arrival_sec": 0.1, "prompt_tokens": 8, "output_tokens": 1}
	]`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || w[0].ID != 0 || w[1].ID != 1 {
		t.Fatalf("IDs not renumbered: %+v", w)
	}
	if !w[0].Arrival.Before(w[1].Arrival) {
		t.Fatalf("not sorted by arrival: %+v", w)
	}
	if w[0].PromptTokens != 8 {
		t.Fatalf("sort lost payload: %+v", w[0])
	}
	if _, err := LoadWorkload(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestArrivalSeedChangesClusterDigest closes the loop at the engine level:
// the workload seed must reach the event schedule.
func TestArrivalSeedChangesClusterDigest(t *testing.T) {
	digests := map[uint64]int64{}
	for _, seed := range []int64{1, 2, 3} {
		_, d := runCluster(t, 2, smallConfig(seed, "fifo"))
		if prev, dup := digests[d]; dup {
			t.Fatalf("seeds %d and %d share digest %#x", prev, seed, d)
		}
		digests[d] = seed
	}
}
